(* Differential fuzzing front end.

   Runs a seeded campaign (lib/fuzz): generate a CNF case, mutate it,
   cross-check the CDCL engine against the reference DPLL, certify
   UNSAT answers with the DRUP checker and SAT answers by model
   evaluation, and delta-debug any disagreement down to a minimal
   counterexample.  Output (stdout, --json and artifact files) is a
   pure function of the flags — two runs with the same seed are
   bit-identical — so CI can both gate on it and reproduce from it. *)

open Berkmin_types
module Runner = Berkmin_fuzz.Runner
module Dimacs = Berkmin_dimacs.Dimacs

let write_json path json =
  let text = Json.to_string_pretty json ^ "\n" in
  if path = "-" then print_string text
  else begin
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "json report written to %s\n" path
  end

let write_artifacts ~prefix ~seed ce =
  let base = Printf.sprintf "%s_s%d_r%d" prefix seed ce.Runner.round in
  let orig = base ^ ".cnf" in
  Dimacs.write_file orig ce.Runner.cnf;
  Printf.printf "counterexample written to %s\n" orig;
  match ce.Runner.minimized with
  | None -> ()
  | Some m ->
    let mini = base ^ ".min.cnf" in
    Dimacs.write_file mini m;
    Printf.printf "minimized counterexample written to %s\n" mini

let run seed rounds max_vars max_mutations shrink incremental_queries
    portfolio_workers simplify strategies json_out prefix =
  if portfolio_workers = 1 || portfolio_workers < 0 then begin
    Printf.eprintf "--portfolio wants 0 (off) or a worker count >= 2\n";
    exit 2
  end;
  let simplify_lanes =
    (* With --simplify (the default), a preprocessing and an
       inprocessing lane join the pool as first-class oracle
       participants: their verdicts, models and DRUP proofs are
       cross-examined against the plain CDCL and DPLL lanes, so any
       unsound rewrite in lib/simplify surfaces as a counterexample. *)
    if not simplify then []
    else
      [
        Berkmin_fuzz.Oracle.simplify_cdcl ~mode:Berkmin.Config.Simp_pre ();
        Berkmin_fuzz.Oracle.simplify_cdcl ~mode:Berkmin.Config.Simp_inprocess
          ();
      ]
  in
  let strategy_lanes =
    (* With --strategies (the default), the search-quality lanes —
       ccmin-deep, phase-saving, luby, glue-reduce, each alone, plus
       the all-on "modern" combination — join the pool as first-class
       oracle participants, so a strategy that perturbs verdicts,
       models or proofs surfaces as a counterexample. *)
    if not strategies then [] else Berkmin_fuzz.Oracle.strategy_solvers ()
  in
  let portfolio_lanes =
    (* With --portfolio N, a share-on and a share-off race join the
       sequential CDCL and DPLL lanes, so any unsound clause import
       surfaces as a verdict disagreement. *)
    if portfolio_workers = 0 then []
    else
      [
        Berkmin_fuzz.Oracle.portfolio ~workers:portfolio_workers ~share:true
          ();
        Berkmin_fuzz.Oracle.portfolio ~workers:portfolio_workers ~share:false
          ();
      ]
  in
  let solvers =
    match simplify_lanes @ strategy_lanes @ portfolio_lanes with
    | [] -> None
    | extra -> Some (Berkmin_fuzz.Oracle.default_solvers () @ extra)
  in
  let config =
    {
      Runner.seed;
      rounds;
      max_vars;
      max_mutations;
      shrink;
      incremental_queries;
      solvers;
    }
  in
  let report = Runner.run ~log:print_endline config in
  List.iter (write_artifacts ~prefix ~seed) report.Runner.counterexamples;
  let disagreements = List.length report.Runner.counterexamples in
  Printf.printf
    "fuzz: seed %d, %d rounds, %d sat, %d unsat, %d undecided, %d mutations, \
     %d disagreements\n"
    seed rounds report.Runner.sat report.Runner.unsat report.Runner.undecided
    report.Runner.mutations_applied disagreements;
  Option.iter
    (fun path -> write_json path (Runner.report_to_json report))
    json_out;
  if disagreements = 0 then 0 else 1

open Cmdliner

let seed =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Master seed of the campaign.  Every generated case, mutation \
           and report field derives from it, so a CI failure is \
           reproduced exactly by re-running with the logged seed.")

let rounds =
  Arg.(
    value & opt int 200
    & info [ "rounds" ] ~docv:"N" ~doc:"Number of fuzzing rounds to run.")

let max_vars =
  Arg.(
    value & opt int 30
    & info [ "max-vars" ] ~docv:"N"
        ~doc:"Variable cap for generated cases (at least 4).")

let max_mutations =
  Arg.(
    value & opt int 4
    & info [ "mutations" ] ~docv:"N"
        ~doc:"Each round applies 0..$(docv) structured mutations.")

let shrink =
  Arg.(
    value & opt bool true
    & info [ "shrink" ] ~docv:"BOOL"
        ~doc:
          "Delta-debug each counterexample down to a minimal formula \
           that still triggers the same oracle failure.")

let incremental_queries =
  Arg.(
    value
    & opt int Runner.default.Runner.incremental_queries
    & info
        [ "incremental-queries" ]
        ~docv:"N"
        ~doc:
          "Random assumption-set queries per round cross-checked by the \
           incremental oracle (resident solver vs fresh rebuild); 0 \
           disables the lane.  The per-round query stream derives from \
           the master seed either way, so toggling this never perturbs \
           the other oracles.")

let portfolio_workers =
  Arg.(
    value & opt int 0
    & info [ "portfolio" ] ~docv:"N"
        ~doc:
          "Add two portfolio lanes of $(docv) workers each — one with \
           learnt-clause sharing, one without — to the solver pool, \
           cross-checked against the sequential CDCL and DPLL lanes by \
           the same oracles.  0 (the default) keeps the campaign \
           sequential and bit-reproducible; with portfolio lanes the \
           set of verdicts is still deterministic, but which worker \
           wins each race is not.")

let simplify =
  Arg.(
    value & opt bool true
    & info [ "simplify" ] ~docv:"BOOL"
        ~doc:
          "Add two simplification lanes — the CDCL engine with the \
           preprocessing pipeline (simplify=pre) and with inprocessing \
           at restarts (simplify=inprocess) — to the solver pool as \
           first-class oracle participants.  Their models and DRUP \
           proofs are checked like any other lane's, so the campaign \
           doubles as a soundness gate for lib/simplify.  Case \
           generation derives from the master seed independently of \
           the lane set, so toggling this never perturbs the other \
           oracles.")

let strategies =
  Arg.(
    value & opt bool true
    & info [ "strategies" ] ~docv:"BOOL"
        ~doc:
          "Add the search-quality strategy lanes — conflict-clause \
           minimization (ccmin=deep), phase saving, Luby restarts and \
           glue-driven database reduction, each switched on alone, plus \
           the all-on $(b,modern) combination — to the solver pool as \
           first-class oracle participants.  Their verdicts, models and \
           DRUP proofs are cross-checked against the plain CDCL and \
           DPLL lanes, so the campaign doubles as a differential \
           ablation gate for docs/STRATEGIES.md.  Case generation \
           derives from the master seed independently of the lane set.")

let json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the campaign report as JSON to $(docv) (\"-\" for \
           stdout); deterministic for a given seed.")

let prefix =
  Arg.(
    value & opt string "fuzz"
    & info [ "out" ] ~docv:"PREFIX"
        ~doc:
          "Prefix for counterexample artifacts; failures are written as \
           $(docv)_s<seed>_r<round>.cnf plus .min.cnf when shrinking.")

let cmd =
  let doc = "Differentially fuzz the BerkMin solver against its oracles" in
  Cmd.v
    (Cmd.info "berkmin-fuzz" ~doc)
    Term.(
      const run $ seed $ rounds $ max_vars $ max_mutations $ shrink
      $ incremental_queries $ portfolio_workers $ simplify $ strategies
      $ json_out $ prefix)

let () = exit (Cmd.eval' cmd)
