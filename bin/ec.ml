(* Combinational equivalence checker over BLIF netlists — the paper's
   own deployment domain (Cadence equivalence checking).

   Usage: ec a.blif b.blif
   Exit codes: 0 equivalent, 1 inequivalent, 2 error/unknown.

   Two flows share the miter construction:
   - one-shot (default): a single CNF with the ORed miter output
     forced to 1, one solve call;
   - incremental (--incremental): the miter is encoded once with no
     output constraint and one resident solver answers a per-output
     probe under an assumption on that output's XOR difference node,
     reusing learnt clauses and heuristic state across probes. *)

open Berkmin_types
module C = Berkmin_circuit.Circuit
module Blif = Berkmin_circuit.Blif
module M = Berkmin_circuit.Miter
module T = Berkmin_circuit.Tseitin
module Solver = Berkmin.Solver

let load path =
  try Ok (Blif.parse_file path) with
  | Sys_error msg -> Error msg
  | Blif.Parse_error { line; message } ->
    Error (Printf.sprintf "%s:%d: %s" path line message)

let report_counterexample miter mapping model file_a a file_b b =
  let inputs = M.interpret_model miter mapping model in
  Printf.printf "NOT EQUIVALENT; differentiating input:\n";
  List.iteri
    (fun i name ->
      Printf.printf "  %s = %d\n" name (if inputs.(i) then 1 else 0))
    (C.input_names miter);
  let oa = C.eval_outputs a inputs and ob = C.eval_outputs b inputs in
  List.iter
    (fun (name, va) ->
      let vb = List.assoc name ob in
      if va <> vb then
        Printf.printf "  output %s: %s=%d %s=%d\n" name file_a
          (if va then 1 else 0)
          file_b
          (if vb then 1 else 0))
    oa

(* Per-probe budget on a shared solver: the solver's [max_conflicts]
   is absolute over its whole life, so each probe's allowance is
   rebased on the conflicts already spent by earlier probes. *)
let probe_budget solver max_conflicts max_seconds =
  {
    Solver.max_conflicts =
      Option.map
        (fun n -> (Solver.stats solver).Berkmin.Stats.conflicts + n)
        max_conflicts;
    max_seconds;
  }

let run_incremental ?config miter probes max_conflicts max_seconds verbose
    file_a a file_b b =
  let mapping = T.encode miter in
  let solver = Solver.create ?config mapping.T.cnf in
  let rec probe = function
    | [] ->
      Printf.printf "EQUIVALENT (%d outputs probed, %d conflicts total)\n"
        (List.length probes)
        (Solver.stats solver).Berkmin.Stats.conflicts;
      0
    | (name, node) :: rest -> (
      let assumps = [ Lit.pos mapping.T.node_var.(node) ] in
      let before = (Solver.stats solver).Berkmin.Stats.conflicts in
      let budget = probe_budget solver max_conflicts max_seconds in
      match Solver.solve ~budget ~assumps solver with
      | Solver.Unsat ->
        if verbose then
          Printf.printf "  probe %s: equivalent (+%d conflicts)\n" name
            ((Solver.stats solver).Berkmin.Stats.conflicts - before);
        probe rest
      | Solver.Sat model ->
        if verbose then Printf.printf "  probe %s: differs\n" name;
        report_counterexample miter mapping model file_a a file_b b;
        1
      | Solver.Unknown ->
        Printf.printf "UNKNOWN (budget exhausted probing output %s)\n" name;
        2)
  in
  probe probes

let run_oneshot ?config miter max_conflicts max_seconds file_a a file_b b =
  let mapping = T.encode miter in
  T.assert_output miter mapping "miter" true;
  let budget = { Solver.max_conflicts; max_seconds } in
  let solver = Solver.create ?config mapping.T.cnf in
  match Solver.solve ~budget solver with
  | Solver.Unsat ->
    Printf.printf "EQUIVALENT (%d conflicts)\n"
      (Solver.stats solver).Berkmin.Stats.conflicts;
    0
  | Solver.Sat model ->
    report_counterexample miter mapping model file_a a file_b b;
    1
  | Solver.Unknown ->
    Printf.printf "UNKNOWN (budget exhausted)\n";
    2

let run file_a file_b strategy max_conflicts max_seconds incremental verbose =
  match List.assoc_opt strategy Berkmin.Config.presets with
  | None ->
    Printf.eprintf
      "berkmin-ec: unknown strategy %S; available: %s\n\
       try 'berkmin-ec --help' for usage\n"
      strategy
      (String.concat ", " (List.map fst Berkmin.Config.presets));
    2
  | Some config -> (
    let config = Some config in
    match load file_a, load file_b with
    | Error e, _ | _, Error e ->
      Printf.eprintf "berkmin-ec: %s\n" e;
      2
    | Ok a, Ok b -> (
      if verbose then begin
        Format.printf "%s: %a@." file_a C.pp_stats a;
        Format.printf "%s: %a@." file_b C.pp_stats b
      end;
      match M.build_probed a b with
      | exception Invalid_argument msg ->
        Printf.eprintf "incompatible interfaces: %s\n" msg;
        2
      | miter, probes ->
        if incremental then
          run_incremental ?config miter probes max_conflicts max_seconds
            verbose file_a a file_b b
        else run_oneshot ?config miter max_conflicts max_seconds file_a a file_b b))

open Cmdliner

let file_a =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"A.blif")

let file_b =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"B.blif")

let strategy =
  Arg.(
    value & opt string "berkmin"
    & info [ "s"; "strategy" ] ~docv:"NAME" ~doc:"Solver preset.")

let max_conflicts =
  Arg.(
    value & opt (some int) None
    & info [ "max-conflicts" ] ~docv:"N"
        ~doc:"Abort after N conflicts (per probe with --incremental).")

let max_seconds =
  Arg.(
    value & opt (some float) None
    & info [ "max-seconds" ] ~docv:"S"
        ~doc:"Abort after S CPU seconds (per probe with --incremental).")

let incremental =
  Arg.(
    value & flag
    & info [ "i"; "incremental" ]
        ~doc:
          "Probe each output separately under assumptions on one \
           resident solver instead of solving the ORed miter once.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print netlist and per-probe stats.")

let cmd =
  let doc = "SAT-based combinational equivalence checking of BLIF netlists" in
  Cmd.v
    (Cmd.info "berkmin-ec" ~doc)
    Term.(
      const run $ file_a $ file_b $ strategy $ max_conflicts $ max_seconds
      $ incremental $ verbose)

let () = exit (Cmd.eval' cmd)
