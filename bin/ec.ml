(* Combinational equivalence checker over BLIF netlists — the paper's
   own deployment domain (Cadence equivalence checking).

   Usage: ec a.blif b.blif
   Exit codes: 0 equivalent, 1 inequivalent, 2 error/unknown. *)

module C = Berkmin_circuit.Circuit
module Blif = Berkmin_circuit.Blif
module M = Berkmin_circuit.Miter
module T = Berkmin_circuit.Tseitin

let load path =
  try Ok (Blif.parse_file path) with
  | Sys_error msg -> Error msg
  | Blif.Parse_error { line; message } ->
    Error (Printf.sprintf "%s:%d: %s" path line message)

let run file_a file_b strategy max_conflicts max_seconds verbose =
  match List.assoc_opt strategy Berkmin.Config.presets with
  | None ->
    Printf.eprintf
      "berkmin-ec: unknown strategy %S; available: %s\n\
       try 'berkmin-ec --help' for usage\n"
      strategy
      (String.concat ", " (List.map fst Berkmin.Config.presets));
    2
  | Some config -> (
  let config = Some config in
  match load file_a, load file_b with
  | Error e, _ | _, Error e ->
    Printf.eprintf "berkmin-ec: %s\n" e;
    2
  | Ok a, Ok b -> (
    if verbose then begin
      Format.printf "%s: %a@." file_a C.pp_stats a;
      Format.printf "%s: %a@." file_b C.pp_stats b
    end;
    match M.build a b with
    | exception Invalid_argument msg ->
      Printf.eprintf "incompatible interfaces: %s\n" msg;
      2
    | miter -> (
      let mapping = T.encode miter in
      T.assert_output miter mapping "miter" true;
      let budget = { Berkmin.Solver.max_conflicts; max_seconds } in
      let solver = Berkmin.Solver.create ?config mapping.T.cnf in
      match Berkmin.Solver.solve ~budget solver with
      | Berkmin.Solver.Unsat ->
        Printf.printf "EQUIVALENT (%d conflicts)\n"
          (Berkmin.Solver.stats solver).Berkmin.Stats.conflicts;
        0
      | Berkmin.Solver.Sat model ->
        let inputs = M.interpret_model miter mapping model in
        Printf.printf "NOT EQUIVALENT; differentiating input:\n";
        List.iteri
          (fun i name ->
            Printf.printf "  %s = %d\n" name (if inputs.(i) then 1 else 0))
          (C.input_names miter);
        let oa = C.eval_outputs a inputs and ob = C.eval_outputs b inputs in
        List.iter
          (fun (name, va) ->
            let vb = List.assoc name ob in
            if va <> vb then
              Printf.printf "  output %s: %s=%d %s=%d\n" name file_a
                (if va then 1 else 0) file_b (if vb then 1 else 0))
          oa;
        1
      | Berkmin.Solver.Unknown ->
        Printf.printf "UNKNOWN (budget exhausted)\n";
        2)))

open Cmdliner

let file_a =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"A.blif")

let file_b =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"B.blif")

let strategy =
  Arg.(
    value & opt string "berkmin"
    & info [ "s"; "strategy" ] ~docv:"NAME" ~doc:"Solver preset.")

let max_conflicts =
  Arg.(
    value & opt (some int) None
    & info [ "max-conflicts" ] ~docv:"N" ~doc:"Abort after N conflicts.")

let max_seconds =
  Arg.(
    value & opt (some float) None
    & info [ "max-seconds" ] ~docv:"S" ~doc:"Abort after S CPU seconds.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print netlist stats.")

let cmd =
  let doc = "SAT-based combinational equivalence checking of BLIF netlists" in
  Cmd.v
    (Cmd.info "berkmin-ec" ~doc)
    Term.(const run $ file_a $ file_b $ strategy $ max_conflicts $ max_seconds
          $ verbose)

let () = exit (Cmd.eval' cmd)
