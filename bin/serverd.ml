(* Persistent solver daemon.

   Keeps hot solver instances resident between requests so incremental
   clients (equivalence checkers, refinement loops) reuse learnt
   clauses and heuristic state across queries.

   Usage:
     berkmin-serverd --socket /tmp/berkmin.sock     # select-loop daemon
     berkmin-serverd --stdio                        # one client on stdio

   Speaks JSONL (one request object per line); see docs/SERVER.md. *)

module Server = Berkmin_server.Server
module Trace = Berkmin.Trace

let run socket stdio trace_file strategy max_sessions simplify ccmin
    phase_saving restarts reduce =
  match List.assoc_opt strategy Berkmin.Config.presets with
  | None ->
    Printf.eprintf
      "berkmin-serverd: unknown strategy %S; available: %s\n"
      strategy
      (String.concat ", " (List.map fst Berkmin.Config.presets));
    2
  | Some config -> (
    let config =
      match Berkmin.Config.simplify_mode_of_string simplify with
      | Some mode -> Berkmin.Config.with_simplify mode config
      | None ->
        Printf.eprintf
          "berkmin-serverd: --simplify wants off, pre or inprocess (got %S)\n"
          simplify;
        exit 2
    in
    let config =
      match ccmin with
      | None -> config
      | Some s -> (
        match Berkmin.Config.ccmin_mode_of_string s with
        | Some mode -> Berkmin.Config.with_ccmin mode config
        | None ->
          Printf.eprintf
            "berkmin-serverd: --ccmin wants off, basic or deep (got %S)\n" s;
          exit 2)
    in
    let config =
      match phase_saving with
      | None -> config
      | Some b -> Berkmin.Config.with_phase_saving b config
    in
    let config =
      match restarts with
      | None -> config
      | Some s -> (
        match Berkmin.Config.restart_mode_of_string s with
        | Some mode -> Berkmin.Config.with_restart_mode mode config
        | None ->
          Printf.eprintf
            "berkmin-serverd: --restarts wants fixed:N, luby:N or none \
             (got %S)\n"
            s;
          exit 2)
    in
    let config =
      match reduce with
      | None -> config
      | Some s -> (
        match Berkmin.Config.reduction_mode_of_string s with
        | Some mode -> Berkmin.Config.with_reduction_mode mode config
        | None ->
          Printf.eprintf
            "berkmin-serverd: --reduce wants berkmin, length:N, glue:N or \
             keep-all (got %S)\n"
            s;
          exit 2)
    in
    let server = Server.create ~config ~max_sessions () in
    (match trace_file with
    | Some path -> Trace.set_sink (Server.trace server) (Trace.open_jsonl path)
    | None -> ());
    let finish code =
      Server.close server;
      code
    in
    match socket, stdio with
    | Some path, false ->
      (match Server.serve_socket server ~path with
      | () -> finish 0
      | exception Unix.Unix_error (err, fn, arg) ->
        Printf.eprintf "berkmin-serverd: %s(%s): %s\n" fn arg
          (Unix.error_message err);
        finish 2)
    | None, _ ->
      (* stdio is the default transport *)
      Server.serve_channels server stdin stdout;
      finish 0
    | Some _, true ->
      Printf.eprintf "berkmin-serverd: --socket and --stdio are exclusive\n";
      finish 2)

open Cmdliner

let socket =
  Arg.(
    value & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Serve a Unix-domain socket at $(docv) (replacing a stale one).")

let stdio =
  Arg.(
    value & flag
    & info [ "stdio" ] ~doc:"Serve a single client on stdin/stdout (default).")

let trace_file =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write one JSONL server_request event per serviced request.")

let strategy =
  Arg.(
    value & opt string "berkmin"
    & info [ "s"; "strategy" ] ~docv:"NAME"
        ~doc:"Solver preset seeding every session.")

let max_sessions =
  Arg.(
    value & opt int 64
    & info [ "max-sessions" ] ~docv:"N"
        ~doc:"Refuse new sessions beyond $(docv) resident solvers.")

let simplify =
  Arg.(
    value & opt string "off"
    & info [ "simplify" ] ~docv:"MODE"
        ~doc:
          "Clause-database simplification for every session: $(b,off) \
           (default), $(b,pre) or $(b,inprocess).  Assumption variables \
           are frozen, but a later add_clause or solve touching a \
           variable the simplifier already eliminated is rejected as an \
           error reply, so incremental clients should keep the default \
           unless their variable set is stable.  See docs/SIMPLIFY.md.")

let ccmin =
  Arg.(
    value
    & opt (some string) None
    & info [ "ccmin" ] ~docv:"MODE"
        ~doc:
          "Conflict-clause minimization for every session: $(b,off), \
           $(b,basic) or $(b,deep).  Overrides the strategy preset.  \
           See docs/STRATEGIES.md.")

let phase_saving =
  Arg.(
    value
    & opt (some bool) None
    & info [ "phase-saving" ] ~docv:"BOOL"
        ~doc:
          "Reuse each variable's last assigned polarity on later \
           decisions, for every session.  Overrides the strategy preset.")

let restarts =
  Arg.(
    value
    & opt (some string) None
    & info [ "restarts" ] ~docv:"MODE"
        ~doc:
          "Restart schedule for every session: $(b,fixed:N), $(b,luby:N) \
           or $(b,none).  Overrides the strategy preset.")

let reduce =
  Arg.(
    value
    & opt (some string) None
    & info [ "reduce" ] ~docv:"MODE"
        ~doc:
          "Learnt-database reduction for every session: $(b,berkmin), \
           $(b,length:N), $(b,glue:N) or $(b,keep-all).  Overrides the \
           strategy preset.")

let cmd =
  let doc = "persistent BerkMin solver daemon (JSONL protocol)" in
  Cmd.v
    (Cmd.info "berkmin-serverd" ~doc)
    Term.(
      const run $ socket $ stdio $ trace_file $ strategy $ max_sessions
      $ simplify $ ccmin $ phase_saving $ restarts $ reduce)

let () = exit (Cmd.eval' cmd)
