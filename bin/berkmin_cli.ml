(* Command-line SAT solver: reads DIMACS, prints a SAT-competition
   style answer, optionally emits a DRUP proof and statistics.

   Exit codes follow the SAT-solver convention: 10 = SATISFIABLE,
   20 = UNSATISFIABLE, 0 = UNKNOWN, 2 = usage/input error. *)

open Berkmin_types
module Drup = Berkmin_proof.Drup
module Portfolio = Berkmin_portfolio.Portfolio

let find_config name =
  List.assoc_opt name Berkmin.Config.presets

let result_to_string = function
  | Berkmin.Solver.Sat _ -> "SAT"
  | Berkmin.Solver.Unsat -> "UNSAT"
  | Berkmin.Solver.Unknown -> "UNKNOWN"

(* Race the portfolio instead of running one solver.  Shares the
   sequential path's output conventions (c-lines, JSON shape, exit
   codes); the JSON gains a "portfolio" object with the per-worker
   records, and "stats" comes from the winning worker. *)
let run_portfolio ~config ~budget ~file ~stats_flag ~check ~quiet ~json_out cnf =
  let started = Unix.gettimeofday () in
  let p = Portfolio.solve_config ~budget config cnf in
  let seconds = Unix.gettimeofday () -. started in
  if not quiet then begin
    Format.printf "c portfolio of %d workers (%s)@."
      config.Berkmin.Config.workers
      (if config.Berkmin.Config.portfolio_diversify then "diversified"
       else "seed-only");
    List.iter
      (fun w ->
        Printf.printf "c worker %d: %-16s seed=%-6d %-12s %.3fs\n"
          w.Portfolio.w_index
          (Berkmin.Config.name_of w.Portfolio.w_config)
          w.Portfolio.w_config.Berkmin.Config.seed
          (Portfolio.status_to_string w.Portfolio.w_status)
          w.Portfolio.w_wall_seconds)
      p.Portfolio.workers
  end;
  let winner_stats =
    Option.bind p.Portfolio.winner (fun i ->
        Option.bind
          (List.find_opt (fun w -> w.Portfolio.w_index = i) p.Portfolio.workers)
          (fun w -> w.Portfolio.w_stats))
  in
  (match winner_stats with
  | Some st when stats_flag ->
    let text = Format.asprintf "%a" Berkmin.Stats.pp st in
    String.split_on_char '\n' text
    |> List.iter (fun line -> Printf.printf "c %s\n" line)
  | _ -> ());
  (match json_out with
  | None -> ()
  | Some path ->
    let json =
      Json.Obj
        [
          "instance", Json.String file;
          "strategy", Json.String (Berkmin.Config.name_of config);
          "result", Json.String (result_to_string p.Portfolio.result);
          ( "stats",
            match winner_stats with
            | Some st ->
              Berkmin.Stats.to_json ?worker:p.Portfolio.winner ~seconds st
            | None -> Json.Null );
          "portfolio", Portfolio.outcome_to_json p;
        ]
    in
    let text = Json.to_string_pretty json ^ "\n" in
    if path = "-" then print_string text
    else begin
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      if not quiet then Printf.printf "c json summary written to %s\n" path
    end);
  match p.Portfolio.result with
  | Berkmin.Solver.Sat model ->
    if check && not (Cnf.satisfied_by cnf model) then begin
      print_endline "c INTERNAL ERROR: model does not satisfy the formula";
      exit 1
    end;
    Format.printf "%a@."
      (fun fmt () -> Berkmin_dimacs.Dimacs.print_solution fmt (Some model))
      ();
    10
  | Berkmin.Solver.Unsat ->
    print_endline "s UNSATISFIABLE";
    20
  | Berkmin.Solver.Unknown ->
    print_endline "s UNKNOWN";
    0

let run file strategy max_conflicts max_seconds proof_file stats_flag check
    seed quiet json_out trace_file heartbeat profile workers diversify
    worker_timeout share share_max_len share_max_glue simplify simplify_growth
    ccmin phase_saving restarts reduce =
  match find_config strategy with
  | None ->
    Printf.eprintf "unknown strategy %S; available: %s\n" strategy
      (String.concat ", " (List.map fst Berkmin.Config.presets));
    2
  | Some config -> (
    let config =
      match seed with
      | Some s -> Berkmin.Config.with_seed s config
      | None -> config
    in
    let config =
      match trace_file with
      | Some path -> Berkmin.Config.with_trace_jsonl path config
      | None -> config
    in
    let config =
      if heartbeat > 0 then Berkmin.Config.with_heartbeat heartbeat config
      else config
    in
    let config =
      if profile then Berkmin.Config.with_profile_timers config else config
    in
    if workers < 1 then begin
      Printf.eprintf "--workers must be at least 1 (got %d)\n" workers;
      exit 2
    end;
    if workers > 1 && proof_file <> None then begin
      Printf.eprintf
        "--proof needs a single worker: DRUP logging follows one solver's \
         derivation, not a race (drop --proof or use --workers 1)\n";
      exit 2
    end;
    if share_max_len < 1 || share_max_glue < 1 then begin
      Printf.eprintf "--share-max-len and --share-max-glue must be >= 1\n";
      exit 2
    end;
    let config = Berkmin.Config.with_workers workers config in
    let config = Berkmin.Config.with_portfolio_diversify diversify config in
    let config = Berkmin.Config.with_share_learnt share config in
    let config = Berkmin.Config.with_share_max_len share_max_len config in
    let config = Berkmin.Config.with_share_max_glue share_max_glue config in
    let config =
      match worker_timeout with
      | Some s -> Berkmin.Config.with_worker_wall_timeout s config
      | None -> config
    in
    let config =
      match Berkmin.Config.simplify_mode_of_string simplify with
      | Some mode -> Berkmin.Config.with_simplify mode config
      | None ->
        Printf.eprintf
          "--simplify wants off, pre or inprocess (got %S)\n" simplify;
        exit 2
    in
    if simplify_growth < 0 then begin
      Printf.eprintf "--simplify-growth must be >= 0 (got %d)\n"
        simplify_growth;
      exit 2
    end;
    let config = Berkmin.Config.with_simplify_growth simplify_growth config in
    let config =
      match ccmin with
      | None -> config
      | Some s -> (
        match Berkmin.Config.ccmin_mode_of_string s with
        | Some mode -> Berkmin.Config.with_ccmin mode config
        | None ->
          Printf.eprintf "--ccmin wants off, basic or deep (got %S)\n" s;
          exit 2)
    in
    let config =
      match phase_saving with
      | None -> config
      | Some b -> Berkmin.Config.with_phase_saving b config
    in
    let config =
      match restarts with
      | None -> config
      | Some s -> (
        match Berkmin.Config.restart_mode_of_string s with
        | Some mode -> Berkmin.Config.with_restart_mode mode config
        | None ->
          Printf.eprintf
            "--restarts wants fixed:N, luby:N or none (got %S)\n" s;
          exit 2)
    in
    let config =
      match reduce with
      | None -> config
      | Some s -> (
        match Berkmin.Config.reduction_mode_of_string s with
        | Some mode -> Berkmin.Config.with_reduction_mode mode config
        | None ->
          Printf.eprintf
            "--reduce wants berkmin, length:N, glue:N or keep-all (got %S)\n"
            s;
          exit 2)
    in
    match Berkmin_dimacs.Dimacs.parse_file file with
    | exception Sys_error msg ->
      Printf.eprintf "cannot read %s: %s\n" file msg;
      2
    | exception Berkmin_dimacs.Dimacs.Parse_error { line; message } ->
      Printf.eprintf "%s:%d: %s\n" file line message;
      2
    | cnf when workers > 1 -> (
      let budget = { Berkmin.Solver.max_conflicts; max_seconds } in
      if not quiet then
        Format.printf "c strategy %a@." Berkmin.Config.pp config;
      try run_portfolio ~config ~budget ~file ~stats_flag ~check ~quiet
            ~json_out cnf
      with Sys_error msg ->
        Printf.eprintf "berkmin: %s\n" msg;
        2)
    | cnf ->
    try
      let solver = Berkmin.Solver.create ~config cnf in
      let proof =
        match proof_file with
        | None -> None
        | Some path ->
          let p = Drup.create () in
          Berkmin.Solver.set_proof_logger solver (Drup.record p);
          Some (path, p)
      in
      let budget =
        { Berkmin.Solver.max_conflicts; max_seconds }
      in
      let started = Sys.time () in
      let result = Berkmin.Solver.solve ~budget solver in
      let seconds = Sys.time () -. started in
      Berkmin.Solver.close_trace solver;
      if not quiet then
        Format.printf "c strategy %a@." Berkmin.Config.pp config;
      if stats_flag then begin
        let text =
          Format.asprintf "%a" Berkmin.Stats.pp (Berkmin.Solver.stats solver)
        in
        String.split_on_char '\n' text
        |> List.iter (fun line -> Printf.printf "c %s\n" line)
      end;
      (match json_out with
      | None -> ()
      | Some path ->
        let json =
          Json.Obj
            [
              "instance", Json.String file;
              "strategy", Json.String (Berkmin.Config.name_of config);
              "result", Json.String (result_to_string result);
              ( "stats",
                Berkmin.Stats.to_json ~seconds (Berkmin.Solver.stats solver)
              );
            ]
        in
        let text = Json.to_string_pretty json ^ "\n" in
        if path = "-" then print_string text
        else begin
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          if not quiet then Printf.printf "c json summary written to %s\n" path
        end);
      (match result, proof with
      | Berkmin.Solver.Unsat, Some (path, p) ->
        Drup.write_file path p;
        if not quiet then Printf.printf "c proof written to %s\n" path;
        if check then begin
          match Drup.check cnf p with
          | Drup.Valid -> print_endline "c proof checked: VALID"
          | Drup.Invalid { step; reason; _ } ->
            Printf.printf "c proof checked: INVALID at step %d (%s)\n" step
              reason
        end
      | (Berkmin.Solver.Sat _ | Berkmin.Solver.Unknown), Some _ | _, None -> ());
      (match result with
      | Berkmin.Solver.Sat model ->
        if check && not (Cnf.satisfied_by cnf model) then begin
          print_endline "c INTERNAL ERROR: model does not satisfy the formula";
          exit 1
        end;
        Format.printf "%a@."
          (fun fmt () ->
            Berkmin_dimacs.Dimacs.print_solution fmt (Some model))
          ();
        10
      | Berkmin.Solver.Unsat ->
        print_endline "s UNSATISFIABLE";
        20
      | Berkmin.Solver.Unknown ->
        print_endline "s UNKNOWN";
        0)
    with Sys_error msg ->
      (* unwritable --trace / --json / --proof destinations *)
      Printf.eprintf "berkmin: %s\n" msg;
      2)

open Cmdliner

let file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE.cnf" ~doc:"DIMACS CNF input file.")

let strategy =
  Arg.(
    value & opt string "berkmin"
    & info [ "s"; "strategy" ] ~docv:"NAME"
        ~doc:
          "Solver configuration preset (berkmin, chaff, less_mobility, ...; \
           see --help).")

let max_conflicts =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-conflicts" ] ~docv:"N" ~doc:"Abort after N conflicts.")

let max_seconds =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-seconds" ] ~docv:"S" ~doc:"Abort after S CPU seconds.")

let proof_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "proof" ] ~docv:"FILE"
        ~doc:"Write a DRUP proof here when the answer is UNSATISFIABLE.")

let stats_flag =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print solver statistics.")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Verify the model (SAT) or the emitted proof (UNSAT).")

let seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N" ~doc:"Override the heuristic RNG seed.")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Less c-line chatter.")

let json_out =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write a JSON summary (result plus full statistics) to $(docv); \
           plain --json or FILE \"-\" prints it to stdout.")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Stream structured trace events (decide/propagate/conflict/learn/\
           backjump/restart/reduce-db) to $(docv) as JSON Lines.")

let heartbeat =
  Arg.(
    value & opt int 0
    & info [ "heartbeat" ] ~docv:"N"
        ~doc:
          "Emit a heartbeat trace event every N conflicts (0 disables; \
           needs --trace to be visible).")

let profile =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Time the BCP / conflict-analysis / reduce-db phases (small \
           per-conflict overhead; shows in --stats and --json).")

let workers =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Race $(docv) diversified solver processes on the formula and \
           answer with the first definitive verdict (a portfolio).  1 — \
           the default — solves sequentially in this process.")

let diversify =
  Arg.(
    value & opt bool true
    & info [ "portfolio-diversify" ] ~docv:"BOOL"
        ~doc:
          "With --workers > 1: diversify the portfolio across restart \
           policies, decision sensitivity and clause-DB aggressiveness \
           (default), or — when false — race identical copies differing \
           only in RNG seed.")

let worker_timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "worker-timeout" ] ~docv:"S"
        ~doc:
          "Kill any portfolio worker still running after $(docv) wall \
           seconds (contrast --max-seconds, which budgets CPU time \
           inside each solver).")

let share =
  Arg.(
    value & opt bool true
    & info [ "share" ] ~docv:"BOOL"
        ~doc:
          "With --workers > 1: exchange learnt clauses between the \
           portfolio workers (default).  Each worker exports clauses \
           passing the --share-max-len / --share-max-glue filter; the \
           parent rebroadcasts each distinct clause to the other \
           workers, which adopt it at their next restart.  See \
           docs/PARALLEL.md for the protocol.")

let share_max_len =
  Arg.(
    value & opt int 8
    & info [ "share-max-len" ] ~docv:"K"
        ~doc:
          "Export only learnt clauses of at most $(docv) literals \
           (default 8).")

let share_max_glue =
  Arg.(
    value & opt int 4
    & info [ "share-max-glue" ] ~docv:"G"
        ~doc:
          "Export only learnt clauses whose learn-time glue (LBD: \
           distinct decision levels among the clause's literals) is at \
           most $(docv) (default 4).")

let simplify =
  Arg.(
    value & opt string "off"
    & info [ "simplify" ] ~docv:"MODE"
        ~doc:
          "Clause-database simplification: $(b,off) (default), $(b,pre) \
           (one pass — subsumption, self-subsuming resolution, bounded \
           variable elimination, failed-literal probing — before \
           search) or $(b,inprocess) (the same pipeline again at every \
           restart).  Eliminated variables are reconstructed into the \
           printed model; with --proof every rewrite is logged, so the \
           DRUP certificate stays checkable.  See docs/SIMPLIFY.md.")

let simplify_growth =
  Arg.(
    value & opt int 0
    & info [ "simplify-growth" ] ~docv:"N"
        ~doc:
          "Bounded variable elimination may grow the clause count by at \
           most $(docv) clauses per eliminated variable (default 0: \
           eliminate only when the database shrinks or stays even).")

let ccmin =
  Arg.(
    value
    & opt (some string) None
    & info [ "ccmin" ] ~docv:"MODE"
        ~doc:
          "Conflict-clause minimization: $(b,off), $(b,basic) \
           (self-subsumption against the reason of each learnt literal) \
           or $(b,deep) (recursive reason-chain redundancy).  Overrides \
           the strategy preset.  See docs/STRATEGIES.md.")

let phase_saving =
  Arg.(
    value
    & opt (some bool) None
    & info [ "phase-saving" ] ~docv:"BOOL"
        ~doc:
          "Remember each variable's last assigned polarity and reuse it \
           on later decisions, overriding the configured polarity \
           heuristic for previously-assigned variables.  Overrides the \
           strategy preset.")

let restarts =
  Arg.(
    value
    & opt (some string) None
    & info [ "restarts" ] ~docv:"MODE"
        ~doc:
          "Restart schedule: $(b,fixed:N) (every $(b,N) conflicts, the \
           paper's scheme), $(b,luby:N) (Luby sequence with unit \
           $(b,N)) or $(b,none).  Overrides the strategy preset.")

let reduce =
  Arg.(
    value
    & opt (some string) None
    & info [ "reduce" ] ~docv:"MODE"
        ~doc:
          "Learnt-database reduction: $(b,berkmin) (the paper's \
           aging/activity scheme), $(b,length:N), $(b,glue:N) (keep \
           clauses with learn-time glue at most $(b,N), plus the \
           youngest band) or $(b,keep-all).  Overrides the strategy \
           preset.")

let cmd =
  let doc = "BerkMin-style CDCL SAT solver" in
  Cmd.v
    (Cmd.info "berkmin" ~doc)
    Term.(
      const run $ file $ strategy $ max_conflicts $ max_seconds $ proof_file
      $ stats_flag $ check $ seed $ quiet $ json_out $ trace_file $ heartbeat
      $ profile $ workers $ diversify $ worker_timeout $ share $ share_max_len
      $ share_max_glue $ simplify $ simplify_growth $ ccmin $ phase_saving
      $ restarts $ reduce)

let () = exit (Cmd.eval' cmd)
