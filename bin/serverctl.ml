(* Scripted driver for the solver daemon — the CI smoke harness.

   Reads a JSONL script where each line is a protocol request object,
   optionally tagged with a "client" integer.  Each distinct tag gets
   its own socket connection (opened at the first request and held
   until exit), so a script interleaving tags exercises the daemon's
   multiplexing with genuinely concurrent clients while serverctl's
   strict request/response lockstep keeps the transcript
   deterministic.

   Responses are printed one per line.  --golden normalizes them for
   transcript diffing: volatile fields (latencies, search-effort
   counters, models) are masked so the golden file pins the protocol
   semantics — verdicts, cores, errors, session lifecycle — without
   churning on every heuristic change.  Lines starting with '#' and
   blank lines in the script are skipped. *)

open Berkmin_types
module Client = Berkmin_server.Client

(* Fields whose values depend on wall clocks or search heuristics:
   masked under --golden so transcripts survive solver evolution. *)
let volatile =
  [
    "latency_ms"; "conflicts"; "decisions"; "propagations"; "restarts";
    "arena_bytes"; "learnt_live"; "requests";
  ]

let rec normalize json =
  match json with
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "latency_ms" then None
           else if List.mem k volatile then Some (k, Json.String "_")
           else
             match k, v with
             | "model", Json.List lits ->
               Some ("model_vars", Json.Int (List.length lits))
             | "core", Json.List lits ->
               let ints =
                 List.filter_map Json.to_int_opt lits
                 |> List.sort compare
                 |> List.map (fun n -> Json.Int n)
               in
               Some ("core", Json.List ints)
             | _ -> Some (k, normalize v))
         fields)
  | Json.List items -> Json.List (List.map normalize items)
  | _ -> json

let read_script path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc lineno =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line ->
          let trimmed = String.trim line in
          if trimmed = "" || trimmed.[0] = '#' then go acc (lineno + 1)
          else (
            match Json.of_string trimmed with
            | json -> go ((lineno, json) :: acc) (lineno + 1)
            | exception Json.Parse_error msg ->
              Printf.eprintf "%s:%d: %s\n" path lineno msg;
              exit 2)
      in
      go [] 1)

(* Splits the "client" tag off a request object. *)
let client_of json =
  match json with
  | Json.Obj fields ->
    let tag =
      match List.assoc_opt "client" fields with
      | Some j -> Option.value ~default:0 (Json.to_int_opt j)
      | None -> 0
    in
    (tag, Json.Obj (List.filter (fun (k, _) -> k <> "client") fields))
  | _ -> (0, json)

let run socket script golden =
  let requests = read_script script in
  let conns : (int, Client.t) Hashtbl.t = Hashtbl.create 4 in
  let conn tag =
    match Hashtbl.find_opt conns tag with
    | Some c -> c
    | None ->
      let c =
        try Client.connect ~path:socket
        with Unix.Unix_error (err, _, _) ->
          Printf.eprintf "serverctl: cannot connect to %s: %s\n" socket
            (Unix.error_message err);
          exit 2
      in
      Hashtbl.replace conns tag c;
      c
  in
  let failures = ref 0 in
  List.iter
    (fun (lineno, json) ->
      let tag, request = client_of json in
      match Client.rpc (conn tag) request with
      | response ->
        (match Json.member "ok" response with
        | Some (Json.Bool true) -> ()
        | _ -> incr failures);
        let shown = if golden then normalize response else response in
        print_string (Json.to_string shown);
        print_newline ()
      | exception Failure msg ->
        Printf.eprintf "%s:%d: %s\n" script lineno msg;
        exit 2)
    requests;
  Hashtbl.iter (fun _ c -> Client.close c) conns;
  (* protocol errors are script-visible (the golden transcript records
     them), so they only fail the run when unexpected — which the diff
     against the golden file decides, not the exit code *)
  ignore !failures;
  0

open Cmdliner

let socket =
  Arg.(
    required & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket to connect to.")

let script =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT.jsonl")

let golden =
  Arg.(
    value & flag
    & info [ "golden" ]
        ~doc:
          "Normalize responses for transcript diffing: mask volatile \
           counters and models, sort cores.")

let cmd =
  let doc = "drive a scripted multi-client session against berkmin-serverd" in
  Cmd.v
    (Cmd.info "berkmin-serverctl" ~doc)
    Term.(const run $ socket $ script $ golden)

let () = exit (Cmd.eval' cmd)
