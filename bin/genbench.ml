(* Emits the synthetic benchmark suites as DIMACS files, one directory
   per class, so the instances can be fed to external solvers too. *)

open Berkmin_gen

let usage_hint = "try 'berkmin-genbench --list' for the class names"

let sanitize name =
  String.map (function '/' | ' ' -> '_' | c -> c) name

let write_instance dir inst =
  let path = Filename.concat dir (sanitize inst.Instance.name ^ ".cnf") in
  Berkmin_dimacs.Dimacs.write_file path inst.Instance.cnf;
  Printf.printf "wrote %s (%s, expect %s)\n" path
    (Format.asprintf "%a" Berkmin_types.Cnf.pp_stats inst.Instance.cnf)
    (Instance.expected_to_string inst.Instance.expected)

let mkdir_if_missing dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let run out_dir class_names list_flag dimacs_out size seed =
  if list_flag then begin
    List.iter (fun (name, _) -> print_endline name) (Suites.all ());
    0
  end
  else
    match dimacs_out with
    | Some dir -> begin
      (* Large-instance mode: the same Bigbench suite `bench --full`
         solves, written flat into DIR with the same file names, so the
         tier and external solvers consume identical inputs. *)
      try
        mkdir_if_missing dir;
        List.iter (write_instance dir) (Bigbench.suite ~size ~seed ());
        0
      with Sys_error msg ->
        Printf.eprintf "berkmin-genbench: %s\n" msg;
        2
    end
    | None -> begin
    let unknown =
      List.filter
        (fun name ->
          match Suites.find_class name with
          | _ -> false
          | exception Not_found -> true)
        class_names
    in
    if unknown <> [] then begin
      Printf.eprintf "berkmin-genbench: unknown class%s %s; known: %s\n%s\n"
        (if List.length unknown > 1 then "es" else "")
        (String.concat ", " (List.map (Printf.sprintf "%S") unknown))
        (String.concat ", " (List.map fst (Suites.all ())))
        usage_hint;
      2
    end
    else begin
      let classes =
        match class_names with
        | [] -> Suites.all ()
        | names -> List.map (fun name -> (name, Suites.find_class name)) names
      in
      try
        mkdir_if_missing out_dir;
        List.iter
          (fun (name, instances) ->
            let dir = Filename.concat out_dir (sanitize name) in
            mkdir_if_missing dir;
            List.iter (write_instance dir) instances)
          classes;
        0
      with Sys_error msg ->
        Printf.eprintf "berkmin-genbench: %s\n" msg;
        2
    end
  end

open Cmdliner

let out_dir =
  Arg.(
    value & opt string "benchmarks"
    & info [ "o"; "out" ] ~docv:"DIR"
        ~doc:"Output directory (created if missing).")

let class_names =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"CLASS" ~doc:"Classes to emit (default: all twelve).")

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List class names and exit.")

let dimacs_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "dimacs-out" ] ~docv:"DIR"
        ~doc:
          "Instead of the twelve named classes, write the large-instance \
           $(b,bench --full) suite (BMC lock unrollings, larger graph \
           colorings, planted random-3SAT at scale) flat into $(docv), \
           one .cnf per instance with the same file names the tier \
           uses, so external solvers consume identical inputs.  Scaled \
           by --size, seeded by --seed.")

let size =
  Arg.(
    value & opt int 1
    & info [ "size" ] ~docv:"N"
        ~doc:
          "Scale knob for --dimacs-out: multiplies every Bigbench \
           family's dimensions together (matches bench --full --size).")

let seed =
  Arg.(
    value & opt int 7
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Generation seed for --dimacs-out (matches bench --full \
           --seed).")

let cmd =
  let doc = "Generate the BerkMin reproduction benchmark suites as DIMACS" in
  Cmd.v
    (Cmd.info "berkmin-genbench" ~doc)
    Term.(const run $ out_dir $ class_names $ list_flag $ dimacs_out $ size $ seed)

let () = exit (Cmd.eval' cmd)
