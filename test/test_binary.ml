(* Binary implication layer: chains drained without watcher traffic,
   binary-only conflicts, learnt 2-clauses landing in the index, the
   nb_two memo, and index consistency across GC and compaction. *)

open Berkmin_types
module Solver = Berkmin.Solver
module Config = Berkmin.Config
module Stats = Berkmin.Stats

let check = Alcotest.check

let cnf_of lists =
  let cnf = Cnf.create () in
  List.iter (fun c -> Cnf.add_clause cnf (List.map Lit.of_dimacs c)) lists;
  cnf

let is_sat = function
  | Solver.Sat _ -> true
  | Solver.Unsat | Solver.Unknown -> false

let is_unsat = function
  | Solver.Unsat -> true
  | Solver.Sat _ | Solver.Unknown -> false

(* ------------------------------------------------------------------ *)
(* Propagation through the binary index                                *)

let test_long_chain () =
  (* x1 and a 99-link binary chain x_i -> x_{i+1}: every implication
     must come out of the binary index, with the watch lists never
     consulted (there are no clauses of size > 2 at all). *)
  let n = 100 in
  let lists = [ 1 ] :: List.init (n - 1) (fun i -> [ -(i + 1); i + 2 ]) in
  let s = Solver.create (cnf_of lists) in
  (match Solver.solve s with
  | Solver.Sat m ->
    Array.iter (fun b -> check Alcotest.bool "forced true" true b) m
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected SAT");
  let st = Solver.stats s in
  check Alcotest.int "chain implied from the index" (n - 1)
    st.Stats.binary_propagations;
  check Alcotest.int "no watcher traffic" 0 st.Stats.watcher_visits;
  check Alcotest.int "no conflicts" 0 st.Stats.conflicts;
  check Alcotest.int "index holds both directions" (2 * (n - 1))
    (Solver.num_binary_entries s)

let test_binary_only_conflict_level0 () =
  (* x1 -> x2 and x1 -> ~x2 with x1 forced: the contradiction must be
     found inside the binary drain, before any watch list exists. *)
  let s = Solver.create (cnf_of [ [ 1 ]; [ -1; 2 ]; [ -1; -2 ] ]) in
  check Alcotest.bool "UNSAT" true (is_unsat (Solver.solve s));
  let st = Solver.stats s in
  check Alcotest.bool "conflict found in the binary drain" true
    (st.Stats.binary_conflicts >= 1);
  check Alcotest.int "no watcher traffic" 0 st.Stats.watcher_visits

let test_binary_conflict_under_decision () =
  (* Branching x1=1 runs into the binary diamond x1 -> x2, x1 -> x3,
     ~x2 | ~x3; the solver must learn its way out and answer SAT. *)
  let s =
    Solver.create (cnf_of [ [ -1; 2 ]; [ -1; 3 ]; [ -2; -3 ] ])
  in
  (match Solver.solve s with
  | Solver.Sat m ->
    check Alcotest.bool "model refutes the diamond" false (m.(1) && m.(2))
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected SAT");
  check Alcotest.string "healthy index" ""
    (String.concat "; " (Solver.watch_invariant_violations s))

let test_learnt_binary_enters_index () =
  (* Under assumptions a, b the pair (~a|~b|x), (~a|~b|~x) resolves to
     the binary clause (~a|~b): the learnt 2-clause must land in the
     implication index, not the watch lists. *)
  let s =
    Solver.create (cnf_of [ [ -1; -2; 3 ]; [ -1; -2; -3 ] ])
  in
  check Alcotest.int "no binaries loaded" 0 (Solver.num_binary_entries s);
  let a = Lit.of_dimacs 1 and b = Lit.of_dimacs 2 in
  (match Solver.solve_with_assumptions s [ a; b ] with
  | Solver.A_unsat_assuming _ -> ()
  | Solver.A_sat _ | Solver.A_unsat | Solver.A_unknown ->
    Alcotest.fail "expected failure under the assumptions");
  check Alcotest.int "learnt 2-clause indexed both ways" 2
    (Solver.num_binary_entries s);
  check Alcotest.string "healthy index" ""
    (String.concat "; " (Solver.watch_invariant_violations s));
  (* The learnt binary now prunes the a, b branch for good: solving
     without assumptions must still succeed. *)
  check Alcotest.bool "still SAT outright" true (is_sat (Solver.solve s))

(* ------------------------------------------------------------------ *)
(* nb_two memoization                                                  *)

let test_nb_two_memo_hits () =
  (* Variable 1 sits in binaries of both phases sharing the partner
     x2, so the first global decision evaluates bin_degree(~x2) twice
     in the same assignment epoch — the second read must be a memo
     hit. *)
  let s = Solver.create (cnf_of [ [ 1; 2 ]; [ -1; 2 ]; [ 3; 2 ] ]) in
  check Alcotest.bool "SAT" true (is_sat (Solver.solve s));
  let st = Solver.stats s in
  check Alcotest.bool "memoized neighbourhood reused" true
    (st.Stats.nb_two_cache_hits >= 1)

(* ------------------------------------------------------------------ *)
(* Index consistency across GC and compaction                          *)

let test_index_survives_gc () =
  (* hole_7_6 runs long enough for restarts, database reductions and
     arena compactions; learnt binaries must survive relocation and
     deleted ones must leave the index. *)
  let inst = Berkmin_gen.Pigeonhole.instance 7 6 in
  let s = Solver.create inst.Berkmin_gen.Instance.cnf in
  check Alcotest.bool "UNSAT" true (is_unsat (Solver.solve s));
  check Alcotest.bool "GC actually ran" true
    ((Solver.stats s).Stats.gc_runs >= 1);
  check Alcotest.string "healthy index after GC" ""
    (String.concat "; " (Solver.watch_invariant_violations s));
  Solver.compact s;
  check Alcotest.string "healthy index after forced compaction" ""
    (String.concat "; " (Solver.watch_invariant_violations s))

let test_index_survives_forced_compaction () =
  (* Compaction with a mixed database but no search pressure: the
     relocated crefs in the index must still point at their clauses. *)
  let s =
    Solver.create
      (cnf_of [ [ 1; 2 ]; [ -1; 3 ]; [ 1; 2; 3 ]; [ -2; -3; 1 ] ])
  in
  check Alcotest.bool "SAT" true (is_sat (Solver.solve s));
  Solver.compact s;
  Solver.compact s;
  check Alcotest.string "healthy index" ""
    (String.concat "; " (Solver.watch_invariant_violations s));
  check Alcotest.int "original binaries intact" 4
    (Solver.num_binary_entries s)

let () =
  Alcotest.run "binary"
    [
      ( "propagation",
        [
          Alcotest.test_case "long chain" `Quick test_long_chain;
          Alcotest.test_case "level-0 conflict" `Quick
            test_binary_only_conflict_level0;
          Alcotest.test_case "conflict under decision" `Quick
            test_binary_conflict_under_decision;
          Alcotest.test_case "learnt binary indexed" `Quick
            test_learnt_binary_enters_index;
        ] );
      ( "nb_two",
        [ Alcotest.test_case "memo hits" `Quick test_nb_two_memo_hits ] );
      ( "gc",
        [
          Alcotest.test_case "index survives GC" `Quick test_index_survives_gc;
          Alcotest.test_case "index survives compaction" `Quick
            test_index_survives_forced_compaction;
        ] );
    ]
