(* Heavy property-based cross-validation: the CDCL engine against the
   independent DPLL oracle on thousands of random formulas, model
   verification, proof validation, preset agreement, preprocessing
   soundness.  These are the tests that would catch a subtle watched-
   literal or conflict-analysis bug. *)

open Berkmin_types
module Solver = Berkmin.Solver
module Config = Berkmin.Config
module Drup = Berkmin_proof.Drup

let qtest = QCheck_alcotest.to_alcotest

(* Random small formulas near the 3-SAT phase transition, where both
   verdicts are likely. *)
let random_cnf_gen =
  QCheck.make
    ~print:(fun (nv, nc, seed) -> Printf.sprintf "vars=%d clauses=%d seed=%d" nv nc seed)
    QCheck.Gen.(
      let* nv = 3 -- 12 in
      let* ratio_pct = 300 -- 550 in
      let nc = max 1 (nv * ratio_pct / 100) in
      let* seed = 0 -- 1_000_000 in
      return (nv, nc, seed))

let build (nv, nc, seed) =
  Berkmin_gen.Random_ksat.generate ~num_vars:nv ~num_clauses:nc ~k:3 ~seed

let oracle_verdict cnf =
  match Berkmin.Dpll.solve cnf with
  | Berkmin.Dpll.Sat _ -> true
  | Berkmin.Dpll.Unsat -> false
  | Berkmin.Dpll.Unknown -> QCheck.assume_fail ()

let solver_verdict ?config cnf =
  match Solver.solve_cnf ?config cnf with
  | Solver.Sat m ->
    if not (Cnf.satisfied_by cnf m) then
      QCheck.Test.fail_report "solver returned an invalid model";
    true
  | Solver.Unsat -> false
  | Solver.Unknown -> QCheck.Test.fail_report "unexpected Unknown without budget"

let prop_agrees_with_oracle =
  QCheck.Test.make ~name:"cdcl = dpll oracle on random 3-SAT" ~count:1500
    random_cnf_gen
    (fun params ->
      let cnf = build params in
      solver_verdict cnf = oracle_verdict cnf)

let prop_all_presets_agree =
  QCheck.Test.make ~name:"all presets give the same verdict" ~count:150
    random_cnf_gen
    (fun params ->
      let cnf = build params in
      let verdicts =
        List.map (fun (_, config) -> solver_verdict ~config cnf) Config.presets
      in
      match verdicts with
      | [] -> true
      | v :: rest -> List.for_all (Bool.equal v) rest)

let prop_unsat_proofs_check =
  QCheck.Test.make ~name:"every UNSAT run emits a valid DRUP proof" ~count:200
    random_cnf_gen
    (fun params ->
      let cnf = build params in
      let solver = Solver.create cnf in
      let proof = Drup.create () in
      Solver.set_proof_logger solver (Drup.record proof);
      match Solver.solve solver with
      | Solver.Sat _ -> QCheck.assume_fail () (* only interested in UNSAT *)
      | Solver.Unknown -> QCheck.Test.fail_report "unexpected Unknown"
      | Solver.Unsat -> (
        match Drup.check cnf proof with
        | Drup.Valid -> true
        | Drup.Invalid { step; reason; _ } ->
          QCheck.Test.fail_report
            (Printf.sprintf "invalid proof at step %d: %s" step reason)))

let prop_preprocess_preserves_verdict =
  QCheck.Test.make ~name:"preprocessing preserves satisfiability" ~count:400
    random_cnf_gen
    (fun params ->
      let cnf = build params in
      let direct = solver_verdict cnf in
      match Berkmin.Preprocess.run cnf with
      | Berkmin.Preprocess.Unsat_detected -> direct = false
      | Berkmin.Preprocess.Simplified { cnf = simplified; forced } -> (
        match Solver.solve_cnf simplified with
        | Solver.Sat model ->
          direct
          && Cnf.satisfied_by cnf (Berkmin.Preprocess.extend_model ~forced model)
        | Solver.Unsat -> not direct
        | Solver.Unknown -> QCheck.Test.fail_report "unexpected Unknown"))

let prop_simplify_preserves_verdict =
  (* The in-solver simplifier (subsumption, self-subsuming resolution,
     bounded variable elimination, failed-literal probing) must never
     change a verdict, and after elimination the reconstructed model
     must still satisfy the ORIGINAL formula — [solver_verdict] checks
     exactly that. *)
  QCheck.Test.make ~name:"simplify (pre and inprocess) preserves every verdict"
    ~count:200 random_cnf_gen
    (fun params ->
      let cnf = build params in
      let plain = solver_verdict cnf in
      let pre =
        solver_verdict
          ~config:(Config.with_simplify Config.Simp_pre Config.berkmin)
          cnf
      in
      let inproc =
        solver_verdict
          ~config:(Config.with_simplify Config.Simp_inprocess Config.berkmin)
          cnf
      in
      plain = pre && plain = inproc)

let prop_budget_never_lies =
  (* With a tiny budget the solver may abort, but a definite verdict
     must still be correct. *)
  QCheck.Test.make ~name:"tiny budgets never produce wrong verdicts" ~count:300
    random_cnf_gen
    (fun params ->
      let cnf = build params in
      match Solver.solve_cnf ~budget:(Solver.budget_conflicts 5) cnf with
      | Solver.Unknown -> true
      | Solver.Sat m -> Cnf.satisfied_by cnf m
      | Solver.Unsat -> not (oracle_verdict cnf))

let prop_planted_models_found =
  QCheck.Test.make ~name:"planted instances solved SAT with valid models"
    ~count:200
    QCheck.(pair (QCheck.int_range 5 40) QCheck.small_int)
    (fun (n, seed) ->
      let cnf =
        Berkmin_gen.Random_ksat.planted ~num_vars:n ~num_clauses:(9 * n / 2) ~k:3
          ~seed
      in
      match Solver.solve_cnf cnf with
      | Solver.Sat m -> Cnf.satisfied_by cnf m
      | Solver.Unsat | Solver.Unknown -> false)

let prop_wide_clauses =
  (* Mix clause widths 1..6 to exercise watch handling on long
     clauses and units. *)
  QCheck.Test.make ~name:"mixed-width formulas agree with oracle" ~count:400
    QCheck.(
      pair (int_range 3 10) (int_range 0 1_000_000))
    (fun (nv, seed) ->
      let rng = Rng.create (seed + 1) in
      let cnf = Cnf.create ~num_vars:nv () in
      let n_clauses = 2 + Rng.int rng (4 * nv) in
      for _ = 1 to n_clauses do
        let width = 1 + Rng.int rng (min 6 nv) in
        let lits =
          List.init width (fun _ -> Lit.make (Rng.int rng nv) (Rng.bool rng))
        in
        Cnf.add_clause cnf lits
      done;
      solver_verdict cnf = oracle_verdict cnf)

let prop_cursor_matches_naive =
  (* The cached top-clause cursor must be invisible: under
     [debug_top_cursor] the solver replays the naive full-stack scan
     after every cursor-backed lookup and aborts on any divergence,
     and the decision sequence — every (variable, value) pair, in
     order — must be identical with the cursor check on and off. *)
  QCheck.Test.make ~name:"top-clause cursor picks the naive scan's decisions"
    ~count:300 random_cnf_gen
    (fun params ->
      let cnf = build params in
      let run config =
        let s = Solver.create ~config cnf in
        let decisions = ref [] in
        Solver.set_decision_hook s (fun v b -> decisions := (v, b) :: !decisions);
        let verdict =
          match Solver.solve s with
          | Solver.Sat _ -> true
          | Solver.Unsat -> false
          | Solver.Unknown -> QCheck.Test.fail_report "unexpected Unknown"
        in
        (verdict, List.rev !decisions)
      in
      run (Config.with_debug_top_cursor Config.berkmin) = run Config.berkmin)

let prop_deterministic =
  QCheck.Test.make ~name:"runs are reproducible" ~count:100 random_cnf_gen
    (fun params ->
      let cnf = build params in
      let run () =
        let s = Solver.create cnf in
        ignore (Solver.solve s);
        let st = Solver.stats s in
        (st.Berkmin.Stats.decisions, st.Berkmin.Stats.conflicts,
         st.Berkmin.Stats.propagations, st.Berkmin.Stats.learnt_total)
      in
      run () = run ())

(* ------------------------------------------------------------------ *)
(* Differential regression tier: a fixed-seed fuzz campaign (lib/fuzz)
   as an ordinary test.  Three solvers are raced — the CDCL engine, the
   same engine under an aggressive restart/deletion schedule that
   compacts the clause arena at nearly every restart, and the
   independent DPLL — and all four oracles (crash, model, DRUP proof,
   verdict agreement) must hold on every round.  In particular, GC can
   never change a verdict.  The campaign is a pure function of the
   seed, so a failure here reproduces exactly. *)

module Fuzz_runner = Berkmin_fuzz.Runner
module Fuzz_oracle = Berkmin_fuzz.Oracle

let gc_heavy_config =
  {
    Config.berkmin with
    Config.restart_mode = Config.Fixed 30;
    young_fraction = 0.5;
    young_keep_length = 100;
    old_keep_length = 1;
    old_activity_threshold = max_int / 2;
    old_threshold_increment = 0;
  }

let test_fuzz_differential_regression () =
  let config =
    {
      Fuzz_runner.default with
      Fuzz_runner.seed = 11;
      rounds = 200;
      solvers =
        Some
          [
            Fuzz_oracle.cdcl ();
            Fuzz_oracle.cdcl ~config:gc_heavy_config ();
            Fuzz_oracle.dpll ();
          ];
    }
  in
  let report = Fuzz_runner.run config in
  let describe ce =
    Berkmin_types.Json.to_string (Fuzz_runner.counterexample_to_json ce)
  in
  Alcotest.check
    Alcotest.(list string)
    "no counterexample in 200 seeded rounds" []
    (List.map describe report.Fuzz_runner.counterexamples);
  Alcotest.check Alcotest.bool "campaign decided SAT rounds" true
    (report.Fuzz_runner.sat > 0);
  Alcotest.check Alcotest.bool "campaign decided UNSAT rounds" true
    (report.Fuzz_runner.unsat > 0)

let test_fuzz_binary_layer_campaign () =
  (* PR-5 regression tier: the binary implication layer reordered BCP
     (binary implications drain before any long-clause watcher), so
     this campaign races the new engine against its own cursor
     cross-check, the pre-existing Chaff configuration and the DPLL
     oracle.  Any verdict change, invalid model, bogus proof or crash
     introduced by the new propagation order fails the round. *)
  let config =
    {
      Fuzz_runner.default with
      Fuzz_runner.seed = 13;
      rounds = 200;
      solvers =
        Some
          [
            Fuzz_oracle.cdcl ();
            Fuzz_oracle.cdcl
              ~config:(Config.with_debug_top_cursor Config.berkmin) ();
            Fuzz_oracle.cdcl ~config:Config.chaff ();
            Fuzz_oracle.dpll ();
          ];
    }
  in
  let report = Fuzz_runner.run config in
  let describe ce =
    Berkmin_types.Json.to_string (Fuzz_runner.counterexample_to_json ce)
  in
  Alcotest.check
    Alcotest.(list string)
    "no counterexample in 200 seeded rounds" []
    (List.map describe report.Fuzz_runner.counterexamples);
  Alcotest.check Alcotest.bool "campaign decided SAT rounds" true
    (report.Fuzz_runner.sat > 0);
  Alcotest.check Alcotest.bool "campaign decided UNSAT rounds" true
    (report.Fuzz_runner.unsat > 0)

let prop_gc_never_changes_verdict =
  QCheck.Test.make ~name:"aggressive GC schedule preserves every verdict"
    ~count:200 random_cnf_gen
    (fun params ->
      let cnf = build params in
      solver_verdict ~config:gc_heavy_config cnf = solver_verdict cnf)

let () =
  Alcotest.run "properties"
    [
      ( "cross-validation",
        [
          qtest prop_agrees_with_oracle;
          qtest prop_all_presets_agree;
          qtest prop_wide_clauses;
        ] );
      ( "certificates",
        [ qtest prop_unsat_proofs_check; qtest prop_planted_models_found ] );
      ( "robustness",
        [
          qtest prop_preprocess_preserves_verdict;
          qtest prop_simplify_preserves_verdict;
          qtest prop_budget_never_lies;
          qtest prop_deterministic;
          qtest prop_cursor_matches_naive;
        ] );
      ( "differential-regression",
        [
          Alcotest.test_case "seeded 200-round fuzz campaign, four oracles"
            `Quick test_fuzz_differential_regression;
          Alcotest.test_case
            "seed-13 binary-layer campaign vs chaff, cursor check and dpll"
            `Quick test_fuzz_binary_layer_campaign;
          qtest prop_gc_never_changes_verdict;
        ] );
    ]
