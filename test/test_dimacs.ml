(* Tests for the DIMACS reader/writer. *)

open Berkmin_types
module Dimacs = Berkmin_dimacs.Dimacs

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_parse_basic () =
  let cnf = Dimacs.parse_string "p cnf 3 2\n1 -2 0\n2 3 0\n" in
  check Alcotest.int "vars" 3 (Cnf.num_vars cnf);
  check Alcotest.int "clauses" 2 (Cnf.num_clauses cnf);
  check Alcotest.bool "first clause" true
    (Clause.equal (Cnf.get cnf 0) (Clause.of_list [ Lit.pos 0; Lit.neg_of 1 ]))

let test_parse_comments_and_blanks () =
  let cnf =
    Dimacs.parse_string
      "c a comment\nc another\n\np cnf 2 1\nc inline comment\n1 2 0\n\n"
  in
  check Alcotest.int "clauses" 1 (Cnf.num_clauses cnf)

let test_parse_multiline_clause () =
  let cnf = Dimacs.parse_string "p cnf 4 1\n1 2\n3 4 0\n" in
  check Alcotest.int "clauses" 1 (Cnf.num_clauses cnf);
  check Alcotest.int "clause length" 4 (Clause.length (Cnf.get cnf 0))

let test_parse_several_clauses_one_line () =
  let cnf = Dimacs.parse_string "p cnf 3 3\n1 0 2 0 -3 0\n" in
  check Alcotest.int "clauses" 3 (Cnf.num_clauses cnf)

let test_parse_missing_final_zero () =
  let cnf = Dimacs.parse_string "p cnf 2 2\n1 0\n-1 2" in
  check Alcotest.int "clauses" 2 (Cnf.num_clauses cnf)

let test_parse_no_header () =
  (* Header-less files occur in the wild; the reader tolerates them. *)
  let cnf = Dimacs.parse_string "1 2 0\n-1 0\n" in
  check Alcotest.int "vars inferred" 2 (Cnf.num_vars cnf);
  check Alcotest.int "clauses" 2 (Cnf.num_clauses cnf)

let test_parse_satlib_percent () =
  (* The stray "%\n0" tail of SATLIB files must not become an empty
     clause. *)
  let cnf = Dimacs.parse_string "p cnf 1 1\n1 0\n%\n0\n" in
  check Alcotest.int "clauses" 1 (Cnf.num_clauses cnf);
  check Alcotest.bool "no empty clause" false (Cnf.has_empty_clause cnf)

let expect_error input =
  match Dimacs.parse_string input with
  | exception Dimacs.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_parse_errors () =
  expect_error "p cnf x y\n";
  expect_error "p cnf 2 1\n1 junk 0\n";
  expect_error "p cnf 2 1\np cnf 2 1\n1 0\n";
  expect_error "p cnf 1 1\n5 0\n" (* literal above declared count *)

let test_print_roundtrip () =
  let cnf = Cnf.create ~num_vars:4 () in
  Cnf.add_clause cnf [ Lit.pos 0; Lit.neg_of 3 ];
  Cnf.add_clause cnf [ Lit.neg_of 1 ];
  let text = Dimacs.to_string cnf in
  let cnf2 = Dimacs.parse_string text in
  check Alcotest.int "vars" (Cnf.num_vars cnf) (Cnf.num_vars cnf2);
  check Alcotest.int "clauses" (Cnf.num_clauses cnf) (Cnf.num_clauses cnf2);
  check Alcotest.bool "clauses equal" true
    (List.for_all2 Clause.equal (Cnf.clauses cnf) (Cnf.clauses cnf2))

let test_file_roundtrip () =
  let cnf = Berkmin_gen.Pigeonhole.php 4 3 in
  let path = Filename.temp_file "berkmin_test" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dimacs.write_file path cnf;
      let cnf2 = Dimacs.parse_file path in
      check Alcotest.int "clauses" (Cnf.num_clauses cnf) (Cnf.num_clauses cnf2))

let test_solution_roundtrip () =
  let model = Some [| true; false; true |] in
  let text = Format.asprintf "%a" Dimacs.print_solution model in
  (match Dimacs.parse_solution text with
  | Some m -> check (Alcotest.array Alcotest.bool) "model" [| true; false; true |] m
  | None -> Alcotest.fail "expected a model");
  let text = Format.asprintf "%a" Dimacs.print_solution None in
  check Alcotest.bool "unsat roundtrip" true (Dimacs.parse_solution text = None)

let prop_roundtrip =
  QCheck.Test.make ~name:"dimacs: random cnf roundtrip" ~count:100
    QCheck.(pair (int_range 1 20) (int_range 0 30))
    (fun (nv, nc) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv
          ~num_clauses:nc ~k:(min 3 nv) ~seed:(Hashtbl.hash (nv, nc))
      in
      let cnf2 = Dimacs.parse_string (Dimacs.to_string cnf) in
      Cnf.num_clauses cnf = Cnf.num_clauses cnf2
      && List.for_all2 Clause.equal (Cnf.clauses cnf) (Cnf.clauses cnf2))

(* ---------------------------------------------------------------- *)
(* Streaming ≡ legacy.  The streaming parser must be observationally
   identical to the retained line-based one: same Cnf, or the same
   Parse_error (line and message) — on well-formed documents with
   arbitrary whitespace/comment/termination quirks, and on mutated
   byte strings that may or may not still parse. *)

let outcome parse text =
  match parse text with
  | cnf -> Ok (Cnf.num_vars cnf, Dimacs.to_string cnf)
  | exception Dimacs.Parse_error { line; message } -> Error (line, message)

let agree text =
  let s = outcome Dimacs.parse_string text
  and l = outcome Dimacs.Legacy.parse_string text in
  if s = l then true
  else
    QCheck.Test.fail_reportf "parsers disagree on %S:@.stream %s@.legacy %s"
      text
      (match s with
      | Ok (v, d) -> Printf.sprintf "Ok vars=%d %S" v d
      | Error (ln, m) -> Printf.sprintf "Error line %d %S" ln m)
      (match l with
      | Ok (v, d) -> Printf.sprintf "Ok vars=%d %S" v d
      | Error (ln, m) -> Printf.sprintf "Error line %d %S" ln m)

let gen_wellformed =
  let open QCheck.Gen in
  let sep = oneofl [ " "; "  "; "\t "; "\n"; " \n"; "\r\n"; "\t\n"; " \t " ] in
  let comment =
    oneofl [ ""; "c hello world\n"; "c\n"; "c\ttab comment\n"; "chello\n" ]
  in
  int_range 1 10 >>= fun nv ->
  list_size (int_range 0 10)
    (list_size (int_range 1 5)
       (int_range 1 nv >>= fun v -> oneofl [ v; -v ]))
  >>= fun clauses ->
  comment >>= fun c0 ->
  comment >>= fun c1 ->
  bool >>= fun header ->
  bool >>= fun percent_tail ->
  bool >>= fun missing_last_zero ->
  let tokens =
    List.concat_map (fun cl -> List.map string_of_int cl @ [ "0" ]) clauses
  in
  let tokens =
    match (missing_last_zero, List.rev tokens) with
    | true, "0" :: rest -> List.rev rest
    | _ -> tokens
  in
  list_repeat (List.length tokens) sep >>= fun seps ->
  let body = List.concat (List.map2 (fun t s -> [ t; s ]) tokens seps) in
  let hdr =
    if header then Printf.sprintf "p cnf %d %d\n" nv (List.length clauses)
    else ""
  in
  let tail = if percent_tail then "%\n0\n" else "" in
  return (c0 ^ hdr ^ c1 ^ String.concat "" body ^ tail)

let gen_mutated =
  let open QCheck.Gen in
  gen_wellformed >>= fun s ->
  oneofl
    [
      "zz "; "1x "; "p cnf 3 3\n"; "999 "; "- "; "0x2 "; "1_0 "; "+3 ";
      "p\n"; "%"; "c"; "00 "; "-0 "; "9999999999999999999999 ";
    ]
  >>= fun t ->
  int_range 0 (String.length s) >>= fun pos ->
  return (String.sub s 0 pos ^ t ^ String.sub s pos (String.length s - pos))

let prop_stream_eq_legacy =
  QCheck.Test.make ~name:"dimacs: streaming = legacy (well-formed)" ~count:500
    (QCheck.make gen_wellformed ~print:(fun s -> s))
    agree

let prop_stream_eq_legacy_mutated =
  QCheck.Test.make ~name:"dimacs: streaming = legacy (mutated)" ~count:500
    (QCheck.make gen_mutated ~print:(fun s -> s))
    agree

let test_stream_small_chunks () =
  (* Tokens straddling every possible chunk boundary: parse the same
     messy document at several tiny chunk sizes and compare with the
     one-shot parse. *)
  let text =
    "c header comment\np cnf 12 4\n1 -2 3 0 4 5\n-6 0\nc mid\n10 -11 12 0\n\
     7 8 9 0\n"
  in
  let reference = Dimacs.parse_string text in
  List.iter
    (fun chunk_size ->
      let cnf = Cnf.create () in
      Dimacs.iter_clauses ~chunk_size
        ~on_header:(fun ~vars ~clauses:_ -> Cnf.ensure_vars cnf vars)
        (Dimacs.From_string text)
        ~f:(fun lits n -> Cnf.add_clause_a cnf (Array.sub lits 0 n));
      check Alcotest.int
        (Printf.sprintf "clauses at chunk %d" chunk_size)
        (Cnf.num_clauses reference) (Cnf.num_clauses cnf);
      check Alcotest.bool
        (Printf.sprintf "equal at chunk %d" chunk_size)
        true
        (List.for_all2 Clause.equal (Cnf.clauses reference) (Cnf.clauses cnf)))
    [ 4; 5; 7; 16; 64 ]

let test_multi_mb_roundtrip () =
  (* A multi-MB synthetic file through the streaming path: write,
     re-parse with both parsers, compare; also check the scratch stays
     O(largest clause). *)
  let cnf =
    Berkmin_gen.Random_ksat.generate ~num_vars:2000 ~num_clauses:120_000 ~k:3
      ~seed:42
  in
  let path = Filename.temp_file "berkmin_big" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dimacs.write_file path cnf;
      let size = (Unix.stat path).Unix.st_size in
      check Alcotest.bool "file is multi-MB" true (size > 1_500_000);
      let streamed = Dimacs.parse_file path in
      let legacy = Dimacs.Legacy.parse_file path in
      check Alcotest.int "stream clauses" (Cnf.num_clauses cnf)
        (Cnf.num_clauses streamed);
      check Alcotest.bool "stream = original" true
        (List.for_all2 Clause.equal (Cnf.clauses cnf) (Cnf.clauses streamed));
      check Alcotest.bool "stream = legacy" true
        (List.for_all2 Clause.equal (Cnf.clauses legacy)
           (Cnf.clauses streamed));
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let (), scratch_words =
            Dimacs.fold_clauses_scratch (Dimacs.From_channel ic) ~init:()
              ~f:(fun () _ _ -> ())
          in
          (* every clause has 3 literals; the scratch must be near that,
             not near the file's 360k literals *)
          check Alcotest.bool "scratch is O(largest clause)" true
            (scratch_words <= 16)))

let () =
  Alcotest.run "dimacs"
    [
      ( "parse",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "comments/blanks" `Quick test_parse_comments_and_blanks;
          Alcotest.test_case "multiline clause" `Quick test_parse_multiline_clause;
          Alcotest.test_case "several per line" `Quick
            test_parse_several_clauses_one_line;
          Alcotest.test_case "missing final zero" `Quick
            test_parse_missing_final_zero;
          Alcotest.test_case "no header" `Quick test_parse_no_header;
          Alcotest.test_case "satlib tail" `Quick test_parse_satlib_percent;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "small chunks" `Quick test_stream_small_chunks;
          Alcotest.test_case "multi-MB roundtrip" `Quick test_multi_mb_roundtrip;
          qtest prop_stream_eq_legacy;
          qtest prop_stream_eq_legacy_mutated;
        ] );
      ( "print",
        [
          Alcotest.test_case "roundtrip" `Quick test_print_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "solution roundtrip" `Quick test_solution_roundtrip;
          qtest prop_roundtrip;
        ] );
    ]
