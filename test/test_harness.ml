(* Tests for the experiment harness: runner records, table formatting,
   stats helpers. *)

module Runner = Berkmin_harness.Runner
module Table = Berkmin_harness.Table
module Stats = Berkmin.Stats

let check = Alcotest.check

let test_run_instance_sat () =
  let inst = Berkmin_gen.Pigeonhole.instance 4 4 in
  let o = Runner.run_instance Berkmin.Config.berkmin inst in
  check Alcotest.bool "verdict" true (o.Runner.verdict = Runner.V_sat);
  check Alcotest.bool "correct" true o.Runner.correct;
  check Alcotest.bool "time recorded" true (o.Runner.seconds >= 0.0);
  check Alcotest.bool "initial clauses" true (o.Runner.initial_clauses > 0)

let test_run_instance_unsat () =
  let inst = Berkmin_gen.Pigeonhole.instance 5 4 in
  let o = Runner.run_instance Berkmin.Config.berkmin inst in
  check Alcotest.bool "verdict" true (o.Runner.verdict = Runner.V_unsat);
  check Alcotest.bool "correct" true o.Runner.correct

let test_run_instance_abort () =
  let inst = Berkmin_gen.Pigeonhole.instance 10 9 in
  let o =
    Runner.run_instance
      ~budget:(Berkmin.Solver.budget_conflicts 100)
      Berkmin.Config.berkmin inst
  in
  check Alcotest.bool "aborted" true (o.Runner.verdict = Runner.V_aborted);
  check Alcotest.bool "abort counted correct" true o.Runner.correct

let test_run_class () =
  let instances =
    [ Berkmin_gen.Pigeonhole.instance 4 4; Berkmin_gen.Pigeonhole.instance 5 4 ]
  in
  let r = Runner.run_class Berkmin.Config.berkmin "Hole" instances in
  check Alcotest.int "outcomes" 2 (List.length r.Runner.outcomes);
  check Alcotest.int "no aborts" 0 r.Runner.aborted;
  check Alcotest.int "no wrong" 0 r.Runner.wrong;
  check (Alcotest.float 0.001) "adjusted = total when no aborts"
    r.Runner.total_seconds
    (Runner.adjusted_seconds ~penalty:100.0 r)

let test_adjusted_seconds_with_aborts () =
  let instances = [ Berkmin_gen.Pigeonhole.instance 9 8 ] in
  let r =
    Runner.run_class
      ~budget:(Berkmin.Solver.budget_conflicts 10)
      Berkmin.Config.berkmin "Hole" instances
  in
  check Alcotest.int "one abort" 1 r.Runner.aborted;
  check Alcotest.bool "penalty applied" true
    (Runner.adjusted_seconds ~penalty:50.0 r >= 50.0)

(* ------------------------------------------------------------------ *)

let test_table_render () =
  let out =
    Table.render
      ~header:[ "a"; "b" ]
      [ [ "x"; "1" ]; [ "longer"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "4 lines + trailing" 5 (List.length lines);
  (* All non-empty lines are equally wide. *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  List.iter (fun w -> check Alcotest.int "aligned" (List.hd widths) w) widths

let test_table_seconds () =
  check Alcotest.string "plain" "12.35" (Table.seconds 12.345);
  check Alcotest.string "no aborts" "1.00"
    (Table.seconds_aborted 1.0 0 ~penalty:60.0);
  check Alcotest.string "with aborts" "> 121.00 (2)"
    (Table.seconds_aborted 1.0 2 ~penalty:60.0)

(* ------------------------------------------------------------------ *)

let test_stats_skin () =
  let st = Stats.create () in
  Stats.record_skin st 0;
  Stats.record_skin st 0;
  Stats.record_skin st 5;
  Stats.record_skin st 1000;
  check Alcotest.int "f(0)" 2 (Stats.skin_at st 0);
  check Alcotest.int "f(5)" 1 (Stats.skin_at st 5);
  check Alcotest.int "f(1000)" 1 (Stats.skin_at st 1000);
  check Alcotest.int "f(3) empty" 0 (Stats.skin_at st 3);
  check Alcotest.int "out of range" 0 (Stats.skin_at st 999999)

let test_stats_ratios () =
  let st = Stats.create () in
  st.Stats.learnt_total <- 20;
  Stats.note_live_clauses st 35;
  check (Alcotest.float 0.001) "db ratio" 3.0 (Stats.db_ratio st ~initial:10);
  check (Alcotest.float 0.001) "peak ratio" 3.5 (Stats.peak_ratio st ~initial:10);
  check (Alcotest.float 0.001) "zero initial" 0.0 (Stats.db_ratio st ~initial:0)

let test_stats_reset () =
  let st = Stats.create () in
  st.Stats.conflicts <- 5;
  Stats.record_skin st 3;
  Stats.reset st;
  check Alcotest.int "conflicts reset" 0 st.Stats.conflicts;
  check Alcotest.int "skin reset" 0 (Stats.skin_at st 3)

(* ------------------------------------------------------------------ *)

let test_config_presets_distinct () =
  let presets = Berkmin.Config.presets in
  check Alcotest.int "twelve presets" 12 (List.length presets);
  let names = List.map fst presets in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun (name, c) ->
      check Alcotest.string ("name_of " ^ name) name (Berkmin.Config.name_of c))
    presets

let test_experiment_names () =
  let names = Berkmin_harness.Experiments.names in
  check Alcotest.int "seventeen experiments" 17 (List.length names);
  check Alcotest.bool "table7 present" true (List.mem "table7" names);
  check Alcotest.bool "figure1 present" true (List.mem "figure1" names);
  check Alcotest.bool "ext-restarts present" true (List.mem "ext-restarts" names);
  check Alcotest.bool "unknown rejected" false
    (Berkmin_harness.Experiments.run_one Berkmin_harness.Experiments.quick_opts
       "nonsense")

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "sat outcome" `Quick test_run_instance_sat;
          Alcotest.test_case "unsat outcome" `Quick test_run_instance_unsat;
          Alcotest.test_case "abort outcome" `Quick test_run_instance_abort;
          Alcotest.test_case "class" `Quick test_run_class;
          Alcotest.test_case "adjusted seconds" `Quick
            test_adjusted_seconds_with_aborts;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "seconds" `Quick test_table_seconds;
        ] );
      ( "stats",
        [
          Alcotest.test_case "skin" `Quick test_stats_skin;
          Alcotest.test_case "ratios" `Quick test_stats_ratios;
          Alcotest.test_case "reset" `Quick test_stats_reset;
        ] );
      ( "config",
        [
          Alcotest.test_case "presets distinct" `Quick test_config_presets_distinct;
          Alcotest.test_case "experiment names" `Quick test_experiment_names;
        ] );
    ]
