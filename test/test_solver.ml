(* Engine-level tests: trivial formulas, unit propagation, every
   configuration preset on instances with known verdicts, budgets and
   resume, determinism, statistics, DPLL oracle, preprocessing, Luby. *)

open Berkmin_types
module Solver = Berkmin.Solver
module Config = Berkmin.Config
module Instance = Berkmin_gen.Instance

let check = Alcotest.check

let cnf_of lists =
  let cnf = Cnf.create () in
  List.iter (fun c -> Cnf.add_clause cnf (List.map Lit.of_dimacs c)) lists;
  cnf

let is_sat = function Solver.Sat _ -> true | Solver.Unsat | Solver.Unknown -> false
let is_unsat = function Solver.Unsat -> true | Solver.Sat _ | Solver.Unknown -> false

let solve_lists ?config lists = Solver.solve_cnf ?config (cnf_of lists)

(* ------------------------------------------------------------------ *)
(* Trivia                                                              *)

let test_empty_formula () =
  check Alcotest.bool "no clauses: SAT" true (is_sat (solve_lists []))

let test_empty_clause () =
  check Alcotest.bool "empty clause: UNSAT" true (is_unsat (solve_lists [ [] ]))

let test_single_unit () =
  match solve_lists [ [ 1 ] ] with
  | Solver.Sat m -> check Alcotest.bool "x=true" true m.(0)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected SAT"

let test_contradicting_units () =
  check Alcotest.bool "x & ~x" true (is_unsat (solve_lists [ [ 1 ]; [ -1 ] ]))

let test_tautology_ignored () =
  check Alcotest.bool "taut alone" true (is_sat (solve_lists [ [ 1; -1 ] ]));
  check Alcotest.bool "taut + unsat core" true
    (is_unsat (solve_lists [ [ 1; -1 ]; [ 2 ]; [ -2 ] ]))

let test_duplicate_literals () =
  match solve_lists [ [ 1; 1; 1 ]; [ -1; 2; 2 ] ] with
  | Solver.Sat m ->
    check Alcotest.bool "x" true m.(0);
    check Alcotest.bool "y" true m.(1)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected SAT"

let test_chain_propagation () =
  let lists = [ 1 ] :: List.init 9 (fun i -> [ -(i + 1); i + 2 ]) in
  let cnf = cnf_of lists in
  let s = Solver.create cnf in
  (match Solver.solve s with
  | Solver.Sat m -> Array.iter (fun b -> check Alcotest.bool "forced" true b) m
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected SAT");
  check Alcotest.int "no conflicts" 0 (Solver.stats s).Berkmin.Stats.conflicts

let test_paper_example () =
  (* The BCP example of Section 2: F = (a|~b)(b|~c|y)(c|~d|x)(c|d) with
     x=0, y=0 forced; branching a=0 reproduces the paper's conflict, so
     any model has a=1 — and the formula is satisfiable. *)
  let lists =
    [ [ 1; -2 ]; [ 2; -3; 5 ]; [ 3; -4; 6 ]; [ 3; 4 ]; [ -5 ]; [ -6 ] ]
  in
  match solve_lists lists with
  | Solver.Sat m ->
    (* c must be 1: from (c|~d|x), (c|d) with x=0, refuting c=0. *)
    check Alcotest.bool "c must be 1" true m.(2)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected SAT"

let test_value_of () =
  let cnf = cnf_of [ [ 1 ]; [ -1; 2 ] ] in
  let s = Solver.create cnf in
  ignore (Solver.solve s);
  check Alcotest.bool "v0 true" true (Value.equal (Solver.value_of s 0) Value.True);
  check Alcotest.bool "v1 true" true (Value.equal (Solver.value_of s 1) Value.True)

let test_gap_variables () =
  (* Variables mentioned nowhere still get total-model values. *)
  let cnf = Cnf.create ~num_vars:10 () in
  Cnf.add_clause cnf [ Lit.pos 9 ];
  match Solver.solve_cnf cnf with
  | Solver.Sat m ->
    check Alcotest.int "model covers all vars" 10 (Array.length m);
    check Alcotest.bool "constrained var" true m.(9)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected SAT"

(* ------------------------------------------------------------------ *)
(* Every preset must be a correct solver.                              *)

let known_instances () =
  [
    Berkmin_gen.Pigeonhole.instance 5 5;
    Berkmin_gen.Pigeonhole.instance 6 5;
    Berkmin_gen.Hanoi.sat_instance 3;
    Berkmin_gen.Hanoi.unsat_instance 3;
    Berkmin_gen.Blocksworld.sat_instance 3;
    Berkmin_gen.Blocksworld.unsat_instance 3;
    Berkmin_gen.Parity.chain_instance ~num_vars:24 ~extra:12 ~seed:5;
    Instance.make "cycle12" Instance.Expect_unsat
      (Berkmin_gen.Parity.inconsistent_cycle ~num_vars:12);
    Berkmin_gen.Graph_coloring.clique_instance 5 ~colors:5;
    Berkmin_gen.Graph_coloring.clique_instance 5 ~colors:4;
    Berkmin_gen.Circuit_bench.adder_miter ~width:5;
    Berkmin_gen.Parity.tseitin_instance ~num_vars:8 ~degree:3 ~seed:2;
  ]

let run_preset_on name config inst =
  let cnf = inst.Instance.cnf in
  match Solver.solve_cnf ~config cnf with
  | Solver.Sat m ->
    if not (Cnf.satisfied_by cnf m) then
      Alcotest.fail (Printf.sprintf "%s: bad model on %s" name inst.Instance.name);
    if not (Instance.consistent inst ~sat:true) then
      Alcotest.fail
        (Printf.sprintf "%s: SAT but expected UNSAT on %s" name inst.Instance.name)
  | Solver.Unsat ->
    if not (Instance.consistent inst ~sat:false) then
      Alcotest.fail
        (Printf.sprintf "%s: UNSAT but expected SAT on %s" name inst.Instance.name)
  | Solver.Unknown ->
    Alcotest.fail (Printf.sprintf "%s: unexpected Unknown on %s" name inst.Instance.name)

let preset_cases =
  List.map
    (fun (name, config) ->
      Alcotest.test_case name `Quick (fun () ->
          List.iter (run_preset_on name config) (known_instances ())))
    Config.presets

(* ------------------------------------------------------------------ *)
(* Budgets and resume                                                  *)

let hard_unsat () = Berkmin_gen.Pigeonhole.php 8 7

let test_conflict_budget () =
  let s = Solver.create (hard_unsat ()) in
  match Solver.solve ~budget:(Solver.budget_conflicts 50) s with
  | Solver.Unknown ->
    check Alcotest.bool "stopped near budget" true
      ((Solver.stats s).Berkmin.Stats.conflicts >= 50)
  | Solver.Sat _ | Solver.Unsat -> Alcotest.fail "php(8,7) needs > 50 conflicts"

let test_resume_after_unknown () =
  let s = Solver.create (hard_unsat ()) in
  (match Solver.solve ~budget:(Solver.budget_conflicts 50) s with
  | Solver.Unknown -> ()
  | Solver.Sat _ | Solver.Unsat -> Alcotest.fail "expected Unknown first");
  match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "resumed run must finish UNSAT"

let test_verdict_cached () =
  let s = Solver.create (cnf_of [ [ 1 ] ]) in
  let r1 = Solver.solve s in
  let r2 = Solver.solve s in
  check Alcotest.bool "same result object" true (r1 == r2 || (is_sat r1 && is_sat r2))

let test_time_budget () =
  let s = Solver.create (Berkmin_gen.Pigeonhole.php 11 10) in
  let budget = { Solver.max_conflicts = None; max_seconds = Some 0.2 } in
  let t0 = Sys.time () in
  (match Solver.solve ~budget s with
  | Solver.Unknown -> ()
  | Solver.Sat _ | Solver.Unsat -> Alcotest.fail "php(11,10) in 0.2s is implausible");
  let elapsed = Sys.time () -. t0 in
  check Alcotest.bool "stopped promptly" true (elapsed < 5.0)

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)

let run_stats config cnf =
  let s = Solver.create ~config cnf in
  ignore (Solver.solve s);
  let st = Solver.stats s in
  (st.Berkmin.Stats.decisions, st.Berkmin.Stats.conflicts,
   st.Berkmin.Stats.propagations)

let test_deterministic_runs () =
  let cnf = Berkmin_gen.Pigeonhole.php 7 6 in
  let a = run_stats Config.berkmin cnf in
  let b = run_stats Config.berkmin cnf in
  check (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
    "identical runs" a b

let test_seed_changes_run () =
  (* take_random flips coins, so a different seed should give a
     different trace on a nontrivial instance. *)
  let cnf = Berkmin_gen.Pigeonhole.php 7 6 in
  let a = run_stats (Config.with_seed 1 Config.take_random) cnf in
  let b = run_stats (Config.with_seed 2 Config.take_random) cnf in
  check Alcotest.bool "different seeds diverge" true (a <> b)

(* ------------------------------------------------------------------ *)
(* Statistics and database behaviour                                   *)

let test_stats_sanity () =
  let cnf = Berkmin_gen.Pigeonhole.php 7 6 in
  let s = Solver.create cnf in
  ignore (Solver.solve s);
  let st = Solver.stats s in
  check Alcotest.bool "decisions > 0" true (st.Berkmin.Stats.decisions > 0);
  check Alcotest.bool "conflicts > 0" true (st.Berkmin.Stats.conflicts > 0);
  check Alcotest.bool "learnt > 0" true (st.Berkmin.Stats.learnt_total > 0);
  check Alcotest.bool "peak >= initial" true
    (st.Berkmin.Stats.max_live_clauses >= Solver.num_original_clauses s);
  check Alcotest.int "decision split adds up" st.Berkmin.Stats.decisions
    (st.Berkmin.Stats.top_clause_decisions + st.Berkmin.Stats.global_decisions)

let test_restarts_and_reductions_happen () =
  let cnf = Berkmin_gen.Pigeonhole.php 8 7 in
  let s = Solver.create cnf in
  ignore (Solver.solve s);
  let st = Solver.stats s in
  check Alcotest.bool "restarted" true (st.Berkmin.Stats.restarts > 0);
  check Alcotest.bool "reduced" true (st.Berkmin.Stats.reductions > 0);
  check Alcotest.bool "old threshold grew" true
    (Solver.old_activity_threshold s
    > Config.berkmin.Config.old_activity_threshold - 1)

let test_skin_histogram_recorded () =
  let cnf = Berkmin_gen.Pigeonhole.php 8 7 in
  let s = Solver.create cnf in
  ignore (Solver.solve s);
  let st = Solver.stats s in
  let total = Array.fold_left ( + ) 0 st.Berkmin.Stats.skin in
  check Alcotest.int "skin sums to top-clause decisions"
    st.Berkmin.Stats.top_clause_decisions
    (total + st.Berkmin.Stats.skin_overflow)

let test_no_restarts_mode () =
  let config = { Config.berkmin with Config.restart_mode = Config.No_restarts } in
  let cnf = Berkmin_gen.Pigeonhole.php 7 6 in
  let s = Solver.create ~config cnf in
  (match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "expected UNSAT");
  check Alcotest.int "no restarts" 0 (Solver.stats s).Berkmin.Stats.restarts

let test_keep_all_mode () =
  let config = { Config.berkmin with Config.reduction_mode = Config.Keep_all } in
  let cnf = Berkmin_gen.Pigeonhole.php 7 6 in
  let s = Solver.create ~config cnf in
  (match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "expected UNSAT");
  check Alcotest.int "nothing removed" 0
    (Solver.stats s).Berkmin.Stats.removed_clauses

let test_decision_hook_fires () =
  let cnf = Berkmin_gen.Pigeonhole.php 6 5 in
  let s = Solver.create cnf in
  let count = ref 0 in
  Solver.set_decision_hook s (fun _ _ -> incr count);
  ignore (Solver.solve s);
  check Alcotest.int "hook saw every decision"
    (Solver.stats s).Berkmin.Stats.decisions !count

(* ------------------------------------------------------------------ *)
(* DPLL oracle                                                         *)

let test_dpll_basics () =
  (match Berkmin.Dpll.solve (cnf_of [ [ 1; 2 ]; [ -1 ]; [ -2 ] ]) with
  | Berkmin.Dpll.Unsat -> ()
  | Berkmin.Dpll.Sat _ | Berkmin.Dpll.Unknown -> Alcotest.fail "expected UNSAT");
  (match Berkmin.Dpll.solve (cnf_of [ [ 1; 2 ]; [ -1; 2 ] ]) with
  | Berkmin.Dpll.Sat m ->
    check Alcotest.bool "model valid" true
      (Cnf.satisfied_by (cnf_of [ [ 1; 2 ]; [ -1; 2 ] ]) m)
  | Berkmin.Dpll.Unsat | Berkmin.Dpll.Unknown -> Alcotest.fail "expected SAT");
  match Berkmin.Dpll.solve ~max_nodes:3 (Berkmin_gen.Pigeonhole.php 7 6) with
  | Berkmin.Dpll.Unknown -> ()
  | Berkmin.Dpll.Sat _ | Berkmin.Dpll.Unsat ->
    Alcotest.fail "expected budget exhaustion"

(* ------------------------------------------------------------------ *)
(* Preprocessing                                                       *)

let test_preprocess_units () =
  let cnf = cnf_of [ [ 1 ]; [ -1; 2 ]; [ -2; 3; 4 ] ] in
  match Berkmin.Preprocess.run cnf with
  | Berkmin.Preprocess.Simplified { cnf = out; forced } ->
    (* x1, x2 forced; (x3|x4) remains but is then erased by purity. *)
    check Alcotest.bool "x1 forced" true (List.mem (0, true) forced);
    check Alcotest.bool "x2 forced" true (List.mem (1, true) forced);
    check Alcotest.int "all clauses gone" 0 (Cnf.num_clauses out)
  | Berkmin.Preprocess.Unsat_detected -> Alcotest.fail "not UNSAT"

let test_preprocess_conflict () =
  match Berkmin.Preprocess.run (cnf_of [ [ 1 ]; [ -1 ] ]) with
  | Berkmin.Preprocess.Unsat_detected -> ()
  | Berkmin.Preprocess.Simplified _ -> Alcotest.fail "expected UNSAT"

let test_preprocess_pure_literals () =
  (* x1 occurs only positively: clauses containing it disappear. *)
  let cnf = cnf_of [ [ 1; 2 ]; [ 1; -2 ]; [ 2; 3 ]; [ -3; -2 ] ] in
  match Berkmin.Preprocess.run cnf with
  | Berkmin.Preprocess.Simplified { forced; _ } ->
    check Alcotest.bool "x1 pure positive" true (List.mem (0, true) forced)
  | Berkmin.Preprocess.Unsat_detected -> Alcotest.fail "not UNSAT"

let test_preprocess_extend_model () =
  let cnf = cnf_of [ [ 1 ]; [ -1; 2 ]; [ 3; 4 ]; [ -3; 4 ] ] in
  match Berkmin.Preprocess.run cnf with
  | Berkmin.Preprocess.Simplified { cnf = simplified; forced } -> (
    match Solver.solve_cnf simplified with
    | Solver.Sat model ->
      let full = Berkmin.Preprocess.extend_model ~forced model in
      check Alcotest.bool "extended model satisfies original" true
        (Cnf.satisfied_by cnf full)
    | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected SAT")
  | Berkmin.Preprocess.Unsat_detected -> Alcotest.fail "not UNSAT"

(* ------------------------------------------------------------------ *)
(* Luby                                                                *)

let test_luby_sequence () =
  let expected = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  let got = List.init 15 (fun i -> Berkmin.Luby.term (i + 1)) in
  check (Alcotest.list Alcotest.int) "first 15 terms" expected got;
  check Alcotest.int "scaled" 64 (Berkmin.Luby.interval ~unit:32 3);
  Alcotest.check_raises "term 0" (Invalid_argument "Luby.term") (fun () ->
      ignore (Berkmin.Luby.term 0))

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Bulk load (streaming DIMACS straight into the solver).              *)

module Dimacs = Berkmin_dimacs.Dimacs

(* [load] must be indistinguishable from [create ∘ parse]: same
   verdict and, because construction order is identical, the same
   search trace (conflict/decision/propagation counts). *)
let assert_load_equiv ?config name text =
  let s_parse = Solver.create ?config (Dimacs.parse_string text) in
  let s_load = Solver.load_string ?config text in
  check Alcotest.int (name ^ ": nvars") (Solver.num_vars s_parse)
    (Solver.num_vars s_load);
  check Alcotest.int (name ^ ": n_original")
    (Solver.num_original_clauses s_parse)
    (Solver.num_original_clauses s_load);
  let r_parse = Solver.solve s_parse and r_load = Solver.solve s_load in
  check Alcotest.bool (name ^ ": same verdict") true
    (match (r_parse, r_load) with
    | Solver.Sat _, Solver.Sat _
    | Solver.Unsat, Solver.Unsat
    | Solver.Unknown, Solver.Unknown -> true
    | _ -> false);
  let st_parse = Solver.stats s_parse and st_load = Solver.stats s_load in
  check Alcotest.int (name ^ ": same conflicts")
    st_parse.Berkmin.Stats.conflicts st_load.Berkmin.Stats.conflicts;
  check Alcotest.int (name ^ ": same decisions")
    st_parse.Berkmin.Stats.decisions st_load.Berkmin.Stats.decisions;
  check Alcotest.int (name ^ ": same propagations")
    st_parse.Berkmin.Stats.propagations st_load.Berkmin.Stats.propagations

let test_load_equivalence () =
  let hole = Berkmin_gen.Pigeonhole.php 6 5 in
  assert_load_equiv "hole_6_5" (Dimacs.to_string hole);
  let planted =
    Berkmin_gen.Random_ksat.planted ~num_vars:80 ~num_clauses:340 ~k:3 ~seed:9
  in
  assert_load_equiv "planted" (Dimacs.to_string planted);
  assert_load_equiv ~config:Berkmin.Config.modern "planted/modern"
    (Dimacs.to_string planted);
  (* degenerate shapes: units, tautologies, duplicates, empty clause *)
  assert_load_equiv "units" "p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n";
  assert_load_equiv "tautology" "p cnf 2 2\n1 -1 0\n2 2 0\n";
  assert_load_equiv "empty clause" "p cnf 2 2\n1 0\n0\n";
  assert_load_equiv "contradiction" "p cnf 1 2\n1 0\n-1 0\n";
  assert_load_equiv "headerless" "1 2 0\n-1 -2 0\n1 -2 0\n-1 2 0\n"

let test_load_stats_recorded () =
  let text = Dimacs.to_string (Berkmin_gen.Pigeonhole.php 5 4) in
  let s = Solver.load_string text in
  let st = Solver.stats s in
  check Alcotest.bool "load_clauses set" true
    (st.Berkmin.Stats.load_clauses > 0);
  check Alcotest.bool "load_literals set" true
    (st.Berkmin.Stats.load_literals >= st.Berkmin.Stats.load_clauses);
  check Alcotest.bool "scratch recorded" true
    (st.Berkmin.Stats.load_scratch_words > 0);
  check Alcotest.bool "wall time sane" true (st.Berkmin.Stats.time_load >= 0.0)

let test_load_file_solves () =
  let inst = Berkmin_gen.Pigeonhole.instance 6 5 in
  let path = Filename.temp_file "berkmin_load" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dimacs.write_file path inst.Instance.cnf;
      let s = Solver.load_file path in
      check Alcotest.bool "hole_6_5 is UNSAT" true (is_unsat (Solver.solve s)))

let () =
  Alcotest.run "solver"
    [
      ( "trivia",
        [
          Alcotest.test_case "empty formula" `Quick test_empty_formula;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "single unit" `Quick test_single_unit;
          Alcotest.test_case "contradicting units" `Quick test_contradicting_units;
          Alcotest.test_case "tautology" `Quick test_tautology_ignored;
          Alcotest.test_case "duplicate literals" `Quick test_duplicate_literals;
          Alcotest.test_case "chain propagation" `Quick test_chain_propagation;
          Alcotest.test_case "paper example" `Quick test_paper_example;
          Alcotest.test_case "value_of" `Quick test_value_of;
          Alcotest.test_case "gap variables" `Quick test_gap_variables;
        ] );
      ("presets", preset_cases);
      ( "budget",
        [
          Alcotest.test_case "conflict budget" `Quick test_conflict_budget;
          Alcotest.test_case "resume" `Quick test_resume_after_unknown;
          Alcotest.test_case "verdict cached" `Quick test_verdict_cached;
          Alcotest.test_case "time budget" `Quick test_time_budget;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed same run" `Quick test_deterministic_runs;
          Alcotest.test_case "different seeds" `Quick test_seed_changes_run;
        ] );
      ( "stats",
        [
          Alcotest.test_case "sanity" `Quick test_stats_sanity;
          Alcotest.test_case "restarts/reductions" `Quick
            test_restarts_and_reductions_happen;
          Alcotest.test_case "skin histogram" `Quick test_skin_histogram_recorded;
          Alcotest.test_case "no-restart mode" `Quick test_no_restarts_mode;
          Alcotest.test_case "keep-all mode" `Quick test_keep_all_mode;
          Alcotest.test_case "decision hook" `Quick test_decision_hook_fires;
        ] );
      ("dpll", [ Alcotest.test_case "basics" `Quick test_dpll_basics ]);
      ( "preprocess",
        [
          Alcotest.test_case "units" `Quick test_preprocess_units;
          Alcotest.test_case "conflict" `Quick test_preprocess_conflict;
          Alcotest.test_case "pure literals" `Quick test_preprocess_pure_literals;
          Alcotest.test_case "extend model" `Quick test_preprocess_extend_model;
        ] );
      ("luby", [ Alcotest.test_case "sequence" `Quick test_luby_sequence ]);
      ( "bulk-load",
        [
          Alcotest.test_case "load = create" `Quick test_load_equivalence;
          Alcotest.test_case "load stats recorded" `Quick
            test_load_stats_recorded;
          Alcotest.test_case "load_file solves" `Quick test_load_file_solves;
        ] );
    ]
