(* Tests for the engine extensions beyond the paper's 2002
   configuration: the Var_heap variable order (BerkMin561 strategy 3),
   incremental solving with assumptions and failed cores, learnt-clause
   minimization, and the top-window decision generalisation
   (Remark 2). *)

open Berkmin_types
module Solver = Berkmin.Solver
module Config = Berkmin.Config
module Var_heap = Berkmin.Var_heap

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let cnf_of lists =
  let cnf = Cnf.create () in
  List.iter (fun c -> Cnf.add_clause cnf (List.map Lit.of_dimacs c)) lists;
  cnf

(* ------------------------------------------------------------------ *)
(* Var_heap                                                            *)

let test_heap_basic () =
  let activity = [| 1.0; 5.0; 3.0; 5.0 |] in
  let h = Var_heap.create ~num_vars:4 ~activity in
  check Alcotest.int "size" 4 (Var_heap.size h);
  (* Max activity 5.0 shared by vars 1 and 3: smaller index first. *)
  check Alcotest.int "max" 1 (Var_heap.pop_max h);
  check Alcotest.int "next" 3 (Var_heap.pop_max h);
  check Alcotest.int "then" 2 (Var_heap.pop_max h);
  check Alcotest.int "last" 0 (Var_heap.pop_max h);
  check Alcotest.bool "empty" true (Var_heap.is_empty h);
  Alcotest.check_raises "pop empty" (Invalid_argument "Var_heap.pop_max: empty")
    (fun () -> ignore (Var_heap.pop_max h))

let test_heap_push_and_mem () =
  let activity = [| 1.0; 2.0; 3.0 |] in
  let h = Var_heap.create ~num_vars:3 ~activity in
  check Alcotest.bool "mem 1" true (Var_heap.mem h 1);
  ignore (Var_heap.pop_max h);
  check Alcotest.bool "popped gone" false (Var_heap.mem h 2);
  Var_heap.push h 2;
  check Alcotest.bool "back" true (Var_heap.mem h 2);
  Var_heap.push h 2;
  check Alcotest.int "no duplicate" 3 (Var_heap.size h)

let test_heap_notify_increase () =
  let activity = [| 1.0; 2.0; 3.0; 4.0 |] in
  let h = Var_heap.create ~num_vars:4 ~activity in
  activity.(0) <- 10.0;
  Var_heap.notify_increase h 0;
  check Alcotest.int "promoted" 0 (Var_heap.pop_max h)

let prop_heap_matches_naive_scan =
  (* Drain the heap after a random mix of pops, pushes and increases;
     each pop must match the naive scan on the live set. *)
  QCheck.Test.make ~name:"var_heap: agrees with linear scan" ~count:300
    QCheck.(pair (int_range 1 30) (list (pair (int_range 0 29) (int_range 0 100))))
    (fun (n, updates) ->
      let activity = Array.make n 0.0 in
      let h = Var_heap.create ~num_vars:n ~activity in
      let live = Array.make n true in
      let naive_max () =
        let best = ref (-1) in
        for v = 0 to n - 1 do
          if live.(v)
             && (!best < 0
                || activity.(v) > activity.(!best)
                || (activity.(v) = activity.(!best) && v < !best))
          then best := v
        done;
        !best
      in
      List.iter
        (fun (v, bump) ->
          let v = v mod n in
          if bump mod 3 = 0 && live.(v) then begin
            activity.(v) <- activity.(v) +. float_of_int bump;
            Var_heap.notify_increase h v
          end
          else if bump mod 3 = 1 && not live.(v) then begin
            live.(v) <- true;
            Var_heap.push h v
          end
          else if live.(v) then begin
            let expected = naive_max () in
            let got = Var_heap.pop_max h in
            if got <> expected then QCheck.Test.fail_report "pop mismatch";
            live.(got) <- false
          end)
        updates;
      (* Drain. *)
      let ok = ref true in
      while not (Var_heap.is_empty h) do
        let expected = naive_max () in
        let got = Var_heap.pop_max h in
        if got <> expected then ok := false;
        live.(got) <- false
      done;
      !ok)

let test_heap_mode_same_decisions () =
  (* strategy 3 must reproduce the naive scan's run exactly. *)
  let cnf = Berkmin_gen.Pigeonhole.php 7 6 in
  let run config =
    let s = Solver.create ~config cnf in
    ignore (Solver.solve s);
    let st = Solver.stats s in
    (st.Berkmin.Stats.decisions, st.Berkmin.Stats.conflicts)
  in
  check
    (Alcotest.pair Alcotest.int Alcotest.int)
    "identical traces"
    (run Config.berkmin)
    (run { Config.berkmin with Config.use_var_heap = true })

let prop_heap_mode_identical_runs =
  QCheck.Test.make ~name:"heap mode: identical run statistics" ~count:150
    QCheck.(pair (int_range 3 10) (int_range 0 1_000_000))
    (fun (nv, seed) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv ~num_clauses:(4 * nv)
          ~k:3 ~seed
      in
      let run config =
        let s = Solver.create ~config cnf in
        let r = Solver.solve s in
        let st = Solver.stats s in
        ( (match r with Solver.Sat _ -> 1 | Solver.Unsat -> 0 | Solver.Unknown -> 2),
          st.Berkmin.Stats.decisions,
          st.Berkmin.Stats.conflicts,
          st.Berkmin.Stats.propagations )
      in
      run Config.berkmin
      = run { Config.berkmin with Config.use_var_heap = true })

(* ------------------------------------------------------------------ *)
(* Assumptions                                                         *)

let test_assumptions_basic () =
  (* (x | y): SAT under x=0; UNSAT under x=0, y=0. *)
  let s = Solver.create (cnf_of [ [ 1; 2 ] ]) in
  (match Solver.solve_with_assumptions s [ Lit.neg_of 0 ] with
  | Solver.A_sat m ->
    check Alcotest.bool "x false" false m.(0);
    check Alcotest.bool "y true" true m.(1)
  | Solver.A_unsat | Solver.A_unsat_assuming _ | Solver.A_unknown ->
    Alcotest.fail "expected SAT");
  match Solver.solve_with_assumptions s [ Lit.neg_of 0; Lit.neg_of 1 ] with
  | Solver.A_unsat_assuming core ->
    check Alcotest.bool "core subset of assumptions" true
      (List.for_all (fun l -> List.mem l [ Lit.neg_of 0; Lit.neg_of 1 ]) core);
    check Alcotest.bool "core nonempty" true (core <> [])
  | Solver.A_sat _ | Solver.A_unsat | Solver.A_unknown ->
    Alcotest.fail "expected UNSAT under assumptions"

let test_assumptions_global_unsat () =
  let s = Solver.create (cnf_of [ [ 1 ]; [ -1 ] ]) in
  match Solver.solve_with_assumptions s [ Lit.pos 1 ] with
  | Solver.A_unsat -> ()
  | Solver.A_sat _ | Solver.A_unsat_assuming _ | Solver.A_unknown ->
    Alcotest.fail "globally UNSAT regardless of assumptions"

let test_assumptions_contradictory () =
  let s = Solver.create (cnf_of [ [ 1; 2 ] ]) in
  match Solver.solve_with_assumptions s [ Lit.pos 0; Lit.neg_of 0 ] with
  | Solver.A_unsat_assuming core ->
    check Alcotest.bool "both phases in core" true
      (List.mem (Lit.pos 0) core && List.mem (Lit.neg_of 0) core)
  | Solver.A_sat _ | Solver.A_unsat | Solver.A_unknown ->
    Alcotest.fail "expected failure"

let test_assumptions_reusable () =
  (* The same solver answers a sequence of queries — the incremental
     use case (e.g. one miter, many output assumptions). *)
  let s = Solver.create (cnf_of [ [ 1; 2 ]; [ -1; 3 ]; [ -2; 3 ] ]) in
  let sat assumptions =
    match Solver.solve_with_assumptions s assumptions with
    | Solver.A_sat _ -> true
    | Solver.A_unsat | Solver.A_unsat_assuming _ -> false
    | Solver.A_unknown -> Alcotest.fail "unexpected Unknown"
  in
  check Alcotest.bool "q1" true (sat [ Lit.pos 0 ]);
  check Alcotest.bool "q2: ~z forces ~x,~y conflict" false (sat [ Lit.neg_of 2 ]);
  check Alcotest.bool "q3" true (sat [ Lit.pos 1 ]);
  check Alcotest.bool "q4 repeat" false (sat [ Lit.neg_of 2 ]);
  (* Plain solve still works afterwards. *)
  match Solver.solve s with
  | Solver.Sat _ -> ()
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "formula is SAT"

let test_assumptions_unknown_var_rejected () =
  let s = Solver.create (cnf_of [ [ 1 ] ]) in
  Alcotest.check_raises "unknown variable"
    (Invalid_argument "solve_with_assumptions: unknown variable") (fun () ->
      ignore (Solver.solve_with_assumptions s [ Lit.pos 99 ]))

let prop_assumptions_agree_with_conjoined =
  (* solve_with_assumptions F A must equal solve (F ∧ A as units). *)
  QCheck.Test.make ~name:"assumptions = conjoined units" ~count:400
    QCheck.(triple (int_range 3 10) (int_range 0 1_000_000) (int_range 1 3))
    (fun (nv, seed, n_assumptions) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv ~num_clauses:(4 * nv)
          ~k:3 ~seed
      in
      let rng = Rng.create (seed + 13) in
      let assumptions =
        List.init n_assumptions (fun _ ->
            Lit.make (Rng.int rng nv) (Rng.bool rng))
      in
      let conjoined = Cnf.copy cnf in
      List.iter (fun l -> Cnf.add_clause conjoined [ l ]) assumptions;
      let expected =
        match Solver.solve_cnf conjoined with
        | Solver.Sat _ -> true
        | Solver.Unsat -> false
        | Solver.Unknown -> QCheck.assume_fail ()
      in
      let s = Solver.create cnf in
      match Solver.solve_with_assumptions s assumptions with
      | Solver.A_sat m ->
        expected
        && Cnf.satisfied_by cnf m
        && List.for_all
             (fun l -> m.(Lit.var l) = Lit.is_pos l)
             assumptions
      | Solver.A_unsat | Solver.A_unsat_assuming _ -> not expected
      | Solver.A_unknown -> QCheck.Test.fail_report "unexpected Unknown")

let prop_failed_core_is_sufficient =
  (* Re-solving under just the failed core must still be UNSAT. *)
  QCheck.Test.make ~name:"failed core alone is still contradictory" ~count:300
    QCheck.(pair (int_range 3 9) (int_range 0 1_000_000))
    (fun (nv, seed) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv ~num_clauses:(5 * nv)
          ~k:3 ~seed
      in
      let rng = Rng.create (seed + 5) in
      let assumptions =
        List.init 3 (fun _ -> Lit.make (Rng.int rng nv) (Rng.bool rng))
      in
      let s = Solver.create cnf in
      match Solver.solve_with_assumptions s assumptions with
      | Solver.A_unsat_assuming core -> (
        let s2 = Solver.create cnf in
        match Solver.solve_with_assumptions s2 core with
        | Solver.A_unsat_assuming _ | Solver.A_unsat -> true
        | Solver.A_sat _ -> QCheck.Test.fail_report "core was not contradictory"
        | Solver.A_unknown -> QCheck.Test.fail_report "unexpected Unknown")
      | Solver.A_sat _ | Solver.A_unsat -> QCheck.assume_fail ()
      | Solver.A_unknown -> QCheck.Test.fail_report "unexpected Unknown")

let test_assumptions_incremental_equivalence_queries () =
  (* The classic EDA use: one Tseitin encoding, per-output queries. *)
  let module C = Berkmin_circuit.Circuit in
  let module B = Berkmin_circuit.Bitvec in
  let module T = Berkmin_circuit.Tseitin in
  let c = C.create () in
  let a = B.inputs c "a" 4 and b = B.inputs c "b" 4 in
  let r_sum, r_carry = B.ripple_carry_add c a b in
  let s_sum, s_carry = B.carry_select_add c ~block:2 a b in
  let diffs =
    Array.to_list (Array.map2 (C.xor_ c) r_sum s_sum)
    @ [ C.xor_ c r_carry s_carry ]
  in
  List.iteri (fun i d -> C.set_output c (Printf.sprintf "d%d" i) d) diffs;
  let m = T.encode c in
  let solver = Solver.create m.T.cnf in
  List.iteri
    (fun i _ ->
      let out = C.output_exn c (Printf.sprintf "d%d" i) in
      match Solver.solve_with_assumptions solver [ Lit.pos m.T.node_var.(out) ] with
      | Solver.A_unsat | Solver.A_unsat_assuming _ -> ()
      | Solver.A_sat _ -> Alcotest.fail (Printf.sprintf "output %d differs" i)
      | Solver.A_unknown -> Alcotest.fail "unexpected Unknown")
    diffs

(* ------------------------------------------------------------------ *)
(* Minimization                                                        *)

let minimizing = { Config.berkmin with Config.ccmin_mode = Config.Ccmin_basic }

let prop_minimization_preserves_verdicts =
  QCheck.Test.make ~name:"minimization: verdicts unchanged" ~count:400
    QCheck.(pair (int_range 3 10) (int_range 0 1_000_000))
    (fun (nv, seed) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv ~num_clauses:(9 * nv / 2)
          ~k:3 ~seed
      in
      let verdict config =
        match Solver.solve_cnf ~config cnf with
        | Solver.Sat m ->
          if not (Cnf.satisfied_by cnf m) then
            QCheck.Test.fail_report "invalid model under minimization";
          true
        | Solver.Unsat -> false
        | Solver.Unknown -> QCheck.Test.fail_report "unexpected Unknown"
      in
      verdict Config.berkmin = verdict minimizing)

let prop_minimized_proofs_still_check =
  QCheck.Test.make ~name:"minimization: DRUP proofs stay valid" ~count:100
    QCheck.(pair (int_range 4 9) (int_range 0 1_000_000))
    (fun (nv, seed) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv ~num_clauses:(5 * nv)
          ~k:3 ~seed
      in
      let s = Solver.create ~config:minimizing cnf in
      let proof = Berkmin_proof.Drup.create () in
      Solver.set_proof_logger s (Berkmin_proof.Drup.record proof);
      match Solver.solve s with
      | Solver.Sat _ -> QCheck.assume_fail ()
      | Solver.Unknown -> QCheck.Test.fail_report "unexpected Unknown"
      | Solver.Unsat -> (
        match Berkmin_proof.Drup.check cnf proof with
        | Berkmin_proof.Drup.Valid -> true
        | Berkmin_proof.Drup.Invalid _ -> false))

let test_minimization_shortens_clauses () =
  let cnf = Berkmin_gen.Pigeonhole.php 8 7 in
  let run config =
    let s = Solver.create ~config cnf in
    ignore (Solver.solve s);
    Solver.stats s
  in
  let plain = run Config.berkmin in
  let minimized = run minimizing in
  check Alcotest.bool "literals were dropped" true
    (minimized.Berkmin.Stats.minimized_literals > 0);
  check Alcotest.int "plain never minimizes" 0
    plain.Berkmin.Stats.minimized_literals

(* ------------------------------------------------------------------ *)
(* Top-window decisions (Remark 2)                                     *)

let windowed k = { Config.berkmin with Config.top_window = k }

let prop_window_preserves_verdicts =
  QCheck.Test.make ~name:"top_window: verdicts unchanged" ~count:300
    QCheck.(
      triple (int_range 3 10) (int_range 0 1_000_000) (int_range 2 8))
    (fun (nv, seed, w) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv ~num_clauses:(9 * nv / 2)
          ~k:3 ~seed
      in
      let verdict config =
        match Solver.solve_cnf ~config cnf with
        | Solver.Sat m -> Cnf.satisfied_by cnf m || QCheck.Test.fail_report "bad model"
        | Solver.Unsat -> false
        | Solver.Unknown -> QCheck.Test.fail_report "unexpected Unknown"
      in
      verdict Config.berkmin = verdict (windowed w))

let test_window_solves_known () =
  List.iter
    (fun w ->
      let config = windowed w in
      (match Solver.solve_cnf ~config (Berkmin_gen.Pigeonhole.php 7 6) with
      | Solver.Unsat -> ()
      | Solver.Sat _ | Solver.Unknown ->
        Alcotest.fail (Printf.sprintf "window %d: php(7,6) must be UNSAT" w));
      match
        Solver.solve_cnf ~config
          (Berkmin_gen.Hanoi.encode ~disks:3 ~horizon:7)
      with
      | Solver.Sat _ -> ()
      | Solver.Unsat | Solver.Unknown ->
        Alcotest.fail (Printf.sprintf "window %d: hanoi3 must be SAT" w))
    [ 2; 4; 16 ]

(* ------------------------------------------------------------------ *)
(* Simplify (subsumption + self-subsuming resolution)                  *)

let test_simplify_subsumption () =
  (* (x) subsumes (x | y) and (x | y | z). *)
  let cnf = cnf_of [ [ 1 ]; [ 1; 2 ]; [ 1; 2; 3 ]; [ -2; 3 ] ] in
  let r = Berkmin.Simplify.run cnf in
  check Alcotest.int "two subsumed" 2 r.Berkmin.Simplify.subsumed;
  check Alcotest.int "two clauses left" 2
    (Cnf.num_clauses r.Berkmin.Simplify.cnf)

let test_simplify_strengthening () =
  (* (x | a) and (~x | a | b): the second strengthens to (a | b). *)
  let cnf = cnf_of [ [ 1; 2 ]; [ -1; 2; 3 ] ] in
  let r = Berkmin.Simplify.run cnf in
  check Alcotest.bool "strengthened" true (r.Berkmin.Simplify.strengthened >= 1);
  let has_clause lits =
    List.exists
      (Clause.equal (Clause.of_list (List.map Lit.of_dimacs lits)))
      (Cnf.clauses r.Berkmin.Simplify.cnf)
  in
  check Alcotest.bool "(a|b) present" true (has_clause [ 2; 3 ]);
  check Alcotest.bool "original long clause gone" false (has_clause [ -1; 2; 3 ])

let test_simplify_derives_empty () =
  (* (x) and (~x) strengthen/subsume down to the empty clause. *)
  let cnf = cnf_of [ [ 1 ]; [ -1 ] ] in
  let r = Berkmin.Simplify.run cnf in
  check Alcotest.bool "empty clause derived" true
    (Cnf.has_empty_clause r.Berkmin.Simplify.cnf)

let test_simplify_tautology_and_duplicates () =
  let cnf = cnf_of [ [ 1; -1 ]; [ 2; 3 ]; [ 3; 2 ] ] in
  let r = Berkmin.Simplify.run cnf in
  check Alcotest.int "one clause" 1 (Cnf.num_clauses r.Berkmin.Simplify.cnf)

let prop_simplify_preserves_equivalence =
  QCheck.Test.make ~name:"simplify: logically equivalent output" ~count:400
    QCheck.(pair (int_range 3 10) (int_range 0 1_000_000))
    (fun (nv, seed) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv ~num_clauses:(5 * nv)
          ~k:3 ~seed
      in
      let r = Berkmin.Simplify.run cnf in
      let simplified = r.Berkmin.Simplify.cnf in
      (* Same verdict, and SAT models transfer in both directions
         (the rewrites preserve equivalence). *)
      match Solver.solve_cnf cnf, Solver.solve_cnf simplified with
      | Solver.Sat m, Solver.Sat m' ->
        Cnf.satisfied_by simplified m && Cnf.satisfied_by cnf m'
      | Solver.Unsat, Solver.Unsat -> true
      | (Solver.Sat _ | Solver.Unsat | Solver.Unknown), _ ->
        QCheck.Test.fail_report "verdict changed")

let prop_simplify_never_grows =
  QCheck.Test.make ~name:"simplify: clause count never grows" ~count:200
    QCheck.(pair (int_range 3 12) (int_range 0 1_000_000))
    (fun (nv, seed) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv ~num_clauses:(4 * nv)
          ~k:3 ~seed
      in
      let r = Berkmin.Simplify.run cnf in
      Cnf.num_clauses r.Berkmin.Simplify.cnf <= Cnf.num_clauses cnf)

(* ------------------------------------------------------------------ *)
(* Bounded variable elimination                                        *)

let test_var_elim_pure () =
  (* x1 occurs only positively: zero resolvents, trivially eliminated. *)
  let cnf = cnf_of [ [ 1; 2 ]; [ 1; -2 ]; [ 2; 3 ] ] in
  let r = Berkmin.Var_elim.run cnf in
  check Alcotest.bool "x1 eliminated" true
    (List.mem 0 (Berkmin.Var_elim.eliminated_vars r))

let test_var_elim_resolution () =
  (* (x|a) (¬x|b): eliminating x yields (a|b), after which a and b are
     pure and cascade away too — everything eliminated, zero clauses
     left, and reconstruction must still rebuild a real model. *)
  let cnf = cnf_of [ [ 1; 2 ]; [ -1; 3 ] ] in
  let r = Berkmin.Var_elim.run cnf in
  check Alcotest.bool "x eliminated" true
    (List.mem 0 (Berkmin.Var_elim.eliminated_vars r));
  check Alcotest.int "fully collapsed" 0
    (Cnf.num_clauses (Berkmin.Var_elim.cnf r));
  let model = Berkmin.Var_elim.reconstruct r [| false; false; false |] in
  check Alcotest.bool "reconstructed model works" true
    (Cnf.satisfied_by cnf model)

let test_var_elim_growth_bound () =
  (* 3 pos x 3 neg = up to 9 resolvents > 6 clauses: with growth 0 the
     variable must be kept. *)
  let cnf =
    cnf_of
      [ [ 1; 2 ]; [ 1; 3 ]; [ 1; 4 ]; [ -1; 5 ]; [ -1; 6 ]; [ -1; 7 ] ]
  in
  let r = Berkmin.Var_elim.run ~max_growth:0 cnf in
  check Alcotest.bool "kept under growth bound" false
    (List.mem 0 (Berkmin.Var_elim.eliminated_vars r))

let prop_var_elim_equisatisfiable =
  QCheck.Test.make ~name:"var_elim: equisatisfiable + model reconstructs"
    ~count:400
    QCheck.(pair (int_range 3 10) (int_range 0 1_000_000))
    (fun (nv, seed) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv ~num_clauses:(4 * nv)
          ~k:3 ~seed
      in
      let r = Berkmin.Var_elim.run ~max_growth:2 cnf in
      match Solver.solve_cnf cnf, Solver.solve_cnf (Berkmin.Var_elim.cnf r) with
      | Solver.Unsat, Solver.Unsat -> true
      | Solver.Sat _, Solver.Sat m ->
        Cnf.satisfied_by cnf (Berkmin.Var_elim.reconstruct r m)
      | (Solver.Sat _ | Solver.Unsat | Solver.Unknown), _ ->
        QCheck.Test.fail_report "verdict changed by elimination")

let prop_var_elim_removes_occurrences =
  QCheck.Test.make ~name:"var_elim: eliminated vars no longer occur" ~count:200
    QCheck.(pair (int_range 3 12) (int_range 0 1_000_000))
    (fun (nv, seed) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv ~num_clauses:(3 * nv)
          ~k:3 ~seed
      in
      let r = Berkmin.Var_elim.run cnf in
      let gone = Berkmin.Var_elim.eliminated_vars r in
      List.for_all
        (fun v ->
          not
            (List.exists
               (fun c ->
                 Clause.mem (Lit.pos v) c || Clause.mem (Lit.neg_of v) c)
               (Cnf.clauses (Berkmin.Var_elim.cnf r))))
        gone)

(* Chained front end: simplify, then eliminate variables, then solve —
   the full 2000s preprocessing pipeline must preserve answers through
   both transformations and the two model-repair steps compose. *)
let prop_preprocessing_pipeline =
  QCheck.Test.make ~name:"pipeline: simplify |> var_elim |> solve" ~count:300
    QCheck.(pair (int_range 3 10) (int_range 0 1_000_000))
    (fun (nv, seed) ->
      let original =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv ~num_clauses:(4 * nv)
          ~k:3 ~seed
      in
      let simplified = (Berkmin.Simplify.run original).Berkmin.Simplify.cnf in
      let elim = Berkmin.Var_elim.run ~max_growth:2 simplified in
      let expected =
        match Solver.solve_cnf original with
        | Solver.Sat _ -> true
        | Solver.Unsat -> false
        | Solver.Unknown -> QCheck.assume_fail ()
      in
      match Solver.solve_cnf (Berkmin.Var_elim.cnf elim) with
      | Solver.Sat m ->
        expected
        && Cnf.satisfied_by original (Berkmin.Var_elim.reconstruct elim m)
      | Solver.Unsat -> not expected
      | Solver.Unknown -> QCheck.Test.fail_report "unexpected Unknown")

let () =
  Alcotest.run "extensions"
    [
      ( "var_heap",
        [
          Alcotest.test_case "basic order" `Quick test_heap_basic;
          Alcotest.test_case "push/mem" `Quick test_heap_push_and_mem;
          Alcotest.test_case "notify_increase" `Quick test_heap_notify_increase;
          qtest prop_heap_matches_naive_scan;
          Alcotest.test_case "same decisions as naive" `Quick
            test_heap_mode_same_decisions;
          qtest prop_heap_mode_identical_runs;
        ] );
      ( "assumptions",
        [
          Alcotest.test_case "basic" `Quick test_assumptions_basic;
          Alcotest.test_case "global unsat" `Quick test_assumptions_global_unsat;
          Alcotest.test_case "contradictory" `Quick test_assumptions_contradictory;
          Alcotest.test_case "reusable solver" `Quick test_assumptions_reusable;
          Alcotest.test_case "unknown var" `Quick
            test_assumptions_unknown_var_rejected;
          Alcotest.test_case "incremental equivalence" `Quick
            test_assumptions_incremental_equivalence_queries;
          qtest prop_assumptions_agree_with_conjoined;
          qtest prop_failed_core_is_sufficient;
        ] );
      ( "minimization",
        [
          qtest prop_minimization_preserves_verdicts;
          qtest prop_minimized_proofs_still_check;
          Alcotest.test_case "shortens clauses" `Quick
            test_minimization_shortens_clauses;
        ] );
      ( "top-window",
        [
          qtest prop_window_preserves_verdicts;
          Alcotest.test_case "solves known instances" `Quick
            test_window_solves_known;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "subsumption" `Quick test_simplify_subsumption;
          Alcotest.test_case "strengthening" `Quick test_simplify_strengthening;
          Alcotest.test_case "derives empty" `Quick test_simplify_derives_empty;
          Alcotest.test_case "tautology/duplicates" `Quick
            test_simplify_tautology_and_duplicates;
          qtest prop_simplify_preserves_equivalence;
          qtest prop_simplify_never_grows;
        ] );
      ( "var_elim",
        [
          Alcotest.test_case "pure literal" `Quick test_var_elim_pure;
          Alcotest.test_case "resolution" `Quick test_var_elim_resolution;
          Alcotest.test_case "growth bound" `Quick test_var_elim_growth_bound;
          qtest prop_var_elim_equisatisfiable;
          qtest prop_var_elim_removes_occurrences;
          qtest prop_preprocessing_pipeline;
        ] );
    ]
