(* Tests for DRUP proof logging and checking. *)

open Berkmin_types
module Drup = Berkmin_proof.Drup

let check = Alcotest.check

let cl lits = Clause.of_list (List.map Lit.of_dimacs lits)

let cnf_of lists =
  let cnf = Cnf.create () in
  List.iter (fun c -> Cnf.add_clause cnf (List.map Lit.of_dimacs c)) lists;
  cnf

let is_valid = function Drup.Valid -> true | Drup.Invalid _ -> false

(* ------------------------------------------------------------------ *)
(* is_rup                                                              *)

let test_is_rup_direct_conflict () =
  (* From (x) and (~x | y), the clause (y) is RUP. *)
  let cnf = cnf_of [ [ 1 ]; [ -1; 2 ] ] in
  check Alcotest.bool "unit consequence" true (Drup.is_rup cnf ~extra:[] (cl [ 2 ]));
  check Alcotest.bool "non-consequence" false (Drup.is_rup cnf ~extra:[] (cl [ -2 ]))

let test_is_rup_uses_extra () =
  let cnf = cnf_of [ [ 1; 2 ] ] in
  check Alcotest.bool "without extra" false (Drup.is_rup cnf ~extra:[] (cl [ 2 ]));
  check Alcotest.bool "with extra" true
    (Drup.is_rup cnf ~extra:[ cl [ -1 ] ] (cl [ 2 ]))

let test_is_rup_tautology () =
  let cnf = cnf_of [] in
  check Alcotest.bool "tautology vacuous" true
    (Drup.is_rup cnf ~extra:[] (cl [ 1; -1 ]))

let test_is_rup_empty_clause () =
  let cnf = cnf_of [ [ 1 ]; [ -1 ] ] in
  check Alcotest.bool "contradictory units give empty" true
    (Drup.is_rup cnf ~extra:[] (cl []))

(* ------------------------------------------------------------------ *)
(* check                                                               *)

let test_check_hand_proof () =
  (* php(2,1): (p1) (p2) (~p1|~p2).  Unit propagation alone refutes it,
     so adding just the empty clause is a valid DRUP proof. *)
  let cnf = cnf_of [ [ 1 ]; [ 2 ]; [ -1; -2 ] ] in
  let proof = Drup.create () in
  Drup.record proof (Drup.Add (cl []));
  check Alcotest.bool "valid" true (is_valid (Drup.check cnf proof))

let test_check_rejects_non_rup () =
  let cnf = cnf_of [ [ 1; 2 ] ] in
  let proof = Drup.create () in
  Drup.record proof (Drup.Add (cl [ 1 ]));
  (match Drup.check cnf proof with
  | Drup.Invalid { step = 1; reason = "not RUP"; _ } -> ()
  | Drup.Invalid _ | Drup.Valid -> Alcotest.fail "expected not-RUP at step 1")

let test_check_requires_empty_clause () =
  let cnf = cnf_of [ [ 1 ]; [ -1; 2 ] ] in
  let proof = Drup.create () in
  Drup.record proof (Drup.Add (cl [ 2 ]));
  (match Drup.check cnf proof with
  | Drup.Invalid { reason; _ } ->
    check Alcotest.string "reason" "empty clause never derived" reason
  | Drup.Valid -> Alcotest.fail "proof without empty clause accepted")

let test_check_rejects_unknown_delete () =
  let cnf = cnf_of [ [ 1 ] ] in
  let proof = Drup.create () in
  Drup.record proof (Drup.Delete (cl [ 5; 6 ]));
  (match Drup.check cnf proof with
  | Drup.Invalid { reason = "deleting unknown clause"; _ } -> ()
  | Drup.Invalid _ | Drup.Valid -> Alcotest.fail "expected delete error")

let test_check_delete_weakens () =
  (* Add (y), delete it, then (z) must no longer be derivable from it. *)
  let cnf = cnf_of [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ] in
  let proof = Drup.create () in
  Drup.record proof (Drup.Add (cl [ 2 ]));
  Drup.record proof (Drup.Delete (cl [ 2 ]));
  Drup.record proof (Drup.Add (cl [ 3 ]));
  (* (3) is still RUP from the original clauses, so this stays valid
     except for the missing empty clause. *)
  (match Drup.check cnf proof with
  | Drup.Invalid { reason = "empty clause never derived"; _ } -> ()
  | Drup.Invalid { reason; _ } -> Alcotest.fail ("unexpected: " ^ reason)
  | Drup.Valid -> Alcotest.fail "no refutation was given")

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)

let test_to_string_format () =
  let proof = Drup.create () in
  Drup.record proof (Drup.Add (cl [ 1; -2 ]));
  Drup.record proof (Drup.Delete (cl [ 3 ]));
  Drup.record proof (Drup.Add (cl []));
  (* Clause literals are stored sorted by the internal encoding, which
     orders by variable then phase: 1 before -2. *)
  check Alcotest.string "drup text" "1 -2 0\nd 3 0\n0\n" (Drup.to_string proof)

let test_parse_roundtrip () =
  let text = "1 2 0\nd -3 0\n0\n" in
  let proof = Drup.parse_string text in
  check Alcotest.int "events" 3 (Drup.length proof);
  check Alcotest.string "roundtrip" text (Drup.to_string proof)

let test_parse_rejects_garbage () =
  match Drup.parse_string "1 banana 0\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure"

(* ------------------------------------------------------------------ *)
(* Negative paths: corrupted, truncated and reordered proofs must be
   rejected — never accepted, never a crash.                           *)

let expect_parse_failure name text =
  match Drup.parse_string text with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail (name ^ ": malformed proof accepted")

let test_parse_rejects_truncated_line () =
  (* A line that lost its terminating 0 is a truncated file, not a
     shorter clause. *)
  expect_parse_failure "no terminator" "1 2\n";
  expect_parse_failure "cut mid-proof" "1 2 0\n-1 3\n"

let test_parse_rejects_interior_zero () =
  expect_parse_failure "two clauses on a line" "1 0 2 0\n";
  expect_parse_failure "leading zero" "0 1 0\n"

let test_parse_rejects_bare_delete () =
  expect_parse_failure "bare d" "d\n";
  expect_parse_failure "minus zero" "-0 0\n"

(* A real solver-produced refutation to corrupt. *)
let solver_proof () =
  let inst = Berkmin_gen.Pigeonhole.instance 4 3 in
  let cnf = inst.Berkmin_gen.Instance.cnf in
  let solver = Berkmin.Solver.create cnf in
  let proof = Drup.create () in
  Berkmin.Solver.set_proof_logger solver (Drup.record proof);
  (match Berkmin.Solver.solve solver with
  | Berkmin.Solver.Unsat -> ()
  | Berkmin.Solver.Sat _ | Berkmin.Solver.Unknown ->
    Alcotest.fail "php(4,3) should be UNSAT");
  check Alcotest.bool "sanity: proof valid" true
    (is_valid (Drup.check cnf proof));
  (cnf, Drup.events proof)

let replay events =
  let proof = Drup.create () in
  List.iter (Drup.record proof) events;
  proof

let test_check_rejects_truncated_proof () =
  (* Truncating the proof before its empty-clause step loses the
     refutation: every prefix that stops earlier must be rejected. *)
  let cnf, events = solver_proof () in
  let is_empty_add = function
    | Drup.Add c -> Clause.is_empty c
    | Drup.Delete _ -> false
  in
  let rec prefix = function
    | [] -> []
    | e :: _ when is_empty_add e -> []
    | e :: rest -> e :: prefix rest
  in
  match Drup.check cnf (replay (prefix events)) with
  | Drup.Invalid { reason = "empty clause never derived"; _ } -> ()
  | Drup.Invalid { reason; _ } ->
    Alcotest.fail ("unexpected reason: " ^ reason)
  | Drup.Valid -> Alcotest.fail "truncated proof accepted"

let test_check_rejects_corrupted_step () =
  (* Replace the first learnt clause by a unit over a fresh variable:
     nothing in php(4,3) propagates to a conflict from just its
     negation, so the step cannot be RUP. *)
  let cnf, events = solver_proof () in
  let fresh = Cnf.num_vars cnf + 5 in
  let corrupted =
    match events with
    | _ :: rest -> Drup.Add (cl [ fresh + 1 ]) :: rest
    | [] -> Alcotest.fail "empty solver proof"
  in
  match Drup.check cnf (replay corrupted) with
  | Drup.Invalid { step = 1; reason = "not RUP"; _ } -> ()
  | Drup.Invalid { reason; _ } ->
    Alcotest.fail ("unexpected reason: " ^ reason)
  | Drup.Valid -> Alcotest.fail "corrupted proof accepted"

let test_check_rejects_reordered_proof () =
  (* Moving the empty-clause step first asks the checker to refute the
     formula by unit propagation alone, which php(4,3) resists. *)
  let cnf, events = solver_proof () in
  let is_empty_add = function
    | Drup.Add c -> Clause.is_empty c
    | Drup.Delete _ -> false
  in
  let empty_add =
    match List.filter is_empty_add events with
    | e :: _ -> e
    | [] -> Alcotest.fail "proof without empty clause"
  in
  let reordered =
    empty_add :: List.filter (fun e -> not (is_empty_add e)) events
  in
  match Drup.check cnf (replay reordered) with
  | Drup.Invalid { step = 1; reason = "not RUP"; _ } -> ()
  | Drup.Invalid { reason; _ } ->
    Alcotest.fail ("unexpected reason: " ^ reason)
  | Drup.Valid -> Alcotest.fail "reordered proof accepted"

let test_check_rejects_delete_before_add () =
  let cnf = cnf_of [ [ 1 ]; [ -1; 2 ] ] in
  let proof = Drup.create () in
  Drup.record proof (Drup.Delete (cl [ 2 ]));
  Drup.record proof (Drup.Add (cl [ 2 ]));
  match Drup.check cnf proof with
  | Drup.Invalid { step = 1; reason = "deleting unknown clause"; _ } -> ()
  | Drup.Invalid { reason; _ } ->
    Alcotest.fail ("unexpected reason: " ^ reason)
  | Drup.Valid -> Alcotest.fail "delete-before-add accepted"

let test_check_result_to_string () =
  check Alcotest.string "valid" "valid" (Drup.check_result_to_string Drup.Valid);
  let r =
    Drup.Invalid { step = 3; clause = cl [ 1; -2 ]; reason = "not RUP" }
  in
  check Alcotest.string "invalid" "step 3: not RUP: [1 -2]"
    (Drup.check_result_to_string r)

(* ------------------------------------------------------------------ *)
(* End-to-end: solver proofs check on every UNSAT family.              *)

let solver_proof_cases =
  let unsat_instances =
    [
      Berkmin_gen.Pigeonhole.instance 5 4;
      Berkmin_gen.Pigeonhole.instance 6 5;
      Berkmin_gen.Hanoi.unsat_instance 2;
      Berkmin_gen.Blocksworld.unsat_instance 3;
      Berkmin_gen.Instance.make "cycle10" Berkmin_gen.Instance.Expect_unsat
        (Berkmin_gen.Parity.inconsistent_cycle ~num_vars:10);
      Berkmin_gen.Graph_coloring.clique_instance 5 ~colors:4;
      Berkmin_gen.Parity.tseitin_instance ~num_vars:8 ~degree:3 ~seed:7;
      Berkmin_gen.Circuit_bench.adder_miter ~width:4;
    ]
  in
  let configs =
    [ "berkmin", Berkmin.Config.berkmin; "chaff", Berkmin.Config.chaff ]
  in
  List.concat_map
    (fun (cname, config) ->
      List.map
        (fun inst ->
          let name =
            Printf.sprintf "%s proof on %s" cname
              inst.Berkmin_gen.Instance.name
          in
          Alcotest.test_case name `Slow (fun () ->
              let cnf = inst.Berkmin_gen.Instance.cnf in
              let solver = Berkmin.Solver.create ~config cnf in
              let proof = Drup.create () in
              Berkmin.Solver.set_proof_logger solver (Drup.record proof);
              (match Berkmin.Solver.solve solver with
              | Berkmin.Solver.Unsat -> ()
              | Berkmin.Solver.Sat _ | Berkmin.Solver.Unknown ->
                Alcotest.fail "expected UNSAT");
              check Alcotest.bool "proof valid" true
                (is_valid (Drup.check cnf proof))))
        unsat_instances)
    configs

let () =
  Alcotest.run "proof"
    [
      ( "is_rup",
        [
          Alcotest.test_case "direct conflict" `Quick test_is_rup_direct_conflict;
          Alcotest.test_case "uses extra" `Quick test_is_rup_uses_extra;
          Alcotest.test_case "tautology" `Quick test_is_rup_tautology;
          Alcotest.test_case "empty clause" `Quick test_is_rup_empty_clause;
        ] );
      ( "check",
        [
          Alcotest.test_case "hand proof" `Quick test_check_hand_proof;
          Alcotest.test_case "rejects non-RUP" `Quick test_check_rejects_non_rup;
          Alcotest.test_case "requires empty clause" `Quick
            test_check_requires_empty_clause;
          Alcotest.test_case "rejects unknown delete" `Quick
            test_check_rejects_unknown_delete;
          Alcotest.test_case "delete weakens" `Quick test_check_delete_weakens;
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "to_string format" `Quick test_to_string_format;
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse rejects garbage" `Quick
            test_parse_rejects_garbage;
        ] );
      ( "negative",
        [
          Alcotest.test_case "parse rejects truncated line" `Quick
            test_parse_rejects_truncated_line;
          Alcotest.test_case "parse rejects interior zero" `Quick
            test_parse_rejects_interior_zero;
          Alcotest.test_case "parse rejects bare delete" `Quick
            test_parse_rejects_bare_delete;
          Alcotest.test_case "check rejects truncated proof" `Quick
            test_check_rejects_truncated_proof;
          Alcotest.test_case "check rejects corrupted step" `Quick
            test_check_rejects_corrupted_step;
          Alcotest.test_case "check rejects reordered proof" `Quick
            test_check_rejects_reordered_proof;
          Alcotest.test_case "check rejects delete before add" `Quick
            test_check_rejects_delete_before_add;
          Alcotest.test_case "check_result_to_string" `Quick
            test_check_result_to_string;
        ] );
      ("end-to-end", solver_proof_cases);
    ]
