(* Arena-level tests: alloc/read/write round-trips, header packing,
   the free/reloc/commit GC protocol, the blocker fast path in BCP,
   mid-search compaction, and the level-0 watched-literal invariant
   across reductions and GC. *)

open Berkmin_types
module Arena = Berkmin.Arena
module Solver = Berkmin.Solver
module Config = Berkmin.Config
module Trace = Berkmin.Trace
module Pigeonhole = Berkmin_gen.Pigeonhole

let check = Alcotest.check

let cnf_of lists =
  let cnf = Cnf.create () in
  List.iter (fun c -> Cnf.add_clause cnf (List.map Lit.of_dimacs c)) lists;
  cnf

(* ------------------------------------------------------------------ *)
(* Alloc / read / write round-trips.                                   *)

let test_alloc_roundtrip () =
  let a = Arena.create ~capacity:4 () in
  let l1 = [| 0; 3; 4 |] and l2 = [| 1; 2 |] in
  let c1 = Arena.alloc a ~learnt:false l1 in
  let c2 = Arena.alloc a ~learnt:true l2 in
  check Alcotest.int "c1 size" 3 (Arena.clause_size a c1);
  check Alcotest.int "c2 size" 2 (Arena.clause_size a c2);
  check Alcotest.(array int) "c1 lits" l1 (Arena.lits_array a c1);
  check Alcotest.(array int) "c2 lits" l2 (Arena.lits_array a c2);
  check Alcotest.int "c1 lit 1" 3 (Arena.lit a c1 1);
  (* Writes through the accessors land in the right slots. *)
  Arena.set_lit a c1 1 9;
  check Alcotest.int "set_lit" 9 (Arena.lit a c1 1);
  check Alcotest.(array int) "c2 untouched" l2 (Arena.lits_array a c2);
  Arena.swap_lits a c1 0 2;
  check Alcotest.int "swap 0" 4 (Arena.lit a c1 0);
  check Alcotest.int "swap 2" 0 (Arena.lit a c1 2);
  check Alcotest.int "total words"
    (2 * Arena.header_words + 3 + 2)
    (Arena.size_words a)

let test_growth () =
  let a = Arena.create ~capacity:4 () in
  (* Force many doublings and verify nothing is corrupted. *)
  let crefs =
    List.init 100 (fun i -> (i, Arena.alloc a ~learnt:(i mod 2 = 0) [| i; i + 1; i + 2 |]))
  in
  List.iter
    (fun (i, c) ->
      check Alcotest.(array int)
        (Printf.sprintf "clause %d intact" i)
        [| i; i + 1; i + 2 |]
        (Arena.lits_array a c))
    crefs

(* ------------------------------------------------------------------ *)
(* Header packing: flags and size share one word without clobbering.   *)

let test_header_packing () =
  let a = Arena.create () in
  let big = Array.init 500 (fun i -> i) in
  let c1 = Arena.alloc a ~learnt:true big in
  let c2 = Arena.alloc a ~learnt:false [| 7; 8 |] in
  check Alcotest.bool "c1 learnt" true (Arena.is_learnt a c1);
  check Alcotest.bool "c2 not learnt" false (Arena.is_learnt a c2);
  check Alcotest.int "big size survives flags" 500 (Arena.clause_size a c1);
  check Alcotest.int "activity starts 0" 0 (Arena.activity a c1);
  Arena.bump_activity a c1;
  Arena.bump_activity a c1;
  Arena.set_activity a c2 41;
  check Alcotest.int "bumped" 2 (Arena.activity a c1);
  check Alcotest.int "set" 41 (Arena.activity a c2);
  check Alcotest.int "size after bumps" 500 (Arena.clause_size a c1);
  Arena.free a c1;
  check Alcotest.bool "deleted" true (Arena.is_deleted a c1);
  check Alcotest.bool "learnt bit survives delete" true (Arena.is_learnt a c1);
  check Alcotest.int "size survives delete" 500 (Arena.clause_size a c1);
  check Alcotest.bool "c2 not deleted" false (Arena.is_deleted a c2)

let test_free_accounting () =
  let a = Arena.create () in
  let c1 = Arena.alloc a ~learnt:false [| 0; 1; 2 |] in
  let _c2 = Arena.alloc a ~learnt:false [| 3; 4 |] in
  check Alcotest.int "nothing wasted" 0 (Arena.wasted_words a);
  Arena.free a c1;
  let w = Arena.header_words + 3 in
  check Alcotest.int "freed words counted" w (Arena.wasted_words a);
  Arena.free a c1;
  check Alcotest.int "double free is a no-op" w (Arena.wasted_words a);
  check Alcotest.int "live = size - wasted"
    (Arena.size_words a - w)
    (Arena.live_words a)

(* ------------------------------------------------------------------ *)
(* The reloc/commit protocol.                                          *)

let test_reloc_commit () =
  let a = Arena.create () in
  let c1 = Arena.alloc a ~learnt:true [| 1; 2; 3 |] in
  let c2 = Arena.alloc a ~learnt:false [| 4; 5 |] in
  let c3 = Arena.alloc a ~learnt:true [| 6; 7; 8; 9 |] in
  Arena.set_activity a c1 13;
  Arena.free a c2;
  let into = Arena.create ~capacity:(Arena.live_words a) () in
  let c1' = Arena.reloc a ~into c1 in
  check Alcotest.bool "forwarding planted" true (Arena.relocated a c1);
  check Alcotest.int "second reloc follows forwarding" c1'
    (Arena.reloc a ~into c1);
  let c3' = Arena.reloc a ~into c3 in
  Arena.commit a ~into;
  check Alcotest.(array int) "c1 moved intact" [| 1; 2; 3 |]
    (Arena.lits_array a c1');
  check Alcotest.int "c1 activity moved" 13 (Arena.activity a c1');
  check Alcotest.bool "c1 learnt moved" true (Arena.is_learnt a c1');
  check Alcotest.bool "c1' clean flags" false (Arena.relocated a c1');
  check Alcotest.(array int) "c3 moved intact" [| 6; 7; 8; 9 |]
    (Arena.lits_array a c3');
  check Alcotest.int "compacted size"
    (2 * Arena.header_words + 3 + 4)
    (Arena.size_words a);
  check Alcotest.int "nothing wasted after commit" 0 (Arena.wasted_words a)

(* ------------------------------------------------------------------ *)
(* Blocker fast path: a true blocker short-circuits the arena read.    *)

let test_blocker_hit () =
  (* x0 is a level-0 fact; when ¬x1 propagates, the (x0∨x1∨x2) watcher
     on x1 carries blocker x0 = true, so the visit is a blocker hit. *)
  let s = Solver.create (cnf_of [ [ 1; 2; 3 ]; [ 1 ]; [ -2 ] ]) in
  (match Solver.solve s with
  | Solver.Sat _ -> ()
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected SAT");
  let st = Solver.stats s in
  check Alcotest.bool "at least one visit" true (st.Berkmin.Stats.watcher_visits >= 1);
  check Alcotest.bool "blocker hit recorded" true (st.Berkmin.Stats.blocker_hits >= 1);
  check Alcotest.bool "hits bounded by visits" true
    (st.Berkmin.Stats.blocker_hits <= st.Berkmin.Stats.watcher_visits)

let test_blocker_miss () =
  (* Same clause without the x0 fact: the visit on ¬x1 finds blocker x0
     unassigned and must read the clause (migrating the watch to x2). *)
  let s = Solver.create (cnf_of [ [ 1; 2; 3 ]; [ -2 ] ]) in
  (match Solver.solve s with
  | Solver.Sat _ -> ()
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected SAT");
  let st = Solver.stats s in
  check Alcotest.bool "visits happened" true (st.Berkmin.Stats.watcher_visits >= 1);
  check Alcotest.int "no blocker was true" 0 st.Berkmin.Stats.blocker_hits

(* ------------------------------------------------------------------ *)
(* Mid-search compaction relocates reasons, watchers and the learnt
   stack without disturbing the search.                                *)

let test_compact_mid_search () =
  let inst = Pigeonhole.instance 7 6 in
  let cnf = inst.Berkmin_gen.Instance.cnf in
  let expected = Solver.solve_cnf cnf in
  (match expected with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "pigeonhole must be UNSAT");
  let s = Solver.create cnf in
  (match Solver.solve ~budget:(Solver.budget_conflicts 40) s with
  | Solver.Unknown -> ()
  | Solver.Sat _ | Solver.Unsat ->
    Alcotest.fail "budget too large to stop mid-search");
  let learnt_before = Solver.num_learnt_live s in
  Solver.compact s;
  Solver.compact s;
  check Alcotest.(list string) "invariants hold after compaction" []
    (Solver.watch_invariant_violations s);
  check Alcotest.int "learnt stack length preserved" learnt_before
    (Solver.num_learnt_live s);
  (* Resuming over the relocated database reaches the same verdict. *)
  match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "compaction changed the verdict to SAT"
  | Solver.Unknown -> Alcotest.fail "resume did not finish"

(* ------------------------------------------------------------------ *)
(* GC under the aging policy: deletions are physically reclaimed.      *)

(* Reduce aggressively but keep the search alive: the young half of the
   stack survives every reduction (so learning still makes progress)
   while the old half is deleted wholesale — the activity bar is
   unreachable and no old clause is short enough — forcing a
   compaction at nearly every restart. *)
let gc_config =
  {
    Config.berkmin with
    Config.restart_mode = Config.Fixed 30;
    young_fraction = 0.5;
    young_keep_length = 100;
    old_keep_length = 1;
    old_activity_threshold = max_int / 2;
    old_threshold_increment = 0;
  }

let test_gc_reclaims () =
  let inst = Pigeonhole.instance 6 5 in
  let s = Solver.create ~config:gc_config inst.Berkmin_gen.Instance.cnf in
  let gc_events = ref 0 in
  Solver.set_trace_sink s
    (Trace.Callback
       (function
       | Trace.Gc { reclaimed_bytes; arena_bytes_before; arena_bytes_after } ->
         incr gc_events;
         check Alcotest.bool "gc shrinks the arena" true
           (arena_bytes_after <= arena_bytes_before);
         check Alcotest.int "reclaimed = before - after" reclaimed_bytes
           (arena_bytes_before - arena_bytes_after)
       | _ -> ()));
  (match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "expected UNSAT");
  let st = Solver.stats s in
  check Alcotest.bool "gc ran" true (st.Berkmin.Stats.gc_runs >= 1);
  check Alcotest.int "gc events traced" st.Berkmin.Stats.gc_runs !gc_events;
  check Alcotest.bool "bytes reclaimed" true
    (st.Berkmin.Stats.gc_reclaimed_bytes > 0);
  check Alcotest.int "no garbage left behind" 0 (Solver.arena_wasted_bytes s);
  check Alcotest.bool "arena footprint reported" true
    (st.Berkmin.Stats.arena_bytes > 0);
  check Alcotest.int "stats arena matches live gauge"
    (Solver.arena_bytes s) st.Berkmin.Stats.arena_bytes

(* ------------------------------------------------------------------ *)
(* Level-0 invariant across reductions and GC: after every reduce_db
   (which deletes, compacts and rebuilds the watch lists at level 0)
   the watch invariants must hold — in particular no unsatisfied
   clause may watch a level-0-false literal once BCP has settled.      *)

let test_level0_invariant_across_reductions () =
  let inst = Pigeonhole.instance 6 5 in
  let s = Solver.create ~config:gc_config inst.Berkmin_gen.Instance.cnf in
  let reductions_with_removal = ref 0 in
  let violations = ref [] in
  Solver.set_trace_sink s
    (Trace.Callback
       (function
       | Trace.Reduce_db { removed; _ } ->
         if removed > 0 then incr reductions_with_removal;
         violations := Solver.watch_invariant_violations s @ !violations
       | _ -> ()));
  (match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "expected UNSAT");
  check Alcotest.bool "rebuild path exercised" true
    (!reductions_with_removal >= 2);
  check Alcotest.(list string) "no violation after any reduction" []
    (List.rev !violations);
  check Alcotest.(list string) "no violation at the end" []
    (Solver.watch_invariant_violations s)

let test_level0_facts_detach_satisfied () =
  (* A clause satisfied by a level-0 fact whose other literals go false
     is the shape the old rebuild mishandled (attaching it with a
     permanently false second watch).  The audit must stay clean on a
     full solve of such a formula. *)
  let s = Solver.create (cnf_of [ [ 1; 2 ]; [ 1 ]; [ -2 ]; [ 2; 3 ] ]) in
  (match Solver.solve s with
  | Solver.Sat _ -> ()
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected SAT");
  check Alcotest.(list string) "audit clean" []
    (Solver.watch_invariant_violations s)

(* ------------------------------------------------------------------ *)
(* Header pre-sizing (bulk load).                                      *)

let test_ensure_capacity_no_realloc () =
  let a = Arena.create ~capacity:16 () in
  let clauses = 1000 in
  let lits_per = 3 in
  let words = clauses * (Arena.header_words + lits_per) in
  Arena.ensure_capacity a ~words;
  let cap = Arena.capacity_words a in
  check Alcotest.bool "capacity reached" true (cap >= words);
  (* a bulk load within the declared budget must never reallocate *)
  let scratch = [| 2; 5; 9; 999; 999 |] in
  for _ = 1 to clauses do
    ignore (Arena.alloc_sub a ~learnt:false scratch ~len:lits_per)
  done;
  check Alcotest.int "zero reallocations" cap (Arena.capacity_words a);
  check Alcotest.int "exactly full" words (Arena.size_words a);
  (* and the very next clause past the budget grows it *)
  ignore (Arena.alloc a ~learnt:false [| 0; 1; 2 |]);
  check Alcotest.bool "overflow grows" true (Arena.capacity_words a > cap)

let test_alloc_sub_prefix () =
  let a = Arena.create () in
  let scratch = [| 4; 7; 10; 555; 777 |] in
  let c = Arena.alloc_sub a ~learnt:false scratch ~len:3 in
  check Alcotest.int "size is len" 3 (Arena.clause_size a c);
  check Alcotest.(array int) "prefix only" [| 4; 7; 10 |] (Arena.lits_array a c);
  (* mutating the scratch afterwards must not reach the arena *)
  scratch.(0) <- 123;
  check Alcotest.int "copied, not aliased" 4 (Arena.lit a c 0)

let () =
  Alcotest.run "arena"
    [
      ( "storage",
        [
          Alcotest.test_case "alloc/read/write round-trip" `Quick
            test_alloc_roundtrip;
          Alcotest.test_case "growth preserves contents" `Quick test_growth;
          Alcotest.test_case "header packing" `Quick test_header_packing;
          Alcotest.test_case "free accounting" `Quick test_free_accounting;
        ] );
      ( "gc-protocol",
        [ Alcotest.test_case "reloc/commit" `Quick test_reloc_commit ] );
      ( "presizing",
        [
          Alcotest.test_case "ensure_capacity: zero reallocations" `Quick
            test_ensure_capacity_no_realloc;
          Alcotest.test_case "alloc_sub allocates the prefix" `Quick
            test_alloc_sub_prefix;
        ] );
      ( "blockers",
        [
          Alcotest.test_case "true blocker short-circuits" `Quick
            test_blocker_hit;
          Alcotest.test_case "unassigned blocker reads the clause" `Quick
            test_blocker_miss;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "mid-search compact is transparent" `Quick
            test_compact_mid_search;
          Alcotest.test_case "aging deletions are reclaimed" `Quick
            test_gc_reclaims;
        ] );
      ( "level0-invariant",
        [
          Alcotest.test_case "holds across reductions and GC" `Quick
            test_level0_invariant_across_reductions;
          Alcotest.test_case "satisfied clauses detach cleanly" `Quick
            test_level0_facts_detach_satisfied;
        ] );
    ]
