(* Tests for the observability layer: the Json emitter/parser, the
   Metrics registry, Stats JSON round-trips, and the Trace event
   stream (callback and JSONL sinks) on a small pigeonhole solve. *)

open Berkmin_types
module Metrics = Berkmin.Metrics
module Trace = Berkmin.Trace
module Config = Berkmin.Config
module Solver = Berkmin.Solver
module Stats = Berkmin.Stats

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let roundtrip j = Json.of_string (Json.to_string j)

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.25;
      Json.Float 1e-3;
      Json.Float 1.7976931348623157e308;
      Json.String "";
      Json.String "with \"quotes\" and \\ and \n tab\t";
      Json.List [ Json.Int 1; Json.String "two"; Json.Null ];
      Json.Obj
        [
          "a", Json.Int 1;
          "nested", Json.Obj [ "b", Json.List [ Json.Bool false ] ];
        ];
    ]
  in
  List.iter
    (fun j ->
      check Alcotest.bool
        (Printf.sprintf "roundtrip %s" (Json.to_string j))
        true
        (roundtrip j = j))
    samples;
  (* pretty output parses back to the same value too *)
  let big =
    Json.Obj [ "xs", Json.List (List.init 20 (fun i -> Json.Int i)) ]
  in
  check Alcotest.bool "pretty roundtrip" true
    (Json.of_string (Json.to_string_pretty big) = big)

let test_json_float_repr () =
  (* floats always re-parse as floats, never silently become ints *)
  (match roundtrip (Json.Float 2.0) with
  | Json.Float f -> check (Alcotest.float 0.0) "2.0 stays float" 2.0 f
  | _ -> Alcotest.fail "Float 2.0 did not re-parse as a float");
  (* non-finite values have no JSON spelling; they serialize as null *)
  check Alcotest.string "nan" "null" (Json.to_string (Json.Float Float.nan));
  check Alcotest.string "inf" "null"
    (Json.to_string (Json.Float Float.infinity))

let test_json_accessors () =
  let j = Json.of_string {|{"a": 1, "b": [2.5, "x"], "c": null}|} in
  check Alcotest.(option int) "member a" (Some 1)
    (Option.bind (Json.member "a" j) Json.to_int_opt);
  (match Json.member "b" j with
  | Some (Json.List [ f; s ]) ->
    check Alcotest.(option (float 0.0)) "b[0]" (Some 2.5) (Json.to_float_opt f);
    check Alcotest.(option string) "b[1]" (Some "x") (Json.to_string_opt s)
  | _ -> Alcotest.fail "member b");
  check Alcotest.bool "missing member" true (Json.member "zzz" j = None)

let test_json_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "parsed invalid input %S" s))
    bad

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let test_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "conflicts" in
  check Alcotest.int "starts at 0" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 10;
  check Alcotest.int "incr+add" 11 (Metrics.value c);
  (* same name, same kind: the existing handle comes back *)
  let c' = Metrics.counter m "conflicts" in
  Metrics.incr c';
  check Alcotest.int "shared handle" 12 (Metrics.value c);
  check Alcotest.string "name" "conflicts" (Metrics.counter_name c);
  (* same name, different kind: refused *)
  Alcotest.check_raises "cross-kind clash"
    (Metrics.Duplicate_name "conflicts") (fun () ->
      ignore (Metrics.gauge m "conflicts" (fun () -> 0.0)))

let test_timers () =
  let now = ref 0.0 in
  let clock () = !now in
  let m = Metrics.create () in
  let t = Metrics.timer ~clock m "bcp" in
  Metrics.start t;
  now := 1.5;
  Metrics.stop t;
  check (Alcotest.float 1e-9) "one span" 1.5 (Metrics.total t);
  check Alcotest.int "one sample" 1 (Metrics.samples t);
  (* stop without start is a no-op *)
  Metrics.stop t;
  check Alcotest.int "no phantom sample" 1 (Metrics.samples t);
  (* time wraps a thunk and is exception-safe *)
  let r = Metrics.time t (fun () -> now := 2.0; 42) in
  check Alcotest.int "thunk result" 42 r;
  check (Alcotest.float 1e-9) "accumulated" 2.0 (Metrics.total t);
  (match Metrics.time t (fun () -> now := 3.0; failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  check Alcotest.int "span closed on raise" 3 (Metrics.samples t);
  check (Alcotest.float 1e-9) "raise span counted" 3.0 (Metrics.total t)

let test_registry_snapshot () =
  let now = ref 0.0 in
  let m = Metrics.create () in
  let c = Metrics.counter m "props" in
  let _g = Metrics.gauge m "live" (fun () -> 7.0) in
  let t = Metrics.timer ~clock:(fun () -> !now) m "analyze" in
  Metrics.add c 3;
  Metrics.start t;
  now := 0.5;
  Metrics.stop t;
  check
    Alcotest.(list (pair string (float 1e-9)))
    "registration order"
    [ "props", 3.0; "live", 7.0; "analyze_seconds", 0.5 ]
    (Metrics.snapshot m);
  (* to_json carries the same data, grouped by kind *)
  let j = Metrics.to_json m in
  let counters = Option.get (Json.member "counters" j) in
  check Alcotest.(option int) "json counter" (Some 3)
    (Option.bind (Json.member "props" counters) Json.to_int_opt);
  let timers = Option.get (Json.member "timers" j) in
  let analyze = Option.get (Json.member "analyze" timers) in
  check Alcotest.(option int) "json samples" (Some 1)
    (Option.bind (Json.member "samples" analyze) Json.to_int_opt);
  Metrics.reset m;
  check Alcotest.int "reset counter" 0 (Metrics.value c);
  check (Alcotest.float 0.0) "reset timer" 0.0 (Metrics.total t)

(* ------------------------------------------------------------------ *)
(* Stats JSON                                                          *)

let solve_hole ?(config = Config.berkmin) n =
  let inst = Berkmin_gen.Pigeonhole.instance n (n - 1) in
  let solver = Solver.create ~config inst.Berkmin_gen.Instance.cnf in
  let result = Solver.solve solver in
  (solver, result)

let test_stats_to_json_roundtrip () =
  let solver, result = solve_hole 6 in
  check Alcotest.bool "hole(6,5) unsat" true (result = Solver.Unsat);
  let st = Solver.stats solver in
  let j = Json.of_string (Json.to_string (Stats.to_json ~seconds:0.5 st)) in
  let get name = Option.bind (Json.member name j) Json.to_int_opt in
  check Alcotest.(option int) "conflicts" (Some st.Stats.conflicts)
    (get "conflicts");
  check Alcotest.(option int) "decisions" (Some st.Stats.decisions)
    (get "decisions");
  check Alcotest.(option int) "propagations" (Some st.Stats.propagations)
    (get "propagations");
  check
    Alcotest.(option (float 1e-6))
    "props_per_sec"
    (Some (float_of_int st.Stats.propagations /. 0.5))
    (Option.bind (Json.member "props_per_sec" j) Json.to_float_opt);
  (* the skin histogram survives as a list of ints *)
  match Json.member "skin" j with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "skin missing or empty"

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let count_events pred events =
  List.length (List.filter pred events)

let test_trace_callback_sink () =
  let inst = Berkmin_gen.Pigeonhole.instance 6 5 in
  let solver = Solver.create inst.Berkmin_gen.Instance.cnf in
  check Alcotest.bool "inactive by default" false
    (Trace.active (Solver.trace solver));
  let events = ref [] in
  Solver.set_trace_sink solver (Trace.Callback (fun e -> events := e :: !events));
  check Alcotest.bool "active with sink" true
    (Trace.active (Solver.trace solver));
  let result = Solver.solve solver in
  check Alcotest.bool "unsat" true (result = Solver.Unsat);
  let events = List.rev !events in
  let st = Solver.stats solver in
  let conflicts =
    count_events (function Trace.Conflict _ -> true | _ -> false) events
  in
  let decides =
    count_events (function Trace.Decide _ -> true | _ -> false) events
  in
  let learns =
    count_events (function Trace.Learn _ -> true | _ -> false) events
  in
  check Alcotest.int "one event per conflict" st.Stats.conflicts conflicts;
  check Alcotest.int "one event per decision" st.Stats.decisions decides;
  check Alcotest.int "one event per learnt clause" st.Stats.learnt_total
    learns;
  check Alcotest.int "emitted counter" (List.length events)
    (Trace.emitted (Solver.trace solver));
  (* every event serializes to a one-line JSON object *)
  List.iter
    (fun e ->
      let line = Json.to_string (Trace.event_to_json e) in
      check Alcotest.bool "single line" false (String.contains line '\n');
      match Json.of_string line with
      | Json.Obj (("event", Json.String _) :: _) -> ()
      | _ -> Alcotest.fail "event JSON shape")
    events

let test_trace_jsonl_sink () =
  let path = Filename.temp_file "berkmin_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let config = Config.with_trace_jsonl path Config.berkmin in
      let solver, result = solve_hole ~config 6 in
      check Alcotest.bool "unsat" true (result = Solver.Unsat);
      Solver.close_trace solver;
      check Alcotest.bool "sink closed" false
        (Trace.active (Solver.trace solver));
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check Alcotest.int "one line per event"
        (Trace.emitted (Solver.trace solver))
        (List.length lines);
      List.iter
        (fun line ->
          match Json.of_string line with
          | Json.Obj (("event", Json.String _) :: _) -> ()
          | _ -> Alcotest.fail (Printf.sprintf "bad trace line %S" line))
        lines)

let test_trace_heartbeat () =
  let interval = 25 in
  let config = Config.with_heartbeat interval Config.berkmin in
  let inst = Berkmin_gen.Pigeonhole.instance 7 6 in
  let solver = Solver.create ~config inst.Berkmin_gen.Instance.cnf in
  let beats = ref [] in
  Solver.set_trace_sink solver
    (Trace.Callback
       (function
         | Trace.Heartbeat { conflict_no; propagations; _ } ->
           beats := (conflict_no, propagations) :: !beats
         | _ -> ()));
  ignore (Solver.solve solver);
  let st = Solver.stats solver in
  check Alcotest.int "one beat per interval"
    (st.Stats.conflicts / interval)
    (List.length !beats);
  List.iter
    (fun (conflict_no, propagations) ->
      check Alcotest.bool "conflict_no on the grid" true
        (conflict_no mod interval = 0);
      check Alcotest.bool "propagations monotone" true (propagations > 0))
    !beats

let test_solver_metrics () =
  let solver, _ = solve_hole 6 in
  let st = Solver.stats solver in
  let snap = Solver.metrics solver |> Metrics.snapshot in
  let get name = List.assoc name snap in
  check (Alcotest.float 0.0) "conflicts gauge"
    (float_of_int st.Stats.conflicts)
    (get "conflicts");
  check (Alcotest.float 0.0) "propagations gauge"
    (float_of_int st.Stats.propagations)
    (get "propagations");
  check (Alcotest.float 0.0) "no trace events" 0.0 (get "trace_events")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "metrics"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float repr" `Quick test_json_float_repr;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "timers" `Quick test_timers;
          Alcotest.test_case "snapshot" `Quick test_registry_snapshot;
        ] );
      ( "stats",
        [
          Alcotest.test_case "to_json roundtrip" `Quick
            test_stats_to_json_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "callback sink" `Quick test_trace_callback_sink;
          Alcotest.test_case "jsonl sink" `Quick test_trace_jsonl_sink;
          Alcotest.test_case "heartbeat" `Quick test_trace_heartbeat;
          Alcotest.test_case "solver metrics" `Quick test_solver_metrics;
        ] );
    ]
