(* Preprocessing/inprocessing tests: the simplification engine alone
   (subsumption, self-subsuming resolution, bounded variable
   elimination, failed-literal probing), its proof-soundness through
   the solver's DRUP stream, model reconstruction against the
   *original* clauses, and the incremental-interface guards around
   eliminated variables. *)

open Berkmin_types
module Solver = Berkmin.Solver
module Config = Berkmin.Config
module Engine = Berkmin_simplify.Engine
module Recon = Berkmin_simplify.Recon
module Drup = Berkmin_proof.Drup
module Pigeonhole = Berkmin_gen.Pigeonhole
module Random_ksat = Berkmin_gen.Random_ksat

let check = Alcotest.check
let lit = Lit.of_dimacs

let cnf_of lists =
  let cnf = Cnf.create () in
  List.iter (fun c -> Cnf.add_clause cnf (List.map lit c)) lists;
  cnf

let verdict_name = function
  | Solver.Sat _ -> "SAT"
  | Solver.Unsat -> "UNSAT"
  | Solver.Unknown -> "UNKNOWN"

let is_sat = function Solver.Sat _ -> true | _ -> false
let is_unsat = function Solver.Unsat -> true | _ -> false

(* Feed plain DIMACS-style clause lists to the engine. *)
let run_engine ?opts ?(frozen = fun _ -> false) ?(roots = []) ~nvars lists =
  let clauses =
    List.mapi
      (fun i c ->
        { Engine.lits = Array.of_list (List.map lit c);
          tag = i;
          redundant = false })
      lists
  in
  Engine.run ?opts ~nvars ~frozen ~roots ~proof:ignore clauses

let pre = Config.with_simplify Config.Simp_pre Config.berkmin
let inproc = Config.with_simplify Config.Simp_inprocess Config.berkmin

(* ------------------------------------------------------------------ *)
(* Engine: subsumption and strengthening                               *)

let test_engine_subsumes () =
  let out = run_engine ~nvars:4 [ [ 1; 2 ]; [ 1; 2; 3 ]; [ 2; 3; 4 ] ] in
  check Alcotest.int "one clause subsumed" 1 out.Engine.st.Engine.subsumed;
  check Alcotest.bool "victim gone" true
    (List.for_all (fun c -> c.Engine.tag <> 1) out.Engine.kept)

let test_engine_strengthens () =
  (* (1 2) with (-1 2 3): resolving on 1 gives (2 3) subsuming the
     second clause, so self-subsuming resolution drops -1 from it.
     BVE is switched off so the strengthened clause survives to be
     inspected. *)
  let opts = { Engine.default_opts with Engine.bve_max_occ = 0 } in
  let out = run_engine ~opts ~nvars:3 [ [ 1; 2 ]; [ -1; 2; 3 ] ] in
  check Alcotest.bool "strengthened" true (out.Engine.st.Engine.strengthened >= 1);
  let c1 = List.find (fun c -> c.Engine.tag = 1) out.Engine.kept in
  check Alcotest.bool "-1 dropped" true
    (not (Array.exists (fun l -> l = lit (-1)) c1.Engine.lits))

(* ------------------------------------------------------------------ *)
(* Engine: bounded variable elimination                                *)

let test_engine_eliminates_chain () =
  (* Implication chain 1 -> 2 -> 3 -> 4: every interior variable has
     one positive and one negative occurrence, so BVE resolves it away
     without growth. *)
  let out = run_engine ~nvars:4 [ [ -1; 2 ]; [ -2; 3 ]; [ -3; 4 ] ] in
  check Alcotest.bool "eliminated interior vars" true
    (out.Engine.st.Engine.eliminated_vars >= 1);
  check Alcotest.bool "not unsat" false out.Engine.unsat;
  (* reconstruction: extend any model of the residue to the chain *)
  let model = Array.make 4 false in
  model.(0) <- true;
  (* var 1 true forces 2, 3, 4 through the eliminated clauses *)
  List.iter
    (fun lits ->
      List.iter
        (fun l ->
          if not (Array.exists (fun k -> k.Engine.var = Lit.var l)
                    (Array.of_list out.Engine.eliminated))
          then model.(Lit.var l) <- true)
        (Array.to_list lits |> List.filter Lit.is_pos))
    out.Engine.resolvents;
  Recon.extend out.Engine.eliminated model;
  let sat_clause c = List.exists (fun d ->
      let v = Lit.var (lit d) in
      if d > 0 then model.(v) else not model.(v)) c
  in
  check Alcotest.bool "reconstructed model satisfies originals" true
    (List.for_all sat_clause [ [ -1; 2 ]; [ -2; 3 ]; [ -3; 4 ] ])

let test_engine_respects_frozen () =
  let out =
    run_engine ~nvars:4 ~frozen:(fun v -> v = 1)
      [ [ -1; 2 ]; [ -2; 3 ]; [ -3; 4 ] ]
  in
  check Alcotest.bool "frozen var kept" true
    (List.for_all (fun e -> e.Engine.var <> 1) out.Engine.eliminated)

let test_engine_growth_cap () =
  (* Variable 1 with 3 positive and 3 negative occurrences produces up
     to 9 resolvents for 6 removals; the default zero-growth cap must
     refuse. *)
  let lists =
    [ [ 1; 2 ]; [ 1; 3 ]; [ 1; 4 ]; [ -1; 5 ]; [ -1; 6 ]; [ -1; 7 ] ]
  in
  let out = run_engine ~nvars:7 lists in
  check Alcotest.bool "var 1 survives zero growth" true
    (List.for_all (fun e -> e.Engine.var <> 0) out.Engine.eliminated);
  let loose = { Engine.default_opts with Engine.bve_growth = 8 } in
  let out2 = run_engine ~opts:loose ~nvars:7 lists in
  check Alcotest.bool "eliminated under a loose cap" true
    (List.exists (fun e -> e.Engine.var = 0) out2.Engine.eliminated)

(* ------------------------------------------------------------------ *)
(* Engine: failed-literal probing                                      *)

let test_engine_failed_literal () =
  (* Two binary chains out of literal 1 meet on opposite phases of
     variable 3 (1 -> 2 -> 3 and 1 -> 4 -> ¬3): only probing — not a
     single resolution step — refutes 1. *)
  let out =
    run_engine ~nvars:5
      [ [ -1; 2 ]; [ -2; 3 ]; [ -1; 4 ]; [ -4; -3 ]; [ 1; 5 ] ]
  in
  check Alcotest.bool "failed literal found" true
    (out.Engine.st.Engine.failed_literals >= 1);
  check Alcotest.bool "unit -1 derived" true
    (List.mem (lit (-1)) out.Engine.units)

let test_engine_unsat_detected () =
  let out = run_engine ~nvars:2 [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ] in
  check Alcotest.bool "root conflict" true out.Engine.unsat

(* ------------------------------------------------------------------ *)
(* Solver: BVE on SAT instances, model checked against the originals   *)

let chain_cnf n =
  (* 1 -> 2 -> ... -> n plus the unit 1: forces the whole chain, and
     every interior variable is BVE-eliminable. *)
  let cls = ref [ [ 1 ] ] in
  for i = 1 to n - 1 do
    cls := [ -i; i + 1 ] :: !cls
  done;
  cnf_of !cls

let test_solver_pre_sat_reconstructs () =
  let cnf = chain_cnf 12 in
  let s = Solver.create ~config:pre cnf in
  (match Solver.solve s with
  | Solver.Sat m ->
    check Alcotest.bool "model satisfies the original clauses" true
      (Solver.check_model cnf m)
  | r -> Alcotest.failf "expected SAT, got %s" (verdict_name r));
  check Alcotest.bool "simplify ran" true
    ((Solver.stats s).Berkmin.Stats.simplify_runs >= 1)

let test_solver_eliminates_vars () =
  (* A structured SAT instance with eliminable interior variables. *)
  let cls = ref [] in
  for i = 1 to 8 do
    let base = 3 * (i - 1) in
    (* x -> y -> z per block; y is interior and eliminable *)
    cls := [ -(base + 1); base + 2 ] :: [ -(base + 2); base + 3 ] :: !cls
  done;
  let cnf = cnf_of !cls in
  let s = Solver.create ~config:pre cnf in
  (match Solver.solve s with
  | Solver.Sat m ->
    check Alcotest.bool "model ok" true (Solver.check_model cnf m)
  | r -> Alcotest.failf "expected SAT, got %s" (verdict_name r));
  check Alcotest.bool "some variable eliminated" true
    ((Solver.stats s).Berkmin.Stats.eliminated_vars > 0);
  check Alcotest.int "num_eliminated_vars agrees"
    (Solver.num_eliminated_vars s)
    (Solver.stats s).Berkmin.Stats.eliminated_vars

(* ------------------------------------------------------------------ *)
(* Solver: DRUP forward-check on UNSAT after heavy simplification      *)

let drup_valid ~config cnf =
  let s = Solver.create ~config cnf in
  let proof = Drup.create () in
  Solver.set_proof_logger s (Drup.record proof);
  match Solver.solve s with
  | Solver.Unsat -> (
    match Drup.check cnf proof with
    | Drup.Valid -> true
    | Drup.Invalid { step; reason; _ } ->
      Alcotest.failf "proof invalid at step %d: %s" step reason)
  | r -> Alcotest.failf "expected UNSAT, got %s" (verdict_name r)

let test_solver_unsat_proof_subsumption () =
  (* UNSAT core over vars 1-2 buried under subsumable supersets. *)
  let cnf =
    cnf_of
      [
        [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ];
        [ 1; 2; 3 ]; [ 1; 2; 4 ]; [ -1; 2; 3 ]; [ -1; -2; 4 ];
        [ 1; -2; 3; 4 ]; [ 2; 3; 4 ];
      ]
  in
  check Alcotest.bool "pre proof valid" true (drup_valid ~config:pre cnf);
  check Alcotest.bool "inprocess proof valid" true
    (drup_valid ~config:inproc cnf)

let test_solver_unsat_proof_pigeonhole () =
  let cnf = Pigeonhole.php 5 4 in
  check Alcotest.bool "pre proof valid" true (drup_valid ~config:pre cnf);
  check Alcotest.bool "inprocess proof valid" true
    (drup_valid ~config:inproc cnf)

let test_solver_unsat_proof_random () =
  (* Over-constrained random 3-SAT: almost surely UNSAT; every UNSAT
     run must carry a forward-checkable proof under both modes. *)
  let checked = ref 0 in
  for seed = 0 to 9 do
    let cnf = Random_ksat.generate ~num_vars:14 ~num_clauses:100 ~k:3 ~seed in
    let s = Solver.create cnf in
    if is_unsat (Solver.solve s) then begin
      incr checked;
      check Alcotest.bool "pre proof valid" true (drup_valid ~config:pre cnf);
      check Alcotest.bool "inprocess proof valid" true
        (drup_valid ~config:inproc cnf)
    end
  done;
  check Alcotest.bool "exercised at least one UNSAT instance" true (!checked > 0)

(* ------------------------------------------------------------------ *)
(* Solver: verdict agreement off vs pre vs inprocess                   *)

let test_solver_verdicts_agree () =
  for seed = 0 to 29 do
    let num_clauses = 40 + (seed * 3) in
    let cnf = Random_ksat.generate ~num_vars:12 ~num_clauses ~k:3 ~seed in
    let base = Solver.solve (Solver.create cnf) in
    List.iter
      (fun config ->
        match Solver.solve (Solver.create ~config cnf) with
        | Solver.Sat m ->
          check Alcotest.bool "base sat" true (is_sat base);
          check Alcotest.bool "model checks" true (Solver.check_model cnf m)
        | Solver.Unsat ->
          check Alcotest.bool "base unsat" true (is_unsat base)
        | Solver.Unknown -> Alcotest.fail "unbudgeted solve returned UNKNOWN")
      [ pre; inproc ]
  done

(* ------------------------------------------------------------------ *)
(* Solver: incremental-interface guards                                *)

let eliminated_var_of s nvars =
  let rec go v =
    if v >= nvars then None
    else if (Solver.value_of s v) = Value.Unassigned then Some v
    else go (v + 1)
  in
  go 0

let open_chain_cnf n =
  (* 1 -> 2 -> ... -> n with no forcing unit: nothing is assigned at
     level 0, so the interior (and pure endpoint) variables are all
     BVE-eliminable. *)
  let cls = ref [] in
  for i = 1 to n - 1 do
    cls := [ -i; i + 1 ] :: !cls
  done;
  cnf_of !cls

let test_solver_guards_eliminated () =
  let cnf = open_chain_cnf 10 in
  let s = Solver.create ~config:pre cnf in
  check Alcotest.bool "sat" true (is_sat (Solver.solve s));
  check Alcotest.bool "vars were eliminated" true
    (Solver.num_eliminated_vars s > 0);
  (* every variable the solver left unassigned after a complete SAT
     answer is an eliminated one *)
  match eliminated_var_of s 10 with
  | None -> Alcotest.fail "expected an unassigned (eliminated) variable"
  | Some v ->
    let d = v + 1 in
    Alcotest.check_raises "add_clause rejects eliminated var"
      (Invalid_argument "Solver.add_clause: variable eliminated by simplification")
      (fun () -> Solver.add_clause s [ lit d ]);
    Alcotest.check_raises "assumptions reject eliminated var"
      (Invalid_argument
         "solve_with_assumptions: variable eliminated by simplification")
      (fun () -> ignore (Solver.solve ~assumps:[ lit d ] s))

let test_solver_assumption_vars_frozen () =
  (* Assumption variables must survive the pre-pass: solving the chain
     under the assumption -12 (head of the chain forces 12) must come
     back UNSAT with a core, then SAT without it. *)
  let cnf = chain_cnf 12 in
  let s = Solver.create ~config:pre cnf in
  (match Solver.solve ~assumps:[ lit (-12) ] s with
  | Solver.Unsat ->
    check Alcotest.bool "core exists" true (Solver.unsat_core s <> None)
  | r -> Alcotest.failf "expected UNSAT under -12, got %s" (verdict_name r));
  check Alcotest.bool "sat without assumptions" true (is_sat (Solver.solve s))

let test_solver_explicit_simplify () =
  let cnf = chain_cnf 8 in
  (* default config: simplification only when explicitly requested *)
  let s = Solver.create cnf in
  check Alcotest.int "no pass yet" 0 (Solver.stats s).Berkmin.Stats.simplify_runs;
  Solver.simplify s;
  check Alcotest.int "one pass" 1 (Solver.stats s).Berkmin.Stats.simplify_runs;
  check Alcotest.bool "still sat" true (is_sat (Solver.solve s))

(* ------------------------------------------------------------------ *)
(* Observability: trace event and stats JSON                           *)

let test_trace_emits_simplify () =
  let cnf = chain_cnf 10 in
  let s = Solver.create ~config:pre cnf in
  let events = ref [] in
  Solver.set_trace_sink s (Berkmin.Trace.Callback (fun e -> events := e :: !events));
  ignore (Solver.solve s);
  let simplify_events =
    List.filter
      (function Berkmin.Trace.Simplify _ -> true | _ -> false)
      !events
  in
  check Alcotest.bool "simplify event emitted" true (simplify_events <> []);
  match simplify_events with
  | Berkmin.Trace.Simplify f :: _ ->
    check Alcotest.bool "clauses shrank" true (f.clauses_after <= f.clauses_before)
  | _ -> ()

let test_stats_json_keys () =
  let cnf = chain_cnf 10 in
  let s = Solver.create ~config:pre cnf in
  ignore (Solver.solve s);
  match Berkmin.Stats.to_json (Solver.stats s) with
  | Json.Obj fields ->
    List.iter
      (fun k ->
        check Alcotest.bool (k ^ " present") true (List.mem_assoc k fields))
      [
        "simplify_runs"; "simplified_clauses"; "eliminated_vars";
        "subsumed"; "strengthened"; "failed_literals";
      ]
  | _ -> Alcotest.fail "stats JSON is not an object"

let () =
  Alcotest.run "simplify"
    [
      ( "engine",
        [
          Alcotest.test_case "subsumption" `Quick test_engine_subsumes;
          Alcotest.test_case "self-subsuming resolution" `Quick
            test_engine_strengthens;
          Alcotest.test_case "BVE eliminates a chain" `Quick
            test_engine_eliminates_chain;
          Alcotest.test_case "frozen variables survive" `Quick
            test_engine_respects_frozen;
          Alcotest.test_case "growth cap" `Quick test_engine_growth_cap;
          Alcotest.test_case "failed-literal probing" `Quick
            test_engine_failed_literal;
          Alcotest.test_case "root conflict detected" `Quick
            test_engine_unsat_detected;
        ] );
      ( "solver-sat",
        [
          Alcotest.test_case "pre-pass SAT model reconstructs" `Quick
            test_solver_pre_sat_reconstructs;
          Alcotest.test_case "variables eliminated on structure" `Quick
            test_solver_eliminates_vars;
          Alcotest.test_case "verdicts agree off/pre/inprocess" `Quick
            test_solver_verdicts_agree;
        ] );
      ( "solver-proof",
        [
          Alcotest.test_case "UNSAT proof after subsumption" `Quick
            test_solver_unsat_proof_subsumption;
          Alcotest.test_case "UNSAT proof on pigeonhole" `Quick
            test_solver_unsat_proof_pigeonhole;
          Alcotest.test_case "UNSAT proofs on random instances" `Quick
            test_solver_unsat_proof_random;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "eliminated vars rejected" `Quick
            test_solver_guards_eliminated;
          Alcotest.test_case "assumption vars frozen" `Quick
            test_solver_assumption_vars_frozen;
          Alcotest.test_case "explicit simplify call" `Quick
            test_solver_explicit_simplify;
        ] );
      ( "observability",
        [
          Alcotest.test_case "trace emits simplify" `Quick
            test_trace_emits_simplify;
          Alcotest.test_case "stats JSON keys" `Quick test_stats_json_keys;
        ] );
    ]
