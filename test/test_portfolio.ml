(* Tests for the process-parallel portfolio: sequential equivalence,
   deterministic races with a known winner, crash injection (clean
   exits and SIGKILL mid-solve), wall-clock timeouts, diversification
   and the merged per-worker JSONL trace. *)

open Berkmin_types
module Config = Berkmin.Config
module Solver = Berkmin.Solver
module Stats = Berkmin.Stats
module Portfolio = Berkmin_portfolio.Portfolio

let check = Alcotest.check

let hole n = (Berkmin_gen.Pigeonhole.instance n (n - 1)).Berkmin_gen.Instance.cnf

(* A small satisfiable formula: planted random 3-SAT. *)
let easy_sat =
  lazy (Berkmin_gen.Random_ksat.planted ~num_vars:30 ~num_clauses:120 ~k:3 ~seed:7)

let result_kind = function
  | Solver.Sat _ -> "SAT"
  | Solver.Unsat -> "UNSAT"
  | Solver.Unknown -> "UNKNOWN"

let statuses outcome =
  List.map (fun w -> w.Portfolio.w_status) outcome.Portfolio.workers

(* ------------------------------------------------------------------ *)
(* workers = 1: the sequential fallback must match Solver.solve.       *)

let test_sequential_equivalence () =
  let cnf = hole 6 in
  let solver = Solver.create ~config:Config.berkmin cnf in
  let expected = Solver.solve solver in
  let st = Solver.stats solver in
  let outcome = Portfolio.solve [ Config.berkmin ] cnf in
  check Alcotest.string "same verdict" (result_kind expected)
    (result_kind outcome.Portfolio.result);
  check (Alcotest.option Alcotest.int) "worker 0 wins" (Some 0)
    outcome.Portfolio.winner;
  (match outcome.Portfolio.workers with
  | [ w ] -> (
    match w.Portfolio.w_stats with
    | Some pst ->
      check Alcotest.int "same conflicts" st.Stats.conflicts
        pst.Stats.conflicts;
      check Alcotest.int "same decisions" st.Stats.decisions
        pst.Stats.decisions;
      check Alcotest.int "same propagations" st.Stats.propagations
        pst.Stats.propagations
    | None -> Alcotest.fail "sequential worker has no stats")
  | ws -> Alcotest.failf "expected 1 worker record, got %d" (List.length ws));
  (* and via the config knob *)
  let outcome' = Portfolio.solve_config (Config.with_workers 1 Config.berkmin) cnf in
  check Alcotest.string "solve_config same verdict" (result_kind expected)
    (result_kind outcome'.Portfolio.result)

(* ------------------------------------------------------------------ *)
(* A race whose winner is forced: one worker is budget-starved to     *)
(* Unknown, so the other must deliver the verdict.                     *)

let test_known_winner () =
  let cnf = hole 6 in
  let starved =
    {
      Portfolio.sp_config = Config.berkmin;
      sp_budget = Solver.budget_conflicts 0;
    }
  in
  let able =
    { Portfolio.sp_config = Config.berkmin; sp_budget = Solver.no_budget }
  in
  let outcome = Portfolio.solve_specs [ starved; able ] cnf in
  check Alcotest.string "UNSAT wins" "UNSAT"
    (result_kind outcome.Portfolio.result);
  check (Alcotest.option Alcotest.int) "worker 1 wins" (Some 1)
    outcome.Portfolio.winner;
  let w0 = List.nth outcome.Portfolio.workers 0 in
  check Alcotest.string "worker 0 exhausted" "exhausted"
    (Portfolio.status_to_string w0.Portfolio.w_status)

let test_sat_race_agrees_with_sequential () =
  let cnf = Lazy.force easy_sat in
  let sequential = Portfolio.solve [ Config.berkmin ] cnf in
  let configs = Portfolio.diversify ~workers:4 Config.berkmin in
  check Alcotest.int "4 configs" 4 (List.length configs);
  let outcome = Portfolio.solve configs cnf in
  check Alcotest.string "same verdict as sequential"
    (result_kind sequential.Portfolio.result)
    (result_kind outcome.Portfolio.result);
  (* the parent re-verified the winner's model, so SAT here is proven *)
  check Alcotest.bool "has a winner" true
    (outcome.Portfolio.winner <> None);
  check Alcotest.int "4 worker records" 4
    (List.length outcome.Portfolio.workers)

(* ------------------------------------------------------------------ *)
(* Crash injection: a worker exits 2 mid-solve; the race degrades     *)
(* gracefully to the survivors' verdict.                               *)

let test_crash_injection () =
  let cnf = hole 6 in
  let spec = { Portfolio.sp_config = Config.berkmin; sp_budget = Solver.no_budget } in
  let hook i = if i = 0 then exit 2 in
  let outcome = Portfolio.solve_specs ~worker_hook:hook [ spec; spec ] cnf in
  check Alcotest.string "survivor's verdict" "UNSAT"
    (result_kind outcome.Portfolio.result);
  check (Alcotest.option Alcotest.int) "worker 1 wins" (Some 1)
    outcome.Portfolio.winner;
  match statuses outcome with
  | [ Portfolio.W_crashed 2; Portfolio.W_won ] -> ()
  | _ ->
    Alcotest.failf "unexpected statuses: %s"
      (String.concat ", "
         (List.map Portfolio.status_to_string (statuses outcome)))

let test_sigkill_injection () =
  let cnf = hole 6 in
  let spec = { Portfolio.sp_config = Config.berkmin; sp_budget = Solver.no_budget } in
  let hook i = if i = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill in
  let outcome = Portfolio.solve_specs ~worker_hook:hook [ spec; spec ] cnf in
  check Alcotest.string "survivor's verdict" "UNSAT"
    (result_kind outcome.Portfolio.result);
  check (Alcotest.option Alcotest.int) "worker 0 wins" (Some 0)
    outcome.Portfolio.winner;
  let w1 = List.nth outcome.Portfolio.workers 1 in
  match w1.Portfolio.w_status with
  | Portfolio.W_signaled _ -> ()
  | st ->
    Alcotest.failf "worker 1 should be signaled, was %s"
      (Portfolio.status_to_string st)

let test_all_workers_fail () =
  let cnf = hole 6 in
  let spec = { Portfolio.sp_config = Config.berkmin; sp_budget = Solver.no_budget } in
  let hook _ = exit 3 in
  let outcome = Portfolio.solve_specs ~worker_hook:hook [ spec; spec ] cnf in
  check Alcotest.string "no verdict" "UNKNOWN"
    (result_kind outcome.Portfolio.result);
  check (Alcotest.option Alcotest.int) "no winner" None
    outcome.Portfolio.winner

let test_wall_timeout () =
  (* Workers that would run essentially forever are killed at the
     deadline and the aggregate degrades to Unknown. *)
  let cnf = hole 9 in
  let spec =
    { Portfolio.sp_config = Config.berkmin; sp_budget = Solver.no_budget }
  in
  let outcome =
    Portfolio.solve_specs ~wall_timeout:0.2 [ spec; spec ] cnf
  in
  check Alcotest.string "timeout -> UNKNOWN" "UNKNOWN"
    (result_kind outcome.Portfolio.result);
  List.iter
    (fun w ->
      match w.Portfolio.w_status with
      | Portfolio.W_timed_out -> ()
      | st ->
        Alcotest.failf "expected timed_out, got %s"
          (Portfolio.status_to_string st))
    outcome.Portfolio.workers

(* ------------------------------------------------------------------ *)
(* Diversification.                                                    *)

let test_diversify () =
  let configs = Portfolio.diversify ~workers:8 Config.berkmin in
  check Alcotest.int "8 configs" 8 (List.length configs);
  (* worker 0 is the base configuration *)
  check Alcotest.string "worker 0 is base" "berkmin"
    (Config.name_of (List.hd configs));
  (* seeds are pairwise distinct *)
  let seeds = List.map (fun c -> c.Config.seed) configs in
  check Alcotest.int "distinct seeds" 8
    (List.length (List.sort_uniq compare seeds));
  (* every worker config is itself sequential (no recursive forking) *)
  List.iter
    (fun c -> check Alcotest.int "worker config workers=1" 1 c.Config.workers)
    configs;
  (* at least one lane changes the restart policy and one the DB *)
  let restarts =
    List.sort_uniq compare
      (List.map (fun c -> Format.asprintf "%a" Config.pp c) configs)
  in
  check Alcotest.bool "lanes differ" true (List.length restarts > 4);
  (* seed-only mode keeps the heuristics identical *)
  let same = Portfolio.diversify ~diversify:false ~workers:3 Config.berkmin in
  List.iter
    (fun c ->
      check Alcotest.string "seed-only keeps preset" "berkmin"
        (Config.name_of c))
    same

(* ------------------------------------------------------------------ *)
(* Merged trace with per-worker tags.                                  *)

let test_merged_trace () =
  let path = Filename.temp_file "portfolio_trace" ".jsonl" in
  let cnf = hole 5 in
  let config =
    Config.berkmin |> Config.with_workers 2 |> Config.with_trace_jsonl path
  in
  let outcome = Portfolio.solve_config config cnf in
  check Alcotest.string "traced race still UNSAT" "UNSAT"
    (result_kind outcome.Portfolio.result);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  check Alcotest.bool "trace nonempty" true (!lines <> []);
  let workers_seen =
    List.filter_map
      (fun line ->
        match Json.member "worker" (Json.of_string line) with
        | Some (Json.Int w) -> Some w
        | _ -> None)
      !lines
    |> List.sort_uniq compare
  in
  (* every line is tagged; the winner's lines are present at least *)
  check Alcotest.int "all lines tagged" (List.length !lines)
    (List.length
       (List.filter
          (fun l -> Json.member "worker" (Json.of_string l) <> None)
          !lines));
  check Alcotest.bool "winner's worker tag present" true
    (match outcome.Portfolio.winner with
    | Some w -> List.mem w workers_seen
    | None -> false);
  (* no stray per-worker files left behind *)
  check Alcotest.bool "worker files merged and removed" true
    (not (Sys.file_exists (path ^ ".w0") || Sys.file_exists (path ^ ".w1")))

(* ------------------------------------------------------------------ *)
(* JSON shape.                                                         *)

let test_outcome_json () =
  let cnf = hole 6 in
  let outcome =
    Portfolio.solve (Portfolio.diversify ~workers:2 Config.berkmin) cnf
  in
  let json = Portfolio.outcome_to_json outcome in
  (* round-trips through the hand-rolled parser *)
  let json = Json.of_string (Json.to_string json) in
  check (Alcotest.option Alcotest.string) "result field" (Some "UNSAT")
    (Option.bind (Json.member "result" json) Json.to_string_opt);
  match Option.bind (Json.member "workers" json) Json.to_list_opt with
  | Some ws ->
    check Alcotest.int "worker records" 2 (List.length ws);
    List.iter
      (fun w ->
        check Alcotest.bool "has status" true (Json.member "status" w <> None);
        check Alcotest.bool "has strategy" true
          (Json.member "strategy" w <> None))
      ws
  | None -> Alcotest.fail "no workers array"

let () =
  Alcotest.run "portfolio"
    [
      ( "sequential",
        [
          Alcotest.test_case "workers=1 equivalence" `Quick
            test_sequential_equivalence;
        ] );
      ( "race",
        [
          Alcotest.test_case "known winner" `Quick test_known_winner;
          Alcotest.test_case "sat race agrees" `Quick
            test_sat_race_agrees_with_sequential;
          Alcotest.test_case "wall timeout" `Quick test_wall_timeout;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash injection" `Quick test_crash_injection;
          Alcotest.test_case "sigkill injection" `Quick test_sigkill_injection;
          Alcotest.test_case "all workers fail" `Quick test_all_workers_fail;
        ] );
      ( "diversify", [ Alcotest.test_case "lanes" `Quick test_diversify ] );
      ( "observability",
        [
          Alcotest.test_case "merged trace" `Quick test_merged_trace;
          Alcotest.test_case "outcome json" `Quick test_outcome_json;
        ] );
    ]
