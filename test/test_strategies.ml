(* Tests for the modern search-quality strategies (docs/STRATEGIES.md):
   conflict-clause minimization, phase saving, Luby restarts and
   glue-driven clause-database reduction.

   The hand-built ccmin instances need one trick: every clause is
   padded to three or more literals with a dummy variable [d] forced
   false by a unit clause, because two-literal clauses are routed to
   the binary implication index and drain before the long-clause
   watchers — un-padded, the engine reaches a different first conflict
   than the one the test derives. *)

open Berkmin_types
module Config = Berkmin.Config
module Solver = Berkmin.Solver
module Drup = Berkmin_proof.Drup
module Oracle = Berkmin_fuzz.Oracle
module Fuzz = Berkmin_fuzz.Runner

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let cnf_of lists =
  let cnf = Cnf.create () in
  List.iter (fun c -> Cnf.add_clause cnf (List.map Lit.of_dimacs c)) lists;
  cnf

let lits_to_dimacs arr = Array.to_list (Array.map Lit.to_dimacs arr)

let sorted = List.sort compare

(* Runs [cnf] with the hand-traced decisions pinned as assumptions
   (conflicts inside the assumption prefix analyze normally) and
   returns the first conflict's learnt clause before and after
   minimization — asserting literal first, remainder sorted — plus
   the end-of-run statistics. *)
let first_conflict ?(ccmin = Config.Ccmin_off) ~assumps cnf =
  let config = Config.with_ccmin ccmin Config.berkmin in
  let s = Solver.create ~config cnf in
  let captured = ref None in
  let shape = function
    | [] -> Alcotest.fail "empty learnt clause"
    | asserting :: rest -> asserting :: sorted rest
  in
  Solver.set_minimize_hook s (fun ~before ~after ->
      if !captured = None then
        captured :=
          Some (shape (lits_to_dimacs before), shape (lits_to_dimacs after)));
  ignore (Solver.solve ~assumps:(List.map Lit.of_dimacs assumps) s);
  match !captured with
  | Some (before, after) -> (before, after, Solver.stats s)
  | None -> Alcotest.fail "no conflict reached"

(* Case A — basic removes exactly one literal.  Variables are DIMACS
   1..6, the dummy is 7.  Assuming 1 propagates 2; assuming 3
   propagates 4, then 5 and -6 from 4, and clause (-5 -2 6 7) is left
   all-false: the 1-UIP resolution learns (-4 -2 -1), asserting -4.
   Basic minimization drops -2: its reason (-1 2 7) is covered by the
   in-clause assumption 1 and the level-0 dummy. *)
let case_a =
  [
    [ -7 ];
    [ -1; 2; 7 ];
    [ -3; 4; 7 ];
    [ -4; -1; 5; 7 ];
    [ -5; -2; 6; 7 ];
    [ -6; -4; 7 ];
  ]

let test_ccmin_off_keeps_clause () =
  let before, after, st = first_conflict ~assumps:[ 1; 3 ] (cnf_of case_a) in
  check (Alcotest.list Alcotest.int) "unminimized 1-UIP" [ -4; -2; -1 ] before;
  check (Alcotest.list Alcotest.int) "untouched" before after;
  check Alcotest.int "no literals counted" 0
    st.Berkmin.Stats.minimized_literals

let test_ccmin_basic_removes_redundant () =
  let before, after, st =
    first_conflict ~ccmin:Config.Ccmin_basic ~assumps:[ 1; 3 ] (cnf_of case_a)
  in
  check (Alcotest.list Alcotest.int) "unminimized 1-UIP" [ -4; -2; -1 ] before;
  check (Alcotest.list Alcotest.int) "minimized" [ -4; -1 ] after;
  check Alcotest.bool "counter fired" true
    (st.Berkmin.Stats.minimized_literals >= 1);
  (* Deep subsumes basic: it removes the same literal here. *)
  let _, after_deep, _ =
    first_conflict ~ccmin:Config.Ccmin_deep ~assumps:[ 1; 3 ] (cnf_of case_a)
  in
  check (Alcotest.list Alcotest.int) "deep agrees" [ -4; -1 ] after_deep

(* Case B — only deep removes.  Variables are DIMACS 1..7, the dummy
   is 8.  Assuming 1 propagates 2 and then 7; assuming 3 runs into a
   conflict whose 1-UIP clause is (-4 -7 -1), asserting -4.  Basic
   keeps -7: its reason (-2 7 8) mentions variable 2, which never
   entered the resolution.  Deep recurses through 2's own reason
   (-1 2 8) — covered by the assumption 1 and the level-0 dummy — and
   removes it. *)
let case_b =
  [
    [ -8 ];
    [ -1; 2; 8 ];
    [ -2; 7; 8 ];
    [ -3; 4; 8 ];
    [ -4; -1; 5; 8 ];
    [ -5; -7; 6; 8 ];
    [ -6; -4; 8 ];
  ]

let test_ccmin_deep_removes_more () =
  let before_b, after_b, _ =
    first_conflict ~ccmin:Config.Ccmin_basic ~assumps:[ 1; 3 ] (cnf_of case_b)
  in
  check (Alcotest.list Alcotest.int) "unminimized 1-UIP" [ -4; -7; -1 ]
    before_b;
  check (Alcotest.list Alcotest.int) "basic keeps -7" [ -4; -7; -1 ] after_b;
  let before_d, after_d, st =
    first_conflict ~ccmin:Config.Ccmin_deep ~assumps:[ 1; 3 ] (cnf_of case_b)
  in
  check (Alcotest.list Alcotest.int) "same 1-UIP" before_b before_d;
  check (Alcotest.list Alcotest.int) "deep removes -7" [ -4; -1 ] after_d;
  check Alcotest.bool "counter fired" true
    (st.Berkmin.Stats.minimized_literals >= 1)

(* ------------------------------------------------------------------ *)
(* ccmin invariants under QCheck: on every conflict of every random
   instance, the minimized clause is a subset of the unminimized one
   and the asserting literal survives; and the verdict matches the
   ccmin-off engine's. *)

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let prop_ccmin_invariants =
  QCheck.Test.make ~name:"ccmin: subset, asserting kept, verdict unchanged"
    ~count:400
    QCheck.(pair (int_range 3 10) (int_range 0 1_000_000))
    (fun (nv, seed) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv
          ~num_clauses:(9 * nv / 2) ~k:3 ~seed
      in
      let deep = { Config.berkmin with Config.ccmin_mode = Config.Ccmin_deep } in
      let s = Solver.create ~config:deep cnf in
      Solver.set_minimize_hook s (fun ~before ~after ->
          if Array.length after = 0 then
            QCheck.Test.fail_report "minimized to the empty clause";
          if after.(0) <> before.(0) then
            QCheck.Test.fail_report "asserting literal not preserved";
          if not (subset (lits_to_dimacs after) (lits_to_dimacs before)) then
            QCheck.Test.fail_report "minimized clause not a subset");
      let verdict result =
        match result with
        | Solver.Sat m ->
          if not (Cnf.satisfied_by cnf m) then
            QCheck.Test.fail_report "invalid model under ccmin";
          true
        | Solver.Unsat -> false
        | Solver.Unknown -> QCheck.Test.fail_report "unexpected Unknown"
      in
      verdict (Solver.solve s) = verdict (Solver.solve_cnf cnf))

(* DRUP stays forward-checkable with deep minimization stacked on the
   eliminating preprocessor: every minimized learnt clause must be
   derivable by the checker's unit propagation alone. *)
let test_ccmin_deep_drup_with_elimination () =
  let cnf = Berkmin_gen.Pigeonhole.php 7 6 in
  let config =
    {
      (Config.with_simplify Config.Simp_pre Config.berkmin) with
      Config.ccmin_mode = Config.Ccmin_deep;
    }
  in
  let s = Solver.create ~config cnf in
  let proof = Drup.create () in
  Solver.set_proof_logger s (Drup.record proof);
  (match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "expected UNSAT");
  let st = Solver.stats s in
  check Alcotest.bool "minimization fired" true
    (st.Berkmin.Stats.minimized_literals > 0);
  match Drup.check cnf proof with
  | Drup.Valid -> ()
  | Drup.Invalid { step; reason; _ } ->
    Alcotest.fail (Printf.sprintf "proof invalid at step %d: %s" step reason)

(* ------------------------------------------------------------------ *)
(* Phase saving                                                        *)

let test_phase_saving_hits_live () =
  let cnf = Berkmin_gen.Pigeonhole.php 7 6 in
  let saving = Config.with_phase_saving true Config.berkmin in
  let run config =
    let s = Solver.create ~config cnf in
    let r = Solver.solve s in
    (r, Solver.stats s)
  in
  let r_on, st_on = run saving in
  let r_off, st_off = run Config.berkmin in
  check Alcotest.bool "verdict unchanged" true (r_on = Unsat && r_off = Unsat);
  check Alcotest.bool "hits counted" true
    (st_on.Berkmin.Stats.saved_phase_hits > 0);
  check Alcotest.int "off counts nothing" 0
    st_off.Berkmin.Stats.saved_phase_hits

(* ------------------------------------------------------------------ *)
(* Luby restarts                                                       *)

let test_luby_prefix () =
  let expected = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  check
    (Alcotest.list Alcotest.int)
    "first 15 terms" expected
    (List.init 15 (fun i -> Berkmin.Luby.term (i + 1)))

let test_luby_restart_sequence_index () =
  let cnf = Berkmin_gen.Pigeonhole.php 7 6 in
  let config = Config.with_restart_mode (Config.Luby 32) Config.berkmin in
  let s = Solver.create ~config cnf in
  (match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "expected UNSAT");
  let st = Solver.stats s in
  check Alcotest.bool "sequence advanced" true
    (st.Berkmin.Stats.restart_seq_index > 0);
  check Alcotest.int "index counts restarts" st.Berkmin.Stats.restarts
    st.Berkmin.Stats.restart_seq_index

(* ------------------------------------------------------------------ *)
(* Glue-driven reduction                                               *)

let test_glue_reduction_classifies () =
  let cnf = Berkmin_gen.Pigeonhole.php 8 7 in
  let config =
    Config.with_reduction_mode (Config.Glue_lbd 3) Config.berkmin
  in
  let s = Solver.create ~config cnf in
  (match Solver.solve s with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "expected UNSAT");
  let st = Solver.stats s in
  check Alcotest.bool "classified clauses" true
    (st.Berkmin.Stats.glue_reduction_kept
     + st.Berkmin.Stats.glue_reduction_dropped
    > 0)

(* ------------------------------------------------------------------ *)
(* Every strategy preserves verdicts on random instances.              *)

let strategy_configs =
  [
    "ccmin-deep", Config.with_ccmin Config.Ccmin_deep Config.berkmin;
    "phase-saving", Config.with_phase_saving true Config.berkmin;
    "luby", Config.with_restart_mode (Config.Luby 64) Config.berkmin;
    ( "glue-reduce",
      Config.with_reduction_mode (Config.Glue_lbd 3) Config.berkmin );
    "modern", Config.modern;
  ]

let prop_strategies_preserve_verdicts =
  QCheck.Test.make ~name:"strategies: verdicts unchanged" ~count:150
    QCheck.(pair (int_range 3 10) (int_range 0 1_000_000))
    (fun (nv, seed) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv
          ~num_clauses:(9 * nv / 2) ~k:3 ~seed
      in
      let verdict config =
        match Solver.solve_cnf ~config cnf with
        | Solver.Sat m ->
          if not (Cnf.satisfied_by cnf m) then
            QCheck.Test.fail_report "invalid model";
          true
        | Solver.Unsat -> false
        | Solver.Unknown -> QCheck.Test.fail_report "unexpected Unknown"
      in
      let plain = verdict Config.berkmin in
      List.for_all (fun (_, config) -> verdict config = plain)
        strategy_configs)

(* ------------------------------------------------------------------ *)
(* Differential campaign: 200 seed-fixed rounds racing every strategy
   lane (plus the all-on modern lane) against the plain CDCL and DPLL
   engines — the same lane set `berkmin-fuzz --strategies true` runs.
   Zero counterexamples or the whole campaign report is printed by
   Alcotest on failure.                                                *)

let test_strategy_lanes_campaign () =
  let config =
    {
      Fuzz.default with
      Fuzz.seed = 42;
      rounds = 200;
      solvers =
        Some
          (Oracle.default_solvers () @ Oracle.strategy_solvers ());
    }
  in
  let report = Fuzz.run config in
  check Alcotest.int "no disagreements" 0
    (List.length report.Fuzz.counterexamples)

let () =
  Alcotest.run "strategies"
    [
      ( "ccmin",
        [
          Alcotest.test_case "off keeps the 1-UIP clause" `Quick
            test_ccmin_off_keeps_clause;
          Alcotest.test_case "basic removes a redundant literal" `Quick
            test_ccmin_basic_removes_redundant;
          Alcotest.test_case "deep removes what basic cannot" `Quick
            test_ccmin_deep_removes_more;
          qtest prop_ccmin_invariants;
          Alcotest.test_case "DRUP valid with elimination + deep ccmin" `Quick
            test_ccmin_deep_drup_with_elimination;
        ] );
      ( "phase-saving",
        [
          Alcotest.test_case "saved-phase hits counted live" `Quick
            test_phase_saving_hits_live;
        ] );
      ( "luby",
        [
          Alcotest.test_case "sequence prefix" `Quick test_luby_prefix;
          Alcotest.test_case "restart sequence index advances" `Quick
            test_luby_restart_sequence_index;
        ] );
      ( "glue-reduce",
        [
          Alcotest.test_case "reduction classifies learnt clauses" `Quick
            test_glue_reduction_classifies;
        ] );
      ( "differential",
        [
          qtest prop_strategies_preserve_verdicts;
          Alcotest.test_case "200-round campaign, all lanes" `Slow
            test_strategy_lanes_campaign;
        ] );
    ]
