(* Tests for the learnt-clause exchange: the wire codec (round-trips,
   truncated and malformed frames), the export filter boundaries, the
   dedup key, in-process imports (counters, dedup, soundness
   invariants, the restart-time drain) and a real two-worker forked
   exchange through the portfolio's pipes. *)

open Berkmin_types
module Config = Berkmin.Config
module Solver = Berkmin.Solver
module Stats = Berkmin.Stats
module Portfolio = Berkmin_portfolio.Portfolio
module Share = Berkmin_portfolio.Share

let check = Alcotest.check

let hole n = (Berkmin_gen.Pigeonhole.instance n (n - 1)).Berkmin_gen.Instance.cnf

let lits_of_dimacs l = Array.of_list (List.map Lit.of_dimacs l)

(* ------------------------------------------------------------------ *)
(* Codec round-trips.                                                  *)

let feed_all d b = Share.feed d b (Bytes.length b)

let test_clause_roundtrip () =
  let lits = lits_of_dimacs [ 1; -2; 3; -4 ] in
  let d = Share.decoder () in
  feed_all d (Share.encode_clause ~glue:3 lits);
  (match Share.next d with
  | Some (Share.Clause { glue; lits = got }) ->
    check Alcotest.int "glue" 3 glue;
    check (Alcotest.array Alcotest.int) "lits" lits got
  | _ -> Alcotest.fail "expected a clause frame");
  check (Alcotest.option Alcotest.bool) "drained" None
    (Option.map (fun _ -> true) (Share.next d));
  check Alcotest.int "no residue" 0 (Share.buffered d)

let test_glue_clamped () =
  let d = Share.decoder () in
  feed_all d (Share.encode_clause ~glue:1000 (lits_of_dimacs [ 1; 2 ]));
  match Share.next d with
  | Some (Share.Clause { glue; _ }) -> check Alcotest.int "clamped" 255 glue
  | _ -> Alcotest.fail "expected a clause frame"

let test_reply_roundtrip () =
  let payload = Bytes.of_string "marshalled-reply-\x00\xff-bytes" in
  let d = Share.decoder () in
  feed_all d (Share.encode_reply payload);
  match Share.next d with
  | Some (Share.Reply got) ->
    check Alcotest.string "payload" (Bytes.to_string payload)
      (Bytes.to_string got)
  | _ -> Alcotest.fail "expected a reply frame"

let test_byte_at_a_time () =
  (* The decoder is incremental: a frame arriving one byte per feed
     must parse identically, and must return None at every prefix. *)
  let lits = lits_of_dimacs [ 5; -6; 7 ] in
  let frame = Share.encode_clause ~glue:2 lits in
  let d = Share.decoder () in
  let one = Bytes.create 1 in
  for i = 0 to Bytes.length frame - 2 do
    Bytes.set one 0 (Bytes.get frame i);
    Share.feed d one 1;
    check Alcotest.bool "no frame mid-prefix" true (Share.next d = None)
  done;
  Bytes.set one 0 (Bytes.get frame (Bytes.length frame - 1));
  Share.feed d one 1;
  match Share.next d with
  | Some (Share.Clause { glue; lits = got }) ->
    check Alcotest.int "glue" 2 glue;
    check (Alcotest.array Alcotest.int) "lits" lits got
  | _ -> Alcotest.fail "expected a clause frame"

let test_interleaved_stream () =
  (* Several frames in one buffer, fed in two arbitrary slices. *)
  let c1 = Share.encode_clause ~glue:1 (lits_of_dimacs [ 1; 2 ]) in
  let c2 = Share.encode_clause ~glue:4 (lits_of_dimacs [ -3 ]) in
  let r = Share.encode_reply (Bytes.of_string "done") in
  let all = Bytes.concat Bytes.empty [ c1; c2; r ] in
  let d = Share.decoder () in
  let cut = (Bytes.length c1) + 3 (* mid-second-frame *) in
  Share.feed d (Bytes.sub all 0 cut) cut;
  (match Share.next d with
  | Some (Share.Clause { glue = 1; _ }) -> ()
  | _ -> Alcotest.fail "first clause");
  check Alcotest.bool "second frame incomplete" true (Share.next d = None);
  let rest = Bytes.sub all cut (Bytes.length all - cut) in
  feed_all d rest;
  (match Share.next d with
  | Some (Share.Clause { glue = 4; lits }) ->
    check Alcotest.int "unit survives" 1 (Array.length lits)
  | _ -> Alcotest.fail "second clause");
  (match Share.next d with
  | Some (Share.Reply p) -> check Alcotest.string "reply" "done" (Bytes.to_string p)
  | _ -> Alcotest.fail "reply");
  check Alcotest.bool "empty" true (Share.next d = None)

let expect_malformed name bytes =
  let d = Share.decoder () in
  feed_all d bytes;
  match Share.next d with
  | exception Share.Malformed _ -> ()
  | _ -> Alcotest.failf "%s: expected Malformed" name

let test_malformed () =
  (* Unknown type byte. *)
  let b = Bytes.of_string "\x00\x00\x00\x01X" in
  expect_malformed "unknown type" b;
  (* Zero-length payload. *)
  expect_malformed "empty payload" (Bytes.of_string "\x00\x00\x00\x00");
  (* Clause frame whose length disagrees with its literal count:
     header says 2 literals but carries only one. *)
  let good = Share.encode_clause ~glue:1 (lits_of_dimacs [ 1; 2 ]) in
  let bad = Bytes.sub good 0 (Bytes.length good - 4) in
  (* fix up the length prefix to cover the truncated payload *)
  let n = Bytes.length bad - 4 in
  Bytes.set bad 0 '\x00';
  Bytes.set bad 1 '\x00';
  Bytes.set bad 2 (Char.chr (n lsr 8));
  Bytes.set bad 3 (Char.chr (n land 0xff));
  expect_malformed "length/count mismatch" bad;
  (* Length prefix beyond the sanity cap. *)
  expect_malformed "oversized" (Bytes.of_string "\x7f\xff\xff\xffC")

let test_truncated_waits () =
  (* A truncated frame is not an error — it waits for the rest. *)
  let frame = Share.encode_clause ~glue:1 (lits_of_dimacs [ 1; -2 ]) in
  let d = Share.decoder () in
  let half = Bytes.length frame / 2 in
  Share.feed d (Bytes.sub frame 0 half) half;
  check Alcotest.bool "waiting" true (Share.next d = None);
  check Alcotest.int "buffered the prefix" half (Share.buffered d)

let test_encode_bounds () =
  (match Share.encode_clause ~glue:1 [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty clause must be rejected");
  let too_long = Array.init (Share.max_clause_lits + 1) (fun i -> 2 * i) in
  match Share.encode_clause ~glue:1 too_long with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "over-long clause must be rejected"

(* ------------------------------------------------------------------ *)
(* The export filter and the dedup key.                                *)

let test_passes_boundaries () =
  let clause k = Array.init k (fun i -> 2 * i) in
  let p = Share.passes ~max_len:8 ~max_glue:4 in
  check Alcotest.bool "len at cap" true (p ~glue:4 (clause 8));
  check Alcotest.bool "len over cap" false (p ~glue:4 (clause 9));
  check Alcotest.bool "glue over cap" false (p ~glue:5 (clause 8));
  check Alcotest.bool "glue 1 len 1" true (p ~glue:1 (clause 1));
  check Alcotest.bool "empty never" false (p ~glue:0 [||]);
  (* the hard frame cap binds even when the configured cap is huge *)
  check Alcotest.bool "hard cap" false
    (Share.passes ~max_len:10_000 ~max_glue:10_000 ~glue:1
       (clause (Share.max_clause_lits + 1)))

let test_key_canonical () =
  let a = lits_of_dimacs [ 1; -2; 3 ] in
  let b = lits_of_dimacs [ 3; 1; -2 ] in
  let c = lits_of_dimacs [ 3; 1; -2; 1 ] in
  check Alcotest.string "permutation invariant" (Share.key a) (Share.key b);
  check Alcotest.string "duplicates collapse" (Share.key a) (Share.key c);
  let d = lits_of_dimacs [ 1; 2; 3 ] in
  check Alcotest.bool "distinct clauses differ" true (Share.key a <> Share.key d)

(* ------------------------------------------------------------------ *)
(* In-process imports.                                                 *)

let test_import_counters_and_dedup () =
  let cnf = hole 6 in
  let s = Solver.create ~config:Config.berkmin cnf in
  let before = Solver.num_learnt_live s in
  Solver.import_clause s ~glue:2 (lits_of_dimacs [ 1; 2; 3 ]);
  Solver.import_clause s ~glue:2 (lits_of_dimacs [ 3; 2; 1 ]);
  (* permuted duplicate *)
  let st = Solver.stats s in
  check Alcotest.int "one landed" 1 st.Stats.clauses_imported;
  check Alcotest.int "one live" (before + 1) (Solver.num_learnt_live s);
  check Alcotest.int "glue recorded" 2
    (Solver.glue_of_learnt s (Solver.num_learnt_live s - 1));
  (* imported binaries go to the implication index, not the watchers *)
  let bins = Solver.num_binary_entries s in
  Solver.import_clause s ~glue:1 (lits_of_dimacs [ 4; 5 ]);
  check Alcotest.int "binary indexed" (bins + 2) (Solver.num_binary_entries s);
  (* a clause over unknown variables is a no-op *)
  Solver.import_clause s ~glue:1 [| Lit.pos 100_000 |];
  check Alcotest.int "unknown var dropped" 2 st.Stats.clauses_imported;
  check (Alcotest.list Alcotest.string) "invariants hold" []
    (Solver.watch_invariant_violations s);
  (* imports never flip an UNSAT instance *)
  check Alcotest.bool "still UNSAT" true (Solver.solve s = Solver.Unsat)

let test_import_unit_at_level_zero () =
  let cnf = Lazy.force (lazy (hole 6)) in
  let s = Solver.create ~config:Config.berkmin cnf in
  Solver.import_clause s ~glue:1 [| Lit.pos 0 |];
  check Alcotest.string "unit assigned at root" "true"
    (match Solver.value_of s 0 with
    | Value.True -> "true"
    | Value.False -> "false"
    | Value.Unassigned -> "unassigned");
  check Alcotest.int "unit counted" 1 (Solver.stats s).Stats.clauses_imported

let test_import_source_drained_at_restart () =
  (* The solver polls the source at every restart; a fast restart
     schedule guarantees the poll fires within a small budget. *)
  let config = { Config.berkmin with Config.restart_mode = Config.Fixed 20 } in
  let s = Solver.create ~config (hole 7) in
  let served = ref 0 in
  Solver.set_import_source s (fun () ->
      if !served = 0 then begin
        incr served;
        [ (2, lits_of_dimacs [ 1; 2; 3 ]); (1, lits_of_dimacs [ -1; 4 ]) ]
      end
      else []);
  let result = Solver.solve ~budget:(Solver.budget_conflicts 2_000) s in
  check Alcotest.bool "source polled" true (!served = 1);
  check Alcotest.int "both landed" 2 (Solver.stats s).Stats.clauses_imported;
  check (Alcotest.list Alcotest.string) "invariants hold" []
    (Solver.watch_invariant_violations s);
  check Alcotest.bool "verdict sound" true
    (result = Solver.Unsat || result = Solver.Unknown)

let test_learn_hook_reports_glue () =
  let s = Solver.create ~config:Config.berkmin (hole 6) in
  let seen = ref [] in
  Solver.set_learn_hook s (fun ~glue lits ->
      seen := (glue, Array.length lits) :: !seen);
  ignore (Solver.solve s);
  check Alcotest.bool "hook fired" true (!seen <> []);
  List.iter
    (fun (glue, len) ->
      if glue < 1 || glue > max 1 len then
        Alcotest.failf "glue %d out of range for a %d-literal clause" glue len)
    !seen

(* ------------------------------------------------------------------ *)
(* A real forked exchange: two workers, both budget-limited to
   Unknown so both replies (and stats) survive.  Worker 1 sleeps
   before solving, so worker 0's exports are already rebroadcast and
   sitting in worker 1's pipe when its first restart drains them.      *)

let test_two_worker_exchange () =
  let cnf = hole 8 in
  let wide c =
    c
    |> Config.with_share_max_len Share.max_clause_lits
    |> Config.with_share_max_glue 255
  in
  let fast_restarts c = { c with Config.restart_mode = Config.Fixed 20 } in
  let spec budget config =
    { Portfolio.sp_config = config; sp_budget = Solver.budget_conflicts budget }
  in
  let exporter = spec 400 (wide Config.berkmin) in
  let importer = spec 400 (fast_restarts (wide Config.berkmin)) in
  let hook i = if i = 1 then ignore (Unix.select [] [] [] 0.2) in
  let outcome =
    Portfolio.solve_specs ~worker_hook:hook [ exporter; importer ] cnf
  in
  check Alcotest.string "both exhausted -> UNKNOWN" "UNKNOWN"
    (Portfolio.result_to_string outcome.Portfolio.result);
  let w i = List.nth outcome.Portfolio.workers i in
  let stats_of i =
    match (w i).Portfolio.w_stats with
    | Some st -> st
    | None ->
      Alcotest.failf "worker %d has no stats (status %s)" i
        (Portfolio.status_to_string (w i).Portfolio.w_status)
  in
  check Alcotest.bool "worker 0 exported frames" true
    ((w 0).Portfolio.w_frames_exported > 0);
  check Alcotest.bool "worker 0 counted its exports" true
    ((stats_of 0).Stats.clauses_exported > 0);
  check Alcotest.bool "worker 1 received frames" true
    ((w 1).Portfolio.w_frames_delivered > 0);
  check Alcotest.bool "worker 1 imported clauses" true
    ((stats_of 1).Stats.clauses_imported > 0)

(* Sharing off: the same race moves no frames at all. *)
let test_share_off_moves_nothing () =
  let cnf = hole 6 in
  let config = Config.with_share_learnt false Config.berkmin in
  let spec =
    { Portfolio.sp_config = config; sp_budget = Solver.no_budget }
  in
  let outcome = Portfolio.solve_specs ~worker_hook:(fun _ -> ()) [ spec; spec ] cnf in
  check Alcotest.string "still UNSAT" "UNSAT"
    (Portfolio.result_to_string outcome.Portfolio.result);
  List.iter
    (fun w ->
      check Alcotest.int "no exports" 0 w.Portfolio.w_frames_exported;
      check Alcotest.int "no deliveries" 0 w.Portfolio.w_frames_delivered)
    outcome.Portfolio.workers

let () =
  Alcotest.run "share"
    [
      ( "codec",
        [
          Alcotest.test_case "clause roundtrip" `Quick test_clause_roundtrip;
          Alcotest.test_case "glue clamped" `Quick test_glue_clamped;
          Alcotest.test_case "reply roundtrip" `Quick test_reply_roundtrip;
          Alcotest.test_case "byte at a time" `Quick test_byte_at_a_time;
          Alcotest.test_case "interleaved stream" `Quick test_interleaved_stream;
          Alcotest.test_case "malformed frames" `Quick test_malformed;
          Alcotest.test_case "truncated waits" `Quick test_truncated_waits;
          Alcotest.test_case "encode bounds" `Quick test_encode_bounds;
        ] );
      ( "filter",
        [
          Alcotest.test_case "passes boundaries" `Quick test_passes_boundaries;
          Alcotest.test_case "key canonical" `Quick test_key_canonical;
        ] );
      ( "import",
        [
          Alcotest.test_case "counters and dedup" `Quick
            test_import_counters_and_dedup;
          Alcotest.test_case "unit at level zero" `Quick
            test_import_unit_at_level_zero;
          Alcotest.test_case "drained at restart" `Quick
            test_import_source_drained_at_restart;
          Alcotest.test_case "learn hook glue" `Quick
            test_learn_hook_reports_glue;
        ] );
      ( "exchange",
        [
          Alcotest.test_case "two-worker exchange" `Quick
            test_two_worker_exchange;
          Alcotest.test_case "share off moves nothing" `Quick
            test_share_off_moves_nothing;
        ] );
    ]
