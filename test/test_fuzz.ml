(* Tests for the differential fuzzing subsystem: deterministic
   generation, mutator semantics, the four oracles (including
   test-injected broken ones), the delta-debugging shrinker, and
   whole-campaign determinism. *)

open Berkmin_types
module Generator = Berkmin_fuzz.Generator
module Mutate = Berkmin_fuzz.Mutate
module Oracle = Berkmin_fuzz.Oracle
module Shrink = Berkmin_fuzz.Shrink
module Fuzz = Berkmin_fuzz.Runner
module Drup = Berkmin_proof.Drup

let check = Alcotest.check
let dimacs cnf = Berkmin_dimacs.Dimacs.to_string cnf

let dpll_verdict cnf =
  match Berkmin.Dpll.solve ~max_nodes:1_000_000 cnf with
  | Berkmin.Dpll.Sat _ -> true
  | Berkmin.Dpll.Unsat -> false
  | Berkmin.Dpll.Unknown -> Alcotest.fail "dpll budget exhausted"

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)

let test_generator_deterministic () =
  let generate seed =
    let rng = Rng.create seed in
    List.init 25 (fun _ -> Generator.generate rng ~max_vars:20)
  in
  List.iter2
    (fun a b ->
      check Alcotest.string "name" a.Generator.name b.Generator.name;
      check Alcotest.string "cnf" (dimacs a.Generator.cnf)
        (dimacs b.Generator.cnf))
    (generate 5) (generate 5)

let test_generator_respects_max_vars () =
  let rng = Rng.create 9 in
  for _ = 1 to 50 do
    let case = Generator.generate rng ~max_vars:12 in
    check Alcotest.bool "vars <= 12" true
      (Cnf.num_vars case.Generator.cnf <= 12)
  done

(* ------------------------------------------------------------------ *)
(* Mutators                                                            *)

let test_preserving_mutations () =
  (* Duplication and renaming never change the verdict. *)
  for seed = 0 to 14 do
    let rng = Rng.create (100 + seed) in
    let case = Generator.generate rng ~max_vars:12 in
    let verdict = dpll_verdict case.Generator.cnf in
    List.iter
      (fun kind ->
        let mutated = Mutate.apply rng kind case.Generator.cnf in
        check Alcotest.bool (Mutate.name kind) verdict (dpll_verdict mutated))
      [ Mutate.Duplicate_clause; Mutate.Rename_vars ]
  done

let test_delete_only_weakens () =
  (* Dropping a clause can flip UNSAT to SAT but never SAT to UNSAT. *)
  for seed = 0 to 14 do
    let rng = Rng.create (200 + seed) in
    let case = Generator.generate rng ~max_vars:12 in
    if dpll_verdict case.Generator.cnf then begin
      let mutated = Mutate.apply rng Mutate.Delete_clause case.Generator.cnf in
      check Alcotest.bool "still SAT" true (dpll_verdict mutated)
    end
  done

let test_mutations_leave_input_intact () =
  let rng = Rng.create 31 in
  let case = Generator.generate rng ~max_vars:10 in
  let before = dimacs case.Generator.cnf in
  List.iter
    (fun kind -> ignore (Mutate.apply rng kind case.Generator.cnf))
    Mutate.all;
  check Alcotest.string "input unchanged" before (dimacs case.Generator.cnf)

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)

let unit_cnf () =
  let cnf = Cnf.create () in
  Cnf.add_clause cnf [ Lit.of_dimacs 1 ];
  cnf

let test_oracle_clean_on_random () =
  let rng = Rng.create 7 in
  for _ = 1 to 40 do
    let case = Generator.generate rng ~max_vars:15 in
    let res = Oracle.differential case.Generator.cnf in
    check Alcotest.int "no failures" 0 (List.length res.Oracle.failures)
  done

let has_failure ~oracle ~culprit res =
  List.exists
    (fun f -> f.Oracle.oracle = oracle && f.Oracle.culprit = culprit)
    res.Oracle.failures

let test_oracle_flags_verdict_mismatch () =
  let broken =
    { Oracle.name = "broken"; solve = (fun _ -> Oracle.A_unsat None) }
  in
  let res =
    Oracle.differential ~solvers:[ Oracle.dpll (); broken ] (unit_cnf ())
  in
  check Alcotest.bool "verdict failure" true
    (has_failure ~oracle:"verdict" ~culprit:"broken" res)

let test_oracle_flags_bad_model () =
  let liar =
    {
      Oracle.name = "liar";
      solve =
        (fun cnf -> Oracle.A_sat (Array.make (Cnf.num_vars cnf) false));
    }
  in
  let res =
    Oracle.differential ~solvers:[ liar; Oracle.dpll () ] (unit_cnf ())
  in
  check Alcotest.bool "model failure" true
    (has_failure ~oracle:"model" ~culprit:"liar" res)

let test_oracle_flags_bad_proof () =
  (* An UNSAT claim certified by an empty derivation must be rejected
     even when the verdict itself is right. *)
  let cnf = Cnf.create () in
  Cnf.add_clause cnf [ Lit.of_dimacs 1 ];
  Cnf.add_clause cnf [ Lit.of_dimacs (-1) ];
  let noproof =
    {
      Oracle.name = "noproof";
      solve = (fun _ -> Oracle.A_unsat (Some (Drup.create ())));
    }
  in
  let res = Oracle.differential ~solvers:[ noproof; Oracle.dpll () ] cnf in
  check Alcotest.bool "proof failure" true
    (has_failure ~oracle:"proof" ~culprit:"noproof" res)

let test_oracle_flags_crash () =
  let bomb =
    { Oracle.name = "bomb"; solve = (fun _ -> failwith "boom") }
  in
  let res =
    Oracle.differential ~solvers:[ bomb; Oracle.dpll () ] (unit_cnf ())
  in
  check Alcotest.bool "crash failure" true
    (has_failure ~oracle:"crash" ~culprit:"bomb" res)

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)

let test_shrink_to_unit () =
  let cnf =
    Berkmin_gen.Random_ksat.generate ~num_vars:15 ~num_clauses:60 ~k:3
      ~seed:9
  in
  Cnf.add_clause cnf
    [ Lit.of_dimacs 1; Lit.of_dimacs 7; Lit.of_dimacs (-12) ];
  let keep c =
    List.exists (fun cl -> Clause.mem (Lit.of_dimacs 1) cl) (Cnf.clauses c)
  in
  let minimized = Shrink.minimize ~keep cnf in
  check Alcotest.int "one clause" 1 (Cnf.num_clauses minimized);
  check Alcotest.int "one literal" 1 (Clause.length (Cnf.get minimized 0));
  check Alcotest.int "one variable" 1 (Cnf.num_vars minimized);
  check Alcotest.bool "still failing" true (keep minimized)

let test_shrink_requires_failing_input () =
  let cnf = unit_cnf () in
  let minimized = Shrink.minimize ~keep:(fun _ -> false) cnf in
  check Alcotest.string "unchanged" (dimacs cnf) (dimacs minimized)

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)

let test_campaign_clean_and_deterministic () =
  let config = { Fuzz.default with Fuzz.seed = 42; rounds = 60 } in
  let r1 = Fuzz.run config in
  let r2 = Fuzz.run config in
  check Alcotest.int "no counterexamples" 0
    (List.length r1.Fuzz.counterexamples);
  check Alcotest.string "bit-identical reports"
    (Json.to_string (Fuzz.report_to_json r1))
    (Json.to_string (Fuzz.report_to_json r2))

let test_campaign_catches_broken_oracle () =
  (* Acceptance criterion: a test-injected broken oracle must yield a
     shrunk counterexample of at most 20 clauses. *)
  let broken =
    { Oracle.name = "broken"; solve = (fun _ -> Oracle.A_unsat None) }
  in
  let config =
    {
      Fuzz.default with
      Fuzz.seed = 1;
      rounds = 12;
      max_vars = 12;
      solvers = Some [ Oracle.dpll (); broken ];
    }
  in
  let report = Fuzz.run config in
  check Alcotest.bool "found counterexamples" true
    (report.Fuzz.counterexamples <> []);
  List.iter
    (fun ce ->
      match ce.Fuzz.minimized with
      | None -> Alcotest.fail "expected a minimized counterexample"
      | Some m ->
        check Alcotest.bool "shrunk to <= 20 clauses" true
          (Cnf.num_clauses m <= 20);
        let res =
          Oracle.differential ~solvers:[ Oracle.dpll (); broken ] m
        in
        check Alcotest.bool "minimized still fails" true
          (res.Oracle.failures <> []))
    report.Fuzz.counterexamples

let test_campaign_json_embeds_repro () =
  let broken =
    { Oracle.name = "broken"; solve = (fun _ -> Oracle.A_unsat None) }
  in
  let config =
    {
      Fuzz.default with
      Fuzz.seed = 1;
      rounds = 12;
      max_vars = 12;
      solvers = Some [ Oracle.dpll (); broken ];
    }
  in
  let report = Fuzz.run config in
  let json = Fuzz.report_to_json report in
  match Json.member "counterexamples" json with
  | Some (Json.List (ce :: _)) -> (
    match Json.member "minimized_dimacs" ce with
    | Some (Json.String text) ->
      (* the embedded DIMACS must parse back to the same formula *)
      let cnf = Berkmin_dimacs.Dimacs.parse_string text in
      check Alcotest.bool "parses back" true (Cnf.num_clauses cnf >= 0)
    | _ -> Alcotest.fail "missing minimized_dimacs")
  | _ -> Alcotest.fail "missing counterexamples"

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick
            test_generator_deterministic;
          Alcotest.test_case "respects max_vars" `Quick
            test_generator_respects_max_vars;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "duplicate/rename preserve verdict" `Slow
            test_preserving_mutations;
          Alcotest.test_case "delete only weakens" `Slow
            test_delete_only_weakens;
          Alcotest.test_case "input left intact" `Quick
            test_mutations_leave_input_intact;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean on random cases" `Slow
            test_oracle_clean_on_random;
          Alcotest.test_case "flags verdict mismatch" `Quick
            test_oracle_flags_verdict_mismatch;
          Alcotest.test_case "flags bad model" `Quick
            test_oracle_flags_bad_model;
          Alcotest.test_case "flags bad proof" `Quick
            test_oracle_flags_bad_proof;
          Alcotest.test_case "flags crash" `Quick test_oracle_flags_crash;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "shrinks to a unit clause" `Quick
            test_shrink_to_unit;
          Alcotest.test_case "requires failing input" `Quick
            test_shrink_requires_failing_input;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "clean and deterministic" `Slow
            test_campaign_clean_and_deterministic;
          Alcotest.test_case "broken oracle yields shrunk counterexample"
            `Slow test_campaign_catches_broken_oracle;
          Alcotest.test_case "json embeds repro" `Slow
            test_campaign_json_embeds_repro;
        ] );
    ]
