(* Incremental-interface tests: assumptions, failed-assumption cores,
   clause/variable growth between solves, learnt retention, per-call
   budgets, GC across calls, and a resident-vs-fresh differential
   mini-campaign. *)

open Berkmin_types
module Solver = Berkmin.Solver
module Pigeonhole = Berkmin_gen.Pigeonhole
module Random_ksat = Berkmin_gen.Random_ksat

let check = Alcotest.check

let cnf_of lists =
  let cnf = Cnf.create () in
  List.iter (fun c -> Cnf.add_clause cnf (List.map Lit.of_dimacs c)) lists;
  cnf

let lit = Lit.of_dimacs

let verdict_name = function
  | Solver.Sat _ -> "SAT"
  | Solver.Unsat -> "UNSAT"
  | Solver.Unknown -> "UNKNOWN"

let is_sat = function Solver.Sat _ -> true | _ -> false
let is_unsat = function Solver.Unsat -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Assumptions via the [solve ~assumps] front door                     *)

let test_assumps_basic () =
  let s = Solver.create (cnf_of [ [ 1; 2 ]; [ -1; 3 ] ]) in
  (match Solver.solve ~assumps:[ lit 1 ] s with
  | Solver.Sat m ->
    check Alcotest.bool "assumed lit holds" true m.(0);
    check Alcotest.bool "implied lit holds" true m.(2)
  | r -> Alcotest.failf "expected SAT, got %s" (verdict_name r));
  (* conflicting assumptions: UNSAT under them, SAT again without *)
  check Alcotest.bool "unsat under ~1,~2" true
    (is_unsat (Solver.solve ~assumps:[ lit (-1); lit (-2) ] s));
  check Alcotest.bool "core present" true (Solver.unsat_core s <> None);
  check Alcotest.bool "plain solve recovers SAT" true (is_sat (Solver.solve s));
  check Alcotest.(option (list int)) "core cleared by SAT outcome" None
    (Solver.unsat_core s)

let test_assumps_empty_list_is_plain () =
  let s = Solver.create (cnf_of [ [ 1 ] ]) in
  check Alcotest.bool "sat" true (is_sat (Solver.solve ~assumps:[] s));
  check Alcotest.(option (list int)) "no core" None (Solver.unsat_core s)

(* ------------------------------------------------------------------ *)
(* Failed-assumption cores                                             *)

(* Dropping any single core member from the assumption set must flip
   the verdict back to SAT — checked by re-solving on the same resident
   solver.  The instances are built so every core is necessarily
   minimal (each pairwise/ternary conflict needs all its members). *)
let core_is_minimal s all_assumps =
  match Solver.unsat_core s with
  | None -> Alcotest.fail "expected a failed-assumption core"
  | Some core ->
    check Alcotest.bool "core non-empty" true (core <> []);
    List.iter
      (fun l ->
        check Alcotest.bool "core member was assumed" true
          (List.mem l all_assumps))
      core;
    List.iter
      (fun dropped ->
        let rest = List.filter (fun l -> l <> dropped) core in
        check Alcotest.bool "dropping a core member flips to SAT" true
          (is_sat (Solver.solve ~assumps:rest s)))
      core

let test_core_soundness_pair () =
  (* (~a | ~b): assumptions a, b, c fail; c is irrelevant.  The
     tautology only widens the variable space so c exists. *)
  let s = Solver.create (cnf_of [ [ -1; -2 ]; [ 3; -3 ] ]) in
  let assumps = [ lit 1; lit 2; lit 3 ] in
  check Alcotest.bool "unsat under a,b,c" true
    (is_unsat (Solver.solve ~assumps s));
  (match Solver.unsat_core s with
  | Some core ->
    check Alcotest.bool "irrelevant assumption excluded" false
      (List.mem (lit 3) core)
  | None -> Alcotest.fail "expected core");
  core_is_minimal s assumps

let test_core_soundness_chain () =
  (* a -> x -> y, b -> ~y: the conflict needs both a and b, discovered
     through propagation chains rather than a direct clause. *)
  let s =
    Solver.create (cnf_of [ [ -1; 4 ]; [ -4; 5 ]; [ -2; -5 ]; [ 3; -3 ] ])
  in
  let assumps = [ lit 3; lit 1; lit 2 ] in
  check Alcotest.bool "unsat under chain assumptions" true
    (is_unsat (Solver.solve ~assumps s));
  core_is_minimal s assumps

let test_core_empty_when_formula_unsat () =
  let s = Solver.create (cnf_of [ [ 1 ]; [ -1 ] ]) in
  check Alcotest.bool "unsat" true (is_unsat (Solver.solve ~assumps:[ lit 2 ] s));
  check
    Alcotest.(option (list int))
    "formula-level UNSAT yields empty core" (Some []) (Solver.unsat_core s)

(* ------------------------------------------------------------------ *)
(* Growing the formula between solves                                  *)

let test_new_var_add_clause_after_failed_assumps () =
  let s = Solver.create (cnf_of [ [ 1; 2 ] ]) in
  check Alcotest.bool "unsat under ~1,~2" true
    (is_unsat (Solver.solve ~assumps:[ lit (-1); lit (-2) ] s));
  (* grow after an UNSAT-under-assumptions outcome *)
  let v = Solver.new_var s in
  check Alcotest.int "fresh var index" 2 v;
  Solver.add_clause s [ Lit.pos 0; Lit.pos v ];
  (match Solver.solve ~assumps:[ lit (-1) ] s with
  | Solver.Sat m ->
    check Alcotest.bool "new clause active: ~1 forces v" true m.(v)
  | r -> Alcotest.failf "expected SAT, got %s" (verdict_name r));
  (* the new variable can itself be assumed *)
  check Alcotest.bool "assume ~v with ~1: unsat" true
    (is_unsat (Solver.solve ~assumps:[ lit (-1); Lit.neg_of v ] s));
  core_is_minimal s [ lit (-1); Lit.neg_of v ]

let test_add_clause_tightens_to_unsat () =
  let s = Solver.create (cnf_of [ [ 1; 2 ] ]) in
  check Alcotest.bool "sat initially" true (is_sat (Solver.solve s));
  Solver.add_clause s [ lit (-1) ];
  Solver.add_clause s [ lit (-2) ];
  check Alcotest.bool "units flip to UNSAT" true (is_unsat (Solver.solve s));
  (* permanently unsatisfiable: growth keeps the verdict *)
  let v = Solver.new_var s in
  Solver.add_clause s [ Lit.pos v ];
  check Alcotest.bool "still UNSAT after growth" true (is_unsat (Solver.solve s))

let test_add_clause_unknown_var_rejected () =
  let s = Solver.create (cnf_of [ [ 1 ] ]) in
  Alcotest.check_raises "unknown variable"
    (Invalid_argument "Solver.add_clause: unknown variable") (fun () ->
      Solver.add_clause s [ lit 5 ])

let test_incremental_from_empty () =
  (* Build a whole formula through the incremental interface only. *)
  let s = Solver.create (Cnf.create ()) in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a; Lit.pos b ];
  Solver.add_clause s [ Lit.make a false; Lit.pos b ];
  (match Solver.solve s with
  | Solver.Sat m -> check Alcotest.bool "b forced" true m.(b)
  | r -> Alcotest.failf "expected SAT, got %s" (verdict_name r));
  Solver.add_clause s [ Lit.make b false ];
  check Alcotest.bool "now UNSAT" true (is_unsat (Solver.solve s))

(* ------------------------------------------------------------------ *)
(* Learnt retention                                                    *)

let hole_assumptions () =
  (* php 7 7 is SAT; assuming hole 6 empty reduces it to php 7 6 —
     a genuinely hard UNSAT-under-assumptions query. *)
  let cnf = Pigeonhole.php 7 7 in
  let blocked = List.init 7 (fun p -> Lit.make ((p * 7) + 6) false) in
  (cnf, blocked)

let test_learnt_retention () =
  let cnf, blocked = hole_assumptions () in
  let s = Solver.create cnf in
  let deltas =
    List.init 3 (fun _ ->
        let before = (Solver.stats s).Berkmin.Stats.conflicts in
        check Alcotest.bool "unsat under blocked hole" true
          (is_unsat (Solver.solve ~assumps:blocked s));
        (Solver.stats s).Berkmin.Stats.conflicts - before)
  in
  match deltas with
  | [ d1; d2; d3 ] ->
    check Alcotest.bool "first query pays real conflicts" true (d1 > 0);
    check Alcotest.bool
      (Printf.sprintf "retained learnts cut conflicts (%d -> %d)" d1 d2)
      true (d2 < d1);
    check Alcotest.bool
      (Printf.sprintf "third query no worse than second (%d -> %d)" d2 d3)
      true (d3 <= d2)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Per-call budgets                                                    *)

let test_solve_limited () =
  let cnf = Random_ksat.generate ~num_vars:150 ~num_clauses:640 ~k:3 ~seed:11 in
  let s = Solver.create cnf in
  check Alcotest.bool "zero budget exhausts immediately" true
    (Solver.solve_limited s ~conflicts:0 = Solver.Unknown);
  (* budget is per call, not lifetime: a second limited call makes
     progress instead of dying on the spent counter *)
  let r = ref Solver.Unknown in
  let calls = ref 0 in
  while !r = Solver.Unknown && !calls < 200 do
    incr calls;
    r := Solver.solve_limited s ~conflicts:50
  done;
  check Alcotest.bool "bounded calls converge" true (!r <> Solver.Unknown);
  (* verdict matches a fresh unbounded solve *)
  let fresh = Solver.solve (Solver.create cnf) in
  check Alcotest.string "limited convergence agrees with one-shot"
    (verdict_name fresh) (verdict_name !r);
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Solver.solve_limited: negative budget") (fun () ->
      ignore (Solver.solve_limited s ~conflicts:(-1)))

(* ------------------------------------------------------------------ *)
(* GC between solves                                                   *)

let test_gc_between_solves () =
  let cnf = Random_ksat.generate ~num_vars:120 ~num_clauses:500 ~k:3 ~seed:3 in
  let s = Solver.create cnf in
  let probes =
    [ []; [ lit 7 ]; [ lit (-7); lit 12 ]; [ lit 1; lit (-2); lit 3 ] ]
  in
  List.iter
    (fun assumps ->
      let resident = Solver.solve ~assumps s in
      Solver.compact s;
      check Alcotest.(list string) "watch invariants after compaction" []
        (Solver.watch_invariant_violations s);
      let fresh = Solver.solve ~assumps (Solver.create cnf) in
      check Alcotest.string "verdict survives compaction"
        (verdict_name fresh) (verdict_name resident))
    probes

(* ------------------------------------------------------------------ *)
(* Resident-vs-fresh differential mini-campaign                        *)

let test_differential_mini () =
  let rng = Random.State.make [| 0xBEEF |] in
  for round = 1 to 25 do
    let num_vars = 8 + Random.State.int rng 12 in
    let num_clauses = num_vars * 4 in
    let cnf =
      Random_ksat.generate ~num_vars ~num_clauses ~k:3
        ~seed:(1000 + round)
    in
    let s = Solver.create cnf in
    for _query = 1 to 4 do
      let n_assumps = Random.State.int rng 4 in
      let assumps =
        List.init n_assumps (fun _ ->
            Lit.make (Random.State.int rng num_vars) (Random.State.bool rng))
      in
      let resident = Solver.solve ~assumps s in
      let fresh = Solver.solve ~assumps (Solver.create cnf) in
      check Alcotest.string
        (Printf.sprintf "round %d: resident matches fresh" round)
        (verdict_name fresh) (verdict_name resident);
      (match resident with
      | Solver.Sat m ->
        check Alcotest.bool "model satisfies formula" true
          (Solver.check_model cnf m);
        List.iter
          (fun l ->
            check Alcotest.bool "model honours assumption" (Lit.is_pos l)
              m.(Lit.var l))
          assumps
      | Solver.Unsat | Solver.Unknown -> ())
    done
  done

let () =
  Alcotest.run "incremental"
    [
      ( "assumptions",
        [
          Alcotest.test_case "basic" `Quick test_assumps_basic;
          Alcotest.test_case "empty list" `Quick test_assumps_empty_list_is_plain;
        ] );
      ( "unsat core",
        [
          Alcotest.test_case "pairwise conflict" `Quick test_core_soundness_pair;
          Alcotest.test_case "propagation chain" `Quick test_core_soundness_chain;
          Alcotest.test_case "formula-level unsat" `Quick
            test_core_empty_when_formula_unsat;
        ] );
      ( "growth",
        [
          Alcotest.test_case "after failed assumptions" `Quick
            test_new_var_add_clause_after_failed_assumps;
          Alcotest.test_case "tighten to UNSAT" `Quick
            test_add_clause_tightens_to_unsat;
          Alcotest.test_case "unknown var rejected" `Quick
            test_add_clause_unknown_var_rejected;
          Alcotest.test_case "from empty formula" `Quick
            test_incremental_from_empty;
        ] );
      ( "retention",
        [ Alcotest.test_case "learnt clauses persist" `Quick test_learnt_retention ]
      );
      ("budgets", [ Alcotest.test_case "solve_limited" `Quick test_solve_limited ]);
      ("gc", [ Alcotest.test_case "compact between solves" `Quick test_gc_between_solves ]);
      ( "differential",
        [ Alcotest.test_case "resident vs fresh" `Quick test_differential_mini ] );
    ]
