(* Server-layer tests: protocol parsing, in-process request servicing,
   session lifecycle, per-request budgets, trace/metrics plumbing, and
   a forked end-to-end socket round-trip with concurrent clients. *)

open Berkmin_types
module Protocol = Berkmin_server.Protocol
module Server = Berkmin_server.Server
module Client = Berkmin_server.Client
module Trace = Berkmin.Trace
module Metrics = Berkmin.Metrics

let check = Alcotest.check

let obj fields = Json.Obj fields
let str s = Json.String s
let int n = Json.Int n

let handle_ok server request =
  match Server.handle server request with
  | response, `Continue -> response
  | _, `Shutdown -> Alcotest.fail "unexpected shutdown"

let assert_ok response =
  match Json.member "ok" response with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.failf "expected ok response, got %s" (Json.to_string response)

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let assert_error response fragment =
  (match Json.member "ok" response with
  | Some (Json.Bool false) -> ()
  | _ ->
    Alcotest.failf "expected error response, got %s" (Json.to_string response));
  match Json.member "error" response with
  | Some (Json.String msg) ->
    if not (contains ~needle:fragment msg) then
      Alcotest.failf "error %S does not mention %S" msg fragment
  | _ -> Alcotest.fail "error response without message"

let status_of response =
  match Json.member "status" response with
  | Some (Json.String s) -> s
  | _ -> Alcotest.failf "no status in %s" (Json.to_string response)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let test_protocol_parse () =
  (match Protocol.parse_line {|{"op":"solve","session":"s","assumps":[1,-2]}|} with
  | Ok { session = Some "s"; command = Protocol.Solve { assumps; _ }; _ } ->
    check (Alcotest.list Alcotest.int) "assumps decoded"
      [ Lit.of_dimacs 1; Lit.of_dimacs (-2) ]
      assumps
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e);
  (match Protocol.parse_line {|{"op":"solve","assumps":[0]}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "literal 0 must be rejected");
  (match Protocol.parse_line {|{"op":"nope"}|} with
  | Error e -> check Alcotest.bool "names the op" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "unknown op must be rejected");
  match Protocol.parse_line "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSON must be rejected"

let test_protocol_roundtrip () =
  let req =
    {
      Protocol.id = Some (int 7);
      session = Some "s";
      command =
        Protocol.Solve
          {
            assumps = [ Lit.of_dimacs 3; Lit.of_dimacs (-1) ];
            max_conflicts = Some 10;
            max_ms = None;
          };
    }
  in
  match Protocol.parse (Protocol.request_to_json req) with
  | Ok req' -> check Alcotest.bool "round-trips" true (req = req')
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* In-process servicing                                                *)

let test_session_lifecycle () =
  let server = Server.create () in
  assert_ok
    (handle_ok server (obj [ "op", str "open"; "session", str "a"; "vars", int 2 ]));
  check Alcotest.int "one session" 1 (Server.num_sessions server);
  assert_error
    (handle_ok server (obj [ "op", str "open"; "session", str "a" ]))
    "already exists";
  assert_ok
    (handle_ok server
       (obj
          [
            "op", str "add_clauses";
            "session", str "a";
            "clauses", Json.List [ Json.List [ int 1; int 2 ] ];
          ]));
  let r =
    handle_ok server
      (obj
         [
           "op", str "solve";
           "session", str "a";
           "assumps", Json.List [ int (-1); int (-2) ];
         ])
  in
  check Alcotest.string "unsat under assumptions" "unsat" (status_of r);
  (match Json.member "core" r with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "unsat-under-assumptions response must carry a core");
  let r = handle_ok server (obj [ "op", str "solve"; "session", str "a" ]) in
  check Alcotest.string "sat without assumptions" "sat" (status_of r);
  assert_ok (handle_ok server (obj [ "op", str "close"; "session", str "a" ]));
  check Alcotest.int "closed" 0 (Server.num_sessions server);
  assert_error
    (handle_ok server (obj [ "op", str "solve"; "session", str "a" ]))
    "unknown session"

let test_errors_and_echo () =
  let server = Server.create () in
  assert_error (handle_ok server (obj [ "op", str "solve" ])) "session";
  assert_error (handle_ok server (obj [ "op", str "frobnicate" ])) "unknown op";
  let r = handle_ok server (obj [ "op", str "ping"; "id", int 99 ]) in
  (match Json.member "id" r with
  | Some (Json.Int 99) -> ()
  | _ -> Alcotest.fail "id must be echoed");
  assert_ok r;
  (* session cap *)
  let tiny = Server.create ~max_sessions:1 () in
  assert_ok (handle_ok tiny (obj [ "op", str "open"; "session", str "one" ]));
  assert_error
    (handle_ok tiny (obj [ "op", str "open"; "session", str "two" ]))
    "session limit"

let test_budget_exhaustion () =
  let server = Server.create () in
  assert_ok
    (handle_ok server (obj [ "op", str "open"; "session", str "h"; "vars", int 0 ]));
  (* php 7 6 through the wire: hard enough that 1 conflict cannot solve
     it, so a tiny per-request budget must degrade to "unknown" *)
  let cnf = Berkmin_gen.Pigeonhole.php 7 6 in
  let clauses =
    List.map
      (fun c ->
        Json.List
          (List.map (fun l -> int (Lit.to_dimacs l)) (Clause.to_list c)))
      (Cnf.clauses cnf)
  in
  assert_ok
    (handle_ok server
       (obj
          [
            "op", str "new_var"; "session", str "h";
            "count", int (Cnf.num_vars cnf);
          ]));
  assert_ok
    (handle_ok server
       (obj
          [ "op", str "add_clauses"; "session", str "h";
            "clauses", Json.List clauses ]));
  let r =
    handle_ok server
      (obj
         [ "op", str "solve"; "session", str "h"; "max_conflicts", int 1 ])
  in
  check Alcotest.string "budget exhausted" "unknown" (status_of r);
  (* a second budgeted call keeps making progress (per-request budget,
     learnt clauses retained) and an unbounded one finishes the job *)
  let r = handle_ok server (obj [ "op", str "solve"; "session", str "h" ]) in
  check Alcotest.string "resident solver converges" "unsat" (status_of r)

let test_trace_and_metrics () =
  let server = Server.create () in
  let events = ref [] in
  Trace.set_sink (Server.trace server)
    (Trace.Callback (fun e -> events := e :: !events));
  assert_ok
    (handle_ok server (obj [ "op", str "open"; "session", str "t"; "vars", int 1 ]));
  assert_ok
    (handle_ok server
       (obj
          [
            "op", str "add_clause"; "session", str "t";
            "lits", Json.List [ int 1 ];
          ]));
  ignore (handle_ok server (obj [ "op", str "solve"; "session", str "t" ]));
  ignore (handle_ok server (obj [ "op", str "nope" ]));
  let ops =
    List.rev_map
      (function
        | Trace.Server_request { op; status; _ } -> op ^ ":" ^ status
        | _ -> "other")
      !events
  in
  check
    (Alcotest.list Alcotest.string)
    "one event per request, statuses included"
    [ "open:ok"; "add_clause:ok"; "solve:sat"; "invalid:error" ]
    ops;
  let m = Server.metrics server in
  check Alcotest.int "requests counted" 4
    (Metrics.value (Metrics.counter m "server_requests"));
  check Alcotest.int "errors counted" 1
    (Metrics.value (Metrics.counter m "server_errors"));
  check Alcotest.int "solves counted" 1
    (Metrics.value (Metrics.counter m "server_solves"))

(* ------------------------------------------------------------------ *)
(* End-to-end socket round-trip                                        *)

let test_socket_concurrent_clients () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "berkmin_test_%d.sock" (Unix.getpid ()))
  in
  let ready_r, ready_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* child: the daemon *)
    Unix.close ready_r;
    let server = Server.create () in
    (try
       Server.serve_socket_until server ~path ~ready:(fun () ->
           ignore (Unix.write ready_w (Bytes.of_string "r") 0 1);
           Unix.close ready_w)
     with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close ready_w;
    ignore (Unix.read ready_r (Bytes.create 1) 0 1);
    Unix.close ready_r;
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ -> ())
      (fun () ->
        (* four concurrent connections, interleaved requests *)
        let c1 = Client.connect ~path in
        let c2 = Client.connect ~path in
        let c3 = Client.connect ~path in
        let c4 = Client.connect ~path in
        Client.ping c4;
        Client.open_session ~vars:3 c1 "shared";
        Client.add_clauses c1 ~session:"shared"
          [ [ Lit.of_dimacs 1; Lit.of_dimacs 2 ]; [ Lit.of_dimacs (-1); Lit.of_dimacs 3 ] ];
        (* a second client works against the session the first opened *)
        (match Client.solve c2 ~session:"shared" ~assumps:[ Lit.of_dimacs (-2) ] with
        | Client.Sat m ->
          check Alcotest.bool "assumption honoured" false m.(1)
        | _ -> Alcotest.fail "expected SAT");
        (match
           Client.solve c3 ~session:"shared"
             ~assumps:[ Lit.of_dimacs (-1); Lit.of_dimacs (-2) ]
         with
        | Client.Unsat (Some core) ->
          check Alcotest.bool "non-empty core over the wire" true (core <> [])
        | _ -> Alcotest.fail "expected UNSAT with core");
        let stats = Client.stats c1 ~session:"shared" in
        check Alcotest.bool "stats carry clause count" true
          (List.mem_assoc "clauses" stats);
        Client.close_session c4 ~session:"shared";
        Client.shutdown c2;
        (* daemon must exit cleanly and remove its socket *)
        let rec wait_exit tries =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
            if tries = 0 then Alcotest.fail "daemon did not exit on shutdown"
            else begin
              Unix.sleepf 0.05;
              wait_exit (tries - 1)
            end
          | _, Unix.WEXITED 0 -> ()
          | _, _ -> Alcotest.fail "daemon exited abnormally"
        in
        wait_exit 100;
        check Alcotest.bool "socket unlinked" false (Sys.file_exists path);
        List.iter Client.close [ c1; c2; c3; c4 ])

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "roundtrip" `Quick test_protocol_roundtrip;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "lifecycle" `Quick test_session_lifecycle;
          Alcotest.test_case "errors and id echo" `Quick test_errors_and_echo;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
        ] );
      ( "observability",
        [ Alcotest.test_case "trace and metrics" `Quick test_trace_and_metrics ]
      );
      ( "socket",
        [
          Alcotest.test_case "concurrent clients" `Quick
            test_socket_concurrent_clients;
        ] );
    ]
