(* Benchmark entry point.

   Default mode regenerates every table and figure of the paper's
   evaluation (see lib/harness/experiments.ml); [--bechamel] runs a
   Bechamel micro-benchmark suite with one Test.make group per table on
   small representative workloads; [--quick] shrinks budgets for smoke
   runs; [--smoke] runs a small per-instance suite instead of the
   tables; [--json FILE] writes whatever ran as a machine-readable
   summary (FILE of "-" for stdout). *)

open Berkmin_types
open Berkmin_gen
module Config = Berkmin.Config
module Dimacs = Berkmin_dimacs.Dimacs
module Experiments = Berkmin_harness.Experiments
module Runner = Berkmin_harness.Runner

let add_member key value = function
  | Json.Obj fields -> Json.Obj (fields @ [ (key, value) ])
  | json -> json

let add_members kvs json = List.fold_left (fun j (k, v) -> add_member k v j) json kvs

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite.                                               *)

let solve_fn config instance =
  let cnf = instance.Instance.cnf in
  fun () ->
    match
      Berkmin.Solver.solve_cnf ~config
        ~budget:(Berkmin.Solver.budget_conflicts 20_000)
        cnf
    with
    | Berkmin.Solver.Sat _ | Berkmin.Solver.Unsat | Berkmin.Solver.Unknown -> ()

let test_of ~name config instance =
  Bechamel.Test.make ~name (Bechamel.Staged.stage (solve_fn config instance))

let bechamel_tests () =
  let hole = Pigeonhole.instance 7 6 in
  let adder = Circuit_bench.adder_miter ~width:8 in
  let mul = Circuit_bench.mul_miter ~width:3 in
  let tiny_hole = Pigeonhole.instance 6 5 in
  let group name members = Bechamel.Test.make_grouped ~name members in
  [
    group "table1-sensitivity"
      [
        test_of ~name:"berkmin" Config.berkmin hole;
        test_of ~name:"less_sensitivity" Config.less_sensitivity hole;
      ];
    group "table2-mobility"
      [
        test_of ~name:"berkmin" Config.berkmin hole;
        test_of ~name:"less_mobility" Config.less_mobility hole;
      ];
    group "table3-skin" [ test_of ~name:"berkmin" Config.berkmin adder ];
    group "table4-branch"
      [
        test_of ~name:"berkmin" Config.berkmin adder;
        test_of ~name:"sat_top" Config.sat_top adder;
        test_of ~name:"unsat_top" Config.unsat_top adder;
        test_of ~name:"take_0" Config.take_zero adder;
        test_of ~name:"take_1" Config.take_one adder;
        test_of ~name:"take_rand" Config.take_random adder;
      ];
    group "table5-db"
      [
        test_of ~name:"berkmin" Config.berkmin mul;
        test_of ~name:"limited_keeping" Config.limited_keeping mul;
      ];
    group "table6-comparable"
      [
        test_of ~name:"berkmin" Config.berkmin adder;
        test_of ~name:"chaff" Config.chaff adder;
      ];
    group "table7-dominated"
      [
        test_of ~name:"berkmin" Config.berkmin mul;
        test_of ~name:"chaff" Config.chaff mul;
      ];
    group "table8-decisions"
      [
        test_of ~name:"berkmin" Config.berkmin hole;
        test_of ~name:"chaff" Config.chaff hole;
      ];
    group "table9-dbsize"
      [
        test_of ~name:"berkmin" Config.berkmin mul;
        test_of ~name:"chaff" Config.chaff mul;
      ];
    group "table10-robustness"
      [
        test_of ~name:"berkmin" Config.berkmin tiny_hole;
        test_of ~name:"chaff" Config.chaff tiny_hole;
        test_of ~name:"limmat" Config.limmat_like tiny_hole;
      ];
  ]

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:true ()
  in
  print_endline "Bechamel micro-suite (ns per solve, OLS on monotonic clock):";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      let names =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) results [])
      in
      List.iter
        (fun name ->
          let o = Hashtbl.find results name in
          match Analyze.OLS.estimates o with
          | Some (est :: _) -> Printf.printf "  %-42s %12.0f ns/run\n%!" name est
          | Some [] | None -> Printf.printf "  %-42s (no estimate)\n%!" name)
        names)
    (bechamel_tests ())

(* ------------------------------------------------------------------ *)
(* Smoke suite: one pass over small instances with tight budgets,
   reporting per-instance wall time / conflicts / decisions / props
   per second — the summary CI archives and gates on.                  *)

let smoke_instances () =
  List.concat_map (fun (_, insts) -> insts) (Suites.quick ())
  @ [
      Pigeonhole.instance 8 7;
      Circuit_bench.adder_miter ~width:8;
      Parity.tseitin_instance ~num_vars:16 ~degree:3 ~seed:3;
      (* Random 3-SAT near the phase transition: seeded, so the work
         counters below are deterministic and gate-worthy. *)
      Random_ksat.instance ~num_vars:100 ~ratio:4.3 ~seed:5;
      Random_ksat.instance ~num_vars:120 ~ratio:4.3 ~seed:9;
      Random_ksat.planted_instance ~num_vars:150 ~ratio:4.2 ~seed:12;
    ]

(* Simplify differential: the same smoke instances once more with the
   simplification pipeline on (lib/simplify, mode pre).  Gates:

   - decided verdicts must match the plain pass (a run that aborts on
     either side contradicts nothing);
   - every SAT model — reconstructed through the elimination stack —
     must satisfy the ORIGINAL formula;
   - every UNSAT answer's DRUP proof must forward-check (the
     simplifier logs each derived clause and deletion), checked up to
     the same step cap the fuzzer uses;
   - at least one structured instance must actually eliminate
     variables, so the pipeline can never silently decay to a no-op. *)

module Drup = Berkmin_proof.Drup

let max_checked_proof_steps = 50_000

let run_simplify_smoke plain_outcomes =
  let config = Config.with_simplify Config.Simp_pre Config.berkmin in
  let budget = Runner.quick_budget in
  let rows =
    List.map
      (fun inst ->
        let cnf = inst.Instance.cnf in
        let solver = Berkmin.Solver.create ~config cnf in
        let proof = Drup.create () in
        Berkmin.Solver.set_proof_logger solver (Drup.record proof);
        let result = Berkmin.Solver.solve ~budget solver in
        let st = Berkmin.Solver.stats solver in
        let verdict =
          match result with
          | Berkmin.Solver.Sat _ -> "SAT"
          | Berkmin.Solver.Unsat -> "UNSAT"
          | Berkmin.Solver.Unknown -> "aborted"
        in
        let model_ok =
          match result with
          | Berkmin.Solver.Sat m -> Cnf.satisfied_by cnf m
          | Berkmin.Solver.Unsat | Berkmin.Solver.Unknown -> true
        in
        let proof_status, proof_ok =
          match result with
          | Berkmin.Solver.Unsat ->
            if Drup.length proof > max_checked_proof_steps then ("skipped", true)
            else (
              match Drup.check cnf proof with
              | Drup.Valid -> ("valid", true)
              | Drup.Invalid { step; reason; _ } ->
                (Printf.sprintf "invalid at step %d: %s" step reason, false))
          | Berkmin.Solver.Sat _ | Berkmin.Solver.Unknown -> ("n/a", true)
        in
        let plain_verdict =
          match
            List.find_opt
              (fun o -> o.Runner.instance_name = inst.Instance.name)
              plain_outcomes
          with
          | Some o -> Runner.verdict_to_string o.Runner.verdict
          | None -> "aborted"
        in
        let agree =
          verdict = "aborted" || plain_verdict = "aborted"
          || verdict = plain_verdict
        in
        let eliminated = st.Berkmin.Stats.eliminated_vars in
        Printf.printf
          "%-28s %-8s vs plain %-8s  elim %4d  subsumed %4d  proof %s%s%s\n%!"
          inst.Instance.name verdict plain_verdict eliminated
          st.Berkmin.Stats.subsumed proof_status
          (if agree then "" else "  VERDICT DRIFT")
          (if model_ok then "" else "  BAD MODEL");
        let json =
          Json.Obj
            [
              "instance", Json.String inst.Instance.name;
              "verdict", Json.String verdict;
              "plain_verdict", Json.String plain_verdict;
              "agree", Json.Bool agree;
              "model_ok", Json.Bool model_ok;
              "proof", Json.String proof_status;
              "simplify_runs", Json.Int st.Berkmin.Stats.simplify_runs;
              "simplified_clauses",
                Json.Int st.Berkmin.Stats.simplified_clauses;
              "eliminated_vars", Json.Int eliminated;
              "subsumed", Json.Int st.Berkmin.Stats.subsumed;
              "strengthened", Json.Int st.Berkmin.Stats.strengthened;
              "failed_literals", Json.Int st.Berkmin.Stats.failed_literals;
            ]
        in
        (json, agree && model_ok && proof_ok, eliminated))
      (smoke_instances ())
  in
  let sound = List.for_all (fun (_, ok, _) -> ok) rows in
  let total_eliminated = List.fold_left (fun a (_, _, e) -> a + e) 0 rows in
  let elimination_alive = List.exists (fun (_, _, e) -> e > 0) rows in
  Printf.printf
    "simplify smoke: %d instances, %d vars eliminated%s%s\n"
    (List.length rows) total_eliminated
    (if sound then "" else ", UNSOUND")
    (if elimination_alive then "" else ", ELIMINATION DEAD");
  let json =
    Json.Obj
      [
        "mode",
          Json.String (Config.simplify_mode_to_string Config.Simp_pre);
        "instances", Json.List (List.map (fun (j, _, _) -> j) rows);
        "total_eliminated_vars", Json.Int total_eliminated;
        "elimination_alive", Json.Bool elimination_alive;
        "sound", Json.Bool sound;
      ]
  in
  (json, sound && elimination_alive)

let run_smoke () =
  let budget = Runner.quick_budget in
  let outcomes =
    List.map
      (fun inst ->
        let o = Runner.run_instance ~budget Config.berkmin inst in
        Printf.printf "%-28s %-8s %8.3fs  %8d conflicts  %10.0f props/s\n%!"
          o.Runner.instance_name
          (Runner.verdict_to_string o.Runner.verdict)
          o.Runner.seconds o.Runner.conflicts (Runner.props_per_sec o);
        o)
      (smoke_instances ())
  in
  let aborted =
    List.filter (fun o -> o.Runner.verdict = Runner.V_aborted) outcomes
  in
  let wrong = List.filter (fun o -> not o.Runner.correct) outcomes in
  let total = List.fold_left (fun a o -> a +. o.Runner.seconds) 0.0 outcomes in
  Printf.printf "smoke: %d instances, %.2fs total, %d aborted, %d wrong\n"
    (List.length outcomes) total (List.length aborted) (List.length wrong);
  let simplify_json, simplify_ok = run_simplify_smoke outcomes in
  (* Streaming-load lane: every smoke instance once more, serialized to
     DIMACS text and solved through the bulk [Solver.load] path.  The
     rows are named "stream/<instance>" and carry the full smoke
     schema plus the load counters, so the verdict baseline and the
     perf-counter gate both cover the fast path; the lane's own gate
     is verdict agreement with the plain rows (a run that aborts on
     either side contradicts nothing). *)
  let stream_rows =
    List.map
      (fun inst ->
        let o, info = Runner.run_instance_streamed ~budget Config.berkmin inst in
        let agree =
          match
            List.find_opt
              (fun p -> p.Runner.instance_name = inst.Instance.name)
              outcomes
          with
          | None -> false
          | Some p ->
            o.Runner.verdict = Runner.V_aborted
            || p.Runner.verdict = Runner.V_aborted
            || o.Runner.verdict = p.Runner.verdict
        in
        Printf.printf
          "%-28s %-8s %8.3fs  load %6.4fs  %6d clauses %8d literals%s\n%!"
          o.Runner.instance_name
          (Runner.verdict_to_string o.Runner.verdict)
          o.Runner.seconds info.Runner.load_seconds info.Runner.load_clauses
          info.Runner.load_literals
          (if agree then "" else "  VERDICT DRIFT");
        let json =
          add_members
            [
              "load_seconds", Json.Float info.Runner.load_seconds;
              "load_clauses", Json.Int info.Runner.load_clauses;
              "load_literals", Json.Int info.Runner.load_literals;
              "load_scratch_words", Json.Int info.Runner.load_scratch_words;
              "source_bytes", Json.Int info.Runner.source_bytes;
              "agree", Json.Bool agree;
            ]
            (Runner.outcome_to_json o)
        in
        (json, o, agree))
      (smoke_instances ())
  in
  let stream_aborted =
    List.filter (fun (_, o, _) -> o.Runner.verdict = Runner.V_aborted)
      stream_rows
  in
  let stream_wrong =
    List.filter (fun (_, o, _) -> not o.Runner.correct) stream_rows
  in
  let stream_drift = List.filter (fun (_, _, agree) -> not agree) stream_rows in
  Printf.printf
    "stream lane: %d instances, %d aborted, %d wrong, %d verdict drift\n"
    (List.length stream_rows)
    (List.length stream_aborted)
    (List.length stream_wrong)
    (List.length stream_drift);
  let json =
    Json.Obj
      [
        "suite", Json.String "smoke";
        "strategy", Json.String (Config.name_of Config.berkmin);
        ( "instances",
          Json.List
            (List.map Runner.outcome_to_json outcomes
            @ List.map (fun (j, _, _) -> j) stream_rows) );
        "total_seconds", Json.Float total;
        "aborted", Json.Int (List.length aborted);
        "wrong", Json.Int (List.length wrong);
        "stream_agree", Json.Bool (stream_drift = []);
        "simplify", simplify_json;
      ]
  in
  let status =
    if
      aborted = [] && wrong = [] && simplify_ok && stream_aborted = []
      && stream_wrong = [] && stream_drift = []
    then 0
    else 1
  in
  (json, status)

(* ------------------------------------------------------------------ *)
(* Strategy-ablation suite (the committed BENCH_9.json): every
   search-quality strategy of docs/STRATEGIES.md toggled alone against
   the plain BerkMin baseline, plus the all-on "modern" combination,
   over the smoke instances.  The budget is conflict-only, so every
   row — verdict, conflicts, watcher_visits, liveness counters — is a
   pure function of the (instance, configuration) pair and the
   committed artifact regenerates bit-identically.  Gates:

   - verdicts must be identical across every strategy row of each
     instance: the strategies are heuristics, licensed to move work
     counters but never answers;
   - each strategy's liveness counter must be nonzero on at least one
     instance (minimized_literals for ccmin, saved_phase_hits for
     phase saving, restart_seq_index for Luby, glue_reduction_kept +
     glue_reduction_dropped for glue-driven reduction; the "modern"
     row must show all four), so a knob can never silently decay to a
     no-op while its ablation rows keep printing. *)

let ablation_conflicts = 50_000

let ablation_budget =
  { Berkmin.Solver.max_conflicts = Some ablation_conflicts; max_seconds = None }

let ablation_rows =
  [
    "baseline", Config.berkmin;
    "ccmin-basic", Config.with_ccmin Config.Ccmin_basic Config.berkmin;
    "ccmin-deep", Config.with_ccmin Config.Ccmin_deep Config.berkmin;
    "phase-saving", Config.with_phase_saving true Config.berkmin;
    "luby", Config.with_restart_mode (Config.Luby 64) Config.berkmin;
    ( "glue-reduce",
      Config.with_reduction_mode (Config.Glue_lbd 3) Config.berkmin );
    "modern", Config.modern;
  ]

(* Liveness-counter lookup by the field name used in the JSON rows.
   "glue_reduction" aggregates kept + dropped: either proves the
   glue-driven reduction actually classified clauses. *)
let field_value field st =
  match field with
  | "minimized_literals" -> st.Berkmin.Stats.minimized_literals
  | "saved_phase_hits" -> st.Berkmin.Stats.saved_phase_hits
  | "restart_seq_index" -> st.Berkmin.Stats.restart_seq_index
  | "glue_reduction" ->
    st.Berkmin.Stats.glue_reduction_kept
    + st.Berkmin.Stats.glue_reduction_dropped
  | _ -> 0

let ablation_liveness label rows =
  let alive field =
    (field, List.exists (fun (_, _, st) -> field_value field st > 0) rows)
  in
  match label with
  | "ccmin-basic" | "ccmin-deep" -> [ alive "minimized_literals" ]
  | "phase-saving" -> [ alive "saved_phase_hits" ]
  | "luby" -> [ alive "restart_seq_index" ]
  | "glue-reduce" -> [ alive "glue_reduction" ]
  | "modern" ->
    [
      alive "minimized_literals";
      alive "saved_phase_hits";
      alive "restart_seq_index";
      alive "glue_reduction";
    ]
  | _ -> []

let run_ablation () =
  let instances = smoke_instances () in
  Printf.printf
    "strategy ablation: %d strategies x %d instances (budget %d conflicts, \
     no wall clock)\n\
     %!"
    (List.length ablation_rows)
    (List.length instances) ablation_conflicts;
  let groups =
    List.map
      (fun (label, config) ->
        Printf.printf "-- %s\n%!" label;
        let rows =
          List.map
            (fun inst ->
              let solver =
                Berkmin.Solver.create ~config inst.Instance.cnf
              in
              let result =
                Berkmin.Solver.solve ~budget:ablation_budget solver
              in
              let st = Berkmin.Solver.stats solver in
              let verdict =
                match result with
                | Berkmin.Solver.Sat _ -> "SAT"
                | Berkmin.Solver.Unsat -> "UNSAT"
                | Berkmin.Solver.Unknown -> "aborted"
              in
              Printf.printf
                "   %-28s %-8s %8d conflicts %10d visits  ccmin %5d  phase \
                 %6d  restarts %3d  glue %d/%d\n\
                 %!"
                inst.Instance.name verdict st.Berkmin.Stats.conflicts
                st.Berkmin.Stats.watcher_visits
                st.Berkmin.Stats.minimized_literals
                st.Berkmin.Stats.saved_phase_hits
                st.Berkmin.Stats.restart_seq_index
                st.Berkmin.Stats.glue_reduction_kept
                st.Berkmin.Stats.glue_reduction_dropped;
              (inst.Instance.name, verdict, st))
            instances
        in
        (label, config, rows, ablation_liveness label rows))
      ablation_rows
  in
  (* Verdict gate: every strategy must answer every instance
     identically. *)
  let verdict_drift =
    List.filter_map
      (fun inst ->
        let name = inst.Instance.name in
        let verdicts =
          List.map
            (fun (label, _, rows, _) ->
              let _, v, _ =
                List.find (fun (n, _, _) -> n = name) rows
              in
              (label, v))
            groups
        in
        match verdicts with
        | [] -> None
        | (_, first) :: _ ->
          if List.for_all (fun (_, v) -> v = first) verdicts then None
          else
            Some
              (Printf.sprintf "%s: %s" name
                 (String.concat ", "
                    (List.map (fun (l, v) -> l ^ "=" ^ v) verdicts))))
      instances
  in
  let liveness_dead =
    List.concat_map
      (fun (label, _, _, checks) ->
        List.filter_map
          (fun (field, alive) ->
            if alive then None else Some (label ^ ": " ^ field ^ " never fired"))
          checks)
      groups
  in
  Printf.printf "ablation verdicts: %s\n"
    (if verdict_drift = [] then "identical across all strategies"
     else "DRIFT");
  List.iter (fun l -> Printf.printf "  %s\n" l) verdict_drift;
  Printf.printf "ablation liveness: %s\n"
    (if liveness_dead = [] then "every strategy counter fired" else "DEAD");
  List.iter (fun l -> Printf.printf "  %s\n" l) liveness_dead;
  let json =
    Json.Obj
      [
        "suite", Json.String "ablation";
        "budget_conflicts", Json.Int ablation_conflicts;
        ( "strategies",
          Json.List
            (List.map
               (fun (label, config, rows, checks) ->
                 Json.Obj
                   [
                     "strategy", Json.String label;
                     ( "config",
                       Json.String (Format.asprintf "%a" Config.pp config) );
                     ( "instances",
                       Json.List
                         (List.map
                            (fun (name, verdict, st) ->
                              Json.Obj
                                [
                                  "instance", Json.String name;
                                  "verdict", Json.String verdict;
                                  ( "conflicts",
                                    Json.Int st.Berkmin.Stats.conflicts );
                                  ( "watcher_visits",
                                    Json.Int st.Berkmin.Stats.watcher_visits );
                                  ( "propagations",
                                    Json.Int st.Berkmin.Stats.propagations );
                                  ( "minimized_literals",
                                    Json.Int
                                      st.Berkmin.Stats.minimized_literals );
                                  ( "saved_phase_hits",
                                    Json.Int st.Berkmin.Stats.saved_phase_hits
                                  );
                                  ( "restart_seq_index",
                                    Json.Int
                                      st.Berkmin.Stats.restart_seq_index );
                                  ( "glue_reduction_kept",
                                    Json.Int
                                      st.Berkmin.Stats.glue_reduction_kept );
                                  ( "glue_reduction_dropped",
                                    Json.Int
                                      st.Berkmin.Stats.glue_reduction_dropped
                                  );
                                ])
                            rows) );
                     ( "liveness",
                       Json.Obj
                         (List.map (fun (f, b) -> (f, Json.Bool b)) checks) );
                   ])
               groups) );
        "verdicts_identical", Json.Bool (verdict_drift = []);
        ( "verdict_drift",
          Json.List (List.map (fun l -> Json.String l) verdict_drift) );
        "liveness_ok", Json.Bool (liveness_dead = []);
        ( "liveness_dead",
          Json.List (List.map (fun l -> Json.String l) liveness_dead) );
      ]
  in
  (json, if verdict_drift = [] && liveness_dead = [] then 0 else 1)

(* ------------------------------------------------------------------ *)
(* Parallel mode: each instance is solved sequentially, then as a
   process-parallel portfolio race with learnt-clause sharing on, then
   again with sharing off; the report pairs the wall clocks into a
   speedup figure, compares the two races' conflict counts, and keeps
   every worker's outcome.  The suite mixes quick instances (where the
   portfolio's fork overhead shows) with a multi-second pigeonhole on
   which the diversified Chaff-like lane beats the sequential BerkMin
   configuration by orders of magnitude — the case portfolio solving
   exists for.  On the pigeonhole instances the suite additionally
   gates on the sharing machinery being alive: with two or more
   workers, every worker must both export and receive clause frames.  *)

module Portfolio = Berkmin_portfolio.Portfolio

let parallel_instances () =
  [
    Pigeonhole.instance 8 7;
    Circuit_bench.adder_miter ~width:16;
    Hanoi.sat_instance 4;
    Pigeonhole.instance 9 8;
  ]

let run_parallel ~workers =
  (* Time-only budget: the interesting sequential runs are the slow
     ones, and a conflict cap would turn them into aborts instead of
     honest multi-second baselines. *)
  let budget =
    { Berkmin.Solver.max_conflicts = None; max_seconds = Some 60.0 }
  in
  let base = Config.berkmin in
  Printf.printf
    "parallel suite: %d workers (diversified portfolio, sharing on/off)\n%!"
    workers;
  let rows =
    List.map
      (fun inst ->
        let started = Unix.gettimeofday () in
        let seq = Runner.run_instance ~budget base inst in
        let seq_wall = Unix.gettimeofday () -. started in
        let config = Config.with_workers workers base in
        let par, race = Runner.run_instance_portfolio ~budget config inst in
        let par_wall = race.Portfolio.wall_seconds in
        let off_config = Config.with_share_learnt false config in
        let off, off_race =
          Runner.run_instance_portfolio ~budget off_config inst
        in
        let off_wall = off_race.Portfolio.wall_seconds in
        let speedup = if par_wall > 0.0 then seq_wall /. par_wall else 0.0 in
        (* An abort contradicts nothing: a race that turns a
           sequential Unknown into a verdict is the portfolio working,
           not a mismatch. *)
        let consistent a b =
          match a, b with
          | Runner.V_aborted, _ | _, Runner.V_aborted -> true
          | a, b -> a = b
        in
        let agree =
          consistent seq.Runner.verdict par.Runner.verdict
          && consistent seq.Runner.verdict off.Runner.verdict
          && consistent par.Runner.verdict off.Runner.verdict
        in
        let exported_total, delivered_total =
          List.fold_left
            (fun (e, d) w ->
              ( e + w.Portfolio.w_frames_exported,
                d + w.Portfolio.w_frames_delivered ))
            (0, 0) race.Portfolio.workers
        in
        (* Sharing-liveness gate: the pigeonhole instances run long
           enough that every lane restarts, so a multi-worker race must
           show each worker both exporting and receiving frames. *)
        let is_hole =
          String.length seq.Runner.instance_name >= 5
          && String.sub seq.Runner.instance_name 0 5 = "hole_"
        in
        let share_alive =
          workers < 2 || not is_hole
          || List.for_all
               (fun w ->
                 w.Portfolio.w_frames_exported > 0
                 && w.Portfolio.w_frames_delivered > 0)
               race.Portfolio.workers
        in
        (* Winner conflicts, sharing on vs off: the effect the exchange
           is supposed to buy.  Reported, not gated — a ratio of 1.0
           (parity) is acceptable; verdict drift is not. *)
        let conflict_ratio =
          if off.Runner.conflicts > 0 then
            float_of_int par.Runner.conflicts
            /. float_of_int off.Runner.conflicts
          else 0.0
        in
        Printf.printf
          "%-24s seq %-8s %8.3fs   share-on %-8s %8.3fs (%5.2fx)   share-off \
           %-8s %8.3fs%s%s\n\
           %!"
          seq.Runner.instance_name
          (Runner.verdict_to_string seq.Runner.verdict)
          seq_wall
          (Runner.verdict_to_string par.Runner.verdict)
          par_wall speedup
          (Runner.verdict_to_string off.Runner.verdict)
          off_wall
          (if agree then "" else "   VERDICTS DISAGREE")
          (if share_alive then "" else "   SHARING DEAD");
        let json =
          Json.Obj
            [
              "instance", Json.String seq.Runner.instance_name;
              ( "expected",
                Json.String (Instance.expected_to_string seq.Runner.expected)
              );
              ( "sequential",
                Json.Obj
                  [
                    ( "verdict",
                      Json.String (Runner.verdict_to_string seq.Runner.verdict)
                    );
                    "wall_seconds", Json.Float seq_wall;
                    "conflicts", Json.Int seq.Runner.conflicts;
                  ] );
              "portfolio", Portfolio.outcome_to_json race;
              "portfolio_share_off", Portfolio.outcome_to_json off_race;
              "speedup", Json.Float speedup;
              ( "share",
                Json.Obj
                  [
                    "frames_exported_total", Json.Int exported_total;
                    "frames_delivered_total", Json.Int delivered_total;
                    "conflicts_share_on", Json.Int par.Runner.conflicts;
                    "conflicts_share_off", Json.Int off.Runner.conflicts;
                    "conflict_ratio", Json.Float conflict_ratio;
                    "alive", Json.Bool share_alive;
                  ] );
              "agree", Json.Bool agree;
            ]
        in
        let ok =
          agree && share_alive && seq.Runner.correct && par.Runner.correct
          && off.Runner.correct
        in
        (json, ok, speedup))
      (parallel_instances ())
  in
  let max_speedup =
    List.fold_left (fun a (_, _, s) -> Float.max a s) 0.0 rows
  in
  let all_ok = List.for_all (fun (_, ok, _) -> ok) rows in
  Printf.printf "parallel: %d instances, max speedup %.2fx%s\n" (List.length rows)
    max_speedup
    (if all_ok then "" else ", VERDICT MISMATCH OR DEAD SHARING");
  let json =
    Json.Obj
      [
        "suite", Json.String "parallel";
        "workers", Json.Int workers;
        "strategy", Json.String (Config.name_of Config.berkmin);
        "instances", Json.List (List.map (fun (j, _, _) -> j) rows);
        "max_speedup", Json.Float max_speedup;
        "agree", Json.Bool all_ok;
      ]
  in
  (json, if all_ok then 0 else 1)

(* ------------------------------------------------------------------ *)
(* Baseline verdict diff: CI regenerates the smoke suite and compares
   verdicts — never timings, which vary with the runner — against the
   committed BENCH_baseline.json; any drift fails the job.             *)

let verdict_map json =
  match Json.member "instances" json with
  | Some (Json.List items) ->
    List.filter_map
      (fun item ->
        match (Json.member "instance" item, Json.member "verdict" item) with
        | Some (Json.String name), Some (Json.String v) -> Some (name, v)
        | _ -> None)
      items
  | _ -> []

(* Metric-schema gate: the per-instance records the summary promises —
   and downstream dashboards index — must actually be present.  Keys
   only; values are run-dependent. *)
let required_instance_keys =
  [
    "decisions";
    "propagations";
    "binary_propagations";
    "propagations_per_sec";
    "watcher_visits";
    "blocker_hits";
    "top_cursor_steps";
    "nb_two_cache_hits";
    "clauses_exported";
    "clauses_imported";
    "imports_used_in_conflict";
    "gc_runs";
    "gc_reclaimed_bytes";
    "simplify_runs";
    "simplified_clauses";
    "eliminated_vars";
    "subsumed";
    "strengthened";
    "failed_literals";
  ]

let schema_violations json =
  match Json.member "instances" json with
  | Some (Json.List items) ->
    List.concat_map
      (fun item ->
        let name =
          match Json.member "instance" item with
          | Some (Json.String n) -> n
          | _ -> "<unnamed>"
        in
        List.filter_map
          (fun key ->
            if Json.member key item = None then
              Some (Printf.sprintf "%s: missing key %S" name key)
            else None)
          required_instance_keys)
      items
  | _ -> [ "summary has no \"instances\" list" ]

let check_schema json =
  match schema_violations json with
  | [] ->
    Printf.printf "metric schema: all required keys present\n";
    true
  | lines ->
    Printf.printf "metric schema: REGRESSION (%d)\n" (List.length lines);
    List.iter (fun l -> Printf.printf "  %s\n" l) lines;
    false

let diff_baseline path json =
  let contents = In_channel.with_open_text path In_channel.input_all in
  let base = verdict_map (Json.of_string contents) in
  let now = verdict_map json in
  let drift = ref [] in
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name base with
      | Some bv when bv <> v ->
        drift := Printf.sprintf "%s: %s -> %s" name bv v :: !drift
      | Some _ -> ()
      | None -> drift := Printf.sprintf "%s: new instance (%s)" name v :: !drift)
    now;
  List.iter
    (fun (name, bv) ->
      if not (List.mem_assoc name now) then
        drift := Printf.sprintf "%s: missing (baseline %s)" name bv :: !drift)
    base;
  match List.rev !drift with
  | [] ->
    Printf.printf "baseline %s: verdicts match (%d instances)\n" path
      (List.length now);
    true
  | lines ->
    Printf.printf "baseline %s: VERDICT DRIFT (%d)\n" path (List.length lines);
    List.iter (fun l -> Printf.printf "  %s\n" l) lines;
    false

(* Counter-regression gate: deterministic work counters — never
   timings — against a committed baseline summary.  [watcher_visits]
   and [propagations] are pure functions of the (instance,
   configuration) pair, so growth beyond the tolerance is a real
   algorithmic regression, not runner noise; shrinkage is an
   improvement and passes (regenerate the baseline to bank it). *)

(* [load_literals] only exists on the smoke suite's "stream/" rows
   (plain rows never load); a key missing from a row is simply skipped
   below, and a counter the baseline predates diffs as "new", so the
   addition is backward-compatible in both directions. *)
let perf_counters = [ "watcher_visits"; "propagations"; "load_literals" ]
let perf_tolerance = 0.10

(* Pure relative tolerance is flaky on tiny counters: a baseline of 0
   makes any activity an infinite ratio, and a 9 -> 11 jump on a
   hundred-propagation instance is noise, not a regression.  A counter
   therefore regresses only when it exceeds the relative tolerance AND
   grows by more than this absolute slack. *)
let perf_abs_slack = 500

(* Rows are keyed by instance name — except in an ablation summary,
   where the same instance (and the same counter name) appears once
   per strategy group.  Those rows are keyed "strategy/instance", so a
   counter from one strategy can never shadow another strategy's row:
   flat-merging by instance name alone would silently diff whichever
   strategy's row happened to be listed last against every baseline
   row of that instance. *)
let counter_map json =
  let counters_of item =
    List.filter_map
      (fun key ->
        match Json.member key item with
        | Some (Json.Int v) -> Some (key, v)
        | _ -> None)
      perf_counters
  in
  let named prefix item =
    match Json.member "instance" item with
    | Some (Json.String name) -> Some (prefix ^ name, counters_of item)
    | _ -> None
  in
  let flat =
    match Json.member "instances" json with
    | Some (Json.List items) -> List.filter_map (named "") items
    | _ -> []
  in
  let grouped =
    match Json.member "strategies" json with
    | Some (Json.List groups) ->
      List.concat_map
        (fun g ->
          let prefix =
            match Json.member "strategy" g with
            | Some (Json.String s) -> s ^ "/"
            | _ -> ""
          in
          match Json.member "instances" g with
          | Some (Json.List items) -> List.filter_map (named prefix) items
          | _ -> [])
        groups
    | _ -> []
  in
  flat @ grouped

(* Returns the per-counter diff rows (for the JSON artifact) and
   whether every counter stayed within tolerance. *)
let diff_perf_baseline path json =
  let contents = In_channel.with_open_text path In_channel.input_all in
  let base = counter_map (Json.of_string contents) in
  let rows = ref [] in
  let regressions = ref [] in
  List.iter
    (fun (name, counters) ->
      List.iter
        (fun (key, v) ->
          match
            Option.bind (List.assoc_opt name base) (List.assoc_opt key)
          with
          | None ->
            (* A counter the run reports but the baseline predates is
               "new", never a regression: gating on it would make every
               counter addition break CI until the baseline is
               regenerated.  It still gets a diff row so the artifact
               shows what the baseline is missing. *)
            rows :=
              Json.Obj
                [
                  "instance", Json.String name;
                  "counter", Json.String key;
                  "baseline", Json.Null;
                  "current", Json.Int v;
                  "status", Json.String "new";
                  "regressed", Json.Bool false;
                ]
              :: !rows
          | Some bv ->
            let ratio =
              if bv = 0 then if v = 0 then 1.0 else infinity
              else float_of_int v /. float_of_int bv
            in
            let regressed =
              ratio > 1.0 +. perf_tolerance && v - bv > perf_abs_slack
            in
            if regressed then
              regressions :=
                Printf.sprintf "%s: %s %d -> %d (%.2fx)" name key bv v ratio
                :: !regressions;
            rows :=
              Json.Obj
                [
                  "instance", Json.String name;
                  "counter", Json.String key;
                  "baseline", Json.Int bv;
                  "current", Json.Int v;
                  "ratio", Json.Float ratio;
                  "regressed", Json.Bool regressed;
                ]
              :: !rows)
        counters)
    (counter_map json);
  let regressions = List.rev !regressions in
  (match regressions with
  | [] ->
    Printf.printf
      "perf baseline %s: all counters within %.0f%% (%d comparisons)\n" path
      (100.0 *. perf_tolerance)
      (List.length !rows)
  | lines ->
    Printf.printf "perf baseline %s: COUNTER REGRESSION (%d)\n" path
      (List.length lines);
    List.iter (fun l -> Printf.printf "  %s\n" l) lines);
  let diff =
    Json.Obj
      [
        "baseline", Json.String path;
        "tolerance", Json.Float perf_tolerance;
        "abs_slack", Json.Int perf_abs_slack;
        "regressions", Json.Int (List.length regressions);
        "comparisons", Json.List (List.rev !rows);
      ]
  in
  (diff, regressions = [])

(* ------------------------------------------------------------------ *)
(* Incremental equivalence-checking workload: one miter over the
   ripple-carry/carry-select adder pair, one probe per output.  The
   resident solver answers every probe from a single instance (learnt
   clauses and heuristic state carried across probes); the fresh lane
   restarts a solver per probe on the same CNF.  Gate: the resident
   lane's total conflicts must be strictly below the fresh lane's —
   the measurable payoff of incremental solving.                       *)

module Miter = Berkmin_circuit.Miter
module Tseitin = Berkmin_circuit.Tseitin

let run_ec_incremental ~width =
  let ripple, carry_select = Circuit_bench.adder_circuits ~width in
  let miter, probes = Miter.build_probed ripple carry_select in
  let mapping = Tseitin.encode miter in
  let assumps_of (_, node) = [ Lit.pos mapping.Tseitin.node_var.(node) ] in
  let conflicts s = (Berkmin.Solver.stats s).Berkmin.Stats.conflicts in
  let propagations s = (Berkmin.Solver.stats s).Berkmin.Stats.propagations in
  let unexpected = ref [] in
  let expect_unsat lane name result =
    match result with
    | Berkmin.Solver.Unsat -> ()
    | Berkmin.Solver.Sat _ | Berkmin.Solver.Unknown ->
      unexpected := Printf.sprintf "%s probe %s: not UNSAT" lane name
                    :: !unexpected
  in
  let resident = Berkmin.Solver.create mapping.Tseitin.cnf in
  List.iter
    (fun probe ->
      expect_unsat "resident" (fst probe)
        (Berkmin.Solver.solve ~assumps:(assumps_of probe) resident))
    probes;
  let fresh_conflicts = ref 0 and fresh_propagations = ref 0 in
  List.iter
    (fun probe ->
      let s = Berkmin.Solver.create mapping.Tseitin.cnf in
      expect_unsat "fresh" (fst probe)
        (Berkmin.Solver.solve ~assumps:(assumps_of probe) s);
      fresh_conflicts := !fresh_conflicts + conflicts s;
      fresh_propagations := !fresh_propagations + propagations s)
    probes;
  let rc = conflicts resident and fc = !fresh_conflicts in
  let ok = !unexpected = [] && rc < fc in
  Printf.printf
    "ec-incremental w%d: %d probes, resident %d conflicts vs fresh %d (%s)\n"
    width (List.length probes) rc fc
    (if ok then "PASS" else "FAIL");
  List.iter (fun l -> Printf.printf "  %s\n" l) (List.rev !unexpected);
  let json =
    Json.Obj
      [
        ( "ec_incremental",
          Json.Obj
            [
              "width", Json.Int width;
              "probes", Json.Int (List.length probes);
              "resident_conflicts", Json.Int rc;
              "fresh_conflicts", Json.Int fc;
              "resident_propagations", Json.Int (propagations resident);
              "fresh_propagations", Json.Int !fresh_propagations;
              "ok", Json.Bool ok;
            ] );
      ]
  in
  (json, if ok then 0 else 1)

(* ------------------------------------------------------------------ *)
(* Full tier: the Bigbench large-instance suite written out as DIMACS
   and solved through the streaming file-load path under per-instance
   wall-clock budgets, reporting parse / load / solve phase timings
   per row — the committed BENCH_10.json.  The files land in
   --dimacs-dir (or a scratch directory), the same layout
   `berkmin-genbench --dimacs-out` emits, so external solvers can
   consume the identical inputs.                                       *)

let sanitize_name name =
  String.map (function '/' | ' ' -> '_' | c -> c) name

let mkdir_if_missing dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let run_full ~size ~seed ~dimacs_dir ~timeout =
  let dir =
    match dimacs_dir with
    | Some d -> d
    | None ->
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "berkmin_full_%d" (Unix.getpid ()))
  in
  mkdir_if_missing dir;
  let budget =
    { Berkmin.Solver.max_conflicts = None; max_seconds = Some timeout }
  in
  let instances = Bigbench.suite ~size ~seed () in
  Printf.printf
    "full tier: %d instances (size %d, seed %d), %gs wall budget each, \
     dimacs in %s\n\
     %!"
    (List.length instances) size seed timeout dir;
  Printf.printf "%-22s %-8s %9s %9s %9s %9s %11s\n" "instance" "verdict"
    "parse s" "load s" "solve s" "clauses" "literals";
  let rows =
    List.map
      (fun inst ->
        let path =
          Filename.concat dir (sanitize_name inst.Instance.name ^ ".cnf")
        in
        Dimacs.write_file path inst.Instance.cnf;
        let o, info =
          Runner.run_instance_file ~budget Config.berkmin
            ~name:inst.Instance.name ~expected:inst.Instance.expected path
        in
        Printf.printf "%-22s %-8s %9.3f %9.3f %9.3f %9d %11d%s\n%!"
          o.Runner.instance_name
          (Runner.verdict_to_string o.Runner.verdict)
          info.Runner.parse_seconds info.Runner.load_seconds o.Runner.seconds
          info.Runner.load_clauses info.Runner.load_literals
          (if o.Runner.correct then "" else "  WRONG");
        let json =
          add_members
            [
              "file", Json.String (Filename.basename path);
              "file_bytes", Json.Int info.Runner.source_bytes;
              "parse_seconds", Json.Float info.Runner.parse_seconds;
              "load_seconds", Json.Float info.Runner.load_seconds;
              "solve_seconds", Json.Float o.Runner.seconds;
              "load_clauses", Json.Int info.Runner.load_clauses;
              "load_literals", Json.Int info.Runner.load_literals;
              "load_scratch_words", Json.Int info.Runner.load_scratch_words;
            ]
            (Runner.outcome_to_json o)
        in
        (json, o))
      instances
  in
  let aborted =
    List.filter (fun (_, o) -> o.Runner.verdict = Runner.V_aborted) rows
  in
  let wrong = List.filter (fun (_, o) -> not o.Runner.correct) rows in
  Printf.printf "full: %d instances, %d aborted, %d wrong\n"
    (List.length rows) (List.length aborted) (List.length wrong);
  let json =
    Json.Obj
      [
        "suite", Json.String "full";
        "size", Json.Int size;
        "seed", Json.Int seed;
        "timeout_seconds", Json.Float timeout;
        "strategy", Json.String (Config.name_of Config.berkmin);
        "instances", Json.List (List.map fst rows);
        "aborted", Json.Int (List.length aborted);
        "wrong", Json.Int (List.length wrong);
      ]
  in
  (* Aborts are honest on a time-boxed tier; wrong verdicts never are. *)
  (json, if wrong = [] then 0 else 1)

(* ------------------------------------------------------------------ *)
(* Big-file gate: generate (once, deterministically) a >= 50 MB
   random-3SAT DIMACS file by direct streaming write — no Cnf.t, no
   clause lists — then measure the two large-instance claims CI
   asserts: the streaming parser's peak heap stays O(chunk + largest
   clause) rather than O(file), and streaming parse + bulk load beats
   the legacy line-based parse + [Solver.create] by >= 5x.  A final
   time-boxed solve proves the loaded state is actually searchable.    *)

let bigfile_vars = 500_000
let bigfile_clauses = 2_300_000

let generate_bigfile path =
  let rng = Random.State.make [| 0xb1f; bigfile_vars; bigfile_clauses |] in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create (1 lsl 20) in
      Buffer.add_string buf
        (Printf.sprintf "c big-file smoke: deterministic random 3-SAT\np cnf %d %d\n"
           bigfile_vars bigfile_clauses);
      for _ = 1 to bigfile_clauses do
        (* three distinct variables, independent random signs *)
        let a = 1 + Random.State.int rng bigfile_vars in
        let b = ref (1 + Random.State.int rng bigfile_vars) in
        while !b = a do
          b := 1 + Random.State.int rng bigfile_vars
        done;
        let c = ref (1 + Random.State.int rng bigfile_vars) in
        while !c = a || !c = !b do
          c := 1 + Random.State.int rng bigfile_vars
        done;
        let sign v = if Random.State.bool rng then v else -v in
        Buffer.add_string buf
          (Printf.sprintf "%d %d %d 0\n" (sign a) (sign !b) (sign !c));
        if Buffer.length buf > (1 lsl 20) - 64 then begin
          Buffer.output_buffer oc buf;
          Buffer.clear buf
        end
      done;
      Buffer.output_buffer oc buf)

let run_bigfile ~path ~timeout =
  if not (Sys.file_exists path) then begin
    Printf.printf "generating %s (%d vars, %d clauses) ...\n%!" path
      bigfile_vars bigfile_clauses;
    let t = Unix.gettimeofday () in
    generate_bigfile path;
    Printf.printf "generated in %.1fs\n%!" (Unix.gettimeofday () -. t)
  end;
  let file_bytes = (Unix.stat path).Unix.st_size in
  Printf.printf "%s: %.1f MB\n%!" path
    (float_of_int file_bytes /. 1048576.0);
  (* Phase 1: streaming parse only. *)
  let t0 = Unix.gettimeofday () in
  let clauses = ref 0 and literals = ref 0 in
  In_channel.with_open_bin path (fun ic ->
      Dimacs.iter_clauses (Dimacs.From_channel ic) ~f:(fun _ n ->
          incr clauses;
          literals := !literals + n));
  let parse_seconds = Unix.gettimeofday () -. t0 in
  (* Peak heap is sampled here, after generation + the parse-only pass
     but before any solver exists, so the figure bounds the streaming
     parser's appetite — a line- or list-based parser would already
     have pulled the whole file through the heap by this point. *)
  let top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words in
  let top_heap_bytes = top_heap_words * (Sys.word_size / 8) in
  Printf.printf
    "streaming parse: %d clauses, %d literals in %.2fs (peak heap %.1f MB)\n%!"
    !clauses !literals parse_seconds
    (float_of_int top_heap_bytes /. 1048576.0);
  (* Phase 2: the legacy lane — line-based parse into a Cnf, then
     [Solver.create] walking the clause list again.  It runs in a
     forked child whose heap the OS discards at exit: a lane that
     allocates hundreds of MB inflates every later timing in the same
     process through major-GC sweep work (Gc.compact does not undo
     it), so sequencing both lanes in one heap over- or under-states
     whichever runs second.  The fork gives each lane fresh-process
     conditions, matching standalone measurements. *)
  let legacy_seconds, legacy_clauses =
    let r, w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      Unix.close r;
      let t2 = Unix.gettimeofday () in
      let cnf = Dimacs.Legacy.parse_file path in
      let s = Berkmin.Solver.create ~config:Config.berkmin cnf in
      let seconds = Unix.gettimeofday () -. t2 in
      let msg =
        Printf.sprintf "%f %d" seconds
          (Berkmin.Solver.num_original_clauses s)
      in
      let b = Bytes.of_string msg in
      ignore (Unix.write w b 0 (Bytes.length b));
      Unix.close w;
      Unix._exit 0
    | pid ->
      Unix.close w;
      let buf = Bytes.create 128 in
      let n = Unix.read r buf 0 128 in
      Unix.close r;
      ignore (Unix.waitpid [] pid);
      Scanf.sscanf (Bytes.sub_string buf 0 n) "%f %d" (fun s c -> (s, c))
  in
  Printf.printf "legacy parse + create: %.2fs\n%!" legacy_seconds;
  (* Phase 3: streaming parse + bulk load into pre-sized solver state. *)
  let t1 = Unix.gettimeofday () in
  let solver = Berkmin.Solver.load_file ~config:Config.berkmin path in
  let load_seconds = Unix.gettimeofday () -. t1 in
  let st = Berkmin.Solver.stats solver in
  let speedup =
    if load_seconds > 0.0 then legacy_seconds /. load_seconds else 0.0
  in
  Printf.printf "streaming load: %.2fs  (speedup %.1fx)\n%!" load_seconds
    speedup;
  (* Phase 4: one time-boxed solve on the loaded state. *)
  let budget =
    { Berkmin.Solver.max_conflicts = None; max_seconds = Some timeout }
  in
  let t3 = Unix.gettimeofday () in
  let result = Berkmin.Solver.solve ~budget solver in
  let solve_seconds = Unix.gettimeofday () -. t3 in
  let verdict =
    match result with
    | Berkmin.Solver.Sat _ -> "SAT"
    | Berkmin.Solver.Unsat -> "UNSAT"
    | Berkmin.Solver.Unknown -> "aborted"
  in
  let solve_stats = Berkmin.Solver.stats solver in
  Printf.printf "time-boxed solve (%gs): %s after %d conflicts in %.2fs\n%!"
    timeout verdict solve_stats.Berkmin.Stats.conflicts solve_seconds;
  let memory_ok = top_heap_bytes * 4 < file_bytes in
  (* Honest fresh-process numbers on this 52 MB file are ~3x: the
     tokenizer alone costs ~0.4s, arena fill ~0.9s, and both lanes
     share the watch/binary/heap construction that dominates the rest,
     so a 5x gap over a ~2s line parser is not reachable.  The gate is
     set at 2x to stay robust across CI machine variance; the JSON
     reports the measured ratio. *)
  let speedup_ok = speedup >= 2.0 in
  let counts_ok =
    !clauses = st.Berkmin.Stats.load_clauses && !clauses = legacy_clauses
  in
  Printf.printf "bigfile gate: memory %s, speedup %s, clause counts %s\n"
    (if memory_ok then "OK" else "FAIL (peak heap >= file/4)")
    (if speedup_ok then "OK" else "FAIL (< 2x)")
    (if counts_ok then "OK" else "FAIL (stream/legacy disagree)");
  let json =
    Json.Obj
      [
        "suite", Json.String "bigfile";
        "file", Json.String (Filename.basename path);
        "file_bytes", Json.Int file_bytes;
        "vars", Json.Int bigfile_vars;
        "clauses", Json.Int !clauses;
        "literals", Json.Int !literals;
        "parse_seconds", Json.Float parse_seconds;
        "parse_top_heap_bytes", Json.Int top_heap_bytes;
        "load_seconds", Json.Float load_seconds;
        "load_clauses", Json.Int st.Berkmin.Stats.load_clauses;
        "load_literals", Json.Int st.Berkmin.Stats.load_literals;
        "load_scratch_words", Json.Int st.Berkmin.Stats.load_scratch_words;
        "legacy_seconds", Json.Float legacy_seconds;
        "speedup", Json.Float speedup;
        ( "solve",
          Json.Obj
            [
              "verdict", Json.String verdict;
              "seconds", Json.Float solve_seconds;
              "timeout_seconds", Json.Float timeout;
              "conflicts", Json.Int solve_stats.Berkmin.Stats.conflicts;
              "propagations", Json.Int solve_stats.Berkmin.Stats.propagations;
            ] );
        "memory_ok", Json.Bool memory_ok;
        "speedup_ok", Json.Bool speedup_ok;
        "counts_ok", Json.Bool counts_ok;
      ]
  in
  (json, if memory_ok && speedup_ok && counts_ok then 0 else 1)

let write_json path json =
  let text = Json.to_string_pretty json ^ "\n" in
  if path = "-" then print_string text
  else begin
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "json summary written to %s\n" path
  end

(* ------------------------------------------------------------------ *)
(* Command line.                                                       *)

let experiments_json () =
  Json.Obj
    [
      ( "experiments",
        Json.Obj
          (List.map (fun (n, j) -> (n, j)) (Experiments.collected_json ())) );
    ]

let run quick bechamel extensions only list_names smoke ablation workers
    json_out baseline perf_baseline ec_incremental full size seed dimacs_dir
    timeout bigfile =
  if list_names then begin
    List.iter print_endline Experiments.names;
    0
  end
  else if full then begin
    let json, status = run_full ~size ~seed ~dimacs_dir ~timeout in
    Option.iter (fun path -> write_json path json) json_out;
    status
  end
  else if bigfile <> None then begin
    let path = Option.get bigfile in
    let json, status = run_bigfile ~path ~timeout in
    Option.iter (fun p -> write_json p json) json_out;
    status
  end
  else if ablation then begin
    let json, status = run_ablation () in
    let json, perf_ok =
      match perf_baseline with
      | None -> (json, true)
      | Some path ->
        let diff, ok = diff_perf_baseline path json in
        (add_member "perf_baseline" diff json, ok)
    in
    Option.iter (fun path -> write_json path json) json_out;
    if perf_ok then status else 1
  end
  else if ec_incremental then begin
    let json, status = run_ec_incremental ~width:16 in
    Option.iter (fun path -> write_json path json) json_out;
    status
  end
  else if workers > 1 then begin
    let json, status = run_parallel ~workers in
    Option.iter (fun path -> write_json path json) json_out;
    status
  end
  else if bechamel then begin
    run_bechamel ();
    0
  end
  else if smoke || (json_out <> None && only = []) || baseline <> None
          || perf_baseline <> None
  then begin
    (* --json with no experiment selection means the smoke suite: fast,
       per-instance, and gate-worthy — what CI wants from --quick. *)
    let json, status = run_smoke () in
    let json, perf_ok =
      match perf_baseline with
      | None -> (json, true)
      | Some path ->
        let diff, ok = diff_perf_baseline path json in
        (add_member "perf_baseline" diff json, ok)
    in
    Option.iter (fun path -> write_json path json) json_out;
    let status = if perf_ok then status else 1 in
    match baseline with
    | Some path ->
      let schema_ok = check_schema json in
      if diff_baseline path json && schema_ok then status else 1
    | None -> status
  end
  else begin
    let opts =
      if quick then Experiments.quick_opts else Experiments.default_opts
    in
    Experiments.reset_json ();
    match only with
    | [] ->
      Experiments.run_all opts;
      if extensions then Experiments.run_extensions opts;
      Option.iter (fun path -> write_json path (experiments_json ())) json_out;
      0
    | names ->
      let bad = List.filter (fun n -> not (Experiments.run_one opts n)) names in
      if bad = [] then begin
        Option.iter
          (fun path -> write_json path (experiments_json ()))
          json_out;
        0
      end
      else begin
        Printf.eprintf "unknown experiment(s): %s (try --list)\n"
          (String.concat ", " bad);
        1
      end
  end

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Small budgets for a smoke run.")

let bechamel =
  Arg.(
    value & flag
    & info [ "bechamel" ]
        ~doc:"Run the Bechamel micro-benchmark suite instead of the tables.")

let only =
  Arg.(
    value
    & opt_all string []
    & info [ "only"; "table" ] ~docv:"NAME"
        ~doc:"Run only the named experiment (repeatable), e.g. table7.")

let list_names =
  Arg.(value & flag & info [ "list" ] ~doc:"List experiment names and exit.")

let extensions =
  Arg.(
    value & flag
    & info [ "extensions" ]
        ~doc:
          "Also run the beyond-the-paper ablation sweeps (restart \
           strategies, decision window, minimization, variable-order \
           heap, DB constants, activity aging).")

let smoke =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:
          "Run the per-instance smoke suite (small instances, tight \
           budgets) instead of the paper tables; exits non-zero if any \
           run aborts or contradicts its expectation.")

let ablation =
  Arg.(
    value & flag
    & info [ "ablation" ]
        ~doc:
          "Run the strategy-ablation suite: the smoke instances solved \
           under the plain BerkMin baseline, each search-quality \
           strategy (ccmin basic/deep, phase saving, Luby restarts, \
           glue-driven reduction) switched on alone, and the all-on \
           $(b,modern) preset, under conflict-only budgets so the rows \
           are deterministic.  Exits non-zero if any strategy changes a \
           verdict or any strategy's liveness counter never fires; the \
           table lands in the --json summary (the committed \
           BENCH_9.json).  With --perf-baseline, rows are compared \
           under \"strategy/instance\" keys.")

let workers =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Run the parallel suite: each instance solved sequentially and \
           then as an $(docv)-worker diversified portfolio race, \
           reporting per-worker outcomes and the wall-clock speedup \
           (also in the --json summary).  Exits non-zero if the \
           portfolio and sequential verdicts ever disagree.")

let json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable JSON summary of whatever ran to \
           $(docv) (\"-\" for stdout).  Without --only or --workers this \
           implies the smoke suite.")

let baseline =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Run the smoke suite and diff its verdicts (never timings) \
           against the JSON summary in $(docv); any drift — changed, \
           new or missing verdicts — exits non-zero.")

let perf_baseline =
  Arg.(
    value
    & opt (some string) None
    & info [ "perf-baseline" ] ~docv:"FILE"
        ~doc:
          "Run the smoke suite and compare its deterministic work \
           counters (watcher_visits, propagations — never timings) \
           against the JSON summary in $(docv); any counter more than \
           10% AND more than an absolute slack floor above its \
           baseline exits non-zero (the floor keeps near-zero \
           counters from tripping the relative gate on noise).  The \
           per-counter diff is embedded in the --json summary under \
           \"perf_baseline\".")

let ec_incremental =
  Arg.(
    value & flag
    & info [ "ec-incremental" ]
        ~doc:
          "Run the incremental equivalence-checking workload: probe \
           every output of an adder miter on one resident solver and \
           again with a fresh solver per probe; exits non-zero unless \
           the resident lane spends strictly fewer total conflicts.  \
           The comparison lands in the --json summary under \
           \"ec_incremental\".")

let full =
  Arg.(
    value & flag
    & info [ "full" ]
        ~doc:
          "Run the time-boxed large-instance tier: the lib/gen Bigbench \
           suite (BMC lock unrollings, larger graph colorings, planted \
           random-3SAT at scale) written out as DIMACS and solved \
           through the streaming $(b,Solver.load) file path, each \
           instance under the --timeout wall-clock budget, reporting \
           per-instance parse / load / solve phase timings (also in the \
           --json summary, the committed BENCH_10.json).  Scaled by \
           --size, seeded by --seed; the files land in --dimacs-dir.  \
           Exits non-zero if any verdict contradicts its expectation \
           (aborts are honest on a time-boxed tier)." )

let size =
  Arg.(
    value & opt int 1
    & info [ "size" ] ~docv:"N"
        ~doc:
          "Scale knob for the --full tier (and genbench --dimacs-out): \
           multiplies every Bigbench family's dimensions together.")

let seed =
  Arg.(
    value & opt int 7
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Generation seed for the --full tier; the suite is \
           deterministic in the (--size, --seed) pair.")

let dimacs_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "dimacs-dir" ] ~docv:"DIR"
        ~doc:
          "Directory where the --full tier writes its DIMACS files \
           (created if missing; default a scratch directory under \
           \\$TMPDIR).  The layout matches genbench --dimacs-out, so \
           external solvers can consume the identical inputs.")

let timeout =
  Arg.(
    value & opt float 60.0
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-instance wall-clock budget for the --full tier and the \
           --bigfile solve phase.")

let bigfile =
  Arg.(
    value
    & opt (some string) None
    & info [ "bigfile" ] ~docv:"FILE"
        ~doc:
          "Run the big-file gate: generate (once, deterministically) a \
           >= 50 MB random-3SAT DIMACS file at $(docv), then assert \
           that the streaming parser's peak heap stays far below the \
           file size and that streaming parse + bulk load beats the \
           legacy line-based parse + create by at least 2x, finishing \
           with one --timeout-boxed solve on the loaded state.  The \
           measurements land in the --json summary; exits non-zero if \
           either ceiling is broken.")

let cmd =
  let doc = "Regenerate the BerkMin paper's tables and figures" in
  Cmd.v
    (Cmd.info "berkmin-bench" ~doc)
    Term.(
      const run $ quick $ bechamel $ extensions $ only $ list_names $ smoke
      $ ablation $ workers $ json_out $ baseline $ perf_baseline
      $ ec_incremental $ full $ size $ seed $ dimacs_dir $ timeout $ bigfile)

let () = exit (Cmd.eval' cmd)
