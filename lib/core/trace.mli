(** Structured trace-event stream for the CDCL search.

    Every interesting transition of the search loop — decision,
    BCP-implied literal, conflict, learnt clause, backjump, restart,
    database reduction, plus a periodic heartbeat — is a typed event.
    Events flow to a pluggable sink: [Null] (the default; the solver's
    emission sites guard on {!active}, so a disabled trace costs one
    mutable-bool load per site), a [Callback] for programmatic
    consumers (tests, live dashboards), or a [Jsonl] channel writing
    one JSON object per line.

    Literals appear in events in signed DIMACS convention (via
    {!Berkmin_types.Lit.to_dimacs}), matching the solver's external
    I/O. *)

open Berkmin_types

type decision_kind =
  | D_top_clause  (** decision from the current top clause *)
  | D_global  (** global fallback / VSIDS decision *)
  | D_assumption  (** assumption literal tried as a decision *)

type share_direction =
  | S_export  (** this worker sent a learnt clause to the parent *)
  | S_import  (** this worker adopted a clause learnt elsewhere *)

type event =
  | Decide of { level : int; var : int; value : bool; kind : decision_kind }
  | Propagate of { level : int; lit : Lit.t }
      (** a literal implied by BCP (not emitted for decisions) *)
  | Conflict of { level : int; conflict_no : int }
  | Learn of { size : int; asserting : Lit.t; backjump_level : int }
  | Backjump of { from_level : int; to_level : int }
  | Restart of { restart_no : int; conflict_no : int; seq_index : int }
      (** [seq_index] is the position in the restart sequence after
          this restart (for Luby, the index whose term now sets the
          interval; for fixed cadence, simply the restart count) *)
  | Reduce_db of {
      live_before : int;
      removed : int;
      threshold : int;
      glue_kept : int;
      glue_dropped : int;
    }
      (** [glue_kept]/[glue_dropped] count the clauses a [Glue_lbd]
          reduction kept unconditionally (glue at or below the limit)
          vs dropped; both 0 under the other reduction modes *)
  | Simplify of {
      rounds : int;
      subsumed : int;
      strengthened : int;
      eliminated_vars : int;
      failed_literals : int;
      clauses_before : int;
      clauses_after : int;
    }
      (** one clause-database simplification pass (pre-search or at a
          restart boundary): what it removed, shortened and eliminated,
          and the live original+learnt clause count on either side *)
  | Gc of {
      reclaimed_bytes : int;
      arena_bytes_before : int;
      arena_bytes_after : int;
    }
      (** clause-arena compaction: dead clause space physically
          reclaimed, crefs relocated *)
  | Heartbeat of {
      conflict_no : int;
      decisions : int;
      propagations : int;
      learnt_live : int;
      seconds : float;  (** CPU seconds since the solve started *)
    }
  | Share of { direction : share_direction; size : int; glue : int }
      (** one learnt clause crossing the portfolio exchange: exported
          through the length/glue filter, or imported (after
          simplification and dedup) at a restart boundary *)
  | Load of {
      vars : int;
      clauses : int;  (** clauses stored (tautologies excluded) *)
      literals : int;  (** literals read from the stream *)
      seconds : float;  (** parse+load wall-clock time *)
      arena_bytes : int;
      scratch_words : int;
          (** final parser scratch capacity — the O(largest clause)
              term of the streaming memory bound *)
    }
      (** one bulk load ({!Solver.load}): the formula streamed straight
          from DIMACS into pre-sized solver state *)
  | Warn of { message : string }
      (** a broken-but-survivable invariant the solver degraded
          around instead of aborting *)
  | Server_request of {
      session : string;
      op : string;
      status : string;  (** response status, e.g. ["sat"], ["error"] *)
      conflicts : int;  (** conflicts spent by this request alone *)
      propagations : int;  (** propagations spent by this request alone *)
      latency_ms : float;  (** request wall-clock latency *)
    }
      (** one serviced request of the persistent solver daemon
          ({!Berkmin_server}); the per-request cost accounting the
          server's trace stream is made of *)

type sink =
  | Null
  | Callback of (event -> unit)
  | Jsonl of out_channel

type t = private {
  mutable sink : sink;
  mutable active : bool;
      (** [false] iff [sink = Null].  Exposed as a field (not a
          function) so the solver's per-propagation guard is a single
          load even without cross-module inlining.  Mutate only via
          {!set_sink}/{!close}. *)
  mutable emitted : int;
  mutable worker : int option;
      (** Portfolio worker tag.  When set (via {!set_worker}), every
          JSONL line carries a ["worker"] field so traces from several
          racing workers can be merged into one stream and still be
          told apart.  [None] — the default — adds nothing. *)
}

val create : unit -> t
(** A fresh trace with the [Null] sink. *)

val set_sink : t -> sink -> unit

val sink : t -> sink

val active : t -> bool
(** [false] iff the sink is [Null].  Emission sites check this before
    constructing an event, so disabled tracing allocates nothing. *)

val emit : t -> event -> unit
(** Sends the event to the sink ([Null] drops it).  [Jsonl] lines are
    flushed eagerly. *)

val emitted : t -> int
(** Events delivered to a non-null sink so far. *)

val set_worker : t -> int -> unit
(** Tag this trace with a portfolio worker index; subsequent JSONL
    lines gain a ["worker"] field.  Call before [solve]. *)

val worker : t -> int option
(** The worker tag, if any. *)

val event_to_json : ?worker:int -> event -> Json.t
(** The event as a JSON object; [worker] prepends a ["worker"] field
    (what the [Jsonl] sink writes for a tagged trace). *)

val open_jsonl : string -> sink
(** Opens (truncates) a JSONL trace file. *)

val close : t -> unit
(** Closes a [Jsonl] channel if present and resets the sink to
    [Null]. *)
