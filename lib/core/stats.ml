open Berkmin_types

type t = {
  mutable decisions : int;
  mutable top_clause_decisions : int;
  mutable global_decisions : int;
  mutable conflicts : int;
  mutable propagations : int;
  mutable binary_propagations : int;
  mutable binary_conflicts : int;
  mutable watcher_visits : int;
  mutable blocker_hits : int;
  mutable top_cursor_steps : int;
  mutable nb_two_cache_hits : int;
  mutable clauses_exported : int;
  mutable clauses_imported : int;
  mutable imports_used_in_conflict : int;
  mutable restarts : int;
  mutable reductions : int;
  mutable simplify_runs : int;
  mutable simplified_clauses : int;
  mutable eliminated_vars : int;
  mutable subsumed : int;
  mutable strengthened : int;
  mutable failed_literals : int;
  mutable gc_runs : int;
  mutable gc_reclaimed_bytes : int;
  mutable arena_bytes : int;
  mutable learnt_total : int;
  mutable learnt_literals : int;
  mutable minimized_literals : int;
  mutable saved_phase_hits : int;
  mutable restart_seq_index : int;
  mutable glue_reduction_kept : int;
  mutable glue_reduction_dropped : int;
  mutable removed_clauses : int;
  mutable max_live_clauses : int;
  mutable max_learnt_live : int;
  mutable skin : int array;
  mutable skin_overflow : int;
  mutable time_bcp : float;
  mutable time_analyze : float;
  mutable time_reduce : float;
  (* Bulk-load phase ({!Solver.load}): how much formula came through
     the streaming DIMACS path and what it cost, before the first
     propagation. *)
  mutable load_clauses : int;
  mutable load_literals : int;
  mutable load_scratch_words : int;
  mutable time_load : float;  (* wall clock, unlike the CPU times above *)
}

let skin_cap = 1 lsl 16

let create () = {
  decisions = 0;
  top_clause_decisions = 0;
  global_decisions = 0;
  conflicts = 0;
  propagations = 0;
  binary_propagations = 0;
  binary_conflicts = 0;
  watcher_visits = 0;
  blocker_hits = 0;
  top_cursor_steps = 0;
  nb_two_cache_hits = 0;
  clauses_exported = 0;
  clauses_imported = 0;
  imports_used_in_conflict = 0;
  restarts = 0;
  reductions = 0;
  simplify_runs = 0;
  simplified_clauses = 0;
  eliminated_vars = 0;
  subsumed = 0;
  strengthened = 0;
  failed_literals = 0;
  gc_runs = 0;
  gc_reclaimed_bytes = 0;
  arena_bytes = 0;
  learnt_total = 0;
  learnt_literals = 0;
  minimized_literals = 0;
  saved_phase_hits = 0;
  restart_seq_index = 0;
  glue_reduction_kept = 0;
  glue_reduction_dropped = 0;
  removed_clauses = 0;
  max_live_clauses = 0;
  max_learnt_live = 0;
  skin = Array.make 64 0;
  skin_overflow = 0;
  time_bcp = 0.0;
  time_analyze = 0.0;
  time_reduce = 0.0;
  load_clauses = 0;
  load_literals = 0;
  load_scratch_words = 0;
  time_load = 0.0;
}

let reset t =
  t.decisions <- 0;
  t.top_clause_decisions <- 0;
  t.global_decisions <- 0;
  t.conflicts <- 0;
  t.propagations <- 0;
  t.binary_propagations <- 0;
  t.binary_conflicts <- 0;
  t.watcher_visits <- 0;
  t.blocker_hits <- 0;
  t.top_cursor_steps <- 0;
  t.nb_two_cache_hits <- 0;
  t.clauses_exported <- 0;
  t.clauses_imported <- 0;
  t.imports_used_in_conflict <- 0;
  t.restarts <- 0;
  t.reductions <- 0;
  t.simplify_runs <- 0;
  t.simplified_clauses <- 0;
  t.eliminated_vars <- 0;
  t.subsumed <- 0;
  t.strengthened <- 0;
  t.failed_literals <- 0;
  t.gc_runs <- 0;
  t.gc_reclaimed_bytes <- 0;
  t.arena_bytes <- 0;
  t.learnt_total <- 0;
  t.learnt_literals <- 0;
  t.minimized_literals <- 0;
  t.saved_phase_hits <- 0;
  t.restart_seq_index <- 0;
  t.glue_reduction_kept <- 0;
  t.glue_reduction_dropped <- 0;
  t.removed_clauses <- 0;
  t.max_live_clauses <- 0;
  t.max_learnt_live <- 0;
  t.skin <- Array.make 64 0;
  t.skin_overflow <- 0;
  t.time_bcp <- 0.0;
  t.time_analyze <- 0.0;
  t.time_reduce <- 0.0;
  t.load_clauses <- 0;
  t.load_literals <- 0;
  t.load_scratch_words <- 0;
  t.time_load <- 0.0

let record_skin t r =
  if r >= skin_cap then t.skin_overflow <- t.skin_overflow + 1
  else begin
    if r >= Array.length t.skin then begin
      let n = ref (Array.length t.skin) in
      while r >= !n do
        n := 2 * !n
      done;
      let skin = Array.make !n 0 in
      Array.blit t.skin 0 skin 0 (Array.length t.skin);
      t.skin <- skin
    end;
    t.skin.(r) <- t.skin.(r) + 1
  end

let skin_at t r = if r < 0 || r >= Array.length t.skin then 0 else t.skin.(r)

let note_live_clauses t n =
  if n > t.max_live_clauses then t.max_live_clauses <- n

let db_ratio t ~initial =
  if initial = 0 then 0.0
  else float_of_int (initial + t.learnt_total) /. float_of_int initial

let peak_ratio t ~initial =
  if initial = 0 then 0.0
  else float_of_int t.max_live_clauses /. float_of_int initial

let avg_learnt_length t =
  if t.learnt_total = 0 then 0.0
  else float_of_int t.learnt_literals /. float_of_int t.learnt_total

(* The skin histogram is emitted trimmed to its last non-zero bucket;
   [of_json]-style consumers index it positionally. *)
let skin_to_json t =
  let last = ref (-1) in
  Array.iteri (fun i n -> if n > 0 then last := i) t.skin;
  Json.List
    (List.init (!last + 1) (fun i -> Json.Int t.skin.(i)))

let props_per_sec t ~seconds =
  if seconds <= 0.0 then 0.0 else float_of_int t.propagations /. seconds

let to_json ?worker ?seconds t =
  let tag =
    match worker with
    | None -> []
    | Some w -> [ "worker", Json.Int w ]
  in
  let base =
    [
      "decisions", Json.Int t.decisions;
      "top_clause_decisions", Json.Int t.top_clause_decisions;
      "global_decisions", Json.Int t.global_decisions;
      "conflicts", Json.Int t.conflicts;
      "propagations", Json.Int t.propagations;
      "binary_propagations", Json.Int t.binary_propagations;
      "binary_conflicts", Json.Int t.binary_conflicts;
      "watcher_visits", Json.Int t.watcher_visits;
      "blocker_hits", Json.Int t.blocker_hits;
      "top_cursor_steps", Json.Int t.top_cursor_steps;
      "nb_two_cache_hits", Json.Int t.nb_two_cache_hits;
      "clauses_exported", Json.Int t.clauses_exported;
      "clauses_imported", Json.Int t.clauses_imported;
      "imports_used_in_conflict", Json.Int t.imports_used_in_conflict;
      "restarts", Json.Int t.restarts;
      "reductions", Json.Int t.reductions;
      "simplify_runs", Json.Int t.simplify_runs;
      "simplified_clauses", Json.Int t.simplified_clauses;
      "eliminated_vars", Json.Int t.eliminated_vars;
      "subsumed", Json.Int t.subsumed;
      "strengthened", Json.Int t.strengthened;
      "failed_literals", Json.Int t.failed_literals;
      "gc_runs", Json.Int t.gc_runs;
      "gc_reclaimed_bytes", Json.Int t.gc_reclaimed_bytes;
      "arena_bytes", Json.Int t.arena_bytes;
      "learnt_total", Json.Int t.learnt_total;
      "learnt_literals", Json.Int t.learnt_literals;
      "minimized_literals", Json.Int t.minimized_literals;
      "saved_phase_hits", Json.Int t.saved_phase_hits;
      "restart_seq_index", Json.Int t.restart_seq_index;
      "glue_reduction_kept", Json.Int t.glue_reduction_kept;
      "glue_reduction_dropped", Json.Int t.glue_reduction_dropped;
      "removed_clauses", Json.Int t.removed_clauses;
      "max_live_clauses", Json.Int t.max_live_clauses;
      "max_learnt_live", Json.Int t.max_learnt_live;
      "avg_learnt_length", Json.Float (avg_learnt_length t);
      "skin", skin_to_json t;
      "skin_overflow", Json.Int t.skin_overflow;
      "time_bcp", Json.Float t.time_bcp;
      "time_analyze", Json.Float t.time_analyze;
      "time_reduce", Json.Float t.time_reduce;
      "load_clauses", Json.Int t.load_clauses;
      "load_literals", Json.Int t.load_literals;
      "load_scratch_words", Json.Int t.load_scratch_words;
      "time_load", Json.Float t.time_load;
    ]
  in
  let derived =
    match seconds with
    | None -> []
    | Some s ->
      [
        "seconds", Json.Float s;
        "props_per_sec", Json.Float (props_per_sec t ~seconds:s);
        "propagations_per_sec", Json.Float (props_per_sec t ~seconds:s);
      ]
  in
  Json.Obj (tag @ base @ derived)

let pp fmt t =
  Format.fprintf fmt
    "decisions      : %d (top-clause %d, global %d)@\n\
     conflicts      : %d (binary %d)@\n\
     propagations   : %d (binary %d)@\n\
     watcher visits : %d (blocker hits %d)@\n\
     restarts       : %d (reductions %d)@\n\
     learnt         : %d (avg len %.1f, removed %d)@\n\
     peak live DB   : %d clauses@\n\
     arena          : %d bytes (%d GCs, %d bytes reclaimed)"
    t.decisions t.top_clause_decisions t.global_decisions t.conflicts
    t.binary_conflicts t.propagations t.binary_propagations t.watcher_visits
    t.blocker_hits t.restarts t.reductions t.learnt_total
    (avg_learnt_length t) t.removed_clauses t.max_live_clauses t.arena_bytes
    t.gc_runs t.gc_reclaimed_bytes;
  if t.simplify_runs > 0 then
    Format.fprintf fmt
      "@\nsimplify       : %d runs (%d clauses removed, %d vars eliminated, \
       %d subsumed, %d strengthened, %d failed lits)"
      t.simplify_runs t.simplified_clauses t.eliminated_vars t.subsumed
      t.strengthened t.failed_literals;
  (* restart_seq_index also ticks under the paper's fixed cadence
     (where it equals the restart count, printed above), so it does
     not gate this line on its own. *)
  if t.load_clauses > 0 then
    Format.fprintf fmt
      "@\nload           : %d clauses, %d literals in %.3fs (scratch %d words)"
      t.load_clauses t.load_literals t.time_load t.load_scratch_words;
  if
    t.minimized_literals > 0 || t.saved_phase_hits > 0
    || t.glue_reduction_kept + t.glue_reduction_dropped > 0
  then
    Format.fprintf fmt
      "@\nstrategies     : %d lits minimized, %d saved-phase hits, \
       glue kept/dropped %d/%d"
      t.minimized_literals t.saved_phase_hits t.glue_reduction_kept
      t.glue_reduction_dropped

let pp_line fmt t =
  Format.fprintf fmt "dec=%d conf=%d prop=%d rst=%d learnt=%d"
    t.decisions t.conflicts t.propagations t.restarts t.learnt_total
