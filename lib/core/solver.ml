open Berkmin_types
module Drup = Berkmin_proof.Drup
module Dimacs = Berkmin_dimacs.Dimacs

type result =
  | Sat of bool array
  | Unsat
  | Unknown

type budget = {
  max_conflicts : int option;
  max_seconds : float option;
}

let no_budget = { max_conflicts = None; max_seconds = None }
let budget_conflicts n = { max_conflicts = Some n; max_seconds = None }

(* Clauses live in a flat int arena ({!Arena}); a clause is a [cref]
   offset into it.  For clauses of three or more literals, literals 0
   and 1 are the watched literals; a clause acting as the reason of an
   implied literal holds that literal in one of its first two slots
   (conflict analysis skips it by variable, not by position).  The
   arena's per-clause activity slot is the paper's clause_activity:
   the number of conflicts the clause has been responsible for.

   Watch lists are stride-2 int vectors of (blocker, cref) pairs: the
   blocker is some literal of the clause (initially the other watch);
   when it is already true the clause is satisfied and BCP skips the
   arena read entirely.

   Two-literal clauses never enter the watch lists: they live in the
   {!Binary} implication index, and [propagate] drains all binary
   implications of an assigned literal — straight out of the packed
   per-literal arrays, with no arena reads and no allocation — before
   touching any long-clause watcher. *)

(* Per-variable and per-literal arrays are mutable fields: incremental
   solving ([new_var] between solves) replaces them with wider copies,
   so nothing outside this record may retain a reference to one. *)
type t = {
  cfg : Config.t;
  stats : Stats.t;
  tracer : Trace.t;
  rng : Rng.t;
  mutable nvars : int;
  mutable n_original : int;
  arena : Arena.t;
  original : Arena.cref Vec.t;
  learnt : Arena.cref Vec.t;  (* the chronological conflict-clause stack *)
  mutable watches : int Vec.t array;
      (* per literal: flattened (blocker, cref) pairs *)
  binary : Binary.t;  (* implication index of all stored 2-clauses *)
  mutable assigns : Value.t array;
  mutable level : int array;
  mutable reason : Arena.cref array;  (* [Arena.cref_undef] = decision / level 0 *)
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;  (* long-clause (watch list) propagation head *)
  mutable bin_qhead : int;  (* binary-implication head, drained first *)
  mutable top_cursor : int;
  (* Learnt-stack index caching the top-clause scan: every clause
     strictly above it is satisfied under the current assignment
     ([-1] = the whole stack is).  Between conflicts the trail only
     grows, so satisfied clauses stay satisfied and the cursor only
     moves downward; any backtrack, learn or stack reshuffle resets it
     to the top. *)
  mutable assign_epoch : int;
  (* Bumped on every assignment change (enqueue or backtrack);
     versions the nb_two memo below. *)
  mutable nb_memo : int array;  (* per literal: memoized currently-binary degree *)
  mutable nb_memo_epoch : int array;  (* assign_epoch at which nb_memo was computed *)
  mutable var_act : float array;
  mutable lit_act : int array;  (* symmetrization counters, never decayed *)
  mutable vsids : float array;  (* Chaff-baseline literal scores, decayed *)
  mutable saved_phase : Value.t array;
      (* last value each variable was assigned, recorded only when
         [Config.phase_saving] is on; [Unassigned] = never assigned *)
  mutable seen : bool array;
  heap : Var_heap.t option;  (* strategy-3 variable order, if enabled *)
  mutable assumptions : Lit.t array;  (* active only inside solve_with_assumptions *)
  mutable last_core : Lit.t list option;
      (* failed-assumption core of the most recent [solve ~assumps] that
         came back UNSAT; [None] after any other outcome *)
  mutable old_threshold : int;
  mutable restart_epoch : int;
  mutable conflicts_at_restart : int;
  mutable last_var_decay : int;
  mutable last_vsids_decay : int;
  mutable proof : (Drup.event -> unit) option;
  mutable on_decision : (int -> bool -> unit) option;
  mutable on_learn : (glue:int -> Lit.t array -> unit) option;
      (* fires once per learnt clause (units included) with its
         learn-time glue; the portfolio export path lives behind it *)
  mutable on_minimize : (before:Lit.t array -> after:Lit.t array -> unit) option;
      (* fires once per conflict with the 1-UIP clause before and
         after ccmin (asserting literal first in both; identical when
         minimization is off); the ccmin invariant tests live behind it *)
  mutable import_source : (unit -> (int * Lit.t array) list) option;
      (* polled at every restart, at decision level 0: foreign learnt
         clauses as (glue, lits), adopted via [import_clause] *)
  import_seen : (string, unit) Hashtbl.t;
      (* canonical keys of clauses already imported: double imports
         (the same clause relayed again, or learnt by two workers)
         must land at most once *)
  learnt_glue : int Vec.t;
      (* learn-time glue of each clause on the [learnt] stack, index
         for index — kept in lockstep by learning, import and DB
         reduction (GC preserves stack order, so relocation never
         perturbs it) *)
  mutable verdict : result option;
  mutable eliminated : bool array;
      (* variables removed by bounded variable elimination: never
         decided on, never re-assigned; their model values come from
         the reconstruction stack below *)
  mutable elim_stack : Berkmin_simplify.Engine.elim_entry list;
      (* model-reconstruction entries, newest elimination first — the
         replay order {!Berkmin_simplify.Recon.extend} expects *)
  mutable simplify_pre_done : bool;
      (* the pre-search simplification pass runs once per solver *)
  mutable ok : bool;  (* false once a top-level conflict is found *)
}

let stats s = s.stats
let config s = s.cfg
let trace s = s.tracer
let set_trace_sink s sink = Trace.set_sink s.tracer sink
let close_trace s = Trace.close s.tracer
let num_vars s = s.nvars
let num_original_clauses s = s.n_original
let num_learnt_live s = Vec.length s.learnt
let old_activity_threshold s = s.old_threshold
let set_proof_logger s f = s.proof <- Some f
let set_decision_hook s f = s.on_decision <- Some f
let set_learn_hook s f = s.on_learn <- Some f
let set_minimize_hook s f = s.on_minimize <- Some f
let set_import_source s f = s.import_source <- Some f
let glue_of_learnt s i = Vec.get s.learnt_glue i
let value_of s v = s.assigns.(v)
let arena_bytes s = Arena.bytes s.arena
let arena_wasted_bytes s = Arena.wasted_bytes s.arena
let num_binary_entries s = Binary.num_entries s.binary

let log_proof s e =
  match s.proof with
  | None -> ()
  | Some f -> f e

let log_add s lits = log_proof s (Drup.Add (Clause.of_array lits))
let log_delete s lits = log_proof s (Drup.Delete (Clause.of_array lits))

let decision_level s = Vec.length s.trail_lim

let lit_value s l =
  match s.assigns.(Lit.var l) with
  | Value.Unassigned -> Value.Unassigned
  | Value.True -> if Lit.is_pos l then Value.True else Value.False
  | Value.False -> if Lit.is_pos l then Value.False else Value.True

let enqueue s l reason =
  let v = Lit.var l in
  assert (not (Value.is_assigned s.assigns.(v)));
  s.assign_epoch <- s.assign_epoch + 1;
  s.assigns.(v) <- (if Lit.is_pos l then Value.True else Value.False);
  (* Phase saving records at assignment time: the value cannot change
     while assigned, so this equals the classic save-on-backtrack. *)
  if s.cfg.Config.phase_saving then s.saved_phase.(v) <- s.assigns.(v);
  let dl = decision_level s in
  s.level.(v) <- dl;
  (* Level-0 reasons are never consulted by conflict analysis and would
     pin clauses against deletion, so they are dropped. *)
  s.reason.(v) <- (if dl = 0 then Arena.cref_undef else reason);
  (* With simplification active, every level-0 fact goes to the proof
     as a unit clause the moment it is derived (RUP: its support is
     still in the database here).  Simplification and reduction may
     later delete that support; the logged unit keeps the fact alive
     for the checker.  Duplicates (learnt/imported units log their own
     Add) are harmless — the checker counts multiplicity. *)
  if dl = 0 && s.proof <> None && s.cfg.Config.simplify <> Config.Simp_off then
    log_add s [| l |];
  Vec.push s.trail l

let unassign s l =
  let v = Lit.var l in
  s.assigns.(v) <- Value.Unassigned;
  s.reason.(v) <- Arena.cref_undef;
  match s.heap with
  | Some h -> Var_heap.push h v
  | None -> ()

let backtrack s lvl =
  if decision_level s > lvl then begin
    let limit = Vec.get s.trail_lim lvl in
    for i = Vec.length s.trail - 1 downto limit do
      unassign s (Vec.get s.trail i)
    done;
    Vec.shrink s.trail limit;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- limit;
    s.bin_qhead <- limit;
    s.assign_epoch <- s.assign_epoch + 1;
    (* Unassignments can desatisfy clauses above the cached top-clause
       cursor; repair lazily by resetting it to the stack top. *)
    s.top_cursor <- Vec.length s.learnt - 1
  end

let attach s c =
  let l0 = Arena.lit s.arena c 0 and l1 = Arena.lit s.arena c 1 in
  (* Each watcher carries the other watch as its initial blocker. *)
  let w0 = s.watches.(l0) in
  Vec.push w0 l1;
  Vec.push w0 c;
  let w1 = s.watches.(l1) in
  Vec.push w1 l0;
  Vec.push w1 c

(* ------------------------------------------------------------------ *)
(* Boolean constraint propagation.

   Binary clauses first: the implications of every assigned literal
   are drained straight out of the {!Binary} packed per-literal
   arrays — the implied literal and the reason cref sit side by side
   in one flat int vector, so this inner loop performs no arena
   reads, no watch-list surgery and no allocation.  [bin_qhead] runs
   ahead of [qhead]: all binary consequences (including those of
   literals the binary drain itself enqueues) are known before any
   long-clause watcher is inspected.

   Long clauses then go through the classic two-watched-literal
   scheme with blocker-literal short-circuiting.  Returns the
   conflicting cref, or [Arena.cref_undef].

   The watch list of the falsified literal is compacted in place with
   two cursors: kept watchers are copied down to [j]; watchers whose
   clause found a replacement watch are dropped (the replacement was
   pushed onto another list).  Deleted clauses never appear here —
   deletion happens only at level 0, where the reduce/GC path clears
   and rebuilds every list — so the hot loop carries no deleted
   check. *)

let propagate s =
  let conflict = ref Arena.cref_undef in
  let ar = s.arena in
  let visits = ref 0 in
  let hits = ref 0 in
  let bin_props = ref 0 in
  (* [bin_qhead >= qhead] always: both reset to the same trail limit on
     backtrack, and the binary drain runs to the trail end before each
     long-clause step.  The outer loop therefore keys on [qhead]. *)
  while !conflict = Arena.cref_undef && s.qhead < Vec.length s.trail do
    (* Saturate the binary layer before the next long-clause literal. *)
    while !conflict = Arena.cref_undef && s.bin_qhead < Vec.length s.trail do
      let p = Vec.get s.trail s.bin_qhead in
      s.bin_qhead <- s.bin_qhead + 1;
      let bs = Binary.implications s.binary p in
      let n = Vec.length bs in
      let i = ref 0 in
      while !conflict = Arena.cref_undef && !i < n do
        let u = Vec.get bs !i in
        (match lit_value s u with
        | Value.True -> ()
        | Value.Unassigned ->
          incr bin_props;
          enqueue s u (Vec.get bs (!i + 1));
          if s.tracer.Trace.active then
            Trace.emit s.tracer
              (Trace.Propagate { level = decision_level s; lit = u })
        | Value.False ->
          s.stats.binary_conflicts <- s.stats.binary_conflicts + 1;
          conflict := Vec.get bs (!i + 1));
        i := !i + 2
      done
    done;
    if !conflict = Arena.cref_undef then begin
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.stats.propagations <- s.stats.propagations + 1;
    let false_lit = Lit.negate p in
    let ws = s.watches.(false_lit) in
    let n = Vec.length ws in
    let i = ref 0 in
    let j = ref 0 in
    while !i < n do
      let blocker = Vec.get ws !i in
      let c = Vec.get ws (!i + 1) in
      incr visits;
      if lit_value s blocker = Value.True then begin
        (* Satisfied: keep the watcher without touching the arena. *)
        incr hits;
        Vec.set ws !j blocker;
        Vec.set ws (!j + 1) c;
        j := !j + 2;
        i := !i + 2
      end
      else begin
        let data = ar.Arena.data in
        let base = c + Arena.lits_offset in
        (* Ensure the falsified watch sits at index 1. *)
        if data.(base) = false_lit then begin
          data.(base) <- data.(base + 1);
          data.(base + 1) <- false_lit
        end;
        i := !i + 2;
        let first = data.(base) in
        if first <> blocker && lit_value s first = Value.True then begin
          (* Satisfied by the other watch: keep, with a better blocker. *)
          Vec.set ws !j first;
          Vec.set ws (!j + 1) c;
          j := !j + 2
        end
        else begin
          (* Look for a replacement watch among the tail literals. *)
          let sz = Arena.clause_size ar c in
          let k = ref 2 in
          while !k < sz && lit_value s data.(base + !k) = Value.False do
            incr k
          done;
          if !k < sz then begin
            (* Found one: move it into slot 1 and migrate the watcher. *)
            data.(base + 1) <- data.(base + !k);
            data.(base + !k) <- false_lit;
            let wl = s.watches.(data.(base + 1)) in
            Vec.push wl first;
            Vec.push wl c
          end
          else begin
            (* Unit or conflicting: the watcher stays. *)
            Vec.set ws !j first;
            Vec.set ws (!j + 1) c;
            j := !j + 2;
            match lit_value s first with
            | Value.False ->
              conflict := c;
              (* Copy the remaining watchers before bailing out. *)
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                Vec.set ws (!j + 1) (Vec.get ws (!i + 1));
                i := !i + 2;
                j := !j + 2
              done
            | Value.Unassigned ->
              enqueue s first c;
              if s.tracer.Trace.active then
                Trace.emit s.tracer
                  (Trace.Propagate { level = decision_level s; lit = first })
            | Value.True -> assert false
          end
        end
      end
    done;
    Vec.shrink ws !j
    end
  done;
  s.stats.watcher_visits <- s.stats.watcher_visits + !visits;
  s.stats.blocker_hits <- s.stats.blocker_hits + !hits;
  s.stats.binary_propagations <- s.stats.binary_propagations + !bin_props;
  !conflict

(* ------------------------------------------------------------------ *)
(* Activity bookkeeping.                                               *)

let rescale_limit = 1e100

let bump_var s v =
  s.var_act.(v) <- s.var_act.(v) +. 1.0;
  (* Uniform rescaling and decay preserve the heap order; only the
     single-key increase needs fixing up. *)
  (match s.heap with
  | Some h -> Var_heap.notify_increase h v
  | None -> ());
  if s.var_act.(v) > rescale_limit then
    for u = 0 to s.nvars - 1 do
      s.var_act.(u) <- s.var_act.(u) *. 1e-100
    done

let bump_vsids s l =
  s.vsids.(l) <- s.vsids.(l) +. 1.0;
  if s.vsids.(l) > rescale_limit then
    for m = 0 to (2 * s.nvars) - 1 do
      s.vsids.(m) <- s.vsids.(m) *. 1e-100
    done

let maybe_decay s =
  let c = s.stats.conflicts in
  if s.cfg.var_decay_interval > 0 && c - s.last_var_decay >= s.cfg.var_decay_interval
  then begin
    s.last_var_decay <- c;
    let f = 1.0 /. s.cfg.var_decay_factor in
    for v = 0 to s.nvars - 1 do
      s.var_act.(v) <- s.var_act.(v) *. f
    done
  end;
  if s.cfg.vsids_decay_interval > 0
     && c - s.last_vsids_decay >= s.cfg.vsids_decay_interval
  then begin
    s.last_vsids_decay <- c;
    let f = 1.0 /. s.cfg.vsids_decay_factor in
    for l = 0 to (2 * s.nvars) - 1 do
      s.vsids.(l) <- s.vsids.(l) *. f
    done
  end

(* ------------------------------------------------------------------ *)
(* Conflict analysis: first unique implication point.                  *)

(* Returns the learnt literals (asserting literal first) and the
   backtrack level.  Along the way updates clause activities and, per
   the configured [activity_mode], variable activities — the paper's
   "sensitivity" novelty is the [Responsible_clauses] branch, which
   bumps every variable occurrence of every clause responsible for the
   conflict, not only the learnt clause's variables (Section 4). *)
let analyze s (confl : Arena.cref) =
  let ar = s.arena in
  let dl = decision_level s in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let idx = ref (Vec.length s.trail - 1) in
  let c = ref confl in
  let continue = ref true in
  while !continue do
    let cref = !c in
    if Arena.is_learnt ar cref then Arena.bump_activity ar cref;
    if Arena.is_imported ar cref then
      s.stats.imports_used_in_conflict <- s.stats.imports_used_in_conflict + 1;
    (match s.cfg.activity_mode with
    | Config.Responsible_clauses ->
      Arena.iter_lits ar cref (fun q -> bump_var s (Lit.var q))
    | Config.Conflict_clause_only -> ());
    (* Skip the implied literal by variable, not by slot: binary
       reasons come from the implication index and make no promise
       about which slot holds the implied literal. *)
    let pv = if !p = -1 then -1 else Lit.var !p in
    let sz = Arena.clause_size ar cref in
    for j = 0 to sz - 1 do
      let q = Arena.lit ar cref j in
      let v = Lit.var q in
      if v <> pv && (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        if s.level.(v) >= dl then incr counter else learnt := q :: !learnt
      end
    done;
    (* Walk the trail back to the next marked literal of this level. *)
    let rec next_marked () =
      let l = Vec.get s.trail !idx in
      decr idx;
      if s.seen.(Lit.var l) then l else next_marked ()
    in
    let l = next_marked () in
    s.seen.(Lit.var l) <- false;
    decr counter;
    p := l;
    if !counter = 0 then continue := false
    else begin
      let r = s.reason.(Lit.var l) in
      assert (r <> Arena.cref_undef);  (* only the UIP can lack a reason *)
      c := r
    end
  done;
  let asserting = Lit.negate !p in
  (* Optional conflict-clause minimization (a post-2002 extension, off
     in the paper's configuration): a learnt literal is redundant when
     its reason clause is subsumed by the rest of the learnt clause
     plus top-level facts.  The [seen] marks — still set for exactly
     the non-asserting learnt variables — encode membership.  The deep
     mode (MiniSat's litRedundant) additionally follows implication
     chains through reasons: a reason literal outside the clause is
     harmless when it is itself recursively redundant.  Reasons point
     strictly backward along the trail, so the recursion is on a DAG
     and per-conflict memoization is sound.  Either way the survivor
     clause is reachable by further resolutions against reason clauses,
     hence still implied and DRUP-sound. *)
  let kept =
    match s.cfg.ccmin_mode with
    | Config.Ccmin_off -> !learnt
    | (Config.Ccmin_basic | Config.Ccmin_deep) as mode ->
      let deep = mode = Config.Ccmin_deep in
      let memo : (int, bool) Hashtbl.t = Hashtbl.create 16 in
      let rec redundant q =
        let v = Lit.var q in
        let r = s.reason.(v) in
        r <> Arena.cref_undef
        && Arena.for_all_lits ar r (fun p ->
               let u = Lit.var p in
               u = v
               || s.seen.(u)
               || s.level.(u) = 0
               || (deep && memo_redundant p))
      and memo_redundant p =
        let u = Lit.var p in
        match Hashtbl.find_opt memo u with
        | Some b -> b
        | None ->
          let b = redundant p in
          Hashtbl.add memo u b;
          b
      in
      let kept = List.filter (fun q -> not (redundant q)) !learnt in
      s.stats.minimized_literals <-
        s.stats.minimized_literals
        + (List.length !learnt - List.length kept);
      kept
  in
  (match s.on_minimize with
  | Some f ->
    f
      ~before:(Array.of_list (asserting :: !learnt))
      ~after:(Array.of_list (asserting :: kept))
  | None -> ());
  let lits = Array.of_list (asserting :: kept) in
  (* Reset the [seen] marks of the surviving literals. *)
  List.iter (fun q -> s.seen.(Lit.var q) <- false) !learnt;
  (* Chaff-style activity: only the learnt clause's variables. *)
  (match s.cfg.activity_mode with
  | Config.Conflict_clause_only ->
    Array.iter (fun q -> bump_var s (Lit.var q)) lits
  | Config.Responsible_clauses -> ());
  (* VSIDS literal scores for the Chaff baseline, and the permanent
     lit_activity counters driving database symmetrization (Section 7),
     are bumped on every learnt clause regardless of mode. *)
  Array.iter
    (fun q ->
      bump_vsids s q;
      s.lit_act.(q) <- s.lit_act.(q) + 1)
    lits;
  (* Backtrack level: highest level below [dl] among learnt literals,
     with the corresponding literal moved to watch position 1. *)
  let bt = ref 0 in
  for j = 1 to Array.length lits - 1 do
    if s.level.(Lit.var lits.(j)) > !bt then bt := s.level.(Lit.var lits.(j))
  done;
  if Array.length lits > 1 then begin
    let best = ref 1 in
    for j = 2 to Array.length lits - 1 do
      if s.level.(Lit.var lits.(j)) > s.level.(Lit.var lits.(!best)) then best := j
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp
  end;
  (* Glue (LBD): distinct decision levels among the learnt literals,
     measured now — before backtracking invalidates the levels.  Low
     glue marks clauses that link few search levels, the quality
     signal the portfolio export filter keys on. *)
  let glue =
    let n = Array.length lits in
    let levels = Array.init n (fun j -> s.level.(Lit.var lits.(j))) in
    Array.sort compare levels;
    let d = ref 1 in
    for j = 1 to n - 1 do
      if levels.(j) <> levels.(j - 1) then incr d
    done;
    !d
  in
  (lits, !bt, glue)

let record_learnt s ~glue lits =
  s.stats.learnt_total <- s.stats.learnt_total + 1;
  s.stats.learnt_literals <- s.stats.learnt_literals + Array.length lits;
  log_add s lits;
  if Array.length lits = 1 then
    (* Unit conflict clause: becomes a retained top-level assignment
       rather than a stored clause (Section 8). *)
    enqueue s lits.(0) Arena.cref_undef
  else begin
    let c = Arena.alloc s.arena ~learnt:true lits in
    s.stats.arena_bytes <- Arena.bytes s.arena;
    Vec.push s.learnt c;
    Vec.push s.learnt_glue glue;
    (* The new clause tops the stack and is unsatisfied (its asserting
       literal is only enqueued below), so the top-clause cursor must
       restart from it. *)
    s.top_cursor <- Vec.length s.learnt - 1;
    if Vec.length s.learnt > s.stats.max_learnt_live then
      s.stats.max_learnt_live <- Vec.length s.learnt;
    Stats.note_live_clauses s.stats (s.n_original + Vec.length s.learnt);
    if Array.length lits = 2 then Binary.add s.binary ~cref:c lits.(0) lits.(1)
    else attach s c;
    enqueue s lits.(0) c
  end;
  match s.on_learn with
  | Some f -> f ~glue lits
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Arena compaction.                                                   *)

(* Copy every live clause into a fresh arena and swap it in, following
   the forwarding-pointer protocol of {!Arena.reloc}.  Every
   outstanding cref — watch lists, trail reasons, learnt stack,
   original list, binary implication index — is rewritten to the clause's new
   address; dead watchers (a deleted clause can linger in a watch list
   only if the caller compacts without rebuilding) are dropped. *)
let gc s =
  let ar = s.arena in
  let before = Arena.bytes ar in
  let reclaimed = Arena.wasted_bytes ar in
  let into = Arena.create ~capacity:(max (Arena.live_words ar) 16) () in
  Array.iter
    (fun ws ->
      let n = Vec.length ws in
      let i = ref 0 in
      let j = ref 0 in
      while !i < n do
        let b = Vec.get ws !i in
        let c = Vec.get ws (!i + 1) in
        if not (Arena.is_deleted ar c) then begin
          Vec.set ws !j b;
          Vec.set ws (!j + 1) (Arena.reloc ar ~into c);
          j := !j + 2
        end;
        i := !i + 2
      done;
      Vec.shrink ws !j)
    s.watches;
  for i = 0 to Vec.length s.trail - 1 do
    let v = Lit.var (Vec.get s.trail i) in
    let r = s.reason.(v) in
    if r <> Arena.cref_undef then s.reason.(v) <- Arena.reloc ar ~into r
  done;
  for i = 0 to Vec.length s.learnt - 1 do
    Vec.set s.learnt i (Arena.reloc ar ~into (Vec.get s.learnt i))
  done;
  for i = 0 to Vec.length s.original - 1 do
    Vec.set s.original i (Arena.reloc ar ~into (Vec.get s.original i))
  done;
  Binary.filter_reloc s.binary
    ~dead:(fun c -> Arena.is_deleted ar c)
    ~reloc:(fun c -> Arena.reloc ar ~into c);
  Arena.commit ar ~into;
  s.stats.gc_runs <- s.stats.gc_runs + 1;
  s.stats.gc_reclaimed_bytes <- s.stats.gc_reclaimed_bytes + reclaimed;
  s.stats.arena_bytes <- Arena.bytes ar;
  if s.tracer.Trace.active then
    Trace.emit s.tracer
      (Trace.Gc
         {
           reclaimed_bytes = reclaimed;
           arena_bytes_before = before;
           arena_bytes_after = Arena.bytes ar;
         })

let compact = gc

(* ------------------------------------------------------------------ *)
(* Clause database management (Section 8).                             *)

let satisfied_at_level0 s c =
  Arena.exists_lit s.arena c (fun l ->
      s.level.(Lit.var l) = 0 && lit_value s l = Value.True)

(* Decide which live learnt clauses survive a reduction.  Called at
   decision level 0 only. *)
let reduction_keeps s =
  let ar = s.arena in
  let n = Vec.length s.learnt in
  let keep = Array.make n true in
  (match s.cfg.reduction_mode with
  | Config.Keep_all -> ()
  | Config.Length_limit limit ->
    Vec.iteri
      (fun i c ->
        if satisfied_at_level0 s c then keep.(i) <- false
        else if Arena.clause_size ar c > limit then keep.(i) <- false)
      s.learnt
  | Config.Glue_lbd limit ->
    (* Glucose-style: the learn-time glue (LBD) recorded in
       [learnt_glue] is the quality signal.  Glue clauses (glue at or
       below the limit) are kept unconditionally; the rest survive
       only while young, judged by the same age band as the paper's
       scheme. *)
    let n = Vec.length s.learnt in
    let young_band = s.cfg.young_fraction *. float_of_int n in
    Vec.iteri
      (fun i c ->
        if i = n - 1 then keep.(i) <- true
          (* the topmost clause is never removed: anti-looping *)
        else if satisfied_at_level0 s c then keep.(i) <- false
        else if Vec.get s.learnt_glue i <= limit then begin
          keep.(i) <- true;
          s.stats.glue_reduction_kept <- s.stats.glue_reduction_kept + 1
        end
        else begin
          let distance = n - 1 - i in
          let young = float_of_int distance < young_band in
          keep.(i) <- young;
          if not young then
            s.stats.glue_reduction_dropped <-
              s.stats.glue_reduction_dropped + 1
        end)
      s.learnt
  | Config.Berkmin_age_activity ->
    let young_band = s.cfg.young_fraction *. float_of_int n in
    Vec.iteri
      (fun i c ->
        if i = n - 1 then keep.(i) <- true
          (* the topmost clause is never removed: anti-looping *)
        else if satisfied_at_level0 s c then keep.(i) <- false
        else begin
          let distance = n - 1 - i in
          let young = float_of_int distance < young_band in
          let len = Arena.clause_size ar c in
          let act = Arena.activity ar c in
          keep.(i) <-
            (if young then
               len < s.cfg.young_keep_length || act > s.cfg.young_keep_activity
             else len < s.cfg.old_keep_length || act > s.old_threshold)
        end)
      s.learnt);
  keep

(* Rebuild every watch list from scratch, re-establishing the invariant
   that watched literals are non-false at level 0.  The paper notes that
   BerkMin recomputes its data structures after reductions; doing a full
   rebuild also keeps the propagation invariants simple to audit.

   Clauses already satisfied at level 0 are left unattached: the
   satisfying literal is permanent, so the clause can never propagate
   again.  (Attaching them instead would demand a second non-false
   watch, which a clause with one true and otherwise false literals
   does not have.) *)
let rebuild_watches s =
  assert (decision_level s = 0);
  Array.iter Vec.clear s.watches;
  let ar = s.arena in
  let reattach c =
    (* Binary clauses live in the implication index, never in watch
       lists; their level-0 consequences were drained when their
       source literals propagated, so there is nothing to re-derive
       here. *)
    if (not (Arena.is_deleted ar c)) && Arena.clause_size ar c > 2 then begin
      if Arena.exists_lit ar c (fun l -> lit_value s l = Value.True) then ()
      else begin
        let n = Arena.clause_size ar c in
        (* Pull up to two non-false literals into the watch slots. *)
        let found = ref 0 in
        (try
           for j = 0 to n - 1 do
             if lit_value s (Arena.lit ar c j) <> Value.False then begin
               Arena.swap_lits ar c !found j;
               incr found;
               if !found = 2 then raise Exit
             end
           done
         with Exit -> ());
        match !found with
        | 0 -> s.ok <- false (* clause falsified at level 0 *)
        | 1 ->
          (* One non-false literal in an unsatisfied clause: it is
             unassigned, and every other literal is permanently false —
             enqueue it as a top-level fact and leave the clause
             unattached. *)
          enqueue s (Arena.lit ar c 0) Arena.cref_undef
        | _ -> attach s c
      end
    end
  in
  Vec.iter reattach s.original;
  Vec.iter reattach s.learnt

let reduce_db s =
  if s.cfg.reduction_mode <> Config.Keep_all then begin
    let t0 = if s.cfg.profile_timers then Sys.time () else 0.0 in
    s.stats.reductions <- s.stats.reductions + 1;
    let live_before = Vec.length s.learnt in
    let glue_kept0 = s.stats.glue_reduction_kept in
    let glue_dropped0 = s.stats.glue_reduction_dropped in
    let keep = reduction_keeps s in
    let removed = ref 0 in
    Vec.iteri
      (fun i c ->
        if not keep.(i) then begin
          incr removed;
          log_delete s (Arena.lits_array s.arena c);
          Arena.free s.arena c
        end)
      s.learnt;
    if !removed > 0 then begin
      s.stats.removed_clauses <- s.stats.removed_clauses + !removed;
      (* Compact the learnt stack and its parallel glue table in
         lockstep (order preserved, matching [Vec.filter_in_place]). *)
      let j = ref 0 in
      Vec.iteri
        (fun i c ->
          if not (Arena.is_deleted s.arena c) then begin
            Vec.set s.learnt !j c;
            Vec.set s.learnt_glue !j (Vec.get s.learnt_glue i);
            incr j
          end)
        s.learnt;
      Vec.shrink s.learnt !j;
      Vec.shrink s.learnt_glue !j;
      (* Indices shifted: restart the top-clause cursor from the new
         stack top. *)
      s.top_cursor <- Vec.length s.learnt - 1;
      (* Watches are about to be rebuilt; clearing them first keeps the
         GC's watcher pass trivial. *)
      Array.iter Vec.clear s.watches;
      gc s;
      rebuild_watches s
    end;
    if s.tracer.Trace.active then
      Trace.emit s.tracer
        (Trace.Reduce_db
           {
             live_before;
             removed = !removed;
             threshold = s.old_threshold;
             glue_kept = s.stats.glue_reduction_kept - glue_kept0;
             glue_dropped = s.stats.glue_reduction_dropped - glue_dropped0;
           });
    if s.cfg.reduction_mode = Config.Berkmin_age_activity then
      s.old_threshold <- s.old_threshold + s.cfg.old_threshold_increment;
    if s.cfg.profile_timers then
      s.stats.time_reduce <- s.stats.time_reduce +. (Sys.time () -. t0)
  end

(* ------------------------------------------------------------------ *)
(* Clause-database simplification (subsumption, self-subsuming
   resolution, bounded variable elimination, failed-literal probing).
   The combinatorics live in {!Berkmin_simplify.Engine}; this function
   shuttles the arena out and back.                                    *)

module Simp = Berkmin_simplify.Engine

(* Run one simplification pass at decision level 0 and rebuild the
   clause database from the outcome.

   Proof discipline: the engine emits every derived clause before the
   deletions it justifies, but its deletions may target clauses whose
   level-0 units entered the trail before a proof logger was attached
   (original unit clauses, say).  Re-asserting the whole level-0 trail
   as unit Adds first — each is RUP against the still-intact database —
   makes the units permanent for the checker, so no later deletion can
   orphan them.  Duplicates are harmless: the checker counts
   multiplicity. *)
let simplify_now s =
  assert (decision_level s = 0);
  if s.ok then begin
    let confl = propagate s in
    if confl <> Arena.cref_undef then begin
      s.stats.conflicts <- s.stats.conflicts + 1;
      s.ok <- false
    end
    else begin
      let ar = s.arena in
      let n_orig = Vec.length s.original in
      let n_learnt = Vec.length s.learnt in
      let clauses_before = n_orig + n_learnt in
      if s.proof <> None then
        Vec.iter (fun l -> log_add s [| l |]) s.trail;
      (* Learnt-clause metadata survives the round trip via the tag:
         clause [n_orig + i] carries glue [meta_glue.(i)]. *)
      let meta_glue = Array.make (max n_learnt 1) 0 in
      let meta_imported = Array.make (max n_learnt 1) false in
      let input = ref [] in
      for i = n_learnt - 1 downto 0 do
        let c = Vec.get s.learnt i in
        meta_glue.(i) <- Vec.get s.learnt_glue i;
        meta_imported.(i) <- Arena.is_imported ar c;
        input :=
          { Simp.lits = Arena.lits_array ar c;
            tag = n_orig + i;
            redundant = true }
          :: !input
      done;
      for i = n_orig - 1 downto 0 do
        input :=
          { Simp.lits = Arena.lits_array ar (Vec.get s.original i);
            tag = i;
            redundant = false }
          :: !input
      done;
      let frozen v = Array.exists (fun l -> Lit.var l = v) s.assumptions in
      let roots = ref [] in
      for i = Vec.length s.trail - 1 downto 0 do
        roots := Vec.get s.trail i :: !roots
      done;
      let opts = { Simp.default_opts with bve_growth = s.cfg.simplify_growth } in
      let out =
        Simp.run ~opts ~nvars:s.nvars ~frozen ~roots:!roots
          ~proof:(fun e -> log_proof s e)
          !input
      in
      let st = out.Simp.st in
      s.stats.simplify_runs <- s.stats.simplify_runs + 1;
      s.stats.simplified_clauses <-
        s.stats.simplified_clauses + st.Simp.simplified_clauses;
      s.stats.eliminated_vars <-
        s.stats.eliminated_vars + st.Simp.eliminated_vars;
      s.stats.subsumed <- s.stats.subsumed + st.Simp.subsumed;
      s.stats.strengthened <- s.stats.strengthened + st.Simp.strengthened;
      s.stats.failed_literals <-
        s.stats.failed_literals + st.Simp.failed_literals;
      let changed =
        st.Simp.simplified_clauses > 0
        || st.Simp.strengthened > 0
        || st.Simp.eliminated_vars > 0
        || st.Simp.failed_literals > 0
        || out.Simp.units <> []
        || out.Simp.unsat
      in
      if changed then begin
        (* Rebuild the database from the outcome: every old cref dies,
           every survivor is re-allocated.  Level-0 reasons are all
           [cref_undef] (see [enqueue]), so nothing outside the vecs
           cleared here can hold a stale cref.  No extra deletion
           events: the engine already logged exactly what it dropped,
           and a re-allocated survivor has the same literals the
           checker's database entry has. *)
        Vec.iter (fun c -> Arena.free ar c) s.original;
        Vec.iter (fun c -> Arena.free ar c) s.learnt;
        Vec.clear s.original;
        Vec.clear s.learnt;
        Vec.clear s.learnt_glue;
        Array.iter Vec.clear s.watches;
        Binary.clear s.binary;
        List.iter
          (fun e -> s.eliminated.(e.Simp.var) <- true)
          out.Simp.eliminated;
        s.elim_stack <- out.Simp.eliminated @ s.elim_stack;
        let add_back ~learnt ~imported ~glue lits =
          let c = Arena.alloc ~imported ar ~learnt lits in
          if learnt then begin
            Vec.push s.learnt c;
            Vec.push s.learnt_glue glue
          end
          else Vec.push s.original c;
          if Array.length lits = 2 then
            Binary.add s.binary ~cref:c lits.(0) lits.(1)
        in
        List.iter
          (fun { Simp.lits; tag; redundant } ->
            if redundant then
              add_back ~learnt:true
                ~imported:meta_imported.(tag - n_orig)
                ~glue:meta_glue.(tag - n_orig) lits
            else
              (* [tag >= n_orig]: a learnt clause promoted to
                 irredundant by subsumption; it joins the originals and
                 leaves the reduction heuristics' reach. *)
              add_back ~learnt:false ~imported:false ~glue:0 lits)
          out.Simp.kept;
        List.iter
          (fun lits -> add_back ~learnt:false ~imported:false ~glue:0 lits)
          out.Simp.resolvents;
        List.iter
          (fun l ->
            match lit_value s l with
            | Value.True -> ()
            | Value.False -> s.ok <- false
            | Value.Unassigned -> enqueue s l Arena.cref_undef)
          out.Simp.units;
        if out.Simp.unsat then s.ok <- false;
        s.top_cursor <- Vec.length s.learnt - 1;
        (* Compact away the freed clauses, then re-derive the watch
           invariant (long clauses attach; clauses satisfied by the new
           units stay unattached; single-survivor clauses enqueue). *)
        gc s;
        rebuild_watches s;
        Stats.note_live_clauses s.stats (s.n_original + Vec.length s.learnt);
        if Vec.length s.learnt > s.stats.max_learnt_live then
          s.stats.max_learnt_live <- Vec.length s.learnt
      end;
      if s.tracer.Trace.active then
        Trace.emit s.tracer
          (Trace.Simplify
             {
               rounds = st.Simp.rounds;
               subsumed = st.Simp.subsumed;
               strengthened = st.Simp.strengthened;
               eliminated_vars = st.Simp.eliminated_vars;
               failed_literals = st.Simp.failed_literals;
               clauses_before;
               clauses_after = Vec.length s.original + Vec.length s.learnt;
             })
    end
  end

(* ------------------------------------------------------------------ *)
(* Decision making (Sections 5–7).                                     *)

(* The current top clauses: the [top_window] unsatisfied learnt clauses
   closest to the top of the stack, newest first (the paper uses a
   window of 1; Remark 2 proposes examining a small set).  Each comes
   with its distance from the top — the skin-effect [r] of Table 3. *)

let clause_satisfied s c =
  Arena.exists_lit s.arena c (fun l -> lit_value s l = Value.True)

(* Scan the learnt stack downward from index [start]: the window of
   unsatisfied clauses (newest first, with stack distances) plus the
   index of the topmost unsatisfied clause, or [-1] when the whole
   suffix is satisfied. *)
let scan_top_clauses s start =
  let n = Vec.length s.learnt in
  let window = max 1 s.cfg.top_window in
  let found = ref [] in
  let count = ref 0 in
  let steps = ref 0 in
  let first_unsat = ref (-1) in
  let i = ref start in
  while !count < window && !i >= 0 do
    incr steps;
    let c = Vec.get s.learnt !i in
    if not (clause_satisfied s c) then begin
      if !first_unsat < 0 then first_unsat := !i;
      found := (c, n - 1 - !i) :: !found;
      incr count
    end;
    decr i
  done;
  (List.rev !found, !first_unsat, !steps)

(* Cursor-backed variant: between conflicts the trail only grows, so
   every clause the previous scan proved satisfied stays satisfied and
   the scan may resume at the cached [top_cursor] instead of the stack
   top.  Learning, backtracking and stack reshuffles reset the cursor
   (see {!backtrack} / {!record_learnt} / {!reduce_db}), making the
   skipped prefix sound by construction.  [debug_top_cursor] replays
   the naive full scan and insists on identical picks. *)
let find_top_clauses s =
  let n = Vec.length s.learnt in
  if s.top_cursor >= n then s.top_cursor <- n - 1;
  let found, first_unsat, steps = scan_top_clauses s s.top_cursor in
  s.top_cursor <- first_unsat;
  s.stats.top_cursor_steps <- s.stats.top_cursor_steps + steps;
  if s.cfg.debug_top_cursor then begin
    let naive, _, _ = scan_top_clauses s (n - 1) in
    if naive <> found then
      failwith
        (Printf.sprintf
           "top-clause cursor out of sync: cursor pick [%s], naive pick [%s]"
           (String.concat ";"
              (List.map (fun (c, d) -> Printf.sprintf "%d@%d" c d) found))
           (String.concat ";"
              (List.map (fun (c, d) -> Printf.sprintf "%d@%d" c d) naive)))
  end;
  found

(* Most active free variable.  The naive linear scan is what the paper
   benchmarked (Remark 1); the heap is BerkMin561's optimized
   "strategy 3" — identical decisions, different cost profile. *)
let most_active_free_var s =
  match s.heap with
  | Some h ->
    let rec pop () =
      if Var_heap.is_empty h then None
      else begin
        let v = Var_heap.pop_max h in
        if Value.is_assigned s.assigns.(v) || s.eliminated.(v) then pop ()
        else Some v
      end
    in
    pop ()
  | None ->
    let best = ref (-1) in
    let best_act = ref neg_infinity in
    for v = 0 to s.nvars - 1 do
      if
        (not (Value.is_assigned s.assigns.(v)))
        && (not s.eliminated.(v))
        && s.var_act.(v) > !best_act
      then begin
        best := v;
        best_act := s.var_act.(v)
      end
    done;
    if !best < 0 then None else Some !best

let best_vsids_literal s =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  for l = 0 to (2 * s.nvars) - 1 do
    if
      (not (Value.is_assigned s.assigns.(Lit.var l)))
      && (not s.eliminated.(Lit.var l))
      && s.vsids.(l) > !best_act
    then begin
      best := l;
      best_act := s.vsids.(l)
    end
  done;
  if !best < 0 then None else Some !best

(* nb_two(l): the number of binary clauses containing l, plus, for each
   such clause (l v u), the number of binary clauses containing ¬u — a
   rough estimate of the BCP power of setting l to 0 (Section 7).  A
   stored 2-clause counts when both its literals are free under the
   current partial assignment (both free = unsatisfied), read straight
   off the static {!Binary} index: the entries under [¬l] are exactly
   the stored 2-clauses containing [l].  Computation stops at the
   configured threshold.  Learnt 2-clauses in the index are harmless
   here — the heuristic runs only when every learnt clause is
   satisfied, and a satisfied clause fails the both-free test. *)

(* Currently-binary degree of [l], memoized per assignment epoch: the
   second-hop counts of [nb_two] revisit the same neighbour literals
   many times between two assignments, and the memo turns those
   revisits into one array read. *)
let bin_degree s l =
  if s.nb_memo_epoch.(l) = s.assign_epoch then begin
    s.stats.nb_two_cache_hits <- s.stats.nb_two_cache_hits + 1;
    s.nb_memo.(l)
  end
  else begin
    let count = ref 0 in
    if not (Value.is_assigned s.assigns.(Lit.var l)) then begin
      let bs = Binary.implications s.binary (Lit.negate l) in
      let n = Vec.length bs in
      let i = ref 0 in
      while !i < n do
        if not (Value.is_assigned s.assigns.(Lit.var (Vec.get bs !i)))
        then incr count;
        i := !i + 2
      done
    end;
    s.nb_memo.(l) <- !count;
    s.nb_memo_epoch.(l) <- s.assign_epoch;
    !count
  end

let nb_two s l =
  let threshold = s.cfg.nb_two_threshold in
  let total = ref 0 in
  if not (Value.is_assigned s.assigns.(Lit.var l)) then begin
    let bs = Binary.implications s.binary (Lit.negate l) in
    let n = Vec.length bs in
    let i = ref 0 in
    while !total <= threshold && !i < n do
      let u = Vec.get bs !i in
      if not (Value.is_assigned s.assigns.(Lit.var u)) then
        total := !total + 1 + bin_degree s (Lit.negate u);
      i := !i + 2
    done
  end;
  !total

(* Database-symmetrization polarity (Section 7): explore first the
   branch that generates learnt clauses containing the globally rarer
   literal.  Exploring x=0 yields clauses containing the positive
   literal x, so choose 0 when lit_activity(x) < lit_activity(¬x). *)
let symmetrize_value s v =
  let ap = s.lit_act.(Lit.pos v) and an = s.lit_act.(Lit.neg_of v) in
  if ap < an then false else if ap > an then true else Rng.bool s.rng

let top_clause_value s v lit_in_clause =
  match s.cfg.polarity_mode with
  | Config.Symmetrize -> symmetrize_value s v
  | Config.Sat_top -> Lit.is_pos lit_in_clause
  | Config.Unsat_top -> not (Lit.is_pos lit_in_clause)
  | Config.Take_zero -> false
  | Config.Take_one -> true
  | Config.Take_random -> Rng.bool s.rng

let global_value s v =
  match s.cfg.global_polarity with
  | Config.Nb_two ->
    let np = nb_two s (Lit.pos v) and nn = nb_two s (Lit.neg_of v) in
    (* The literal with the larger neighbourhood is set to 0. *)
    if np > nn then false
    else if nn > np then true
    else if Rng.bool s.rng then true
    else false
  | Config.Gp_take_zero -> false
  | Config.Gp_take_one -> true
  | Config.Gp_random -> Rng.bool s.rng

(* Pick the free variable of [c] with the highest var_activity, together
   with its literal in [c] (needed by the Sat_top/Unsat_top ablations). *)
let best_free_in_clause s c =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  Arena.iter_lits s.arena c (fun l ->
      if lit_value s l = Value.Unassigned then begin
        let v = Lit.var l in
        if s.var_act.(v) > !best_act then begin
          best_act := s.var_act.(v);
          best := l
        end
      end);
  if !best < 0 then None else Some !best

let global_decision s =
  match most_active_free_var s with
  | None -> None
  | Some v ->
    s.stats.global_decisions <- s.stats.global_decisions + 1;
    Some (v, global_value s v, Trace.D_global)

let pick_branch s =
  match s.cfg.decision_mode with
  | Config.Vsids_literal -> (
    match best_vsids_literal s with
    | None -> None
    | Some l ->
      s.stats.global_decisions <- s.stats.global_decisions + 1;
      Some (Lit.var l, Lit.is_pos l, Trace.D_global))
  | Config.Global_most_active -> (
    match most_active_free_var s with
    | None -> None
    | Some v ->
      s.stats.global_decisions <- s.stats.global_decisions + 1;
      (* No top clause in this ablation: use the symmetrization
         counters for the branch value (see DESIGN.md). *)
      let value =
        match s.cfg.polarity_mode with
        | Config.Take_zero -> false
        | Config.Take_one -> true
        | Config.Take_random -> Rng.bool s.rng
        | Config.Symmetrize | Config.Sat_top | Config.Unsat_top ->
          symmetrize_value s v
      in
      Some (v, value, Trace.D_global))
  | Config.Top_clause -> (
    (* Choose the most active free variable across the window of top
       clauses; ties between clauses go to the one nearest the top
       (the list is newest-first and the comparison strict). *)
    let best = ref None in
    List.iter
      (fun (c, distance) ->
        match best_free_in_clause s c with
        | Some l ->
          let act = s.var_act.(Lit.var l) in
          (match !best with
          | Some (_, _, best_act) when best_act >= act -> ()
          | Some _ | None -> best := Some (l, distance, act))
        | None ->
          (* An unsatisfied clause with no free literal would be a
             conflict, which BCP should have excluded.  If the
             invariant is ever broken, skip the clause and keep
             solving — a degraded decision beats an abort — but leave
             a warning in the trace. *)
          Trace.emit s.tracer
            (Trace.Warn
               {
                 message =
                   Printf.sprintf
                     "top clause at cref %d has no free literal; skipped" c;
               }))
      (find_top_clauses s);
    match !best with
    | Some (l, distance, _) ->
      s.stats.top_clause_decisions <- s.stats.top_clause_decisions + 1;
      Stats.record_skin s.stats distance;
      let v = Lit.var l in
      Some (v, top_clause_value s v l, Trace.D_top_clause)
    | None -> global_decision s)

let decide s =
  (* Assumption literals are tried in order as the first decisions;
     each consumes one decision level even when already satisfied, so
     [decision_level] indexes the assumption array. *)
  if decision_level s < Array.length s.assumptions then begin
    let l = s.assumptions.(decision_level s) in
    match lit_value s l with
    | Value.True ->
      Vec.push s.trail_lim (Vec.length s.trail);
      `Continue
    | Value.False -> `Assumption_failed l
    | Value.Unassigned ->
      s.stats.decisions <- s.stats.decisions + 1;
      Vec.push s.trail_lim (Vec.length s.trail);
      enqueue s l Arena.cref_undef;
      if s.tracer.Trace.active then
        Trace.emit s.tracer
          (Trace.Decide
             {
               level = decision_level s;
               var = Lit.var l;
               value = Lit.is_pos l;
               kind = Trace.D_assumption;
             });
      `Continue
  end
  else
    match pick_branch s with
    | None -> `All_assigned
    | Some (v, value, kind) ->
      (* Phase saving: a variable that has been assigned before gets
         its remembered polarity, overriding the configured heuristic
         (which still picks the variable). *)
      let value =
        if s.cfg.phase_saving then (
          match s.saved_phase.(v) with
          | Value.Unassigned -> value
          | remembered ->
            s.stats.saved_phase_hits <- s.stats.saved_phase_hits + 1;
            remembered = Value.True)
        else value
      in
      s.stats.decisions <- s.stats.decisions + 1;
      (match s.on_decision with
      | Some hook -> hook v value
      | None -> ());
      Vec.push s.trail_lim (Vec.length s.trail);
      enqueue s (Lit.make v value) Arena.cref_undef;
      if s.tracer.Trace.active then
        Trace.emit s.tracer
          (Trace.Decide { level = decision_level s; var = v; value; kind });
      `Continue

(* Failed-core extraction: the assumption literal [false_lit] is
   falsified by the current trail; walk the implication graph back to
   the decisions (all of which are assumptions, since only assumption
   levels exist below the failure point) that force it. *)
let analyze_final s false_lit =
  let core = ref [ false_lit ] in
  let v0 = Lit.var (Lit.negate false_lit) in
  if s.level.(v0) > 0 then s.seen.(v0) <- true;
  for i = Vec.length s.trail - 1 downto 0 do
    let l = Vec.get s.trail i in
    let v = Lit.var l in
    if s.seen.(v) then begin
      let r = s.reason.(v) in
      if r = Arena.cref_undef then begin
        (* A decision below the failure point is itself an assumption
           literal: it belongs to the failed core. *)
        if s.level.(v) > 0 then core := l :: !core
      end
      else
        Arena.iter_lits s.arena r (fun q ->
            let u = Lit.var q in
            if u <> v && s.level.(u) > 0 then s.seen.(u) <- true);
      s.seen.(v) <- false
    end
  done;
  !core

(* ------------------------------------------------------------------ *)
(* Learnt-clause import (portfolio exchange).                          *)

(* Canonical dedup key: sorted literals, order- and duplicate-
   insensitive, so the same clause relayed twice (or learnt
   independently by two peers) lands at most once. *)
let import_key lits =
  let lits = List.sort_uniq Lit.compare (Array.to_list lits) in
  String.concat "," (List.map string_of_int lits)

(* Adopt a clause learnt by another solver.  The clause is a logical
   consequence of the shared formula, so this is sound at any time; it
   runs at decision level 0 (any pending search state is backtracked
   first) and reuses the mid-life [add_clause] simplification: clauses
   satisfied at level 0 are dropped, permanently-false literals
   filtered, units enqueued as top-level facts (with proof emission,
   like any other level-0 derivation), binaries routed to the
   implication index.  Landed clauses are learnt- and imported-flagged
   in the arena and pushed onto the learnt stack, so DB reduction,
   GC and the top-clause heuristic treat them like native learnt
   clauses; [Stats.clauses_imported] counts only clauses that actually
   land (post-simplification, post-dedup). *)
let import_clause s ~glue lits =
  if s.ok && Array.length lits > 0 then begin
    backtrack s 0;
    let key = import_key lits in
    if not (Hashtbl.mem s.import_seen key) then begin
      Hashtbl.add s.import_seen key ();
      let sorted = List.sort_uniq Lit.compare (Array.to_list lits) in
      let rec tautology = function
        | a :: (b :: _ as rest) -> Lit.var a = Lit.var b || tautology rest
        | _ -> false
      in
      if
        (not (tautology sorted))
        && (not (List.exists (fun l -> Lit.var l >= s.nvars) sorted))
        (* Foreign clauses over variables this worker eliminated are
           dropped: re-introducing an eliminated variable would
           invalidate the model-reconstruction stack. *)
        && (not (List.exists (fun l -> s.eliminated.(Lit.var l)) sorted))
        && not (List.exists (fun l -> lit_value s l = Value.True) sorted)
      then begin
        let rem = List.filter (fun l -> lit_value s l <> Value.False) sorted in
        let landed =
          match rem with
          | [] ->
            log_add s [||];
            s.ok <- false;
            s.verdict <- Some Unsat;
            true
          | [ l ] ->
            log_add s [| l |];
            enqueue s l Arena.cref_undef;
            true
          | rem ->
            let arr = Array.of_list rem in
            log_add s arr;
            let c = Arena.alloc ~imported:true s.arena ~learnt:true arr in
            s.stats.arena_bytes <- Arena.bytes s.arena;
            Vec.push s.learnt c;
            Vec.push s.learnt_glue glue;
            s.top_cursor <- Vec.length s.learnt - 1;
            if Vec.length s.learnt > s.stats.max_learnt_live then
              s.stats.max_learnt_live <- Vec.length s.learnt;
            Stats.note_live_clauses s.stats (s.n_original + Vec.length s.learnt);
            if Array.length arr = 2 then
              Binary.add s.binary ~cref:c arr.(0) arr.(1)
            else attach s c;
            true
        in
        if landed then begin
          s.stats.clauses_imported <- s.stats.clauses_imported + 1;
          if s.tracer.Trace.active then
            Trace.emit s.tracer
              (Trace.Share
                 { direction = Trace.S_import; size = List.length rem; glue })
        end
      end
    end
  end

(* Poll the import source (if any) and adopt everything it delivers.
   Called at restart boundaries, where the solver is at level 0 and
   the watch/binary structures are in their rebuild-friendly state. *)
let drain_imports s =
  match s.import_source with
  | None -> ()
  | Some f ->
    List.iter (fun (glue, lits) -> if s.ok then import_clause s ~glue lits) (f ())

(* ------------------------------------------------------------------ *)
(* Restarts.                                                           *)

let restart_due s =
  match s.cfg.restart_mode with
  | Config.No_restarts -> false
  | Config.Fixed n -> s.stats.conflicts - s.conflicts_at_restart >= n
  | Config.Luby unit ->
    s.stats.conflicts - s.conflicts_at_restart
    >= Luby.interval ~unit (s.restart_epoch + 1)

let restart s =
  s.stats.restarts <- s.stats.restarts + 1;
  s.restart_epoch <- s.restart_epoch + 1;
  (* The restart-sequence index: for Luby, the position whose term now
     sets the interval until the next restart; for fixed cadence it
     coincides with the restart count. *)
  s.stats.restart_seq_index <- s.restart_epoch;
  s.conflicts_at_restart <- s.stats.conflicts;
  backtrack s 0;
  if s.tracer.Trace.active then
    Trace.emit s.tracer
      (Trace.Restart
         {
           restart_no = s.stats.restarts;
           conflict_no = s.stats.conflicts;
           seq_index = s.restart_epoch;
         });
  reduce_db s;
  (* Inprocessing slots in after reduction (and its GC) so it works on
     the already-thinned database, and before the import drain so
     foreign clauses are never silently rewritten by a pass they
     arrived too late for. *)
  if s.cfg.simplify = Config.Simp_inprocess && s.ok then simplify_now s;
  (* Foreign learnt clauses enter last, at level 0: units become
     top-level facts immediately, and the next reduction judges them
     by the same age/activity rules as native clauses. *)
  drain_imports s

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

let create ?(config = Config.berkmin) cnf =
  let nvars = Cnf.num_vars cnf in
  let nlits = max (2 * nvars) 1 in
  let var_act = Array.make (max nvars 1) 0.0 in
  let heap =
    if config.Config.use_var_heap then
      Some (Var_heap.create ~num_vars:nvars ~activity:var_act)
    else None
  in
  let tracer = Trace.create () in
  (match config.Config.trace_jsonl with
  | Some path -> Trace.set_sink tracer (Trace.open_jsonl path)
  | None -> ());
  let s = {
    cfg = config;
    stats = Stats.create ();
    tracer;
    rng = Rng.create config.Config.seed;
    nvars;
    n_original = 0;
    arena = Arena.create ~capacity:4096 ();
    original = Vec.create ~dummy:Arena.cref_undef ();
    learnt = Vec.create ~dummy:Arena.cref_undef ();
    learnt_glue = Vec.create ~dummy:0 ();
    watches = Array.init nlits (fun _ -> Vec.create ~capacity:8 ~dummy:0 ());
    binary = Binary.create ~num_lits:nlits;
    assigns = Array.make (max nvars 1) Value.Unassigned;
    level = Array.make (max nvars 1) 0;
    reason = Array.make (max nvars 1) Arena.cref_undef;
    trail = Vec.create ~dummy:0 ();
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    bin_qhead = 0;
    top_cursor = -1;
    assign_epoch = 0;
    nb_memo = Array.make nlits 0;
    nb_memo_epoch = Array.make nlits (-1);
    var_act;
    lit_act = Array.make nlits 0;
    vsids = Array.make nlits 0.0;
    saved_phase = Array.make (max nvars 1) Value.Unassigned;
    seen = Array.make (max nvars 1) false;
    heap;
    assumptions = [||];
    last_core = None;
    old_threshold = config.Config.old_activity_threshold;
    restart_epoch = 0;
    conflicts_at_restart = 0;
    last_var_decay = 0;
    last_vsids_decay = 0;
    proof = None;
    on_decision = None;
    on_minimize = None;
    on_learn = None;
    import_source = None;
    import_seen = Hashtbl.create 64;
    verdict = None;
    eliminated = Array.make (max nvars 1) false;
    elim_stack = [];
    simplify_pre_done = false;
    ok = true;
  } in
  Cnf.iter
    (fun clause ->
      if not (Clause.is_tautology clause) then begin
        let lits = Clause.to_array clause in
        s.n_original <- s.n_original + 1;
        match Array.length lits with
        | 0 -> s.ok <- false
        | 1 -> (
          match lit_value s lits.(0) with
          | Value.True -> ()
          | Value.False -> s.ok <- false
          | Value.Unassigned -> enqueue s lits.(0) Arena.cref_undef)
        | 2 ->
          let c = Arena.alloc s.arena ~learnt:false lits in
          Vec.push s.original c;
          Binary.add s.binary ~cref:c lits.(0) lits.(1)
        | _ ->
          let c = Arena.alloc s.arena ~learnt:false lits in
          Vec.push s.original c;
          attach s c
      end)
    cnf;
  s.stats.arena_bytes <- Arena.bytes s.arena;
  Stats.note_live_clauses s.stats s.n_original;
  s

(* ------------------------------------------------------------------ *)
(* Watch-list invariant audit (tests).                                 *)

let watch_invariant_violations s =
  if not s.ok then []
  else begin
    let ar = s.arena in
    let errs = ref [] in
    let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
    Array.iteri
      (fun l ws ->
        let n = Vec.length ws in
        if n land 1 <> 0 then err "watch list of lit %d has odd length %d" l n;
        let i = ref 0 in
        while !i + 1 < n do
          let c = Vec.get ws (!i + 1) in
          if c < 0 || c >= Arena.size_words ar then
            err "lit %d: cref %d out of arena bounds" l c
          else if Arena.is_deleted ar c then
            err "lit %d: watches deleted cref %d" l c
          else begin
            let l0 = Arena.lit ar c 0 and l1 = Arena.lit ar c 1 in
            if l <> l0 && l <> l1 then
              err "lit %d: watches cref %d whose watch slots hold %d/%d" l c l0
                l1
          end;
          i := !i + 2
        done)
      s.watches;
    let count_watchers lit c =
      let ws = s.watches.(lit) in
      let n = Vec.length ws in
      let cnt = ref 0 in
      let i = ref 0 in
      while !i + 1 < n do
        if Vec.get ws (!i + 1) = c then incr cnt;
        i := !i + 2
      done;
      !cnt
    in
    let count_binary_entries lit c =
      let bs = Binary.implications s.binary lit in
      let n = Vec.length bs in
      let cnt = ref 0 in
      let i = ref 0 in
      while !i + 1 < n do
        if Vec.get bs (!i + 1) = c then incr cnt;
        i := !i + 2
      done;
      !cnt
    in
    let bcp_done = decision_level s = 0 && s.qhead = Vec.length s.trail in
    let check_clause c =
      if (not (Arena.is_deleted ar c)) && Arena.clause_size ar c = 2 then begin
        (* Binary clauses: indexed once in each direction, never
           watched. *)
        let l0 = Arena.lit ar c 0 and l1 = Arena.lit ar c 1 in
        if count_watchers l0 c + count_watchers l1 c <> 0 then
          err "binary cref %d appears in a watch list" c;
        let n0 = count_binary_entries (Lit.negate l0) c
        and n1 = count_binary_entries (Lit.negate l1) c in
        if n0 <> 1 || n1 <> 1 then
          err "binary cref %d index entries %d/%d (expected 1/1)" c n0 n1
      end
      else if (not (Arena.is_deleted ar c)) && Arena.clause_size ar c > 2
      then begin
        let l0 = Arena.lit ar c 0 and l1 = Arena.lit ar c 1 in
        let n0 = count_watchers l0 c and n1 = count_watchers l1 c in
        let sat0 = satisfied_at_level0 s c in
        if n0 = 0 && n1 = 0 then begin
          if not sat0 then
            err "cref %d is unattached but not satisfied at level 0" c
        end
        else if n0 <> 1 || n1 <> 1 then
          err "cref %d watcher counts %d/%d (expected 1/1)" c n0 n1
        else if bcp_done && not sat0 then begin
          if lit_value s l0 = Value.False then
            err "cref %d: watch 0 (lit %d) is false at level 0" c l0;
          if lit_value s l1 = Value.False then
            err "cref %d: watch 1 (lit %d) is false at level 0" c l1
        end
      end
    in
    Vec.iter check_clause s.original;
    Vec.iter check_clause s.learnt;
    (* Every index entry must describe a live 2-clause whose literals
       match the arena copy. *)
    Binary.iter_entries s.binary (fun src implied c ->
        if c < 0 || c >= Arena.size_words ar then
          err "binary index: cref %d out of arena bounds" c
        else if Arena.is_deleted ar c then
          err "binary index: entry for deleted cref %d" c
        else if Arena.clause_size ar c <> 2 then
          err "binary index: cref %d has size %d" c (Arena.clause_size ar c)
        else begin
          let l0 = Arena.lit ar c 0 and l1 = Arena.lit ar c 1 in
          let a = Lit.negate src in
          if not ((a = l0 && implied = l1) || (a = l1 && implied = l0)) then
            err "binary index: entry (%d -> %d) does not match cref %d" src
              implied c
        end);
    List.rev !errs
  end

(* ------------------------------------------------------------------ *)
(* Main search loop.                                                   *)

let over_budget s budget started =
  (match budget.max_conflicts with
  | Some m -> s.stats.conflicts >= m
  | None -> false)
  ||
  match budget.max_seconds with
  | Some secs -> Sys.time () -. started > secs
  | None -> false

let extract_model s =
  (* [assigns] is padded to length >= 1 even for empty formulas, so
     build the model from the true variable count. *)
  let m =
    Array.init s.nvars (fun v ->
        match s.assigns.(v) with
        | Value.True -> true
        | Value.False -> false
        | Value.Unassigned ->
          (* Only variables removed by BVE may be unassigned in a
             complete assignment; the reconstruction pass below picks
             their value from the clauses they were resolved out of. *)
          assert s.eliminated.(v);
          false)
  in
  if s.elim_stack <> [] then Berkmin_simplify.Recon.extend s.elim_stack m;
  m

(* The main CDCL loop.  Returns an extended verdict so the assumption
   interface can distinguish conditional unsatisfiability. *)
let search s budget =
  let started = Sys.time () in
  let verdict = ref None in
  let iter = ref 0 in
  let profile = s.cfg.profile_timers in
  while !verdict = None do
    incr iter;
    let confl =
      if profile then begin
        let t0 = Sys.time () in
        let r = propagate s in
        s.stats.time_bcp <- s.stats.time_bcp +. (Sys.time () -. t0);
        r
      end
      else propagate s
    in
    if confl <> Arena.cref_undef then begin
      s.stats.conflicts <- s.stats.conflicts + 1;
      let dl = decision_level s in
      if s.tracer.Trace.active then begin
        Trace.emit s.tracer
          (Trace.Conflict { level = dl; conflict_no = s.stats.conflicts });
        if s.cfg.heartbeat_interval > 0
           && s.stats.conflicts mod s.cfg.heartbeat_interval = 0
        then
          Trace.emit s.tracer
            (Trace.Heartbeat
               {
                 conflict_no = s.stats.conflicts;
                 decisions = s.stats.decisions;
                 propagations = s.stats.propagations;
                 learnt_live = Vec.length s.learnt;
                 seconds = Sys.time () -. started;
               })
      end;
      if dl = 0 then begin
        log_add s [||];
        verdict := Some `Unsat
      end
      else begin
        (* Conflicts inside the assumption prefix analyze normally:
           the learnt clause backjumps and may flip an assumption's
           value at a lower level, in which case the next [decide]
           reports the failed assumption. *)
        let lits, bt, glue =
          if profile then begin
            let t0 = Sys.time () in
            let r = analyze s confl in
            s.stats.time_analyze <-
              s.stats.time_analyze +. (Sys.time () -. t0);
            r
          end
          else analyze s confl
        in
        if s.tracer.Trace.active then begin
          Trace.emit s.tracer
            (Trace.Learn
               {
                 size = Array.length lits;
                 asserting = lits.(0);
                 backjump_level = bt;
               });
          Trace.emit s.tracer (Trace.Backjump { from_level = dl; to_level = bt })
        end;
        backtrack s bt;
        record_learnt s ~glue lits;
        maybe_decay s;
        if restart_due s then begin
          restart s;
          if not s.ok then begin
            log_add s [||];
            verdict := Some `Unsat
          end
        end
      end
    end
    else if !iter land 63 = 0 && over_budget s budget started then
      verdict := Some `Unknown
    else (
      match decide s with
      | `All_assigned -> verdict := Some (`Sat (extract_model s))
      | `Assumption_failed l ->
        verdict := Some (`Unsat_assuming (analyze_final s l))
      | `Continue -> ())
  done;
  Option.get !verdict

let to_plain = function
  | `Sat m -> Sat m
  | `Unsat -> Unsat
  | `Unknown -> Unknown
  | `Unsat_assuming _ -> assert false (* impossible without assumptions *)

(* The pre-search simplification pass: once per solver, in both [pre]
   and [inprocess] modes, with [s.assumptions] already in place so
   assumption variables are frozen. *)
let maybe_presimplify s =
  if s.cfg.simplify <> Config.Simp_off && not s.simplify_pre_done then begin
    s.simplify_pre_done <- true;
    backtrack s 0;
    simplify_now s
  end

let solve_plain ?(budget = no_budget) s =
  match s.verdict with
  | Some (Sat _ | Unsat) -> Option.get s.verdict
  | Some Unknown | None ->
    if not s.ok then begin
      log_add s [||];
      s.verdict <- Some Unsat;
      Unsat
    end
    else begin
      s.assumptions <- [||];
      maybe_presimplify s;
      if not s.ok then begin
        log_add s [||];
        s.verdict <- Some Unsat;
        Unsat
      end
      else begin
        let r = to_plain (search s budget) in
        s.verdict <- Some r;
        r
      end
    end

type assumption_result =
  | A_sat of bool array
  | A_unsat
  | A_unsat_assuming of Lit.t list
  | A_unknown

let solve_with_assumptions ?(budget = no_budget) s assumptions =
  match s.verdict with
  | Some Unsat -> A_unsat
  | Some (Sat _ | Unknown) | None ->
    if not s.ok then begin
      s.verdict <- Some Unsat;
      A_unsat
    end
    else begin
      List.iter
        (fun l ->
          if Lit.var l >= s.nvars then
            invalid_arg "solve_with_assumptions: unknown variable";
          if s.eliminated.(Lit.var l) then
            invalid_arg
              "solve_with_assumptions: variable eliminated by simplification")
        assumptions;
      backtrack s 0;
      s.assumptions <- Array.of_list assumptions;
      maybe_presimplify s;
      let result =
        if s.ok then search s budget
        else begin
          log_add s [||];
          `Unsat
        end
      in
      s.assumptions <- [||];
      let answer =
        match result with
        | `Sat m -> A_sat m
        | `Unsat ->
          s.verdict <- Some Unsat;
          A_unsat
        | `Unsat_assuming core -> A_unsat_assuming core
        | `Unknown -> A_unknown
      in
      backtrack s 0;
      (* A cached SAT verdict from a plain [solve] no longer reflects
         the trail once we have backtracked; drop everything except a
         definitive UNSAT. *)
      (match s.verdict with
      | Some Unsat -> ()
      | Some (Sat _ | Unknown) | None -> s.verdict <- None);
      answer
    end

(* ------------------------------------------------------------------ *)
(* Incremental interface (MiniSat shape): [new_var] and [add_clause]
   between solves, [solve ~assumps] with failed-core extraction,
   [solve_limited] under a per-call conflict budget.  All learnt
   clauses, variable/literal activities and polarity counters persist
   across calls — that retention is the whole point: related queries
   amortize each other's search. *)

(* Widen every per-variable and per-literal array to cover [n]
   variables.  Replaced arrays are re-announced to the heap (its key
   array is ours). *)
let ensure_var_capacity s n =
  let grow_arr a fill cap =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 (Array.length a);
    b
  in
  let vcap = Array.length s.assigns in
  if n > vcap then begin
    let cap = max n (2 * vcap) in
    s.assigns <- grow_arr s.assigns Value.Unassigned cap;
    s.level <- grow_arr s.level 0 cap;
    s.reason <- grow_arr s.reason Arena.cref_undef cap;
    s.seen <- grow_arr s.seen false cap;
    s.eliminated <- grow_arr s.eliminated false cap;
    s.saved_phase <- grow_arr s.saved_phase Value.Unassigned cap;
    s.var_act <- grow_arr s.var_act 0.0 cap
  end;
  let lcap = Array.length s.lit_act in
  if 2 * n > lcap then begin
    let cap = max (2 * n) (2 * lcap) in
    s.lit_act <- grow_arr s.lit_act 0 cap;
    s.vsids <- grow_arr s.vsids 0.0 cap;
    s.nb_memo <- grow_arr s.nb_memo 0 cap;
    s.nb_memo_epoch <- grow_arr s.nb_memo_epoch (-1) cap;
    let watches =
      Array.init cap (fun i ->
          if i < Array.length s.watches then s.watches.(i)
          else Vec.create ~capacity:8 ~dummy:0 ())
    in
    s.watches <- watches
  end

(* A definitive UNSAT is monotone under clause/variable addition and is
   kept; any other cached verdict is stale once the formula changes. *)
let invalidate_verdict s =
  match s.verdict with
  | Some Unsat -> ()
  | Some (Sat _ | Unknown) | None -> s.verdict <- None

let new_var s =
  backtrack s 0;
  invalidate_verdict s;
  let v = s.nvars in
  ensure_var_capacity s (v + 1);
  s.nvars <- v + 1;
  Binary.grow s.binary ~num_lits:(2 * s.nvars);
  (match s.heap with
  | Some h ->
    Var_heap.grow h ~num_vars:s.nvars ~activity:s.var_act;
    Var_heap.push h v
  | None -> ());
  v

let add_clause s lits =
  List.iter
    (fun l ->
      if l < 0 || Lit.var l >= s.nvars then
        invalid_arg "Solver.add_clause: unknown variable";
      if s.eliminated.(Lit.var l) then
        invalid_arg "Solver.add_clause: variable eliminated by simplification")
    lits;
  match s.verdict with
  | Some Unsat -> ()  (* permanently unsatisfiable; the clause is moot *)
  | Some (Sat _ | Unknown) | None ->
    s.verdict <- None;
    if s.ok then begin
      backtrack s 0;
      let lits = List.sort_uniq Lit.compare lits in
      (* Sorted packed literals put the two phases of a variable next
         to each other, so a tautology shows as adjacent equal vars. *)
      let rec tautology = function
        | a :: (b :: _ as rest) -> Lit.var a = Lit.var b || tautology rest
        | _ -> false
      in
      if not (tautology lits) then begin
        s.n_original <- s.n_original + 1;
        if not (List.exists (fun l -> lit_value s l = Value.True) lits) then begin
          (* Unlike load time, the level-0 trail is already propagated
             (BCP will never revisit it), so literals false at level 0
             must be dropped now: a fresh watch on one would go stale
             silently.  They are false forever, so this preserves the
             clause's meaning. *)
          let rem = List.filter (fun l -> lit_value s l <> Value.False) lits in
          match rem with
          | [] ->
            log_add s [||];
            s.ok <- false;
            s.verdict <- Some Unsat
          | [ l ] -> enqueue s l Arena.cref_undef
          | [ a; b ] ->
            let c = Arena.alloc s.arena ~learnt:false [| a; b |] in
            Vec.push s.original c;
            Binary.add s.binary ~cref:c a b;
            s.stats.arena_bytes <- Arena.bytes s.arena;
            Stats.note_live_clauses s.stats (s.n_original + Vec.length s.learnt)
          | rem ->
            let c = Arena.alloc s.arena ~learnt:false (Array.of_list rem) in
            Vec.push s.original c;
            attach s c;
            s.stats.arena_bytes <- Arena.bytes s.arena;
            Stats.note_live_clauses s.stats (s.n_original + Vec.length s.learnt)
        end
      end
    end

(* ------------------------------------------------------------------ *)
(* Bulk load: the formula streamed straight from DIMACS into the
   solver, bypassing the [Cnf.t] round-trip entirely.  The [p cnf V C]
   header pre-sizes every per-variable structure and the arena in one
   step, so the load loop allocates nothing but the clauses themselves;
   each clause goes from the parser's scratch buffer into the arena
   with one [Array.blit].  The result is indistinguishable from
   [create (Dimacs.parse_* ...)]: same normalization (sort, dedup,
   tautology drop), same unit handling, same counters — only cheaper. *)

(* Mirror [Clause.of_array]'s normalization, in place on the scratch
   prefix.  Clauses are short; insertion sort wins below ~32 literals
   and degenerate wide clauses fall back to [Array.sort] on a copy. *)
let sort_lits_prefix lits n =
  if n > 32 then begin
    let sub = Array.sub lits 0 n in
    Array.sort Int.compare sub;
    Array.blit sub 0 lits 0 n
  end
  else
    for i = 1 to n - 1 do
      let x = lits.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && lits.(!j) > x do
        lits.(!j + 1) <- lits.(!j);
        decr j
      done;
      lits.(!j + 1) <- x
    done

let dedup_lits_prefix lits n =
  if n = 0 then 0
  else begin
    let m = ref 1 in
    for i = 1 to n - 1 do
      if lits.(i) <> lits.(!m - 1) then begin
        lits.(!m) <- lits.(i);
        incr m
      end
    done;
    !m
  end

(* Sorted and deduped, so both phases of a variable are adjacent. *)
let sorted_prefix_tautology lits m =
  let rec go i =
    i + 1 < m && (Lit.var lits.(i) = Lit.var lits.(i + 1) || go (i + 1))
  in
  go 0

(* Arena pre-sizing guess: header + 4 literals per declared clause
   (generous for random 3-SAT and typical industrial width); an
   undershoot just falls back to the doubling ladder from there. *)
let presize_clause_words = Arena.header_words + 4

let load ?config source =
  let t0 = Unix.gettimeofday () in
  let s = create ?config (Cnf.create ()) in
  let literals = ref 0 in
  let stored = ref 0 in
  (* Headered files declare all variables once; headerless files grow
     them as clauses mention them (matching [Cnf.ensure_vars]). *)
  let declare_vars v =
    if v > s.nvars then begin
      ensure_var_capacity s v;
      s.nvars <- v;
      Binary.grow s.binary ~num_lits:(2 * v);
      match s.heap with
      | Some h -> Var_heap.bulk_grow h ~num_vars:v ~activity:s.var_act
      | None -> ()
    end
  in
  let on_header ~vars ~clauses =
    declare_vars vars;
    Arena.ensure_capacity s.arena
      ~words:(Arena.capacity_words s.arena + (clauses * presize_clause_words));
    Vec.reserve s.original clauses
  in
  let (), scratch_words =
    Dimacs.fold_clauses_scratch ~on_header source ~init:()
      ~f:(fun () lits n ->
        literals := !literals + n;
        let maxv = ref 0 in
        for j = 0 to n - 1 do
          let v = Lit.var lits.(j) + 1 in
          if v > !maxv then maxv := v
        done;
        declare_vars !maxv;
        sort_lits_prefix lits n;
        let m = dedup_lits_prefix lits n in
        if not (sorted_prefix_tautology lits m) then begin
          s.n_original <- s.n_original + 1;
          incr stored;
          match m with
          | 0 -> s.ok <- false
          | 1 -> (
            match lit_value s lits.(0) with
            | Value.True -> ()
            | Value.False -> s.ok <- false
            | Value.Unassigned -> enqueue s lits.(0) Arena.cref_undef)
          | 2 ->
            let c = Arena.alloc_sub s.arena ~learnt:false lits ~len:2 in
            Vec.push s.original c;
            Binary.add s.binary ~cref:c lits.(0) lits.(1)
          | _ ->
            (* Attachment is deferred: pushing two watchers per clause
               into randomly-addressed, growth-reallocating lists while
               streaming is the bulk path's hottest cost.  The arena
               already holds everything a later pass needs. *)
            let c = Arena.alloc_sub s.arena ~learnt:false lits ~len:m in
            Vec.push s.original c
        end)
  in
  (* Bulk attachment, clause order preserved so the watch lists come
     out element-for-element identical to [create]'s: one sequential
     pass counts watchers per literal, [Vec.reserve] sizes every list
     exactly, and the attach pass then never reallocates. *)
  let counts = Array.make (2 * s.nvars) 0 in
  Vec.iter
    (fun c ->
      if Arena.clause_size s.arena c >= 3 then begin
        (* each watcher is two ints: blocker + cref *)
        let l0 = Arena.lit s.arena c 0 and l1 = Arena.lit s.arena c 1 in
        counts.(l0) <- counts.(l0) + 2;
        counts.(l1) <- counts.(l1) + 2
      end)
    s.original;
  for l = 0 to (2 * s.nvars) - 1 do
    if counts.(l) > 0 then
      Vec.reserve s.watches.(l) (Vec.length s.watches.(l) + counts.(l))
  done;
  Vec.iter
    (fun c -> if Arena.clause_size s.arena c >= 3 then attach s c)
    s.original;
  s.stats.arena_bytes <- Arena.bytes s.arena;
  Stats.note_live_clauses s.stats s.n_original;
  s.stats.load_clauses <- !stored;
  s.stats.load_literals <- !literals;
  s.stats.load_scratch_words <- scratch_words;
  s.stats.time_load <- Unix.gettimeofday () -. t0;
  if Trace.active s.tracer then
    Trace.emit s.tracer
      (Trace.Load
         {
           vars = s.nvars;
           clauses = !stored;
           literals = !literals;
           seconds = s.stats.time_load;
           arena_bytes = Arena.bytes s.arena;
           scratch_words;
         });
  s

let load_string ?config text = load ?config (Dimacs.From_string text)

let load_file ?config path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> load ?config (Dimacs.From_channel ic))

let solve ?budget ?(assumps = []) s =
  match assumps with
  | [] ->
    s.last_core <- None;
    solve_plain ?budget s
  | assumps -> (
    match solve_with_assumptions ?budget s assumps with
    | A_sat m ->
      s.last_core <- None;
      Sat m
    | A_unsat ->
      s.last_core <- Some [];
      Unsat
    | A_unsat_assuming core ->
      s.last_core <- Some core;
      Unsat
    | A_unknown ->
      s.last_core <- None;
      Unknown)

let solve_limited ?(assumps = []) s ~conflicts =
  if conflicts < 0 then invalid_arg "Solver.solve_limited: negative budget";
  (* [budget.max_conflicts] is absolute (cumulative across the solver's
     lifetime); incremental callers think per call, so convert. *)
  let budget =
    { max_conflicts = Some (s.stats.conflicts + conflicts); max_seconds = None }
  in
  solve ~budget ~assumps s

let unsat_core s = s.last_core

let simplify s =
  invalidate_verdict s;
  backtrack s 0;
  simplify_now s;
  if not s.ok then begin
    log_add s [||];
    s.verdict <- Some Unsat
  end

let num_eliminated_vars s =
  let n = ref 0 in
  Array.iter (fun e -> if e then incr n) s.eliminated;
  !n

let check_model cnf m = Cnf.satisfied_by cnf m

let solve_cnf ?config ?budget cnf = solve ?budget (create ?config cnf)

let pp_result fmt = function
  | Sat _ -> Format.pp_print_string fmt "SATISFIABLE"
  | Unsat -> Format.pp_print_string fmt "UNSATISFIABLE"
  | Unknown -> Format.pp_print_string fmt "UNKNOWN"

(* ------------------------------------------------------------------ *)
(* Metrics view: pull-based gauges over the live solver, so sampling
   costs nothing until somebody reads the registry.                    *)

let metrics s =
  let m = Metrics.create () in
  let st = s.stats in
  let int_gauge name f = ignore (Metrics.gauge m name (fun () -> float_of_int (f ()))) in
  int_gauge "decisions" (fun () -> st.Stats.decisions);
  int_gauge "top_clause_decisions" (fun () -> st.Stats.top_clause_decisions);
  int_gauge "global_decisions" (fun () -> st.Stats.global_decisions);
  int_gauge "conflicts" (fun () -> st.Stats.conflicts);
  int_gauge "propagations" (fun () -> st.Stats.propagations);
  int_gauge "binary_propagations" (fun () -> st.Stats.binary_propagations);
  int_gauge "binary_conflicts" (fun () -> st.Stats.binary_conflicts);
  int_gauge "watcher_visits" (fun () -> st.Stats.watcher_visits);
  int_gauge "blocker_hits" (fun () -> st.Stats.blocker_hits);
  int_gauge "top_cursor_steps" (fun () -> st.Stats.top_cursor_steps);
  int_gauge "nb_two_cache_hits" (fun () -> st.Stats.nb_two_cache_hits);
  int_gauge "clauses_exported" (fun () -> st.Stats.clauses_exported);
  int_gauge "clauses_imported" (fun () -> st.Stats.clauses_imported);
  int_gauge "imports_used_in_conflict" (fun () ->
      st.Stats.imports_used_in_conflict);
  int_gauge "binary_index_entries" (fun () -> Binary.num_entries s.binary);
  int_gauge "restarts" (fun () -> st.Stats.restarts);
  int_gauge "reductions" (fun () -> st.Stats.reductions);
  int_gauge "simplify_runs" (fun () -> st.Stats.simplify_runs);
  int_gauge "simplified_clauses" (fun () -> st.Stats.simplified_clauses);
  int_gauge "eliminated_vars" (fun () -> st.Stats.eliminated_vars);
  int_gauge "subsumed" (fun () -> st.Stats.subsumed);
  int_gauge "strengthened" (fun () -> st.Stats.strengthened);
  int_gauge "failed_literals" (fun () -> st.Stats.failed_literals);
  int_gauge "gc_runs" (fun () -> st.Stats.gc_runs);
  int_gauge "gc_reclaimed_bytes" (fun () -> st.Stats.gc_reclaimed_bytes);
  int_gauge "arena_bytes" (fun () -> Arena.bytes s.arena);
  int_gauge "arena_wasted_bytes" (fun () -> Arena.wasted_bytes s.arena);
  int_gauge "learnt_total" (fun () -> st.Stats.learnt_total);
  int_gauge "learnt_literals" (fun () -> st.Stats.learnt_literals);
  int_gauge "minimized_literals" (fun () -> st.Stats.minimized_literals);
  int_gauge "saved_phase_hits" (fun () -> st.Stats.saved_phase_hits);
  int_gauge "restart_seq_index" (fun () -> st.Stats.restart_seq_index);
  int_gauge "glue_reduction_kept" (fun () -> st.Stats.glue_reduction_kept);
  int_gauge "glue_reduction_dropped" (fun () ->
      st.Stats.glue_reduction_dropped);
  int_gauge "removed_clauses" (fun () -> st.Stats.removed_clauses);
  int_gauge "max_live_clauses" (fun () -> st.Stats.max_live_clauses);
  int_gauge "learnt_live" (fun () -> Vec.length s.learnt);
  int_gauge "original_clauses" (fun () -> s.n_original);
  int_gauge "decision_level" (fun () -> decision_level s);
  int_gauge "old_activity_threshold" (fun () -> s.old_threshold);
  int_gauge "trace_events" (fun () -> Trace.emitted s.tracer);
  int_gauge "load_clauses" (fun () -> st.Stats.load_clauses);
  int_gauge "load_literals" (fun () -> st.Stats.load_literals);
  int_gauge "load_scratch_words" (fun () -> st.Stats.load_scratch_words);
  ignore (Metrics.gauge m "time_bcp_seconds" (fun () -> st.Stats.time_bcp));
  ignore
    (Metrics.gauge m "time_analyze_seconds" (fun () -> st.Stats.time_analyze));
  ignore
    (Metrics.gauge m "time_reduce_seconds" (fun () -> st.Stats.time_reduce));
  ignore (Metrics.gauge m "time_load_seconds" (fun () -> st.Stats.time_load));
  m
