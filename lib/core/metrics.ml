open Berkmin_types

type counter = {
  c_name : string;
  mutable c_value : int;
}

type gauge = {
  g_name : string;
  g_read : unit -> float;
}

type timer = {
  t_name : string;
  t_clock : unit -> float;
  mutable t_total : float;
  mutable t_samples : int;
  mutable t_started : float;
  mutable t_running : bool;
}

type t = {
  mutable counters : counter list;  (* newest first; snapshots reverse *)
  mutable gauges : gauge list;
  mutable timers : timer list;
}

let create () = { counters = []; gauges = []; timers = [] }

exception Duplicate_name of string

let check_fresh t name =
  let taken =
    List.exists (fun c -> c.c_name = name) t.counters
    || List.exists (fun g -> g.g_name = name) t.gauges
    || List.exists (fun tm -> tm.t_name = name) t.timers
  in
  if taken then raise (Duplicate_name name)

let counter t name =
  match List.find_opt (fun c -> c.c_name = name) t.counters with
  | Some c -> c
  | None ->
    check_fresh t name;
    let c = { c_name = name; c_value = 0 } in
    t.counters <- c :: t.counters;
    c

let gauge t name read =
  check_fresh t name;
  let g = { g_name = name; g_read = read } in
  t.gauges <- g :: t.gauges;
  g

let timer ?(clock = Sys.time) t name =
  match List.find_opt (fun tm -> tm.t_name = name) t.timers with
  | Some tm -> tm
  | None ->
    check_fresh t name;
    let tm = {
      t_name = name;
      t_clock = clock;
      t_total = 0.0;
      t_samples = 0;
      t_started = 0.0;
      t_running = false;
    } in
    t.timers <- tm :: t.timers;
    tm

(* Counter operations: a field increment each, cheap enough for hot
   loops when the handle is resolved once up front. *)
let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value
let counter_name c = c.c_name

let gauge_name g = g.g_name
let read g = g.g_read ()

let start tm =
  if not tm.t_running then begin
    tm.t_running <- true;
    tm.t_started <- tm.t_clock ()
  end

let stop tm =
  if tm.t_running then begin
    tm.t_running <- false;
    tm.t_total <- tm.t_total +. (tm.t_clock () -. tm.t_started);
    tm.t_samples <- tm.t_samples + 1
  end

let time tm f =
  start tm;
  match f () with
  | result ->
    stop tm;
    result
  | exception e ->
    stop tm;
    raise e

let total tm = tm.t_total
let samples tm = tm.t_samples
let timer_name tm = tm.t_name

let find_counter t name = List.find_opt (fun c -> c.c_name = name) t.counters
let find_timer t name = List.find_opt (fun tm -> tm.t_name = name) t.timers

let reset t =
  List.iter (fun c -> c.c_value <- 0) t.counters;
  List.iter
    (fun tm ->
      tm.t_total <- 0.0;
      tm.t_samples <- 0;
      tm.t_running <- false)
    t.timers

(* Registration order (oldest first) keeps snapshots stable. *)
let snapshot t =
  List.rev_map (fun c -> (c.c_name, float_of_int c.c_value)) t.counters
  @ List.rev_map (fun g -> (g.g_name, g.g_read ())) t.gauges
  @ List.rev_map (fun tm -> (tm.t_name ^ "_seconds", tm.t_total)) t.timers

let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.rev_map (fun c -> (c.c_name, Json.Int c.c_value)) t.counters)
      );
      ( "gauges",
        Json.Obj
          (List.rev_map (fun g -> (g.g_name, Json.Float (g.g_read ()))) t.gauges)
      );
      ( "timers",
        Json.Obj
          (List.rev_map
             (fun tm ->
               ( tm.t_name,
                 Json.Obj
                   [
                     "total_seconds", Json.Float tm.t_total;
                     "samples", Json.Int tm.t_samples;
                   ] ))
             t.timers) );
    ]
