(** Dedicated binary-clause implication layer.

    Two-literal clauses never earn their keep in the generic
    two-watched-literal machinery: a binary clause [(a v b)] has no
    third literal to migrate a watch to, so every BCP visit either
    finds it satisfied or immediately implies/falsifies the other
    literal.  Routing them through the watch lists still costs a
    watcher pair, a blocker check and — on a miss — an arena header
    read per visit.

    This module stores the same information as per-literal packed
    implication arrays instead: for every clause [(a v b)] the index
    records, under literal [~a], the pair [(b, cref)] — "when [~a]
    becomes true (i.e. [a] becomes false), [b] is implied with reason
    [cref]" — and symmetrically under [~b].  Draining the implications
    of a newly assigned literal then reads one flat [int] vector:
    no watch-list compaction, no arena reads, no allocation.

    The clauses themselves still live in the {!Arena} (conflict
    analysis and proof logging need their literals, and reasons are
    crefs), but BCP never touches it for binary propagation: the
    implied literal is stored in the index next to the cref.

    The index also doubles as the static neighbourhood structure of
    the paper's [nb_two] polarity heuristic (Section 7): the entries
    under [~l] are exactly the stored 2-clauses containing [l]. *)

open Berkmin_types

type t

val create : num_lits:int -> t
(** An empty index over literals [0 .. num_lits - 1]. *)

val grow : t -> num_lits:int -> unit
(** Widens the per-literal index to cover [0 .. num_lits - 1] (no-op
    when already large enough).  Existing entries are untouched — the
    incremental [new_var] hook. *)

val add : t -> cref:int -> Lit.t -> Lit.t -> unit
(** [add t ~cref a b] registers the stored clause [(a v b)] (cref is
    its arena address): [(b, cref)] under [negate a] and [(a, cref)]
    under [negate b]. *)

val clear : t -> unit
(** Drop every entry (capacity retained).  Used by the simplifier's
    database rebuild, which re-adds every surviving 2-clause. *)

val implications : t -> Lit.t -> int Vec.t
(** [implications t p] is the packed implication vector consulted when
    [p] becomes true: stride-2 [(implied_lit, cref)] pairs, one per
    stored binary clause containing [negate p].  Exposed as the raw
    vector so the BCP hot loop can iterate it without allocation;
    callers must not mutate it. *)

val num_entries : t -> int
(** Live [(implied_lit, cref)] pairs in the index — two per registered
    clause. *)

val iter_entries : t -> (Lit.t -> Lit.t -> int -> unit) -> unit
(** [iter_entries t f] calls [f source implied cref] for every pair:
    the clause [(negate source v implied)] at [cref].  For audits and
    tests. *)

val filter_reloc : t -> dead:(int -> bool) -> reloc:(int -> int) -> unit
(** GC hook: drops every pair whose cref satisfies [dead] and rewrites
    the survivors' crefs through [reloc], in place.  Mirrors the watch
    lists' pass in the arena-compaction protocol. *)
