type t = {
  mutable data : int array;
  mutable size : int;
  mutable wasted : int;
}

type cref = int

let cref_undef = -1
let header_words = 2
let lits_offset = header_words

(* Header word layout:
   size lsl 4 | imported(8) | relocated(4) | deleted(2) | learnt(1). *)
let learnt_bit = 1
let deleted_bit = 2
let relocated_bit = 4
let imported_bit = 8
let size_shift = 4

let create ?(capacity = 1024) () =
  { data = Array.make (max capacity 16) 0; size = 0; wasted = 0 }

let ensure a extra =
  let needed = a.size + extra in
  let cap = Array.length a.data in
  if needed > cap then begin
    let cap' = ref cap in
    while needed > !cap' do
      cap' := 2 * !cap'
    done;
    let data = Array.make !cap' 0 in
    Array.blit a.data 0 data 0 a.size;
    a.data <- data
  end

(* Bulk loading pre-sizes from the [p cnf V C] header so the load loop
   never reallocates; a single grow to the exact target beats the
   doubling ladder (each rung of which copies everything so far). *)
let ensure_capacity a ~words =
  if words > Array.length a.data then begin
    let data = Array.make words 0 in
    Array.blit a.data 0 data 0 a.size;
    a.data <- data
  end

let capacity_words a = Array.length a.data

let alloc_sub ?(imported = false) a ~learnt lits ~len =
  if len < 1 then invalid_arg "Arena.alloc: empty clause";
  ensure a (len + header_words);
  let c = a.size in
  a.data.(c) <-
    (len lsl size_shift)
    lor (if learnt then learnt_bit else 0)
    lor (if imported then imported_bit else 0);
  a.data.(c + 1) <- 0;
  Array.blit lits 0 a.data (c + lits_offset) len;
  a.size <- a.size + len + header_words;
  c

let alloc ?imported a ~learnt lits =
  alloc_sub ?imported a ~learnt lits ~len:(Array.length lits)

let clause_size a c = a.data.(c) lsr size_shift
let clause_words a c = clause_size a c + header_words
let is_learnt a c = a.data.(c) land learnt_bit <> 0
let is_deleted a c = a.data.(c) land deleted_bit <> 0
let is_imported a c = a.data.(c) land imported_bit <> 0
let relocated a c = a.data.(c) land relocated_bit <> 0

let activity a c = a.data.(c + 1)
let set_activity a c v = a.data.(c + 1) <- v
let bump_activity a c = a.data.(c + 1) <- a.data.(c + 1) + 1

let lit a c j = a.data.(c + lits_offset + j)
let set_lit a c j l = a.data.(c + lits_offset + j) <- l

let swap_lits a c i j =
  let base = c + lits_offset in
  let tmp = a.data.(base + i) in
  a.data.(base + i) <- a.data.(base + j);
  a.data.(base + j) <- tmp

let lits_array a c = Array.sub a.data (c + lits_offset) (clause_size a c)

let exists_lit a c p =
  let n = clause_size a c in
  let rec loop j = j < n && (p a.data.(c + lits_offset + j) || loop (j + 1)) in
  loop 0

let for_all_lits a c p = not (exists_lit a c (fun l -> not (p l)))

let iter_lits a c f =
  for j = 0 to clause_size a c - 1 do
    f a.data.(c + lits_offset + j)
  done

let free a c =
  if not (is_deleted a c) then begin
    a.data.(c) <- a.data.(c) lor deleted_bit;
    a.wasted <- a.wasted + clause_words a c
  end

let size_words a = a.size
let wasted_words a = a.wasted
let live_words a = a.size - a.wasted

let bytes_per_word = Sys.word_size / 8
let bytes a = a.size * bytes_per_word
let wasted_bytes a = a.wasted * bytes_per_word
let live_bytes a = (a.size - a.wasted) * bytes_per_word

let reloc a ~into c =
  if relocated a c then a.data.(c + 1)
  else begin
    assert (not (is_deleted a c));
    let n = clause_size a c in
    ensure into (n + header_words);
    let c' = into.size in
    (* Copy header (flags are clean: not deleted, not relocated),
       activity and literals verbatim. *)
    Array.blit a.data c into.data c' (n + header_words);
    into.size <- into.size + n + header_words;
    a.data.(c) <- a.data.(c) lor relocated_bit;
    a.data.(c + 1) <- c';
    c'
  end

let commit a ~into =
  a.data <- into.data;
  a.size <- into.size;
  a.wasted <- into.wasted
