(** Registry of named counters, gauges and timers.

    The solver's hot loops keep their flat mutable {!Stats.t} record —
    a registry lookup per propagation would be measurable — so this
    module is the aggregation layer above it: handles are resolved once
    ([counter]/[timer] re-use an existing entry of the same name), and
    each update is a single mutable-field write.  Gauges are pull-based
    (a closure sampled at snapshot time), which is how
    {!Solver.metrics} exposes the live solver counters without adding
    any cost to the search itself. *)

open Berkmin_types

type t
(** A registry.  Not thread-safe; one per solver or harness run. *)

type counter
type gauge
type timer

exception Duplicate_name of string
(** Raised when a name is registered twice across kinds (registering
    the same name as the same kind returns the existing handle). *)

val create : unit -> t

val counter : t -> string -> counter
(** Registers (or retrieves) a counter starting at 0. *)

val gauge : t -> string -> (unit -> float) -> gauge
(** Registers a pull-based gauge; the closure runs at sample time. *)

val timer : ?clock:(unit -> float) -> t -> string -> timer
(** Registers (or retrieves) an accumulating timer.  [clock] defaults
    to [Sys.time] (CPU seconds); tests inject a fake clock. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

val read : gauge -> float
val gauge_name : gauge -> string

val start : timer -> unit
(** Idempotent while running. *)

val stop : timer -> unit
(** Adds the elapsed span to the total; no-op when not running. *)

val time : timer -> (unit -> 'a) -> 'a
(** Runs the thunk inside a [start]/[stop] span (exception-safe). *)

val total : timer -> float
(** Accumulated seconds over all completed spans. *)

val samples : timer -> int
(** Number of completed spans. *)

val timer_name : timer -> string

val find_counter : t -> string -> counter option
val find_timer : t -> string -> timer option

val reset : t -> unit
(** Zeroes counters and timers; gauges are stateless. *)

val snapshot : t -> (string * float) list
(** All entries in registration order; timers appear with a
    ["_seconds"] suffix. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "timers": {name:
    {"total_seconds": s, "samples": n}}}]. *)
