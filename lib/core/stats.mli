(** Per-run solver statistics.

    Besides the usual CDCL counters, this records the data behind the
    paper's tables: the skin-effect histogram [f(r)] of Table 3
    (how far from the stack top the decision clause sat) and the
    database-size numbers of Table 9. *)

type t = {
  mutable decisions : int;
  mutable top_clause_decisions : int;
      (** decisions taken from the current top clause *)
  mutable global_decisions : int;
      (** fallback decisions when every learnt clause was satisfied *)
  mutable conflicts : int;
  mutable propagations : int;
  mutable binary_propagations : int;
      (** literals implied straight from the binary implication index,
          bypassing the watch lists and the arena entirely *)
  mutable binary_conflicts : int;
      (** conflicts detected inside the binary implication drain *)
  mutable watcher_visits : int;
      (** watcher pairs examined by BCP (each is a potential clause
          inspection) *)
  mutable blocker_hits : int;
      (** watcher visits short-circuited because the cached blocker
          literal was already true — no arena read happened *)
  mutable top_cursor_steps : int;
      (** learnt-stack entries examined by the cached top-clause
          cursor; the naive per-decision rescan would pay one step per
          clause above the first unsatisfied one, every time *)
  mutable nb_two_cache_hits : int;
      (** [nb_two] neighbourhood counts answered from the per-epoch
          memo instead of rescanning the binary index *)
  mutable clauses_exported : int;
      (** learnt clauses this worker sent to the portfolio parent for
          rebroadcast (passed the length/glue export filter and the
          pipe write succeeded); always 0 in sequential runs *)
  mutable clauses_imported : int;
      (** learnt clauses received from other portfolio workers that
          actually landed in this solver (post-simplification,
          post-dedup); always 0 in sequential runs *)
  mutable imports_used_in_conflict : int;
      (** times an imported clause was an antecedent resolved by
          conflict analysis — the direct measure of how much foreign
          derivations steer this worker's search *)
  mutable restarts : int;
  mutable reductions : int;
  mutable simplify_runs : int;
      (** clause-database simplification passes executed (pre-search
          and inprocessing; see {!Config.simplify_mode}) *)
  mutable simplified_clauses : int;
      (** clauses deleted outright by simplification: subsumed,
          satisfied at the root, or removed by variable elimination *)
  mutable eliminated_vars : int;
      (** variables removed by bounded variable elimination (their
          models are repaired from the reconstruction stack) *)
  mutable subsumed : int;  (** clauses deleted because a subset exists *)
  mutable strengthened : int;
      (** clauses shortened by self-subsuming resolution or root-level
          false-literal stripping *)
  mutable failed_literals : int;
      (** literals refuted by probing the binary implication graph;
          each yields a top-level unit *)
  mutable gc_runs : int;  (** arena compactions performed *)
  mutable gc_reclaimed_bytes : int;
      (** total bytes of deleted clauses physically reclaimed by GC *)
  mutable arena_bytes : int;
      (** clause-arena footprint in bytes, as of the last allocation
          or GC *)
  mutable learnt_total : int;  (** learnt clauses ever created (incl. units) *)
  mutable learnt_literals : int;
  mutable minimized_literals : int;
      (** literals removed by optional learnt-clause minimization
          ({!Config.ccmin_mode}) *)
  mutable saved_phase_hits : int;
      (** decisions whose branch value came from the variable's saved
          phase ({!Config.t.phase_saving}); always 0 when off *)
  mutable restart_seq_index : int;
      (** index into the restart sequence after the most recent
          restart (for [Luby n], the position whose term sets the
          current interval); 0 before the first restart *)
  mutable glue_reduction_kept : int;
      (** clauses kept unconditionally by a [Glue_lbd] reduction
          because their learn-time glue was at or below the limit *)
  mutable glue_reduction_dropped : int;
      (** clauses dropped by a [Glue_lbd] reduction (glue above the
          limit and outside the young band) *)
  mutable removed_clauses : int;
  mutable max_live_clauses : int;
      (** peak simultaneous clause count, original + live learnt *)
  mutable max_learnt_live : int;
  mutable skin : int array;  (** [skin.(r)] = decisions from stack distance [r] *)
  mutable skin_overflow : int;  (** distances beyond the histogram capacity *)
  mutable time_bcp : float;
      (** CPU seconds inside BCP, when {!Config.t.profile_timers} *)
  mutable time_analyze : float;  (** CPU seconds in conflict analysis *)
  mutable time_reduce : float;  (** CPU seconds in database reduction *)
  mutable load_clauses : int;
      (** clauses stored by the bulk-load path (tautologies excluded) *)
  mutable load_literals : int;  (** literals read from the DIMACS stream *)
  mutable load_scratch_words : int;
      (** final parser scratch capacity — the O(largest clause) term of
          the streaming memory bound *)
  mutable time_load : float;  (** parse+load wall-clock seconds *)
}

val create : unit -> t

val reset : t -> unit

val record_skin : t -> int -> unit
(** Record a top-clause decision at stack distance [r] (grows the
    histogram as needed, up to a fixed cap). *)

val skin_at : t -> int -> int
(** [f(r)]; 0 beyond the recorded range. *)

val note_live_clauses : t -> int -> unit

val db_ratio : t -> initial:int -> float
(** Table 9 first column: (initial + total learnt) / initial. *)

val peak_ratio : t -> initial:int -> float
(** Table 9 second column: peak live clauses / initial. *)

val avg_learnt_length : t -> float

val props_per_sec : t -> seconds:float -> float
(** Propagations per second given the run's wall/CPU time; 0 when
    [seconds <= 0]. *)

val to_json : ?worker:int -> ?seconds:float -> t -> Berkmin_types.Json.t
(** Every counter as a JSON object (skin histogram trimmed to its last
    non-zero bucket).  When [seconds] is passed, adds ["seconds"] and
    the derived ["props_per_sec"] (also under its long alias
    ["propagations_per_sec"]); [worker] prepends the portfolio worker
    index so per-worker records are self-describing. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump. *)

val pp_line : Format.formatter -> t -> unit
(** One-line summary. *)
