open Berkmin_types

type t = {
  mutable index : int Vec.t array;
      (* per literal: (implied_lit, cref) stride-2 pairs *)
  mutable entries : int;
}

let create ~num_lits =
  {
    index = Array.init (max num_lits 1) (fun _ -> Vec.create ~capacity:4 ~dummy:0 ());
    entries = 0;
  }

let grow t ~num_lits =
  let cap = Array.length t.index in
  if num_lits > cap then begin
    let new_cap = max num_lits (2 * cap) in
    let index =
      Array.init new_cap (fun i ->
          if i < cap then t.index.(i) else Vec.create ~capacity:4 ~dummy:0 ())
    in
    t.index <- index
  end

let add t ~cref a b =
  let va = t.index.(Lit.negate a) in
  Vec.push va b;
  Vec.push va cref;
  let vb = t.index.(Lit.negate b) in
  Vec.push vb a;
  Vec.push vb cref;
  t.entries <- t.entries + 2

let clear t =
  Array.iter Vec.clear t.index;
  t.entries <- 0

let implications t p = t.index.(p)

let num_entries t = t.entries

let iter_entries t f =
  Array.iteri
    (fun src v ->
      let n = Vec.length v in
      let i = ref 0 in
      while !i < n do
        f src (Vec.get v !i) (Vec.get v (!i + 1));
        i := !i + 2
      done)
    t.index

let filter_reloc t ~dead ~reloc =
  Array.iter
    (fun v ->
      let n = Vec.length v in
      let i = ref 0 in
      let j = ref 0 in
      while !i < n do
        let u = Vec.get v !i in
        let c = Vec.get v (!i + 1) in
        if not (dead c) then begin
          Vec.set v !j u;
          Vec.set v (!j + 1) (reloc c);
          j := !j + 2
        end
        else t.entries <- t.entries - 1;
        i := !i + 2
      done;
      Vec.shrink v !j)
    t.index
