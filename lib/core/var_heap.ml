type t = {
  mutable activity : float array;
  mutable heap : int array;  (* heap.(i) = variable at heap position i *)
  mutable pos : int array;  (* pos.(v) = heap position of v, or -1 *)
  mutable size : int;
}

(* Priority order: higher activity first, smaller index on ties —
   matching the naive linear scan exactly so the two implementations
   are interchangeable (and testable against each other). *)
let before t a b =
  t.activity.(a) > t.activity.(b)
  || (t.activity.(a) = t.activity.(b) && a < b)

let swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.pos.(b) <- i;
  t.pos.(a) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.size && before t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.size && before t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let create ~num_vars ~activity =
  if Array.length activity < num_vars then
    invalid_arg "Var_heap.create: activity array too short";
  let t = {
    activity;
    heap = Array.init (max num_vars 1) (fun i -> i);
    pos = Array.init (max num_vars 1) (fun i -> i);
    size = num_vars;
  } in
  (* Initial activities are usually all equal (zero), in which case the
     identity layout is already a valid heap; heapify for generality. *)
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

let is_empty t = t.size = 0
let size t = t.size
let mem t v = t.pos.(v) >= 0 && t.pos.(v) < t.size && t.heap.(t.pos.(v)) = v

let push t v =
  if not (mem t v) then begin
    t.heap.(t.size) <- v;
    t.pos.(v) <- t.size;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)
  end

let pop_max t =
  if t.size = 0 then invalid_arg "Var_heap.pop_max: empty";
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    let last = t.heap.(t.size) in
    t.heap.(0) <- last;
    t.pos.(last) <- 0;
    sift_down t 0
  end;
  t.pos.(top) <- -1;
  top

let notify_increase t v = if mem t v then sift_up t t.pos.(v)

let rebuild t =
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

(* Incremental solving adds variables between solves.  The caller hands
   over the (possibly re-allocated) activity array; internal storage is
   widened with the new slots marked absent, so fresh variables enter
   the heap only via an explicit [push]. *)
let grow t ~num_vars ~activity =
  if Array.length activity < num_vars then
    invalid_arg "Var_heap.grow: activity array too short";
  t.activity <- activity;
  let cap = Array.length t.pos in
  if num_vars > cap then begin
    let new_cap = max num_vars (2 * cap) in
    let heap = Array.make new_cap 0 in
    Array.blit t.heap 0 heap 0 cap;
    let pos = Array.make new_cap (-1) in
    Array.blit t.pos 0 pos 0 cap;
    t.heap <- heap;
    t.pos <- pos
  end

(* Bulk load declares all variables at once from the p-header.  Widen
   exactly to [num_vars] and append every variable not already present,
   then heapify — O(n) total, versus n pushes each paying a sift_up
   against an already-populated heap. *)
let bulk_grow t ~num_vars ~activity =
  grow t ~num_vars ~activity;
  for v = 0 to num_vars - 1 do
    if not (mem t v) then begin
      t.heap.(t.size) <- v;
      t.pos.(v) <- t.size;
      t.size <- t.size + 1
    end
  done;
  rebuild t
