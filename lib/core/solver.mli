(** The BerkMin CDCL engine.

    One mutable solver object per instance.  The engine implements the
    full conflict-driven clause-learning loop — two-watched-literal BCP
    (SATO/Chaff), 1-UIP conflict analysis and non-chronological
    backtracking (GRASP), restarts, learnt-clause stack and database
    reduction — with every heuristic the paper ablates selected by
    {!Config.t}.  Runs are deterministic for a given configuration and
    instance. *)

open Berkmin_types

type t

type result =
  | Sat of bool array  (** total assignment indexed by variable *)
  | Unsat
  | Unknown  (** budget exhausted *)

type budget = {
  max_conflicts : int option;
  max_seconds : float option;  (** CPU seconds via [Sys.time] *)
}

val no_budget : budget

val budget_conflicts : int -> budget

val create : ?config:Config.t -> Cnf.t -> t
(** Loads the formula (tautologies dropped, duplicate literals merged).
    Default configuration is {!Config.berkmin}. *)

val load : ?config:Config.t -> Berkmin_dimacs.Dimacs.source -> t
(** Streams a DIMACS formula straight into a fresh solver — the
    large-instance fast path.  Behaviour is identical to
    [create (Dimacs.parse_file ...)] (same normalization, same
    verdicts, same {!Berkmin_dimacs.Dimacs.Parse_error}s) but without
    materializing a {!Cnf.t}: the [p cnf V C] header pre-sizes the
    arena, watch lists, binary index and every per-variable structure
    in one step, and each clause moves from the parser's scratch
    buffer into the arena with a single blit.  Peak heap beyond the
    solver's own state is O(read chunk + largest clause), never
    O(file).  Parse+load wall time, literal counts and the final
    scratch size land in {!Stats.t} ([time_load], [load_clauses],
    [load_literals], [load_scratch_words]), the metrics registry, and
    a {!Trace.event.Load} event. *)

val load_string : ?config:Config.t -> string -> t
(** {!load} over an in-memory DIMACS document. *)

val load_file : ?config:Config.t -> string -> t
(** {!load} over a file.
    @raise Sys_error if the file cannot be opened. *)

val solve : ?budget:budget -> ?assumps:Lit.t list -> t -> result
(** Runs the search.  Without assumptions, a second call returns the
    cached verdict unless the first ended in [Unknown], in which case
    the search resumes with the new budget (budgets are absolute, e.g.
    [max_conflicts 2000] after a run that already spent 1500 grants 500
    more).

    With [~assumps], the literals are tried in order as the first
    decisions (pseudo-decisions below the real search).  [Unsat] then
    means "unsatisfiable under these assumptions"; {!unsat_core}
    retrieves the failed-assumption core.  The solver backtracks to the
    root afterwards, so it can be reused with different assumptions;
    learnt clauses, activities and polarity counters are all retained
    across calls. *)

(** {2 Incremental interface}

    MiniSat-shaped incremental solving: grow the formula between
    solves, query under assumptions, and bound individual calls.  The
    clause arena, binary implication index, learnt-clause stack and
    every activity/polarity counter survive across calls (restart-time
    GC relocates — never drops — clauses still referenced as reasons),
    so a sequence of related queries against one resident solver is far
    cheaper than fresh solves. *)

val new_var : t -> int
(** Allocates a fresh variable (the next index) and returns it.  All
    per-variable state is grown; the variable starts unassigned with
    zero activity.  Callable at any time — any pending search state is
    first backtracked to the root.  Invalidates a cached SAT verdict
    (the model would be too short); a definitive UNSAT is kept. *)

val add_clause : t -> Lit.t list -> unit
(** Adds a clause over existing variables; callable between solves.
    Tautologies are dropped, duplicate literals merged, and literals
    already false at level 0 removed (they are false forever).  An
    effectively empty clause makes the solver permanently UNSAT.
    Invalidates a cached SAT/Unknown verdict.
    @raise Invalid_argument if the clause mentions a variable not yet
    allocated ([new_var] first). *)

val solve_limited : ?assumps:Lit.t list -> t -> conflicts:int -> result
(** [solve_limited s ~conflicts] runs {!solve} under a {e per-call}
    conflict budget ([conflicts] more than already spent, unlike the
    absolute [budget] of {!solve}); returns [Unknown] when the budget
    is exhausted, leaving the solver reusable (learnt clauses from the
    partial run are retained).
    @raise Invalid_argument on a negative budget. *)

val unsat_core : t -> Lit.t list option
(** Failed-assumption core of the most recent [solve ~assumps] call
    that returned [Unsat]: [Some core] with [core] a subset of the
    assumptions whose conjunction already forces the conflict, or
    [Some []] when the formula is unsatisfiable regardless of the
    assumptions.  [None] after any other outcome (including plain
    [solve]). *)

type assumption_result =
  | A_sat of bool array
  | A_unsat  (** unsatisfiable regardless of the assumptions *)
  | A_unsat_assuming of Lit.t list
      (** unsatisfiable under the assumptions; the payload is a failed
          core — a subset of the assumptions that already forces a
          conflict *)
  | A_unknown

val solve_with_assumptions :
  ?budget:budget -> t -> Lit.t list -> assumption_result
(** Incremental interface: solves under the given assumption literals
    (tried in order as the first decisions).  The solver backtracks to
    the root afterwards, so it can be reused with different
    assumptions; learnt clauses are kept across calls. *)

val stats : t -> Stats.t

val config : t -> Config.t

val trace : t -> Trace.t
(** The solver's trace stream.  Created with the [Null] sink unless
    {!Config.t.trace_jsonl} is set. *)

val set_trace_sink : t -> Trace.sink -> unit
(** Installs a trace sink (replacing any existing one).  Install before
    [solve] to capture the whole search. *)

val close_trace : t -> unit
(** Closes a JSONL trace channel, if any, and disables tracing. *)

val metrics : t -> Metrics.t
(** A pull-based metrics registry over the live solver: every
    {!Stats.t} counter plus live gauges (learnt clauses in the
    database, current decision level, the growing old-clause activity
    bar, trace events emitted, per-phase CPU seconds).  Sampling reads
    the solver's state at call time; the registry itself adds no cost
    to the search. *)

val num_vars : t -> int

val num_original_clauses : t -> int
(** Clauses actually loaded (tautologies excluded), the denominator of
    Table 9's ratios. *)

val num_learnt_live : t -> int

val num_binary_entries : t -> int
(** Live [(implied_lit, reason)] pairs in the binary implication index
    — two per stored 2-clause, original or learnt (see {!Binary}). *)

val old_activity_threshold : t -> int
(** Current value of the growing old-clause activity bar (Section 8). *)

val set_proof_logger : t -> (Berkmin_proof.Drup.event -> unit) -> unit
(** Installs a DRUP event callback.  Must be installed before [solve]
    to capture the whole derivation. *)

val set_decision_hook : t -> (int -> bool -> unit) -> unit
(** [hook var value] fires on every branching decision (used by the
    Figure-1 cone-mobility experiment). *)

val set_minimize_hook :
  t -> (before:Lit.t array -> after:Lit.t array -> unit) -> unit
(** [hook ~before ~after] fires once per conflict with the 1-UIP
    clause before and after conflict-clause minimization
    ({!Config.ccmin_mode}), asserting literal first in both arrays
    (identical contents when minimization is off).  The ccmin
    invariant tests — [after] a subset of [before], asserting literal
    preserved — live behind this hook.  Runs inside the search loop;
    keep it cheap and never let it raise. *)

(** {2 Learnt-clause exchange}

    Hooks the process-parallel portfolio ({!Berkmin_portfolio}) uses
    to share learnt clauses between workers.  The solver itself knows
    nothing about processes or pipes: it reports every learnt clause
    with its learn-time glue through the learn hook, and adopts
    foreign clauses delivered by the import source at restart
    boundaries.  A solver with neither installed behaves exactly as
    before. *)

val set_learn_hook : t -> (glue:int -> Lit.t array -> unit) -> unit
(** [hook ~glue lits] fires once per learnt clause — units included —
    with its learn-time glue (LBD: the number of distinct decision
    levels among the clause's literals at the moment of learning).
    The hook runs inside the search loop; keep it cheap and never let
    it raise. *)

val set_import_source : t -> (unit -> (int * Lit.t array) list) -> unit
(** Installs a pull source of foreign learnt clauses as
    [(glue, lits)] pairs.  The solver polls it at every restart, at
    decision level 0, and adopts each delivered clause via
    {!import_clause}. *)

val import_clause : t -> glue:int -> Lit.t array -> unit
(** Adopts a clause learnt by another solver of the same formula.
    Sound only for logical consequences of the formula (shared learnt
    clauses are).  Runs at decision level 0 (backtracking first if
    needed) with the mid-life [add_clause] simplification: satisfied
    clauses dropped, permanently-false literals filtered, units
    enqueued as proof-logged top-level facts, binaries routed to the
    implication index, an effectively empty clause making the solver
    UNSAT.  Stored clauses are learnt- and imported-flagged and join
    the learnt stack (so reduction and GC manage them normally).
    Duplicate imports (same literal set, any order) are dropped;
    {!Stats.t.clauses_imported} counts only clauses that landed.
    Unknown variables make the import a no-op. *)

val glue_of_learnt : t -> int -> int
(** Recorded learn-time glue of the [i]-th clause on the live learnt
    stack (index as in {!num_learnt_live}; for tests and DB-reduction
    experiments).
    @raise Invalid_argument when out of bounds. *)

val value_of : t -> int -> Value.t
(** Current assignment of a variable (mainly for tests). *)

val compact : t -> unit
(** Forces an arena compaction: every live clause is copied into a
    fresh buffer and all outstanding crefs — watch lists, trail
    reasons, the learnt stack, the original list and the binary
    implication index — are relocated.  Safe at any decision level.
    The search triggers this itself after every reduction that deletes
    clauses; the public hook exists for tests and memory-pressure
    callers. *)

val simplify : t -> unit
(** Forces one clause-database simplification pass (subsumption,
    self-subsuming resolution, bounded variable elimination,
    failed-literal probing — see {!Berkmin_simplify.Engine}) at
    decision level 0, regardless of {!Config.t.simplify}.  Backtracks
    to the root first and invalidates any cached non-UNSAT verdict.
    Variables eliminated here stay eliminated: they reject later
    {!add_clause}/assumption mentions and get their model values from
    the reconstruction stack.  With a proof logger attached, every
    rewrite is mirrored to the DRUP stream.  For tests and embedders;
    the search calls this itself according to the configured mode. *)

val num_eliminated_vars : t -> int
(** Variables removed so far by bounded variable elimination (the
    cumulative {!Stats.t.eliminated_vars} of this solver; O(nvars)). *)

val arena_bytes : t -> int
(** Current clause-arena footprint in bytes (headers + literals,
    live + not-yet-collected garbage). *)

val arena_wasted_bytes : t -> int
(** Bytes owned by deleted clauses awaiting compaction. *)

val watch_invariant_violations : t -> string list
(** Audits the watched-literal and binary-index invariants and returns
    a human-readable description of each violation (empty = healthy):
    watch lists hold well-formed (blocker, cref) pairs referencing
    live clauses by one of their two watch slots; every live clause of
    size > 2 is watched exactly once from each watch literal, or not
    at all only when it is satisfied at level 0; when called at
    decision level 0 with no pending propagations, both watches of
    every unsatisfied clause are non-false; every live 2-clause is
    indexed exactly once in each direction and never watched; and
    every index entry matches a live 2-clause in the arena.
    O(database size); for tests. *)

val check_model : Cnf.t -> bool array -> bool
(** [check_model cnf m] re-evaluates the formula under [m]. *)

val solve_cnf : ?config:Config.t -> ?budget:budget -> Cnf.t -> result
(** One-shot convenience wrapper. *)

val pp_result : Format.formatter -> result -> unit
