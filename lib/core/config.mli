(** Solver configuration.

    Every heuristic the paper ablates is a field here, so each of the
    paper's comparison columns (Tables 1, 2, 4, 5) is a preset of the
    same engine differing in exactly one component — mirroring the
    paper's methodology. *)

(** How variable activities are updated at each conflict (Section 4). *)
type activity_mode =
  | Responsible_clauses
      (** BerkMin: bump [var_activity(x)] once per occurrence of a
          literal of [x] in every clause responsible for the conflict
          (the antecedents of the 1-UIP resolution chain plus the
          conflicting clause). *)
  | Conflict_clause_only
      (** Chaff-like ablation ("Less_sensitivity"): bump only variables
          occurring in the learnt clause, by 1. *)

(** How the next branching variable is picked (Section 5). *)
type decision_mode =
  | Top_clause
      (** BerkMin: the most active free variable of the topmost
          unsatisfied learnt clause; falls back to the globally most
          active free variable when every learnt clause is satisfied. *)
  | Global_most_active
      (** "Less_mobility" ablation: always the globally most active
          free variable (activities still computed per
          [activity_mode]). *)
  | Vsids_literal
      (** Chaff baseline: the free literal with the highest decaying
          VSIDS literal score; the variable is assigned so that this
          literal becomes true. *)

(** Which value the chosen branching variable gets first when the
    decision was made on the current top clause (Section 7, Table 4). *)
type polarity_mode =
  | Symmetrize
      (** BerkMin: compare [lit_activity] of the two phases and explore
          the branch producing learnt clauses with the rarer literal. *)
  | Sat_top  (** Always satisfy the current top clause. *)
  | Unsat_top  (** Always falsify the variable's literal in the top clause. *)
  | Take_zero
  | Take_one
  | Take_random

(** Which value is assigned first on global (non-top-clause) decisions. *)
type global_polarity_mode =
  | Nb_two
      (** BerkMin: the literal with the larger binary-clause
          neighbourhood [nb_two] is set to 0 (Section 7). *)
  | Gp_take_zero
  | Gp_take_one
  | Gp_random

(** Learnt-clause database reduction at restarts (Section 8). *)
type reduction_mode =
  | Berkmin_age_activity
      (** Partition by age; young kept if short or recently active, old
          kept only if very short or very active (growing threshold). *)
  | Length_limit of int
      (** GRASP-like ("Limited_keeping"): remove learnt clauses longer
          than the limit, regardless of age and activity. *)
  | Glue_lbd of int
      (** Glucose-style (post-2002 extension): judge learnt clauses by
          their learn-time glue (LBD).  Clauses with glue at most the
          limit are kept unconditionally; the rest survive a reduction
          only while inside the young band ([young_fraction]). *)
  | Keep_all

type restart_mode =
  | Fixed of int  (** restart every [n] conflicts *)
  | Luby of int  (** Luby sequence scaled by the unit *)
  | No_restarts

(** Conflict-clause minimization at learn time (post-2002 extension,
    MiniSat lineage; off in the paper's configuration).  DRUP-sound:
    the minimized clause is derived by further resolutions against
    reason clauses, so it is still implied and forward-checks. *)
type ccmin_mode =
  | Ccmin_off
  | Ccmin_basic
      (** drop a learnt literal when its reason clause is subsumed by
          the rest of the learnt clause plus top-level facts *)
  | Ccmin_deep
      (** recursive reason-side redundancy: follow implication chains
          through reasons, removing a literal whenever every path back
          to the decisions stays inside the clause (strictly removes at
          least as much as [Ccmin_basic]) *)

(** When the clause-database simplifier (lib/simplify: subsumption,
    self-subsuming resolution, bounded variable elimination,
    failed-literal probing) runs.  A post-BerkMin extension, off in the
    paper's configuration. *)
type simplify_mode =
  | Simp_off  (** never (the default; search is byte-identical) *)
  | Simp_pre  (** once, before search starts *)
  | Simp_inprocess
      (** before search and again at every restart boundary, after DB
          reduction/GC and before the portfolio import drain *)

type t = {
  activity_mode : activity_mode;
  decision_mode : decision_mode;
  polarity_mode : polarity_mode;
  global_polarity : global_polarity_mode;
  reduction_mode : reduction_mode;
  restart_mode : restart_mode;
  var_decay_interval : int;  (** conflicts between var-activity decays *)
  var_decay_factor : float;  (** divide activities by this factor *)
  vsids_decay_interval : int;  (** for the Chaff baseline's literal scores *)
  vsids_decay_factor : float;
  young_fraction : float;
      (** a learnt clause is "young" when its distance from the stack
          top is below this fraction of the stack size (paper: 1/16) *)
  young_keep_length : int;  (** keep young clauses shorter than this (43) *)
  young_keep_activity : int;  (** or with activity above this (7) *)
  old_keep_length : int;  (** keep old clauses shorter than this (9) *)
  old_activity_threshold : int;  (** initial old-clause activity bar (60) *)
  old_threshold_increment : int;  (** growth per reduction *)
  nb_two_threshold : int;  (** cap on nb_two computation (100) *)
  top_window : int;
      (** how many top unsatisfied learnt clauses the decision
          procedure considers (1 in the paper; Remark 2 proposes
          examining "a small set of conflict clauses that are close to
          the current top of the stack") *)
  debug_top_cursor : bool;
      (** cross-check every cursor-backed top-clause lookup against
          the naive full stack scan and fail loudly on any mismatch;
          off by default (the check re-reads the whole learnt stack
          per decision, exactly the cost the cursor removes) *)
  ccmin_mode : ccmin_mode;
      (** conflict-clause minimization at learn time ([Ccmin_off] in
          the paper's configuration); see {!ccmin_mode} *)
  phase_saving : bool;
      (** post-2002 extension: remember each variable's last assigned
          polarity and branch on it first, overriding the configured
          polarity heuristic for variables that have been assigned
          before; off in the paper's configuration *)
  use_var_heap : bool;
      (** BerkMin561 "strategy 3" (Remark 1): find the most active
          free variable with an indexed heap instead of a linear scan —
          same decisions, different cost *)
  seed : int;
  trace_jsonl : string option;
      (** when set, {!Solver.create} opens a JSONL trace sink on this
          path (see {!Trace}); [None] — the default everywhere — keeps
          tracing disabled at zero cost *)
  heartbeat_interval : int;
      (** emit a {!Trace.event.Heartbeat} every this many conflicts
          (0 = off); only visible when a trace sink is attached *)
  profile_timers : bool;
      (** accumulate CPU time spent in BCP, conflict analysis and
          database reduction into {!Stats.t} (off by default: the
          [Sys.time] sampling is cheap but not free) *)
  workers : int;
      (** how many portfolio workers a portfolio-aware driver (the
          CLI, [Runner], [Portfolio.solve_config]) should race on this
          formula; 1 — the default — means plain sequential solving.
          {!Solver} itself ignores this field: one solver object is
          always one search. *)
  portfolio_diversify : bool;
      (** when racing [workers > 1]: diversify the portfolio across
          restart policies, decision sensitivity and clause-DB
          aggressiveness (default), or — when [false] — run identical
          copies of this configuration differing only in RNG seed *)
  worker_wall_timeout : float option;
      (** kill any portfolio worker still running after this many wall
          seconds; [None] (default) leaves workers bounded only by the
          solve budget *)
  share_learnt : bool;
      (** when racing [workers > 1]: exchange learnt clauses between
          workers (export through the glue/length filter below, import
          at restart boundaries).  Default [true].  Irrelevant to a
          sequential solve — {!Solver} itself never shares; the
          portfolio driver wires the exchange. *)
  share_max_len : int;
      (** learnt clauses longer than this are never exported to other
          portfolio workers (default 8) *)
  share_max_glue : int;
      (** learnt clauses whose glue — the number of distinct decision
          levels among their literals at learn time (LBD) — exceeds
          this are never exported (default 4) *)
  simplify : simplify_mode;
      (** when the clause-database simplifier runs ([Simp_off] by
          default) *)
  simplify_growth : int;
      (** bounded variable elimination may add this many resolvents
          beyond the clauses it removes (default 0: elimination must
          never grow the database) *)
}

val berkmin : t
(** The paper's default configuration. *)

val less_sensitivity : t
(** Table 1 ablation: Chaff-like activity updates. *)

val less_mobility : t
(** Table 2 ablation: global most-active decisions. *)

val sat_top : t
val unsat_top : t
val take_zero : t
val take_one : t
val take_random : t
(** Table 4 branch-selection ablations. *)

val limited_keeping : t
(** Table 5 ablation: GRASP-style length-only clause removal. *)

val chaff : t
(** Chaff/zChaff baseline for Tables 6–10: VSIDS literal decisions,
    learnt-clause-only bumping, periodic halving, length-based DB
    reduction. *)

val limmat_like : t
(** Stand-in for limmat in Table 10: a plain CDCL with fixed polarity
    and Luby restarts (documented substitution; see DESIGN.md). *)

val modern : t
(** The modern search-quality pack: BerkMin's heuristics plus every
    post-2002 strategy at once — deep conflict-clause minimization,
    phase saving, Luby restarts (unit 64) and glue(LBD)-driven database
    reduction (glue <= 3 kept).  See docs/STRATEGIES.md. *)

val with_seed : int -> t -> t

val with_trace_jsonl : string -> t -> t
(** Arrange for solvers created with this configuration to write a
    JSONL event trace to the given path. *)

val with_heartbeat : int -> t -> t
(** Set the heartbeat interval (conflicts between heartbeat events). *)

val with_profile_timers : t -> t
(** Enable the BCP/analysis/reduction phase timers. *)

val with_debug_top_cursor : t -> t
(** Enable the top-clause cursor cross-check (see
    {!t.debug_top_cursor}). *)

val with_workers : int -> t -> t
(** Set the portfolio worker count.
    @raise Invalid_argument when the count is below 1. *)

val with_portfolio_diversify : bool -> t -> t
(** Choose between a diversified portfolio and seed-only variation. *)

val with_worker_wall_timeout : float -> t -> t
(** Set the per-worker wall-clock timeout (seconds). *)

val with_share_learnt : bool -> t -> t
(** Enable or disable learnt-clause exchange between portfolio
    workers. *)

val with_share_max_len : int -> t -> t
(** Set the export length cap for shared learnt clauses.
    @raise Invalid_argument when below 1. *)

val with_share_max_glue : int -> t -> t
(** Set the export glue (LBD) cap for shared learnt clauses.
    @raise Invalid_argument when below 1. *)

val with_simplify : simplify_mode -> t -> t
(** Choose when the clause-database simplifier runs. *)

val with_simplify_growth : int -> t -> t
(** Set the variable-elimination growth cap.
    @raise Invalid_argument when negative. *)

val with_ccmin : ccmin_mode -> t -> t
(** Choose the conflict-clause minimization mode. *)

val with_phase_saving : bool -> t -> t
(** Enable or disable phase saving. *)

val with_restart_mode : restart_mode -> t -> t
(** Choose the restart strategy. *)

val with_reduction_mode : reduction_mode -> t -> t
(** Choose the learnt-clause database reduction strategy. *)

val simplify_mode_to_string : simplify_mode -> string
(** ["off"], ["pre"] or ["inprocess"] — the CLI flag vocabulary. *)

val simplify_mode_of_string : string -> simplify_mode option

val ccmin_mode_to_string : ccmin_mode -> string
(** ["off"], ["basic"] or ["deep"] — the CLI flag vocabulary. *)

val ccmin_mode_of_string : string -> ccmin_mode option

val restart_mode_to_string : restart_mode -> string
(** ["fixed:N"], ["luby:N"] or ["none"]. *)

val restart_mode_of_string : string -> restart_mode option
(** Accepts ["fixed:N"], ["luby:N"], ["none"], and the bare ["fixed"]
    (550, the paper's cadence) and ["luby"] (unit 64). *)

val reduction_mode_to_string : reduction_mode -> string
(** ["berkmin"], ["length:N"], ["glue:N"] or ["keep-all"]. *)

val reduction_mode_of_string : string -> reduction_mode option
(** Accepts ["berkmin"], ["length:N"], ["glue:N"] (bare ["glue"] means
    glue <= 3) and ["keep-all"]. *)

val name_of : t -> string
(** Best-effort human name: matches a preset or describes the fields.
    Observability, portfolio and simplifier fields (trace, heartbeat,
    timers, cursor debug, workers, simplify) are ignored by the match —
    they are orthogonal toggles layered on a preset, and a
    simplify-enabled preset should still report its preset name. *)

val presets : (string * t) list
(** All named presets, for CLIs and the bench harness. *)

val pp : Format.formatter -> t -> unit
