(** Indexed max-heap over variables keyed by an external activity
    array.

    The paper's Remark 1 notes that the released BerkMin561 replaced
    the naive linear scan for the most active variable with an
    optimized implementation ("strategy 3"); this heap is that
    optimization.  Keys live in the caller's activity array: the heap
    stores only variable indices and consults the array on comparison,
    so the periodic uniform decay of all activities (which preserves
    the ordering) needs no heap maintenance.  Increasing a single
    variable's activity requires a {!notify_increase}. *)

type t

val create : num_vars:int -> activity:float array -> t
(** Heap containing all of [0 .. num_vars-1] initially. *)

val is_empty : t -> bool

val size : t -> int

val mem : t -> int -> bool

val push : t -> int -> unit
(** Inserts a variable; no-op if already present. *)

val pop_max : t -> int
(** Removes and returns the variable with the highest activity (ties
    broken toward the smaller index, matching the naive scan).
    @raise Invalid_argument when empty. *)

val notify_increase : t -> int -> unit
(** Restores the heap property after the caller increased the
    activity of a variable currently in the heap; no-op if absent. *)

val rebuild : t -> unit
(** Re-heapifies everything — for non-monotone key changes. *)

val grow : t -> num_vars:int -> activity:float array -> unit
(** Widens internal storage to accommodate variables
    [0 .. num_vars-1] and re-points the heap at [activity] (the
    caller's possibly re-allocated key array, which must extend the
    previous one so existing comparisons are unchanged).  Newly valid
    variables are {e not} inserted — {!push} them explicitly.
    @raise Invalid_argument if [activity] is shorter than [num_vars]. *)

val bulk_grow : t -> num_vars:int -> activity:float array -> unit
(** {!grow} plus insertion of every variable in [0 .. num_vars-1] not
    already present, in one O(n) widen-append-heapify pass — the bulk
    counterpart of [grow]-then-[push]-each used when a [p cnf V C]
    header declares all variables up front.  Pop order is unaffected:
    the comparison is a strict total order (activity, then index), so
    the root is the unique maximum whatever the internal layout.
    @raise Invalid_argument if [activity] is shorter than [num_vars]. *)
