(** Flat clause arena: every clause lives in one contiguous [int array].

    A clause is a {!cref} — an offset into the buffer — pointing at two
    header words followed by the packed literals:

    {v
      word 0   header:  size lsl 4 | imported(8) | relocated(4)
                                   | deleted(2)  | learnt(1)
      word 1   activity — or, after {!reloc}, the forwarding cref
      word 2+  literals (Lit.t, one per word)
    v}

    Compared to boxed per-clause records this removes a pointer chase
    per clause visit in BCP, keeps clauses cache-adjacent in allocation
    order, and makes deletion a bookkeeping bit: space is reclaimed by
    copying the live clauses into a fresh buffer ({!reloc} per clause,
    {!commit} to swap buffers) while forwarding pointers stored in the
    old headers relocate every outstanding reference exactly once.

    The representation is exposed (not abstract) so the solver's hot
    loops can read [a.data.(c + lits_offset + j)] directly; every
    invariant above must hold for such raw access.  Mutation outside
    this module should go through the accessors. *)

open Berkmin_types

type t = {
  mutable data : int array;
  mutable size : int;  (** bump pointer: words in use, [<= Array.length data] *)
  mutable wasted : int;  (** words owned by freed clauses, reclaimable by GC *)
}

type cref = int

val cref_undef : cref
(** [-1]; never a valid allocation. *)

val header_words : int
(** Words before the literals (2). *)

val lits_offset : int
(** Alias of {!header_words}: [data.(c + lits_offset + j)] is literal [j]. *)

val create : ?capacity:int -> unit -> t
(** An empty arena. [capacity] (words, default 1024) is a hint only. *)

val alloc : ?imported:bool -> t -> learnt:bool -> Lit.t array -> cref
(** Appends a clause (size [>= 1]), growing the buffer by doubling.
    Activity starts at 0.  [imported] marks clauses received from
    another portfolio worker (default [false]); the flag survives GC
    relocation, so conflict analysis can attribute conflicts to
    imports cheaply. *)

val alloc_sub :
  ?imported:bool -> t -> learnt:bool -> Lit.t array -> len:int -> cref
(** [alloc] from the prefix [lits.(0) .. lits.(len - 1)] — lets bulk
    load allocate straight from a reusable scratch buffer without an
    intermediate [Array.sub] copy per clause. *)

val ensure_capacity : t -> words:int -> unit
(** Grows the buffer to at least [words] capacity in one step (no-op if
    already large enough).  Called with the footprint implied by a
    [p cnf V C] header, it makes the subsequent bulk load
    reallocation-free instead of climbing the doubling ladder. *)

val capacity_words : t -> int
(** Current buffer capacity ([>= size_words]); lets tests assert that a
    pre-sized load performed zero reallocations. *)

val clause_words : t -> cref -> int
(** Total footprint of the clause in words (header + literals). *)

val clause_size : t -> cref -> int
val is_learnt : t -> cref -> bool
val is_deleted : t -> cref -> bool

val is_imported : t -> cref -> bool
(** True for clauses allocated with [~imported:true] — learnt clauses
    received from another portfolio worker. *)

val activity : t -> cref -> int
val set_activity : t -> cref -> int -> unit
val bump_activity : t -> cref -> unit

val lit : t -> cref -> int -> Lit.t
val set_lit : t -> cref -> int -> Lit.t -> unit
val swap_lits : t -> cref -> int -> int -> unit

val lits_array : t -> cref -> Lit.t array
(** Fresh array copy of the literals (cold paths: proof logging,
    tests). *)

val exists_lit : t -> cref -> (Lit.t -> bool) -> bool
val iter_lits : t -> cref -> (Lit.t -> unit) -> unit
val for_all_lits : t -> cref -> (Lit.t -> bool) -> bool

val free : t -> cref -> unit
(** Marks the clause deleted and counts its words as wasted.  The
    clause stays readable until the next GC; freeing twice is a no-op. *)

val size_words : t -> int
val wasted_words : t -> int
val live_words : t -> int

val bytes : t -> int
(** [size_words] scaled to bytes of the host word size. *)

val wasted_bytes : t -> int
val live_bytes : t -> int

(** {2 Garbage collection}

    Protocol: make a fresh arena [into] sized {!live_words}; call
    {!reloc} on every outstanding reference (watchers, reasons, clause
    stacks, occurrence lists) — the first call copies the clause and
    plants a forwarding pointer, later calls just follow it — then
    {!commit} to swap the compacted buffer in. *)

val relocated : t -> cref -> bool

val reloc : t -> into:t -> cref -> cref
(** The clause's new cref in [into].  Must not be called on a deleted
    clause (those references should be dropped instead). *)

val commit : t -> into:t -> unit
(** Replaces [t]'s storage with [into]'s compacted buffer; [into] must
    not be used afterwards. *)
