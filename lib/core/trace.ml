open Berkmin_types

type decision_kind =
  | D_top_clause
  | D_global
  | D_assumption

type share_direction =
  | S_export
  | S_import

type event =
  | Decide of { level : int; var : int; value : bool; kind : decision_kind }
  | Propagate of { level : int; lit : Lit.t }
  | Conflict of { level : int; conflict_no : int }
  | Learn of { size : int; asserting : Lit.t; backjump_level : int }
  | Backjump of { from_level : int; to_level : int }
  | Restart of { restart_no : int; conflict_no : int; seq_index : int }
  | Reduce_db of {
      live_before : int;
      removed : int;
      threshold : int;
      glue_kept : int;
      glue_dropped : int;
    }
  | Simplify of {
      rounds : int;
      subsumed : int;
      strengthened : int;
      eliminated_vars : int;
      failed_literals : int;
      clauses_before : int;
      clauses_after : int;
    }
  | Gc of {
      reclaimed_bytes : int;
      arena_bytes_before : int;
      arena_bytes_after : int;
    }
  | Heartbeat of {
      conflict_no : int;
      decisions : int;
      propagations : int;
      learnt_live : int;
      seconds : float;
    }
  | Share of { direction : share_direction; size : int; glue : int }
  | Load of {
      vars : int;
      clauses : int;
      literals : int;
      seconds : float;
      arena_bytes : int;
      scratch_words : int;
    }
  | Warn of { message : string }
  | Server_request of {
      session : string;
      op : string;
      status : string;
      conflicts : int;
      propagations : int;
      latency_ms : float;
    }

type sink =
  | Null
  | Callback of (event -> unit)
  | Jsonl of out_channel

type t = {
  mutable sink : sink;
  mutable active : bool;  (* false iff sink = Null: the hot-path guard *)
  mutable emitted : int;
  mutable worker : int option;
}

let create () = { sink = Null; active = false; emitted = 0; worker = None }

let kind_to_string = function
  | D_top_clause -> "top_clause"
  | D_global -> "global"
  | D_assumption -> "assumption"

let direction_to_string = function
  | S_export -> "export"
  | S_import -> "import"

let event_fields = function
  | Decide { level; var; value; kind } ->
    Json.Obj
      [
        "event", Json.String "decide";
        "level", Json.Int level;
        "var", Json.Int var;
        "value", Json.Bool value;
        "kind", Json.String (kind_to_string kind);
      ]
  | Propagate { level; lit } ->
    Json.Obj
      [
        "event", Json.String "propagate";
        "level", Json.Int level;
        "lit", Json.Int (Lit.to_dimacs lit);
      ]
  | Conflict { level; conflict_no } ->
    Json.Obj
      [
        "event", Json.String "conflict";
        "level", Json.Int level;
        "conflict_no", Json.Int conflict_no;
      ]
  | Learn { size; asserting; backjump_level } ->
    Json.Obj
      [
        "event", Json.String "learn";
        "size", Json.Int size;
        "asserting", Json.Int (Lit.to_dimacs asserting);
        "backjump_level", Json.Int backjump_level;
      ]
  | Backjump { from_level; to_level } ->
    Json.Obj
      [
        "event", Json.String "backjump";
        "from_level", Json.Int from_level;
        "to_level", Json.Int to_level;
      ]
  | Restart { restart_no; conflict_no; seq_index } ->
    Json.Obj
      [
        "event", Json.String "restart";
        "restart_no", Json.Int restart_no;
        "conflict_no", Json.Int conflict_no;
        "seq_index", Json.Int seq_index;
      ]
  | Reduce_db { live_before; removed; threshold; glue_kept; glue_dropped } ->
    Json.Obj
      [
        "event", Json.String "reduce_db";
        "live_before", Json.Int live_before;
        "removed", Json.Int removed;
        "threshold", Json.Int threshold;
        "glue_kept", Json.Int glue_kept;
        "glue_dropped", Json.Int glue_dropped;
      ]
  | Simplify
      {
        rounds;
        subsumed;
        strengthened;
        eliminated_vars;
        failed_literals;
        clauses_before;
        clauses_after;
      } ->
    Json.Obj
      [
        "event", Json.String "simplify";
        "rounds", Json.Int rounds;
        "subsumed", Json.Int subsumed;
        "strengthened", Json.Int strengthened;
        "eliminated_vars", Json.Int eliminated_vars;
        "failed_literals", Json.Int failed_literals;
        "clauses_before", Json.Int clauses_before;
        "clauses_after", Json.Int clauses_after;
      ]
  | Gc { reclaimed_bytes; arena_bytes_before; arena_bytes_after } ->
    Json.Obj
      [
        "event", Json.String "gc";
        "reclaimed_bytes", Json.Int reclaimed_bytes;
        "arena_bytes_before", Json.Int arena_bytes_before;
        "arena_bytes_after", Json.Int arena_bytes_after;
      ]
  | Heartbeat { conflict_no; decisions; propagations; learnt_live; seconds } ->
    Json.Obj
      [
        "event", Json.String "heartbeat";
        "conflict_no", Json.Int conflict_no;
        "decisions", Json.Int decisions;
        "propagations", Json.Int propagations;
        "learnt_live", Json.Int learnt_live;
        "seconds", Json.Float seconds;
      ]
  | Share { direction; size; glue } ->
    Json.Obj
      [
        "event", Json.String "share";
        "direction", Json.String (direction_to_string direction);
        "size", Json.Int size;
        "glue", Json.Int glue;
      ]
  | Load { vars; clauses; literals; seconds; arena_bytes; scratch_words } ->
    Json.Obj
      [
        "event", Json.String "load";
        "vars", Json.Int vars;
        "clauses", Json.Int clauses;
        "literals", Json.Int literals;
        "seconds", Json.Float seconds;
        "arena_bytes", Json.Int arena_bytes;
        "scratch_words", Json.Int scratch_words;
      ]
  | Warn { message } ->
    Json.Obj
      [ "event", Json.String "warn"; "message", Json.String message ]
  | Server_request { session; op; status; conflicts; propagations; latency_ms }
    ->
    Json.Obj
      [
        "event", Json.String "server_request";
        "session", Json.String session;
        "op", Json.String op;
        "status", Json.String status;
        "conflicts", Json.Int conflicts;
        "propagations", Json.Int propagations;
        "latency_ms", Json.Float latency_ms;
      ]

let event_to_json ?worker event =
  let fields =
    match event_fields event with
    | Json.Obj fields -> fields
    | json -> [ "event", json ]
  in
  match worker with
  | None -> Json.Obj fields
  | Some w -> Json.Obj (("worker", Json.Int w) :: fields)

let set_sink t sink =
  t.sink <- sink;
  t.active <- sink <> Null

let sink t = t.sink
let active t = t.active
let emitted t = t.emitted
let set_worker t w = t.worker <- Some w
let worker t = t.worker

let emit t event =
  match t.sink with
  | Null -> ()
  | Callback f ->
    t.emitted <- t.emitted + 1;
    f event
  | Jsonl oc ->
    t.emitted <- t.emitted + 1;
    (* Line-buffered with an explicit flush: traces are a debugging
       aid, so survivability of every line beats raw throughput. *)
    output_string oc (Json.to_string (event_to_json ?worker:t.worker event));
    output_char oc '\n';
    flush oc

let open_jsonl path = Jsonl (open_out path)

let close t =
  (match t.sink with
  | Jsonl oc -> close_out_noerr oc
  | Null | Callback _ -> ());
  set_sink t Null
