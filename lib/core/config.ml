type activity_mode =
  | Responsible_clauses
  | Conflict_clause_only

type decision_mode =
  | Top_clause
  | Global_most_active
  | Vsids_literal

type polarity_mode =
  | Symmetrize
  | Sat_top
  | Unsat_top
  | Take_zero
  | Take_one
  | Take_random

type global_polarity_mode =
  | Nb_two
  | Gp_take_zero
  | Gp_take_one
  | Gp_random

type reduction_mode =
  | Berkmin_age_activity
  | Length_limit of int
  | Glue_lbd of int
  | Keep_all

type restart_mode =
  | Fixed of int
  | Luby of int
  | No_restarts

type ccmin_mode =
  | Ccmin_off
  | Ccmin_basic
  | Ccmin_deep

type simplify_mode =
  | Simp_off
  | Simp_pre
  | Simp_inprocess

type t = {
  activity_mode : activity_mode;
  decision_mode : decision_mode;
  polarity_mode : polarity_mode;
  global_polarity : global_polarity_mode;
  reduction_mode : reduction_mode;
  restart_mode : restart_mode;
  var_decay_interval : int;
  var_decay_factor : float;
  vsids_decay_interval : int;
  vsids_decay_factor : float;
  young_fraction : float;
  young_keep_length : int;
  young_keep_activity : int;
  old_keep_length : int;
  old_activity_threshold : int;
  old_threshold_increment : int;
  nb_two_threshold : int;
  top_window : int;
  debug_top_cursor : bool;
  ccmin_mode : ccmin_mode;
  phase_saving : bool;
  use_var_heap : bool;
  seed : int;
  trace_jsonl : string option;
  heartbeat_interval : int;
  profile_timers : bool;
  workers : int;
  portfolio_diversify : bool;
  worker_wall_timeout : float option;
  share_learnt : bool;
  share_max_len : int;
  share_max_glue : int;
  simplify : simplify_mode;
  simplify_growth : int;
}

(* Constants follow Section 8 of the paper: young clauses are kept when
   shorter than 43 literals or with activity above 7; old clauses when
   shorter than 9 literals or above a threshold starting at 60.  The
   restart interval of 550 conflicts and the activity decay (divide by 4
   every 64 conflicts) match the released BerkMin56 binary. *)
let berkmin = {
  activity_mode = Responsible_clauses;
  decision_mode = Top_clause;
  polarity_mode = Symmetrize;
  global_polarity = Nb_two;
  reduction_mode = Berkmin_age_activity;
  restart_mode = Fixed 550;
  var_decay_interval = 64;
  var_decay_factor = 4.0;
  vsids_decay_interval = 100;
  vsids_decay_factor = 2.0;
  young_fraction = 1.0 /. 16.0;
  young_keep_length = 43;
  young_keep_activity = 7;
  old_keep_length = 9;
  old_activity_threshold = 60;
  old_threshold_increment = 1;
  nb_two_threshold = 100;
  top_window = 1;
  debug_top_cursor = false;
  ccmin_mode = Ccmin_off;
  phase_saving = false;
  use_var_heap = false;
  seed = 1;
  trace_jsonl = None;
  heartbeat_interval = 0;
  profile_timers = false;
  workers = 1;
  portfolio_diversify = true;
  worker_wall_timeout = None;
  share_learnt = true;
  share_max_len = 8;
  share_max_glue = 4;
  simplify = Simp_off;
  simplify_growth = 0;
}

let less_sensitivity = { berkmin with activity_mode = Conflict_clause_only }
let less_mobility = { berkmin with decision_mode = Global_most_active }
let sat_top = { berkmin with polarity_mode = Sat_top }
let unsat_top = { berkmin with polarity_mode = Unsat_top }
let take_zero = { berkmin with polarity_mode = Take_zero }
let take_one = { berkmin with polarity_mode = Take_one }
let take_random = { berkmin with polarity_mode = Take_random }

let limited_keeping = { berkmin with reduction_mode = Length_limit 42 }

let chaff = {
  berkmin with
  activity_mode = Conflict_clause_only;
  decision_mode = Vsids_literal;
  polarity_mode = Sat_top; (* VSIDS assigns the chosen literal true *)
  global_polarity = Gp_take_zero;
  reduction_mode = Length_limit 100;
  restart_mode = Fixed 700;
  var_decay_interval = 100;
  var_decay_factor = 2.0;
}

(* Table 10's third solver.  Limmat was a competent but plainer CDCL
   than either contender; this stand-in keeps learning and restarts but
   uses a global variable-activity decision rule without BerkMin's
   top-clause mobility or Chaff's literal-phase scores — the weakest of
   the three presets, matching the competition ordering. *)
let limmat_like = {
  chaff with
  decision_mode = Global_most_active;
  restart_mode = Luby 64;
  polarity_mode = Take_one;
  reduction_mode = Length_limit 60;
}

(* The modern search-quality pack: every post-2002 strategy switched on
   at once on top of the paper's heuristics — deep conflict-clause
   minimization, phase saving, Luby restarts and glue(LBD)-driven
   database reduction (see docs/STRATEGIES.md). *)
let modern = {
  berkmin with
  ccmin_mode = Ccmin_deep;
  phase_saving = true;
  restart_mode = Luby 64;
  reduction_mode = Glue_lbd 3;
}

let with_seed seed t = { t with seed }
let with_trace_jsonl path t = { t with trace_jsonl = Some path }
let with_heartbeat interval t = { t with heartbeat_interval = interval }
let with_profile_timers t = { t with profile_timers = true }

let with_workers n t =
  if n < 1 then invalid_arg "Config.with_workers: need at least one worker";
  { t with workers = n }

let with_debug_top_cursor t = { t with debug_top_cursor = true }
let with_portfolio_diversify portfolio_diversify t = { t with portfolio_diversify }
let with_worker_wall_timeout s t = { t with worker_wall_timeout = Some s }
let with_share_learnt share_learnt t = { t with share_learnt }

let with_share_max_len n t =
  if n < 1 then invalid_arg "Config.with_share_max_len: need at least 1";
  { t with share_max_len = n }

let with_share_max_glue n t =
  if n < 1 then invalid_arg "Config.with_share_max_glue: need at least 1";
  { t with share_max_glue = n }

let with_simplify simplify t = { t with simplify }

let with_simplify_growth n t =
  if n < 0 then invalid_arg "Config.with_simplify_growth: need >= 0";
  { t with simplify_growth = n }

let with_ccmin ccmin_mode t = { t with ccmin_mode }
let with_phase_saving phase_saving t = { t with phase_saving }
let with_restart_mode restart_mode t = { t with restart_mode }
let with_reduction_mode reduction_mode t = { t with reduction_mode }

let simplify_mode_to_string = function
  | Simp_off -> "off"
  | Simp_pre -> "pre"
  | Simp_inprocess -> "inprocess"

let simplify_mode_of_string = function
  | "off" -> Some Simp_off
  | "pre" -> Some Simp_pre
  | "inprocess" -> Some Simp_inprocess
  | _ -> None

let ccmin_mode_to_string = function
  | Ccmin_off -> "off"
  | Ccmin_basic -> "basic"
  | Ccmin_deep -> "deep"

let ccmin_mode_of_string = function
  | "off" -> Some Ccmin_off
  | "basic" -> Some Ccmin_basic
  | "deep" -> Some Ccmin_deep
  | _ -> None

(* The CLI vocabulary for the parameterized modes is "name" or
   "name:N"; the bare name gets the conventional unit (the paper's 550
   for fixed restarts, MiniSat's 64 for Luby, glue<=3 for LBD
   reduction). *)
let positive_suffix s prefix =
  let pl = String.length prefix in
  if
    String.length s > pl + 1
    && String.sub s 0 pl = prefix
    && s.[pl] = ':'
  then
    match int_of_string_opt (String.sub s (pl + 1) (String.length s - pl - 1)) with
    | Some n when n > 0 -> Some n
    | _ -> None
  else None

let restart_mode_to_string = function
  | Fixed n -> Printf.sprintf "fixed:%d" n
  | Luby n -> Printf.sprintf "luby:%d" n
  | No_restarts -> "none"

let restart_mode_of_string s =
  match s with
  | "none" -> Some No_restarts
  | "fixed" -> Some (Fixed 550)
  | "luby" -> Some (Luby 64)
  | s -> (
    match positive_suffix s "fixed" with
    | Some n -> Some (Fixed n)
    | None -> (
      match positive_suffix s "luby" with
      | Some n -> Some (Luby n)
      | None -> None))

let reduction_mode_to_string = function
  | Berkmin_age_activity -> "berkmin"
  | Length_limit n -> Printf.sprintf "length:%d" n
  | Glue_lbd n -> Printf.sprintf "glue:%d" n
  | Keep_all -> "keep-all"

let reduction_mode_of_string s =
  match s with
  | "berkmin" -> Some Berkmin_age_activity
  | "keep-all" -> Some Keep_all
  | "glue" -> Some (Glue_lbd 3)
  | s -> (
    match positive_suffix s "length" with
    | Some n -> Some (Length_limit n)
    | None -> (
      match positive_suffix s "glue" with
      | Some n -> Some (Glue_lbd n)
      | None -> None))

let presets = [
  "berkmin", berkmin;
  "less_sensitivity", less_sensitivity;
  "less_mobility", less_mobility;
  "sat_top", sat_top;
  "unsat_top", unsat_top;
  "take_zero", take_zero;
  "take_one", take_one;
  "take_random", take_random;
  "limited_keeping", limited_keeping;
  "chaff", chaff;
  "limmat_like", limmat_like;
  "modern", modern;
]

(* Observability and portfolio settings don't change the search a
   single solver performs, so a preset with a trace attached or a
   worker count still reports its preset name. *)
let name_of t =
  match
    List.find_opt
      (fun (_, p) ->
        { p with
          seed = t.seed;
          trace_jsonl = t.trace_jsonl;
          heartbeat_interval = t.heartbeat_interval;
          profile_timers = t.profile_timers;
          debug_top_cursor = t.debug_top_cursor;
          workers = t.workers;
          portfolio_diversify = t.portfolio_diversify;
          worker_wall_timeout = t.worker_wall_timeout;
          share_learnt = t.share_learnt;
          share_max_len = t.share_max_len;
          share_max_glue = t.share_max_glue;
          simplify = t.simplify;
          simplify_growth = t.simplify_growth;
        }
        = t)
      presets
  with
  | Some (name, _) -> name
  | None -> "custom"

let pp fmt t =
  let activity = match t.activity_mode with
    | Responsible_clauses -> "responsible-clauses"
    | Conflict_clause_only -> "conflict-clause-only"
  in
  let decision = match t.decision_mode with
    | Top_clause -> "top-clause"
    | Global_most_active -> "global-most-active"
    | Vsids_literal -> "vsids-literal"
  in
  let polarity = match t.polarity_mode with
    | Symmetrize -> "symmetrize"
    | Sat_top -> "sat-top"
    | Unsat_top -> "unsat-top"
    | Take_zero -> "take-0"
    | Take_one -> "take-1"
    | Take_random -> "take-rand"
  in
  let reduction = match t.reduction_mode with
    | Berkmin_age_activity -> "berkmin"
    | Length_limit n -> Printf.sprintf "length<=%d" n
    | Glue_lbd n -> Printf.sprintf "glue<=%d" n
    | Keep_all -> "keep-all"
  in
  let restarts = match t.restart_mode with
    | Fixed n -> Printf.sprintf "fixed(%d)" n
    | Luby n -> Printf.sprintf "luby(%d)" n
    | No_restarts -> "none"
  in
  let simplify =
    match t.simplify with
    | Simp_off -> ""
    | m -> Printf.sprintf " simplify=%s" (simplify_mode_to_string m)
  in
  let ccmin =
    match t.ccmin_mode with
    | Ccmin_off -> ""
    | m -> Printf.sprintf " ccmin=%s" (ccmin_mode_to_string m)
  in
  let phases = if t.phase_saving then " phase-saving" else "" in
  Format.fprintf fmt
    "{%s: activity=%s decision=%s polarity=%s reduction=%s restarts=%s seed=%d%s%s%s}"
    (name_of t) activity decision polarity reduction restarts t.seed simplify
    ccmin phases
