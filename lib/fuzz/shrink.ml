open Berkmin_types

let rebuild num_vars clauses =
  let cnf = Cnf.create ~num_vars () in
  List.iter (Cnf.add cnf) clauses;
  cnf

(* One sweep of ddmin at a fixed chunk size: tentatively drop each
   window of [size] consecutive clauses, keeping the drop whenever the
   failure survives. *)
let remove_chunks keep num_vars clauses size =
  let arr = Array.of_list clauses in
  let n = Array.length arr in
  let alive = Array.make n true in
  let current () =
    Array.to_list arr |> List.filteri (fun i _ -> alive.(i))
  in
  let idx = ref 0 in
  while !idx < n do
    let hi = min n (!idx + size) in
    let saved = Array.sub alive !idx (hi - !idx) in
    let any = ref false in
    for i = !idx to hi - 1 do
      if alive.(i) then begin
        alive.(i) <- false;
        any := true
      end
    done;
    if !any && not (keep (rebuild num_vars (current ()))) then
      Array.blit saved 0 alive !idx (hi - !idx);
    idx := hi
  done;
  current ()

let shrink_clauses keep num_vars clauses =
  let clauses = ref clauses in
  let size = ref (max 1 (List.length !clauses / 2)) in
  while !size >= 1 do
    clauses := remove_chunks keep num_vars !clauses !size;
    size := (if !size = 1 then 0 else !size / 2)
  done;
  !clauses

(* Strengthen clauses literal by literal: dropping a literal makes the
   clause harder to satisfy, and smaller counterexamples are easier to
   read.  Restarts on a clause after every successful drop. *)
let shrink_literals keep num_vars clauses =
  let arr = Array.of_list clauses in
  for i = 0 to Array.length arr - 1 do
    let again = ref true in
    while !again do
      again := false;
      let lits = Clause.to_array arr.(i) in
      let len = Array.length lits in
      let j = ref 0 in
      while !j < len && not !again do
        let candidate =
          Clause.of_list
            (Array.to_list lits |> List.filteri (fun k _ -> k <> !j))
        in
        let trial =
          Array.to_list
            (Array.mapi (fun k c -> if k = i then candidate else c) arr)
        in
        if keep (rebuild num_vars trial) then begin
          arr.(i) <- candidate;
          again := true
        end;
        incr j
      done
    done
  done;
  Array.to_list arr

(* Renumber the surviving variables densely so the counterexample's
   header matches what it actually uses. *)
let compact keep cnf =
  let clauses = Cnf.clauses cnf in
  let used = Hashtbl.create 16 in
  List.iter
    (fun c -> Clause.iter (fun l -> Hashtbl.replace used (Lit.var l) ()) c)
    clauses;
  let vars =
    Hashtbl.fold (fun v () acc -> v :: acc) used [] |> List.sort compare
  in
  if List.length vars = Cnf.num_vars cnf then cnf
  else begin
    let map = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.add map v i) vars;
    let rename l = Lit.make (Hashtbl.find map (Lit.var l)) (Lit.is_pos l) in
    let candidate =
      rebuild (List.length vars)
        (List.map
           (fun c -> Clause.of_array (Array.map rename (Clause.to_array c)))
           clauses)
    in
    if keep candidate then candidate else cnf
  end

let minimize ?(max_passes = 8) ~keep cnf =
  if not (keep cnf) then cnf
  else begin
    let current = ref cnf in
    let changed = ref true in
    let pass = ref 0 in
    while !changed && !pass < max_passes do
      incr pass;
      changed := false;
      let nv = Cnf.num_vars !current in
      let before_clauses = Cnf.num_clauses !current in
      let before_lits = Cnf.num_literals !current in
      let clauses = shrink_clauses keep nv (Cnf.clauses !current) in
      let clauses = shrink_literals keep nv clauses in
      let next = compact keep (rebuild nv clauses) in
      if
        Cnf.num_clauses next < before_clauses
        || Cnf.num_literals next < before_lits
        || Cnf.num_vars next < nv
      then changed := true;
      current := next
    done;
    !current
  end
