(** Structured CNF mutators for the differential fuzzer.

    Each mutator is a small, semantically characterised edit: some
    preserve satisfiability exactly (duplication, renaming), some only
    weaken (deletion) or strengthen (unit injection) the formula, and
    literal flips change it arbitrarily.  The differential oracle never
    relies on a carried expectation, so any mix is sound to apply. *)

open Berkmin_types

type kind =
  | Duplicate_clause  (** append a copy of a random clause (equivalence-preserving) *)
  | Delete_clause  (** drop a random clause (weakening: UNSAT may become SAT) *)
  | Flip_literal  (** negate one literal of one clause (arbitrary change) *)
  | Inject_unit  (** add a random unit clause (strengthening) *)
  | Rename_vars
      (** apply a random variable permutation (satisfiability-preserving) *)

val all : kind list

val name : kind -> string
(** Stable snake_case identifier used in reports. *)

val apply : Rng.t -> kind -> Cnf.t -> Cnf.t
(** Returns a fresh formula; the input is never modified.  A mutation
    that needs a clause or variable to act on degrades to a plain copy
    on a degenerate formula. *)

val random : Rng.t -> n:int -> Cnf.t -> Cnf.t * kind list
(** Applies [n] independently drawn mutations in sequence, returning
    the mutated formula and the kinds applied, in order. *)
