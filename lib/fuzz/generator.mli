(** Seeded CNF case generation for the differential fuzzer.

    Every case is derived purely from the supplied {!Berkmin_types.Rng.t},
    so a whole campaign is reproducible bit-for-bit from its master
    seed: no wall clock, no global [Random] state. *)

open Berkmin_types

type case = {
  name : string;
      (** Human-readable construction, e.g. ["3sat(v=9,c=38,seed=123)"];
          recorded in counterexample reports. *)
  cnf : Cnf.t;  (** Fresh formula, safe to mutate. *)
}

val generate : Rng.t -> max_vars:int -> case
(** Draws one base case: uniform random k-SAT (k of 2 or 3) near the
    phase transition, planted (guaranteed satisfiable) 3-SAT, or a
    small structured instance from {!Berkmin_gen.Suites.fuzz_seeds}.
    @raise Invalid_argument if [max_vars < 4]. *)
