open Berkmin_types

type kind =
  | Duplicate_clause
  | Delete_clause
  | Flip_literal
  | Inject_unit
  | Rename_vars

let all =
  [ Duplicate_clause; Delete_clause; Flip_literal; Inject_unit; Rename_vars ]

let name = function
  | Duplicate_clause -> "duplicate_clause"
  | Delete_clause -> "delete_clause"
  | Flip_literal -> "flip_literal"
  | Inject_unit -> "inject_unit"
  | Rename_vars -> "rename_vars"

let rebuild num_vars clauses =
  let cnf = Cnf.create ~num_vars () in
  List.iter (Cnf.add cnf) clauses;
  cnf

let apply rng kind cnf =
  let num_vars = Cnf.num_vars cnf in
  let clauses = Cnf.clauses cnf in
  let n = List.length clauses in
  match kind with
  | Duplicate_clause ->
    if n = 0 then Cnf.copy cnf
    else rebuild num_vars (clauses @ [ List.nth clauses (Rng.int rng n) ])
  | Delete_clause ->
    if n = 0 then Cnf.copy cnf
    else begin
      let victim = Rng.int rng n in
      rebuild num_vars (List.filteri (fun i _ -> i <> victim) clauses)
    end
  | Flip_literal ->
    if not (List.exists (fun c -> Clause.length c > 0) clauses) then
      Cnf.copy cnf
    else begin
      let rec pick () =
        let i = Rng.int rng n in
        let c = List.nth clauses i in
        if Clause.length c = 0 then pick () else (i, c)
      in
      let i, c = pick () in
      let lits = Clause.to_array c in
      let j = Rng.int rng (Array.length lits) in
      lits.(j) <- Lit.negate lits.(j);
      rebuild num_vars
        (List.mapi
           (fun k c0 -> if k = i then Clause.of_array lits else c0)
           clauses)
    end
  | Inject_unit ->
    let nv = max 1 num_vars in
    let l = Lit.make (Rng.int rng nv) (Rng.bool rng) in
    rebuild nv (clauses @ [ Clause.of_list [ l ] ])
  | Rename_vars ->
    if num_vars = 0 then Cnf.copy cnf
    else begin
      let perm = Array.init num_vars Fun.id in
      Rng.shuffle rng perm;
      let rename l = Lit.make perm.(Lit.var l) (Lit.is_pos l) in
      rebuild num_vars
        (List.map
           (fun c -> Clause.of_array (Array.map rename (Clause.to_array c)))
           clauses)
    end

let random rng ~n cnf =
  let rec go cnf acc i =
    if i = n then (cnf, List.rev acc)
    else begin
      let kind = List.nth all (Rng.int rng (List.length all)) in
      go (apply rng kind cnf) (kind :: acc) (i + 1)
    end
  in
  go (Cnf.copy cnf) [] 0
