(** Campaign driver: the Runner-level API behind [bin/fuzz.ml].

    A campaign is a seeded loop of rounds; each round draws a base case
    ({!Generator}), applies a few structured mutations ({!Mutate}),
    runs the differential oracle ({!Oracle}) and, on any failure,
    minimizes the formula with {!Shrink} while the {e same} failure
    (same solver, same oracle) persists.  Everything — including the
    report JSON — is a pure function of the configuration, so two runs
    with the same seed are bit-identical. *)

open Berkmin_types

type config = {
  seed : int;
  rounds : int;
  max_vars : int;  (** per-case variable cap; must be [>= 4] *)
  max_mutations : int;  (** each round draws 0..[max_mutations] mutations *)
  shrink : bool;  (** minimize counterexamples before reporting *)
  solvers : Oracle.solver list option;
      (** [None] means {!Oracle.default_solvers}; tests inject broken
          oracles here *)
  incremental_queries : int;
      (** per-round random assumption-set queries cross-checked by the
          {!Incremental} oracle (resident solver vs fresh rebuild);
          [0] disables the lane *)
}

val default : config
(** seed 0, 200 rounds, 30 vars, up to 4 mutations, shrinking on,
    default solvers, 4 incremental queries per round. *)

type counterexample = {
  round : int;  (** 1-based round that found it *)
  base : string;  (** generator description of the base case *)
  mutations : string list;  (** mutation names applied, in order *)
  failures : Oracle.failure list;
  cnf : Cnf.t;  (** the formula as fuzzed *)
  minimized : Cnf.t option;  (** present when [config.shrink] *)
}

type report = {
  config : config;
  sat : int;
  unsat : int;
  undecided : int;  (** rounds where no solver decided *)
  mutations_applied : int;
  counterexamples : counterexample list;
}

val run : ?log:(string -> unit) -> config -> report
(** Runs the campaign.  [log] receives deterministic progress lines
    (counterexamples and their minimized sizes — never timings).
    @raise Invalid_argument if [config.max_vars < 4]. *)

val counterexample_to_json : counterexample -> Json.t

val report_to_json : report -> Json.t
(** The ["fuzz"] schema of [docs/OBSERVABILITY.md]: seed, verdict
    counts and embedded DIMACS counterexamples; no wall-clock fields,
    so the document is reproducible byte-for-byte from the seed. *)
