(** Differential oracle for the incremental interface.

    One resident solver answers a seeded stream of random
    assumption-set queries — with random clauses occasionally added
    between queries through {!Berkmin.Solver.add_clause} — while a
    fresh solver rebuilt from the accumulated formula answers the same
    query from scratch.  Every decided verdict must match the fresh
    solver's bit-for-bit; SAT models must satisfy the formula and
    honour the assumptions on both lanes; failed-assumption cores must
    be genuine subsets of the assumptions that a fresh solve still
    refutes.

    The query stream is a pure function of [seed], so a failing
    [(formula, seed)] pair replays exactly — which is how the campaign
    runner ({!Runner}) shrinks formulas while holding the failure. *)

open Berkmin_types

type failure = {
  query : int;  (** 1-based index in the query stream *)
  assumps : Lit.t list;  (** the assumption set under test *)
  detail : string;
}

val check : ?queries:int -> seed:int -> Cnf.t -> failure list
(** Runs [queries] (default 4) assumption-set queries; an empty list
    means the resident and fresh lanes agreed throughout.  Queries the
    per-query conflict budget decides on neither lane are skipped, so
    the check never hangs on adversarial formulas. *)

val failure_to_json : failure -> Json.t
