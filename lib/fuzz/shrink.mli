(** Delta-debugging minimizer for failing CNF cases.

    Given a predicate that recognises "this formula still triggers the
    failure", the minimizer searches for a much smaller formula on
    which the predicate still holds: ddmin-style clause-chunk removal,
    per-literal clause strengthening, then dense variable renumbering.
    Entirely deterministic — the same input and predicate always yield
    the same minimum. *)

open Berkmin_types

val minimize : ?max_passes:int -> keep:(Cnf.t -> bool) -> Cnf.t -> Cnf.t
(** [minimize ~keep cnf] requires [keep cnf = true] (otherwise [cnf]
    is returned unchanged) and greedily shrinks while [keep] holds.
    [keep] is invoked O(clauses + literals) times per pass;
    [max_passes] (default 8) bounds the outer fixpoint loop. *)
