open Berkmin_types

type config = {
  seed : int;
  rounds : int;
  max_vars : int;
  max_mutations : int;
  shrink : bool;
  solvers : Oracle.solver list option;
  incremental_queries : int;
}

let default =
  {
    seed = 0;
    rounds = 200;
    max_vars = 30;
    max_mutations = 4;
    shrink = true;
    solvers = None;
    incremental_queries = 4;
  }

type counterexample = {
  round : int;
  base : string;
  mutations : string list;
  failures : Oracle.failure list;
  cnf : Cnf.t;
  minimized : Cnf.t option;
}

type report = {
  config : config;
  sat : int;
  unsat : int;
  undecided : int;
  mutations_applied : int;
  counterexamples : counterexample list;
}

(* Minimization must preserve the original failure, not just any
   failure: shrinking a verdict mismatch into an unrelated crash would
   hand the user the wrong counterexample. *)
let same_failure (f : Oracle.failure) (g : Oracle.failure) =
  f.Oracle.culprit = g.Oracle.culprit && f.Oracle.oracle = g.Oracle.oracle

let run ?(log = fun _ -> ()) config =
  if config.max_vars < 4 then
    invalid_arg "Fuzz.Runner.run: max_vars must be >= 4";
  let solvers =
    match config.solvers with
    | Some s -> s
    | None -> Oracle.default_solvers ()
  in
  let rng = Rng.create config.seed in
  let sat = ref 0 and unsat = ref 0 and undecided = ref 0 in
  let mutations_applied = ref 0 in
  let counterexamples = ref [] in
  for round = 1 to config.rounds do
    let case = Generator.generate rng ~max_vars:config.max_vars in
    let n = Rng.int rng (config.max_mutations + 1) in
    let cnf, kinds = Mutate.random rng ~n case.Generator.cnf in
    mutations_applied := !mutations_applied + List.length kinds;
    let res = Oracle.differential ~solvers cnf in
    (* The incremental lane draws its seed every round — even when
       disabled — so enabling it never perturbs earlier rounds of the
       same campaign seed. *)
    let inc_seed = Rng.int rng 0x3FFFFFFF in
    let incremental_failures c =
      if config.incremental_queries <= 0 then []
      else
        Incremental.check ~queries:config.incremental_queries ~seed:inc_seed c
        |> List.map (fun (f : Incremental.failure) ->
               {
                 Oracle.culprit = "cdcl-incremental";
                 oracle = "incremental";
                 detail =
                   Printf.sprintf "query %d under [%s]: %s" f.Incremental.query
                     (String.concat " "
                        (List.map Lit.to_string f.Incremental.assumps))
                     f.Incremental.detail;
               })
    in
    let failures = res.Oracle.failures @ incremental_failures cnf in
    (match res.Oracle.verdict with
    | Oracle.V_sat -> incr sat
    | Oracle.V_unsat -> incr unsat
    | Oracle.V_undecided -> incr undecided);
    if failures <> [] then begin
      let witness = List.hd failures in
      log
        (Printf.sprintf "round %d: %s oracle failed for %s: %s" round
           witness.Oracle.oracle witness.Oracle.culprit witness.Oracle.detail);
      let minimized =
        if not config.shrink then None
        else begin
          let keep c =
            List.exists (same_failure witness)
              ((Oracle.differential ~solvers c).Oracle.failures
              @ incremental_failures c)
          in
          let m = Shrink.minimize ~keep cnf in
          log
            (Printf.sprintf "round %d: minimized to %d clauses over %d vars"
               round (Cnf.num_clauses m) (Cnf.num_vars m));
          Some m
        end
      in
      counterexamples :=
        {
          round;
          base = case.Generator.name;
          mutations = List.map Mutate.name kinds;
          failures;
          cnf;
          minimized;
        }
        :: !counterexamples
    end
  done;
  {
    config;
    sat = !sat;
    unsat = !unsat;
    undecided = !undecided;
    mutations_applied = !mutations_applied;
    counterexamples = List.rev !counterexamples;
  }

let counterexample_to_json ce =
  Json.Obj
    ([
       ("round", Json.Int ce.round);
       ("base", Json.String ce.base);
       ("mutations", Json.List (List.map (fun m -> Json.String m) ce.mutations));
       ("failures", Json.List (List.map Oracle.failure_to_json ce.failures));
       ("vars", Json.Int (Cnf.num_vars ce.cnf));
       ("clauses", Json.Int (Cnf.num_clauses ce.cnf));
       ("dimacs", Json.String (Berkmin_dimacs.Dimacs.to_string ce.cnf));
     ]
    @
    match ce.minimized with
    | None -> []
    | Some m ->
      [
        ("minimized_vars", Json.Int (Cnf.num_vars m));
        ("minimized_clauses", Json.Int (Cnf.num_clauses m));
        ("minimized_dimacs", Json.String (Berkmin_dimacs.Dimacs.to_string m));
      ])

let report_to_json r =
  Json.Obj
    [
      ("suite", Json.String "fuzz");
      ("seed", Json.Int r.config.seed);
      ("rounds", Json.Int r.config.rounds);
      ("max_vars", Json.Int r.config.max_vars);
      ("max_mutations", Json.Int r.config.max_mutations);
      ("shrink", Json.Bool r.config.shrink);
      ("incremental_queries", Json.Int r.config.incremental_queries);
      ("sat", Json.Int r.sat);
      ("unsat", Json.Int r.unsat);
      ("undecided", Json.Int r.undecided);
      ("mutations_applied", Json.Int r.mutations_applied);
      ("disagreements", Json.Int (List.length r.counterexamples));
      ( "counterexamples",
        Json.List (List.map counterexample_to_json r.counterexamples) );
    ]
