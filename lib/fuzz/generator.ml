open Berkmin_types
open Berkmin_gen

type case = {
  name : string;
  cnf : Cnf.t;
}

(* Uniform k-SAT with rng-drawn size: the clause/variable ratio spans
   2.0 .. 6.0 so both verdicts (and the hard middle) are exercised. *)
let random_ksat rng ~max_vars =
  let k = 2 + Rng.int rng 2 in
  let num_vars = min max_vars (4 + Rng.int rng (max_vars - 3)) in
  let ratio_pct = 200 + Rng.int rng 400 in
  let num_clauses = max 1 (num_vars * ratio_pct / 100) in
  let seed = Rng.int rng 1_000_000 in
  let cnf = Random_ksat.generate ~num_vars ~num_clauses ~k ~seed in
  {
    name = Printf.sprintf "%dsat(v=%d,c=%d,seed=%d)" k num_vars num_clauses seed;
    cnf;
  }

let planted rng ~max_vars =
  let num_vars = min max_vars (4 + Rng.int rng (max_vars - 3)) in
  let ratio_pct = 300 + Rng.int rng 200 in
  let num_clauses = max 1 (num_vars * ratio_pct / 100) in
  let seed = Rng.int rng 1_000_000 in
  let cnf = Random_ksat.planted ~num_vars ~num_clauses ~k:3 ~seed in
  {
    name =
      Printf.sprintf "planted3sat(v=%d,c=%d,seed=%d)" num_vars num_clauses seed;
    cnf;
  }

(* A structured seed from lib/gen, copied so mutators cannot corrupt
   the shared instance. *)
let structured rng ~max_vars =
  match Suites.fuzz_seeds ~max_vars with
  | [] -> random_ksat rng ~max_vars
  | seeds ->
    let inst = List.nth seeds (Rng.int rng (List.length seeds)) in
    { name = inst.Instance.name; cnf = Cnf.copy inst.Instance.cnf }

let generate rng ~max_vars =
  if max_vars < 4 then
    invalid_arg "Generator.generate: max_vars must be >= 4";
  match Rng.int rng 4 with
  | 0 -> planted rng ~max_vars
  | 1 -> structured rng ~max_vars
  | _ -> random_ksat rng ~max_vars
