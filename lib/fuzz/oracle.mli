(** The differential oracle: four independent judgements of one formula.

    A formula is run through every configured solver (by default the
    CDCL engine and the reference DPLL, which share no search code) and
    the answers are cross-examined by four oracles:

    - {b verdict}: every pair of decided answers must agree SAT/UNSAT;
    - {b model}: every SAT answer's model must satisfy the formula;
    - {b proof}: every UNSAT answer carrying a DRUP derivation must
      pass {!Berkmin_proof.Drup.check};
    - {b crash}: no solver may raise.

    [A_unknown] (budget exhausted) never counts as a disagreement. *)

open Berkmin_types

type answer =
  | A_sat of bool array  (** total assignment indexed by variable *)
  | A_unsat of Berkmin_proof.Drup.t option
      (** optional DRUP derivation to certify *)
  | A_unknown  (** budget exhausted *)

type solver = {
  name : string;
  solve : Cnf.t -> answer;
}

val cdcl :
  ?config:Berkmin.Config.t -> ?budget:Berkmin.Solver.budget -> unit -> solver
(** The CDCL engine with DRUP logging installed; every UNSAT answer
    carries its proof.  The default budget is
    {!Berkmin_harness.Runner.fuzz_budget} (conflict-only, so runs are
    deterministic). *)

val dpll : ?max_nodes:int -> unit -> solver
(** The independent reference DPLL (default budget: 500k nodes). *)

val simplify_cdcl :
  ?mode:Berkmin.Config.simplify_mode ->
  ?config:Berkmin.Config.t ->
  ?budget:Berkmin.Solver.budget ->
  unit ->
  solver
(** The CDCL engine with clause-database simplification enabled
    (default mode {!Berkmin.Config.Simp_pre}), DRUP logging included —
    proofs cover every subsumption, strengthening, elimination and
    probe.  Named ["cdcl:simplify-pre"] / ["cdcl:simplify-inprocess"]
    explicitly, since {!Berkmin.Config.name_of} keeps preset names
    stable across the simplify toggle.  Racing it against the plain
    lanes turns the fuzzer into a soundness gate for the simplifier. *)

val strategy_cdcl :
  ?config:Berkmin.Config.t ->
  ?budget:Berkmin.Solver.budget ->
  name:string ->
  (Berkmin.Config.t -> Berkmin.Config.t) ->
  unit ->
  solver
(** The CDCL engine with [tweak] applied to the base configuration,
    named ["cdcl:" ^ name] explicitly (as with {!simplify_cdcl},
    {!Berkmin.Config.name_of} would report a tweaked preset as
    ["custom"]).  DRUP logging included. *)

val strategy_solvers :
  ?config:Berkmin.Config.t ->
  ?budget:Berkmin.Solver.budget ->
  unit ->
  solver list
(** The search-quality strategy lanes: ["cdcl:ccmin-deep"],
    ["cdcl:phase-saving"], ["cdcl:luby"], ["cdcl:glue-reduce"] (each
    one modern heuristic switched on alone) and ["cdcl:modern"] (all
    four at once).  Racing them against the plain CDCL and DPLL lanes
    turns the fuzzer into a soundness gate for every strategy: each
    lane's verdicts, models and DRUP proofs are cross-examined like any
    other solver's. *)

val portfolio :
  ?config:Berkmin.Config.t ->
  ?workers:int ->
  ?share:bool ->
  ?budget:Berkmin.Solver.budget ->
  unit ->
  solver
(** A process-parallel portfolio race ({!Berkmin_portfolio.Portfolio})
    as one oracle solver, named ["portfolio<N>:share"] or
    ["portfolio<N>:noshare"].  Which worker wins is
    timing-nondeterministic, but everything the oracles judge —
    verdict, model validity, absence of crashes — must be invariant,
    so racing a share-on lane against share-off and the sequential
    solvers turns the fuzzer into a soundness check of the
    learnt-clause exchange.  UNSAT answers carry no proof (DRUP
    logging follows one solver's derivation, not a race). *)

val default_solvers : unit -> solver list
(** [[cdcl (); dpll ()]]. *)

type failure = {
  culprit : string;  (** name of the offending solver *)
  oracle : string;  (** ["verdict"], ["model"], ["proof"] or ["crash"] *)
  detail : string;
}

type verdict =
  | V_sat
  | V_unsat
  | V_undecided  (** no solver decided *)

type result = {
  verdict : verdict;
      (** the first decided answer's verdict (disagreements are in
          [failures]) *)
  failures : failure list;
}

val differential : ?solvers:solver list -> Cnf.t -> result
(** Runs every solver on (a private copy of) the formula and applies
    the four oracles.  An empty [failures] list means all delivered
    answers are consistent and certified.  Proofs longer than 50k steps
    are not re-checked (the forward checker is quadratic); this never
    triggers on fuzz-sized instances. *)

val failure_to_json : failure -> Json.t
