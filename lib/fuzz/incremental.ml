open Berkmin_types
module Solver = Berkmin.Solver

type failure = {
  query : int;
  assumps : Lit.t list;
  detail : string;
}

(* Fuzz-sized formulas decide in a handful of conflicts; the cap only
   exists so an adversarial case degrades to a skipped query instead
   of an unbounded search. *)
let per_query_conflicts = 20_000

let lit_set lits = List.sort_uniq compare lits

let check ?(queries = 4) ~seed cnf =
  let rng = Rng.create seed in
  let base = Cnf.copy cnf in
  let resident = Solver.create (Cnf.copy base) in
  let failures = ref [] in
  let fail query assumps fmt =
    Printf.ksprintf
      (fun detail -> failures := { query; assumps; detail } :: !failures)
      fmt
  in
  let fresh_verdict assumps =
    let s = Solver.create (Cnf.copy base) in
    Solver.solve ~budget:(Solver.budget_conflicts per_query_conflicts) ~assumps s
  in
  let check_model q assumps lane m =
    if not (Solver.check_model base m) then
      fail q assumps "%s model does not satisfy the formula" lane
    else
      List.iter
        (fun l ->
          if Lit.var l < Array.length m && m.(Lit.var l) <> Lit.is_pos l then
            fail q assumps "%s model violates assumption %s" lane
              (Lit.to_string l))
        assumps
  in
  for q = 1 to queries do
    (* grow the formula between queries: occasionally a fresh variable,
       occasionally a random clause over the existing ones — both lanes
       see the same accumulated formula *)
    if Rng.int rng 4 = 0 then begin
      ignore (Solver.new_var resident);
      Cnf.ensure_vars base (Cnf.num_vars base + 1)
    end;
    let num_vars = Cnf.num_vars base in
    if num_vars > 0 && Rng.int rng 3 = 0 then begin
      let width = 1 + Rng.int rng 3 in
      let lits =
        List.init width (fun _ -> Lit.make (Rng.int rng num_vars) (Rng.bool rng))
      in
      Cnf.add_clause base lits;
      Solver.add_clause resident lits
    end;
    let assumps =
      if num_vars = 0 then []
      else
        List.init (Rng.int rng 5) (fun _ ->
            Lit.make (Rng.int rng num_vars) (Rng.bool rng))
    in
    (* rebase the resident budget on conflicts already spent so every
       query gets the same allowance the fresh lane does *)
    let budget =
      {
        Solver.max_conflicts =
          Some
            ((Solver.stats resident).Berkmin.Stats.conflicts
            + per_query_conflicts);
        max_seconds = None;
      }
    in
    match Solver.solve ~budget ~assumps resident, fresh_verdict assumps with
    | Solver.Unknown, _ | _, Solver.Unknown -> ()  (* budget: no judgement *)
    | Solver.Sat m, Solver.Sat m' ->
      check_model q assumps "resident" m;
      check_model q assumps "fresh" m'
    | Solver.Unsat, Solver.Unsat ->
      if assumps <> [] then begin
        match Solver.unsat_core resident with
        | None -> fail q assumps "UNSAT under assumptions but no core"
        | Some core ->
          let set = lit_set assumps in
          List.iter
            (fun l ->
              if not (List.mem l set) then
                fail q assumps "core literal %s was never assumed"
                  (Lit.to_string l))
            core;
          (* the core alone must still refute the formula from scratch *)
          (match fresh_verdict (lit_set core) with
          | Solver.Unsat | Solver.Unknown -> ()
          | Solver.Sat _ ->
            fail q assumps "core %s does not refute a fresh solver"
              (String.concat "," (List.map Lit.to_string core)))
      end
    | Solver.Sat _, Solver.Unsat ->
      fail q assumps "resident says SAT, fresh solver says UNSAT"
    | Solver.Unsat, Solver.Sat _ ->
      fail q assumps "resident says UNSAT, fresh solver says SAT"
  done;
  List.rev !failures

let failure_to_json f =
  Json.Obj
    [
      "query", Json.Int f.query;
      ( "assumps",
        Json.List (List.map (fun l -> Json.Int (Lit.to_dimacs l)) f.assumps) );
      "detail", Json.String f.detail;
    ]
