open Berkmin_types
module Drup = Berkmin_proof.Drup

type answer =
  | A_sat of bool array
  | A_unsat of Drup.t option
  | A_unknown

type solver = {
  name : string;
  solve : Cnf.t -> answer;
}

let cdcl ?(config = Berkmin.Config.berkmin)
    ?(budget = Berkmin_harness.Runner.fuzz_budget) () =
  {
    name = "cdcl:" ^ Berkmin.Config.name_of config;
    solve =
      (fun cnf ->
        let solver = Berkmin.Solver.create ~config cnf in
        let proof = Drup.create () in
        Berkmin.Solver.set_proof_logger solver (Drup.record proof);
        match Berkmin.Solver.solve ~budget solver with
        | Berkmin.Solver.Sat m -> A_sat m
        | Berkmin.Solver.Unsat -> A_unsat (Some proof)
        | Berkmin.Solver.Unknown -> A_unknown);
  }

(* Simplification lanes: the same CDCL engine with the preprocessing /
   inprocessing pipeline switched on.  [Config.name_of] treats
   simplification as an orthogonal toggle (preset names stay stable),
   so the lane names are explicit.  Racing these against the plain
   CDCL and DPLL lanes makes the differential fuzzer a soundness check
   of every rewrite the simplifier performs: an unsound subsumption,
   elimination or probe shows up as a verdict/model/proof failure. *)
let simplify_cdcl ?(mode = Berkmin.Config.Simp_pre)
    ?(config = Berkmin.Config.berkmin)
    ?(budget = Berkmin_harness.Runner.fuzz_budget) () =
  let config = Berkmin.Config.with_simplify mode config in
  let base = cdcl ~config ~budget () in
  {
    base with
    name =
      Printf.sprintf "cdcl:simplify-%s"
        (Berkmin.Config.simplify_mode_to_string mode);
  }

(* A whole portfolio race as one oracle solver.  Races are
   timing-nondeterministic (which worker wins varies), but the oracles
   only judge what must be invariant: the verdict, the model, and that
   nothing crashes.  Pairing a share-on and a share-off lane in one
   campaign makes the differential fuzzer a soundness check of the
   clause exchange itself: an unsound import shows up as a verdict
   disagreement against the sequential solvers. *)
let portfolio ?(config = Berkmin.Config.berkmin) ?(workers = 2)
    ?(share = true) ?(budget = Berkmin_harness.Runner.fuzz_budget) () =
  let module Portfolio = Berkmin_portfolio.Portfolio in
  let config =
    config
    |> Berkmin.Config.with_workers workers
    |> Berkmin.Config.with_share_learnt share
  in
  {
    name =
      Printf.sprintf "portfolio%d:%s" workers
        (if share then "share" else "noshare");
    solve =
      (fun cnf ->
        let p = Portfolio.solve_config ~budget config cnf in
        match p.Portfolio.result with
        | Berkmin.Solver.Sat m -> A_sat m
        | Berkmin.Solver.Unsat -> A_unsat None
        | Berkmin.Solver.Unknown -> A_unknown);
  }

(* Search-quality strategy lanes: the CDCL engine with one modern
   heuristic switched on at a time, plus the all-on combination.  Like
   the simplify lanes, [Config.name_of] reports a modified preset as
   "custom", so each lane names itself explicitly.  Racing them against
   the plain CDCL and DPLL lanes makes the fuzzer a soundness gate for
   the strategies: ccmin dropping a needed literal, phase saving or a
   Luby schedule steering into an unsound state, or glue-driven
   reduction deleting a locked clause all surface as verdict, model or
   proof failures. *)
let strategy_cdcl ?(config = Berkmin.Config.berkmin)
    ?(budget = Berkmin_harness.Runner.fuzz_budget) ~name tweak () =
  let base = cdcl ~config:(tweak config) ~budget () in
  { base with name = "cdcl:" ^ name }

let strategy_solvers ?config ?budget () =
  [
    strategy_cdcl ?config ?budget ~name:"ccmin-deep"
      (Berkmin.Config.with_ccmin Berkmin.Config.Ccmin_deep)
      ();
    strategy_cdcl ?config ?budget ~name:"phase-saving"
      (Berkmin.Config.with_phase_saving true)
      ();
    strategy_cdcl ?config ?budget ~name:"luby"
      (Berkmin.Config.with_restart_mode (Berkmin.Config.Luby 64))
      ();
    strategy_cdcl ?config ?budget ~name:"glue-reduce"
      (Berkmin.Config.with_reduction_mode (Berkmin.Config.Glue_lbd 3))
      ();
    strategy_cdcl ?config ?budget ~name:"modern"
      (fun base ->
        {
          base with
          Berkmin.Config.ccmin_mode = Berkmin.Config.Ccmin_deep;
          phase_saving = true;
          restart_mode = Berkmin.Config.Luby 64;
          reduction_mode = Berkmin.Config.Glue_lbd 3;
        })
      ();
  ]

let dpll ?(max_nodes = 500_000) () =
  {
    name = "dpll";
    solve =
      (fun cnf ->
        match Berkmin.Dpll.solve ~max_nodes cnf with
        | Berkmin.Dpll.Sat m -> A_sat m
        | Berkmin.Dpll.Unsat -> A_unsat None
        | Berkmin.Dpll.Unknown -> A_unknown);
  }

let default_solvers () = [ cdcl (); dpll () ]

type failure = {
  culprit : string;
  oracle : string;
  detail : string;
}

type verdict =
  | V_sat
  | V_unsat
  | V_undecided

type result = {
  verdict : verdict;
  failures : failure list;
}

(* The forward DRUP checker is quadratic-ish; don't feed it derivations
   far beyond fuzz scale. *)
let max_checked_proof_steps = 50_000

let model_failure name cnf m =
  if Array.length m < Cnf.num_vars cnf then
    Some
      {
        culprit = name;
        oracle = "model";
        detail =
          Printf.sprintf "model covers %d of %d variables" (Array.length m)
            (Cnf.num_vars cnf);
      }
  else if Cnf.satisfied_by cnf m then None
  else
    Some
      {
        culprit = name;
        oracle = "model";
        detail = "model does not satisfy the formula";
      }

let proof_failure name cnf proof =
  if Drup.length proof > max_checked_proof_steps then None
  else
    match Drup.check cnf proof with
    | Drup.Valid -> None
    | Drup.Invalid _ as r ->
      Some
        {
          culprit = name;
          oracle = "proof";
          detail = Drup.check_result_to_string r;
        }

let differential ?solvers cnf =
  let solvers =
    match solvers with Some s -> s | None -> default_solvers ()
  in
  let answers =
    List.map
      (fun s ->
        match s.solve (Cnf.copy cnf) with
        | answer -> (s.name, Ok answer)
        | exception e -> (s.name, Error (Printexc.to_string e)))
      solvers
  in
  let failures = ref [] in
  let emit f = failures := f :: !failures in
  (* crash / model / proof oracles, per answer *)
  List.iter
    (fun (name, answer) ->
      match answer with
      | Error detail -> emit { culprit = name; oracle = "crash"; detail }
      | Ok (A_sat m) -> Option.iter emit (model_failure name cnf m)
      | Ok (A_unsat (Some proof)) -> Option.iter emit (proof_failure name cnf proof)
      | Ok (A_unsat None) | Ok A_unknown -> ())
    answers;
  (* verdict oracle: all decided answers must agree *)
  let decided =
    List.filter_map
      (fun (name, answer) ->
        match answer with
        | Ok (A_sat _) -> Some (name, true)
        | Ok (A_unsat _) -> Some (name, false)
        | Ok A_unknown | Error _ -> None)
      answers
  in
  let verdict =
    match decided with
    | [] -> V_undecided
    | (_, true) :: _ -> V_sat
    | (_, false) :: _ -> V_unsat
  in
  (match decided with
  | [] -> ()
  | (name0, v0) :: rest ->
    List.iter
      (fun (name, v) ->
        if v <> v0 then
          emit
            {
              culprit = name;
              oracle = "verdict";
              detail =
                Printf.sprintf "%s says %s but %s says %s" name0
                  (if v0 then "SAT" else "UNSAT")
                  name
                  (if v then "SAT" else "UNSAT");
            })
      rest);
  { verdict; failures = List.rev !failures }

let failure_to_json f =
  Json.Obj
    [
      ("solver", Json.String f.culprit);
      ("oracle", Json.String f.oracle);
      ("detail", Json.String f.detail);
    ]
