open Berkmin_gen
module Config = Berkmin.Config
module Json = Berkmin_types.Json

type opts = {
  budget : Berkmin.Solver.budget;
  hard_budget : Berkmin.Solver.budget;
  abort_penalty : float;
}

(* ------------------------------------------------------------------ *)
(* Machine-readable trail: every experiment records its data here as
   it prints, so the bench harness can dump a JSON companion to the
   plain-text report.                                                  *)

let json_log : (string * Json.t) list ref = ref []

let reset_json () = json_log := []

let record_json name j = json_log := (name, j) :: !json_log

let collected_json () = List.rev !json_log

(* Budgets are sized so the full evaluation finishes in tens of
   minutes on one core: the reference solver's hardest solve
   (pipe3_w3, ~25 CPU s) fits comfortably, and each abort by a
   baseline costs at most the cap. *)
let default_opts = {
  budget = { Berkmin.Solver.max_conflicts = Some 400_000; max_seconds = Some 45.0 };
  hard_budget =
    { Berkmin.Solver.max_conflicts = Some 600_000; max_seconds = Some 60.0 };
  abort_penalty = 100.0;
}

let quick_opts = {
  budget = Runner.quick_budget;
  hard_budget = Runner.quick_budget;
  abort_penalty = 20.0;
}

(* ------------------------------------------------------------------ *)
(* Shared sweep machinery: run several configurations over the twelve
   classes and print one column per configuration, as Tables 1/2/4/5
   do.                                                                  *)

let check_no_wrong results =
  List.iter
    (fun (r : Runner.class_result) ->
      if r.wrong > 0 then
        Printf.printf
          "WARNING: %d incorrect verdict(s) in class %s — investigate!\n"
          r.wrong r.class_name)
    results

let class_sweep ~name opts configs =
  let classes = Suites.all () in
  (* results.(i) = per-class results of configuration i, class order
     preserved. *)
  let results =
    List.map
      (fun (_, config) ->
        List.map
          (fun (name, instances) ->
            Runner.run_class ~budget:opts.budget config name instances)
          classes)
      configs
  in
  List.iter check_no_wrong results;
  let rows =
    List.mapi
      (fun ci (class_name, _) ->
        class_name
        :: List.map
             (fun per_class ->
               let r = List.nth per_class ci in
               Table.seconds_aborted r.Runner.total_seconds r.Runner.aborted
                 ~penalty:opts.abort_penalty)
             results)
      classes
  in
  let totals =
    "Total"
    :: List.map
         (fun per_class ->
           let t =
             List.fold_left
               (fun acc (r : Runner.class_result) ->
                 acc +. Runner.adjusted_seconds ~penalty:opts.abort_penalty r)
               0.0 per_class
           in
           let aborts =
             List.fold_left
               (fun acc (r : Runner.class_result) -> acc + r.Runner.aborted)
               0 per_class
           in
           if aborts = 0 then Table.seconds t
           else Printf.sprintf "> %.2f (%d)" t aborts)
         results
  in
  let header = "Class" :: List.map fst configs in
  Table.print ~header (rows @ [ totals ]);
  record_json name
    (Json.Obj
       [
         "table", Table.to_json ~header (rows @ [ totals ]);
         ( "configs",
           Json.List
             (List.map2
                (fun (config_name, _) per_class ->
                  Json.Obj
                    [
                      "config", Json.String config_name;
                      ( "classes",
                        Json.List
                          (List.map Runner.class_result_to_json per_class) );
                    ])
                configs results) );
       ])

(* ------------------------------------------------------------------ *)

let table1 opts =
  Table.section "Table 1 — Changing sensitivity of decision-making (seconds)";
  print_endline
    "Paper: BerkMin total 20,412 s vs Less_sensitivity 51,498 s; the gap\n\
     comes from the hard classes (Hanoi, Miters, Fvp_unsat2.0).";
  class_sweep ~name:"table1" opts
    [ "BerkMin", Config.berkmin; "Less_sensitivity", Config.less_sensitivity ]

let table2 opts =
  Table.section "Table 2 — Changing mobility of decision-making (seconds)";
  print_endline
    "Paper: BerkMin total 20,412 s vs Less_mobility > 258,959 s with 3\n\
     aborts (Beijing x2, Fvp_unsat2.0); biggest single novelty.";
  class_sweep ~name:"table2" opts
    [ "BerkMin", Config.berkmin; "Less_mobility", Config.less_mobility ]

let table4 opts =
  Table.section "Table 4 — Branch selection heuristics (seconds)";
  print_endline
    "Paper: BerkMin 20,412 s; Sat_top 36,153; Unsat_top > 155,393 (2);\n\
     Take_0 53,624; Take_1 > 213,808 (3); Take_rand 24,845.  Symmetrize\n\
     and Take_rand are the two good ones.";
  class_sweep ~name:"table4" opts
    [
      "BerkMin", Config.berkmin;
      "Sat_top", Config.sat_top;
      "Unsat_top", Config.unsat_top;
      "Take_0", Config.take_zero;
      "Take_1", Config.take_one;
      "Take_rand", Config.take_random;
    ]

let table5 opts =
  Table.section "Table 5 — Clause database management (seconds)";
  print_endline
    "Paper: BerkMin 20,412 s vs Limited_keeping (GRASP-style, remove\n\
     length > 42) 57,881 s; factor >= 2 on Hanoi, Miters, Fvp_unsat2.0.";
  class_sweep ~name:"table5" opts
    [ "BerkMin", Config.berkmin; "Limited_keeping", Config.limited_keeping ]

(* ------------------------------------------------------------------ *)

let table3 opts =
  Table.section "Table 3 — Skin effect: f(r) by distance from stack top";
  print_endline
    "Paper: f(r) decreases steeply with r on all five hard instances\n\
     (f(0) is small because the topmost clause is consumed by BCP\n\
     immediately after being learnt).";
  let instances = Suites.hard_instances () in
  let outcomes =
    List.map
      (Runner.run_instance ~budget:opts.hard_budget Config.berkmin)
      instances
  in
  let distances = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 50; 100; 500; 1000; 2000 ] in
  let header =
    "distance" :: List.map (fun o -> o.Runner.instance_name) outcomes
  in
  let rows =
    List.map
      (fun r ->
        Printf.sprintf "f(%d)" r
        :: List.map
             (fun o ->
               let skin = o.Runner.skin in
               string_of_int (if r < Array.length skin then skin.(r) else 0))
             outcomes)
      distances
  in
  Table.print ~header rows;
  record_json "table3"
    (Json.Obj
       [
         "table", Table.to_json ~header rows;
         "instances", Json.List (List.map Runner.outcome_to_json outcomes);
       ])

(* ------------------------------------------------------------------ *)

let comparable_classes () =
  List.filter
    (fun (name, _) ->
      List.mem name
        [
          "Blocksworld"; "Hole"; "Par16"; "Sss1.0"; "Sss1.0a"; "Sss_sat1.0";
          "Fvp_unsat1.0"; "Vliw_sat1.0";
        ])
    (Suites.all ())

let dominated_classes () =
  List.filter
    (fun (name, _) ->
      List.mem name [ "Beijing"; "Miters"; "Hanoi"; "Fvp_unsat2.0" ])
    (Suites.all ())

let table6 opts =
  Table.section "Table 6 — BerkMin vs Chaff: comparable classes (seconds)";
  print_endline
    "Paper: Chaff wins Hole (38 vs 339 s) and Fvp_unsat1.0; BerkMin wins\n\
     the rest; neither aborts anything.";
  let classes = comparable_classes () in
  let results =
    List.map
      (fun (name, instances) ->
        let ch = Runner.run_class ~budget:opts.budget Config.chaff name instances in
        let bm = Runner.run_class ~budget:opts.budget Config.berkmin name instances in
        check_no_wrong [ ch; bm ];
        (name, instances, ch, bm))
      classes
  in
  let rows =
    List.map
      (fun (name, instances, (ch : Runner.class_result), bm) ->
        [
          name;
          string_of_int (List.length instances);
          Table.seconds_aborted ch.total_seconds ch.aborted
            ~penalty:opts.abort_penalty;
          Table.seconds_aborted bm.Runner.total_seconds bm.Runner.aborted
            ~penalty:opts.abort_penalty;
          (if ch.total_seconds < bm.Runner.total_seconds then "chaff"
           else "berkmin");
        ])
      results
  in
  let header = [ "Class"; "#inst"; "zChaff"; "BerkMin"; "winner" ] in
  Table.print ~header rows;
  record_json "table6"
    (Json.Obj
       [
         "table", Table.to_json ~header rows;
         ( "classes",
           Json.List
             (List.map
                (fun (_, _, ch, bm) ->
                  Json.Obj
                    [
                      "chaff", Runner.class_result_to_json ch;
                      "berkmin", Runner.class_result_to_json bm;
                    ])
                results) );
       ])

let table7 opts =
  Table.section "Table 7 — Classes where BerkMin dominates (seconds)";
  Printf.printf
    "Paper: Chaff aborts 2 of Beijing, 2 of Miters, 2 of Fvp-unsat2.0;\n\
     BerkMin aborts nothing.  Abort penalty here: %.0f s per abort.\n"
    opts.abort_penalty;
  let classes = dominated_classes () in
  let results =
    List.map
      (fun (name, instances) ->
        let ch =
          Runner.run_class ~budget:opts.hard_budget Config.chaff name instances
        in
        let bm =
          Runner.run_class ~budget:opts.hard_budget Config.berkmin name instances
        in
        check_no_wrong [ ch; bm ];
        (name, instances, ch, bm))
      classes
  in
  let rows =
    List.map
      (fun (name, instances, (ch : Runner.class_result), bm) ->
        [
          name;
          string_of_int (List.length instances);
          Table.seconds_aborted ch.total_seconds ch.aborted
            ~penalty:opts.abort_penalty;
          string_of_int ch.aborted;
          Table.seconds_aborted bm.Runner.total_seconds bm.Runner.aborted
            ~penalty:opts.abort_penalty;
          string_of_int bm.Runner.aborted;
        ])
      results
  in
  let header = [ "Class"; "#inst"; "zChaff"; "ab"; "BerkMin"; "ab" ] in
  Table.print ~header rows;
  record_json "table7"
    (Json.Obj
       [
         "table", Table.to_json ~header rows;
         ( "classes",
           Json.List
             (List.map
                (fun (_, _, ch, bm) ->
                  Json.Obj
                    [
                      "chaff", Runner.class_result_to_json ch;
                      "berkmin", Runner.class_result_to_json bm;
                    ])
                results) );
       ])

let table8 opts =
  Table.section "Table 8 — Decisions and runtimes on hard instances";
  print_endline
    "Paper: BerkMin builds much smaller search trees (e.g. 4pipe 144k vs\n\
     467k decisions) and solves 7pipe where Chaff times out.";
  let instances = Suites.hard_instances () in
  let results =
    List.map
      (fun inst ->
        let ch = Runner.run_instance ~budget:opts.hard_budget Config.chaff inst in
        let bm =
          Runner.run_instance ~budget:opts.hard_budget Config.berkmin inst
        in
        (inst, ch, bm))
      instances
  in
  let rows =
    List.map
      (fun (inst, ch, bm) ->
        [
          inst.Instance.name;
          Instance.expected_to_string inst.Instance.expected;
          string_of_int ch.Runner.decisions
          ^ (if ch.Runner.verdict = Runner.V_aborted then "*" else "");
          Table.seconds ch.Runner.seconds;
          string_of_int bm.Runner.decisions
          ^ (if bm.Runner.verdict = Runner.V_aborted then "*" else "");
          Table.seconds bm.Runner.seconds;
        ])
      results
  in
  let header =
    [ "Instance"; "sat?"; "zChaff dec"; "time"; "BerkMin dec"; "time" ]
  in
  Table.print ~header rows;
  print_endline "(* = aborted at the budget)";
  record_json "table8"
    (Json.Obj
       [
         "table", Table.to_json ~header rows;
         ( "instances",
           Json.List
             (List.map
                (fun (_, ch, bm) ->
                  Json.Obj
                    [
                      "chaff", Runner.outcome_to_json ch;
                      "berkmin", Runner.outcome_to_json bm;
                    ])
                results) );
       ])

let table9 opts =
  Table.section "Table 9 — Database size relative to the initial CNF";
  print_endline
    "Paper: BerkMin's (generated)/(initial) ratio is well below Chaff's\n\
     (e.g. hanoi6: 19.6 vs 93.3) and its peak live database stays within\n\
     ~1-4x of the initial CNF.";
  let instances = Suites.hard_instances () in
  let results =
    List.map
      (fun inst ->
        let ch = Runner.run_instance ~budget:opts.hard_budget Config.chaff inst in
        let bm =
          Runner.run_instance ~budget:opts.hard_budget Config.berkmin inst
        in
        (inst, ch, bm))
      instances
  in
  let gen_ratio (o : Runner.outcome) =
    float_of_int (o.initial_clauses + o.learnt_total)
    /. float_of_int (max o.initial_clauses 1)
  in
  let peak_ratio (o : Runner.outcome) =
    float_of_int o.max_live_clauses /. float_of_int (max o.initial_clauses 1)
  in
  let rows =
    List.map
      (fun (inst, ch, bm) ->
        [
          inst.Instance.name;
          Table.ratio (gen_ratio ch);
          Table.ratio (gen_ratio bm);
          Table.ratio (peak_ratio bm);
        ])
      results
  in
  let header =
    [ "Instance"; "zChaff gen/init"; "BerkMin gen/init"; "BerkMin peak/init" ]
  in
  Table.print ~header rows;
  record_json "table9"
    (Json.Obj
       [
         "table", Table.to_json ~header rows;
         ( "instances",
           Json.List
             (List.map
                (fun (inst, ch, bm) ->
                  Json.Obj
                    [
                      "instance", Json.String inst.Instance.name;
                      "chaff_gen_ratio", Json.Float (gen_ratio ch);
                      "berkmin_gen_ratio", Json.Float (gen_ratio bm);
                      "berkmin_peak_ratio", Json.Float (peak_ratio bm);
                      "chaff", Runner.outcome_to_json ch;
                      "berkmin", Runner.outcome_to_json bm;
                    ])
                results) );
       ])

let table10 opts =
  Table.section "Table 10 — Competition-style robustness (hard set)";
  print_endline
    "Paper: of the SAT-2002 final 31 instances BerkMin solves 15 (5 sat),\n\
     zChaff 7 (1 sat), limmat 4 (2 sat).";
  let instances =
    Suites.hard_instances ()
    @ [
        Pigeonhole.instance 9 8;
        Circuit_bench.pipeline_unsat ~stages:2 ~width:4;
        Circuit_bench.pipeline_unsat ~stages:2 ~width:5;
        Circuit_bench.pipeline_sat ~stages:4 ~width:4;
        Parity.tseitin_instance ~num_vars:22 ~degree:3 ~seed:9;
        Hanoi.unsat_instance 4;
        Circuit_bench.mul_miter ~width:5;
      ]
  in
  let configs =
    [
      "BerkMin", Config.berkmin;
      "zChaff", Config.chaff;
      "limmat", Config.limmat_like;
    ]
  in
  let outcomes =
    List.map
      (fun (name, config) ->
        ( name,
          List.map (Runner.run_instance ~budget:opts.hard_budget config) instances
        ))
      configs
  in
  let rows =
    List.mapi
      (fun i inst ->
        inst.Instance.name
        :: Instance.expected_to_string inst.Instance.expected
        :: List.map
             (fun (_, outs) ->
               let o = List.nth outs i in
               match o.Runner.verdict with
               | Runner.V_aborted -> "*"
               | Runner.V_sat | Runner.V_unsat -> Table.seconds o.Runner.seconds)
             outcomes)
      instances
  in
  Table.print
    ~header:("Instance" :: "sat?" :: List.map fst configs)
    rows;
  let solved (_, outs) =
    List.length (List.filter (fun o -> o.Runner.verdict <> Runner.V_aborted) outs)
  in
  let solved_sat (_, outs) =
    List.length (List.filter (fun o -> o.Runner.verdict = Runner.V_sat) outs)
  in
  List.iter
    (fun entry ->
      let name, _ = entry in
      Printf.printf "%s: solved %d (satisfiable %d)\n" name (solved entry)
        (solved_sat entry))
    outcomes;
  record_json "table10"
    (Json.Obj
       [
         ( "table",
           Table.to_json ~header:("Instance" :: "sat?" :: List.map fst configs)
             rows );
         ( "solvers",
           Json.List
             (List.map
                (fun ((name, outs) as entry) ->
                  Json.Obj
                    [
                      "solver", Json.String name;
                      "solved", Json.Int (solved entry);
                      "solved_sat", Json.Int (solved_sat entry);
                      ( "instances",
                        Json.List (List.map Runner.outcome_to_json outs) );
                    ])
                outcomes) );
       ])

(* ------------------------------------------------------------------ *)

let figure1 opts =
  Table.section "Figure 1 — Cone mobility: decisions entering a gated cone";
  print_endline
    "Paper Fig. 1: a cone of logic feeding an AND gate is idle while the\n\
     gate's other pin is 0 and springs to life when it switches to 1.\n\
     This UNSAT miter pairs a gated cone (equivalent two ways) with a\n\
     pipelined-datapath sub-miter: cone variables can join conflicts\n\
     only while the search explores control=1.  Per 200-decision window,\n\
     the percentage of decisions on cone variables shows how sharply\n\
     each heuristic migrates in and out of the cone as it activates.";
  let cnf, in_cone = Circuit_bench.cone_demo_cnf ~cone_gates:300 ~seed:42 in
  let window = 200 in
  let run config =
    let solver = Berkmin.Solver.create ~config cnf in
    let windows = ref [] in
    let count = ref 0 and cone = ref 0 in
    Berkmin.Solver.set_decision_hook solver (fun v _ ->
        incr count;
        if in_cone v then incr cone;
        if !count = window then begin
          windows := (100.0 *. float_of_int !cone /. float_of_int window) :: !windows;
          count := 0;
          cone := 0
        end);
    let result = Berkmin.Solver.solve ~budget:opts.hard_budget solver in
    (result, List.rev !windows)
  in
  let _, bm = run Config.berkmin in
  let _, lm = run Config.less_mobility in
  let n = max (List.length bm) (List.length lm) in
  let cell ws i =
    match List.nth_opt ws i with
    | Some pct -> Printf.sprintf "%.0f%%" pct
    | None -> "-"
  in
  let shown = min n 20 in
  let rows =
    List.init shown (fun i ->
        [ Printf.sprintf "window %d" (i + 1); cell bm i; cell lm i ])
  in
  Table.print ~header:[ "decisions"; "BerkMin"; "Less_mobility" ] rows;
  Printf.printf
    "(windows of %d decisions; '-' = run finished before that window)\n" window;
  let pcts ws = Json.List (List.map (fun p -> Json.Float p) ws) in
  record_json "figure1"
    (Json.Obj
       [
         "window_decisions", Json.Int window;
         "berkmin_cone_pct", pcts bm;
         "less_mobility_cone_pct", pcts lm;
       ])

(* ------------------------------------------------------------------ *)
(* Extension ablations: design choices DESIGN.md calls out plus the
   paper's stated future-work directions (Remarks 1 and 2, the
   conclusion's note on restart strategies) and one post-2002 feature
   (learnt-clause minimization).                                       *)

let ext_restarts opts =
  Table.section "Ablation — restart strategy (paper conclusions: \"very primitive ... can be significantly improved\")";
  class_sweep ~name:"ext-restarts" opts
    [
      "Fixed 100", { Config.berkmin with Config.restart_mode = Config.Fixed 100 };
      "Fixed 550 (paper)", Config.berkmin;
      "Fixed 2000", { Config.berkmin with Config.restart_mode = Config.Fixed 2000 };
      "Luby 64", { Config.berkmin with Config.restart_mode = Config.Luby 64 };
      "None", { Config.berkmin with Config.restart_mode = Config.No_restarts };
    ]

let ext_window opts =
  Table.section "Ablation — decision window over top clauses (Remark 2)";
  print_endline
    "Paper: \"whether this heuristic can be relaxed and a broader set of\n\
     top clauses be examined\" — left as future work; this runs it.";
  class_sweep ~name:"ext-window" opts
    [
      "w=1 (paper)", Config.berkmin;
      "w=2", { Config.berkmin with Config.top_window = 2 };
      "w=4", { Config.berkmin with Config.top_window = 4 };
      "w=16", { Config.berkmin with Config.top_window = 16 };
    ]

let ext_minimize opts =
  Table.section "Ablation — learnt-clause minimization (post-2002 extension)";
  class_sweep ~name:"ext-minimize" opts
    [
      "Off (paper)", Config.berkmin;
      "Basic", { Config.berkmin with Config.ccmin_mode = Config.Ccmin_basic };
      "Deep", { Config.berkmin with Config.ccmin_mode = Config.Ccmin_deep };
    ]

let ext_varheap opts =
  Table.section "Ablation — most-active-variable lookup (Remark 1 / BerkMin561 strategy 3)";
  print_endline
    "Identical decisions by construction; only the cost of the global\n\
     variable scan differs (naive O(V) scan vs indexed heap).";
  class_sweep ~name:"ext-varheap" opts
    [
      "Naive scan (paper)", Config.berkmin;
      "Heap", { Config.berkmin with Config.use_var_heap = true };
    ]

let ext_dbparams opts =
  Table.section "Ablation — database-management constants (Section 8)";
  print_endline
    "The paper fixes young fraction 1/16, keep-length 43/9, activity\n\
     bars 7/60; this varies the young fraction and the keep bars.";
  class_sweep ~name:"ext-dbparams" opts
    [
      "Paper", Config.berkmin;
      "Young 1/4", { Config.berkmin with Config.young_fraction = 0.25 };
      "Young 1/2", { Config.berkmin with Config.young_fraction = 0.5 };
      ( "Strict",
        { Config.berkmin with
          Config.young_keep_length = 20;
          old_keep_length = 4;
        } );
      ( "Lenient",
        { Config.berkmin with
          Config.young_keep_length = 100;
          old_keep_length = 30;
        } );
    ]

let ext_decay opts =
  Table.section "Ablation — activity aging (divide by 4 every 64 conflicts)";
  class_sweep ~name:"ext-decay" opts
    [
      "Paper (64, /4)", Config.berkmin;
      ( "Slow (256, /2)",
        { Config.berkmin with
          Config.var_decay_interval = 256;
          var_decay_factor = 2.0;
        } );
      ( "Fast (16, /8)",
        { Config.berkmin with
          Config.var_decay_interval = 16;
          var_decay_factor = 8.0;
        } );
      ( "No decay",
        { Config.berkmin with Config.var_decay_interval = 0 } );
    ]

(* ------------------------------------------------------------------ *)

let experiments = [
  "table1", table1;
  "table2", table2;
  "table3", table3;
  "table4", table4;
  "table5", table5;
  "table6", table6;
  "table7", table7;
  "table8", table8;
  "table9", table9;
  "table10", table10;
  "figure1", figure1;
  "ext-restarts", ext_restarts;
  "ext-window", ext_window;
  "ext-minimize", ext_minimize;
  "ext-varheap", ext_varheap;
  "ext-dbparams", ext_dbparams;
  "ext-decay", ext_decay;
]

(* The paper tables; the ext-* ablations run only when asked. *)
let paper_experiments =
  List.filter
    (fun (name, _) -> not (String.length name >= 4 && String.sub name 0 4 = "ext-"))
    experiments

let names = List.map fst experiments

let run_all opts = List.iter (fun (_, f) -> f opts) paper_experiments

let run_extensions opts =
  List.iter
    (fun (name, f) -> if not (List.mem_assoc name paper_experiments) then f opts)
    experiments

let run_one opts name =
  match List.assoc_opt name experiments with
  | Some f ->
    f opts;
    true
  | None -> false
