(** Runs solver configurations over benchmark instances and collects
    per-run records — the machinery shared by every table. *)

open Berkmin_gen

type verdict =
  | V_sat
  | V_unsat
  | V_aborted  (** budget exhausted, the paper's ">" rows *)

type outcome = {
  instance_name : string;
  expected : Instance.expected;
  verdict : verdict;
  correct : bool;
      (** model verified / verdict consistent with the expectation *)
  seconds : float;  (** CPU seconds *)
  conflicts : int;
  decisions : int;
  propagations : int;
  binary_propagations : int;
      (** literals implied straight from the binary implication index *)
  watcher_visits : int;  (** watcher pairs examined by BCP *)
  blocker_hits : int;  (** visits short-circuited by a true blocker *)
  top_cursor_steps : int;  (** learnt-stack entries the decision cursor read *)
  nb_two_cache_hits : int;  (** memoized nb_two neighbourhood lookups *)
  clauses_exported : int;
      (** learnt clauses this solver exported to portfolio peers; 0 in
          sequential runs *)
  clauses_imported : int;  (** foreign learnt clauses adopted; 0 sequential *)
  imports_used_in_conflict : int;
      (** conflict analyses in which an imported clause was an
          antecedent — how often sharing actually steered the search *)
  gc_runs : int;  (** arena compactions *)
  gc_reclaimed_bytes : int;  (** clause bytes physically reclaimed *)
  simplify_runs : int;  (** simplifier passes (lib/simplify) *)
  simplified_clauses : int;
      (** clauses removed by the simplifier: subsumed, satisfied, or
          resolved away during variable elimination *)
  eliminated_vars : int;  (** variables removed by bounded elimination *)
  subsumed : int;  (** clauses dropped by backward subsumption *)
  strengthened : int;
      (** literals removed by self-subsuming resolution *)
  failed_literals : int;  (** level-0 probes that failed (forced units) *)
  learnt_total : int;
  max_live_clauses : int;
  initial_clauses : int;
  skin : int array;  (** Table 3 histogram *)
}

val verdict_to_string : verdict -> string

val props_per_sec : outcome -> float
(** Propagations per second of the run; 0 for zero-length runs. *)

val outcome_to_json : outcome -> Berkmin_types.Json.t
(** One instance run as a JSON object: name, expectation, verdict,
    time, conflicts/decisions/propagations, props/sec (also under the
    long alias ["propagations_per_sec"]), watcher/blocker and GC
    counters, database numbers and the trimmed skin histogram. *)

val run_instance :
  ?budget:Berkmin.Solver.budget -> Berkmin.Config.t -> Instance.t -> outcome
(** Runs one instance; SAT models are re-verified against the formula. *)

type load_info = {
  parse_seconds : float;
      (** parse-only streaming pass over the input; 0 for in-memory
          sources, where a separate pass would measure nothing new *)
  load_seconds : float;  (** [Solver.load] wall clock: parse + bulk load *)
  load_clauses : int;  (** clauses the bulk path streamed in *)
  load_literals : int;  (** literals the bulk path streamed in *)
  load_scratch_words : int;  (** final streaming scratch capacity *)
  source_bytes : int;  (** DIMACS size, serialized text or file *)
}

val run_instance_streamed :
  ?budget:Berkmin.Solver.budget ->
  Berkmin.Config.t ->
  Instance.t ->
  outcome * load_info
(** Runs one instance through the streaming bulk-load path: the formula
    is serialized to DIMACS text and the solver built with
    {!Berkmin.Solver.load_string} instead of [create].  The outcome is
    named ["stream/<name>"] so a summary can hold both lanes; SAT
    models are re-verified against the original formula.  The
    differential against {!run_instance} is what keeps the fast path
    honest in CI. *)

val run_instance_file :
  ?budget:Berkmin.Solver.budget ->
  Berkmin.Config.t ->
  name:string ->
  expected:Instance.expected ->
  string ->
  outcome * load_info
(** Runs a DIMACS file through the streaming load path without ever
    materializing the formula in memory: a parse-only pass (timed as
    [parse_seconds]), then {!Berkmin.Solver.load_file}, then search.
    Unlike {!run_instance}, [seconds] is {e wall} time — the full
    tier's budgets are wall-clock.  SAT models are verified by one more
    streaming pass over the file. *)

val run_instance_portfolio :
  ?budget:Berkmin.Solver.budget ->
  Berkmin.Config.t ->
  Instance.t ->
  outcome * Berkmin_portfolio.Portfolio.outcome
(** Runs one instance as a process-parallel portfolio race built from
    the configuration's {!Berkmin.Config.t.workers} knobs, returning
    both the usual flattened outcome (counters come from the winning
    worker; [seconds] is the race's {e wall} clock, not CPU time) and
    the full per-worker race record.  With [workers = 1] this is
    {!run_instance} modulo the wall/CPU clock difference. *)

type class_result = {
  class_name : string;
  outcomes : outcome list;
  total_seconds : float;
  aborted : int;
  wrong : int;  (** verdicts contradicting expectations: must be 0 *)
}

val run_class :
  ?budget:Berkmin.Solver.budget ->
  Berkmin.Config.t ->
  string ->
  Instance.t list ->
  class_result

val adjusted_seconds : penalty:float -> class_result -> float
(** Total time with [penalty] added per aborted instance — the paper's
    "lower number plus 60,000 times the number of aborted" rows. *)

val class_result_to_json : class_result -> Berkmin_types.Json.t

val default_budget : Berkmin.Solver.budget
(** 500k conflicts or 60 CPU seconds per instance. *)

val quick_budget : Berkmin.Solver.budget
(** 50k conflicts or 10 CPU seconds, for smoke runs. *)

val fuzz_budget : Berkmin.Solver.budget
(** 20k conflicts and no wall-clock component: the differential
    fuzzer's ([lib/fuzz]) CDCL budget must be deterministic, so time
    never enters it. *)
