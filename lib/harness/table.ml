type align =
  | Left
  | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ~header ?aligns rows =
  let cols = List.length header in
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.init cols (fun i -> if i = 0 then Left else Right)
  in
  let all = header :: rows in
  let widths =
    List.init cols (fun i ->
        List.fold_left
          (fun w row ->
            match List.nth_opt row i with
            | Some cell -> max w (String.length cell)
            | None -> w)
          0 all)
  in
  let line row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           pad (List.nth aligns i) (List.nth widths i) cell)
         row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line header :: sep :: List.map line rows) ^ "\n"

let print ~header ?aligns rows =
  print_string (render ~header ?aligns rows)

let to_json ~header rows =
  let open Berkmin_types in
  Json.Obj
    [
      "header", Json.List (List.map (fun h -> Json.String h) header);
      ( "rows",
        Json.List
          (List.map
             (fun row -> Json.List (List.map (fun c -> Json.String c) row))
             rows) );
    ]

let seconds s = Printf.sprintf "%.2f" s

let seconds_aborted total aborted ~penalty =
  if aborted = 0 then Printf.sprintf "%.2f" total
  else Printf.sprintf "> %.2f (%d)" (total +. (penalty *. float_of_int aborted)) aborted

let ratio r = Printf.sprintf "%.2f" r

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')
