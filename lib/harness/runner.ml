open Berkmin_types
open Berkmin_gen

type verdict =
  | V_sat
  | V_unsat
  | V_aborted

type outcome = {
  instance_name : string;
  expected : Instance.expected;
  verdict : verdict;
  correct : bool;
  seconds : float;
  conflicts : int;
  decisions : int;
  propagations : int;
  binary_propagations : int;
  watcher_visits : int;
  blocker_hits : int;
  top_cursor_steps : int;
  nb_two_cache_hits : int;
  clauses_exported : int;
  clauses_imported : int;
  imports_used_in_conflict : int;
  gc_runs : int;
  gc_reclaimed_bytes : int;
  simplify_runs : int;
  simplified_clauses : int;
  eliminated_vars : int;
  subsumed : int;
  strengthened : int;
  failed_literals : int;
  learnt_total : int;
  max_live_clauses : int;
  initial_clauses : int;
  skin : int array;
}

let verdict_to_string = function
  | V_sat -> "SAT"
  | V_unsat -> "UNSAT"
  | V_aborted -> "aborted"

let props_per_sec o =
  if o.seconds <= 0.0 then 0.0
  else float_of_int o.propagations /. o.seconds

let outcome_to_json o =
  let skin_trimmed =
    let last = ref (-1) in
    Array.iteri (fun i n -> if n > 0 then last := i) o.skin;
    List.init (!last + 1) (fun i -> Json.Int o.skin.(i))
  in
  Json.Obj
    [
      "instance", Json.String o.instance_name;
      "expected", Json.String (Instance.expected_to_string o.expected);
      "verdict", Json.String (verdict_to_string o.verdict);
      "correct", Json.Bool o.correct;
      "seconds", Json.Float o.seconds;
      "conflicts", Json.Int o.conflicts;
      "decisions", Json.Int o.decisions;
      "propagations", Json.Int o.propagations;
      "binary_propagations", Json.Int o.binary_propagations;
      "props_per_sec", Json.Float (props_per_sec o);
      "propagations_per_sec", Json.Float (props_per_sec o);
      "watcher_visits", Json.Int o.watcher_visits;
      "blocker_hits", Json.Int o.blocker_hits;
      "top_cursor_steps", Json.Int o.top_cursor_steps;
      "nb_two_cache_hits", Json.Int o.nb_two_cache_hits;
      "clauses_exported", Json.Int o.clauses_exported;
      "clauses_imported", Json.Int o.clauses_imported;
      "imports_used_in_conflict", Json.Int o.imports_used_in_conflict;
      "gc_runs", Json.Int o.gc_runs;
      "gc_reclaimed_bytes", Json.Int o.gc_reclaimed_bytes;
      "simplify_runs", Json.Int o.simplify_runs;
      "simplified_clauses", Json.Int o.simplified_clauses;
      "eliminated_vars", Json.Int o.eliminated_vars;
      "subsumed", Json.Int o.subsumed;
      "strengthened", Json.Int o.strengthened;
      "failed_literals", Json.Int o.failed_literals;
      "learnt_total", Json.Int o.learnt_total;
      "max_live_clauses", Json.Int o.max_live_clauses;
      "initial_clauses", Json.Int o.initial_clauses;
      "skin", Json.List skin_trimmed;
    ]

let default_budget =
  { Berkmin.Solver.max_conflicts = Some 500_000; max_seconds = Some 60.0 }

let quick_budget =
  { Berkmin.Solver.max_conflicts = Some 50_000; max_seconds = Some 10.0 }

let fuzz_budget =
  (* Conflict-only: the differential fuzzer's runs must be bit-identical
     for a given seed, so wall-clock time never enters its budget. *)
  { Berkmin.Solver.max_conflicts = Some 20_000; max_seconds = None }

let outcome_of_stats ~name ~expected ~verdict ~correct ~seconds
    ~initial_clauses st =
  {
    instance_name = name;
    expected;
    verdict;
    correct;
    seconds;
    conflicts = st.Berkmin.Stats.conflicts;
    decisions = st.Berkmin.Stats.decisions;
    propagations = st.Berkmin.Stats.propagations;
    binary_propagations = st.Berkmin.Stats.binary_propagations;
    watcher_visits = st.Berkmin.Stats.watcher_visits;
    blocker_hits = st.Berkmin.Stats.blocker_hits;
    top_cursor_steps = st.Berkmin.Stats.top_cursor_steps;
    nb_two_cache_hits = st.Berkmin.Stats.nb_two_cache_hits;
    clauses_exported = st.Berkmin.Stats.clauses_exported;
    clauses_imported = st.Berkmin.Stats.clauses_imported;
    imports_used_in_conflict = st.Berkmin.Stats.imports_used_in_conflict;
    gc_runs = st.Berkmin.Stats.gc_runs;
    gc_reclaimed_bytes = st.Berkmin.Stats.gc_reclaimed_bytes;
    simplify_runs = st.Berkmin.Stats.simplify_runs;
    simplified_clauses = st.Berkmin.Stats.simplified_clauses;
    eliminated_vars = st.Berkmin.Stats.eliminated_vars;
    subsumed = st.Berkmin.Stats.subsumed;
    strengthened = st.Berkmin.Stats.strengthened;
    failed_literals = st.Berkmin.Stats.failed_literals;
    learnt_total = st.Berkmin.Stats.learnt_total;
    max_live_clauses = st.Berkmin.Stats.max_live_clauses;
    initial_clauses;
    skin = Array.copy st.Berkmin.Stats.skin;
  }

let run_instance ?(budget = default_budget) config inst =
  let cnf = inst.Instance.cnf in
  let solver = Berkmin.Solver.create ~config cnf in
  let started = Sys.time () in
  let result = Berkmin.Solver.solve ~budget solver in
  let seconds = Sys.time () -. started in
  let verdict, correct =
    match result with
    | Berkmin.Solver.Sat model ->
      ( V_sat,
        Cnf.satisfied_by cnf model && Instance.consistent inst ~sat:true )
    | Berkmin.Solver.Unsat -> (V_unsat, Instance.consistent inst ~sat:false)
    | Berkmin.Solver.Unknown -> (V_aborted, true)
  in
  outcome_of_stats ~name:inst.Instance.name ~expected:inst.Instance.expected
    ~verdict ~correct ~seconds
    ~initial_clauses:(Berkmin.Solver.num_original_clauses solver)
    (Berkmin.Solver.stats solver)

(* ------------------------------------------------------------------ *)
(* Streaming-load lanes: the same outcome record, built from a solver
   constructed through [Berkmin.Solver.load] (the bulk path that
   consumes DIMACS without ever materializing a [Cnf.t]).  The
   [load_info] sidecar carries the phase timings and load counters the
   outcome record has no room for.                                     *)

module Dimacs = Berkmin_dimacs.Dimacs

type load_info = {
  parse_seconds : float;
  load_seconds : float;
  load_clauses : int;
  load_literals : int;
  load_scratch_words : int;
  source_bytes : int;
}

let load_info_of_stats ~parse_seconds ~source_bytes st =
  {
    parse_seconds;
    load_seconds = st.Berkmin.Stats.time_load;
    load_clauses = st.Berkmin.Stats.load_clauses;
    load_literals = st.Berkmin.Stats.load_literals;
    load_scratch_words = st.Berkmin.Stats.load_scratch_words;
    source_bytes;
  }

let run_instance_streamed ?(budget = default_budget) config inst =
  let cnf = inst.Instance.cnf in
  let text = Dimacs.to_string cnf in
  let solver = Berkmin.Solver.load_string ~config text in
  let started = Sys.time () in
  let result = Berkmin.Solver.solve ~budget solver in
  let seconds = Sys.time () -. started in
  let verdict, correct =
    match result with
    | Berkmin.Solver.Sat model ->
      ( V_sat,
        Cnf.satisfied_by cnf model && Instance.consistent inst ~sat:true )
    | Berkmin.Solver.Unsat -> (V_unsat, Instance.consistent inst ~sat:false)
    | Berkmin.Solver.Unknown -> (V_aborted, true)
  in
  let st = Berkmin.Solver.stats solver in
  ( outcome_of_stats
      ~name:("stream/" ^ inst.Instance.name)
      ~expected:inst.Instance.expected ~verdict ~correct ~seconds
      ~initial_clauses:(Berkmin.Solver.num_original_clauses solver)
      st,
    load_info_of_stats ~parse_seconds:0.0
      ~source_bytes:(String.length text)
      st )

let clause_satisfied model lits n =
  let rec go i =
    i < n
    &&
    let v = Lit.var lits.(i) in
    (v < Array.length model && model.(v) = Lit.is_pos lits.(i)) || go (i + 1)
  in
  go 0

let model_satisfies_file model path =
  In_channel.with_open_bin path (fun ic ->
      Dimacs.fold_clauses (Dimacs.From_channel ic) ~init:true
        ~f:(fun ok lits n -> ok && clause_satisfied model lits n))

let run_instance_file ?(budget = default_budget) config ~name ~expected path =
  (* Phase 1: a parse-only pass over the file — the raw tokenizer cost,
     with no solver state in sight. *)
  let t0 = Unix.gettimeofday () in
  let clauses = ref 0 and literals = ref 0 in
  In_channel.with_open_bin path (fun ic ->
      Dimacs.iter_clauses (Dimacs.From_channel ic) ~f:(fun _ n ->
          incr clauses;
          literals := !literals + n));
  let parse_seconds = Unix.gettimeofday () -. t0 in
  (* Phase 2: parse again, this time straight into pre-sized solver
     state; [Stats.time_load] records this phase's wall clock. *)
  let solver = Berkmin.Solver.load_file ~config path in
  (* Phase 3: search, under a wall-clock budget — unlike [run_instance]
     the [seconds] field is wall time, since the full tier's budgets
     are wall-clock by design. *)
  let started = Unix.gettimeofday () in
  let result = Berkmin.Solver.solve ~budget solver in
  let seconds = Unix.gettimeofday () -. started in
  let verdict, correct =
    match result with
    | Berkmin.Solver.Sat model ->
      (* Model check without the formula in memory: one more streaming
         pass, every clause must contain a satisfied literal. *)
      (V_sat, model_satisfies_file model path && expected <> Instance.Expect_unsat)
    | Berkmin.Solver.Unsat -> (V_unsat, expected <> Instance.Expect_sat)
    | Berkmin.Solver.Unknown -> (V_aborted, true)
  in
  let st = Berkmin.Solver.stats solver in
  ( outcome_of_stats ~name ~expected ~verdict ~correct ~seconds
      ~initial_clauses:(Berkmin.Solver.num_original_clauses solver)
      st,
    load_info_of_stats ~parse_seconds
      ~source_bytes:(Unix.stat path).Unix.st_size st )

(* ------------------------------------------------------------------ *)
(* Portfolio runs: the same outcome record, built from the winning
   worker of a process-parallel race (lib/portfolio).  [seconds] is
   the race's wall clock — the quantity a portfolio improves — where
   sequential outcomes report CPU time.                                *)

module Portfolio = Berkmin_portfolio.Portfolio

let run_instance_portfolio ?(budget = default_budget) config inst =
  let cnf = inst.Instance.cnf in
  let p = Portfolio.solve_config ~budget config cnf in
  let verdict, correct =
    match p.Portfolio.result with
    | Berkmin.Solver.Sat model ->
      ( V_sat,
        Cnf.satisfied_by cnf model && Instance.consistent inst ~sat:true )
    | Berkmin.Solver.Unsat -> (V_unsat, Instance.consistent inst ~sat:false)
    | Berkmin.Solver.Unknown -> (V_aborted, true)
  in
  let winner_stats =
    let find i =
      List.find_opt (fun w -> w.Portfolio.w_index = i) p.Portfolio.workers
    in
    match Option.bind p.Portfolio.winner find with
    | Some w -> w.Portfolio.w_stats
    | None ->
      (* no winner: report the busiest surviving worker's counters so
         aborted rows still show how much search happened *)
      List.fold_left
        (fun acc w ->
          match acc, w.Portfolio.w_stats with
          | None, s -> s
          | Some a, Some s when s.Berkmin.Stats.conflicts > a.Berkmin.Stats.conflicts ->
            Some s
          | acc, _ -> acc)
        None p.Portfolio.workers
  in
  let st =
    match winner_stats with Some s -> s | None -> Berkmin.Stats.create ()
  in
  let outcome =
    outcome_of_stats ~name:inst.Instance.name ~expected:inst.Instance.expected
      ~verdict ~correct ~seconds:p.Portfolio.wall_seconds
      ~initial_clauses:(Cnf.num_clauses cnf) st
  in
  (outcome, p)

type class_result = {
  class_name : string;
  outcomes : outcome list;
  total_seconds : float;
  aborted : int;
  wrong : int;
}

let run_class ?budget config class_name instances =
  let outcomes = List.map (run_instance ?budget config) instances in
  {
    class_name;
    outcomes;
    total_seconds = List.fold_left (fun a o -> a +. o.seconds) 0.0 outcomes;
    aborted =
      List.length (List.filter (fun o -> o.verdict = V_aborted) outcomes);
    wrong = List.length (List.filter (fun o -> not o.correct) outcomes);
  }

let adjusted_seconds ~penalty r =
  r.total_seconds +. (penalty *. float_of_int r.aborted)

let class_result_to_json r =
  Json.Obj
    [
      "class", Json.String r.class_name;
      "total_seconds", Json.Float r.total_seconds;
      "aborted", Json.Int r.aborted;
      "wrong", Json.Int r.wrong;
      "instances", Json.List (List.map outcome_to_json r.outcomes);
    ]
