(** Drivers regenerating every table and figure of the paper's
    evaluation.  Each prints a paper-shaped plain-text table (and a
    note recalling what the paper reported, so shape can be compared
    at a glance).  [run_all] is what [bench/main.exe] calls. *)

type opts = {
  budget : Berkmin.Solver.budget;  (** per instance, sweep tables *)
  hard_budget : Berkmin.Solver.budget;
      (** per instance for the hard-instance tables (3, 7–10) *)
  abort_penalty : float;
      (** seconds charged per abort in "> total (n)" rows *)
}

val default_opts : opts

val quick_opts : opts
(** Small budgets for smoke runs. *)

val table1 : opts -> unit
(** Sensitivity of decision-making: berkmin vs less_sensitivity. *)

val table2 : opts -> unit
(** Mobility: berkmin vs less_mobility. *)

val table3 : opts -> unit
(** Skin effect: f(r) histograms on five hard instances. *)

val table4 : opts -> unit
(** Branch selection: berkmin vs sat_top/unsat_top/take_0/1/rand. *)

val table5 : opts -> unit
(** Database management: berkmin vs limited_keeping. *)

val table6 : opts -> unit
(** BerkMin vs Chaff on the comparable classes. *)

val table7 : opts -> unit
(** BerkMin vs Chaff on the classes where BerkMin dominates. *)

val table8 : opts -> unit
(** Per-instance decision counts and runtimes. *)

val table9 : opts -> unit
(** Database-size ratios. *)

val table10 : opts -> unit
(** Competition-style robustness: solved counts under a hard budget
    for berkmin / chaff / limmat_like. *)

val figure1 : opts -> unit
(** Cone-mobility demonstration: how quickly decisions migrate into a
    gated cone once its control input switches, berkmin vs
    less_mobility. *)

val run_all : opts -> unit
(** All the paper experiments (tables 1–10 and figure 1). *)

val run_extensions : opts -> unit
(** The ablation sweeps beyond the paper: restart strategies
    (conclusions), top-clause window (Remark 2), variable-order heap
    (Remark 1), learnt-clause minimization, database-management and
    activity-aging constants. *)

val run_one : opts -> string -> bool
(** [run_one opts name] with [name] one of {!names}; returns [false]
    for an unknown name. *)

val names : string list
(** ["table1" .. "table10", "figure1", "ext-restarts", "ext-window",
    "ext-minimize", "ext-varheap", "ext-dbparams", "ext-decay"]. *)

val reset_json : unit -> unit
(** Clears the machine-readable log the experiment drivers append to. *)

val collected_json : unit -> (string * Berkmin_types.Json.t) list
(** [(experiment name, JSON twin of its printed table)] pairs for every
    experiment run since the last {!reset_json}, in run order.  The
    text output above stays the human-facing report; this is the same
    data for tooling. *)
