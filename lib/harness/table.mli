(** Plain-text table rendering for the experiment reports. *)

type align =
  | Left
  | Right

val render :
  header:string list -> ?aligns:align list -> string list list -> string
(** Pads columns to the widest cell; default alignment is Left for the
    first column and Right for the rest. *)

val print :
  header:string list -> ?aligns:align list -> string list list -> unit

val to_json :
  header:string list -> string list list -> Berkmin_types.Json.t
(** The same table as [{"header": [...], "rows": [[...]]}] — the
    machine-readable twin of {!print}. *)

val seconds : float -> string
(** Two-decimal rendering, e.g. ["12.34"]. *)

val seconds_aborted : float -> int -> penalty:float -> string
(** The paper's abort notation: ["12.3"] with no aborts, ["> 132.3 (2)"]
    (time plus penalty per abort) otherwise. *)

val ratio : float -> string
(** e.g. ["2.40"]. *)

val section : string -> unit
(** Prints an underlined section heading. *)
