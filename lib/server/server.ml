open Berkmin_types
module Solver = Berkmin.Solver
module Config = Berkmin.Config
module Trace = Berkmin.Trace
module Stats = Berkmin.Stats
module Metrics = Berkmin.Metrics

type session = {
  solver : Solver.t;
  mutable requests : int;  (* serviced against this session *)
}

type t = {
  config : Config.t;
  max_sessions : int;
  sessions : (string, session) Hashtbl.t;
  trace : Trace.t;
  metrics : Metrics.t;
  c_requests : Metrics.counter;
  c_errors : Metrics.counter;
  c_solves : Metrics.counter;
  c_sat : Metrics.counter;
  c_unsat : Metrics.counter;
  c_unknown : Metrics.counter;
  c_opened : Metrics.counter;
  c_closed : Metrics.counter;
  t_solve : Metrics.timer;
}

let create ?(config = Config.berkmin) ?(max_sessions = 64) () =
  let metrics = Metrics.create () in
  let sessions = Hashtbl.create 16 in
  ignore
    (Metrics.gauge metrics "server_sessions_live" (fun () ->
         float_of_int (Hashtbl.length sessions)));
  {
    config;
    max_sessions;
    sessions;
    trace = Trace.create ();
    metrics;
    c_requests = Metrics.counter metrics "server_requests";
    c_errors = Metrics.counter metrics "server_errors";
    c_solves = Metrics.counter metrics "server_solves";
    c_sat = Metrics.counter metrics "server_sat";
    c_unsat = Metrics.counter metrics "server_unsat";
    c_unknown = Metrics.counter metrics "server_unknown";
    c_opened = Metrics.counter metrics "server_sessions_opened";
    c_closed = Metrics.counter metrics "server_sessions_closed";
    t_solve = Metrics.timer metrics "server_solve_cpu";
  }

let num_sessions t = Hashtbl.length t.sessions

let session_solver t name =
  Option.map (fun s -> s.solver) (Hashtbl.find_opt t.sessions name)

let metrics t = t.metrics
let trace t = t.trace

let close t =
  Hashtbl.reset t.sessions;
  Trace.close t.trace

(* ------------------------------------------------------------------ *)
(* Request servicing                                                   *)

let model_to_json s m =
  (* the assignment as signed DIMACS integers, one per variable *)
  Json.List
    (List.init (Solver.num_vars s) (fun v ->
         Json.Int (if m.(v) then v + 1 else -(v + 1))))

let core_to_json core =
  Json.List (List.map (fun l -> Json.Int (Lit.to_dimacs l)) core)

let stats_fields sess =
  let s = sess.solver in
  let st = Solver.stats s in
  [
    "vars", Json.Int (Solver.num_vars s);
    "clauses", Json.Int (Solver.num_original_clauses s);
    "learnt_live", Json.Int (Solver.num_learnt_live s);
    "conflicts", Json.Int st.Stats.conflicts;
    "decisions", Json.Int st.Stats.decisions;
    "propagations", Json.Int st.Stats.propagations;
    "restarts", Json.Int st.Stats.restarts;
    "arena_bytes", Json.Int (Solver.arena_bytes s);
    "requests", Json.Int sess.requests;
  ]

(* A solve's budget combines the session lifetime counter with the
   per-request allowance: the solver's own [max_conflicts] is absolute
   over the solver's whole life, so the request-relative cap is
   rebased on the conflicts already spent. *)
let budget_of solver max_conflicts max_ms =
  {
    Solver.max_conflicts =
      Option.map
        (fun n -> (Solver.stats solver).Stats.conflicts + n)
        max_conflicts;
    max_seconds = Option.map (fun ms -> ms /. 1000.) max_ms;
  }

type outcome = {
  response : (string * Json.t) list;  (* payload on success *)
  failure : string option;
  status : string;  (* for the trace event *)
}

let okay ?(status = "ok") response = { response; failure = None; status }
let fail msg = { response = []; failure = Some msg; status = "error" }

let with_session t session f =
  match session with
  | None -> fail "missing field \"session\""
  | Some name -> (
    match Hashtbl.find_opt t.sessions name with
    | None -> fail (Printf.sprintf "unknown session %S" name)
    | Some sess ->
      sess.requests <- sess.requests + 1;
      f sess)

let service t (req : Protocol.request) =
  match req.command with
  | Ping -> okay [ "pong", Json.Bool true ]
  | Shutdown -> okay [ "stopping", Json.Bool true ]
  | Open { vars } -> (
    match req.session with
    | None -> fail "missing field \"session\""
    | Some name ->
      if Hashtbl.mem t.sessions name then
        fail (Printf.sprintf "session %S already exists" name)
      else if Hashtbl.length t.sessions >= t.max_sessions then
        fail
          (Printf.sprintf "session limit reached (%d resident)"
             t.max_sessions)
      else begin
        let solver =
          Solver.create ~config:t.config (Cnf.create ~num_vars:vars ())
        in
        Hashtbl.replace t.sessions name { solver; requests = 1 };
        Metrics.incr t.c_opened;
        okay [ "session", Json.String name; "vars", Json.Int vars ]
      end)
  | New_var { count } ->
    with_session t req.session (fun sess ->
        let first = Solver.new_var sess.solver in
        for _ = 2 to count do
          ignore (Solver.new_var sess.solver)
        done;
        (* fresh variables in wire (1-based) numbering *)
        let vars = List.init count (fun i -> Json.Int (first + i + 1)) in
        okay
          [
            "vars", Json.List vars;
            "num_vars", Json.Int (Solver.num_vars sess.solver);
          ])
  | Add_clause { lits } ->
    with_session t req.session (fun sess ->
        match Solver.add_clause sess.solver lits with
        | () -> okay []
        | exception Invalid_argument msg -> fail msg)
  | Add_clauses { clauses } ->
    with_session t req.session (fun sess ->
        let rec go n = function
          | [] -> okay [ "added", Json.Int n ]
          | lits :: rest -> (
            match Solver.add_clause sess.solver lits with
            | () -> go (n + 1) rest
            | exception Invalid_argument msg ->
              fail (Printf.sprintf "clause %d: %s" (n + 1) msg))
        in
        go 0 clauses)
  | Solve { assumps; max_conflicts; max_ms } ->
    with_session t req.session (fun sess ->
        Metrics.incr t.c_solves;
        let budget = budget_of sess.solver max_conflicts max_ms in
        match
          Metrics.time t.t_solve (fun () ->
              Solver.solve ~budget ~assumps sess.solver)
        with
        | Solver.Sat m ->
          Metrics.incr t.c_sat;
          okay ~status:"sat"
            [
              "status", Json.String "sat";
              "model", model_to_json sess.solver m;
            ]
        | Solver.Unsat ->
          Metrics.incr t.c_unsat;
          let core =
            match Solver.unsat_core sess.solver with
            | Some core -> [ "core", core_to_json core ]
            | None -> []
          in
          okay ~status:"unsat" (("status", Json.String "unsat") :: core)
        | Solver.Unknown ->
          Metrics.incr t.c_unknown;
          okay ~status:"unknown" [ "status", Json.String "unknown" ]
        | exception Invalid_argument msg -> fail msg)
  | Stats -> with_session t req.session (fun sess -> okay (stats_fields sess))
  | Close -> (
    match req.session with
    | None -> fail "missing field \"session\""
    | Some name ->
      if Hashtbl.mem t.sessions name then begin
        Hashtbl.remove t.sessions name;
        Metrics.incr t.c_closed;
        okay [ "closed", Json.String name ]
      end
      else fail (Printf.sprintf "unknown session %S" name))

let counters_of solver =
  match solver with
  | Some s ->
    let st = Solver.stats s in
    (st.Stats.conflicts, st.Stats.propagations)
  | None -> (0, 0)

let handle t json =
  Metrics.incr t.c_requests;
  let started = Unix.gettimeofday () in
  let id = Json.member "id" json in
  let parsed = Protocol.parse json in
  let session_name =
    match parsed with
    | Ok { session = Some s; _ } -> s
    | Ok { session = None; _ } | Error _ -> ""
  in
  let op =
    match parsed with
    | Ok req -> Protocol.op_name req.command
    | Error _ -> "invalid"
  in
  (* pin the solver object so the deltas survive a [close] removing the
     session from the registry mid-request *)
  let solver = session_solver t session_name in
  let before = counters_of solver in
  let outcome =
    match parsed with Ok req -> service t req | Error msg -> fail msg
  in
  let response =
    match outcome.failure with
    | None -> Protocol.ok ?id outcome.response
    | Some msg ->
      Metrics.incr t.c_errors;
      Protocol.error ?id msg
  in
  if Trace.active t.trace then begin
    let solver =
      match solver with Some _ -> solver | None -> session_solver t session_name
    in
    let after = counters_of solver in
    Trace.emit t.trace
      (Trace.Server_request
         {
           session = session_name;
           op;
           status = outcome.status;
           conflicts = fst after - fst before;
           propagations = snd after - snd before;
           latency_ms = 1000. *. (Unix.gettimeofday () -. started);
         })
  end;
  let continue =
    match parsed with
    | Ok { command = Protocol.Shutdown; _ } -> `Shutdown
    | Ok _ | Error _ -> `Continue
  in
  (response, continue)

let handle_line t line =
  match Json.of_string line with
  | json ->
    let response, continue = handle t json in
    (Json.to_string response, continue)
  | exception Json.Parse_error msg ->
    Metrics.incr t.c_requests;
    Metrics.incr t.c_errors;
    if Trace.active t.trace then
      Trace.emit t.trace
        (Trace.Server_request
           {
             session = "";
             op = "invalid";
             status = "error";
             conflicts = 0;
             propagations = 0;
             latency_ms = 0.;
           });
    (Json.to_string (Protocol.error ("malformed JSON: " ^ msg)), `Continue)

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)

let serve_channels t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> loop ()
    | line -> (
      let response, continue = handle_line t line in
      output_string oc response;
      output_char oc '\n';
      flush oc;
      match continue with `Continue -> loop () | `Shutdown -> ())
  in
  loop ()

(* --- Unix-domain-socket select loop ------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  pending : Buffer.t;  (* bytes received, not yet a complete line *)
}

let rec select_retry rds timeout =
  match Unix.select rds [] [] timeout with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_retry rds timeout

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Splits off every complete line accumulated in [buf], leaving the
   trailing partial line in place. *)
let drain_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_string buf
      (String.sub s (last + 1) (String.length s - last - 1));
    String.split_on_char '\n' (String.sub s 0 last)

let serve_socket_until t ~path ~ready =
  (match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 8 in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    match Unix.close c.fd with
    | () -> ()
    | exception Unix.Unix_error _ -> ()
  in
  let finish () =
    Hashtbl.iter (fun _ c -> close_conn c) conns;
    (match Unix.close srv with
    | () -> ()
    | exception Unix.Unix_error _ -> ());
    match Unix.unlink path with
    | () -> ()
    | exception Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:finish (fun () ->
      Unix.bind srv (Unix.ADDR_UNIX path);
      Unix.listen srv 16;
      ready ();
      let stop = ref false in
      let chunk = Bytes.create 65536 in
      while not !stop do
        let rds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
        let readable, _, _ = select_retry rds (-1.0) in
        List.iter
          (fun fd ->
            if fd == srv then begin
              match Unix.accept srv with
              | client, _ ->
                Hashtbl.replace conns client
                  { fd = client; pending = Buffer.create 256 }
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Hashtbl.find_opt conns fd with
              | None -> ()
              | Some c -> (
                match Unix.read c.fd chunk 0 (Bytes.length chunk) with
                | 0 -> close_conn c
                | n ->
                  Buffer.add_subbytes c.pending chunk 0 n;
                  List.iter
                    (fun line ->
                      if (not !stop) && String.trim line <> "" then begin
                        let response, continue = handle_line t line in
                        (match write_all c.fd (response ^ "\n") with
                        | () -> ()
                        | exception Unix.Unix_error _ -> close_conn c);
                        match continue with
                        | `Shutdown -> stop := true
                        | `Continue -> ()
                      end)
                    (drain_lines c.pending)
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | exception Unix.Unix_error _ -> close_conn c))
          readable
      done)

let serve_socket t ~path = serve_socket_until t ~path ~ready:(fun () -> ())
