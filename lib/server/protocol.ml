open Berkmin_types

type command =
  | Open of { vars : int }
  | New_var of { count : int }
  | Add_clause of { lits : Lit.t list }
  | Add_clauses of { clauses : Lit.t list list }
  | Solve of {
      assumps : Lit.t list;
      max_conflicts : int option;
      max_ms : float option;
    }
  | Stats
  | Close
  | Ping
  | Shutdown

type request = {
  id : Json.t option;
  session : string option;
  command : command;
}

let op_name = function
  | Open _ -> "open"
  | New_var _ -> "new_var"
  | Add_clause _ -> "add_clause"
  | Add_clauses _ -> "add_clauses"
  | Solve _ -> "solve"
  | Stats -> "stats"
  | Close -> "close"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

let lit_of_dimacs_checked n =
  if n = 0 then Error "literal 0 is not a literal" else Ok (Lit.of_dimacs n)

(* Result-aware combinators over the hand-rolled Json accessors. *)
let ( let* ) r f = Result.bind r f

let field name json = Json.member name json

let int_field ?default name json =
  match field name json with
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing integer field %S" name))
  | Some j -> (
    match Json.to_int_opt j with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %S must be an integer" name))

let opt_int_field name json =
  match field name json with
  | None -> Ok None
  | Some j -> (
    match Json.to_int_opt j with
    | Some n -> Ok (Some n)
    | None -> Error (Printf.sprintf "field %S must be an integer" name))

let opt_float_field name json =
  match field name json with
  | None -> Ok None
  | Some j -> (
    match Json.to_float_opt j with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "field %S must be a number" name))

let lits_of_json name json =
  match Json.to_list_opt json with
  | None -> Error (Printf.sprintf "field %S must be a list of literals" name)
  | Some elems ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | j :: rest -> (
        match Json.to_int_opt j with
        | None -> Error (Printf.sprintf "field %S holds a non-integer" name)
        | Some n ->
          let* l = lit_of_dimacs_checked n in
          go (l :: acc) rest)
    in
    go [] elems

let lits_field ?(default = []) name json =
  match field name json with
  | None -> Ok default
  | Some j -> lits_of_json name j

let parse json =
  match json with
  | Json.Obj _ -> (
    let id = field "id" json in
    let session =
      match field "session" json with
      | Some (Json.String s) -> Some s
      | Some _ | None -> None
    in
    let finish command = Ok { id; session; command } in
    match field "op" json with
    | Some (Json.String op) -> (
      let r =
        match op with
        | "open" ->
          let* vars = int_field ~default:0 "vars" json in
          if vars < 0 then Error "field \"vars\" must be non-negative"
          else finish (Open { vars })
        | "new_var" ->
          let* count = int_field ~default:1 "count" json in
          if count < 1 then Error "field \"count\" must be positive"
          else finish (New_var { count })
        | "add_clause" ->
          let* lits = lits_field "lits" json in
          finish (Add_clause { lits })
        | "add_clauses" -> (
          match field "clauses" json with
          | None -> Error "missing field \"clauses\""
          | Some j -> (
            match Json.to_list_opt j with
            | None -> Error "field \"clauses\" must be a list of clauses"
            | Some elems ->
              let rec go acc = function
                | [] -> finish (Add_clauses { clauses = List.rev acc })
                | c :: rest ->
                  let* lits = lits_of_json "clauses" c in
                  go (lits :: acc) rest
              in
              go [] elems))
        | "solve" ->
          let* assumps = lits_field "assumps" json in
          let* max_conflicts = opt_int_field "max_conflicts" json in
          let* max_ms = opt_float_field "max_ms" json in
          (match max_conflicts with
          | Some n when n < 0 ->
            Error "field \"max_conflicts\" must be non-negative"
          | _ -> finish (Solve { assumps; max_conflicts; max_ms }))
        | "stats" -> finish Stats
        | "close" -> finish Close
        | "ping" -> finish Ping
        | "shutdown" -> finish Shutdown
        | op -> Error (Printf.sprintf "unknown op %S" op)
      in
      r)
    | Some _ -> Error "field \"op\" must be a string"
    | None -> Error "missing field \"op\"")
  | _ -> Error "request must be a JSON object"

let parse_line line =
  match Json.of_string line with
  | json -> parse json
  | exception Json.Parse_error msg -> Error ("malformed JSON: " ^ msg)

let dimacs_list lits = Json.List (List.map (fun l -> Json.Int (Lit.to_dimacs l)) lits)

let request_to_json { id; session; command } =
  let base = [ "op", Json.String (op_name command) ] in
  let payload =
    match command with
    | Open { vars } -> [ "vars", Json.Int vars ]
    | New_var { count } -> [ "count", Json.Int count ]
    | Add_clause { lits } -> [ "lits", dimacs_list lits ]
    | Add_clauses { clauses } ->
      [ "clauses", Json.List (List.map dimacs_list clauses) ]
    | Solve { assumps; max_conflicts; max_ms } ->
      List.concat
        [
          (if assumps = [] then [] else [ "assumps", dimacs_list assumps ]);
          (match max_conflicts with
          | Some n -> [ "max_conflicts", Json.Int n ]
          | None -> []);
          (match max_ms with
          | Some x -> [ "max_ms", Json.Float x ]
          | None -> []);
        ]
    | Stats | Close | Ping | Shutdown -> []
  in
  let session =
    match session with Some s -> [ "session", Json.String s ] | None -> []
  in
  let id = match id with Some j -> [ "id", j ] | None -> [] in
  Json.Obj (id @ base @ session @ payload)

let ok ?id fields =
  let id = match id with Some j -> [ "id", j ] | None -> [] in
  Json.Obj (id @ (("ok", Json.Bool true) :: fields))

let error ?id msg =
  let id = match id with Some j -> [ "id", j ] | None -> [] in
  Json.Obj (id @ [ "ok", Json.Bool false; "error", Json.String msg ])
