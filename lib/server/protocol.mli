(** Wire protocol of the persistent solver daemon.

    One JSON object per line in each direction (JSONL).  Literals
    travel as signed DIMACS integers (variable [v] is [v + 1], negated
    as [-(v + 1)]), matching every other external surface of the
    repository.

    Requests name an operation with ["op"], address a resident solver
    with ["session"], and may carry an ["id"] of any JSON shape that
    the response echoes verbatim (how a pipelining client matches
    responses).  Responses always carry ["ok"] — [true] with
    operation-specific payload fields, or [false] with a
    human-readable ["error"].

    See [docs/SERVER.md] for the full schema with examples. *)

open Berkmin_types

type command =
  | Open of { vars : int }
      (** create a session with [vars] initial variables *)
  | New_var of { count : int }  (** allocate [count] fresh variables *)
  | Add_clause of { lits : Lit.t list }
  | Add_clauses of { clauses : Lit.t list list }
      (** batched clause loading — one round-trip for a whole formula *)
  | Solve of {
      assumps : Lit.t list;
      max_conflicts : int option;  (** per-request conflict budget *)
      max_ms : float option;  (** per-request CPU budget, milliseconds *)
    }
  | Stats  (** live counters of the resident solver *)
  | Close  (** drop the session and its solver *)
  | Ping  (** liveness probe; needs no session *)
  | Shutdown  (** stop the daemon after responding; needs no session *)

type request = {
  id : Json.t option;  (** echoed into the response when present *)
  session : string option;
  command : command;
}

val parse : Json.t -> (request, string) result
(** Decodes a request object; [Error] is the message for the error
    response. *)

val parse_line : string -> (request, string) result
(** [parse] composed with JSON parsing. *)

val request_to_json : request -> Json.t
(** Re-encodes a request — the client side of the wire. *)

val op_name : command -> string
(** The ["op"] string of a command (for tracing and metrics). *)

val lit_of_dimacs_checked : int -> (Lit.t, string) result
(** Like {!Berkmin_types.Lit.of_dimacs} but returns [Error] on [0]
    instead of raising. *)

val ok : ?id:Json.t -> (string * Json.t) list -> Json.t
(** Success response: ["ok": true] plus payload fields, with the
    echoed ["id"] first when present. *)

val error : ?id:Json.t -> string -> Json.t
(** Failure response: ["ok": false, "error": message]. *)
