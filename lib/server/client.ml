open Berkmin_types

type t = {
  ic : in_channel;
  oc : out_channel;
  fd : Unix.file_descr option;  (* owned socket, when [connect]ed *)
}

exception Server_error of string

let connect ~path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  {
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    fd = Some fd;
  }

let of_channels ic oc = { ic; oc; fd = None }

let close t =
  match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

let rpc t request =
  output_string t.oc (Json.to_string request);
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | line -> (
    match Json.of_string line with
    | json -> json
    | exception Json.Parse_error msg ->
      failwith ("Client.rpc: malformed response: " ^ msg))
  | exception End_of_file -> failwith "Client.rpc: connection closed"

let request ?session command =
  Protocol.request_to_json { Protocol.id = None; session; command }

let checked t ?session command =
  let response = rpc t (request ?session command) in
  match Json.member "ok" response with
  | Some (Json.Bool true) -> response
  | Some (Json.Bool false) ->
    let msg =
      match Json.member "error" response with
      | Some (Json.String m) -> m
      | Some _ | None -> "unspecified server error"
    in
    raise (Server_error msg)
  | Some _ | None -> failwith "Client.rpc: response without \"ok\" field"

type verdict =
  | Sat of bool array
  | Unsat of Lit.t list option
  | Unknown

let ping t = ignore (checked t Protocol.Ping)

let open_session ?(vars = 0) t session =
  ignore (checked t ~session (Protocol.Open { vars }))

let new_vars t ~session ~count =
  let response = checked t ~session (Protocol.New_var { count }) in
  match Json.member "vars" response with
  | Some (Json.List vars) ->
    List.map
      (fun j ->
        match Json.to_int_opt j with
        | Some n when n > 0 -> n - 1  (* wire is 1-based *)
        | Some _ | None -> failwith "Client.new_vars: bad variable index")
      vars
  | Some _ | None -> failwith "Client.new_vars: response without \"vars\""

let add_clause t ~session lits =
  ignore (checked t ~session (Protocol.Add_clause { lits }))

let add_clauses t ~session clauses =
  ignore (checked t ~session (Protocol.Add_clauses { clauses }))

let solve ?(assumps = []) ?max_conflicts ?max_ms t ~session =
  let response =
    checked t ~session (Protocol.Solve { assumps; max_conflicts; max_ms })
  in
  match Json.member "status" response with
  | Some (Json.String "sat") -> (
    match Json.member "model" response with
    | Some (Json.List lits) ->
      let model =
        Array.make
          (List.fold_left
             (fun acc j ->
               match Json.to_int_opt j with
               | Some n -> max acc (abs n)
               | None -> acc)
             0 lits)
          false
      in
      List.iter
        (fun j ->
          match Json.to_int_opt j with
          | Some n when n <> 0 -> model.(abs n - 1) <- n > 0
          | Some _ | None -> failwith "Client.solve: bad model literal")
        lits;
      Sat model
    | Some _ | None -> failwith "Client.solve: SAT response without model")
  | Some (Json.String "unsat") -> (
    match Json.member "core" response with
    | Some (Json.List lits) ->
      Unsat
        (Some
           (List.map
              (fun j ->
                match Json.to_int_opt j with
                | Some n when n <> 0 -> Lit.of_dimacs n
                | Some _ | None -> failwith "Client.solve: bad core literal")
              lits))
    | Some _ -> failwith "Client.solve: malformed core"
    | None -> Unsat None)
  | Some (Json.String "unknown") -> Unknown
  | Some _ | None -> failwith "Client.solve: response without status"

let stats t ~session =
  match checked t ~session Protocol.Stats with
  | Json.Obj fields ->
    List.filter (fun (k, _) -> k <> "ok" && k <> "id") fields
  | _ -> failwith "Client.stats: non-object response"

let close_session t ~session = ignore (checked t ~session Protocol.Close)

let shutdown t = ignore (checked t Protocol.Shutdown)
