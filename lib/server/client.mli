(** Blocking JSONL client for the solver daemon.

    One request line out, one response line in — the client never
    pipelines, so responses need no [id] correlation (though callers
    issuing raw {!rpc} requests may still use one).  Raises
    {!Server_error} on [{"ok": false}] responses and [Failure] on
    transport or protocol breakage. *)

open Berkmin_types

type t

exception Server_error of string
(** The daemon answered [{"ok": false}]; the payload is its ["error"]
    message. *)

val connect : path:string -> t
(** Connects to a daemon's Unix-domain socket. *)

val of_channels : in_channel -> out_channel -> t
(** Wraps an existing duplex pair (e.g. pipes to a [--stdio]
    daemon). *)

val close : t -> unit
(** Closes the transport (the daemon keeps running; use {!shutdown}
    to stop it). *)

val rpc : t -> Json.t -> Json.t
(** Sends one request object, returns the raw response object —
    including error responses ([ok] is not inspected). *)

(** {2 Typed wrappers}

    Each sends one request and decodes the response, raising
    {!Server_error} when the daemon refuses. *)

type verdict =
  | Sat of bool array  (** assignment indexed by 0-based variable *)
  | Unsat of Lit.t list option
      (** failed-assumption core when solved under assumptions *)
  | Unknown  (** per-request budget exhausted *)

val ping : t -> unit

val open_session : ?vars:int -> t -> string -> unit

val new_vars : t -> session:string -> count:int -> int list
(** Allocates fresh variables; returns their 0-based indices. *)

val add_clause : t -> session:string -> Lit.t list -> unit

val add_clauses : t -> session:string -> Lit.t list list -> unit

val solve :
  ?assumps:Lit.t list ->
  ?max_conflicts:int ->
  ?max_ms:float ->
  t ->
  session:string ->
  verdict

val stats : t -> session:string -> (string * Json.t) list
(** The resident solver's counters, as returned by the wire. *)

val close_session : t -> session:string -> unit

val shutdown : t -> unit
(** Asks the daemon to stop (after acknowledging). *)
