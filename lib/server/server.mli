(** Persistent solver daemon: hot {!Berkmin.Solver} instances behind a
    JSONL request loop.

    The point of the server is what survives between requests.  Each
    session keys a resident solver whose learnt clauses, activity
    tables and phase memory accumulate across [solve] calls, so a
    stream of related queries (the incremental-equivalence-checking
    workload of [bin/ec.ml], CEGAR-style refinement loops, …) pays for
    the shared search work once instead of once per query.

    The core is transport-agnostic: {!handle} maps one request object
    to one response object.  Two transports are provided — a blocking
    stdio loop ({!serve_channels}) and a Unix-domain-socket select
    loop ({!serve_socket}) multiplexing any number of concurrent
    clients from a single thread, in the style of
    {!Berkmin_portfolio}.  Single-threading is a feature: requests are
    serviced one at a time in arrival order, so solver state never
    needs locking and every run is deterministic for a given request
    interleaving.

    Per-request observability rides the existing plumbing: every
    serviced request emits a {!Berkmin.Trace.Server_request} event
    (latency, conflict and propagation deltas) on the server's trace
    stream, and {!metrics} exposes aggregate counters through the
    standard pull-based registry. *)

open Berkmin_types

type t

val create :
  ?config:Berkmin.Config.t -> ?max_sessions:int -> unit -> t
(** A server with no sessions.  [config] seeds every session's solver
    (default {!Berkmin.Config.berkmin}); [max_sessions] (default 64)
    bounds resident solvers — further [open]s are refused, not
    evicted. *)

val handle : t -> Json.t -> Json.t * [ `Continue | `Shutdown ]
(** Services one request: returns the response to send back and
    whether the daemon should keep serving.  Never raises on malformed
    input — errors become [{"ok": false}] responses.  [`Shutdown] only
    follows an explicit [shutdown] request. *)

val handle_line : t -> string -> string * [ `Continue | `Shutdown ]
(** {!handle} lifted to wire lines (parse, service, print). *)

val num_sessions : t -> int

val session_solver : t -> string -> Berkmin.Solver.t option
(** Direct access to a resident solver (tests and in-process
    embedders). *)

val metrics : t -> Berkmin.Metrics.t
(** Aggregate request/session counters plus a live session gauge. *)

val trace : t -> Berkmin.Trace.t
(** The server's trace stream ([Null] sink by default); install a sink
    to capture one [server_request] event per serviced request. *)

val close : t -> unit
(** Drops every session and closes the trace sink. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Blocking single-client loop: one request line in, one response
    line out, until EOF or [shutdown].  The stdio transport
    ([serverd --stdio]). *)

val serve_socket : t -> path:string -> unit
(** Binds (replacing any stale file) and serves a Unix-domain
    stream socket until a [shutdown] request, multiplexing all
    connected clients through one [select] loop.  Each client speaks
    the same line protocol; responses are written before the next
    request — of any client — is read, so solver state is never
    interleaved.  The socket file is unlinked on return. *)

val serve_socket_until :
  t -> path:string -> ready:(unit -> unit) -> unit
(** {!serve_socket} with a [ready] callback invoked once the socket is
    bound and listening — how a test (or a parent process) knows it
    may connect without racing the bind. *)
