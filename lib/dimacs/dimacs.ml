open Berkmin_types

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Legacy line-based parser.

   The original implementation: split the input into lines, normalize
   each line with [String.map], split on spaces, [int_of_string_opt]
   every token.  Kept as the differential reference the streaming
   parser below is property-tested against (same [Cnf.t], same
   errors), and as the dialect specification: anything the streaming
   path accepts or rejects, this one must too.                         *)

module Legacy = struct
  type state = {
    mutable line : int;
    mutable declared_vars : int option;
    mutable current : Lit.t list; (* literals of the clause being read *)
    mutable stopped : bool; (* saw the SATLIB '%' terminator *)
    cnf : Cnf.t;
  }

  let finish_clause st =
    Cnf.add_clause st.cnf (List.rev st.current);
    st.current <- []

  let handle_literal st n =
    if n = 0 then finish_clause st
    else begin
      (match st.declared_vars with
      | Some dv when abs n > dv ->
        fail st.line "literal %d exceeds declared variable count %d" n dv
      | Some _ | None -> ());
      st.current <- Lit.of_dimacs n :: st.current
    end

  let handle_header st tokens =
    if st.declared_vars <> None then fail st.line "duplicate p-header";
    match tokens with
    | [ "p"; "cnf"; v; c ] -> (
      match int_of_string_opt v, int_of_string_opt c with
      | Some v, Some c when v >= 0 && c >= 0 ->
        st.declared_vars <- Some v;
        Cnf.ensure_vars st.cnf v
      | _ -> fail st.line "malformed p-header")
    | _ -> fail st.line "malformed p-header (expected `p cnf <vars> <clauses>')"

  (* Comment and blank lines are recognized on the raw line, before
     the [String.map] whitespace normalization: a big instance is
     mostly clauses, but SAT-competition headers carry kilobytes of
     comments, and copying each of those lines just to discard it was
     pure GC churn. *)
  let is_space c = c = ' ' || c = '\t' || c = '\r'

  let first_non_space line =
    let n = String.length line in
    let i = ref 0 in
    while !i < n && is_space line.[!i] do incr i done;
    if !i < n then Some line.[!i] else None

  let handle_line st line =
    if st.stopped then ()
    else
      match first_non_space line with
      | None -> () (* blank *)
      | Some 'c' -> () (* comment *)
      | Some _ -> (
        let tokens =
          String.split_on_char ' '
            (String.map (function '\t' | '\r' -> ' ' | c -> c) line)
          |> List.filter (fun s -> s <> "")
        in
        match tokens with
        | [] -> ()
        | "p" :: _ -> handle_header st tokens
        | "%" :: _ ->
          (* SATLIB instances end with a stray "%\n0"; ignore everything
             after the percent sign. *)
          st.stopped <- true
        | tokens ->
          List.iter
            (fun tok ->
              match int_of_string_opt tok with
              | Some n -> handle_literal st n
              | None -> fail st.line "unexpected token %S" tok)
            tokens)

  let parse_lines lines =
    let st =
      { line = 0; declared_vars = None; current = []; stopped = false;
        cnf = Cnf.create () }
    in
    Seq.iter
      (fun line ->
        st.line <- st.line + 1;
        handle_line st line)
      lines;
    if st.current <> [] then finish_clause st (* tolerate a missing final 0 *);
    st.cnf

  let parse_string s = parse_lines (String.split_on_char '\n' s |> List.to_seq)

  let parse_channel ic =
    let rec lines () =
      match input_line ic with
      | line -> Seq.Cons (line, lines)
      | exception End_of_file -> Seq.Nil
    in
    parse_lines lines

  let parse_file path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> parse_channel ic)
end

(* ------------------------------------------------------------------ *)
(* Streaming parser.

   One pass over chunked [Bytes], tokenizing integers in place: no
   intermediate line strings, no per-token allocation, no clause
   lists.  Clauses are delivered through a reusable int-array scratch
   buffer, so peak heap is O(chunk + largest clause), never O(file).

   A token that straddles a chunk boundary is preserved by compacting
   the unread tail to the front of the buffer before refilling; a
   token longer than the whole buffer (degenerate input) grows the
   buffer, keeping the memory bound O(largest token).

   The accepted dialect is byte-identical to {!Legacy}: 'c' comment
   lines (first non-blank character of the line), one [p cnf V C]
   header, clauses terminated by 0 and free to span or share lines, a
   SATLIB '%' line stopping the parse, a missing final 0 tolerated,
   and the same [Parse_error] messages on the same line numbers.
   Number tokens take an allocation-free digits fast path; anything
   else (OCaml accepts "0x1f" or "1_000" via [int_of_string_opt], and
   the reference parser therefore does too) falls back to a substring
   so acceptance and error text cannot drift.                          *)

type source =
  | From_string of string
  | From_channel of in_channel

let default_chunk_size = 65536

type reader = {
  mutable buf : Bytes.t;
  mutable pos : int; (* next unread byte *)
  mutable len : int; (* valid prefix of [buf] *)
  mutable eof : bool;
  fill : Bytes.t -> int -> int -> int; (* buf off room -> bytes read *)
}

let reader_of_source ~chunk_size source =
  let chunk = max chunk_size 4 in
  let fill =
    match source with
    | From_channel ic -> fun buf off room -> input ic buf off room
    | From_string s ->
      let spos = ref 0 in
      fun buf off room ->
        let n = min room (String.length s - !spos) in
        Bytes.blit_string s !spos buf off n;
        spos := !spos + n;
        n
  in
  { buf = Bytes.create chunk; pos = 0; len = 0; eof = false; fill }

(* Make room and read more input.  Unread bytes (a partial token) are
   moved to the front; a buffer entirely full of one token doubles.
   Returns false at end of input. *)
let refill r =
  if r.eof then false
  else begin
    if r.pos > 0 then begin
      let rem = r.len - r.pos in
      if rem > 0 then Bytes.blit r.buf r.pos r.buf 0 rem;
      r.len <- rem;
      r.pos <- 0
    end;
    if r.len = Bytes.length r.buf then begin
      let grown = Bytes.create (2 * Bytes.length r.buf) in
      Bytes.blit r.buf 0 grown 0 r.len;
      r.buf <- grown
    end;
    let n = r.fill r.buf r.len (Bytes.length r.buf - r.len) in
    if n = 0 then begin
      r.eof <- true;
      false
    end
    else begin
      r.len <- r.len + n;
      true
    end
  end

let is_inline_space c = c = ' ' || c = '\t' || c = '\r'
let is_separator c = c = '\n' || is_inline_space c

(* The whole token starting at [r.pos] brought into the buffer;
   returns its end offset (start is [r.pos], possibly relocated to 0
   by compaction).  Precondition: [r.pos < r.len]. *)
let rec token_end r =
  let b = r.buf and len = r.len in
  let q = ref r.pos in
  while !q < len && not (is_separator (Bytes.unsafe_get b !q)) do
    incr q
  done;
  if !q < len || r.eof then !q
  else if refill r then token_end r
  else r.len

let rec skip_to_newline r =
  let b = r.buf and len = r.len in
  let i = ref r.pos in
  while !i < len && Bytes.unsafe_get b !i <> '\n' do
    incr i
  done;
  r.pos <- !i;
  if !i >= len && not r.eof then
    if refill r then skip_to_newline r

let stream ~chunk_size ~on_header ~init ~f source =
  let rd = reader_of_source ~chunk_size source in
  let line = ref 1 in
  let declared = ref (-1) in (* -1 = no p-header seen *)
  let scratch = ref (Array.make 16 0) in
  let nlits = ref 0 in
  let acc = ref init in
  let emit () =
    acc := f !acc !scratch !nlits;
    nlits := 0
  in
  let push_lit n =
    if !declared >= 0 && abs n > !declared then
      fail !line "literal %d exceeds declared variable count %d" n !declared;
    if !nlits = Array.length !scratch then begin
      let grown = Array.make (2 * !nlits) 0 in
      Array.blit !scratch 0 grown 0 !nlits;
      scratch := grown
    end;
    !scratch.(!nlits) <- Lit.of_dimacs n;
    incr nlits
  in
  (* In-place integer parse of buf[p..q).  The fast path covers signed
     decimal up to 18 digits (no intermediate string, no overflow on
     63-bit ints); everything else goes through [int_of_string_opt] on
     a substring, exactly as the legacy parser does. *)
  let parse_int p q =
    let b = rd.buf in
    let i = ref p in
    let neg =
      match Bytes.unsafe_get b p with
      | '-' ->
        incr i;
        true
      | '+' ->
        incr i;
        false
      | _ -> false
    in
    let ndigits = q - !i in
    let ok = ref (ndigits > 0 && ndigits <= 18) in
    let v = ref 0 in
    let j = ref !i in
    while !ok && !j < q do
      let c = Bytes.unsafe_get b !j in
      if c >= '0' && c <= '9' then begin
        v := (10 * !v) + (Char.code c - Char.code '0');
        incr j
      end
      else ok := false
    done;
    if !ok then if neg then - !v else !v
    else begin
      let s = Bytes.sub_string b p (q - p) in
      match int_of_string_opt s with
      | Some n -> n
      | None -> fail !line "unexpected token %S" s
    end
  in
  (* Rest of a "p" line as token strings (at most once per file). *)
  let gather_p_tokens () =
    let toks = ref [] in
    let continue = ref true in
    while !continue do
      if rd.pos >= rd.len then begin
        if not (refill rd) then continue := false
      end
      else begin
        let c = Bytes.unsafe_get rd.buf rd.pos in
        if c = '\n' then continue := false
        else if is_inline_space c then rd.pos <- rd.pos + 1
        else begin
          let q = token_end rd in
          toks := Bytes.sub_string rd.buf rd.pos (q - rd.pos) :: !toks;
          rd.pos <- q
        end
      end
    done;
    List.rev !toks
  in
  let handle_p_line () =
    if !declared >= 0 then fail !line "duplicate p-header";
    match gather_p_tokens () with
    | [ "cnf"; v; c ] -> (
      match int_of_string_opt v, int_of_string_opt c with
      | Some v, Some c when v >= 0 && c >= 0 ->
        declared := v;
        on_header ~vars:v ~clauses:c
      | _ -> fail !line "malformed p-header")
    | _ -> fail !line "malformed p-header (expected `p cnf <vars> <clauses>')"
  in
  let at_bol = ref true in
  let stopped = ref false in
  let rec loop () =
    if !stopped then ()
    else if rd.pos >= rd.len then begin
      if refill rd then loop () (* else: end of input *)
    end
    else begin
      let c = Bytes.unsafe_get rd.buf rd.pos in
      if c = '\n' then begin
        rd.pos <- rd.pos + 1;
        incr line;
        at_bol := true;
        loop ()
      end
      else if is_inline_space c then begin
        rd.pos <- rd.pos + 1;
        loop ()
      end
      else if !at_bol && c = 'c' then begin
        (* comment: the line's first token starts with 'c' *)
        skip_to_newline rd;
        loop ()
      end
      else begin
        let q = token_end rd in
        let p = rd.pos in (* token_end may have compacted: reread start *)
        if !at_bol && q - p = 1 && Bytes.unsafe_get rd.buf p = 'p' then begin
          at_bol := false;
          rd.pos <- q;
          handle_p_line ();
          loop ()
        end
        else if !at_bol && q - p = 1 && Bytes.unsafe_get rd.buf p = '%' then
          (* SATLIB terminator: ignore everything after it *)
          stopped := true
        else begin
          at_bol := false;
          let n = parse_int p q in
          rd.pos <- q;
          if n = 0 then emit () else push_lit n;
          loop ()
        end
      end
    end
  in
  loop ();
  if !nlits > 0 then emit () (* tolerate a missing final 0 *);
  (!acc, Array.length !scratch)

let fold_clauses ?(chunk_size = default_chunk_size) ?on_header source ~init ~f =
  let on_header =
    match on_header with
    | Some g -> g
    | None -> fun ~vars:_ ~clauses:_ -> ()
  in
  fst (stream ~chunk_size ~on_header ~init ~f source)

let iter_clauses ?chunk_size ?on_header source ~f =
  fold_clauses ?chunk_size ?on_header source ~init:() ~f:(fun () lits n ->
      f lits n)

(* Streaming fold plus the peak scratch size — the O(largest clause)
   bound the memory ceiling of the bulk-load path is stated in. *)
let fold_clauses_scratch ?(chunk_size = default_chunk_size) ?on_header source
    ~init ~f =
  let on_header =
    match on_header with
    | Some g -> g
    | None -> fun ~vars:_ ~clauses:_ -> ()
  in
  stream ~chunk_size ~on_header ~init ~f source

(* ------------------------------------------------------------------ *)
(* The public parse entry points: thin wrappers over the stream.       *)

let parse_source ?chunk_size source =
  let cnf = Cnf.create () in
  let on_header ~vars ~clauses:_ = Cnf.ensure_vars cnf vars in
  iter_clauses ?chunk_size ~on_header source ~f:(fun lits n ->
      Cnf.add_clause_a cnf (Array.sub lits 0 n));
  cnf

let parse_string s = parse_source (From_string s)
let parse_channel ic = parse_source (From_channel ic)

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_channel ic)

(* ------------------------------------------------------------------ *)
(* Printing and solutions (unchanged).                                 *)

let print fmt cnf =
  Format.fprintf fmt "p cnf %d %d\n" (Cnf.num_vars cnf) (Cnf.num_clauses cnf);
  Cnf.iter
    (fun c ->
      Clause.iter (fun l -> Format.fprintf fmt "%d " (Lit.to_dimacs l)) c;
      Format.fprintf fmt "0\n")
    cnf

let to_string cnf = Format.asprintf "%a" print cnf

let write_file path cnf =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let fmt = Format.formatter_of_out_channel oc in
      print fmt cnf;
      Format.pp_print_flush fmt ())

let parse_solution s =
  let lines = String.split_on_char '\n' s in
  let answer = ref None in
  let lits = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if String.length line > 0 then
        match line.[0] with
        | 's' ->
          let verdict = String.trim (String.sub line 1 (String.length line - 1)) in
          (match verdict with
          | "SATISFIABLE" -> answer := Some true
          | "UNSATISFIABLE" -> answer := Some false
          | other -> fail lineno "unknown verdict %S" other)
        | 'v' ->
          String.sub line 1 (String.length line - 1)
          |> String.split_on_char ' '
          |> List.iter (fun tok ->
                 let tok = String.trim tok in
                 if tok <> "" && tok <> "0" then
                   match int_of_string_opt tok with
                   | Some n -> lits := n :: !lits
                   | None -> fail lineno "bad literal %S in v-line" tok)
        | 'c' -> ()
        | _ -> fail lineno "unexpected line %S" line)
    lines;
  match !answer with
  | None -> fail 0 "missing s-line"
  | Some false -> None
  | Some true ->
    let max_var = List.fold_left (fun m n -> max m (abs n)) 0 !lits in
    let a = Array.make max_var false in
    List.iter (fun n -> a.(abs n - 1) <- n > 0) !lits;
    Some a

let print_solution fmt = function
  | None -> Format.fprintf fmt "s UNSATISFIABLE\n"
  | Some a ->
    Format.fprintf fmt "s SATISFIABLE\nv";
    Array.iteri
      (fun v b -> Format.fprintf fmt " %d" (if b then v + 1 else -(v + 1)))
      a;
    Format.fprintf fmt " 0\n"
