(** DIMACS CNF reader and writer.

    Accepts the usual liberal dialect: [c] comment lines anywhere, one
    [p cnf <vars> <clauses>] header, whitespace-separated literals with
    clauses terminated by [0] (clauses may span lines; several clauses
    may share a line).  The declared counts are checked loosely: more
    variables than declared is an error, a clause-count mismatch is
    tolerated (many published instances get it wrong).

    The reader is streaming: input is consumed through a chunked
    [Bytes] buffer with an in-place integer tokenizer — no
    intermediate line strings, no per-token allocation — so peak heap
    while parsing is bounded by the chunk size plus the largest single
    clause, never by the file size.  {!fold_clauses}/{!iter_clauses}
    expose the stream directly; {!parse_string}/{!parse_file} are thin
    wrappers that materialize a {!Cnf.t}. *)

open Berkmin_types

exception Parse_error of { line : int; message : string }

(** {1 Streaming interface} *)

type source =
  | From_string of string
  | From_channel of in_channel  (** consumed to its end (or the ['%'] stop) *)

val fold_clauses :
  ?chunk_size:int ->
  ?on_header:(vars:int -> clauses:int -> unit) ->
  source ->
  init:'a ->
  f:('a -> Lit.t array -> int -> 'a) ->
  'a
(** [fold_clauses src ~init ~f] runs [f acc lits n] once per clause,
    where the clause's literals are [lits.(0) .. lits.(n - 1)] in file
    order.  [lits] is a reusable scratch buffer owned by the parser:
    it is overwritten by the next clause, so [f] must copy what it
    keeps.  [on_header] fires once when the [p cnf V C] line is seen
    (it is not called for headerless files).  [chunk_size] is the read
    granularity in bytes (default 64 KiB); small values exercise
    token-across-chunk compaction and are useful in tests.
    @raise Parse_error on malformed input. *)

val iter_clauses :
  ?chunk_size:int ->
  ?on_header:(vars:int -> clauses:int -> unit) ->
  source ->
  f:(Lit.t array -> int -> unit) ->
  unit

val fold_clauses_scratch :
  ?chunk_size:int ->
  ?on_header:(vars:int -> clauses:int -> unit) ->
  source ->
  init:'a ->
  f:('a -> Lit.t array -> int -> 'a) ->
  'a * int
(** Like {!fold_clauses} but also returns the final scratch-buffer
    capacity in words — the O(largest clause) term of the streaming
    memory bound, recorded by the solver's bulk-load path. *)

(** {1 Whole-formula parsing} *)

val parse_string : string -> Cnf.t
(** @raise Parse_error on malformed input. *)

val parse_channel : in_channel -> Cnf.t

val parse_file : string -> Cnf.t
(** @raise Sys_error if the file cannot be opened. *)

(** {1 Legacy line-based parser}

    The original [String.split_on_char]-per-line implementation, kept
    as the differential reference: the streaming parser is
    property-tested to produce the same {!Cnf.t} (and the same
    {!Parse_error}s) on the same inputs, and the bigfile benchmark
    measures the streaming speedup against it. *)

module Legacy : sig
  val parse_string : string -> Cnf.t
  val parse_channel : in_channel -> Cnf.t
  val parse_file : string -> Cnf.t
end

(** {1 Printing} *)

val print : Format.formatter -> Cnf.t -> unit
(** Writes a well-formed DIMACS document including the [p cnf] header. *)

val to_string : Cnf.t -> string

val write_file : string -> Cnf.t -> unit

val parse_solution : string -> bool array option
(** Parses a SAT-competition style solution ("s SATISFIABLE" /
    "v ..." lines).  Returns [None] for an UNSATISFIABLE answer.
    @raise Parse_error on malformed input. *)

val print_solution : Format.formatter -> bool array option -> unit
(** Inverse of [parse_solution]. *)
