(** Proof-sound clause-database simplification.

    Subsumption, self-subsuming resolution, bounded variable
    elimination (BVE) and failed-literal probing over an occurrence
    index, operating on a plain clause list so the engine can be driven
    by the solver (from its arena), by tests, or standalone.

    Every rewrite is mirrored to the DRUP callback with derived clauses
    added {e before} the clauses they came from are deleted, so the
    emitted event stream splices into the solver's proof log and still
    forward-checks (see docs/SIMPLIFY.md for the full argument).
    Eliminated variables come back as an elimination stack; {!Recon}
    replays it to repair SAT models. *)

open Berkmin_types

type opts = {
  max_rounds : int;  (** fixpoint rounds before giving up *)
  bve_growth : int;
      (** BVE may add this many resolvents beyond the clauses removed *)
  bve_max_occ : int;
      (** skip elimination of variables with more total occurrences *)
  probe_budget : int;  (** total binary-implication steps for probing *)
  subsume_budget : int;  (** total candidate tests for subsumption *)
}

val default_opts : opts

type clause_in = {
  lits : Lit.t array;
  tag : int;  (** opaque caller cookie, returned in [kept]; must be >= 0 *)
  redundant : bool;
      (** learnt clauses: never drive BVE, dropped when their variable
          is eliminated, promoted to irredundant when they subsume an
          irredundant clause *)
}

type elim_entry = {
  var : int;
  clauses : Lit.t array list;
      (** the irredundant occurrences removed when [var] was
          eliminated; reconstruction picks the phase of [var]
          satisfying all of them *)
}

type stats = {
  mutable rounds : int;
  mutable subsumed : int;
  mutable strengthened : int;
  mutable eliminated_vars : int;
  mutable failed_literals : int;
  mutable simplified_clauses : int;  (** clauses deleted outright *)
  mutable resolvents_added : int;
}

type outcome = {
  kept : clause_in list;
      (** surviving input clauses, possibly strengthened or promoted,
          in input order *)
  resolvents : Lit.t array list;  (** new irredundant clauses from BVE *)
  units : Lit.t list;
      (** derived top-level facts in derivation order (each already
          emitted to the proof) *)
  unsat : bool;  (** a root-level conflict was derived *)
  eliminated : elim_entry list;  (** newest elimination first *)
  st : stats;
}

val run :
  ?opts:opts ->
  nvars:int ->
  frozen:(int -> bool) ->
  roots:Lit.t list ->
  proof:(Berkmin_proof.Drup.event -> unit) ->
  clause_in list ->
  outcome
(** [run ~nvars ~frozen ~roots ~proof clauses] simplifies [clauses].

    [frozen v] excludes [v] from variable elimination (assumption
    variables, variables the caller will mention again).  [roots] are
    already-established facts (the solver's level-0 trail): they seed
    the internal assignment and clean the database but are not
    re-emitted to the proof — the caller must have logged them (the
    solver logs every level-0 enqueue while simplification is active).
    The [proof] callback receives every Add/Delete in a forward-
    checkable order; pass [ignore] when no proof is wanted. *)
