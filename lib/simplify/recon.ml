(* Model reconstruction after bounded variable elimination.

   The elimination stack records, newest first, each eliminated
   variable together with the irredundant clauses that mentioned it.
   Because every resolvent of those clauses stayed in (or was re-added
   to) the database, a model of the simplified formula satisfies all
   resolvents — which guarantees that at least one phase of the
   eliminated variable satisfies every removed clause.  Replaying the
   stack newest-first therefore repairs the model one variable at a
   time: try true, fall back to false when some removed clause is
   still unsatisfied. *)

open Berkmin_types

let clause_satisfied model lits =
  Array.exists
    (fun l ->
      let v = Lit.var l in
      v < Array.length model && model.(v) = Lit.is_pos l)
    lits

let extend stack model =
  List.iter
    (fun { Engine.var; clauses } ->
      model.(var) <- true;
      if not (List.for_all (clause_satisfied model) clauses) then
        model.(var) <- false)
    stack

let check stack model =
  List.for_all
    (fun { Engine.clauses; _ } -> List.for_all (clause_satisfied model) clauses)
    stack
