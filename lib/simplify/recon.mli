(** Model reconstruction for bounded variable elimination.

    SAT models of the simplified formula are repaired by replaying the
    elimination stack newest-first: each eliminated variable is set to
    the phase satisfying every clause removed with it.  Soundness
    argument in docs/SIMPLIFY.md. *)

val extend : Engine.elim_entry list -> bool array -> unit
(** [extend stack model] assigns every eliminated variable in [model],
    in place.  [stack] must be newest elimination first (as produced by
    {!Engine.run} and as accumulated by the solver). *)

val check : Engine.elim_entry list -> bool array -> bool
(** [check stack model]: does [model] satisfy every clause recorded on
    the stack?  Diagnostic aid for tests. *)
