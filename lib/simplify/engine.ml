(* Clause-database simplification: subsumption, self-subsuming
   resolution, bounded variable elimination and failed-literal probing
   over an occurrence index.

   The engine is deliberately solver-agnostic: it consumes a plain
   clause list (each clause carrying an opaque caller tag and a
   redundant/irredundant marker), a set of already-established root
   facts, and a DRUP event callback, and returns the surviving
   database, the derived top-level facts and the elimination stack
   needed to repair SAT models.  The solver rebuilds its arena, watch
   lists and binary index from the outcome; nothing here touches
   solver internals.

   Proof discipline (the whole point of threading the callback through
   every rewrite): a derived clause is Add-ed *before* any clause it
   was derived from is Delete-d, so at every prefix of the emitted
   event stream the new clause is RUP against the live checker
   database.  Concretely:

   - a subsumed clause is only deleted (its subsumer stays live);
   - a strengthened clause emits Add(shorter) then Delete(longer) —
     the shorter clause is the self-subsuming resolvent of the longer
     one with the subsuming clause, hence RUP;
   - a failed literal emits Add([¬l]) — RUP because assuming l runs
     the binary implication chain into a conflict;
   - variable elimination emits Add for every non-tautological
     resolvent, then Delete for every occurrence clause;
   - clauses satisfied by a derived unit are deleted only after the
     unit itself was emitted.

   Root facts are assumed to be already derivable by the checker (the
   solver logs every level-0 enqueue when simplification is active),
   so they are never re-emitted here. *)

open Berkmin_types
module Drup = Berkmin_proof.Drup

type opts = {
  max_rounds : int;
  bve_growth : int;
  bve_max_occ : int;
  probe_budget : int;
  subsume_budget : int;
}

let default_opts =
  {
    max_rounds = 3;
    bve_growth = 0;
    bve_max_occ = 16;
    probe_budget = 200_000;
    subsume_budget = 2_000_000;
  }

type clause_in = {
  lits : Lit.t array;
  tag : int;
  redundant : bool;
}

type elim_entry = {
  var : int;
  clauses : Lit.t array list;
}

type stats = {
  mutable rounds : int;
  mutable subsumed : int;
  mutable strengthened : int;
  mutable eliminated_vars : int;
  mutable failed_literals : int;
  mutable simplified_clauses : int;
  mutable resolvents_added : int;
}

type outcome = {
  kept : clause_in list;
  resolvents : Lit.t array list;
  units : Lit.t list;
  unsat : bool;
  eliminated : elim_entry list;
  st : stats;
}

(* Internal clause record.  Literal arrays are kept sorted (integer
   order), which makes the two phases of a variable adjacent — subset
   tests, resolution and tautology detection are all linear merges. *)
type cl = {
  mutable lits : Lit.t array;
  mutable live : bool;
  mutable red : bool;
  mutable sg : int;  (* 63-bit variable signature *)
  tag : int;  (* caller tag; -1 for resolvents created here *)
}

let signature lits =
  Array.fold_left (fun s l -> s lor (1 lsl (Lit.var l mod 63))) 0 lits

(* [a] subset of [b], both sorted. *)
let subset a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la then true
    else if j >= lb then false
    else
      let c = compare a.(i) b.(j) in
      if c = 0 then go (i + 1) (j + 1)
      else if c > 0 then go i (j + 1)
      else false
  in
  la <= lb && go 0 0

(* As [subset], but allowing exactly one mismatch: a.(i) present in [b]
   negated.  Returns the negated literal (as it occurs in [b]) when the
   rest of [a] is contained in [b] — the self-subsuming resolution
   case. *)
let subset_except_one a b =
  let la = Array.length a and lb = Array.length b in
  let flipped = ref (-1) in
  let rec go i j =
    if i >= la then true
    else if j >= lb then false
    else
      let c = compare a.(i) b.(j) in
      if c = 0 then go (i + 1) (j + 1)
      else if !flipped < 0 && Lit.negate a.(i) = b.(j) then begin
        flipped := b.(j);
        go (i + 1) (j + 1)
      end
      else if c > 0 then go i (j + 1)
      else false
  in
  if la <= lb && go 0 0 && !flipped >= 0 then Some !flipped else None

type state = {
  opts : opts;
  nvars : int;
  frozen : int -> bool;
  proof : Drup.event -> unit;
  db : cl Vec.t;
  occ : int Vec.t array;  (* per literal: clause ids, lazily filtered *)
  assign : Value.t array;
  queue : Lit.t Vec.t;  (* pending unit propagations *)
  mutable qhead : int;
  eliminated : bool array;
  mutable unsat : bool;
  mutable units_out : Lit.t list;  (* derived facts, reverse order *)
  mutable elim_out : elim_entry list;  (* newest first *)
  st : stats;
  mutable probe_spent : int;
  mutable subsume_spent : int;
}

let emit_add t lits = t.proof (Drup.Add (Clause.of_array lits))
let emit_del t lits = t.proof (Drup.Delete (Clause.of_array lits))

let lit_value t l =
  let v = t.assign.(Lit.var l) in
  if v = Value.Unassigned then Value.Unassigned
  else if Lit.is_pos l then v
  else if v = Value.True then Value.False
  else Value.True

let occ_push t id lits =
  Array.iter (fun l -> Vec.push t.occ.(l) id) lits

let add_internal t ~red ~tag lits =
  let id = Vec.length t.db in
  Vec.push t.db { lits; live = true; red; sg = signature lits; tag };
  occ_push t id lits;
  id

(* Mark a clause dead.  The occurrence lists keep their stale entries;
   every traversal checks [live] (and membership, for strengthened
   clauses). *)
let kill t c ~emit =
  if c.live then begin
    c.live <- false;
    if emit then emit_del t c.lits;
    t.st.simplified_clauses <- t.st.simplified_clauses + 1
  end

(* Derived top-level fact: emit its unit clause (callers rely on the
   emission happening before any deletion it enables), assign, queue. *)
let push_unit t l =
  match lit_value t l with
  | Value.True -> ()
  | Value.False ->
    emit_add t [| l |];
    (* Contradictory units: the refutation is complete, and the empty
       clause is RUP right here (both phases are in the proof).  Emit
       it now — later deletions may remove its witnesses. *)
    emit_add t [||];
    t.units_out <- l :: t.units_out;
    t.unsat <- true
  | Value.Unassigned ->
    emit_add t [| l |];
    t.units_out <- l :: t.units_out;
    t.assign.(Lit.var l) <-
      (if Lit.is_pos l then Value.True else Value.False);
    Vec.push t.queue l

(* Seed an already-established fact (level-0 trail literal): assigned
   and propagated, but neither emitted nor reported back. *)
let seed_root t l =
  match lit_value t l with
  | Value.True -> ()
  | Value.False -> t.unsat <- true
  | Value.Unassigned ->
    t.assign.(Lit.var l) <-
      (if Lit.is_pos l then Value.True else Value.False);
    Vec.push t.queue l

(* Rewrite [c] under the current assignment: delete it when satisfied,
   strip false literals otherwise (emitting Add(short)/Delete(long)).
   Shortening to a unit re-enters [push_unit]; shortening to the empty
   clause is a root conflict. *)
let clean_clause t c =
  if c.live then begin
    let sat = ref false in
    let n_false = ref 0 in
    Array.iter
      (fun l ->
        match lit_value t l with
        | Value.True -> sat := true
        | Value.False -> incr n_false
        | Value.Unassigned -> ())
      c.lits;
    if !sat then kill t c ~emit:true
    else if !n_false > 0 then begin
      let kept =
        Array.of_list
          (List.filter
             (fun l -> lit_value t l <> Value.False)
             (Array.to_list c.lits))
      in
      match Array.length kept with
      | 0 ->
        (* Every literal is false under established units: the empty
           clause is RUP while [c] is still in the database. *)
        emit_add t [||];
        t.unsat <- true;
        kill t c ~emit:true
      | 1 ->
        push_unit t kept.(0);
        kill t c ~emit:true
      | _ ->
        emit_add t kept;
        emit_del t c.lits;
        c.lits <- kept;
        c.sg <- signature kept;
        t.st.strengthened <- t.st.strengthened + 1
    end
  end

let propagate t =
  while (not t.unsat) && t.qhead < Vec.length t.queue do
    let l = Vec.get t.queue t.qhead in
    t.qhead <- t.qhead + 1;
    (* Clauses containing l are satisfied; clauses containing ¬l lose
       a literal.  Both directions are handled by [clean_clause]. *)
    let touch lit =
      let v = t.occ.(lit) in
      for i = 0 to Vec.length v - 1 do
        if not t.unsat then clean_clause t (Vec.get t.db (Vec.get v i))
      done
    in
    touch l;
    touch (Lit.negate l)
  done

(* ------------------------------------------------------------------ *)
(* Subsumption and self-subsuming resolution.                          *)

(* Occurrence list of the rarest literal of [c] — the standard trick
   for finding every clause a subsumer can hit without scanning the
   whole database. *)
let rarest_occ t c =
  let best = ref c.lits.(0) in
  Array.iter
    (fun l ->
      if Vec.length t.occ.(l) < Vec.length t.occ.(!best) then best := l)
    c.lits;
  t.occ.(!best)

let strengthen t d ~drop =
  let kept =
    Array.of_list (List.filter (fun l -> l <> drop) (Array.to_list d.lits))
  in
  match Array.length kept with
  | 0 ->
    (* [d] was the unit [drop] and its negation subsumes the rest:
       both phases are in the database, so the empty clause is RUP
       while they still are. *)
    emit_add t [||];
    t.unsat <- true;
    kill t d ~emit:true
  | 1 ->
    push_unit t kept.(0);
    kill t d ~emit:true;
    t.st.strengthened <- t.st.strengthened + 1
  | _ ->
    emit_add t kept;
    emit_del t d.lits;
    d.lits <- kept;
    d.sg <- signature kept;
    t.st.strengthened <- t.st.strengthened + 1

(* One backward pass: every live clause tries to subsume or strengthen
   the clauses sharing its rarest literal.  Work is bounded by
   [subsume_budget] candidate tests per run, so a pathological database
   degrades to a partial pass instead of a stall. *)
let subsume_round t =
  let before = t.st.subsumed + t.st.strengthened in
  let n = Vec.length t.db in
  let i = ref 0 in
  while !i < n && (not t.unsat) && t.subsume_spent < t.opts.subsume_budget do
    let c = Vec.get t.db !i in
    if c.live && Array.length c.lits > 0 then begin
      (* Plain subsumption: C ⊆ D deletes D. *)
      let v = rarest_occ t c in
      let k = ref 0 in
      while !k < Vec.length v && c.live do
        let j = Vec.get v !k in
        incr k;
        t.subsume_spent <- t.subsume_spent + 1;
        if j >= 0 && j <> !i then begin
          let d = Vec.get t.db j in
          if
            d.live
            && Array.length d.lits >= Array.length c.lits
            && c.sg land lnot d.sg = 0
          then begin
            if subset c.lits d.lits then begin
              (* An irredundant clause may only disappear if its
                 subsumer stays irredundant. *)
              if (not d.red) && c.red then c.red <- false;
              kill t d ~emit:true;
              t.st.subsumed <- t.st.subsumed + 1
            end
            else
              match subset_except_one c.lits d.lits with
              | Some flipped ->
                if (not d.red) && c.red then c.red <- false;
                strengthen t d ~drop:flipped
              | None -> ()
          end
        end
      done;
      (* Self-subsuming resolution against clauses that do NOT share
         the rarest literal: a victim of C may instead contain the
         negation of one of C's literals, so scan occ(¬l) for each l
         of C (the SatELite strengthening direction). *)
      let li = ref 0 in
      while
        !li < Array.length c.lits
        && c.live
        && (not t.unsat)
        && t.subsume_spent < t.opts.subsume_budget
      do
        let v = t.occ.(Lit.negate c.lits.(!li)) in
        let k = ref 0 in
        while !k < Vec.length v && c.live do
          let j = Vec.get v !k in
          incr k;
          t.subsume_spent <- t.subsume_spent + 1;
          if j >= 0 && j <> !i then begin
            let d = Vec.get t.db j in
            if
              d.live
              && Array.length d.lits >= Array.length c.lits
              && c.sg land lnot d.sg = 0
            then
              match subset_except_one c.lits d.lits with
              | Some flipped ->
                if (not d.red) && c.red then c.red <- false;
                strengthen t d ~drop:flipped
              | None -> ()
          end
        done;
        incr li
      done
    end;
    incr i;
    if not (Vec.is_empty t.queue) then propagate t
  done;
  propagate t;
  t.st.subsumed + t.st.strengthened > before

(* ------------------------------------------------------------------ *)
(* Failed-literal probing over the binary implication graph.           *)

(* Build per-literal adjacency from the live 2-clauses: clause (a ∨ b)
   contributes ¬a → b and ¬b → a.  The graph is rebuilt after every
   successful probe, because propagating the failed literal deletes or
   shortens binaries the next chain might otherwise walk through —
   stale edges would make Add([¬l]) non-RUP against the live proof
   database. *)
let probe_round t =
  let nlits = 2 * t.nvars in
  let found = ref false in
  let continue_ = ref true in
  while !continue_ && (not t.unsat) && t.probe_spent < t.opts.probe_budget do
    continue_ := false;
    let adj = Array.make nlits [] in
    let edges = ref 0 in
    Vec.iter
      (fun c ->
        if c.live && Array.length c.lits = 2 then begin
          let a = c.lits.(0) and b = c.lits.(1) in
          adj.(Lit.negate a) <- b :: adj.(Lit.negate a);
          adj.(Lit.negate b) <- a :: adj.(Lit.negate b);
          edges := !edges + 2
        end)
      t.db;
    if !edges > 0 then begin
      let mark = Array.make nlits (-1) in
      let stack = Vec.create ~dummy:0 () in
      let l = ref 0 in
      while !l < nlits && not !continue_ do
        if
          adj.(!l) <> []
          && t.assign.(Lit.var !l) = Value.Unassigned
          && t.probe_spent < t.opts.probe_budget
        then begin
          (* DFS of the implications of assuming [l]. *)
          Vec.clear stack;
          Vec.push stack !l;
          mark.(!l) <- !l;
          let failed = ref false in
          while (not !failed) && not (Vec.is_empty stack) do
            let u = Vec.pop stack in
            List.iter
              (fun w ->
                t.probe_spent <- t.probe_spent + 1;
                if mark.(Lit.negate w) = !l then failed := true
                else if mark.(w) <> !l then begin
                  mark.(w) <- !l;
                  Vec.push stack w
                end)
              adj.(u)
          done;
          if !failed then begin
            t.st.failed_literals <- t.st.failed_literals + 1;
            push_unit t (Lit.negate !l);
            propagate t;
            found := true;
            (* Units were applied: rebuild the graph and rescan. *)
            continue_ := true
          end
        end;
        incr l
      done
    end
  done;
  !found

(* ------------------------------------------------------------------ *)
(* Bounded variable elimination.                                       *)

(* Resolvent of two sorted clauses on [v]; [None] for tautologies. *)
let resolve_on v a b =
  let out = ref [] in
  let taut = ref false in
  let push l =
    match !out with
    | prev :: _ when prev = l -> ()
    | prev :: _ when prev = Lit.negate l -> taut := true
    | _ -> out := l :: !out
  in
  (* Merge keeping sortedness: walk both arrays as one sorted stream. *)
  let la = Array.length a and lb = Array.length b in
  let i = ref 0 and j = ref 0 in
  while (not !taut) && (!i < la || !j < lb) do
    let next =
      if !i >= la then begin
        let l = b.(!j) in
        incr j;
        l
      end
      else if !j >= lb then begin
        let l = a.(!i) in
        incr i;
        l
      end
      else if compare a.(!i) b.(!j) <= 0 then begin
        let l = a.(!i) in
        incr i;
        l
      end
      else begin
        let l = b.(!j) in
        incr j;
        l
      end
    in
    if Lit.var next <> v then push next
  done;
  if !taut then None else Some (Array.of_list (List.rev !out))

(* Live irredundant occurrences of literal [l]. *)
let occurrences t l =
  let out = ref [] in
  let v = t.occ.(l) in
  for i = Vec.length v - 1 downto 0 do
    let j = Vec.get v i in
    if j >= 0 then begin
      let c = Vec.get t.db j in
      if c.live && (not c.red) && Array.exists (fun x -> x = l) c.lits then
        if not (List.memq c !out) then out := c :: !out
    end
  done;
  !out

let eliminate_round t =
  let before = t.st.eliminated_vars in
  let v = ref 0 in
  while !v < t.nvars && not t.unsat do
    let var = !v in
    if
      (not t.eliminated.(var))
      && (not (t.frozen var))
      && t.assign.(var) = Value.Unassigned
    then begin
      let pos = occurrences t (Lit.pos var) in
      let neg = occurrences t (Lit.neg_of var) in
      let np = List.length pos and nn = List.length neg in
      if np + nn > 0 && np + nn <= t.opts.bve_max_occ then begin
        (* Count non-tautological resolvents, aborting on overflow of
           the growth cap. *)
        let cap = np + nn + t.opts.bve_growth in
        let resolvents = ref [] in
        let count = ref 0 in
        (try
           List.iter
             (fun cp ->
               List.iter
                 (fun cn ->
                   match resolve_on var cp.lits cn.lits with
                   | None -> ()
                   | Some r ->
                     incr count;
                     if !count > cap then raise Exit;
                     resolvents := r :: !resolvents)
                 neg)
             pos;
           (* Eliminate: add resolvents first, then delete every
              occurrence (irredundant ones go to the reconstruction
              stack, redundant ones are just dropped). *)
           let removed = List.map (fun c -> Array.copy c.lits) (pos @ neg) in
           List.iter
             (fun r ->
               match Array.length r with
               | 0 ->
                 emit_add t r;
                 t.unsat <- true
               | 1 -> push_unit t r.(0)
               | _ ->
                 emit_add t r;
                 ignore (add_internal t ~red:false ~tag:(-1) r);
                 t.st.resolvents_added <- t.st.resolvents_added + 1)
             (List.rev !resolvents);
           List.iter
             (fun c ->
               kill t c ~emit:true)
             (pos @ neg);
           (* Redundant clauses mentioning the variable can no longer
              be represented; drop them (sound: they were learnt). *)
           List.iter
             (fun l ->
               let occ = t.occ.(l) in
               for i = 0 to Vec.length occ - 1 do
                 let j = Vec.get occ i in
                 if j >= 0 then begin
                   let c = Vec.get t.db j in
                   if c.live && Array.exists (fun x -> Lit.var x = var) c.lits
                   then kill t c ~emit:true
                 end
               done)
             [ Lit.pos var; Lit.neg_of var ];
           t.eliminated.(var) <- true;
           t.st.eliminated_vars <- t.st.eliminated_vars + 1;
           t.elim_out <- { var; clauses = removed } :: t.elim_out;
           propagate t
         with Exit -> ())
      end
    end;
    incr v
  done;
  t.st.eliminated_vars > before

(* ------------------------------------------------------------------ *)
(* Entry point.                                                        *)

let run ?(opts = default_opts) ~nvars ~frozen ~roots ~proof clauses =
  let st =
    {
      rounds = 0;
      subsumed = 0;
      strengthened = 0;
      eliminated_vars = 0;
      failed_literals = 0;
      simplified_clauses = 0;
      resolvents_added = 0;
    }
  in
  let t =
    {
      opts;
      nvars;
      frozen;
      proof;
      db =
        Vec.create
          ~dummy:{ lits = [||]; live = false; red = false; sg = 0; tag = -1 }
          ();
      occ = Array.init (max (2 * nvars) 1) (fun _ -> Vec.create ~dummy:0 ());
      assign = Array.make (max nvars 1) Value.Unassigned;
      queue = Vec.create ~dummy:0 ();
      qhead = 0;
      eliminated = Array.make (max nvars 1) false;
      unsat = false;
      units_out = [];
      elim_out = [];
      st;
      probe_spent = 0;
      subsume_spent = 0;
    }
  in
  List.iter
    (fun { lits; tag; redundant } ->
      let sorted = Array.copy lits in
      Array.sort compare sorted;
      ignore (add_internal t ~red:redundant ~tag sorted))
    clauses;
  List.iter (seed_root t) roots;
  propagate t;
  let changed = ref true in
  while !changed && (not t.unsat) && st.rounds < opts.max_rounds do
    st.rounds <- st.rounds + 1;
    let c1 = subsume_round t in
    let c2 = if t.unsat then false else probe_round t in
    let c3 = if t.unsat then false else eliminate_round t in
    changed := c1 || c2 || c3
  done;
  let kept = ref [] in
  let resolvents = ref [] in
  Vec.iter
    (fun c ->
      if c.live then
        if c.tag >= 0 then
          kept := { lits = c.lits; tag = c.tag; redundant = c.red } :: !kept
        else resolvents := c.lits :: !resolvents)
    t.db;
  {
    kept = List.rev !kept;
    resolvents = List.rev !resolvents;
    units = List.rev t.units_out;
    unsat = t.unsat;
    eliminated = t.elim_out;
    st;
  }
