(* Wire codec for the portfolio's learnt-clause exchange.

   Everything that crosses a worker pipe is a length-prefixed frame:

     bytes 0..3   payload length N, big-endian unsigned
     bytes 4..    N payload bytes, first byte = frame type

   Clause payload ('C' = 0x43):

     byte  0      'C'
     byte  1      glue, clamped to 255
     bytes 2..3   literal count k, big-endian
     bytes 4..    k literals, 4 bytes each, big-endian, in the
                  solver's internal encoding (2v / 2v+1)

   so a k-literal clause frame occupies 4 + 4 + 4k bytes — 40 bytes at
   the default export cap of 8 literals, far below PIPE_BUF (>= 512 by
   POSIX, 4096 on Linux).  Frames that small are written atomically
   even on a non-blocking pipe: a write either transfers the whole
   frame or fails with EAGAIN, never a prefix, which is what lets the
   exchange drop frames under backpressure instead of corrupting the
   stream.

   Reply payload ('R' = 0x52): the marshalled end-of-race reply,
   opaque to this module.  Reply frames exceed PIPE_BUF; they are
   written blocking, once, as the worker's last act.

   The decoder is incremental: feed it arbitrary byte slices as they
   arrive, pop complete frames.  A truncated frame simply waits for
   more bytes; a structurally impossible one (unknown type byte,
   clause length not matching the literal count, payload beyond the
   sanity caps) raises {!Malformed} — the reader treats the peer as
   crashed. *)

open Berkmin_types

type frame =
  | Clause of { glue : int; lits : Lit.t array }
  | Reply of Bytes.t

exception Malformed of string

let clause_type = Char.code 'C'
let reply_type = Char.code 'R'

(* Sanity caps: a clause frame is bounded so it stays under PIPE_BUF
   (the atomicity requirement); a reply carries a marshalled Stats.t
   and a model array, bounded generously. *)
let max_clause_lits = 120
let max_clause_payload = 4 + (4 * max_clause_lits)
let max_reply_payload = 64 * 1024 * 1024

let put_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u8 b off = Char.code (Bytes.get b off)

let get_u16 b off = (get_u8 b off lsl 8) lor get_u8 b (off + 1)

let get_u32 b off =
  (get_u8 b off lsl 24)
  lor (get_u8 b (off + 1) lsl 16)
  lor (get_u8 b (off + 2) lsl 8)
  lor get_u8 b (off + 3)

let encode_clause ~glue lits =
  let k = Array.length lits in
  if k = 0 || k > max_clause_lits then
    invalid_arg "Share.encode_clause: clause size out of range";
  let payload = 4 + (4 * k) in
  let b = Bytes.create (4 + payload) in
  put_u32 b 0 payload;
  Bytes.set b 4 (Char.chr clause_type);
  Bytes.set b 5 (Char.chr (min glue 255));
  Bytes.set b 6 (Char.chr ((k lsr 8) land 0xff));
  Bytes.set b 7 (Char.chr (k land 0xff));
  Array.iteri (fun j l -> put_u32 b (8 + (4 * j)) l) lits;
  b

let encode_reply payload =
  let n = Bytes.length payload in
  if n > max_reply_payload then invalid_arg "Share.encode_reply: too large";
  let b = Bytes.create (4 + 1 + n) in
  put_u32 b 0 (1 + n);
  Bytes.set b 4 (Char.chr reply_type);
  Bytes.blit payload 0 b 5 n;
  b

(* ------------------------------------------------------------------ *)
(* Incremental decoder.                                                *)

type decoder = {
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable len : int;  (* bytes buffered from [start] *)
}

let decoder () = { buf = Bytes.create 4096; start = 0; len = 0 }

let buffered d = d.len

let feed d src n =
  if n > 0 then begin
    let needed = d.len + n in
    if d.start + needed > Bytes.length d.buf then begin
      (* Compact to the front; grow if still short. *)
      let cap = ref (max (Bytes.length d.buf) 16) in
      while needed > !cap do
        cap := 2 * !cap
      done;
      let nb = Bytes.create !cap in
      Bytes.blit d.buf d.start nb 0 d.len;
      d.buf <- nb;
      d.start <- 0
    end;
    Bytes.blit src 0 d.buf (d.start + d.len) n;
    d.len <- d.len + n
  end

let parse_payload b off n =
  let ty = get_u8 b off in
  if ty = clause_type then begin
    if n < 4 then raise (Malformed "clause frame shorter than its header");
    if n > max_clause_payload then raise (Malformed "oversized clause frame");
    let glue = get_u8 b (off + 1) in
    let k = get_u16 b (off + 2) in
    if n <> 4 + (4 * k) then
      raise (Malformed "clause frame length does not match literal count");
    if k = 0 then raise (Malformed "empty clause frame");
    Clause { glue; lits = Array.init k (fun j -> get_u32 b (off + 4 + (4 * j))) }
  end
  else if ty = reply_type then Reply (Bytes.sub b (off + 1) (n - 1))
  else raise (Malformed (Printf.sprintf "unknown frame type byte %d" ty))

(* Pop one complete frame, or [None] when the buffered bytes end
   mid-frame (feed more and retry).  @raise Malformed as documented. *)
let next d =
  if d.len < 4 then None
  else begin
    let n = get_u32 d.buf d.start in
    if n < 1 then raise (Malformed "empty frame payload");
    if n > max_reply_payload then raise (Malformed "frame beyond sanity cap");
    if d.len < 4 + n then None
    else begin
      let frame = parse_payload d.buf (d.start + 4) n in
      d.start <- d.start + 4 + n;
      d.len <- d.len - (4 + n);
      if d.len = 0 then d.start <- 0;
      Some frame
    end
  end

(* ------------------------------------------------------------------ *)
(* Export filter and dedup key.                                        *)

(* The quality gate of the exchange: only short, low-glue clauses
   travel.  Length bounds the bandwidth; glue (distinct decision
   levels at learn time) selects clauses that tie few levels together
   — the ones empirically most reusable across differently-steered
   searches. *)
let passes ~max_len ~max_glue ~glue lits =
  let k = Array.length lits in
  k >= 1 && k <= max_len && k <= max_clause_lits && glue <= max_glue

(* Canonical identity of a clause: sorted distinct literals.  Used by
   the parent to broadcast each distinct clause once even when several
   workers learn it. *)
let key lits =
  let l = List.sort_uniq Lit.compare (Array.to_list lits) in
  String.concat "," (List.map string_of_int l)
