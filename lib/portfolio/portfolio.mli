(** Process-parallel portfolio solving.

    A portfolio run races [N] diversified solver configurations on the
    same formula, one Unix process each, and returns the first
    definitive verdict (SAT/UNSAT); the losing workers are killed.
    Diversification varies exactly the axes the paper's evaluation
    shows to dominate runtime variance — restart policy (fixed
    interval vs Luby unit), decision sensitivity (BerkMin's
    responsible-clauses bumping vs conflict-clause-only), clause-DB
    aggressiveness, branch polarity and the RNG seed — so hard
    instances are attacked from several heuristic angles at once.

    Workers are plain [Unix.fork] children (no Domains, so the same
    code runs on OCaml 4.14 and 5.x): each solves in its own copy of
    the formula and talks to the parent over a pair of pipes carrying
    length-prefixed {!Share} frames.  While searching, a worker with
    {!Berkmin.Config.t.share_learnt} on exports every learnt clause
    that passes the length/glue filter up its pipe; the parent
    rebroadcasts each distinct clause to every other worker, which
    adopts the imports at its next restart (see [docs/PARALLEL.md]
    for the wire protocol).  Sharing is best-effort: every export and
    rebroadcast write is non-blocking and drops the frame rather than
    stall anyone.  The worker's last act is a reply frame wrapping its
    marshalled verdict, statistics and wall time.  The parent
    multiplexes the pipes with [Unix.select], enforces an optional
    per-worker wall-clock timeout, and degrades gracefully: a worker
    that crashes, is killed by a signal, or exhausts its budget is
    recorded as such and the race simply continues with the
    survivors.  Only when no worker can produce a verdict does the
    aggregate result fall back to [Unknown].

    With a single worker (and no fault-injection hook) no process is
    forked: the solve runs in this process, bit-for-bit identical to
    {!Berkmin.Solver.solve} — existing sequential behaviour is
    untouched.

    Tracing composes with the race: when a JSONL trace path is set,
    each worker writes [path.w<i>] with every event tagged with its
    worker index (see {!Berkmin.Trace.set_worker}), and the parent
    merges the per-worker files into a single stream at [path] after
    the race. *)

open Berkmin_types

type spec = {
  sp_config : Berkmin.Config.t;  (** the worker's configuration *)
  sp_budget : Berkmin.Solver.budget;  (** its conflict/CPU budget *)
}
(** One worker: a configuration plus a solve budget.  Per-worker
    budgets make deterministic tests possible (starve one worker,
    the other must win). *)

(** How a worker's run ended, as observed by the parent. *)
type status =
  | W_won  (** delivered the winning SAT/UNSAT verdict *)
  | W_lost  (** killed because another worker won first *)
  | W_exhausted  (** reported [Unknown]: its budget ran out *)
  | W_crashed of int
      (** exited with this code without delivering a verdict *)
  | W_signaled of int
      (** killed by this signal (OCaml convention, e.g.
          [Sys.sigkill]) without delivering a verdict *)
  | W_timed_out  (** killed at the per-worker wall-clock timeout *)

type worker = {
  w_index : int;
  w_config : Berkmin.Config.t;
  w_status : status;
  w_wall_seconds : float;
      (** parent-observed wall time from spawn to termination *)
  w_stats : Berkmin.Stats.t option;
      (** solver statistics, for workers that delivered a reply
          ([W_won]/[W_exhausted]); [None] for killed or crashed ones *)
  w_frames_exported : int;
      (** clause frames the parent received from this worker — counted
          parent-side, so meaningful even for killed workers (unlike
          the worker's own [Stats.t.clauses_exported], which only
          survives in a delivered reply) *)
  w_frames_delivered : int;
      (** distinct clause frames the parent successfully wrote into
          this worker's import pipe (drops under backpressure and
          writes to dead workers are not counted) *)
}

type outcome = {
  result : Berkmin.Solver.result;
      (** the aggregate verdict: the winner's, or [Unknown] when no
          worker produced one *)
  winner : int option;  (** index of the winning worker *)
  workers : worker list;  (** one record per worker, in index order *)
  wall_seconds : float;  (** wall time of the whole race *)
}

val diversify :
  ?diversify:bool -> workers:int -> Berkmin.Config.t -> Berkmin.Config.t list
(** [diversify ~workers base] is the portfolio of [workers]
    configurations raced for [base].  Worker 0 always runs [base]
    itself, so a portfolio answer can never be worse than the
    sequential configuration (modulo scheduling).  Further workers
    rotate through six lanes — a Chaff-like profile, Luby restarts
    with a growing unit, aggressive clause-DB reduction with fast
    restarts, low-sensitivity activity with fast decay, randomized
    polarity, and a low-mobility DB-hoarding profile — each with a
    distinct RNG seed.  With [~diversify:false] the workers differ
    only in seed.  Observability fields of [base] are preserved.
    @raise Invalid_argument when [workers < 1]. *)

val solve_specs :
  ?wall_timeout:float ->
  ?worker_hook:(int -> unit) ->
  ?trace_jsonl:string ->
  spec list ->
  Cnf.t ->
  outcome
(** Race an explicit list of workers on the formula.

    [wall_timeout] kills any worker still running after that many wall
    seconds.  [worker_hook] runs in each child just before solving
    (fault injection for tests: a hook that calls [exit 2] or raises
    [Sys.sigkill] simulates a crashed worker); passing a hook forces
    forking even for a single worker.  [trace_jsonl] routes each
    worker's trace to [path.w<i>] and merges them into [path]
    afterwards; any trace path inside the specs' configurations is
    ignored in favour of this per-worker scheme.

    SAT models are re-verified in the parent; a worker returning a
    model that does not satisfy the formula is treated as crashed and
    the race continues.
    @raise Invalid_argument on an empty spec list. *)

val solve :
  ?budget:Berkmin.Solver.budget ->
  ?wall_timeout:float ->
  ?trace_jsonl:string ->
  Berkmin.Config.t list ->
  Cnf.t ->
  outcome
(** [solve configs cnf] races the given configurations under one
    shared budget (default {!Berkmin.Solver.no_budget}). *)

val solve_config :
  ?budget:Berkmin.Solver.budget -> Berkmin.Config.t -> Cnf.t -> outcome
(** The high-level entry point the CLI and harness use: builds the
    portfolio from the configuration's own knobs —
    {!Berkmin.Config.t.workers} copies diversified per
    {!Berkmin.Config.t.portfolio_diversify}, killed after
    {!Berkmin.Config.t.worker_wall_timeout}, traced to
    {!Berkmin.Config.t.trace_jsonl} — and races it. *)

val status_to_string : status -> string
(** ["won"], ["lost"], ["exhausted"], ["crashed(2)"],
    ["signaled(-7)"], ["timed_out"]. *)

val result_to_string : Berkmin.Solver.result -> string
(** ["SAT"], ["UNSAT"] or ["UNKNOWN"]. *)

val worker_to_json : worker -> Json.t
(** One worker as JSON: index, strategy name, seed, status, wall
    seconds, the parent-observed [frames_exported]/[frames_delivered]
    sharing counters, and (when delivered) the full statistics object
    tagged with the worker index. *)

val outcome_to_json : outcome -> Json.t
(** The whole race: aggregate result, winner index (null when none),
    total wall seconds and the per-worker records. *)
