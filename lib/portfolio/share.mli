(** Wire codec for the portfolio's learnt-clause exchange.

    Workers and parent speak length-prefixed frames over the race's
    pipes:

    {v
      bytes 0..3   payload length N (big-endian unsigned)
      bytes 4..    N payload bytes; payload byte 0 is the frame type
    v}

    Clause frames (type ['C']) carry one exported learnt clause —
    glue byte, 2-byte big-endian literal count, then each literal as
    4 big-endian bytes in the solver's internal encoding — and stay
    below [PIPE_BUF], so a non-blocking pipe write transfers a whole
    frame or nothing ([EAGAIN]): the exchange can drop frames under
    backpressure without ever corrupting the stream.  Reply frames
    (type ['R']) wrap the worker's marshalled end-of-race reply and
    are written blocking, once.

    See [docs/PARALLEL.md] for the byte-level walkthrough. *)

open Berkmin_types

type frame =
  | Clause of { glue : int; lits : Lit.t array }
      (** one shared learnt clause (glue clamped to 255 on encode) *)
  | Reply of Bytes.t  (** the marshalled reply, opaque to the codec *)

exception Malformed of string
(** A structurally impossible frame: unknown type byte, length not
    matching the literal count, payload beyond the sanity caps.  The
    reader should treat the peer as crashed. *)

val max_clause_lits : int
(** Hard cap on literals per clause frame (keeps frames atomic on a
    pipe); {!encode_clause} refuses longer clauses, the export filter
    never passes them. *)

val encode_clause : glue:int -> Lit.t array -> Bytes.t
(** The complete frame (header + payload) for one clause.
    @raise Invalid_argument on an empty or over-long clause. *)

val encode_reply : Bytes.t -> Bytes.t
(** Wraps an opaque (marshalled) reply into a reply frame. *)

type decoder
(** Incremental frame parser: feed byte slices as they arrive, pop
    complete frames.  Partial frames wait for more input. *)

val decoder : unit -> decoder

val feed : decoder -> Bytes.t -> int -> unit
(** [feed d src n] appends the first [n] bytes of [src]. *)

val next : decoder -> frame option
(** Pops the next complete frame, or [None] when the buffered bytes
    end mid-frame.
    @raise Malformed on a structurally invalid frame. *)

val buffered : decoder -> int
(** Bytes currently buffered (un-popped); for tests. *)

val passes : max_len:int -> max_glue:int -> glue:int -> Lit.t array -> bool
(** The export filter: true when the clause is non-empty, within both
    the configured length cap and {!max_clause_lits}, and its glue is
    within the cap. *)

val key : Lit.t array -> string
(** Canonical clause identity (sorted distinct literals): the dedup
    key the parent uses to rebroadcast each distinct clause once. *)
