(* Process-parallel portfolio racing.

   Unix processes rather than Domains: fork is available on every
   supported compiler (the CI matrix spans 4.14 and 5.1), the solver's
   mutable state needs no synchronisation because each worker owns a
   fresh copy-on-write image of the already-loaded formula, and a
   crashed worker cannot corrupt the parent.  The parent is a small
   select/waitpid event loop; all robustness logic (crash detection,
   timeouts, first-wins kills, model re-verification) lives here so
   the solver itself stays oblivious to parallelism.

   Since PR 7 the pipes carry more than the final verdict: workers
   export learnt clauses passing the length/glue filter as {!Share}
   frames on their up pipe, the parent rebroadcasts each distinct
   clause to every other worker's down pipe, and workers drain the
   imports at restart boundaries.  All writes that could stall the
   race (exports under backpressure, rebroadcasts into a slow or dead
   worker) are non-blocking and drop the frame instead of waiting —
   sharing is best-effort by design; only the final reply frame is
   written blocking. *)

open Berkmin_types
module Config = Berkmin.Config
module Solver = Berkmin.Solver
module Stats = Berkmin.Stats
module Trace = Berkmin.Trace

type spec = {
  sp_config : Config.t;
  sp_budget : Solver.budget;
}

type status =
  | W_won
  | W_lost
  | W_exhausted
  | W_crashed of int
  | W_signaled of int
  | W_timed_out

type worker = {
  w_index : int;
  w_config : Config.t;
  w_status : status;
  w_wall_seconds : float;
  w_stats : Stats.t option;
  w_frames_exported : int;
  w_frames_delivered : int;
}

type outcome = {
  result : Solver.result;
  winner : int option;
  workers : worker list;
  wall_seconds : float;
}

(* What a worker sends back over its pipe, wrapped in a {!Share.Reply}
   frame.  Marshalled within one binary, so abstract types (Stats.t,
   the model array) are safe. *)
type reply = {
  r_result : Solver.result;
  r_stats : Stats.t;
  r_seconds : float;
}

let status_to_string = function
  | W_won -> "won"
  | W_lost -> "lost"
  | W_exhausted -> "exhausted"
  | W_crashed code -> Printf.sprintf "crashed(%d)" code
  | W_signaled sg -> Printf.sprintf "signaled(%d)" sg
  | W_timed_out -> "timed_out"

let result_to_string = function
  | Solver.Sat _ -> "SAT"
  | Solver.Unsat -> "UNSAT"
  | Solver.Unknown -> "UNKNOWN"

(* ------------------------------------------------------------------ *)
(* Diversification.                                                    *)

(* Six lanes covering the axes the paper's ablations show to matter:
   restart policy (Tables 1-2 run under fixed 550; the extensions
   sweep Luby), sensitivity (Table 1), DB aggressiveness (Table 5),
   polarity (Table 4) and mobility (Table 2).  Worker 0 is always the
   base configuration, so the portfolio's verdict set is a superset of
   the sequential solver's. *)
let variant base i =
  let open Config in
  let lane =
    match (i - 1) mod 6 with
    | 0 ->
      (* Chaff-like lane: the paper's own strongest competitor. *)
      {
        base with
        activity_mode = Conflict_clause_only;
        decision_mode = Vsids_literal;
        polarity_mode = Sat_top;
        reduction_mode = Length_limit 100;
        restart_mode = Fixed 700;
        var_decay_interval = 100;
        var_decay_factor = 2.0;
      }
    | 1 ->
      (* Luby restarts; the unit grows as the portfolio widens. *)
      { base with restart_mode = Luby (64 * (1 + ((i - 1) / 6))) }
    | 2 ->
      (* Aggressive clause-DB reduction with fast restarts. *)
      { base with reduction_mode = Length_limit 60; restart_mode = Fixed 300 }
    | 3 ->
      (* Low sensitivity, fast activity aging. *)
      { base with activity_mode = Conflict_clause_only; var_decay_interval = 32 }
    | 4 ->
      (* Randomized polarity: pure seed-driven diversification. *)
      { base with polarity_mode = Take_random; restart_mode = Luby 128 }
    | _ ->
      (* Low mobility, DB hoarding. *)
      { base with decision_mode = Global_most_active; reduction_mode = Keep_all }
  in
  { lane with seed = base.seed + (31 * i); workers = 1 }

let diversify ?(diversify = true) ~workers base =
  if workers < 1 then
    invalid_arg "Portfolio.diversify: need at least one worker";
  List.init workers (fun i ->
      if i = 0 then { base with Config.workers = 1 }
      else if diversify then variant base i
      else { base with Config.seed = base.Config.seed + i; workers = 1 })

(* ------------------------------------------------------------------ *)
(* Trace plumbing.                                                     *)

let worker_trace_path base i = Printf.sprintf "%s.w%d" base i

(* Concatenate the per-worker JSONL files into the requested path.
   Every line is already tagged with its worker index, so plain
   concatenation loses only the (meaningless across processes)
   interleaving order. *)
let merge_traces path indices =
  let oc = open_out path in
  List.iter
    (fun i ->
      let wpath = worker_trace_path path i in
      if Sys.file_exists wpath then begin
        let ic = open_in wpath in
        (try
           while true do
             output_string oc (input_line ic);
             output_char oc '\n'
           done
         with End_of_file -> ());
        close_in ic;
        Sys.remove wpath
      end)
    indices;
  close_out oc

(* ------------------------------------------------------------------ *)
(* The child.                                                          *)

let write_all fd b =
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* Export side: every learnt clause passing the length/glue filter is
   framed and written non-blocking to the up pipe.  Clause frames are
   below PIPE_BUF, so the write is atomic — EAGAIN (parent slow) or
   EPIPE (parent gone) drops the whole frame and the search goes on:
   sharing never stalls a worker. *)
let install_export solver config up_wr =
  Unix.set_nonblock up_wr;
  let st = Solver.stats solver in
  let tracer = Solver.trace solver in
  Solver.set_learn_hook solver (fun ~glue lits ->
      if
        Share.passes ~max_len:config.Config.share_max_len
          ~max_glue:config.Config.share_max_glue ~glue lits
      then begin
        let frame = Share.encode_clause ~glue lits in
        match Unix.write up_wr frame 0 (Bytes.length frame) with
        | _ ->
          st.Stats.clauses_exported <- st.Stats.clauses_exported + 1;
          if tracer.Trace.active then
            Trace.emit tracer
              (Trace.Share
                 {
                   direction = Trace.S_export;
                   size = Array.length lits;
                   glue;
                 })
        | exception Unix.Unix_error _ -> ()
      end)

(* Import side: at every restart the solver polls the down pipe,
   non-blocking — whatever complete clause frames have accumulated are
   adopted, a partial frame waits in the decoder for the next restart.
   A malformed frame (impossible unless the parent is corrupt) stops
   imports for good rather than killing the worker. *)
let install_import solver down_rd =
  Unix.set_nonblock down_rd;
  let dec = Share.decoder () in
  let buf = Bytes.create 65536 in
  let poisoned = ref false in
  Solver.set_import_source solver (fun () ->
      if !poisoned then []
      else begin
        let eof = ref false in
        (try
           let n = ref (Unix.read down_rd buf 0 (Bytes.length buf)) in
           while !n > 0 do
             Share.feed dec buf !n;
             n := Unix.read down_rd buf 0 (Bytes.length buf)
           done;
           eof := !n = 0
         with
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ());
        ignore !eof;
        let imports = ref [] in
        (try
           let continue = ref true in
           while !continue do
             match Share.next dec with
             | Some (Share.Clause { glue; lits }) ->
               imports := (glue, lits) :: !imports
             | Some (Share.Reply _) -> poisoned := true
             | None -> continue := false
           done
         with Share.Malformed _ -> poisoned := true);
        List.rev !imports
      end)

let run_child ~hook ~trace_path ~index spec cnf ~up_wr ~down_rd =
  let code =
    try
      (* A worker may be writing an export frame in the window between
         the parent closing its pipes and the SIGKILL landing; EPIPE
         (handled) beats dying on SIGPIPE. *)
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      (match hook with Some h -> h index | None -> ());
      let config = { spec.sp_config with Config.workers = 1; trace_jsonl = trace_path } in
      let solver = Solver.create ~config cnf in
      Trace.set_worker (Solver.trace solver) index;
      if config.Config.share_learnt then begin
        install_export solver config up_wr;
        install_import solver down_rd
      end;
      let started = Unix.gettimeofday () in
      let result = Solver.solve ~budget:spec.sp_budget solver in
      let r_seconds = Unix.gettimeofday () -. started in
      Solver.close_trace solver;
      let reply = { r_result = result; r_stats = Solver.stats solver; r_seconds } in
      (* The reply frame exceeds PIPE_BUF: restore blocking mode and
         write it whole, as this worker's last act. *)
      (try Unix.clear_nonblock up_wr with Unix.Unix_error _ -> ());
      write_all up_wr (Share.encode_reply (Marshal.to_bytes reply []));
      0
    with _ -> 3
  in
  (* _exit, not exit: at_exit handlers would flush a copy of the
     parent's buffered output into our shared stdout. *)
  Unix._exit code

(* ------------------------------------------------------------------ *)
(* The parent's race loop.                                             *)

type live = {
  l_index : int;
  l_pid : int;
  l_up : Unix.file_descr;  (* worker -> parent: clause frames, reply *)
  l_down : Unix.file_descr;  (* parent -> worker: rebroadcast clauses *)
  l_dec : Share.decoder;
  l_spec : spec;
  mutable l_exported : int;  (* clause frames received from this worker *)
  mutable l_delivered : int;  (* clause frames written into its down pipe *)
}

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, st -> st
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let kill_quietly pid =
  try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let rec select_retry rds timeout =
  match Unix.select rds [] [] timeout with
  | r, _, _ -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_retry rds timeout

let crash_status st =
  match st with
  | Unix.WEXITED code -> W_crashed code
  | Unix.WSIGNALED sg -> W_signaled sg
  | Unix.WSTOPPED sg -> W_signaled sg

let fork_race ?wall_timeout ?worker_hook ?trace_jsonl specs cnf =
  (* Children share our stdio buffers at fork time; flush so nothing
     is emitted twice. *)
  flush stdout;
  flush stderr;
  (* Rebroadcast writes race against worker deaths; an EPIPE exception
     (SIGPIPE ignored) is handled, a SIGPIPE would kill the parent. *)
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let share =
    List.exists (fun sp -> sp.sp_config.Config.share_learnt) specs
  in
  let started = Unix.gettimeofday () in
  let parent_ends = ref [] in
  let spawn l_index spec =
    let up_rd, up_wr = Unix.pipe () in
    let down_rd, down_wr = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      Unix.close up_rd;
      Unix.close down_wr;
      (* Inherited parent-side ends of earlier siblings: close them so
         each pipe end dies with its one owner. *)
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        !parent_ends;
      let trace_path = Option.map (fun p -> worker_trace_path p l_index) trace_jsonl in
      run_child ~hook:worker_hook ~trace_path ~index:l_index spec cnf ~up_wr
        ~down_rd
    | pid ->
      Unix.close up_wr;
      Unix.close down_rd;
      (* Rebroadcasts must never stall the race loop behind a slow
         worker: non-blocking, drop on EAGAIN. *)
      Unix.set_nonblock down_wr;
      parent_ends := up_rd :: down_wr :: !parent_ends;
      {
        l_index;
        l_pid = pid;
        l_up = up_rd;
        l_down = down_wr;
        l_dec = Share.decoder ();
        l_spec = spec;
        l_exported = 0;
        l_delivered = 0;
      }
  in
  let live = List.mapi spawn specs in
  let n = List.length specs in
  let records = Array.make n None in
  let elapsed () = Unix.gettimeofday () -. started in
  let remaining = ref live in
  let finish w status stats =
    records.(w.l_index) <-
      Some
        {
          w_index = w.l_index;
          w_config = w.l_spec.sp_config;
          w_status = status;
          w_wall_seconds = elapsed ();
          w_stats = stats;
          w_frames_exported = w.l_exported;
          w_frames_delivered = w.l_delivered;
        };
    (try Unix.close w.l_up with Unix.Unix_error _ -> ());
    (try Unix.close w.l_down with Unix.Unix_error _ -> ());
    remaining := List.filter (fun o -> o.l_index <> w.l_index) !remaining
  in
  let kill_remaining status ws =
    List.iter
      (fun w ->
        kill_quietly w.l_pid;
        ignore (waitpid_retry w.l_pid);
        finish w status None)
      ws
  in
  let deadline = Option.map (fun t -> started +. t) wall_timeout in
  let result = ref Solver.Unknown in
  let winner = ref None in
  (* Distinct clauses already rebroadcast: each canonical literal set
     crosses the parent once, even when several workers learn it. *)
  let seen = Hashtbl.create 256 in
  let broadcast src frame =
    List.iter
      (fun o ->
        if o.l_index <> src.l_index then
          match Unix.write o.l_down frame 0 (Bytes.length frame) with
          | _ -> o.l_delivered <- o.l_delivered + 1
          | exception Unix.Unix_error _ ->
            (* EAGAIN (worker not draining), EPIPE/EBADF (worker gone):
               drop the frame for this worker only. *)
            ())
      !remaining
  in
  let handle_reply w (reply : reply) =
    ignore (waitpid_retry w.l_pid);
    match reply.r_result with
    | (Solver.Sat _ | Solver.Unsat) when Option.is_some !winner ->
      (* Another worker already won while this reply sat buffered. *)
      finish w W_lost (Some reply.r_stats)
    | Solver.Sat model when not (Cnf.satisfied_by cnf model) ->
      (* A worker claiming SAT must prove it; a bogus model is a
         crash, not a verdict. *)
      finish w (W_crashed 0) (Some reply.r_stats)
    | Solver.Sat _ | Solver.Unsat ->
      result := reply.r_result;
      winner := Some w.l_index;
      finish w W_won (Some reply.r_stats);
      kill_remaining W_lost !remaining
    | Solver.Unknown -> finish w W_exhausted (Some reply.r_stats)
  in
  let abort_protocol w =
    (* EOF without a reply, a malformed frame or an unreadable reply:
       the child is dead or talking garbage. *)
    kill_quietly w.l_pid;
    finish w (crash_status (waitpid_retry w.l_pid)) None
  in
  let buf = Bytes.create 65536 in
  let handle_readable w =
    match Unix.read w.l_up buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | 0 -> finish w (crash_status (waitpid_retry w.l_pid)) None
    | nread -> (
      Share.feed w.l_dec buf nread;
      try
        let continue = ref true in
        while !continue do
          match Share.next w.l_dec with
          | None -> continue := false
          | Some (Share.Clause { glue; lits }) ->
            w.l_exported <- w.l_exported + 1;
            if share then begin
              let k = Share.key lits in
              if not (Hashtbl.mem seen k) then begin
                Hashtbl.add seen k ();
                broadcast w (Share.encode_clause ~glue lits)
              end
            end
          | Some (Share.Reply payload) -> (
            continue := false;
            match (Marshal.from_bytes payload 0 : reply) with
            | exception _ -> abort_protocol w
            | reply -> handle_reply w reply)
        done
      with Share.Malformed _ -> abort_protocol w)
  in
  let rec race () =
    match !remaining with
    | [] -> ()
    | ws ->
      let timeout =
        match deadline with
        | None -> -1.0
        | Some d -> Float.max 0.0 (d -. Unix.gettimeofday ())
      in
      (match select_retry (List.map (fun w -> w.l_up) ws) timeout with
      | [] ->
        (* Per-worker wall-clock timeout: everyone still running dies. *)
        kill_remaining W_timed_out ws
      | readable ->
        List.iter
          (fun w ->
            (* A worker may have been finished by an earlier iteration
               of this same round (a win kills the rest). *)
            if
              List.mem w.l_up readable
              && List.exists (fun o -> o.l_index = w.l_index) !remaining
            then handle_readable w)
          ws);
      race ()
  in
  race ();
  (match old_sigpipe with
  | Some h -> Sys.set_signal Sys.sigpipe h
  | None -> ());
  (match trace_jsonl with
  | Some path -> merge_traces path (List.init n Fun.id)
  | None -> ());
  let workers =
    Array.to_list records
    |> List.filteri (fun _ r -> r <> None)
    |> List.map Option.get
  in
  { result = !result; winner = !winner; workers; wall_seconds = elapsed () }

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)

let sequential ?trace_jsonl spec cnf =
  let config =
    match trace_jsonl with
    | Some path -> Config.with_trace_jsonl path spec.sp_config
    | None -> spec.sp_config
  in
  let config = { config with Config.workers = 1 } in
  let solver = Solver.create ~config cnf in
  let started = Unix.gettimeofday () in
  let result = Solver.solve ~budget:spec.sp_budget solver in
  let wall = Unix.gettimeofday () -. started in
  Solver.close_trace solver;
  let w_status, winner =
    match result with
    | Solver.Sat _ | Solver.Unsat -> (W_won, Some 0)
    | Solver.Unknown -> (W_exhausted, None)
  in
  {
    result;
    winner;
    workers =
      [
        {
          w_index = 0;
          w_config = spec.sp_config;
          w_status;
          w_wall_seconds = wall;
          w_stats = Some (Solver.stats solver);
          w_frames_exported = 0;
          w_frames_delivered = 0;
        };
      ];
    wall_seconds = wall;
  }

let solve_specs ?wall_timeout ?worker_hook ?trace_jsonl specs cnf =
  match specs with
  | [] -> invalid_arg "Portfolio.solve_specs: empty portfolio"
  | [ spec ] when Option.is_none worker_hook ->
    (* Deterministic sequential fallback: no fork, no pipe, the exact
       Solver.solve code path.  A wall timeout degenerates to a CPU
       budget (the closest sequential notion). *)
    let spec =
      match wall_timeout with
      | None -> spec
      | Some t ->
        let max_seconds =
          match spec.sp_budget.Solver.max_seconds with
          | None -> Some t
          | Some s -> Some (Float.min s t)
        in
        { spec with sp_budget = { spec.sp_budget with max_seconds } }
    in
    sequential ?trace_jsonl spec cnf
  | specs -> fork_race ?wall_timeout ?worker_hook ?trace_jsonl specs cnf

let solve ?(budget = Solver.no_budget) ?wall_timeout ?trace_jsonl configs cnf =
  solve_specs ?wall_timeout ?trace_jsonl
    (List.map (fun sp_config -> { sp_config; sp_budget = budget }) configs)
    cnf

let solve_config ?(budget = Solver.no_budget) config cnf =
  let configs =
    diversify ~diversify:config.Config.portfolio_diversify
      ~workers:config.Config.workers config
  in
  let specs =
    List.map (fun sp_config -> { sp_config; sp_budget = budget }) configs
  in
  solve_specs
    ?wall_timeout:config.Config.worker_wall_timeout
    ?trace_jsonl:config.Config.trace_jsonl specs cnf

(* ------------------------------------------------------------------ *)
(* JSON.                                                               *)

let worker_to_json w =
  Json.Obj
    [
      "worker", Json.Int w.w_index;
      "strategy", Json.String (Config.name_of w.w_config);
      "seed", Json.Int w.w_config.Config.seed;
      "status", Json.String (status_to_string w.w_status);
      "wall_seconds", Json.Float w.w_wall_seconds;
      "frames_exported", Json.Int w.w_frames_exported;
      "frames_delivered", Json.Int w.w_frames_delivered;
      ( "stats",
        match w.w_stats with
        | Some st -> Stats.to_json ~worker:w.w_index st
        | None -> Json.Null );
    ]

let outcome_to_json o =
  Json.Obj
    [
      "result", Json.String (result_to_string o.result);
      ( "winner",
        match o.winner with Some w -> Json.Int w | None -> Json.Null );
      "wall_seconds", Json.Float o.wall_seconds;
      "workers", Json.List (List.map worker_to_json o.workers);
    ]
