(* Process-parallel portfolio racing.

   Unix processes rather than Domains: fork is available on every
   supported compiler (the CI matrix spans 4.14 and 5.1), the solver's
   mutable state needs no synchronisation because each worker owns a
   fresh copy-on-write image of the already-loaded formula, and a
   crashed worker cannot corrupt the parent.  The parent is a small
   select/waitpid event loop; all robustness logic (crash detection,
   timeouts, first-wins kills, model re-verification) lives here so
   the solver itself stays oblivious to parallelism. *)

open Berkmin_types
module Config = Berkmin.Config
module Solver = Berkmin.Solver
module Stats = Berkmin.Stats
module Trace = Berkmin.Trace

type spec = {
  sp_config : Config.t;
  sp_budget : Solver.budget;
}

type status =
  | W_won
  | W_lost
  | W_exhausted
  | W_crashed of int
  | W_signaled of int
  | W_timed_out

type worker = {
  w_index : int;
  w_config : Config.t;
  w_status : status;
  w_wall_seconds : float;
  w_stats : Stats.t option;
}

type outcome = {
  result : Solver.result;
  winner : int option;
  workers : worker list;
  wall_seconds : float;
}

(* What a worker sends back over its pipe.  Marshalled within one
   binary, so abstract types (Stats.t, the model array) are safe. *)
type reply = {
  r_result : Solver.result;
  r_stats : Stats.t;
  r_seconds : float;
}

let status_to_string = function
  | W_won -> "won"
  | W_lost -> "lost"
  | W_exhausted -> "exhausted"
  | W_crashed code -> Printf.sprintf "crashed(%d)" code
  | W_signaled sg -> Printf.sprintf "signaled(%d)" sg
  | W_timed_out -> "timed_out"

let result_to_string = function
  | Solver.Sat _ -> "SAT"
  | Solver.Unsat -> "UNSAT"
  | Solver.Unknown -> "UNKNOWN"

(* ------------------------------------------------------------------ *)
(* Diversification.                                                    *)

(* Six lanes covering the axes the paper's ablations show to matter:
   restart policy (Tables 1-2 run under fixed 550; the extensions
   sweep Luby), sensitivity (Table 1), DB aggressiveness (Table 5),
   polarity (Table 4) and mobility (Table 2).  Worker 0 is always the
   base configuration, so the portfolio's verdict set is a superset of
   the sequential solver's. *)
let variant base i =
  let open Config in
  let lane =
    match (i - 1) mod 6 with
    | 0 ->
      (* Chaff-like lane: the paper's own strongest competitor. *)
      {
        base with
        activity_mode = Conflict_clause_only;
        decision_mode = Vsids_literal;
        polarity_mode = Sat_top;
        reduction_mode = Length_limit 100;
        restart_mode = Fixed 700;
        var_decay_interval = 100;
        var_decay_factor = 2.0;
      }
    | 1 ->
      (* Luby restarts; the unit grows as the portfolio widens. *)
      { base with restart_mode = Luby (64 * (1 + ((i - 1) / 6))) }
    | 2 ->
      (* Aggressive clause-DB reduction with fast restarts. *)
      { base with reduction_mode = Length_limit 60; restart_mode = Fixed 300 }
    | 3 ->
      (* Low sensitivity, fast activity aging. *)
      { base with activity_mode = Conflict_clause_only; var_decay_interval = 32 }
    | 4 ->
      (* Randomized polarity: pure seed-driven diversification. *)
      { base with polarity_mode = Take_random; restart_mode = Luby 128 }
    | _ ->
      (* Low mobility, DB hoarding. *)
      { base with decision_mode = Global_most_active; reduction_mode = Keep_all }
  in
  { lane with seed = base.seed + (31 * i); workers = 1 }

let diversify ?(diversify = true) ~workers base =
  if workers < 1 then
    invalid_arg "Portfolio.diversify: need at least one worker";
  List.init workers (fun i ->
      if i = 0 then { base with Config.workers = 1 }
      else if diversify then variant base i
      else { base with Config.seed = base.Config.seed + i; workers = 1 })

(* ------------------------------------------------------------------ *)
(* Trace plumbing.                                                     *)

let worker_trace_path base i = Printf.sprintf "%s.w%d" base i

(* Concatenate the per-worker JSONL files into the requested path.
   Every line is already tagged with its worker index, so plain
   concatenation loses only the (meaningless across processes)
   interleaving order. *)
let merge_traces path indices =
  let oc = open_out path in
  List.iter
    (fun i ->
      let wpath = worker_trace_path path i in
      if Sys.file_exists wpath then begin
        let ic = open_in wpath in
        (try
           while true do
             output_string oc (input_line ic);
             output_char oc '\n'
           done
         with End_of_file -> ());
        close_in ic;
        Sys.remove wpath
      end)
    indices;
  close_out oc

(* ------------------------------------------------------------------ *)
(* The child.                                                          *)

let run_child ~hook ~trace_path ~index spec cnf wr =
  let code =
    try
      (match hook with Some h -> h index | None -> ());
      let config = { spec.sp_config with Config.workers = 1; trace_jsonl = trace_path } in
      let solver = Solver.create ~config cnf in
      Trace.set_worker (Solver.trace solver) index;
      let started = Unix.gettimeofday () in
      let result = Solver.solve ~budget:spec.sp_budget solver in
      let r_seconds = Unix.gettimeofday () -. started in
      Solver.close_trace solver;
      let reply = { r_result = result; r_stats = Solver.stats solver; r_seconds } in
      let oc = Unix.out_channel_of_descr wr in
      Marshal.to_channel oc reply [];
      flush oc;
      0
    with _ -> 3
  in
  (* _exit, not exit: at_exit handlers would flush a copy of the
     parent's buffered output into our shared stdout. *)
  Unix._exit code

(* ------------------------------------------------------------------ *)
(* The parent's race loop.                                             *)

type live = {
  l_index : int;
  l_pid : int;
  l_rd : Unix.file_descr;
  l_spec : spec;
}

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, st -> st
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let kill_quietly pid =
  try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let rec select_retry rds timeout =
  match Unix.select rds [] [] timeout with
  | r, _, _ -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_retry rds timeout

let crash_status st =
  match st with
  | Unix.WEXITED code -> W_crashed code
  | Unix.WSIGNALED sg -> W_signaled sg
  | Unix.WSTOPPED sg -> W_signaled sg

let fork_race ?wall_timeout ?worker_hook ?trace_jsonl specs cnf =
  (* Children share our stdio buffers at fork time; flush so nothing
     is emitted twice. *)
  flush stdout;
  flush stderr;
  let started = Unix.gettimeofday () in
  let spawned_rds = ref [] in
  let spawn l_index spec =
    let rd, wr = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      Unix.close rd;
      (* Inherited read ends of earlier siblings: close them so the
         only write end of each pipe dies with its owner. *)
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        !spawned_rds;
      let trace_path = Option.map (fun p -> worker_trace_path p l_index) trace_jsonl in
      run_child ~hook:worker_hook ~trace_path ~index:l_index spec cnf wr
    | pid ->
      Unix.close wr;
      spawned_rds := rd :: !spawned_rds;
      { l_index; l_pid = pid; l_rd = rd; l_spec = spec }
  in
  let live = List.mapi spawn specs in
  let n = List.length specs in
  let records = Array.make n None in
  let elapsed () = Unix.gettimeofday () -. started in
  let finish w status stats =
    records.(w.l_index) <-
      Some
        {
          w_index = w.l_index;
          w_config = w.l_spec.sp_config;
          w_status = status;
          w_wall_seconds = elapsed ();
          w_stats = stats;
        };
    (try Unix.close w.l_rd with Unix.Unix_error _ -> ())
  in
  let kill_remaining status remaining =
    List.iter
      (fun w ->
        kill_quietly w.l_pid;
        ignore (waitpid_retry w.l_pid);
        finish w status None)
      remaining
  in
  let deadline = Option.map (fun t -> started +. t) wall_timeout in
  let result = ref Solver.Unknown in
  let winner = ref None in
  let rec race remaining =
    match remaining with
    | [] -> ()
    | _ -> (
      let timeout =
        match deadline with
        | None -> -1.0
        | Some d -> Float.max 0.0 (d -. Unix.gettimeofday ())
      in
      match select_retry (List.map (fun w -> w.l_rd) remaining) timeout with
      | [] ->
        (* Per-worker wall-clock timeout: everyone still running dies. *)
        kill_remaining W_timed_out remaining
      | readable ->
        let finished, rest =
          List.partition (fun w -> List.mem w.l_rd readable) remaining
        in
        let rest = ref rest in
        List.iter
          (fun w ->
            let ic = Unix.in_channel_of_descr w.l_rd in
            match (Marshal.from_channel ic : reply) with
            | exception _ ->
              (* EOF or a truncated reply: the child died mid-solve.
                 Record how and race on with the survivors. *)
              finish w (crash_status (waitpid_retry w.l_pid)) None
            | reply -> (
              ignore (waitpid_retry w.l_pid);
              match reply.r_result with
              | (Solver.Sat _ | Solver.Unsat) when Option.is_some !winner ->
                (* Two workers delivered in the same select round; the
                   first one processed already won. *)
                finish w W_lost (Some reply.r_stats)
              | Solver.Sat model when not (Cnf.satisfied_by cnf model) ->
                (* A worker claiming SAT must prove it; a bogus model
                   is a crash, not a verdict. *)
                finish w (W_crashed 0) (Some reply.r_stats)
              | Solver.Sat _ | Solver.Unsat ->
                result := reply.r_result;
                winner := Some w.l_index;
                finish w W_won (Some reply.r_stats);
                kill_remaining W_lost !rest;
                rest := []
              | Solver.Unknown -> finish w W_exhausted (Some reply.r_stats)))
          finished;
        race !rest)
  in
  race live;
  (match trace_jsonl with
  | Some path -> merge_traces path (List.init n Fun.id)
  | None -> ());
  let workers =
    Array.to_list records
    |> List.filteri (fun _ r -> r <> None)
    |> List.map Option.get
  in
  { result = !result; winner = !winner; workers; wall_seconds = elapsed () }

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)

let sequential ?trace_jsonl spec cnf =
  let config =
    match trace_jsonl with
    | Some path -> Config.with_trace_jsonl path spec.sp_config
    | None -> spec.sp_config
  in
  let config = { config with Config.workers = 1 } in
  let solver = Solver.create ~config cnf in
  let started = Unix.gettimeofday () in
  let result = Solver.solve ~budget:spec.sp_budget solver in
  let wall = Unix.gettimeofday () -. started in
  Solver.close_trace solver;
  let w_status, winner =
    match result with
    | Solver.Sat _ | Solver.Unsat -> (W_won, Some 0)
    | Solver.Unknown -> (W_exhausted, None)
  in
  {
    result;
    winner;
    workers =
      [
        {
          w_index = 0;
          w_config = spec.sp_config;
          w_status;
          w_wall_seconds = wall;
          w_stats = Some (Solver.stats solver);
        };
      ];
    wall_seconds = wall;
  }

let solve_specs ?wall_timeout ?worker_hook ?trace_jsonl specs cnf =
  match specs with
  | [] -> invalid_arg "Portfolio.solve_specs: empty portfolio"
  | [ spec ] when Option.is_none worker_hook ->
    (* Deterministic sequential fallback: no fork, no pipe, the exact
       Solver.solve code path.  A wall timeout degenerates to a CPU
       budget (the closest sequential notion). *)
    let spec =
      match wall_timeout with
      | None -> spec
      | Some t ->
        let max_seconds =
          match spec.sp_budget.Solver.max_seconds with
          | None -> Some t
          | Some s -> Some (Float.min s t)
        in
        { spec with sp_budget = { spec.sp_budget with max_seconds } }
    in
    sequential ?trace_jsonl spec cnf
  | specs -> fork_race ?wall_timeout ?worker_hook ?trace_jsonl specs cnf

let solve ?(budget = Solver.no_budget) ?wall_timeout ?trace_jsonl configs cnf =
  solve_specs ?wall_timeout ?trace_jsonl
    (List.map (fun sp_config -> { sp_config; sp_budget = budget }) configs)
    cnf

let solve_config ?(budget = Solver.no_budget) config cnf =
  let configs =
    diversify ~diversify:config.Config.portfolio_diversify
      ~workers:config.Config.workers config
  in
  let specs =
    List.map (fun sp_config -> { sp_config; sp_budget = budget }) configs
  in
  solve_specs
    ?wall_timeout:config.Config.worker_wall_timeout
    ?trace_jsonl:config.Config.trace_jsonl specs cnf

(* ------------------------------------------------------------------ *)
(* JSON.                                                               *)

let worker_to_json w =
  Json.Obj
    [
      "worker", Json.Int w.w_index;
      "strategy", Json.String (Config.name_of w.w_config);
      "seed", Json.Int w.w_config.Config.seed;
      "status", Json.String (status_to_string w.w_status);
      "wall_seconds", Json.Float w.w_wall_seconds;
      ( "stats",
        match w.w_stats with
        | Some st -> Stats.to_json ~worker:w.w_index st
        | None -> Json.Null );
    ]

let outcome_to_json o =
  Json.Obj
    [
      "result", Json.String (result_to_string o.result);
      ( "winner",
        match o.winner with Some w -> Json.Int w | None -> Json.Null );
      "wall_seconds", Json.Float o.wall_seconds;
      "workers", Json.List (List.map worker_to_json o.workers);
    ]
