(** DRUP proofs: logging and checking.

    A CDCL solver's UNSAT answer is certified by the sequence of learnt
    clauses it added and the clauses it deleted: every added clause must
    follow from the current database by reverse unit propagation (RUP),
    and the sequence must end in the empty clause.  The solver emits
    [event]s through a callback; this module collects them, serialises
    them in the standard DRUP text format, and checks them.

    The checker here is a straightforward forward checker (fresh unit
    propagation per added clause) — quadratic-ish but entirely adequate
    for validating the test and bench instances; it exists to certify
    correctness, not to win checking races. *)

open Berkmin_types

type event =
  | Add of Clause.t
  | Delete of Clause.t

type t
(** A collected proof: an event trace. *)

val create : unit -> t

val record : t -> event -> unit

val events : t -> event list
(** In emission order. *)

val length : t -> int

val to_string : t -> string
(** Standard DRUP text: one clause per line, deletions prefixed [d],
    each line terminated by [0]. *)

val parse_string : string -> t
(** Strict parse: every non-empty line must be a well-formed clause
    (optionally [d]-prefixed) with exactly one terminating [0].
    @raise Failure on malformed input, including a truncated line that
    lost its terminating [0] or an interior [0]. *)

val write_file : string -> t -> unit

type check_result =
  | Valid
  | Invalid of { step : int; clause : Clause.t; reason : string }

val check_result_to_string : check_result -> string
(** ["valid"], or a one-line ["step N: <reason>: [<clause>]"]. *)

val check : Cnf.t -> t -> check_result
(** [check cnf proof] verifies that every [Add] is a RUP consequence of
    the live clause database — the original formula plus previously
    added clauses, minus everything deleted so far — and that the trace
    derives the empty clause.  [Delete] may target an original clause
    (clause simplification does this); a deleted original genuinely
    leaves the database and no longer supports later RUP steps.
    Deleting a clause that is in neither the formula nor the added set
    is an error; adding is checked before the clause is installed. *)

val is_rup : Cnf.t -> extra:Clause.t list -> Clause.t -> bool
(** [is_rup cnf ~extra c] checks the single reverse-unit-propagation
    step: assuming the negation of every literal of [c], unit
    propagation over [cnf]'s clauses plus [extra] derives a conflict. *)
