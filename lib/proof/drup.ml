open Berkmin_types

type event =
  | Add of Clause.t
  | Delete of Clause.t

type t = { trace : event Vec.t }

let dummy_event = Add (Clause.of_list [])

let create () = { trace = Vec.create ~dummy:dummy_event () }
let record t e = Vec.push t.trace e
let events t = Vec.to_list t.trace
let length t = Vec.length t.trace

let to_string t =
  let buf = Buffer.create 4096 in
  Vec.iter
    (fun e ->
      let c =
        match e with
        | Add c -> c
        | Delete c ->
          Buffer.add_string buf "d ";
          c
      in
      Clause.iter
        (fun l ->
          Buffer.add_string buf (Lit.to_string l);
          Buffer.add_char buf ' ')
        c;
      Buffer.add_string buf "0\n")
    t.trace;
  Buffer.contents buf

let parse_string s =
  let t = create () in
  String.split_on_char '\n' s
  |> List.iteri (fun i line ->
         let line = String.trim line in
         if line <> "" then begin
           let fail msg =
             failwith (Printf.sprintf "Drup.parse: line %d: %s" (i + 1) msg)
           in
           let is_delete = line.[0] = 'd' in
           let body =
             if is_delete then String.sub line 1 (String.length line - 1)
             else line
           in
           let tokens =
             String.split_on_char ' ' body
             |> List.filter_map (fun tok ->
                    match String.trim tok with "" -> None | tok -> Some tok)
           in
           (* Strict DRUP: exactly one terminating 0 per line.  A line
              that lost its terminator (truncated file) or grew an
              interior 0 (corruption) is rejected, not guessed at. *)
           let rec lits = function
             | [] -> fail "missing terminating 0"
             | [ "0" ] -> []
             | "0" :: _ -> fail "literal after terminating 0"
             | tok :: rest -> (
               match int_of_string_opt tok with
               | Some n when n <> 0 -> Lit.of_dimacs n :: lits rest
               | Some _ (* "-0" *) | None ->
                 fail (Printf.sprintf "bad token %S" tok))
           in
           let c = Clause.of_list (lits tokens) in
           record t (if is_delete then Delete c else Add c)
         end)
  |> ignore;
  t

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

type check_result =
  | Valid
  | Invalid of { step : int; clause : Clause.t; reason : string }

let check_result_to_string = function
  | Valid -> "valid"
  | Invalid { step; clause; reason } ->
    Printf.sprintf "step %d: %s: [%s]" step reason (Clause.to_string clause)

(* Unit propagation over an explicit clause list under initial
   assumptions; returns [true] when a conflict is reached. *)
let propagates_to_conflict ~num_vars clauses assumptions =
  let assigns = Array.make (max num_vars 1) Value.Unassigned in
  let conflict = ref false in
  let assign l =
    let v = Lit.var l in
    match assigns.(v) with
    | Value.Unassigned ->
      assigns.(v) <- (if Lit.is_pos l then Value.True else Value.False);
      true
    | Value.True -> if Lit.is_pos l then false else (conflict := true; false)
    | Value.False -> if Lit.is_pos l then (conflict := true; false) else false
  in
  List.iter (fun l -> ignore (assign l)) assumptions;
  let changed = ref true in
  while !changed && not !conflict do
    changed := false;
    List.iter
      (fun c ->
        if not !conflict then begin
          let unassigned = ref None and n_unassigned = ref 0 and sat = ref false in
          Clause.iter
            (fun l ->
              let v = Lit.var l in
              match assigns.(v) with
              | Value.Unassigned ->
                incr n_unassigned;
                unassigned := Some l
              | Value.True -> if Lit.is_pos l then sat := true
              | Value.False -> if not (Lit.is_pos l) then sat := true)
            c;
          if not !sat then
            if !n_unassigned = 0 then conflict := true
            else if !n_unassigned = 1 then
              match !unassigned with
              | Some l -> if assign l then changed := true
              | None -> assert false
        end)
      clauses
  done;
  !conflict

let is_rup cnf ~extra c =
  let num_vars =
    List.fold_left
      (fun m d -> max m (Clause.max_var d + 1))
      (max (Cnf.num_vars cnf) (Clause.max_var c + 1))
      extra
  in
  let clauses = Cnf.clauses cnf @ extra in
  let assumptions = List.map Lit.negate (Clause.to_list c) in
  (* A tautological addition is vacuously fine: assuming both phases of a
     variable is itself an immediate conflict. *)
  if Clause.is_tautology c then true
  else propagates_to_conflict ~num_vars clauses assumptions

(* The checker's database is seeded with the original formula, so a
   [Delete] may target an original clause as well as an added one —
   clause simplification (subsumption, variable elimination) deletes
   originals.  A deleted original genuinely leaves the database: later
   RUP checks may not lean on it, which is exactly what makes
   elimination proofs meaningful.  The original CNF is therefore never
   consulted directly during RUP checks, only through the live table. *)
let check cnf t =
  let table : (Clause.t, int) Hashtbl.t = Hashtbl.create 256 in
  let current () =
    Hashtbl.fold
      (fun c n acc -> List.init n (fun _ -> c) @ acc)
      table []
  in
  let add c =
    Hashtbl.replace table c (1 + Option.value ~default:0 (Hashtbl.find_opt table c))
  in
  let remove c =
    match Hashtbl.find_opt table c with
    | None | Some 0 -> false
    | Some 1 ->
      Hashtbl.remove table c;
      true
    | Some n ->
      Hashtbl.replace table c (n - 1);
      true
  in
  Cnf.iter add cnf;
  (* RUP checks run against the live table only; the empty CNF shell
     below just carries the variable count. *)
  let shell = Cnf.create ~num_vars:(Cnf.num_vars cnf) () in
  let derived_empty = ref false in
  let result = ref Valid in
  let step = ref 0 in
  (try
     Vec.iter
       (fun e ->
         incr step;
         match e with
         | Add c ->
           if not (is_rup shell ~extra:(current ()) c) then begin
             result := Invalid { step = !step; clause = c; reason = "not RUP" };
             raise Exit
           end;
           add c;
           (* The first empty clause completes the refutation; like
              standard DRUP checkers, everything after it is ignored. *)
           if Clause.is_empty c then begin
             derived_empty := true;
             raise Exit
           end
         | Delete c ->
           if not (remove c) then begin
             result :=
               Invalid { step = !step; clause = c; reason = "deleting unknown clause" };
             raise Exit
           end)
       t.trace
   with Exit -> ());
  match !result with
  | Invalid _ as r -> r
  | Valid ->
    if !derived_empty then Valid
    else
      Invalid
        { step = length t; clause = Clause.of_list []; reason = "empty clause never derived" }
