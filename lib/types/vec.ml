type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let make n x ~dummy =
  let v = { data = Array.make (max n 1) x; len = n; dummy } in
  v

let length v = v.len
let is_empty v = v.len = 0

let check_bounds v i op =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds [0,%d)" op i v.len)

let get v i =
  check_bounds v i "get";
  Array.unsafe_get v.data i

let set v i x =
  check_bounds v i "set";
  Array.unsafe_set v.data i x

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (2 * cap) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let reserve v n =
  if n > Array.length v.data then begin
    let data = Array.make n v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  if v.len = Array.length v.data then grow v;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = Array.unsafe_get v.data v.len in
  Array.unsafe_set v.data v.len v.dummy;
  x

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  Array.unsafe_get v.data (v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n

let swap_remove v i =
  check_bounds v i "swap_remove";
  v.len <- v.len - 1;
  Array.unsafe_set v.data i (Array.unsafe_get v.data v.len);
  Array.unsafe_set v.data v.len v.dummy

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p (Array.unsafe_get v.data i) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    let x = Array.unsafe_get v.data i in
    if p x then begin
      Array.unsafe_set v.data !j x;
      incr j
    end
  done;
  let new_len = !j in
  Array.fill v.data new_len (v.len - new_len) v.dummy;
  v.len <- new_len

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (Array.unsafe_get v.data i :: acc) in
  loop (v.len - 1) []

let to_array v = Array.sub v.data 0 v.len

let of_array a ~dummy =
  if Array.length a = 0 then create ~dummy ()
  else { data = Array.copy a; len = Array.length a; dummy }

let of_list l ~dummy = of_array (Array.of_list l) ~dummy

let copy v = { data = Array.copy v.data; len = v.len; dummy = v.dummy }
