(** Minimal JSON tree, printer and parser.

    The bench harness, CLI and trace sinks all emit machine-readable
    output; this keeps the repository dependency-free (no yojson).
    Integers and floats are kept distinct so counters survive a
    round-trip exactly; floats print with enough digits to re-read to
    the same double.  Non-finite floats print as [null]. *)

exception Parse_error of string

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Accepts [Int] too (promoted). *)

val to_string_opt : t -> string option

val to_list_opt : t -> t list option
