(** Growable array.

    OCaml 5.1 predates [Dynarray]; solvers need amortised O(1) push and
    random access for watch lists, trails and clause databases, so we
    provide a small polymorphic vector.  A dummy element is supplied at
    creation to fill unused capacity (this avoids [Obj.magic]). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** Fresh empty vector.  [dummy] fills unused slots and is returned by
    no public operation. *)

val make : int -> 'a -> dummy:'a -> 'a t
(** [make n x ~dummy] is a vector of [n] copies of [x]. *)

val of_list : 'a list -> dummy:'a -> 'a t

val of_array : 'a array -> dummy:'a -> 'a t
(** Copies the array. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when out of bounds. *)

val reserve : 'a t -> int -> unit
(** [reserve v n] grows the backing array to hold at least [n] elements
    without changing the length, so the next [n - length v] pushes
    never reallocate.  A no-op when capacity already suffices; bulk
    loaders use it to size watch lists exactly. *)

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)

val last : 'a t -> 'a
(** @raise Invalid_argument on an empty vector. *)

val clear : 'a t -> unit
(** Logical clear; capacity is retained but slots are reset to the dummy
    so stale elements are not kept live. *)

val shrink : 'a t -> int -> unit
(** [shrink v n] truncates [v] to its first [n] elements.
    @raise Invalid_argument if [n] exceeds the current length. *)

val swap_remove : 'a t -> int -> unit
(** Removes index [i] by moving the last element into its slot: O(1),
    order not preserved. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val for_all : ('a -> bool) -> 'a t -> bool

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keeps only elements satisfying the predicate, preserving order. *)

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val copy : 'a t -> 'a t
