exception Parse_error of string

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest decimal rendering that round-trips to the same double;
   non-finite floats have no JSON form and become null. *)
let float_repr f =
  if f <> f || f = Float.infinity || f = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.15g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* Ensure the token stays a JSON number with a fractional part, so
       it parses back as a float rather than an int. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec add_json b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        add_json b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        add_json b v)
      fields;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  add_json b j;
  Buffer.contents b

(* Indented rendering for files meant to be read by humans too. *)
let to_string_pretty j =
  let b = Buffer.create 256 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go indent = function
    | (Null | Bool _ | Int _ | Float _ | String _) as atom -> add_json b atom
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          escape_string b k;
          Buffer.add_string b ": ";
          go (indent + 2) v)
        fields;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'
  in
  go 0 j;
  Buffer.contents b

let pp fmt j = Format.pp_print_string fmt (to_string j)

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent.                                   *)

type parser_state = {
  input : string;
  mutable pos : int;
}

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.input
     && String.sub st.input st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some ('0' .. '9' | '-' | '+') -> advance st
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance st
    | _ -> continue := false
  done;
  let token = String.sub st.input start (st.pos - start) in
  if !is_float then
    match float_of_string_opt token with
    | Some f -> Float f
    | None -> fail st "malformed number"
  else
    match int_of_string_opt token with
    | Some n -> Int n
    | None -> fail st "malformed number"

let parse_string_body st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char b '"'; advance st
      | Some '\\' -> Buffer.add_char b '\\'; advance st
      | Some '/' -> Buffer.add_char b '/'; advance st
      | Some 'n' -> Buffer.add_char b '\n'; advance st
      | Some 'r' -> Buffer.add_char b '\r'; advance st
      | Some 't' -> Buffer.add_char b '\t'; advance st
      | Some 'b' -> Buffer.add_char b '\b'; advance st
      | Some 'f' -> Buffer.add_char b '\012'; advance st
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.input then fail st "truncated \\u";
        let hex = String.sub st.input st.pos 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | None -> fail st "malformed \\u escape"
        | Some code ->
          st.pos <- st.pos + 4;
          (* Encode the code point as UTF-8 (surrogates are kept as-is
             bytes-wise; the emitter never produces them). *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end)
      | _ -> fail st "bad escape");
      loop ()
    | Some c ->
      Buffer.add_char b c;
      advance st;
      loop ()
  in
  loop ();
  Buffer.contents b

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        items := parse_value st :: !items;
        skip_ws st
      done;
      expect st ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        fields := field () :: !fields;
        skip_ws st
      done;
      expect st '}';
      Obj (List.rev !fields)
    end
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string input =
  let st = { input; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length input then fail st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors for consumers of parsed documents.                        *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function
  | String s -> Some s
  | _ -> None

let to_list_opt = function
  | List items -> Some items
  | _ -> None
