(** Miter construction for combinational equivalence checking.

    Given two circuits over the same inputs and output names, the miter
    shares the inputs, XORs corresponding outputs and ORs the
    differences into a single output ["miter"].  The miter's CNF with
    output forced to 1 is satisfiable iff the circuits differ — the
    exact construction behind the paper's Miters benchmark class. *)

open Berkmin_types

val build : Circuit.t -> Circuit.t -> Circuit.t
(** Combined circuit with output ["miter"].
    @raise Invalid_argument if input arities or output name sets
    differ. *)

val build_probed : Circuit.t -> Circuit.t -> Circuit.t * (string * int) list
(** Like {!build}, but also exposes the per-output XOR difference
    nodes: [(name, node)] for each shared output name.  Forcing one
    such node to 1 (e.g. assuming its Tseitin variable) asks "do the
    circuits differ on {e this} output?" — the per-output probes of
    the incremental equivalence-checking flow, where one resident
    solver answers all of them against a single encoded miter. *)

val to_cnf : Circuit.t -> Circuit.t -> Cnf.t
(** CNF satisfiable iff the circuits are inequivalent. *)

type verdict =
  | Equivalent
  | Counterexample of bool array  (** differentiating input vector *)

val check_by_simulation : ?samples:int -> seed:int -> Circuit.t -> Circuit.t -> verdict
(** Random simulation looking for a differentiating input — a cheap
    pre-check used in tests (sound only for [Counterexample]). *)

val interpret_model : Circuit.t -> Tseitin.mapping -> bool array -> bool array
(** Extracts the primary-input vector from a SAT model of a miter CNF. *)
