open Berkmin_types

let build_probed c1 c2 =
  if Circuit.num_inputs c1 <> Circuit.num_inputs c2 then
    invalid_arg "Miter.build: input arity mismatch";
  let names1 = List.map fst (Circuit.outputs c1) in
  let names2 = List.map fst (Circuit.outputs c2) in
  if List.sort compare names1 <> List.sort compare names2 then
    invalid_arg "Miter.build: output name sets differ";
  if names1 = [] then invalid_arg "Miter.build: no outputs";
  let m = Circuit.create () in
  let shared =
    Array.of_list
      (List.map (fun name -> Circuit.input m name) (Circuit.input_names c1))
  in
  let t1 = Circuit.import m c1 ~input_map:shared in
  let t2 = Circuit.import m c2 ~input_map:shared in
  let probes =
    List.map
      (fun name ->
        let o1 = t1.(Circuit.output_exn c1 name) in
        let o2 = t2.(Circuit.output_exn c2 name) in
        (name, Circuit.xor_ m o1 o2))
      names1
  in
  Circuit.set_output m "miter" (Circuit.or_many m (List.map snd probes));
  (m, probes)

let build c1 c2 = fst (build_probed c1 c2)

let to_cnf c1 c2 =
  let m = build c1 c2 in
  Tseitin.encode_with_output m "miter" true

type verdict =
  | Equivalent
  | Counterexample of bool array

let check_by_simulation ?(samples = 256) ~seed c1 c2 =
  let n = Circuit.num_inputs c1 in
  let rng = Rng.create seed in
  let result = ref Equivalent in
  (try
     for _ = 1 to samples do
       let inputs = Array.init n (fun _ -> Rng.bool rng) in
       let o1 = Circuit.eval_outputs c1 inputs in
       let o2 = Circuit.eval_outputs c2 inputs in
       let differs =
         List.exists
           (fun (name, v1) -> List.assoc name o2 <> v1)
           o1
       in
       if differs then begin
         result := Counterexample inputs;
         raise Exit
       end
     done
   with Exit -> ());
  !result

let interpret_model miter mapping model =
  let vars = Tseitin.input_vars miter mapping in
  Array.map (fun v -> model.(v)) vars
