module C = Berkmin_circuit.Circuit
module B = Berkmin_circuit.Bitvec
module M = Berkmin_circuit.Miter
module P = Berkmin_circuit.Pipeline
module R = Berkmin_circuit.Random_circuit
module T = Berkmin_circuit.Tseitin

let adder ~width kind =
  let c = C.create () in
  let a = B.inputs c "a" width and b = B.inputs c "b" width in
  let sum, cout =
    match kind with
    | `Ripple -> B.ripple_carry_add c a b
    | `Carry_select -> B.carry_select_add c a b
  in
  B.set_outputs c "s" sum;
  C.set_output c "cout" cout;
  c

let adder_circuits ~width = (adder ~width `Ripple, adder ~width `Carry_select)

let adder_miter ~width =
  Instance.make
    (Printf.sprintf "add_miter_w%d" width)
    Instance.Expect_unsat
    (M.to_cnf (adder ~width `Ripple) (adder ~width `Carry_select))

let adder_buggy_miter ~width ~seed =
  let good = adder ~width `Ripple in
  Instance.make
    (Printf.sprintf "add_fault_w%d_s%d" width seed)
    Instance.Expect_sat
    (M.to_cnf good (R.inject_fault good ~seed))

let alu ~width =
  let c = C.create () in
  let op = B.inputs c "op" 3 in
  let a = B.inputs c "a" width and b = B.inputs c "b" width in
  B.set_outputs c "r" (B.alu c ~op_sel:op a b);
  c

let alu_miter ~width =
  let left = alu ~width in
  Instance.make
    (Printf.sprintf "alu_miter_w%d" width)
    Instance.Expect_unsat
    (M.to_cnf left (R.restructure left))

let multiplier ~width =
  let c = C.create () in
  let a = B.inputs c "a" width and b = B.inputs c "b" width in
  B.set_outputs c "p" (B.mul_const_width c a b);
  c

let mul_miter ~width =
  let left = multiplier ~width in
  Instance.make
    (Printf.sprintf "mul_miter_w%d" width)
    Instance.Expect_unsat
    (M.to_cnf left (R.restructure left))

let random_miter ~gates ~seed =
  let c =
    R.generate ~num_inputs:(max 8 (gates / 10)) ~num_gates:gates ~num_outputs:4
      ~seed
  in
  Instance.make
    (Printf.sprintf "rc_miter_g%d_s%d" gates seed)
    Instance.Expect_unsat
    (M.to_cnf c (R.restructure c))

let random_buggy_miter ~gates ~seed =
  let c =
    R.generate ~num_inputs:(max 8 (gates / 10)) ~num_gates:gates ~num_outputs:4
      ~seed
  in
  let faulty = R.inject_fault c ~seed:(seed + 1) in
  let expected =
    match M.check_by_simulation ~samples:512 ~seed:(seed + 2) c faulty with
    | M.Counterexample _ -> Instance.Expect_sat
    | M.Equivalent -> Instance.Expect_any
  in
  Instance.make
    (Printf.sprintf "rc_fault_g%d_s%d" gates seed)
    expected
    (M.to_cnf c faulty)

let pipeline_unsat ~stages ~width =
  Instance.make
    (Printf.sprintf "pipe%d_w%d" stages width)
    Instance.Expect_unsat
    (P.unsat_miter { P.stages; num_regs = 4; width })

let pipeline_sat ~stages ~width =
  let expected =
    if stages >= 3 then Instance.Expect_sat else Instance.Expect_any
  in
  Instance.make
    (Printf.sprintf "pipe%d_w%d_bug" stages width)
    expected
    (P.sat_miter { P.stages; num_regs = 4; width })

let miters_suite () =
  [
    adder_miter ~width:8;
    adder_miter ~width:16;
    alu_miter ~width:4;
    mul_miter ~width:4;
    random_miter ~gates:100 ~seed:5;
    random_miter ~gates:200 ~seed:9;
    random_buggy_miter ~gates:150 ~seed:21;
  ]

(* The Figure-1 construction: two copies of [gated-cone XOR other];
   the cones compute the same function of the cone inputs but the
   second copy carries an injected fault, so any differentiating input
   must open the AND gate (control = 1) and drive the cone.  The
   "other" half is an equivalent-but-restructured adder: honest UNSAT
   work whose variables dominate decision-making while the cone is
   closed. *)
let cone_demo_cnf ~cone_gates ~seed =
  let c = C.create () in
  let control = C.input c "g" in
  let n_cone_inputs = max 4 (cone_gates / 8) in
  let xs = B.inputs c "x" n_cone_inputs in
  let cone_start = C.num_nodes c in
  (* Cone copy 1: a random circuit over the cone inputs. *)
  let sub =
    R.generate ~num_inputs:n_cone_inputs ~num_gates:cone_gates ~num_outputs:1
      ~seed
  in
  let t1 = C.import c sub ~input_map:xs in
  let cone1 = t1.(C.output_exn sub "o0") in
  (* Cone copy 2: a De-Morgan restructuring — same function, different
     netlist.  Refuting the cone difference is real work, but only
     reachable while the AND gate is open (control = 1): exactly the
     paper's picture of cone variables switching from idle to active. *)
  let sub_equiv = R.restructure sub in
  let t2 = C.import c sub_equiv ~input_map:xs in
  let cone2 = t2.(C.output_exn sub_equiv "o0") in
  let cone_end = C.num_nodes c in
  let gated1 = C.and_ c control cone1 in
  let gated2 = C.and_ c control cone2 in
  (* Other half: a pipelined-datapath equivalence problem — a hard
     UNSAT sub-miter whose variables dominate decision-making while
     the cone's AND gate stays closed. *)
  let pp = { P.stages = 2; num_regs = 4; width = 3 } in
  let spec = P.specification pp and impl = P.implementation pp in
  let shared =
    Array.of_list
      (List.mapi
         (fun i _ -> C.input c (Printf.sprintf "y%d" i))
         (C.input_names spec))
  in
  let ts = C.import c spec ~input_map:shared in
  let ti = C.import c impl ~input_map:shared in
  let diff_other =
    C.or_many c
      (List.map
         (fun (name, id) ->
           C.xor_ c ts.(id) ti.(C.output_exn impl name))
         (C.outputs spec))
  in
  let diff_cone = C.xor_ c gated1 gated2 in
  C.set_output c "miter" (C.or_ c diff_cone diff_other);
  let m = T.encode c in
  T.assert_output c m "miter" true;
  (* Cone territory: the gate copies plus the cone's private inputs
     (cone-gate values are mostly propagated, so the decisions that
     "work the cone" land on its inputs). *)
  let xs_set = Array.to_list xs in
  let in_cone v =
    (v >= cone_start && v < cone_end) || List.mem v xs_set
  in
  (m.T.cnf, in_cone)
