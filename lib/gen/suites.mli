(** The paper's twelve benchmark classes, regenerated synthetically.

    Sizes are scaled so the whole Table-1-style sweep finishes in
    minutes on one core (the paper's originals took hours on a 450 MHz
    UltraSPARC); see DESIGN.md section 3 for the class-by-class
    substitution table.  Names match Table 1. *)

val hole : unit -> Instance.t list
val blocksworld : unit -> Instance.t list
val par16 : unit -> Instance.t list
val sss10 : unit -> Instance.t list
val sss10a : unit -> Instance.t list
val sss_sat10 : unit -> Instance.t list
val fvp_unsat10 : unit -> Instance.t list
val vliw_sat10 : unit -> Instance.t list
val beijing : unit -> Instance.t list
val hanoi : unit -> Instance.t list
val miters : unit -> Instance.t list
val fvp_unsat20 : unit -> Instance.t list

val all : unit -> (string * Instance.t list) list
(** The twelve classes in Table 1's order. *)

val quick : unit -> (string * Instance.t list) list
(** A cut-down sweep (a few easy classes) for smoke runs. *)

val hard_instances : unit -> Instance.t list
(** The single hard instances used by Tables 3, 8, 9 and 10: one
    representative per hard class, ordered as the paper's
    miter/hanoi/beijing/fvp list. *)

val fuzz_seeds : max_vars:int -> Instance.t list
(** Small structured instances (at most [max_vars] variables) with
    known verdicts — pigeonholes, parity cycles, colorings, queens —
    used as mutation bases by the differential fuzzer ([lib/fuzz]). *)

val find_class : string -> Instance.t list
(** @raise Not_found for an unknown class name. *)
