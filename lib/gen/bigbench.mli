(** Large-instance workload for the time-boxed [bench --full] tier.

    Families sized to stress the arena, watch lists and the streaming
    load path rather than the search heuristics alone:
    bounded-model-checking unrollings of a parameterized sequential
    lock circuit (via {!Berkmin_circuit.Bmc}), larger graph colorings,
    and planted random-3SAT at scale.  Generation is deterministic in
    the [(size, seed)] pair. *)

val bmc_lock_instance :
  combo_len:int -> reachable:bool -> seed:int -> Instance.t
(** BMC unrolling of a digital lock whose [combo_len]-digit
    combination is drawn from [seed].  The OPEN state is reachable in
    exactly [combo_len] steps, so [reachable:true] unrolls one frame
    past it (SAT) and [reachable:false] one frame short (UNSAT).
    @raise Invalid_argument if [combo_len < 2]. *)

val suite : ?size:int -> seed:int -> unit -> Instance.t list
(** The full-tier suite: BMC lock SAT/UNSAT pair, random and clique
    colorings, planted and unknown random-3SAT.  [size] (default 1,
    clamped to [>= 1]) scales every family together. *)
