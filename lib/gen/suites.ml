let hole () = [ Pigeonhole.instance 6 5; Pigeonhole.instance 7 6; Pigeonhole.instance 8 7 ]

let blocksworld () =
  [
    Blocksworld.sat_instance 4;
    Blocksworld.unsat_instance 4;
    Blocksworld.sat_instance 5;
    Blocksworld.unsat_instance 5;
  ]

let par16 () =
  [
    Parity.chain_instance ~num_vars:48 ~extra:24 ~seed:16;
    Parity.chain_instance ~num_vars:64 ~extra:32 ~seed:17;
    Parity.chain_instance ~num_vars:80 ~extra:40 ~seed:18;
  ]

let sss10 () =
  [
    Circuit_bench.pipeline_unsat ~stages:2 ~width:2;
    Circuit_bench.pipeline_unsat ~stages:2 ~width:3;
    Circuit_bench.adder_miter ~width:8;
    Circuit_bench.adder_miter ~width:12;
  ]

let sss10a () =
  [
    Circuit_bench.pipeline_unsat ~stages:2 ~width:4;
    Circuit_bench.alu_miter ~width:4;
  ]

let sss_sat10 () =
  [
    Circuit_bench.pipeline_sat ~stages:3 ~width:2;
    Circuit_bench.pipeline_sat ~stages:3 ~width:3;
    Circuit_bench.adder_buggy_miter ~width:12 ~seed:4;
    Circuit_bench.random_buggy_miter ~gates:150 ~seed:8;
  ]

let fvp_unsat10 () = [ Circuit_bench.pipeline_unsat ~stages:3 ~width:2 ]

let vliw_sat10 () =
  [
    Circuit_bench.pipeline_sat ~stages:4 ~width:3;
    Circuit_bench.pipeline_sat ~stages:4 ~width:4;
  ]

let beijing () =
  [
    Circuit_bench.adder_miter ~width:10;
    Parity.chain_instance ~num_vars:60 ~extra:30 ~seed:2;
    Instance.make "parity_cycle40" Instance.Expect_unsat
      (Parity.inconsistent_cycle ~num_vars:40);
    Graph_coloring.clique_instance 7 ~colors:7;
    Graph_coloring.clique_instance 7 ~colors:6;
    Blocksworld.sat_instance 4;
    Random_ksat.planted_instance ~num_vars:120 ~ratio:4.0 ~seed:31;
    (* The class's "easy CNF that trips some solvers" role: planted
       3-SAT near the threshold — seconds for the baselines, instant
       for BerkMin. *)
    Random_ksat.planted_instance ~num_vars:300 ~ratio:4.2 ~seed:77;
  ]

let hanoi () =
  [
    Hanoi.sat_instance 3;
    Hanoi.unsat_instance 3;
    Hanoi.sat_instance 4;
    Hanoi.sat_instance 5;
  ]

let miters () =
  Circuit_bench.miters_suite ()
  @ [
      Circuit_bench.mul_miter ~width:5;
      Circuit_bench.random_miter ~gates:400 ~seed:11;
    ]

let fvp_unsat20 () =
  [
    Circuit_bench.pipeline_unsat ~stages:3 ~width:3;
    Circuit_bench.pipeline_unsat ~stages:2 ~width:5;
    Parity.tseitin_instance ~num_vars:14 ~degree:3 ~seed:12;
  ]

let all () =
  [
    "Hole", hole ();
    "Blocksworld", blocksworld ();
    "Par16", par16 ();
    "Sss1.0", sss10 ();
    "Sss1.0a", sss10a ();
    "Sss_sat1.0", sss_sat10 ();
    "Fvp_unsat1.0", fvp_unsat10 ();
    "Vliw_sat1.0", vliw_sat10 ();
    "Beijing", beijing ();
    "Hanoi", hanoi ();
    "Miters", miters ();
    "Fvp_unsat2.0", fvp_unsat20 ();
  ]

let quick () =
  [
    "Hole", [ Pigeonhole.instance 6 5; Pigeonhole.instance 7 6 ];
    "Par16", [ Parity.chain_instance ~num_vars:48 ~extra:24 ~seed:16 ];
    "Blocksworld", [ Blocksworld.sat_instance 4 ];
    "Miters", [ Circuit_bench.adder_miter ~width:8 ];
  ]

let hard_instances () =
  [
    Circuit_bench.random_miter ~gates:400 ~seed:11;  (* miter70_60_5 role *)
    Hanoi.sat_instance 5;  (* hanoi6 role *)
    Random_ksat.planted_instance ~num_vars:300 ~ratio:4.2 ~seed:77;
    (* 2bitadd_10 role: easy-looking SAT instance some solvers choke on *)
    Circuit_bench.pipeline_unsat ~stages:3 ~width:3;  (* 7pipe role *)
    Circuit_bench.pipeline_unsat ~stages:3 ~width:2;  (* 9vliw role *)
  ]

let fuzz_seeds ~max_vars =
  let candidates =
    [
      Pigeonhole.instance 4 3;
      Pigeonhole.instance 5 4;
      Pigeonhole.instance 6 5;
      Instance.make "cycle7" Instance.Expect_unsat
        (Parity.inconsistent_cycle ~num_vars:7);
      Instance.make "cycle11" Instance.Expect_unsat
        (Parity.inconsistent_cycle ~num_vars:11);
      Graph_coloring.clique_instance 4 ~colors:3;
      Graph_coloring.cycle_instance 5 ~colors:2;
      Graph_coloring.cycle_instance 6 ~colors:2;
      Puzzles.queens_instance 5;
      Parity.chain_instance ~num_vars:12 ~extra:6 ~seed:3;
      Parity.tseitin_instance ~num_vars:8 ~degree:3 ~seed:5;
    ]
  in
  List.filter
    (fun i -> Berkmin_types.Cnf.num_vars i.Instance.cnf <= max_vars)
    candidates

let find_class name =
  match List.assoc_opt name (all ()) with
  | Some instances -> instances
  | None -> raise Not_found
