(** Circuit-derived benchmark instances: the Miters class and the
    microprocessor-verification classes (Sss/Fvp/Vliw stand-ins).

    See DESIGN.md section 3 for the substitution rationale. *)

open Berkmin_types

val adder_miter : width:int -> Instance.t
(** Ripple-carry vs carry-select adder equivalence: UNSAT. *)

val adder_circuits :
  width:int -> Berkmin_circuit.Circuit.t * Berkmin_circuit.Circuit.t
(** The (ripple-carry, carry-select) adder pair behind {!adder_miter},
    as circuits rather than a finished CNF — the incremental
    equivalence-checking workload miters them itself and probes the
    result output by output. *)

val adder_buggy_miter : width:int -> seed:int -> Instance.t
(** Ripple-carry adder vs a fault-injected copy: SAT. *)

val alu_miter : width:int -> Instance.t
(** ALU built from ripple adders vs one from carry-select: UNSAT. *)

val mul_miter : width:int -> Instance.t
(** Shift-and-add multiplier vs its restructured form: UNSAT.
    Multiplier miters get hard very fast — width 4–5 is plenty. *)

val random_miter : gates:int -> seed:int -> Instance.t
(** Random circuit vs its De-Morgan restructuring: UNSAT. *)

val random_buggy_miter : gates:int -> seed:int -> Instance.t
(** Random circuit vs a fault-injected copy.  Usually SAT but the
    fault can be untestable, so the instance is checked by random
    simulation first and the expectation set accordingly (simulation
    finding a difference proves SAT; otherwise the verdict is left
    open). *)

val pipeline_unsat : stages:int -> width:int -> Instance.t
(** Correct forwarding network vs sequential spec: UNSAT. *)

val pipeline_sat : stages:int -> width:int -> Instance.t
(** Inverted forwarding priority vs spec: SAT for [stages >= 3]. *)

val miters_suite : unit -> Instance.t list
(** The paper's Miters class, scaled to minutes of total runtime. *)

val cone_demo_cnf : cone_gates:int -> seed:int -> Cnf.t * (int -> bool)
(** The Figure-1 construction: an UNSAT miter of [gated-cone XOR
    pipeline-datapath], both halves equivalent-but-restructured.  The
    cone's variables can only participate in conflicts while its AND
    gate is open (control input = 1), so the fraction of decisions
    landing in the cone over time shows how quickly a heuristic
    migrates when the cone switches from idle to active.  Returns the
    CNF and a predicate telling whether a CNF variable belongs to the
    cone (gate copies plus the cone's private inputs). *)
