(* Large-instance workload for the time-boxed [bench --full] tier.

   Everything the smoke tier measures is tiny (pigeonhole, small
   random-3SAT); these generators produce formulas that actually
   stress the arena, the watch lists and the streaming load path:
   bounded-model-checking unrollings of a sequential circuit (the
   industrial shape the paper targets), larger graph colorings, and
   planted random-3SAT at scale.  The [size] knob scales every family
   together; generation is deterministic in [(size, seed)]. *)

module C = Berkmin_circuit.Circuit
module B = Berkmin_circuit.Bitvec
module Cseq = Berkmin_circuit.Seq
module Bmc = Berkmin_circuit.Bmc

(* A digital lock generalizing examples/bmc_lock.ml: a state register
   counts how many correct digits of an [n]-digit combination have
   been entered in a row (wrong digit resets, open state absorbs).
   The OPEN state needs exactly [n] steps to reach, which pins the
   BMC verdict on either side of the bound. *)
let lock_circuit ~combination =
  let n = List.length combination in
  let width =
    let rec go w = if 1 lsl w > n then w else go (w + 1) in
    go 1
  in
  let c = C.create () in
  let s = Cseq.create c in
  let digit = B.inputs c "digit" 3 in
  let regs =
    List.init width (fun i ->
        Cseq.add_register s ~name:(Printf.sprintf "st%d" i) ~init:false)
  in
  let state =
    Array.of_list (List.map (fun r -> r.Cseq.state_input) regs)
  in
  let state_is k = B.equal_bv c state (B.const_int c ~width k) in
  let digit_is k = B.equal_bv c digit (B.const_int c ~width:3 k) in
  let next_val =
    let zero = B.const_int c ~width 0 in
    let step acc (idx, expected) =
      let advance = C.and_ c (state_is idx) (digit_is expected) in
      B.mux_bv c ~sel:advance
        ~if_true:(B.const_int c ~width (idx + 1))
        ~if_false:acc
    in
    let base =
      B.mux_bv c ~sel:(state_is n)
        ~if_true:(B.const_int c ~width n)
        ~if_false:zero
    in
    List.fold_left step base (List.mapi (fun i d -> (i, d)) combination)
  in
  List.iteri (fun i r -> Cseq.connect s r ~next:next_val.(i)) regs;
  C.set_output c "open" (state_is n);
  s

let bmc_lock_instance ~combo_len ~reachable ~seed =
  if combo_len < 2 then invalid_arg "Bigbench.bmc_lock_instance: combo_len < 2";
  let rng = Random.State.make [| 0xb16b; seed; combo_len |] in
  let combination = List.init combo_len (fun _ -> Random.State.int rng 8) in
  let s = lock_circuit ~combination in
  (* Opening takes exactly [combo_len] steps, so a bound one past it is
     SAT and one short of it is UNSAT — with a frame to spare on each
     side against any inclusive/exclusive bound convention. *)
  let bound = if reachable then combo_len + 1 else combo_len - 1 in
  let cnf = Bmc.encode s ~bad:"open" ~bound in
  Instance.make
    (Printf.sprintf "bmc_lock_L%d_%s" combo_len
       (if reachable then "sat" else "unsat"))
    (if reachable then Instance.Expect_sat else Instance.Expect_unsat)
    cnf

let suite ?(size = 1) ~seed () =
  let size = max 1 size in
  let combo_len = (4 * size) + 4 in
  let clique_n = 5 + (2 * size) in
  [
    bmc_lock_instance ~combo_len ~reachable:true ~seed;
    bmc_lock_instance ~combo_len ~reachable:false ~seed:(seed + 1);
    Graph_coloring.random_instance ~vertices:(60 * size) ~edge_prob:0.08
      ~colors:5 ~seed;
    (* n-clique needs n colors: one short is UNSAT at scale *)
    Graph_coloring.clique_instance clique_n ~colors:(clique_n - 1);
    (* The arena-stress row: big in clauses, deliberately below the
       hardness ridge (~4.27, and the planted construction guarantees
       SAT at any ratio) — the tier measures the load path and the
       watch lists at scale, not a search cliff. *)
    Random_ksat.planted_instance ~num_vars:(6000 * size) ~ratio:3.0 ~seed;
    Random_ksat.instance ~num_vars:(150 + (25 * size)) ~ratio:4.26
      ~seed:(seed + 2);
  ]
