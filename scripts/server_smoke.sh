#!/usr/bin/env bash
# CI server-smoke gate: boot the daemon, drive a scripted multi-client
# JSONL session through berkmin-serverctl, and diff the normalized
# transcript against the committed golden.
#
#   scripts/server_smoke.sh [--update]
#
# --update regenerates the golden transcript (run locally after a
# deliberate protocol change, then commit the diff).
#
# The gate asserts, in order:
#   1. the transcript matches scripts/server_smoke/golden.jsonl
#      (verdicts, cores, error semantics, session lifecycle);
#   2. the per-request trace the daemon wrote contains one
#      server_request event per scripted request, with conflict and
#      latency fields;
#   3. the daemon exited by itself on the scripted shutdown — no
#      orphan process, no stale socket file.
#
# On failure the trace is left in $SMOKE_DIR for CI to upload.
set -euo pipefail

cd "$(dirname "$0")/.."

UPDATE=0
[ "${1:-}" = "--update" ] && UPDATE=1

SMOKE_DIR="${SMOKE_DIR:-_build/server_smoke}"
SOCKET="$SMOKE_DIR/daemon.sock"
TRACE="$SMOKE_DIR/trace.jsonl"
TRANSCRIPT="$SMOKE_DIR/transcript.jsonl"
GOLDEN="scripts/server_smoke/golden.jsonl"
SCRIPT="scripts/server_smoke/session.jsonl"

rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"

dune build bin/serverd.exe bin/serverctl.exe

dune exec --no-build bin/serverd.exe -- --socket "$SOCKET" --trace "$TRACE" &
DAEMON=$!

cleanup() {
  if kill -0 "$DAEMON" 2>/dev/null; then
    kill "$DAEMON" 2>/dev/null || true
    wait "$DAEMON" 2>/dev/null || true
  fi
}
trap cleanup EXIT

# Wait for the socket to appear (the daemon binds before serving).
for _ in $(seq 1 100); do
  [ -S "$SOCKET" ] && break
  sleep 0.05
done
if [ ! -S "$SOCKET" ]; then
  echo "server_smoke: daemon never bound $SOCKET" >&2
  exit 1
fi

dune exec --no-build bin/serverctl.exe -- \
  --socket "$SOCKET" --golden "$SCRIPT" > "$TRANSCRIPT"

if [ "$UPDATE" = 1 ]; then
  cp "$TRANSCRIPT" "$GOLDEN"
  echo "server_smoke: golden transcript updated ($GOLDEN)"
fi

if ! diff -u "$GOLDEN" "$TRANSCRIPT"; then
  echo "server_smoke: transcript drifted from $GOLDEN" >&2
  echo "server_smoke: regenerate deliberately with scripts/server_smoke.sh --update" >&2
  exit 1
fi

# One server_request trace event per scripted request, each carrying
# per-request metrics.
REQUESTS=$(grep -cv -e '^[[:space:]]*#' -e '^[[:space:]]*$' "$SCRIPT")
EVENTS=$(grep -c '"event":"server_request"' "$TRACE")
if [ "$EVENTS" -ne "$REQUESTS" ]; then
  echo "server_smoke: expected $REQUESTS server_request trace events, got $EVENTS" >&2
  exit 1
fi
for field in latency_ms conflicts propagations; do
  WITH=$(grep -c "\"$field\"" "$TRACE")
  if [ "$WITH" -ne "$REQUESTS" ]; then
    echo "server_smoke: only $WITH/$REQUESTS trace events carry $field" >&2
    exit 1
  fi
done

# The scripted shutdown must terminate the daemon (no orphan) and
# unlink the socket.
for _ in $(seq 1 100); do
  kill -0 "$DAEMON" 2>/dev/null || break
  sleep 0.05
done
if kill -0 "$DAEMON" 2>/dev/null; then
  echo "server_smoke: daemon still running after scripted shutdown" >&2
  exit 1
fi
wait "$DAEMON" 2>/dev/null || true
if [ -e "$SOCKET" ]; then
  echo "server_smoke: socket file survived shutdown" >&2
  exit 1
fi

echo "server_smoke: OK ($REQUESTS requests, 4 clients, transcript matches golden)"
