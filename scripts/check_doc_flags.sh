#!/usr/bin/env bash
# Doc drift audit: every long flag (--foo-bar) mentioned in README.md
# or docs/*.md must be accepted by at least one of the project's
# executables, per its --help.  Catches docs that keep describing
# flags after a rename or removal.  Advisory in CI (continue-on-error)
# but exits non-zero on drift so it can be run as a local gate too.
#
#   scripts/check_doc_flags.sh
#
# Flags that are legitimately documented but not ours (e.g. flags of
# external tools quoted in prose) go in the ALLOW list below.

set -euo pipefail
cd "$(dirname "$0")/.."

EXES=(bin/berkmin_cli.exe bin/fuzz.exe bin/genbench.exe bin/ec.exe
      bin/serverd.exe bin/serverctl.exe bench/main.exe)

# Flags documented on purpose that no executable owns: generic
# placeholders used in prose, plus external tools' flags quoted in
# commands (dune's --auto-promote in the formatting recipe).
ALLOW='^--(flag|help|version|auto-promote)$'

dune build "${EXES[@]}" 2>/dev/null

help_flags=$(
  for exe in "${EXES[@]}"; do
    dune exec "$exe" -- --help=plain 2>/dev/null || true
  done | grep -oE '(^|[^-[:alnum:]])--[a-z][a-z0-9-]+' | grep -oE -- '--[a-z][a-z0-9-]+' | sort -u
)

doc_flags=$(
  grep -hoE -- '--[a-z][a-z0-9-]+' README.md docs/*.md | sort -u
)

missing=0
while IFS= read -r flag; do
  [[ "$flag" =~ $ALLOW ]] && continue
  if ! grep -qxF -- "$flag" <<<"$help_flags"; then
    echo "documented but unknown to every --help: $flag" >&2
    echo "  mentioned in:" >&2
    grep -lF -- "$flag" README.md docs/*.md | sed 's/^/    /' >&2
    missing=1
  fi
done <<<"$doc_flags"

if [[ $missing -eq 0 ]]; then
  count=$(wc -l <<<"$doc_flags")
  echo "doc flag audit: all $count documented flags resolve against --help"
else
  exit 1
fi
