#!/usr/bin/env bash
# Doc drift audit, blocking in CI, two directions:
#
#   docs -> help: every long flag (--foo-bar) mentioned in README.md
#   or docs/*.md must be accepted by at least one of the project's
#   executables, per its --help.  Catches docs that keep describing
#   flags after a rename or removal.
#
#   help -> docs: every flag berkmin-serverd advertises in its own
#   --help must appear somewhere in the docs.  The daemon's surface is
#   small and operator-facing, so an undocumented daemon flag is doc
#   debt, not noise (the larger executables are exempt: bench/fuzz
#   grow internal knobs faster than prose should track).
#
#   scripts/check_doc_flags.sh
#
# Flags that are legitimately documented but not ours (e.g. flags of
# external tools quoted in prose) go in the ALLOW list below.

set -euo pipefail
cd "$(dirname "$0")/.."

EXES=(bin/berkmin_cli.exe bin/fuzz.exe bin/genbench.exe bin/ec.exe
      bin/serverd.exe bin/serverctl.exe bench/main.exe)

# Flags documented on purpose that no executable owns: generic
# placeholders used in prose, plus external tools' flags quoted in
# commands (dune's --auto-promote in the formatting recipe).
ALLOW='^--(flag|help|version|auto-promote)$'

dune build "${EXES[@]}" 2>/dev/null

help_flags=$(
  for exe in "${EXES[@]}"; do
    dune exec "$exe" -- --help=plain 2>/dev/null || true
  done | grep -oE '(^|[^-[:alnum:]])--[a-z][a-z0-9-]+' | grep -oE -- '--[a-z][a-z0-9-]+' | sort -u
)

doc_flags=$(
  grep -hoE -- '--[a-z][a-z0-9-]+' README.md docs/*.md | sort -u
)

missing=0
while IFS= read -r flag; do
  [[ "$flag" =~ $ALLOW ]] && continue
  if ! grep -qxF -- "$flag" <<<"$help_flags"; then
    echo "documented but unknown to every --help: $flag" >&2
    echo "  mentioned in:" >&2
    grep -lF -- "$flag" README.md docs/*.md | sed 's/^/    /' >&2
    missing=1
  fi
done <<<"$doc_flags"

# Reverse direction: the daemon's advertised flags must be documented.
serverd_flags=$(
  dune exec bin/serverd.exe -- --help=plain 2>/dev/null \
    | grep -oE '(^|[^-[:alnum:]])--[a-z][a-z0-9-]+' \
    | grep -oE -- '--[a-z][a-z0-9-]+' | sort -u
)

undocumented=0
while IFS= read -r flag; do
  [[ "$flag" =~ $ALLOW ]] && continue
  if ! grep -qxF -- "$flag" <<<"$doc_flags"; then
    echo "berkmin-serverd --help advertises $flag but no doc mentions it" >&2
    undocumented=1
  fi
done <<<"$serverd_flags"

if [[ $missing -eq 0 && $undocumented -eq 0 ]]; then
  count=$(wc -l <<<"$doc_flags")
  serverd_count=$(wc -l <<<"$serverd_flags")
  echo "doc flag audit: all $count documented flags resolve against --help;" \
       "all $serverd_count serverd flags documented"
else
  exit 1
fi
