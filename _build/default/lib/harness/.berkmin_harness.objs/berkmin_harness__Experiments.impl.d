lib/harness/experiments.ml: Array Berkmin Berkmin_gen Circuit_bench Hanoi Instance List Parity Pigeonhole Printf Runner String Suites Table
