lib/harness/table.mli:
