lib/harness/runner.ml: Array Berkmin Berkmin_gen Berkmin_types Cnf Instance List Sys
