lib/harness/runner.mli: Berkmin Berkmin_gen Instance
