lib/harness/experiments.mli: Berkmin
