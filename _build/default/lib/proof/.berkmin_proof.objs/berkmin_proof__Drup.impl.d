lib/proof/drup.ml: Array Berkmin_types Buffer Clause Cnf Fun Hashtbl List Lit Option Printf String Value Vec
