lib/proof/drup.mli: Berkmin_types Clause Cnf
