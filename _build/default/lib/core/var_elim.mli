(** Bounded variable elimination (NiVER / SATeLite style).

    A variable [v] is eliminated by replacing the clauses containing it
    with all non-tautological resolvents on [v], accepted only when
    that does not grow the clause count beyond a bound.  The result is
    equisatisfiable, not equivalent: a model of the simplified formula
    is extended to the eliminated variables by {!reconstruct}, walking
    the elimination stack backwards (each variable is set so that its
    original clauses are satisfied — resolution completeness guarantees
    one of the two values works). *)

open Berkmin_types

type t
(** Elimination record: the simplified formula plus the reconstruction
    stack. *)

val run : ?max_growth:int -> ?max_occurrences:int -> Cnf.t -> t
(** [max_growth] (default 0) bounds the allowed increase in clause
    count per elimination; [max_occurrences] (default 10) skips
    variables occurring more often than this (resolvent sets grow
    quadratically).  Tautologies are dropped on the way in. *)

val cnf : t -> Cnf.t
(** The simplified formula (same variable space; eliminated variables
    simply no longer occur). *)

val num_eliminated : t -> int

val eliminated_vars : t -> int list
(** In elimination order. *)

val reconstruct : t -> bool array -> bool array
(** Extends a model of {!cnf} to a model of the original formula
    (fresh array).  The input array must cover the variable space. *)
