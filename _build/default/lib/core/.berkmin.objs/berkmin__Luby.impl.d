lib/core/luby.ml:
