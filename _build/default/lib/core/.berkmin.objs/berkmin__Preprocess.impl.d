lib/core/preprocess.ml: Array Berkmin_types Clause Cnf List Lit Value
