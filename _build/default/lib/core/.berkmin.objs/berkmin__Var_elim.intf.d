lib/core/var_elim.mli: Berkmin_types Cnf
