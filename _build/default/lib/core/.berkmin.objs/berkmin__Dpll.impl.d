lib/core/dpll.ml: Array Berkmin_types Clause Cnf List Lit Value
