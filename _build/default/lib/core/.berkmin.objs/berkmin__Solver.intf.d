lib/core/solver.mli: Berkmin_proof Berkmin_types Cnf Config Format Lit Stats Value
