lib/core/var_heap.mli:
