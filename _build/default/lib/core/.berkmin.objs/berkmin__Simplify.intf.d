lib/core/simplify.mli: Berkmin_types Cnf
