lib/core/simplify.ml: Array Berkmin_types Clause Cnf List Lit Set
