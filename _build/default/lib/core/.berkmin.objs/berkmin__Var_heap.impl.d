lib/core/var_heap.ml: Array
