lib/core/solver.ml: Array Berkmin_proof Berkmin_types Clause Cnf Config Format List Lit Luby Option Rng Stats Sys Value Var_heap Vec
