lib/core/preprocess.mli: Berkmin_types Cnf
