lib/core/var_elim.ml: Array Berkmin_types Clause Cnf List Lit Value
