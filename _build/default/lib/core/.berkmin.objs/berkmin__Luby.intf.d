lib/core/luby.mli:
