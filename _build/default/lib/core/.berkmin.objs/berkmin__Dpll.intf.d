lib/core/dpll.mli: Berkmin_types Cnf
