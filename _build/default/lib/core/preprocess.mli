(** Cheap CNF preprocessing: top-level unit propagation and pure-literal
    elimination, iterated to fixpoint.

    Returns a simplified formula over the same variable space plus the
    forced assignments, so a model of the simplified formula extends to
    a model of the original.  This mirrors the standard front end of
    2000s-era solvers and gives the bench harness an optional knob. *)

open Berkmin_types

type outcome =
  | Simplified of {
      cnf : Cnf.t;  (** same variable numbering as the input *)
      forced : (int * bool) list;
          (** assignments implied by units or chosen for pure literals *)
    }
  | Unsat_detected

val run : Cnf.t -> outcome

val extend_model : forced:(int * bool) list -> bool array -> bool array
(** Patches the forced assignments into a model of the simplified
    formula (a fresh array is returned). *)
