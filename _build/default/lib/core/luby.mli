(** The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    Used by the [limmat_like] baseline and available as an engine
    option; BerkMin itself restarts at a fixed interval. *)

val term : int -> int
(** [term i] is the [i]-th element of the Luby sequence, 1-based.
    @raise Invalid_argument for [i < 1]. *)

val interval : unit:int -> int -> int
(** [interval ~unit i] is [unit * term i]: the conflict budget of the
    [i]-th restart epoch. *)
