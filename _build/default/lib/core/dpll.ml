open Berkmin_types

type result =
  | Sat of bool array
  | Unsat
  | Unknown

exception Out_of_budget

let solve ?max_nodes cnf =
  let nvars = Cnf.num_vars cnf in
  let clauses = Array.of_list (Cnf.clauses cnf) in
  let assigns = Array.make (max nvars 1) Value.Unassigned in
  let nodes = ref 0 in
  let budget_check () =
    match max_nodes with
    | Some m ->
      incr nodes;
      if !nodes > m then raise Out_of_budget
    | None -> ()
  in
  let valuation v = assigns.(v) in
  (* Unit propagation to fixpoint; returns the literals assigned here
     (for undo) or [None] on conflict. *)
  let propagate () =
    let assigned_here = ref [] in
    let conflict = ref false in
    let changed = ref true in
    while !changed && not !conflict do
      changed := false;
      Array.iter
        (fun c ->
          if not !conflict then
            match Clause.eval valuation c with
            | Value.True -> ()
            | Value.False -> conflict := true
            | Value.Unassigned ->
              let free = ref [] in
              Clause.iter
                (fun l ->
                  if not (Value.is_assigned assigns.(Lit.var l)) then
                    free := l :: !free)
                c;
              (match !free with
              | [ l ] ->
                assigns.(Lit.var l) <-
                  (if Lit.is_pos l then Value.True else Value.False);
                assigned_here := Lit.var l :: !assigned_here;
                changed := true
              | _ -> ()))
        clauses
    done;
    if !conflict then begin
      List.iter (fun v -> assigns.(v) <- Value.Unassigned) !assigned_here;
      None
    end
    else Some !assigned_here
  in
  let undo vars = List.iter (fun v -> assigns.(v) <- Value.Unassigned) vars in
  let first_free () =
    let rec loop v =
      if v >= nvars then None
      else if Value.is_assigned assigns.(v) then loop (v + 1)
      else Some v
    in
    loop 0
  in
  let rec search () =
    budget_check ();
    match propagate () with
    | None -> false
    | Some assigned -> (
      match first_free () with
      | None -> true (* all vars assigned, no conflict: model found *)
      | Some v ->
        let try_value b =
          assigns.(v) <- Value.of_bool b;
          let sat = search () in
          if not sat then assigns.(v) <- Value.Unassigned;
          sat
        in
        if try_value false || try_value true then true
        else begin
          undo assigned;
          false
        end)
  in
  if Cnf.has_empty_clause cnf then Unsat
  else
    match search () with
    | true ->
      let model =
        Array.init nvars (fun v ->
            match assigns.(v) with
            | Value.True -> true
            | Value.False | Value.Unassigned -> false)
      in
      Sat model
    | false -> Unsat
    | exception Out_of_budget -> Unknown
