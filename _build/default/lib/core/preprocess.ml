open Berkmin_types

type outcome =
  | Simplified of {
      cnf : Cnf.t;
      forced : (int * bool) list;
    }
  | Unsat_detected

exception Conflict

let run cnf =
  let nvars = Cnf.num_vars cnf in
  let assigns = Array.make (max nvars 1) Value.Unassigned in
  let forced = ref [] in
  let assign l =
    let v = Lit.var l in
    let value = if Lit.is_pos l then Value.True else Value.False in
    match assigns.(v) with
    | Value.Unassigned ->
      assigns.(v) <- value;
      forced := (v, Lit.is_pos l) :: !forced
    | existing -> if not (Value.equal existing value) then raise Conflict
  in
  let valuation v = assigns.(v) in
  (* One pass of the current clause list: propagate units, then find
     pure literals among what remains.  Repeats until stable. *)
  let simplify clauses =
    let changed = ref true in
    let clauses = ref clauses in
    while !changed do
      changed := false;
      (* Unit propagation. *)
      let rec propagate () =
        let fired = ref false in
        List.iter
          (fun c ->
            match Clause.eval valuation c with
            | Value.True -> ()
            | Value.False -> raise Conflict
            | Value.Unassigned ->
              let free =
                Clause.fold
                  (fun acc l ->
                    if Value.is_assigned assigns.(Lit.var l) then acc
                    else l :: acc)
                  [] c
              in
              (match free with
              | [ l ] ->
                assign l;
                fired := true
              | _ -> ()))
          !clauses;
        if !fired then begin
          changed := true;
          propagate ()
        end
      in
      propagate ();
      (* Drop satisfied clauses before the purity scan. *)
      clauses :=
        List.filter
          (fun c -> not (Value.equal (Clause.eval valuation c) Value.True))
          !clauses;
      (* Pure literals: variables appearing (free) in only one phase. *)
      let occurs_pos = Array.make (max nvars 1) false in
      let occurs_neg = Array.make (max nvars 1) false in
      List.iter
        (fun c ->
          Clause.iter
            (fun l ->
              if not (Value.is_assigned assigns.(Lit.var l)) then
                if Lit.is_pos l then occurs_pos.(Lit.var l) <- true
                else occurs_neg.(Lit.var l) <- true)
            c)
        !clauses;
      for v = 0 to nvars - 1 do
        if not (Value.is_assigned assigns.(v)) then
          if occurs_pos.(v) && not occurs_neg.(v) then begin
            assign (Lit.pos v);
            changed := true
          end
          else if occurs_neg.(v) && not occurs_pos.(v) then begin
            assign (Lit.neg_of v);
            changed := true
          end
      done;
      clauses :=
        List.filter
          (fun c -> not (Value.equal (Clause.eval valuation c) Value.True))
          !clauses
    done;
    !clauses
  in
  match
    simplify
      (List.filter (fun c -> not (Clause.is_tautology c)) (Cnf.clauses cnf))
  with
  | exception Conflict -> Unsat_detected
  | remaining ->
    let out = Cnf.create ~num_vars:nvars () in
    List.iter
      (fun c ->
        (* Strip falsified literals; remaining clauses have >= 2 free
           literals (units were propagated). *)
        let lits =
          Clause.fold
            (fun acc l ->
              if Value.is_assigned assigns.(Lit.var l) then acc else l :: acc)
            [] c
        in
        Cnf.add_clause out lits)
      remaining;
    Simplified { cnf = out; forced = !forced }

let extend_model ~forced model =
  let m = Array.copy model in
  List.iter (fun (v, b) -> m.(v) <- b) forced;
  m
