(** Clause-level simplification: subsumption elimination and
    self-subsuming resolution (strengthening).

    A 2000s-era preprocessing pass (SATeLite-style, without variable
    elimination): drop every clause subsumed by another, and when
    clauses [x ∨ A] and [¬x ∨ B] with [A ⊆ B] coexist, strengthen the
    second to [B].  Both rewrites preserve logical equivalence, not
    merely satisfiability, so models transfer unchanged in both
    directions. *)

open Berkmin_types

type report = {
  cnf : Cnf.t;  (** simplified formula, same variable space *)
  subsumed : int;  (** clauses removed *)
  strengthened : int;  (** literal removals by self-subsumption *)
  rounds : int;
}

val run : ?max_rounds:int -> Cnf.t -> report
(** Iterates both rules to fixpoint or [max_rounds] (default 10).
    Tautologies and duplicate clauses are removed on the way in. *)
