open Berkmin_types

type report = {
  cnf : Cnf.t;
  subsumed : int;
  strengthened : int;
  rounds : int;
}

(* 63-bit variable signature: [c] can only subsume [d] when
   [sig c land lnot (sig d) = 0].  Cheap rejection for the quadratic
   subsumption scan. *)
let signature c =
  Clause.fold (fun acc l -> acc lor (1 lsl (Lit.var l mod 63))) 0 c

let strengthen_on c d =
  (* If c = x ∨ A and d = ¬x ∨ B with A ⊆ B, return d minus ¬x. *)
  let candidate = ref None in
  (try
     Clause.iter
       (fun l ->
         if Clause.mem (Lit.negate l) d then begin
           match !candidate with
           | None -> candidate := Some l
           | Some _ ->
             (* Two clashing variables: the resolvent is a tautology
                and cannot strengthen. *)
             candidate := None;
             raise Exit
         end
         else if not (Clause.mem l d) then begin
           candidate := None;
           raise Exit
         end)
       c
   with Exit -> ());
  match !candidate with
  | None -> None
  | Some x ->
    let without =
      Clause.of_list
        (List.filter (fun l -> l <> Lit.negate x) (Clause.to_list d))
    in
    Some without

let run ?(max_rounds = 10) cnf =
  (* Working set: deduplicated, tautology-free clauses. *)
  let module CS = Set.Make (struct
    type t = Clause.t

    let compare = Clause.compare
  end) in
  let initial =
    List.filter (fun c -> not (Clause.is_tautology c)) (Cnf.clauses cnf)
  in
  let clauses = ref (Array.of_list (CS.elements (CS.of_list initial))) in
  let subsumed = ref 0 in
  let strengthened = ref 0 in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < max_rounds do
    incr rounds;
    changed := false;
    let cs = !clauses in
    let n = Array.length cs in
    let sigs = Array.map signature cs in
    let dead = Array.make n false in
    (* Subsumption: shorter clauses are more likely subsumers, so
       order by length. *)
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare (Clause.length cs.(a)) (Clause.length cs.(b))) order;
    Array.iter
      (fun i ->
        if not dead.(i) then
          for j = 0 to n - 1 do
            if j <> i && not dead.(j)
               && sigs.(i) land lnot sigs.(j) = 0
               && Clause.length cs.(i) <= Clause.length cs.(j)
               && Clause.subsumes cs.(i) cs.(j)
            then begin
              dead.(j) <- true;
              incr subsumed;
              changed := true
            end
          done)
      order;
    (* Self-subsuming resolution on the survivors. *)
    let live =
      Array.of_list
        (List.filteri (fun i _ -> not dead.(i)) (Array.to_list cs))
    in
    let n = Array.length live in
    let sigs = Array.map signature live in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j
           (* c's variables must all occur in d for A ⊆ B to hold. *)
           && sigs.(i) land lnot sigs.(j) = 0
           && Clause.length live.(i) <= Clause.length live.(j)
        then
          match strengthen_on live.(i) live.(j) with
          | Some shorter when not (Clause.equal shorter live.(j)) ->
            live.(j) <- shorter;
            sigs.(j) <- signature shorter;
            incr strengthened;
            changed := true
          | Some _ | None -> ()
      done
    done;
    clauses := Array.of_list (CS.elements (CS.of_list (Array.to_list live)))
  done;
  let out = Cnf.create ~num_vars:(Cnf.num_vars cnf) () in
  Array.iter (fun c -> Cnf.add out c) !clauses;
  { cnf = out; subsumed = !subsumed; strengthened = !strengthened; rounds = !rounds }
