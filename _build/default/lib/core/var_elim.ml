open Berkmin_types

type t = {
  simplified : Cnf.t;
  (* (variable, clauses it was resolved out of), reverse elimination
     order — exactly what reconstruction needs. *)
  stack : (int * Clause.t list) list;
}

let cnf t = t.simplified
let num_eliminated t = List.length t.stack
let eliminated_vars t = List.rev_map fst t.stack

let clauses_with lit clauses =
  List.filter (fun c -> Clause.mem lit c) clauses

let run ?(max_growth = 0) ?(max_occurrences = 10) original =
  let nvars = Cnf.num_vars original in
  let clauses =
    ref
      (List.filter
         (fun c -> not (Clause.is_tautology c))
         (Cnf.clauses original))
  in
  let stack = ref [] in
  for v = 0 to nvars - 1 do
    let pos = clauses_with (Lit.pos v) !clauses in
    let neg = clauses_with (Lit.neg_of v) !clauses in
    let occ = List.length pos + List.length neg in
    if occ > 0 && occ <= max_occurrences then begin
      let resolvents =
        List.concat_map
          (fun p ->
            List.filter_map
              (fun n ->
                match Clause.resolve p n v with
                | Some r when not (Clause.is_tautology r) -> Some r
                | Some _ | None -> None)
              neg)
          pos
      in
      if List.length resolvents <= occ + max_growth then begin
        let removed = pos @ neg in
        clauses :=
          resolvents
          @ List.filter (fun c -> not (List.memq c removed)) !clauses;
        stack := (v, removed) :: !stack
      end
    end
  done;
  let simplified = Cnf.create ~num_vars:nvars () in
  List.iter (Cnf.add simplified) !clauses;
  { simplified; stack = !stack }

let reconstruct t model =
  let m = Array.copy model in
  let valuation v = Value.of_bool m.(v) in
  let satisfied c = Value.equal (Clause.eval valuation c) Value.True in
  (* The stack is in reverse elimination order, which is exactly the
     order reconstruction must proceed in: later eliminations only
     depend on earlier-eliminated variables through resolvents that the
     current model already satisfies. *)
  List.iter
    (fun (v, removed) ->
      m.(v) <- true;
      if not (List.for_all satisfied removed) then m.(v) <- false)
    t.stack;
  m
