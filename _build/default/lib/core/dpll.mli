(** A deliberately simple DPLL solver (no learning, no watched
    literals, chronological backtracking).

    This is the independent oracle the property-based tests compare the
    CDCL engine against: two implementations sharing no search code
    agreeing on thousands of random formulas is strong evidence of
    correctness.  Only suitable for small instances. *)

open Berkmin_types

type result =
  | Sat of bool array
  | Unsat
  | Unknown  (** node budget exhausted *)

val solve : ?max_nodes:int -> Cnf.t -> result
(** Unit propagation + first-unassigned-variable splitting.
    [max_nodes] bounds the number of search nodes (default: no bound
    beyond memory/patience). *)
