open Berkmin_types

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

type state = {
  mutable line : int;
  mutable declared_vars : int option;
  mutable current : Lit.t list; (* literals of the clause being read *)
  mutable stopped : bool; (* saw the SATLIB '%' terminator *)
  cnf : Cnf.t;
}

let finish_clause st =
  Cnf.add_clause st.cnf (List.rev st.current);
  st.current <- []

let handle_literal st n =
  if n = 0 then finish_clause st
  else begin
    (match st.declared_vars with
    | Some dv when abs n > dv ->
      fail st.line "literal %d exceeds declared variable count %d" n dv
    | Some _ | None -> ());
    st.current <- Lit.of_dimacs n :: st.current
  end

let handle_header st tokens =
  if st.declared_vars <> None then fail st.line "duplicate p-header";
  match tokens with
  | [ "p"; "cnf"; v; c ] -> (
    match int_of_string_opt v, int_of_string_opt c with
    | Some v, Some c when v >= 0 && c >= 0 ->
      st.declared_vars <- Some v;
      Cnf.ensure_vars st.cnf v
    | _ -> fail st.line "malformed p-header")
  | _ -> fail st.line "malformed p-header (expected `p cnf <vars> <clauses>')"

let handle_line st line =
  let tokens =
    String.split_on_char ' ' (String.map (function '\t' | '\r' -> ' ' | c -> c) line)
    |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | _ when st.stopped -> ()
  | [] -> ()
  | first :: _ when String.length first > 0 && first.[0] = 'c' -> ()
  | "p" :: _ -> handle_header st tokens
  | "%" :: _ ->
    (* SATLIB instances end with a stray "%\n0"; ignore everything
       after the percent sign. *)
    st.stopped <- true
  | tokens ->
    List.iter
      (fun tok ->
        match int_of_string_opt tok with
        | Some n -> handle_literal st n
        | None -> fail st.line "unexpected token %S" tok)
      tokens

let parse_lines lines =
  let st =
    { line = 0; declared_vars = None; current = []; stopped = false;
      cnf = Cnf.create () }
  in
  Seq.iter
    (fun line ->
      st.line <- st.line + 1;
      handle_line st line)
    lines;
  if st.current <> [] then finish_clause st (* tolerate a missing final 0 *);
  st.cnf

let parse_string s = parse_lines (String.split_on_char '\n' s |> List.to_seq)

let parse_channel ic =
  let rec lines () =
    match input_line ic with
    | line -> Seq.Cons (line, lines)
    | exception End_of_file -> Seq.Nil
  in
  parse_lines lines

let parse_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> parse_channel ic)

let print fmt cnf =
  Format.fprintf fmt "p cnf %d %d\n" (Cnf.num_vars cnf) (Cnf.num_clauses cnf);
  Cnf.iter
    (fun c ->
      Clause.iter (fun l -> Format.fprintf fmt "%d " (Lit.to_dimacs l)) c;
      Format.fprintf fmt "0\n")
    cnf

let to_string cnf = Format.asprintf "%a" print cnf

let write_file path cnf =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let fmt = Format.formatter_of_out_channel oc in
      print fmt cnf;
      Format.pp_print_flush fmt ())

let parse_solution s =
  let lines = String.split_on_char '\n' s in
  let answer = ref None in
  let lits = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if String.length line > 0 then
        match line.[0] with
        | 's' ->
          let verdict = String.trim (String.sub line 1 (String.length line - 1)) in
          (match verdict with
          | "SATISFIABLE" -> answer := Some true
          | "UNSATISFIABLE" -> answer := Some false
          | other -> fail lineno "unknown verdict %S" other)
        | 'v' ->
          String.sub line 1 (String.length line - 1)
          |> String.split_on_char ' '
          |> List.iter (fun tok ->
                 let tok = String.trim tok in
                 if tok <> "" && tok <> "0" then
                   match int_of_string_opt tok with
                   | Some n -> lits := n :: !lits
                   | None -> fail lineno "bad literal %S in v-line" tok)
        | 'c' -> ()
        | _ -> fail lineno "unexpected line %S" line)
    lines;
  match !answer with
  | None -> fail 0 "missing s-line"
  | Some false -> None
  | Some true ->
    let max_var = List.fold_left (fun m n -> max m (abs n)) 0 !lits in
    let a = Array.make max_var false in
    List.iter (fun n -> a.(abs n - 1) <- n > 0) !lits;
    Some a

let print_solution fmt = function
  | None -> Format.fprintf fmt "s UNSATISFIABLE\n"
  | Some a ->
    Format.fprintf fmt "s SATISFIABLE\nv";
    Array.iteri
      (fun v b -> Format.fprintf fmt " %d" (if b then v + 1 else -(v + 1)))
      a;
    Format.fprintf fmt " 0\n"
