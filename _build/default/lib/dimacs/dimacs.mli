(** DIMACS CNF reader and writer.

    Accepts the usual liberal dialect: [c] comment lines anywhere, one
    [p cnf <vars> <clauses>] header, whitespace-separated literals with
    clauses terminated by [0] (clauses may span lines; several clauses
    may share a line).  The declared counts are checked loosely: more
    variables than declared is an error, a clause-count mismatch is
    tolerated (many published instances get it wrong). *)

open Berkmin_types

exception Parse_error of { line : int; message : string }

val parse_string : string -> Cnf.t
(** @raise Parse_error on malformed input. *)

val parse_channel : in_channel -> Cnf.t

val parse_file : string -> Cnf.t
(** @raise Sys_error if the file cannot be opened. *)

val print : Format.formatter -> Cnf.t -> unit
(** Writes a well-formed DIMACS document including the [p cnf] header. *)

val to_string : Cnf.t -> string

val write_file : string -> Cnf.t -> unit

val parse_solution : string -> bool array option
(** Parses a SAT-competition style solution ("s SATISFIABLE" /
    "v ..." lines).  Returns [None] for an UNSATISFIABLE answer.
    @raise Parse_error on malformed input. *)

val print_solution : Format.formatter -> bool array option -> unit
(** Inverse of [parse_solution]. *)
