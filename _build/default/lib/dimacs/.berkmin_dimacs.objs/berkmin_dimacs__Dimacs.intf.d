lib/dimacs/dimacs.mli: Berkmin_types Cnf Format
