lib/dimacs/dimacs.ml: Array Berkmin_types Clause Cnf Format Fun List Lit Seq String
