(** Random combinational circuits and structural mutations.

    The paper built its Miters class from "artificial combinational
    circuits ... because their complexity was easy to control"; these
    generators play that role.  [generate] produces a random DAG;
    [restructure] rewrites it into a functionally equivalent circuit
    with different structure (for UNSAT miters); [inject_fault] flips
    one gate (for SAT miters with a localised discrepancy). *)

val generate :
  num_inputs:int -> num_gates:int -> num_outputs:int -> seed:int -> Circuit.t
(** Gates drawn uniformly from AND/OR/XOR/NOT/MUX with operands chosen
    among earlier nodes (biased toward recent nodes so depth grows).
    Outputs are named [o0..o(n-1)] and taken from the last gates. *)

val restructure : Circuit.t -> Circuit.t
(** Functionally equivalent rewrite: every AND/OR is expressed through
    De Morgan duals and every XOR through AND/OR/NOT, then double
    negations introduced by the rewrite are kept (not simplified) so
    the netlist differs structurally everywhere. *)

val inject_fault : Circuit.t -> seed:int -> Circuit.t
(** Copies the circuit, replacing one randomly chosen binary gate's
    function (AND<->OR, XOR->OR) — the classic "design error" model.
    The result usually differs from the original on some input.
    @raise Invalid_argument if the circuit has no binary gate. *)
