(** SAT-based bounded model checking over {!Seq} circuits.

    Checks a safety property "the [bad] output is never 1" up to a
    bound: the circuit is time-expanded, the disjunction of the bad
    signal across all frames is asserted, and the SAT solver either
    refutes it (safe up to the bound) or yields a counterexample trace.
    This is the Biere-et-al. reduction the paper's introduction cites
    as a driving SAT application. *)

open Berkmin_types

type trace = {
  depth : int;  (** frame at which [bad] fires, 0-based *)
  frames : bool array list;
      (** free-input vector per frame, creation order, frames 0..depth *)
}

type result =
  | Safe of int  (** no counterexample within the given bound *)
  | Counterexample of trace
  | Inconclusive  (** solver budget exhausted *)

val encode : Seq.t -> bad:string -> bound:int -> Cnf.t
(** The raw CNF: satisfiable iff [bad] is reachable within [bound]
    frames.  @raise Not_found if no output is named [bad]. *)

val check :
  ?config:Berkmin.Config.t ->
  ?budget:Berkmin.Solver.budget ->
  Seq.t ->
  bad:string ->
  bound:int ->
  result
(** Runs the solver on {!encode}'s formula and decodes any model into
    a trace.  The returned trace is replayable with {!Seq.simulate}
    (the tests do exactly that). *)

val check_incremental :
  ?config:Berkmin.Config.t ->
  ?budget:Berkmin.Solver.budget ->
  Seq.t ->
  bad:string ->
  max_bound:int ->
  result
(** Deepening strategy using one solver and assumption literals: the
    bound-[k] query assumes "bad fires at frame k" on a single
    unrolling of depth [max_bound], reusing learnt clauses across
    depths — the standard incremental-BMC trick, exercising
    {!Berkmin.Solver.solve_with_assumptions}. *)
