(** Tseitin transformation: circuit to equisatisfiable CNF.

    Every circuit node gets a CNF variable; each gate contributes the
    standard defining clauses.  Constraints on outputs (e.g. "the miter
    output is 1") are added on top. *)

open Berkmin_types

type mapping = {
  cnf : Cnf.t;
  node_var : int array;  (** CNF variable of each circuit node *)
}

val encode : Circuit.t -> mapping
(** Encodes every gate.  No output constraints yet. *)

val assert_node : mapping -> int -> bool -> unit
(** [assert_node m id b] adds the unit clause forcing node [id] to [b]. *)

val assert_output : Circuit.t -> mapping -> string -> bool -> unit
(** Constrains a named output.  @raise Not_found on unknown name. *)

val encode_with_output : Circuit.t -> string -> bool -> Cnf.t
(** Convenience: encode and constrain one named output. *)

val input_vars : Circuit.t -> mapping -> int array
(** CNF variables of the primary inputs, in creation order — used to
    read back a circuit counterexample from a SAT model. *)
