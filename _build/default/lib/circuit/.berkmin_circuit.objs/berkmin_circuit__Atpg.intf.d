lib/circuit/atpg.mli: Berkmin Circuit
