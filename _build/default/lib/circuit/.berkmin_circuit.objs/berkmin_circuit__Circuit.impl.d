lib/circuit/circuit.ml: Array Berkmin_types Format List Printf Vec
