lib/circuit/miter.mli: Berkmin_types Circuit Cnf Tseitin
