lib/circuit/atpg.ml: Array Berkmin Circuit List Miter Tseitin
