lib/circuit/bitvec.ml: Array Circuit Printf
