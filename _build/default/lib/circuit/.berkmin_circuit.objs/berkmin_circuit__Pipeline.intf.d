lib/circuit/pipeline.mli: Berkmin_types Circuit
