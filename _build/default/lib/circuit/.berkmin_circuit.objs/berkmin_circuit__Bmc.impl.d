lib/circuit/bmc.ml: Array Berkmin Berkmin_types Circuit Cnf List Lit Printf Seq Tseitin
