lib/circuit/bmc.mli: Berkmin Berkmin_types Cnf Seq
