lib/circuit/blif.mli: Circuit Format
