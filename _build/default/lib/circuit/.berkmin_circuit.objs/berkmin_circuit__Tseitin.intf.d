lib/circuit/tseitin.mli: Berkmin_types Circuit Cnf
