lib/circuit/random_circuit.ml: Array Berkmin_types Circuit List Printf Rng
