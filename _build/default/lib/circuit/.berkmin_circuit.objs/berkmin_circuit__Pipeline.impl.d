lib/circuit/pipeline.ml: Array Bitvec Circuit List Miter Printf
