lib/circuit/random_circuit.mli: Circuit
