lib/circuit/seq.ml: Array Circuit Hashtbl List Printf
