lib/circuit/miter.ml: Array Berkmin_types Circuit List Rng Tseitin
