lib/circuit/tseitin.ml: Array Berkmin_types Circuit Cnf List Lit
