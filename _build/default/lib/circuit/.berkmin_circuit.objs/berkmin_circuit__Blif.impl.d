lib/circuit/blif.ml: Circuit Format Fun Hashtbl List Printf String
