lib/circuit/seq.mli: Circuit
