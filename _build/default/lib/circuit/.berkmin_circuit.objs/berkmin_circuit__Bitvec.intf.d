lib/circuit/bitvec.mli: Circuit
