(** Automatic test-pattern generation for single stuck-at faults.

    The oldest SAT-in-EDA application (the paper's §1 cites
    Stephan/Brayton/Sangiovanni-Vincentelli): for each fault "node n
    stuck at v", build the miter of the circuit against a copy whose
    node [n] is replaced by the constant [v]; a satisfying assignment
    is an input vector that detects the fault, and UNSAT proves the
    fault untestable (redundant logic).

    Patterns are fault-simulated against the remaining fault list so
    one pattern can retire many faults — the classic ATPG loop. *)

type fault = {
  node : int;
  stuck_at : bool;
}

type detection =
  | Detected of bool array  (** a detecting input vector *)
  | Untestable  (** miter UNSAT: the fault never changes any output *)
  | Undecided  (** solver budget exhausted *)

type report = {
  total_faults : int;
  detected : int;
  untestable : int;
  undecided : int;
  patterns : bool array list;
      (** deduplicated detecting vectors, in generation order *)
  results : (fault * detection) list;
}

val fault_list : Circuit.t -> fault list
(** Both polarities on every gate and primary input (constants are
    skipped: stuck-at faults on constants are either untestable or
    equivalent to faults on their fanout). *)

val with_stuck_node : Circuit.t -> fault -> Circuit.t
(** Copy of the circuit with the faulty node's function replaced by a
    constant.  Inputs keep their names so miters line up. *)

val detects : Circuit.t -> fault -> bool array -> bool
(** [detects c f pattern]: does the pattern produce different outputs
    on the good and faulty circuits? (pure simulation) *)

val generate_test :
  ?config:Berkmin.Config.t ->
  ?budget:Berkmin.Solver.budget ->
  Circuit.t ->
  fault ->
  detection

val run :
  ?config:Berkmin.Config.t ->
  ?budget:Berkmin.Solver.budget ->
  ?fault_simulate:bool ->
  Circuit.t ->
  report
(** Full ATPG over {!fault_list}.  With [fault_simulate] (default
    [true]), every new pattern is simulated against undecided faults
    first, so the solver only runs on faults no existing pattern
    catches. *)

val coverage : report -> float
(** detected / (total - untestable), in [0, 1]; 1.0 when every
    testable fault is detected. *)
