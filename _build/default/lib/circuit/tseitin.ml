open Berkmin_types

type mapping = {
  cnf : Cnf.t;
  node_var : int array;
}

let encode circuit =
  let n = Circuit.num_nodes circuit in
  let cnf = Cnf.create ~num_vars:n () in
  let node_var = Array.init n (fun i -> i) in
  let pos i = Lit.pos node_var.(i) in
  let neg i = Lit.neg_of node_var.(i) in
  for id = 0 to n - 1 do
    match Circuit.node circuit id with
    | Circuit.Input _ -> ()
    | Circuit.Const b ->
      Cnf.add_clause cnf [ (if b then pos id else neg id) ]
    | Circuit.Not a ->
      Cnf.add_clause cnf [ neg id; neg a ];
      Cnf.add_clause cnf [ pos id; pos a ]
    | Circuit.And (a, b) ->
      (* id <-> a & b *)
      Cnf.add_clause cnf [ neg id; pos a ];
      Cnf.add_clause cnf [ neg id; pos b ];
      Cnf.add_clause cnf [ pos id; neg a; neg b ]
    | Circuit.Or (a, b) ->
      Cnf.add_clause cnf [ pos id; neg a ];
      Cnf.add_clause cnf [ pos id; neg b ];
      Cnf.add_clause cnf [ neg id; pos a; pos b ]
    | Circuit.Xor (a, b) ->
      Cnf.add_clause cnf [ neg id; pos a; pos b ];
      Cnf.add_clause cnf [ neg id; neg a; neg b ];
      Cnf.add_clause cnf [ pos id; neg a; pos b ];
      Cnf.add_clause cnf [ pos id; pos a; neg b ]
    | Circuit.Mux (s, a, b) ->
      (* id <-> (s ? a : b) *)
      Cnf.add_clause cnf [ neg id; neg s; pos a ];
      Cnf.add_clause cnf [ pos id; neg s; neg a ];
      Cnf.add_clause cnf [ neg id; pos s; pos b ];
      Cnf.add_clause cnf [ pos id; pos s; neg b ];
      (* Redundant but propagation-strengthening clauses. *)
      Cnf.add_clause cnf [ neg id; pos a; pos b ];
      Cnf.add_clause cnf [ pos id; neg a; neg b ]
  done;
  { cnf; node_var }

let assert_node m id b =
  let v = m.node_var.(id) in
  Cnf.add_clause m.cnf [ (if b then Lit.pos v else Lit.neg_of v) ]

let assert_output circuit m name b =
  assert_node m (Circuit.output_exn circuit name) b

let encode_with_output circuit name b =
  let m = encode circuit in
  assert_output circuit m name b;
  m.cnf

let input_vars circuit m =
  let names = Circuit.input_names circuit in
  let n = List.length names in
  let vars = Array.make (max n 1) 0 in
  let next = ref 0 in
  for id = 0 to Circuit.num_nodes circuit - 1 do
    match Circuit.node circuit id with
    | Circuit.Input _ ->
      vars.(!next) <- m.node_var.(id);
      incr next
    | Circuit.Const _ | Circuit.Not _ | Circuit.And _ | Circuit.Or _
    | Circuit.Xor _ | Circuit.Mux _ -> ()
  done;
  Array.sub vars 0 n
