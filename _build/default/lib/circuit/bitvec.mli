(** Word-level circuit builders.

    A bitvector is an array of node ids, least-significant bit first.
    These builders produce the structurally different but functionally
    equivalent datapaths the Miters and pipeline-verification benchmark
    classes are made of (ripple-carry vs. carry-select adders, ALUs,
    comparators). *)

open Circuit

type bv = int array
(** LSB-first node ids, all in the same circuit. *)

val inputs : t -> string -> int -> bv
(** [inputs c prefix width] creates [width] fresh inputs named
    [prefix.0 .. prefix.(width-1)]. *)

val const_int : t -> width:int -> int -> bv
(** Constant bitvector (two's complement truncation). *)

val ripple_carry_add : t -> ?carry_in:int -> bv -> bv -> bv * int
(** Classic ripple-carry adder; returns (sum, carry_out).
    @raise Invalid_argument on width mismatch. *)

val carry_select_add : t -> ?block:int -> ?carry_in:int -> bv -> bv -> bv * int
(** Carry-select adder: blocks of [block] bits (default 4) computed for
    both carry hypotheses and muxed — same function as ripple-carry,
    different structure. *)

val subtract : t -> bv -> bv -> bv * int
(** Two's-complement subtraction [a - b]; second component is the
    borrow-free carry-out. *)

val negate_bv : t -> bv -> bv

val equal_bv : t -> bv -> bv -> int
(** Single node: 1 iff the words are equal. *)

val less_than : t -> bv -> bv -> int
(** Unsigned [a < b]. *)

val mux_bv : t -> sel:int -> if_true:bv -> if_false:bv -> bv

val and_bv : t -> bv -> bv -> bv

val or_bv : t -> bv -> bv -> bv

val xor_bv : t -> bv -> bv -> bv

val not_bv : t -> bv -> bv

val shift_left_const : t -> bv -> int -> bv
(** Logical shift by a constant, zero-filled, width preserved. *)

val mul_const_width : t -> bv -> bv -> bv
(** Shift-and-add multiplier, result truncated to the operand width. *)

type alu_op =
  | Alu_add
  | Alu_sub
  | Alu_and
  | Alu_or
  | Alu_xor

val alu : t -> op_sel:bv -> bv -> bv -> bv
(** A 5-function ALU: a 3-bit binary opcode selects among the
    {!alu_op} functions (see {!alu_op_code}).  Opcodes 5–7 produce
    deterministic but unspecified results.  Structure: compute all
    functions, mux the result. *)

val alu_op_code : alu_op -> int

val set_outputs : t -> string -> bv -> unit
(** Registers each bit as output [prefix.i]. *)

val to_int : bool array -> bv -> int
(** Reads a simulated value vector back as an unsigned integer. *)
