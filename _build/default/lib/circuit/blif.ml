exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

type cover = {
  def_line : int;
  inputs : string list;
  output : string;
  mutable cubes : (string * char) list;  (* input pattern, output value *)
}

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)

let logical_lines text =
  (* Strip comments, join backslash continuations, keep line numbers
     (of the first physical line). *)
  let physical = String.split_on_char '\n' text in
  let rec join acc pending pending_line n = function
    | [] ->
      let acc =
        match pending with
        | Some s -> (pending_line, s) :: acc
        | None -> acc
      in
      List.rev acc
    | line :: rest ->
      let n = n + 1 in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      let continued = String.length line > 0 && line.[String.length line - 1] = '\\' in
      let body =
        if continued then String.trim (String.sub line 0 (String.length line - 1))
        else line
      in
      let merged, merged_line =
        match pending with
        | Some s -> (s ^ " " ^ body, pending_line)
        | None -> (body, n)
      in
      if continued then join acc (Some merged) merged_line n rest
      else if String.trim merged = "" then join acc None 0 n rest
      else join ((merged_line, merged) :: acc) None 0 n rest
  in
  join [] None 0 0 physical

let tokens s =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) s)
  |> List.filter (fun t -> t <> "")

type parsed = {
  mutable inputs : string list;  (* reversed *)
  mutable outputs : string list;  (* reversed *)
  mutable covers : cover list;  (* reversed *)
  mutable current : cover option;
  mutable ended : bool;
}

let parse_line p (line, text) =
  if not p.ended then
    match tokens text with
    | [] -> ()
    | cmd :: rest when String.length cmd > 0 && cmd.[0] = '.' -> (
      p.current <- None;
      match cmd with
      | ".model" -> ()
      | ".inputs" -> p.inputs <- List.rev_append rest p.inputs
      | ".outputs" -> p.outputs <- List.rev_append rest p.outputs
      | ".names" -> (
        match List.rev rest with
        | [] -> fail line ".names needs at least an output"
        | output :: rev_inputs ->
          let c = { def_line = line; inputs = List.rev rev_inputs; output; cubes = [] } in
          p.covers <- c :: p.covers;
          p.current <- Some c)
      | ".end" -> p.ended <- true
      | ".latch" | ".subckt" | ".gate" ->
        fail line "unsupported BLIF construct %s (combinational subset only)" cmd
      | other -> fail line "unknown BLIF directive %s" other)
    | toks -> (
      match p.current with
      | None -> fail line "cube line outside a .names block: %S" text
      | Some c -> (
        let pattern, out =
          match toks, List.length c.inputs with
          | [ out ], 0 -> ("", out)
          | [ pattern; out ], _ -> (pattern, out)
          | _ -> fail line "malformed cube %S" text
        in
        if String.length pattern <> List.length c.inputs then
          fail line "cube width %d does not match %d inputs"
            (String.length pattern) (List.length c.inputs);
        String.iter
          (function
            | '0' | '1' | '-' -> ()
            | ch -> fail line "bad cube character %C" ch)
          pattern;
        match out with
        | "1" -> c.cubes <- (pattern, '1') :: c.cubes
        | "0" -> c.cubes <- (pattern, '0') :: c.cubes
        | _ -> fail line "cube output must be 0 or 1"))

let build_cover circuit resolve (c : cover) =
  let operands = List.map resolve c.inputs in
  let phase =
    match c.cubes with
    | [] -> '1' (* irrelevant: constant 0 *)
    | (_, v) :: rest ->
      List.iter
        (fun (_, v') ->
          if v' <> v then
            fail c.def_line "mixed cube output values in one .names")
        rest;
      v
  in
  let cube_node pattern =
    let lits =
      List.filteri (fun _ _ -> true)
        (List.mapi
           (fun i op ->
             match pattern.[i] with
             | '1' -> Some op
             | '0' -> Some (Circuit.not_ circuit op)
             | _ -> None)
           operands)
      |> List.filter_map Fun.id
    in
    Circuit.and_many circuit lits
  in
  let on_set =
    match c.cubes with
    | [] -> Circuit.const circuit false
    | cubes -> Circuit.or_many circuit (List.map (fun (pat, _) -> cube_node pat) cubes)
  in
  if phase = '1' then on_set else Circuit.not_ circuit on_set

let parse_string text =
  let p = { inputs = []; outputs = []; covers = []; current = None; ended = false } in
  List.iter (parse_line p) (logical_lines text);
  let circuit = Circuit.create () in
  let table : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun name ->
      if Hashtbl.mem table name then
        fail 0 "duplicate input %s" name
      else Hashtbl.replace table name (Circuit.input circuit name))
    (List.rev p.inputs);
  (* Resolve covers in dependency order with repeated passes (BLIF
     allows definitions in any order); leftovers mean an undefined
     signal or a combinational cycle. *)
  let remaining = ref (List.rev p.covers) in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun (c : cover) ->
        if List.for_all (Hashtbl.mem table) c.inputs then begin
          if Hashtbl.mem table c.output then
            fail c.def_line "signal %s defined twice" c.output;
          let resolve name = Hashtbl.find table name in
          Hashtbl.replace table c.output (build_cover circuit resolve c);
          progress := true
        end
        else still := c :: !still)
      !remaining;
    remaining := List.rev !still
  done;
  (match !remaining with
  | [] -> ()
  | c :: _ ->
    fail c.def_line "undefined signal or combinational cycle around %s" c.output);
  List.iter
    (fun name ->
      match Hashtbl.find_opt table name with
      | Some id -> Circuit.set_output circuit name id
      | None -> fail 0 "output %s is never defined" name)
    (List.rev p.outputs);
  circuit

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      parse_string (really_input_string ic n))

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

let signal_name circuit id =
  match Circuit.node circuit id with
  | Circuit.Input name -> name
  | Circuit.Const _ | Circuit.Not _ | Circuit.And _ | Circuit.Or _
  | Circuit.Xor _ | Circuit.Mux _ -> Printf.sprintf "n%d" id

let print fmt ?(model_name = "berkmin_circuit") circuit =
  Format.fprintf fmt ".model %s\n" model_name;
  let input_names = Circuit.input_names circuit in
  if input_names <> [] then
    Format.fprintf fmt ".inputs %s\n" (String.concat " " input_names);
  let outputs = Circuit.outputs circuit in
  if outputs <> [] then
    Format.fprintf fmt ".outputs %s\n"
      (String.concat " " (List.map fst outputs));
  let name = signal_name circuit in
  for id = 0 to Circuit.num_nodes circuit - 1 do
    match Circuit.node circuit id with
    | Circuit.Input _ -> ()
    | Circuit.Const b ->
      Format.fprintf fmt ".names %s\n" (name id);
      if b then Format.fprintf fmt "1\n"
    | Circuit.Not a -> Format.fprintf fmt ".names %s %s\n0 1\n" (name a) (name id)
    | Circuit.And (a, b) ->
      Format.fprintf fmt ".names %s %s %s\n11 1\n" (name a) (name b) (name id)
    | Circuit.Or (a, b) ->
      Format.fprintf fmt ".names %s %s %s\n1- 1\n-1 1\n" (name a) (name b) (name id)
    | Circuit.Xor (a, b) ->
      Format.fprintf fmt ".names %s %s %s\n10 1\n01 1\n" (name a) (name b) (name id)
    | Circuit.Mux (s, a, b) ->
      Format.fprintf fmt ".names %s %s %s %s\n11- 1\n0-1 1\n" (name s) (name a)
        (name b) (name id)
  done;
  (* Output buffers bind the declared output names to internal
     signals. *)
  List.iter
    (fun (out_name, id) ->
      if out_name <> name id then
        Format.fprintf fmt ".names %s %s\n1 1\n" (name id) out_name)
    outputs;
  Format.fprintf fmt ".end\n"

let to_string ?model_name circuit =
  Format.asprintf "%a" (fun fmt () -> print fmt ?model_name circuit) ()

let write_file path ?model_name circuit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let fmt = Format.formatter_of_out_channel oc in
      print fmt ?model_name circuit;
      Format.pp_print_flush fmt ())
