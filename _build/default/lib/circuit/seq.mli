(** Sequential circuits: a combinational core plus registers.

    The substrate for bounded model checking — the paper's §1 cites
    SAT-based model checking (Biere et al.) as a driving application.
    A sequential circuit is a combinational netlist in which some
    inputs are designated {e state} inputs; each register pairs a state
    input (the register's current value) with a next-state node and an
    initial value.  Non-state inputs are free inputs, fresh each
    cycle. *)

type register = {
  state_input : int;  (** node id of the current-state input *)
  mutable next : int;  (** node id computing the next state *)
  init : bool;
}

type t

val create : Circuit.t -> t
(** Wraps a combinational circuit under construction.  Declare
    registers with {!add_register}, build logic through the wrapped
    circuit, then {!connect}. *)

val circuit : t -> Circuit.t

val add_register : t -> name:string -> init:bool -> register
(** Creates the register's state input (usable as an operand
    immediately); its next-state function is wired later. *)

val connect : t -> register -> next:int -> unit
(** Sets the register's next-state node.
    @raise Invalid_argument on a bad node id. *)

val registers : t -> register list
(** In declaration order. *)

val free_inputs : t -> int
(** Number of non-state primary inputs. *)

val validate : t -> unit
(** @raise Invalid_argument if some register was never connected or a
    state input is misdeclared. *)

val simulate : t -> bool array list -> (string * bool) list list
(** [simulate t frames] runs one step per element of [frames] (each a
    vector for the free inputs, in creation order), starting from the
    initial register values.  Returns the named outputs per cycle. *)

val unroll : t -> bound:int -> Circuit.t * int array array
(** [unroll t ~bound] builds the [bound]-frame time expansion: frame
    0's registers take their initial constants, frame [i+1]'s take
    frame [i]'s next-state nodes; free inputs are fresh per frame
    (named [f<frame>.<name>]).  Returns the unrolled circuit and, for
    each frame, the translation table from original node ids to
    unrolled ids (so callers can locate any signal in any frame). *)
