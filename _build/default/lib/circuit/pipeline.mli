(** Symbolic pipelined-datapath verification circuits.

    Stand-in for the paper's Velev suites (Sss, Fvp-unsat, Vliw-sat):
    a [stages]-instruction straight-line processor over [num_regs]
    registers of [width] bits.  Each instruction's opcode and register
    indices are {e symbolic} (primary inputs), so the miter checks the
    pipeline for {e every} program of that length — the same shape of
    problem Velev's benchmarks encode.

    - [specification]: executes instructions sequentially, updating the
      register file after each one.
    - [implementation]: reads the {e initial} register file and
      resolves hazards with a most-recent-writer forwarding network —
      functionally equal, structurally very different (it also uses
      carry-select instead of ripple-carry adders).
    - [buggy_implementation]: same, but the forwarding priority is
      inverted (oldest writer wins), a real hazard bug that shows up
      only for programs with write-write-read register collisions.

    Outputs are the final register-file contents. *)

type params = {
  stages : int;  (** instructions in flight; >= 1 *)
  num_regs : int;  (** power of two, >= 2 *)
  width : int;  (** register width in bits, >= 1 *)
}

val default_params : params

val specification : params -> Circuit.t

val implementation : params -> Circuit.t

val buggy_implementation : params -> Circuit.t

val unsat_miter : params -> Berkmin_types.Cnf.t
(** Miter CNF of specification vs implementation: UNSAT iff the
    forwarding network is correct (it is). *)

val sat_miter : params -> Berkmin_types.Cnf.t
(** Miter CNF of specification vs the buggy implementation: SAT for
    [stages >= 3] (needs two writes before a read). *)
