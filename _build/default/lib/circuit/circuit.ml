open Berkmin_types

type node =
  | Input of string
  | Const of bool
  | Not of int
  | And of int * int
  | Or of int * int
  | Xor of int * int
  | Mux of int * int * int

type t = {
  nodes : node Vec.t;
  mutable inputs : int list;  (* reversed creation order *)
  mutable outs : (string * int) list;  (* reversed registration order *)
}

let create () =
  { nodes = Vec.create ~dummy:(Const false) (); inputs = []; outs = [] }

let check_id t id op =
  if id < 0 || id >= Vec.length t.nodes then
    invalid_arg (Printf.sprintf "Circuit.%s: bad node id %d" op id)

let add t n =
  Vec.push t.nodes n;
  Vec.length t.nodes - 1

let input t name =
  let id = add t (Input name) in
  t.inputs <- id :: t.inputs;
  id

let const t b = add t (Const b)

let not_ t a =
  check_id t a "not_";
  add t (Not a)

let binary t op a b name =
  check_id t a name;
  check_id t b name;
  add t (op a b)

let and_ t a b = binary t (fun a b -> And (a, b)) a b "and_"
let or_ t a b = binary t (fun a b -> Or (a, b)) a b "or_"
let xor_ t a b = binary t (fun a b -> Xor (a, b)) a b "xor_"

let mux t ~sel ~if_true ~if_false =
  check_id t sel "mux";
  check_id t if_true "mux";
  check_id t if_false "mux";
  add t (Mux (sel, if_true, if_false))

let nand t a b = not_ t (and_ t a b)
let nor t a b = not_ t (or_ t a b)
let xnor t a b = not_ t (xor_ t a b)
let implies t a b = or_ t (not_ t a) b

let rec tree t op = function
  | [] -> invalid_arg "Circuit.tree: empty"
  | [ x ] -> x
  | xs ->
    (* Pairwise reduction keeps the tree balanced. *)
    let rec pair = function
      | [] -> []
      | [ x ] -> [ x ]
      | x :: y :: rest -> op t x y :: pair rest
    in
    tree t op (pair xs)

let and_many t = function
  | [] -> const t true
  | xs -> tree t and_ xs

let or_many t = function
  | [] -> const t false
  | xs -> tree t or_ xs

let xor_many t = function
  | [] -> const t false
  | xs -> tree t xor_ xs

let set_output t name id =
  check_id t id "set_output";
  t.outs <- (name, id) :: List.remove_assoc name t.outs

let outputs t = List.rev t.outs

let output_exn t name =
  match List.assoc_opt name t.outs with
  | Some id -> id
  | None -> raise Not_found

let node t id =
  check_id t id "node";
  Vec.get t.nodes id

let num_nodes t = Vec.length t.nodes
let num_inputs t = List.length t.inputs
let input_names t =
  List.rev_map
    (fun id ->
      match Vec.get t.nodes id with
      | Input name -> name
      | Const _ | Not _ | And _ | Or _ | Xor _ | Mux _ -> assert false)
    t.inputs

let num_gates t =
  Vec.fold
    (fun acc n ->
      match n with
      | Input _ | Const _ -> acc
      | Not _ | And _ | Or _ | Xor _ | Mux _ -> acc + 1)
    0 t.nodes

let eval t inputs =
  let n_in = num_inputs t in
  if Array.length inputs <> n_in then
    invalid_arg
      (Printf.sprintf "Circuit.eval: expected %d inputs, got %d" n_in
         (Array.length inputs));
  let values = Array.make (Vec.length t.nodes) false in
  let next_input = ref 0 in
  Vec.iteri
    (fun id n ->
      values.(id) <-
        (match n with
        | Input _ ->
          let v = inputs.(!next_input) in
          incr next_input;
          v
        | Const b -> b
        | Not a -> not values.(a)
        | And (a, b) -> values.(a) && values.(b)
        | Or (a, b) -> values.(a) || values.(b)
        | Xor (a, b) -> values.(a) <> values.(b)
        | Mux (sel, a, b) -> if values.(sel) then values.(a) else values.(b)))
    t.nodes;
  values

let eval_outputs t inputs =
  let values = eval t inputs in
  List.map (fun (name, id) -> (name, values.(id))) (outputs t)

let import dst src ~input_map =
  if Array.length input_map <> num_inputs src then
    invalid_arg "Circuit.import: input_map arity mismatch";
  let table = Array.make (Vec.length src.nodes) (-1) in
  let next_input = ref 0 in
  Vec.iteri
    (fun id n ->
      table.(id) <-
        (match n with
        | Input _ ->
          let mapped = input_map.(!next_input) in
          incr next_input;
          check_id dst mapped "import";
          mapped
        | Const b -> const dst b
        | Not a -> not_ dst table.(a)
        | And (a, b) -> and_ dst table.(a) table.(b)
        | Or (a, b) -> or_ dst table.(a) table.(b)
        | Xor (a, b) -> xor_ dst table.(a) table.(b)
        | Mux (sel, a, b) ->
          mux dst ~sel:table.(sel) ~if_true:table.(a) ~if_false:table.(b)))
    src.nodes;
  table

let pp_stats fmt t =
  Format.fprintf fmt "inputs=%d gates=%d nodes=%d outputs=%d" (num_inputs t)
    (num_gates t) (num_nodes t)
    (List.length t.outs)
