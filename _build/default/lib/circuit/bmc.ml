open Berkmin_types

type trace = {
  depth : int;
  frames : bool array list;
}

type result =
  | Safe of int
  | Counterexample of trace
  | Inconclusive

let frame_output frame bad = Printf.sprintf "f%d.%s" frame bad

let unrolled_with_mapping seq ~bad ~bound =
  let unrolled, _tables = Seq.unroll seq ~bound in
  (* Check the property output exists (frame 0 suffices). *)
  ignore (Circuit.output_exn unrolled (frame_output 0 bad));
  unrolled

let encode seq ~bad ~bound =
  let unrolled = unrolled_with_mapping seq ~bad ~bound in
  let m = Tseitin.encode unrolled in
  let bads =
    List.init bound (fun frame ->
        Lit.pos m.Tseitin.node_var.(Circuit.output_exn unrolled (frame_output frame bad)))
  in
  Cnf.add_clause m.Tseitin.cnf bads;
  m.Tseitin.cnf

(* Free-input vectors per frame, read off a model through the Tseitin
   mapping.  Inputs of the unrolled circuit are created frame-major, so
   consecutive groups of [free_inputs] variables belong to consecutive
   frames. *)
let decode_trace seq unrolled m model ~depth =
  let per_frame = Seq.free_inputs seq in
  let in_vars = Tseitin.input_vars unrolled m in
  List.init (depth + 1) (fun frame ->
      Array.init per_frame (fun i ->
          model.(in_vars.((frame * per_frame) + i))))

let first_bad_frame unrolled m model ~bad ~bound =
  let rec scan frame =
    if frame >= bound then None
    else begin
      let id = Circuit.output_exn unrolled (frame_output frame bad) in
      if model.(m.Tseitin.node_var.(id)) then Some frame else scan (frame + 1)
    end
  in
  scan 0

let check ?config ?budget seq ~bad ~bound =
  let unrolled = unrolled_with_mapping seq ~bad ~bound in
  let m = Tseitin.encode unrolled in
  let bads =
    List.init bound (fun frame ->
        Lit.pos m.Tseitin.node_var.(Circuit.output_exn unrolled (frame_output frame bad)))
  in
  Cnf.add_clause m.Tseitin.cnf bads;
  match Berkmin.Solver.solve_cnf ?config ?budget m.Tseitin.cnf with
  | Berkmin.Solver.Unsat -> Safe bound
  | Berkmin.Solver.Unknown -> Inconclusive
  | Berkmin.Solver.Sat model -> (
    match first_bad_frame unrolled m model ~bad ~bound with
    | None -> Inconclusive (* cannot happen: the disjunction is satisfied *)
    | Some depth ->
      Counterexample { depth; frames = decode_trace seq unrolled m model ~depth })

let check_incremental ?config ?budget seq ~bad ~max_bound =
  let unrolled = unrolled_with_mapping seq ~bad ~bound:max_bound in
  let m = Tseitin.encode unrolled in
  let solver = Berkmin.Solver.create ?config m.Tseitin.cnf in
  let bad_lit frame =
    Lit.pos m.Tseitin.node_var.(Circuit.output_exn unrolled (frame_output frame bad))
  in
  let rec deepen frame =
    if frame >= max_bound then Safe max_bound
    else
      match
        Berkmin.Solver.solve_with_assumptions ?budget solver [ bad_lit frame ]
      with
      | Berkmin.Solver.A_sat model ->
        Counterexample
          { depth = frame; frames = decode_trace seq unrolled m model ~depth:frame }
      | Berkmin.Solver.A_unsat -> Safe max_bound
      | Berkmin.Solver.A_unsat_assuming _ -> deepen (frame + 1)
      | Berkmin.Solver.A_unknown -> Inconclusive
  in
  deepen 0
