open Circuit

type bv = int array

let inputs c prefix width =
  Array.init width (fun i -> input c (Printf.sprintf "%s.%d" prefix i))

let const_int c ~width n =
  Array.init width (fun i -> const c ((n lsr i) land 1 = 1))

let check_widths a b op =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Bitvec.%s: width mismatch (%d vs %d)" op
                   (Array.length a) (Array.length b))

let full_adder c a b cin =
  let axb = xor_ c a b in
  let sum = xor_ c axb cin in
  let cout = or_ c (and_ c a b) (and_ c axb cin) in
  (sum, cout)

let ripple_carry_add c ?carry_in a b =
  check_widths a b "ripple_carry_add";
  let cin = match carry_in with Some x -> x | None -> const c false in
  let carry = ref cin in
  let sum =
    Array.init (Array.length a) (fun i ->
        let s, cout = full_adder c a.(i) b.(i) !carry in
        carry := cout;
        s)
  in
  (sum, !carry)

let carry_select_add c ?(block = 4) ?carry_in a b =
  check_widths a b "carry_select_add";
  let n = Array.length a in
  let sum = Array.make n (const c false) in
  let carry = ref (match carry_in with Some x -> x | None -> const c false) in
  let pos = ref 0 in
  while !pos < n do
    let len = min block (n - !pos) in
    let sub v = Array.sub v !pos len in
    (* Compute the block under both carry hypotheses, then select. *)
    let s0, c0 = ripple_carry_add c ~carry_in:(const c false) (sub a) (sub b) in
    let s1, c1 = ripple_carry_add c ~carry_in:(const c true) (sub a) (sub b) in
    for i = 0 to len - 1 do
      sum.(!pos + i) <- mux c ~sel:!carry ~if_true:s1.(i) ~if_false:s0.(i)
    done;
    carry := mux c ~sel:!carry ~if_true:c1 ~if_false:c0;
    pos := !pos + len
  done;
  (sum, !carry)

let not_bv c a = Array.map (not_ c) a

let subtract c a b =
  check_widths a b "subtract";
  ripple_carry_add c ~carry_in:(const c true) a (not_bv c b)

let negate_bv c a =
  let zero = Array.map (fun _ -> const c false) a in
  fst (subtract c zero a)

let equal_bv c a b =
  check_widths a b "equal_bv";
  and_many c (Array.to_list (Array.map2 (xnor c) a b))

let less_than c a b =
  check_widths a b "less_than";
  (* a < b unsigned iff a - b borrows, i.e. carry-out of a + ~b + 1 is 0. *)
  let _, carry = subtract c a b in
  not_ c carry

let mux_bv c ~sel ~if_true ~if_false =
  check_widths if_true if_false "mux_bv";
  Array.map2 (fun t f -> mux c ~sel ~if_true:t ~if_false:f) if_true if_false

let map2 op c a b =
  check_widths a b "map2";
  Array.map2 (op c) a b

let and_bv c a b = map2 and_ c a b
let or_bv c a b = map2 or_ c a b
let xor_bv c a b = map2 xor_ c a b

let shift_left_const c a k =
  let n = Array.length a in
  Array.init n (fun i -> if i < k then const c false else a.(i - k))

let mul_const_width c a b =
  check_widths a b "mul_const_width";
  let n = Array.length a in
  let acc = ref (Array.init n (fun _ -> const c false)) in
  for i = 0 to n - 1 do
    let shifted = shift_left_const c a i in
    let gated = Array.map (fun bit -> and_ c bit b.(i)) shifted in
    acc := fst (ripple_carry_add c !acc gated)
  done;
  !acc

type alu_op =
  | Alu_add
  | Alu_sub
  | Alu_and
  | Alu_or
  | Alu_xor

let alu_op_code = function
  | Alu_add -> 0
  | Alu_sub -> 1
  | Alu_and -> 2
  | Alu_or -> 3
  | Alu_xor -> 4

let alu c ~op_sel a b =
  if Array.length op_sel <> 3 then invalid_arg "Bitvec.alu: opcode must be 3 bits";
  check_widths a b "alu";
  let add_r = fst (ripple_carry_add c a b) in
  let sub_r = fst (subtract c a b) in
  let and_r = and_bv c a b in
  let or_r = or_bv c a b in
  let xor_r = xor_bv c a b in
  (* Binary select tree over the 3-bit opcode; codes >= 5 fall through
     to add. *)
  let sel0 = op_sel.(0) and sel1 = op_sel.(1) and sel2 = op_sel.(2) in
  let m01 = mux_bv c ~sel:sel0 ~if_true:sub_r ~if_false:add_r in
  (* codes 0,1 *)
  let m23 = mux_bv c ~sel:sel0 ~if_true:or_r ~if_false:and_r in
  (* codes 2,3 *)
  let m45 = mux_bv c ~sel:sel0 ~if_true:add_r ~if_false:xor_r in
  (* codes 4,5 *)
  let low = mux_bv c ~sel:sel1 ~if_true:m23 ~if_false:m01 in
  let high = mux_bv c ~sel:sel1 ~if_true:m45 ~if_false:m45 in
  mux_bv c ~sel:sel2 ~if_true:high ~if_false:low

let set_outputs c prefix bv =
  Array.iteri (fun i id -> set_output c (Printf.sprintf "%s.%d" prefix i) id) bv

let to_int values bv =
  let n = ref 0 in
  Array.iteri (fun i id -> if values.(id) then n := !n lor (1 lsl i)) bv;
  !n
