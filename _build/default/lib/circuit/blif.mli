(** A BLIF (Berkeley Logic Interchange Format) subset: reader and
    writer for combinational netlists.

    Supported constructs: [.model], [.inputs], [.outputs], [.names]
    with a sum-of-products cover (['0'], ['1'], ['-'] input columns;
    output column ['1'] or ['0'] for an inverted cover), constant
    functions (a [.names] with no cubes is constant 0; a single empty
    cube with output 1 is constant 1), and [.end].  Latches and
    hierarchy are not supported — this front end feeds the
    combinational equivalence checker.

    The reader is line-oriented and tolerant of ['\'] continuations
    and ['#'] comments. *)

exception Parse_error of { line : int; message : string }

val parse_string : string -> Circuit.t
(** @raise Parse_error on malformed or unsupported input. *)

val parse_file : string -> Circuit.t
(** @raise Sys_error / [Parse_error]. *)

val print : Format.formatter -> ?model_name:string -> Circuit.t -> unit
(** Writes every gate as a [.names] cover (2-input gates become
    two-to-four cube covers).  Internal signals are named [n<id>]. *)

val to_string : ?model_name:string -> Circuit.t -> string

val write_file : string -> ?model_name:string -> Circuit.t -> unit
