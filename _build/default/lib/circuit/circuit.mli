(** Combinational gate-level netlists.

    The substrate behind the paper's Miters and
    microprocessor-verification benchmark classes: circuits are built
    structurally, simulated for sanity, encoded to CNF by
    {!Tseitin.encode}, and compared pairwise with {!Miter.build}.

    A circuit is a DAG of nodes identified by dense integer ids in
    creation order (so every gate's operands precede it).  Named
    outputs mark the signals of interest. *)

type node =
  | Input of string
  | Const of bool
  | Not of int
  | And of int * int
  | Or of int * int
  | Xor of int * int
  | Mux of int * int * int
      (** [Mux (sel, a, b)] is [if sel then a else b] *)

type t

val create : unit -> t

val input : t -> string -> int
(** Fresh primary input. *)

val const : t -> bool -> int

val not_ : t -> int -> int

val and_ : t -> int -> int -> int

val or_ : t -> int -> int -> int

val xor_ : t -> int -> int -> int

val mux : t -> sel:int -> if_true:int -> if_false:int -> int

val nand : t -> int -> int -> int

val nor : t -> int -> int -> int

val xnor : t -> int -> int -> int

val implies : t -> int -> int -> int

val and_many : t -> int list -> int
(** Balanced AND tree; [and_many c []] is constant true. *)

val or_many : t -> int list -> int
(** Balanced OR tree; [or_many c []] is constant false. *)

val xor_many : t -> int list -> int
(** XOR chain; [xor_many c []] is constant false. *)

val set_output : t -> string -> int -> unit
(** Registers (or replaces) a named output. *)

val outputs : t -> (string * int) list
(** In registration order. *)

val output_exn : t -> string -> int
(** @raise Not_found if no such output. *)

val node : t -> int -> node

val num_nodes : t -> int

val num_inputs : t -> int

val input_names : t -> string list
(** In creation order. *)

val num_gates : t -> int
(** Nodes that are neither inputs nor constants. *)

val eval : t -> bool array -> bool array
(** [eval c inputs] simulates the circuit; [inputs] are in input
    creation order.  Returns the value of every node.
    @raise Invalid_argument on an input-arity mismatch. *)

val eval_outputs : t -> bool array -> (string * bool) list

val import : t -> t -> input_map:int array -> int array
(** [import dst src ~input_map] copies every node of [src] into [dst],
    wiring [src]'s i-th input to [dst] node [input_map.(i)].  Returns
    the node-id translation table (indexed by [src] id).  Outputs are
    not copied. *)

val pp_stats : Format.formatter -> t -> unit
