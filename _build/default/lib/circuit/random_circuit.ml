open Berkmin_types

let generate ~num_inputs ~num_gates ~num_outputs ~seed =
  if num_inputs < 1 || num_gates < 1 || num_outputs < 1 then
    invalid_arg "Random_circuit.generate";
  let rng = Rng.create seed in
  let c = Circuit.create () in
  for i = 0 to num_inputs - 1 do
    ignore (Circuit.input c (Printf.sprintf "x%d" i))
  done;
  (* Pick an operand, biased toward recent nodes: with probability 1/2
     among the most recent quarter, otherwise uniform. *)
  let pick () =
    let n = Circuit.num_nodes c in
    if Rng.bool rng then begin
      let recent = max 1 (n / 4) in
      n - 1 - Rng.int rng recent
    end
    else Rng.int rng n
  in
  for _ = 1 to num_gates do
    let id =
      match Rng.int rng 10 with
      | 0 | 1 | 2 -> Circuit.and_ c (pick ()) (pick ())
      | 3 | 4 | 5 -> Circuit.or_ c (pick ()) (pick ())
      | 6 | 7 -> Circuit.xor_ c (pick ()) (pick ())
      | 8 -> Circuit.not_ c (pick ())
      | _ -> Circuit.mux c ~sel:(pick ()) ~if_true:(pick ()) ~if_false:(pick ())
    in
    ignore id
  done;
  let n = Circuit.num_nodes c in
  for i = 0 to num_outputs - 1 do
    Circuit.set_output c (Printf.sprintf "o%d" i) (n - 1 - (i mod num_gates))
  done;
  c

let restructure src =
  let dst = Circuit.create () in
  let n = Circuit.num_nodes src in
  let table = Array.make n (-1) in
  let double_neg x = Circuit.not_ dst (Circuit.not_ dst x) in
  for id = 0 to n - 1 do
    table.(id) <-
      (match Circuit.node src id with
      | Circuit.Input name -> Circuit.input dst name
      | Circuit.Const b -> Circuit.const dst b
      | Circuit.Not a -> Circuit.not_ dst table.(a)
      | Circuit.And (a, b) ->
        (* a & b = ~(~a | ~b), with an extra double negation for
           structural noise. *)
        double_neg
          (Circuit.not_ dst
             (Circuit.or_ dst (Circuit.not_ dst table.(a))
                (Circuit.not_ dst table.(b))))
      | Circuit.Or (a, b) ->
        double_neg
          (Circuit.not_ dst
             (Circuit.and_ dst (Circuit.not_ dst table.(a))
                (Circuit.not_ dst table.(b))))
      | Circuit.Xor (a, b) ->
        (* a ^ b = (a | b) & ~(a & b) *)
        Circuit.and_ dst
          (Circuit.or_ dst table.(a) table.(b))
          (Circuit.not_ dst (Circuit.and_ dst table.(a) table.(b)))
      | Circuit.Mux (s, a, b) ->
        (* mux = (s & a) | (~s & b) *)
        Circuit.or_ dst
          (Circuit.and_ dst table.(s) table.(a))
          (Circuit.and_ dst (Circuit.not_ dst table.(s)) table.(b)))
  done;
  List.iter
    (fun (name, id) -> Circuit.set_output dst name table.(id))
    (Circuit.outputs src);
  dst

let inject_fault src ~seed =
  let rng = Rng.create seed in
  let n = Circuit.num_nodes src in
  let binary_ids = ref [] in
  for id = 0 to n - 1 do
    match Circuit.node src id with
    | Circuit.And _ | Circuit.Or _ | Circuit.Xor _ ->
      binary_ids := id :: !binary_ids
    | Circuit.Input _ | Circuit.Const _ | Circuit.Not _ | Circuit.Mux _ -> ()
  done;
  let candidates = Array.of_list !binary_ids in
  if Array.length candidates = 0 then
    invalid_arg "Random_circuit.inject_fault: no binary gate";
  let victim = candidates.(Rng.int rng (Array.length candidates)) in
  let dst = Circuit.create () in
  let table = Array.make n (-1) in
  for id = 0 to n - 1 do
    table.(id) <-
      (match Circuit.node src id with
      | Circuit.Input name -> Circuit.input dst name
      | Circuit.Const b -> Circuit.const dst b
      | Circuit.Not a -> Circuit.not_ dst table.(a)
      | Circuit.And (a, b) ->
        if id = victim then Circuit.or_ dst table.(a) table.(b)
        else Circuit.and_ dst table.(a) table.(b)
      | Circuit.Or (a, b) ->
        if id = victim then Circuit.and_ dst table.(a) table.(b)
        else Circuit.or_ dst table.(a) table.(b)
      | Circuit.Xor (a, b) ->
        if id = victim then Circuit.or_ dst table.(a) table.(b)
        else Circuit.xor_ dst table.(a) table.(b)
      | Circuit.Mux (s, a, b) ->
        Circuit.mux dst ~sel:table.(s) ~if_true:table.(a) ~if_false:table.(b))
  done;
  List.iter
    (fun (name, id) -> Circuit.set_output dst name table.(id))
    (Circuit.outputs src);
  dst
