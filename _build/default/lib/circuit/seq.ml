type register = {
  state_input : int;
  mutable next : int;
  init : bool;
}

type t = {
  comb : Circuit.t;
  mutable regs : register list;  (* reversed declaration order *)
}

let create comb = { comb; regs = [] }
let circuit t = t.comb

let add_register t ~name ~init =
  let state_input = Circuit.input t.comb name in
  let r = { state_input; next = -1; init } in
  t.regs <- r :: t.regs;
  r

let connect t r ~next =
  if next < 0 || next >= Circuit.num_nodes t.comb then
    invalid_arg "Seq.connect: bad node id";
  r.next <- next

let registers t = List.rev t.regs

let is_state_input t id = List.exists (fun r -> r.state_input = id) t.regs

(* Primary-input node ids in creation order. *)
let input_ids t =
  let ids = ref [] in
  for id = Circuit.num_nodes t.comb - 1 downto 0 do
    match Circuit.node t.comb id with
    | Circuit.Input _ -> ids := id :: !ids
    | Circuit.Const _ | Circuit.Not _ | Circuit.And _ | Circuit.Or _
    | Circuit.Xor _ | Circuit.Mux _ -> ()
  done;
  !ids

let free_inputs t =
  List.length (List.filter (fun id -> not (is_state_input t id)) (input_ids t))

let validate t =
  List.iter
    (fun r ->
      if r.next < 0 then invalid_arg "Seq.validate: unconnected register")
    t.regs

let simulate t frames =
  validate t;
  let inputs = input_ids t in
  let state = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace state r.state_input r.init) (registers t);
  List.map
    (fun free_values ->
      let next_free = ref 0 in
      let vector =
        Array.of_list
          (List.map
             (fun id ->
               if is_state_input t id then Hashtbl.find state id
               else begin
                 let v = free_values.(!next_free) in
                 incr next_free;
                 v
               end)
             inputs)
      in
      let values = Circuit.eval t.comb vector in
      List.iter
        (fun r -> Hashtbl.replace state r.state_input values.(r.next))
        (registers t);
      Circuit.eval_outputs t.comb vector)
    frames

let unroll t ~bound =
  validate t;
  if bound < 1 then invalid_arg "Seq.unroll: bound must be >= 1";
  let inputs = input_ids t in
  let unrolled = Circuit.create () in
  let tables = Array.make bound [||] in
  for frame = 0 to bound - 1 do
    let input_map =
      Array.of_list
        (List.map
           (fun id ->
             match List.find_opt (fun r -> r.state_input = id) t.regs with
             | Some r ->
               if frame = 0 then Circuit.const unrolled r.init
               else tables.(frame - 1).(r.next)
             | None -> (
               match Circuit.node t.comb id with
               | Circuit.Input name ->
                 Circuit.input unrolled (Printf.sprintf "f%d.%s" frame name)
               | Circuit.Const _ | Circuit.Not _ | Circuit.And _
               | Circuit.Or _ | Circuit.Xor _ | Circuit.Mux _ ->
                 assert false))
           inputs)
    in
    tables.(frame) <- Circuit.import unrolled t.comb ~input_map;
    List.iter
      (fun (name, id) ->
        Circuit.set_output unrolled
          (Printf.sprintf "f%d.%s" frame name)
          tables.(frame).(id))
      (Circuit.outputs t.comb)
  done;
  (unrolled, tables)
