type fault = {
  node : int;
  stuck_at : bool;
}

type detection =
  | Detected of bool array
  | Untestable
  | Undecided

type report = {
  total_faults : int;
  detected : int;
  untestable : int;
  undecided : int;
  patterns : bool array list;
  results : (fault * detection) list;
}

let fault_list c =
  let faults = ref [] in
  for id = Circuit.num_nodes c - 1 downto 0 do
    match Circuit.node c id with
    | Circuit.Const _ -> ()
    | Circuit.Input _ | Circuit.Not _ | Circuit.And _ | Circuit.Or _
    | Circuit.Xor _ | Circuit.Mux _ ->
      faults := { node = id; stuck_at = false } :: { node = id; stuck_at = true }
                :: !faults
  done;
  !faults

let with_stuck_node c fault =
  let n = Circuit.num_nodes c in
  if fault.node < 0 || fault.node >= n then invalid_arg "Atpg.with_stuck_node";
  let dst = Circuit.create () in
  let table = Array.make n (-1) in
  for id = 0 to n - 1 do
    table.(id) <-
      (match Circuit.node c id with
      | Circuit.Input name ->
        (* The input node is always recreated so the input count and
           creation order match the good circuit (miters pair inputs
           positionally); a stuck input simply loses its fanout. *)
        let input_id = Circuit.input dst name in
        if id = fault.node then Circuit.const dst fault.stuck_at else input_id
      | Circuit.Const b -> Circuit.const dst b
      | node ->
        if id = fault.node then Circuit.const dst fault.stuck_at
        else (
          match node with
          | Circuit.Not a -> Circuit.not_ dst table.(a)
          | Circuit.And (a, b) -> Circuit.and_ dst table.(a) table.(b)
          | Circuit.Or (a, b) -> Circuit.or_ dst table.(a) table.(b)
          | Circuit.Xor (a, b) -> Circuit.xor_ dst table.(a) table.(b)
          | Circuit.Mux (s, a, b) ->
            Circuit.mux dst ~sel:table.(s) ~if_true:table.(a)
              ~if_false:table.(b)
          | Circuit.Input _ | Circuit.Const _ -> assert false))
  done;
  List.iter
    (fun (name, id) -> Circuit.set_output dst name table.(id))
    (Circuit.outputs c);
  dst

let detects c fault pattern =
  let faulty = with_stuck_node c fault in
  let good = Circuit.eval_outputs c pattern in
  let bad = Circuit.eval_outputs faulty pattern in
  List.exists (fun (name, v) -> List.assoc name bad <> v) good

let generate_test ?config ?budget c fault =
  let faulty = with_stuck_node c fault in
  let miter = Miter.build c faulty in
  let m = Tseitin.encode miter in
  Tseitin.assert_output miter m "miter" true;
  match Berkmin.Solver.solve_cnf ?config ?budget m.Tseitin.cnf with
  | Berkmin.Solver.Unsat -> Untestable
  | Berkmin.Solver.Unknown -> Undecided
  | Berkmin.Solver.Sat model ->
    Detected (Miter.interpret_model miter m model)

let run ?config ?budget ?(fault_simulate = true) c =
  let faults = fault_list c in
  let patterns = ref [] in
  let results =
    List.map
      (fun fault ->
        let prior =
          if fault_simulate then
            List.find_opt (fun p -> detects c fault p) !patterns
          else None
        in
        match prior with
        | Some p -> (fault, Detected p)
        | None -> (
          match generate_test ?config ?budget c fault with
          | Detected p ->
            if not (List.exists (fun q -> q = p) !patterns) then
              patterns := !patterns @ [ p ];
            (fault, Detected p)
          | (Untestable | Undecided) as d -> (fault, d)))
      faults
  in
  let count f = List.length (List.filter f results) in
  {
    total_faults = List.length faults;
    detected = count (fun (_, d) -> match d with Detected _ -> true | _ -> false);
    untestable = count (fun (_, d) -> d = Untestable);
    undecided = count (fun (_, d) -> d = Undecided);
    patterns = !patterns;
    results;
  }

let coverage r =
  let testable = r.total_faults - r.untestable in
  if testable = 0 then 1.0 else float_of_int r.detected /. float_of_int testable
