type params = {
  stages : int;
  num_regs : int;
  width : int;
}

let default_params = { stages = 3; num_regs = 4; width = 4 }

let log2 n =
  let rec loop k = if 1 lsl k >= n then k else loop (k + 1) in
  max 1 (loop 0)

let validate p =
  if p.stages < 1 then invalid_arg "Pipeline: stages must be >= 1";
  if p.num_regs < 2 || p.num_regs land (p.num_regs - 1) <> 0 then
    invalid_arg "Pipeline: num_regs must be a power of two >= 2";
  if p.width < 1 then invalid_arg "Pipeline: width must be >= 1"

type instr = {
  op : Bitvec.bv;  (* 3 bits *)
  dst : Bitvec.bv;  (* index bits *)
  src1 : Bitvec.bv;
  src2 : Bitvec.bv;
}

(* Primary inputs, in a fixed order shared by every variant so miters
   can pair them up: register file first, then per-stage instruction
   fields. *)
let make_inputs c p =
  let idx_bits = log2 p.num_regs in
  let regs =
    Array.init p.num_regs (fun r ->
        Bitvec.inputs c (Printf.sprintf "r%d" r) p.width)
  in
  let instrs =
    Array.init p.stages (fun s ->
        {
          op = Bitvec.inputs c (Printf.sprintf "op%d" s) 3;
          dst = Bitvec.inputs c (Printf.sprintf "dst%d" s) idx_bits;
          src1 = Bitvec.inputs c (Printf.sprintf "src1_%d" s) idx_bits;
          src2 = Bitvec.inputs c (Printf.sprintf "src2_%d" s) idx_bits;
        })
  in
  (regs, instrs)

(* Read a register file (array of words) at a symbolic index: a mux
   tree over the index bits. *)
let read_regfile c regs idx =
  let rec select lo len bit =
    if len = 1 then regs.(lo)
    else begin
      let half = len / 2 in
      let low = select lo half (bit - 1) in
      let high = select (lo + half) half (bit - 1) in
      Bitvec.mux_bv c ~sel:idx.(bit) ~if_true:high ~if_false:low
    end
  in
  select 0 (Array.length regs) (Array.length idx - 1)

let index_eq c a b = Bitvec.equal_bv c a b

let index_eq_const c idx k =
  Bitvec.equal_bv c idx (Bitvec.const_int c ~width:(Array.length idx) k)

(* Carry-select variant of Bitvec.alu — same function, different
   adder structure (used by the pipelined implementation). *)
let alu_cs c ~op_sel a b =
  let add_r = fst (Bitvec.carry_select_add c a b) in
  let sub_r =
    fst
      (Bitvec.carry_select_add c
         ~carry_in:(Circuit.const c true)
         a (Bitvec.not_bv c b))
  in
  let and_r = Bitvec.and_bv c a b in
  let or_r = Bitvec.or_bv c a b in
  let xor_r = Bitvec.xor_bv c a b in
  let sel0 = op_sel.(0) and sel1 = op_sel.(1) and sel2 = op_sel.(2) in
  let m01 = Bitvec.mux_bv c ~sel:sel0 ~if_true:sub_r ~if_false:add_r in
  let m23 = Bitvec.mux_bv c ~sel:sel0 ~if_true:or_r ~if_false:and_r in
  let m45 = Bitvec.mux_bv c ~sel:sel0 ~if_true:add_r ~if_false:xor_r in
  let low = Bitvec.mux_bv c ~sel:sel1 ~if_true:m23 ~if_false:m01 in
  let high = Bitvec.mux_bv c ~sel:sel1 ~if_true:m45 ~if_false:m45 in
  Bitvec.mux_bv c ~sel:sel2 ~if_true:high ~if_false:low

let export_regs c regs =
  Array.iteri
    (fun r bv -> Bitvec.set_outputs c (Printf.sprintf "R%d" r) bv)
    regs

let specification p =
  validate p;
  let c = Circuit.create () in
  let regs, instrs = make_inputs c p in
  let regs = ref regs in
  Array.iter
    (fun ins ->
      let a = read_regfile c !regs ins.src1 in
      let b = read_regfile c !regs ins.src2 in
      let res = Bitvec.alu c ~op_sel:ins.op a b in
      regs :=
        Array.mapi
          (fun r old ->
            let hit = index_eq_const c ins.dst r in
            Bitvec.mux_bv c ~sel:hit ~if_true:res ~if_false:old)
          !regs)
    instrs;
  export_regs c !regs;
  c

(* The forwarding network: operand value for a symbolic source index at
   stage [s] is the initial register value overridden by every earlier
   stage that wrote that register.  [priority] chooses which writer
   wins when several stages hit: [`Newest] (correct) applies stages in
   increasing order so the latest mux dominates; [`Oldest] (the bug)
   applies them in decreasing order. *)
let forward c initial results instrs s idx ~priority =
  let base = read_regfile c initial idx in
  let order =
    match priority with
    | `Newest -> List.init s (fun j -> j)
    | `Oldest -> List.rev (List.init s (fun j -> j))
  in
  List.fold_left
    (fun value j ->
      let hit = index_eq c instrs.(j).dst idx in
      Bitvec.mux_bv c ~sel:hit ~if_true:results.(j) ~if_false:value)
    base order

let implementation_with ~priority p =
  validate p;
  let c = Circuit.create () in
  let initial, instrs = make_inputs c p in
  let results = Array.make p.stages [||] in
  for s = 0 to p.stages - 1 do
    let a = forward c initial results instrs s instrs.(s).src1 ~priority in
    let b = forward c initial results instrs s instrs.(s).src2 ~priority in
    results.(s) <- alu_cs c ~op_sel:instrs.(s).op a b
  done;
  (* Retire: final register r is the newest stage writing r, else the
     initial value.  Retirement is always newest-wins — the injected
     bug lives only in the operand-forwarding path. *)
  let final =
    Array.mapi
      (fun r initial_value ->
        let value = ref initial_value in
        for j = 0 to p.stages - 1 do
          let hit = index_eq_const c instrs.(j).dst r in
          value := Bitvec.mux_bv c ~sel:hit ~if_true:results.(j) ~if_false:!value
        done;
        !value)
      initial
  in
  export_regs c final;
  c

let implementation = implementation_with ~priority:`Newest
let buggy_implementation = implementation_with ~priority:`Oldest

let unsat_miter p = Miter.to_cnf (specification p) (implementation p)
let sat_miter p = Miter.to_cnf (specification p) (buggy_implementation p)
