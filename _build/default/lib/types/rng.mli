(** Deterministic pseudo-random number generator (xorshift64-star).

    The solver must be reproducible: the same configuration and instance
    always yield the same run, so randomized heuristics (e.g. BerkMin's
    random tie-breaking of [nb_two] and the [Take_rand] polarity ablation)
    draw from a seeded generator owned by the solver rather than the
    global [Random] state. *)

type t

val create : int -> t
(** [create seed] builds a generator.  A zero seed is remapped to a fixed
    nonzero constant (xorshift has an all-zero fixed point). *)

val copy : t -> t

val next : t -> int64
(** Raw 64-bit step. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
