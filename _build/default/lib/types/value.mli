(** Three-valued assignment state of a variable or literal. *)

type t =
  | True
  | False
  | Unassigned

val negate : t -> t
(** Swaps [True] and [False]; [Unassigned] is fixed. *)

val of_bool : bool -> t

val to_bool : t -> bool option
(** [Some b] for assigned values, [None] for [Unassigned]. *)

val is_assigned : t -> bool

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
