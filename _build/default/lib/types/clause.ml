type t = Lit.t array

let dedup_sorted a =
  let n = Array.length a in
  if n <= 1 then a
  else begin
    let j = ref 0 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!j) then begin
        incr j;
        a.(!j) <- a.(i)
      end
    done;
    if !j + 1 = n then a else Array.sub a 0 (!j + 1)
  end

let of_array a =
  let a = Array.copy a in
  Array.sort Int.compare a;
  dedup_sorted a

let of_list l = of_array (Array.of_list l)
let to_list = Array.to_list
let to_array = Array.copy
let length = Array.length
let get c i = c.(i)
let is_empty c = Array.length c = 0

let is_tautology c =
  (* Sorted encoding puts [2v] directly before [2v+1]. *)
  let n = Array.length c in
  let rec loop i = i + 1 < n && (c.(i + 1) = Lit.negate c.(i) || loop (i + 1)) in
  loop 0

let mem l c = Array.exists (Lit.equal l) c
let exists = Array.exists
let for_all = Array.for_all
let iter = Array.iter
let fold f acc c = Array.fold_left f acc c
let max_var c = Array.fold_left (fun m l -> max m (Lit.var l)) (-1) c

let resolve c1 c2 v =
  let p = Lit.pos v and n = Lit.neg_of v in
  let has_p1 = mem p c1 and has_n1 = mem n c1 in
  let has_p2 = mem p c2 and has_n2 = mem n c2 in
  let clash = (has_p1 && has_n2 && not (has_n1 || has_p2))
           || (has_n1 && has_p2 && not (has_p1 || has_n2)) in
  if not clash then None
  else begin
    let keep l = Lit.var l <> v in
    let lits = Array.to_list (Array.of_seq (Seq.filter keep (Array.to_seq c1)))
             @ Array.to_list (Array.of_seq (Seq.filter keep (Array.to_seq c2))) in
    Some (of_list lits)
  end

let subsumes c d =
  (* Both sorted: linear merge test. *)
  let nc = Array.length c and nd = Array.length d in
  let rec loop i j =
    if i = nc then true
    else if j = nd then false
    else if c.(i) = d.(j) then loop (i + 1) (j + 1)
    else if c.(i) > d.(j) then loop i (j + 1)
    else false
  in
  loop 0 0

let eval valuation c =
  let sat = ref false and unknown = ref false in
  Array.iter
    (fun l ->
      match valuation (Lit.var l) with
      | Value.Unassigned -> unknown := true
      | Value.True -> if Lit.is_pos l then sat := true
      | Value.False -> if not (Lit.is_pos l) then sat := true)
    c;
  if !sat then Value.True else if !unknown then Value.Unassigned else Value.False

let equal c d = c = d
let compare = Stdlib.compare

let to_string c =
  String.concat " " (List.map Lit.to_string (to_list c))

let pp fmt c = Format.pp_print_string fmt (to_string c)
