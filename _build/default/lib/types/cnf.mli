(** CNF formulas: a variable count plus a bag of clauses.

    Acts as a builder (generators push clauses and allocate fresh
    variables) and as the interchange format handed to solvers. *)

type t

val create : ?num_vars:int -> unit -> t
(** Empty formula over [num_vars] variables (default 0). *)

val num_vars : t -> int

val num_clauses : t -> int

val fresh_var : t -> int
(** Allocates and returns a new variable index. *)

val ensure_vars : t -> int -> unit
(** Raise the variable count to at least [n]. *)

val add_clause : t -> Lit.t list -> unit
(** Normalises (sort + dedup) and appends; grows the variable count if
    the clause mentions unseen variables.  Tautologies are kept — the
    solver front end removes them — so that generators stay simple. *)

val add_clause_a : t -> Lit.t array -> unit

val add : t -> Clause.t -> unit

val get : t -> int -> Clause.t

val iter : (Clause.t -> unit) -> t -> unit

val iteri : (int -> Clause.t -> unit) -> t -> unit

val fold : ('acc -> Clause.t -> 'acc) -> 'acc -> t -> 'acc

val clauses : t -> Clause.t list

val copy : t -> t

val append : t -> t -> unit
(** [append dst src] adds all clauses of [src] to [dst] (no variable
    renaming: both must share a variable space). *)

val eval : t -> bool array -> Value.t
(** Evaluate under a total assignment (array indexed by variable).
    @raise Invalid_argument if the array is shorter than [num_vars]. *)

val satisfied_by : t -> bool array -> bool
(** [true] iff every clause is satisfied. *)

val num_literals : t -> int
(** Total literal occurrences across all clauses. *)

val has_empty_clause : t -> bool

val pp_stats : Format.formatter -> t -> unit
(** One-line ["vars=.. clauses=.. lits=.."] summary. *)
