type t = int

let make v pos =
  if v < 0 then invalid_arg "Lit.make: negative variable";
  (v lsl 1) lor (if pos then 0 else 1)

let pos v = v lsl 1
let neg_of v = (v lsl 1) lor 1
let var l = l lsr 1
let negate l = l lxor 1
let is_pos l = l land 1 = 0

let of_dimacs n =
  if n = 0 then invalid_arg "Lit.of_dimacs: zero";
  if n > 0 then pos (n - 1) else neg_of (-n - 1)

let to_dimacs l = if is_pos l then var l + 1 else -(var l + 1)
let to_string l = string_of_int (to_dimacs l)
let pp fmt l = Format.pp_print_string fmt (to_string l)
let compare = Int.compare
let equal = Int.equal
