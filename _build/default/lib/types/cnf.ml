type t = {
  mutable nvars : int;
  cls : Clause.t Vec.t;
}

let empty_clause = Clause.of_list []

let create ?(num_vars = 0) () =
  if num_vars < 0 then invalid_arg "Cnf.create";
  { nvars = num_vars; cls = Vec.create ~dummy:empty_clause () }

let num_vars t = t.nvars
let num_clauses t = Vec.length t.cls

let fresh_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  v

let ensure_vars t n = if n > t.nvars then t.nvars <- n

let add t c =
  ensure_vars t (Clause.max_var c + 1);
  Vec.push t.cls c

let add_clause t lits = add t (Clause.of_list lits)
let add_clause_a t lits = add t (Clause.of_array lits)
let get t i = Vec.get t.cls i
let iter f t = Vec.iter f t.cls
let iteri f t = Vec.iteri f t.cls
let fold f acc t = Vec.fold f acc t.cls
let clauses t = Vec.to_list t.cls

let copy t = { nvars = t.nvars; cls = Vec.copy t.cls }

let append dst src =
  ensure_vars dst src.nvars;
  iter (fun c -> Vec.push dst.cls c) src

let eval t assignment =
  if Array.length assignment < t.nvars then
    invalid_arg "Cnf.eval: assignment too short";
  let valuation v = Value.of_bool assignment.(v) in
  let result = ref Value.True in
  iter
    (fun c ->
      match Clause.eval valuation c with
      | Value.False -> result := Value.False
      | Value.Unassigned ->
        if Value.equal !result Value.True then result := Value.Unassigned
      | Value.True -> ())
    t;
  !result

let satisfied_by t assignment = Value.equal (eval t assignment) Value.True

let num_literals t = fold (fun acc c -> acc + Clause.length c) 0 t

let has_empty_clause t = Vec.exists Clause.is_empty t.cls

let pp_stats fmt t =
  Format.fprintf fmt "vars=%d clauses=%d lits=%d" t.nvars (num_clauses t)
    (num_literals t)
