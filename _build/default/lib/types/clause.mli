(** Immutable clauses as sorted, duplicate-free literal arrays.

    This is the interchange representation used by the CNF container,
    generators, DIMACS I/O and the proof checker.  The solver keeps its
    own mutable clause records internally. *)

type t = private Lit.t array

val of_list : Lit.t list -> t
(** Sorts and deduplicates. *)

val of_array : Lit.t array -> t
(** Copies, sorts and deduplicates. *)

val to_list : t -> Lit.t list

val to_array : t -> Lit.t array
(** Fresh copy. *)

val length : t -> int

val get : t -> int -> Lit.t

val is_empty : t -> bool

val is_tautology : t -> bool
(** [true] when the clause contains both phases of some variable. *)

val mem : Lit.t -> t -> bool

val exists : (Lit.t -> bool) -> t -> bool

val for_all : (Lit.t -> bool) -> t -> bool

val iter : (Lit.t -> unit) -> t -> unit

val fold : ('acc -> Lit.t -> 'acc) -> 'acc -> t -> 'acc

val max_var : t -> int
(** Largest variable index, [-1] for the empty clause. *)

val resolve : t -> t -> int -> t option
(** [resolve c1 c2 v] is the resolvent of [c1] and [c2] on variable [v],
    or [None] if the clauses do not clash on [v] (exactly one of them
    must contain the positive and the other the negative literal). The
    resolvent may be a tautology; the caller decides what to do then. *)

val subsumes : t -> t -> bool
(** [subsumes c d] is [true] when every literal of [c] occurs in [d]. *)

val eval : (int -> Value.t) -> t -> Value.t
(** Evaluate under a variable valuation: [True] if some literal is
    satisfied, [False] if all are falsified, [Unassigned] otherwise. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val to_string : t -> string
(** Space-separated DIMACS literals, without the trailing 0. *)

val pp : Format.formatter -> t -> unit
