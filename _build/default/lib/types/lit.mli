(** Propositional literals.

    A literal is an integer: variable [v] (0-based) yields the positive
    literal [2 * v] and the negative literal [2 * v + 1].  This packed
    encoding lets watched-literal tables and activity counters be plain
    arrays indexed by literal.  DIMACS uses signed 1-based integers; the
    [to_dimacs]/[of_dimacs] pair converts. *)

type t = int

val make : int -> bool -> t
(** [make v pos] is the literal of variable [v], positive iff [pos].
    Requires [v >= 0]. *)

val pos : int -> t
(** [pos v] is the positive literal of variable [v]. *)

val neg_of : int -> t
(** [neg_of v] is the negative literal of variable [v]. *)

val var : t -> int
(** Variable index of a literal. *)

val negate : t -> t
(** The complementary literal. *)

val is_pos : t -> bool
(** [true] iff the literal is the positive phase of its variable. *)

val of_dimacs : int -> t
(** [of_dimacs n] converts a nonzero signed DIMACS literal (1-based).
    @raise Invalid_argument on [0]. *)

val to_dimacs : t -> int
(** Inverse of [of_dimacs]. *)

val to_string : t -> string
(** DIMACS-style rendering, e.g. ["-3"]. *)

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int

val equal : t -> t -> bool
