type t = { mutable state : int64 }

let create seed =
  let s = Int64.of_int seed in
  let s = if Int64.equal s 0L then 0x9E3779B97F4A7C15L else s in
  { state = s }

let copy t = { state = t.state }

(* xorshift64* : Marsaglia's xorshift with a multiplicative finalizer. *)
let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let r = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int r /. 9007199254740992.0 (* 2^53 *)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
