lib/types/vec.mli:
