lib/types/clause.ml: Array Format Int List Lit Seq Stdlib String Value
