lib/types/clause.mli: Format Lit Value
