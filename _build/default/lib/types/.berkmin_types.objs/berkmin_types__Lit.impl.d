lib/types/lit.ml: Format Int
