lib/types/cnf.ml: Array Clause Format Value Vec
