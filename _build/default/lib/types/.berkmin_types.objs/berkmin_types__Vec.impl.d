lib/types/vec.ml: Array Printf
