lib/types/cnf.mli: Clause Format Lit Value
