lib/types/lit.mli: Format
