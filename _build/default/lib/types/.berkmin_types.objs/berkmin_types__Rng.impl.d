lib/types/rng.ml: Array Int64
