lib/types/value.ml: Format
