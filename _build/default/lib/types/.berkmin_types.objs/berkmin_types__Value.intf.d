lib/types/value.mli: Format
