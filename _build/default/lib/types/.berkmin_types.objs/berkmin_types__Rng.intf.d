lib/types/rng.mli:
