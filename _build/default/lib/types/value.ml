type t =
  | True
  | False
  | Unassigned

let negate = function
  | True -> False
  | False -> True
  | Unassigned -> Unassigned

let of_bool b = if b then True else False

let to_bool = function
  | True -> Some true
  | False -> Some false
  | Unassigned -> None

let is_assigned = function
  | True | False -> true
  | Unassigned -> false

let equal a b =
  match a, b with
  | True, True | False, False | Unassigned, Unassigned -> true
  | (True | False | Unassigned), _ -> false

let to_string = function
  | True -> "true"
  | False -> "false"
  | Unassigned -> "unassigned"

let pp fmt v = Format.pp_print_string fmt (to_string v)
