(** XOR-constraint formulas: the Par16-like class and Tseitin-graph
    hard UNSAT formulas.

    Each 3-variable XOR equation [x + y + z = b (mod 2)] becomes the
    four clauses ruling out the odd/even assignments, exactly the
    structure of the DIMACS parity-learning instances. *)

open Berkmin_types

val chain : num_vars:int -> extra:int -> seed:int -> Cnf.t
(** A sliding-window chain [x_i + x_(i+1) + x_(i+2) = b_i] plus
    [extra] random 3-XOR equations, with every right-hand side computed
    from a hidden planted assignment — always SAT. *)

val chain_instance : num_vars:int -> extra:int -> seed:int -> Instance.t

val inconsistent_cycle : num_vars:int -> Cnf.t
(** The 2-XOR cycle [x_1+x_2 = 0, ..., x_(k-1)+x_k = 0, x_k+x_1 = 1]:
    a minimal UNSAT parity formula. *)

val tseitin_expander : num_vars:int -> degree:int -> seed:int -> Cnf.t
(** Tseitin formula of a random [degree]-regular multigraph with an
    odd total charge — UNSAT, and provably hard for resolution
    (Urquhart).  [num_vars] is the number of graph vertices; edges
    become the CNF variables. *)

val tseitin_instance : num_vars:int -> degree:int -> seed:int -> Instance.t

val suite : sizes:int list -> seed:int -> Instance.t list
(** Par16-like class: one planted chain per size. *)
