(** Uniform random k-SAT.

    Used by the property-based tests (cross-checking the CDCL engine
    against the DPLL oracle on thousands of small formulas) and for
    phase-transition sweeps.  At clause/variable ratio ~4.26, random
    3-SAT is maximally hard on average. *)

open Berkmin_types

val generate : num_vars:int -> num_clauses:int -> k:int -> seed:int -> Cnf.t
(** Clauses of [k] distinct variables with random polarities.
    @raise Invalid_argument if [k > num_vars] or arguments are
    non-positive. *)

val planted : num_vars:int -> num_clauses:int -> k:int -> seed:int -> Cnf.t
(** Like {!generate} but every clause is checked against a hidden
    random assignment and re-polarised to satisfy it — always SAT. *)

val instance : num_vars:int -> ratio:float -> seed:int -> Instance.t
(** Random 3-SAT at the given clause/variable ratio, verdict unknown. *)

val planted_instance : num_vars:int -> ratio:float -> seed:int -> Instance.t
