open Berkmin_types

(* Variable layout: all on(d,p,t) first, then all move(d,p,q,t).
   Pegs are 0..2; disks 0..n-1 with 0 the smallest. *)

let peg_pairs = [ (0, 1); (0, 2); (1, 0); (1, 2); (2, 0); (2, 1) ]

let pair_index p q =
  if q > p then (p * 2) + (q - 1) else (p * 2) + q

type layout = {
  disks : int;
  horizon : int;
  move_base : int;
}

let layout ~disks ~horizon =
  { disks; horizon; move_base = (horizon + 1) * disks * 3 }

let on_var l d p t = (t * l.disks * 3) + (d * 3) + p

let move_var l d p q t =
  l.move_base + (t * l.disks * 6) + (d * 6) + pair_index p q

let num_vars l = l.move_base + (l.horizon * l.disks * 6)

let encode ~disks ~horizon =
  if disks < 1 then invalid_arg "Hanoi.encode: disks < 1";
  if horizon < 0 then invalid_arg "Hanoi.encode: horizon < 0";
  let l = layout ~disks ~horizon in
  let cnf = Cnf.create ~num_vars:(num_vars l) () in
  let on d p t = Lit.pos (on_var l d p t) in
  let not_on d p t = Lit.neg_of (on_var l d p t) in
  let mv d p q t = Lit.pos (move_var l d p q t) in
  let not_mv d p q t = Lit.neg_of (move_var l d p q t) in
  (* Each disk is on exactly one peg at every time point. *)
  for t = 0 to horizon do
    for d = 0 to disks - 1 do
      Cnf.add_clause cnf [ on d 0 t; on d 1 t; on d 2 t ];
      for p = 0 to 2 do
        for q = p + 1 to 2 do
          Cnf.add_clause cnf [ not_on d p t; not_on d q t ]
        done
      done
    done
  done;
  for t = 0 to horizon - 1 do
    (* Exactly one move per step. *)
    let all_moves =
      List.concat_map
        (fun (p, q) -> List.init disks (fun d -> mv d p q t))
        peg_pairs
    in
    Cnf.add_clause cnf all_moves;
    let arr = Array.of_list all_moves in
    for i = 0 to Array.length arr - 1 do
      for j = i + 1 to Array.length arr - 1 do
        Cnf.add_clause cnf [ Lit.negate arr.(i); Lit.negate arr.(j) ]
      done
    done;
    for d = 0 to disks - 1 do
      List.iter
        (fun (p, q) ->
          (* Precondition: the disk is on the source peg. *)
          Cnf.add_clause cnf [ not_mv d p q t; on d p t ];
          (* The disk is topmost and the target holds no smaller disk. *)
          for d' = 0 to d - 1 do
            Cnf.add_clause cnf [ not_mv d p q t; not_on d' p t ];
            Cnf.add_clause cnf [ not_mv d p q t; not_on d' q t ]
          done;
          (* Effects. *)
          Cnf.add_clause cnf [ not_mv d p q t; on d q (t + 1) ];
          Cnf.add_clause cnf [ not_mv d p q t; not_on d p (t + 1) ])
        peg_pairs
    done;
    (* Explanatory frame axioms: a fluent change implies a move. *)
    for d = 0 to disks - 1 do
      for p = 0 to 2 do
        let leaving =
          List.filter_map
            (fun (p', q) -> if p' = p then Some (mv d p q t) else None)
            peg_pairs
        in
        let arriving =
          List.filter_map
            (fun (p', q) -> if q = p then Some (mv d p' p t) else None)
            peg_pairs
        in
        Cnf.add_clause cnf ([ not_on d p t; on d p (t + 1) ] @ leaving);
        Cnf.add_clause cnf ([ on d p t; not_on d p (t + 1) ] @ arriving)
      done
    done
  done;
  (* Initial state: everything on peg 0; goal: everything on peg 2. *)
  for d = 0 to disks - 1 do
    Cnf.add_clause cnf [ on d 0 0 ];
    Cnf.add_clause cnf [ not_on d 1 0 ];
    Cnf.add_clause cnf [ not_on d 2 0 ];
    Cnf.add_clause cnf [ on d 2 horizon ]
  done;
  cnf

let optimal_horizon disks = (1 lsl disks) - 1

let sat_instance disks =
  Instance.make
    (Printf.sprintf "hanoi%d" disks)
    Instance.Expect_sat
    (encode ~disks ~horizon:(optimal_horizon disks))

let unsat_instance disks =
  if disks < 1 then invalid_arg "Hanoi.unsat_instance";
  Instance.make
    (Printf.sprintf "hanoi%d_short" disks)
    Instance.Expect_unsat
    (encode ~disks ~horizon:(optimal_horizon disks - 1))

let decode_plan ~disks ~horizon model =
  let l = layout ~disks ~horizon in
  let plan = ref [] in
  for t = horizon - 1 downto 0 do
    for d = 0 to disks - 1 do
      List.iter
        (fun (p, q) ->
          if model.(move_var l d p q t) then plan := (d, p, q) :: !plan)
        peg_pairs
    done
  done;
  !plan

let suite ~max_disks =
  List.concat
    (List.init
       (max 0 (max_disks - 1))
       (fun i ->
         let n = i + 2 in
         [ sat_instance n; unsat_instance n ]))
