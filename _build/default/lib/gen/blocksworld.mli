(** Blocks-world planning as SAT (the paper's Blocksworld class).

    [blocks] numbered blocks and a table; fluents [on(x, y, t)] (where
    [y] ranges over blocks and the table), derived clearness, actions
    [move(x, from, to, t)], exactly one action per step, explanatory
    frame axioms.  The shipped scenario reverses a tower of [blocks]
    blocks, whose optimal plan has exactly [blocks] moves. *)

open Berkmin_types

val encode : blocks:int -> horizon:int -> Cnf.t
(** Tower-reversal instance at the given horizon.
    @raise Invalid_argument for [blocks < 2] or [horizon < 0]. *)

val optimal_horizon : int -> int
(** [blocks] (one move per block for the reversal scenario). *)

val sat_instance : int -> Instance.t

val unsat_instance : int -> Instance.t
(** One step short of optimal: UNSAT. *)

val suite : max_blocks:int -> Instance.t list
(** SAT and UNSAT members for sizes [3 .. max_blocks]. *)
