open Berkmin_types

let check_args ~num_vars ~num_clauses ~k =
  if num_vars < 1 || num_clauses < 0 || k < 1 then
    invalid_arg "Random_ksat: non-positive parameter";
  if k > num_vars then invalid_arg "Random_ksat: k > num_vars"

let random_clause_vars rng ~num_vars ~k =
  let chosen = Array.make k (-1) in
  for i = 0 to k - 1 do
    let rec draw () =
      let v = Rng.int rng num_vars in
      if Array.exists (Int.equal v) chosen then draw () else v
    in
    chosen.(i) <- draw ()
  done;
  chosen

let generate ~num_vars ~num_clauses ~k ~seed =
  check_args ~num_vars ~num_clauses ~k;
  let rng = Rng.create seed in
  let cnf = Cnf.create ~num_vars () in
  for _ = 1 to num_clauses do
    let vars = random_clause_vars rng ~num_vars ~k in
    Cnf.add_clause cnf
      (Array.to_list
         (Array.map (fun v -> Lit.make v (Rng.bool rng)) vars))
  done;
  cnf

let planted ~num_vars ~num_clauses ~k ~seed =
  check_args ~num_vars ~num_clauses ~k;
  let rng = Rng.create seed in
  let hidden = Array.init num_vars (fun _ -> Rng.bool rng) in
  let cnf = Cnf.create ~num_vars () in
  for _ = 1 to num_clauses do
    let vars = random_clause_vars rng ~num_vars ~k in
    let lits = Array.map (fun v -> Lit.make v (Rng.bool rng)) vars in
    let satisfied =
      Array.exists (fun l -> hidden.(Lit.var l) = Lit.is_pos l) lits
    in
    if not satisfied then begin
      (* Flip one literal to agree with the hidden assignment. *)
      let i = Rng.int rng k in
      lits.(i) <- Lit.make (Lit.var lits.(i)) hidden.(Lit.var lits.(i))
    end;
    Cnf.add_clause cnf (Array.to_list lits)
  done;
  cnf

let instance ~num_vars ~ratio ~seed =
  let num_clauses = int_of_float (ratio *. float_of_int num_vars) in
  Instance.make
    (Printf.sprintf "rand3_%d_r%.2f_s%d" num_vars ratio seed)
    Instance.Expect_any
    (generate ~num_vars ~num_clauses ~k:3 ~seed)

let planted_instance ~num_vars ~ratio ~seed =
  let num_clauses = int_of_float (ratio *. float_of_int num_vars) in
  Instance.make
    (Printf.sprintf "plant3_%d_r%.2f_s%d" num_vars ratio seed)
    Instance.Expect_sat
    (planted ~num_vars ~num_clauses ~k:3 ~seed)
