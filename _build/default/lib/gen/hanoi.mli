(** Towers of Hanoi as SAT planning (the paper's Hanoi class).

    A STRIPS-style linear encoding: fluents [on(disk, peg, t)] and
    actions [move(disk, from, to, t)], exactly one action per step,
    explanatory frame axioms.  Moving disk [d] requires [d] topmost on
    its peg and no smaller disk on the target.  The optimal plan for
    [n] disks has [2^n - 1] moves, so the encoding is SAT exactly at
    horizon [>= 2^n - 1]. *)

open Berkmin_types

val encode : disks:int -> horizon:int -> Cnf.t
(** @raise Invalid_argument for [disks < 1] or [horizon < 0]. *)

val optimal_horizon : int -> int
(** [2^disks - 1]. *)

val sat_instance : int -> Instance.t
(** [disks] at the optimal horizon: SAT. *)

val unsat_instance : int -> Instance.t
(** [disks] one step short of optimal: UNSAT.
    @raise Invalid_argument for [disks < 1]. *)

val decode_plan : disks:int -> horizon:int -> bool array -> (int * int * int) list
(** Reads [(disk, from, to)] moves off a model, in time order. *)

val suite : max_disks:int -> Instance.t list
(** SAT and UNSAT members for sizes [2 .. max_disks]. *)
