lib/gen/graph_coloring.mli: Berkmin_types Cnf Instance
