lib/gen/suites.mli: Instance
