lib/gen/instance.ml: Berkmin_types Cnf
