lib/gen/graph_coloring.ml: Berkmin_types Cnf Instance List Lit Printf Rng
