lib/gen/random_ksat.ml: Array Berkmin_types Cnf Instance Int Lit Printf Rng
