lib/gen/puzzles.mli: Berkmin_types Cnf Instance
