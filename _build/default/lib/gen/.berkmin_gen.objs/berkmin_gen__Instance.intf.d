lib/gen/instance.mli: Berkmin_types Cnf
