lib/gen/puzzles.ml: Array Berkmin_types Cnf Hashtbl Instance List Lit Option Printf
