lib/gen/parity.mli: Berkmin_types Cnf Instance
