lib/gen/blocksworld.ml: Array Berkmin_types Cnf Instance List Lit Printf
