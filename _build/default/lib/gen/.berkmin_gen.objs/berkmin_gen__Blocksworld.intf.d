lib/gen/blocksworld.mli: Berkmin_types Cnf Instance
