lib/gen/pigeonhole.ml: Berkmin_types Cnf Instance List Lit Printf Stdlib
