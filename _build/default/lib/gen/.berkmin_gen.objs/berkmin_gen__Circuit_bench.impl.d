lib/gen/circuit_bench.ml: Array Berkmin_circuit Instance List Printf
