lib/gen/parity.ml: Array Berkmin_types Cnf Instance List Lit Printf Rng
