lib/gen/random_ksat.mli: Berkmin_types Cnf Instance
