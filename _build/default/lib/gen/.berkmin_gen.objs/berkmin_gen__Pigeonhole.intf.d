lib/gen/pigeonhole.mli: Berkmin_types Cnf Instance
