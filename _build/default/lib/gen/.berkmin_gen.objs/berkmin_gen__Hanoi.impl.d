lib/gen/hanoi.ml: Array Berkmin_types Cnf Instance List Lit Printf
