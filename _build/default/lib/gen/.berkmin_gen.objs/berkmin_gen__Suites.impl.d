lib/gen/suites.ml: Blocksworld Circuit_bench Graph_coloring Hanoi Instance List Parity Pigeonhole Random_ksat
