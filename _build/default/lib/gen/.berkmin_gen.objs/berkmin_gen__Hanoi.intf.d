lib/gen/hanoi.mli: Berkmin_types Cnf Instance
