lib/gen/circuit_bench.mli: Berkmin_types Cnf Instance
