open Berkmin_types

type graph = {
  vertices : int;
  edges : (int * int) list;
}

let encode g ~colors =
  if g.vertices < 1 || colors < 1 then invalid_arg "Graph_coloring.encode";
  let cnf = Cnf.create ~num_vars:(g.vertices * colors) () in
  let var v c = (v * colors) + c in
  for v = 0 to g.vertices - 1 do
    Cnf.add_clause cnf (List.init colors (fun c -> Lit.pos (var v c)));
    for c1 = 0 to colors - 1 do
      for c2 = c1 + 1 to colors - 1 do
        Cnf.add_clause cnf [ Lit.neg_of (var v c1); Lit.neg_of (var v c2) ]
      done
    done
  done;
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= g.vertices || v < 0 || v >= g.vertices then
        invalid_arg "Graph_coloring.encode: edge endpoint out of range";
      if u <> v then
        for c = 0 to colors - 1 do
          Cnf.add_clause cnf [ Lit.neg_of (var u c); Lit.neg_of (var v c) ]
        done)
    g.edges;
  cnf

let clique n =
  {
    vertices = n;
    edges =
      List.concat
        (List.init n (fun u -> List.init (n - u - 1) (fun i -> (u, u + i + 1))));
  }

let cycle n =
  if n < 3 then invalid_arg "Graph_coloring.cycle";
  { vertices = n; edges = List.init n (fun i -> (i, (i + 1) mod n)) }

let random_graph ~vertices ~edge_prob ~seed =
  let rng = Rng.create seed in
  let edges = ref [] in
  for u = 0 to vertices - 1 do
    for v = u + 1 to vertices - 1 do
      if Rng.float rng < edge_prob then edges := (u, v) :: !edges
    done
  done;
  { vertices; edges = !edges }

let clique_instance n ~colors =
  let expected =
    if colors >= n then Instance.Expect_sat else Instance.Expect_unsat
  in
  Instance.make
    (Printf.sprintf "clique%d_c%d" n colors)
    expected
    (encode (clique n) ~colors)

let cycle_instance n ~colors =
  let expected =
    if colors >= 3 || (colors = 2 && n mod 2 = 0) then Instance.Expect_sat
    else Instance.Expect_unsat
  in
  Instance.make
    (Printf.sprintf "cycle%d_c%d" n colors)
    expected
    (encode (cycle n) ~colors)

let random_instance ~vertices ~edge_prob ~colors ~seed =
  Instance.make
    (Printf.sprintf "gcol_%d_p%.2f_c%d_s%d" vertices edge_prob colors seed)
    Instance.Expect_any
    (encode (random_graph ~vertices ~edge_prob ~seed) ~colors)
