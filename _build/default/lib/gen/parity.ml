open Berkmin_types

(* Encode [xor lits = b] as the 2^(k-1) clauses forbidding every
   assignment of the wrong parity. *)
let add_xor cnf lits b =
  let vars = Array.of_list lits in
  let k = Array.length vars in
  if k = 0 then begin
    if b then Cnf.add_clause cnf [] (* 0 = 1: contradiction *)
  end
  else
    for mask = 0 to (1 lsl k) - 1 do
      let parity = ref false in
      for i = 0 to k - 1 do
        if (mask lsr i) land 1 = 1 then parity := not !parity
      done;
      if !parity <> b then begin
        (* Forbid this assignment: for bit=1 (var true) add ¬v, else v. *)
        let clause =
          List.init k (fun i ->
              if (mask lsr i) land 1 = 1 then Lit.neg_of vars.(i)
              else Lit.pos vars.(i))
        in
        Cnf.add_clause cnf clause
      end
    done

let chain ~num_vars ~extra ~seed =
  if num_vars < 3 then invalid_arg "Parity.chain";
  let rng = Rng.create seed in
  let planted = Array.init num_vars (fun _ -> Rng.bool rng) in
  let cnf = Cnf.create ~num_vars () in
  let rhs vars = List.fold_left (fun acc v -> acc <> planted.(v)) false vars in
  for i = 0 to num_vars - 3 do
    let vars = [ i; i + 1; i + 2 ] in
    add_xor cnf vars (rhs vars)
  done;
  for _ = 1 to extra do
    let distinct3 () =
      let a = Rng.int rng num_vars in
      let b = ref (Rng.int rng num_vars) in
      while !b = a do
        b := Rng.int rng num_vars
      done;
      let c = ref (Rng.int rng num_vars) in
      while !c = a || !c = !b do
        c := Rng.int rng num_vars
      done;
      [ a; !b; !c ]
    in
    let vars = distinct3 () in
    add_xor cnf vars (rhs vars)
  done;
  cnf

let chain_instance ~num_vars ~extra ~seed =
  Instance.make
    (Printf.sprintf "par_%d_%d_s%d" num_vars extra seed)
    Instance.Expect_sat
    (chain ~num_vars ~extra ~seed)

let inconsistent_cycle ~num_vars =
  if num_vars < 2 then invalid_arg "Parity.inconsistent_cycle";
  let cnf = Cnf.create ~num_vars () in
  for i = 0 to num_vars - 2 do
    add_xor cnf [ i; i + 1 ] false
  done;
  add_xor cnf [ num_vars - 1; 0 ] true;
  cnf

let tseitin_expander ~num_vars ~degree ~seed =
  if num_vars < 2 || degree < 2 then invalid_arg "Parity.tseitin_expander";
  if num_vars * degree mod 2 <> 0 then
    invalid_arg "Parity.tseitin_expander: num_vars * degree must be even";
  let rng = Rng.create seed in
  (* Pairing model: d stubs per vertex, shuffled and paired. *)
  let stubs = Array.init (num_vars * degree) (fun i -> i / degree) in
  Rng.shuffle rng stubs;
  let num_edges = Array.length stubs / 2 in
  let incident = Array.make num_vars [] in
  for e = 0 to num_edges - 1 do
    let u = stubs.(2 * e) and v = stubs.((2 * e) + 1) in
    (* A self-loop contributes its variable twice to the same XOR —
       the pair cancels, so record nothing for it. *)
    if u <> v then begin
      incident.(u) <- e :: incident.(u);
      incident.(v) <- e :: incident.(v)
    end
  done;
  let cnf = Cnf.create ~num_vars:num_edges () in
  for v = 0 to num_vars - 1 do
    (* Odd charge at vertex 0 only: total charge odd => UNSAT. *)
    add_xor cnf incident.(v) (v = 0)
  done;
  cnf

let tseitin_instance ~num_vars ~degree ~seed =
  Instance.make
    (Printf.sprintf "tseitin_%d_%d_s%d" num_vars degree seed)
    Instance.Expect_unsat
    (tseitin_expander ~num_vars ~degree ~seed)

let suite ~sizes ~seed =
  List.mapi
    (fun i n -> chain_instance ~num_vars:n ~extra:(n / 2) ~seed:(seed + i))
    sizes
