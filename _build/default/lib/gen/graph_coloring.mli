(** Graph k-coloring as SAT.

    Variables [color(v, c)]; every vertex gets at least one colour, no
    vertex two colours, adjacent vertices differ.  Deterministic
    families with known verdicts (cliques, odd cycles) plus random
    G(n, p) graphs. *)

open Berkmin_types

type graph = {
  vertices : int;
  edges : (int * int) list;
}

val encode : graph -> colors:int -> Cnf.t

val clique : int -> graph

val cycle : int -> graph

val random_graph : vertices:int -> edge_prob:float -> seed:int -> graph

val clique_instance : int -> colors:int -> Instance.t
(** SAT iff [colors >= n]. *)

val cycle_instance : int -> colors:int -> Instance.t
(** A cycle is 2-colorable iff even; always 3-colorable (n >= 3). *)

val random_instance :
  vertices:int -> edge_prob:float -> colors:int -> seed:int -> Instance.t
(** Verdict unknown. *)
