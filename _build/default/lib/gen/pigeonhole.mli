(** Pigeonhole-principle formulas (the DIMACS Hole class).

    [php p h] states that [p] pigeons fit into [h] holes with at most
    one pigeon per hole: UNSAT iff [p > h].  These are the canonical
    hard instances for resolution-based solvers — exponential lower
    bounds are known — which is why the paper's Hole class is the one
    where learning buys the least. *)

open Berkmin_types

val php : int -> int -> Cnf.t
(** Variable [(p * holes) + h] means pigeon [p] sits in hole [h]. *)

val instance : int -> int -> Instance.t
(** Named [hole_p_h], expectation derived from the counts. *)

val suite : max:int -> Instance.t list
(** The paper-style class: [php (n+1) n] for [n = 4 .. max]. *)
