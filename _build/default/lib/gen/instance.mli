(** A benchmark instance: a formula with a name and, when the
    construction guarantees it, the expected verdict. *)

open Berkmin_types

type expected =
  | Expect_sat
  | Expect_unsat
  | Expect_any  (** construction does not fix satisfiability *)

type t = {
  name : string;
  cnf : Cnf.t;
  expected : expected;
}

val make : string -> expected -> Cnf.t -> t

val expected_to_string : expected -> string

val consistent : t -> sat:bool -> bool
(** Whether verdict [sat] agrees with the expectation. *)
