open Berkmin_types

let php pigeons holes =
  if pigeons < 1 || holes < 1 then invalid_arg "Pigeonhole.php";
  let cnf = Cnf.create ~num_vars:(pigeons * holes) () in
  let var p h = (p * holes) + h in
  (* Every pigeon sits somewhere. *)
  for p = 0 to pigeons - 1 do
    Cnf.add_clause cnf (List.init holes (fun h -> Lit.pos (var p h)))
  done;
  (* No two pigeons share a hole. *)
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Cnf.add_clause cnf [ Lit.neg_of (var p1 h); Lit.neg_of (var p2 h) ]
      done
    done
  done;
  cnf

let instance pigeons holes =
  let expected =
    if pigeons > holes then Instance.Expect_unsat else Instance.Expect_sat
  in
  Instance.make (Printf.sprintf "hole_%d_%d" pigeons holes) expected
    (php pigeons holes)

let suite ~max =
  List.init (Stdlib.max 0 (max - 3)) (fun i ->
      let n = i + 4 in
      instance (n + 1) n)
