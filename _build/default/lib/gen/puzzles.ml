open Berkmin_types

(* ------------------------------------------------------------------ *)
(* N-queens                                                            *)

let queens n =
  if n < 1 then invalid_arg "Puzzles.queens";
  let cnf = Cnf.create ~num_vars:(n * n) () in
  let v r c = (r * n) + c in
  let at_most_one cells =
    let arr = Array.of_list cells in
    for i = 0 to Array.length arr - 1 do
      for j = i + 1 to Array.length arr - 1 do
        Cnf.add_clause cnf [ Lit.neg_of arr.(i); Lit.neg_of arr.(j) ]
      done
    done
  in
  (* One queen per row. *)
  for r = 0 to n - 1 do
    Cnf.add_clause cnf (List.init n (fun c -> Lit.pos (v r c)));
    at_most_one (List.init n (v r))
  done;
  (* At most one per column. *)
  for c = 0 to n - 1 do
    at_most_one (List.init n (fun r -> v r c))
  done;
  (* Diagonals. *)
  let cells = List.concat (List.init n (fun r -> List.init n (fun c -> (r, c)))) in
  let diag key =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (r, c) ->
        Hashtbl.replace tbl (key r c)
          (v r c :: Option.value ~default:[] (Hashtbl.find_opt tbl (key r c))))
      cells;
    Hashtbl.iter (fun _ group -> at_most_one group) tbl
  in
  diag (fun r c -> r - c);
  diag (fun r c -> r + c);
  cnf

let queens_instance n =
  let expected =
    if n = 1 || n >= 4 then Instance.Expect_sat
    else Instance.Expect_unsat
  in
  Instance.make (Printf.sprintf "queens%d" n) expected (queens n)

let decode_queens n model =
  Array.init n (fun r ->
      let rec find c =
        if c >= n then -1 else if model.((r * n) + c) then c else find (c + 1)
      in
      find 0)

let valid_queens n placement =
  Array.length placement = n
  && Array.for_all (fun c -> c >= 0 && c < n) placement
  && begin
       let ok = ref true in
       for r1 = 0 to n - 1 do
         for r2 = r1 + 1 to n - 1 do
           let c1 = placement.(r1) and c2 = placement.(r2) in
           if c1 = c2 || abs (c1 - c2) = r2 - r1 then ok := false
         done
       done;
       !ok
     end

(* ------------------------------------------------------------------ *)
(* Sudoku                                                              *)

let sudoku_var r c d = (((r * 9) + c) * 9) + (d - 1)

let sudoku ?(givens = []) () =
  let cnf = Cnf.create ~num_vars:729 () in
  let at_most_one cells =
    let arr = Array.of_list cells in
    for i = 0 to Array.length arr - 1 do
      for j = i + 1 to Array.length arr - 1 do
        Cnf.add_clause cnf [ Lit.neg_of arr.(i); Lit.neg_of arr.(j) ]
      done
    done
  in
  (* Each cell holds exactly one digit. *)
  for r = 0 to 8 do
    for c = 0 to 8 do
      Cnf.add_clause cnf (List.init 9 (fun i -> Lit.pos (sudoku_var r c (i + 1))));
      at_most_one (List.init 9 (fun i -> sudoku_var r c (i + 1)))
    done
  done;
  (* Each digit once per row, column and box. *)
  for d = 1 to 9 do
    for r = 0 to 8 do
      at_most_one (List.init 9 (fun c -> sudoku_var r c d))
    done;
    for c = 0 to 8 do
      at_most_one (List.init 9 (fun r -> sudoku_var r c d))
    done;
    for box = 0 to 8 do
      let r0 = 3 * (box / 3) and c0 = 3 * (box mod 3) in
      at_most_one
        (List.init 9 (fun i -> sudoku_var (r0 + (i / 3)) (c0 + (i mod 3)) d))
    done
  done;
  List.iter
    (fun (r, c, d) ->
      if r < 0 || r > 8 || c < 0 || c > 8 || d < 1 || d > 9 then
        invalid_arg "Puzzles.sudoku: clue out of range";
      Cnf.add_clause cnf [ Lit.pos (sudoku_var r c d) ])
    givens;
  cnf

let sudoku_instance ?(givens = []) ~name () =
  let expected =
    if givens = [] then Instance.Expect_sat else Instance.Expect_any
  in
  Instance.make name expected (sudoku ~givens ())

let decode_sudoku model =
  Array.init 9 (fun r ->
      Array.init 9 (fun c ->
          let rec find d =
            if d > 9 then 0
            else if model.(sudoku_var r c d) then d
            else find (d + 1)
          in
          find 1))

let valid_sudoku grid =
  let group_ok cells =
    let seen = Array.make 10 false in
    List.for_all
      (fun (r, c) ->
        let d = grid.(r).(c) in
        d >= 1 && d <= 9
        && if seen.(d) then false
           else begin
             seen.(d) <- true;
             true
           end)
      cells
  in
  let idx = List.init 9 (fun i -> i) in
  List.for_all (fun r -> group_ok (List.map (fun c -> (r, c)) idx)) idx
  && List.for_all (fun c -> group_ok (List.map (fun r -> (r, c)) idx)) idx
  && List.for_all
       (fun box ->
         let r0 = 3 * (box / 3) and c0 = 3 * (box mod 3) in
         group_ok (List.map (fun i -> (r0 + (i / 3), c0 + (i mod 3))) idx))
       idx
