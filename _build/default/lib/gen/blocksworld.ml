open Berkmin_types

(* Positions: blocks 0..B-1 and the table, encoded as B. *)

type layout = {
  blocks : int;
  horizon : int;
  actions : (int * int * int) array;  (* (x, from, to) templates *)
  clear_base : int;
  move_base : int;
}

let layout ~blocks ~horizon =
  let positions = blocks + 1 in
  let actions =
    Array.of_list
      (List.concat_map
         (fun x ->
           List.concat_map
             (fun f ->
               if f = x then []
               else
                 List.filter_map
                   (fun dst ->
                     if dst = x || dst = f then None else Some (x, f, dst))
                   (List.init positions (fun i -> i)))
             (List.init positions (fun i -> i)))
         (List.init blocks (fun i -> i)))
  in
  let on_count = (horizon + 1) * blocks * positions in
  {
    blocks;
    horizon;
    actions;
    clear_base = on_count;
    move_base = on_count + ((horizon + 1) * blocks);
  }

let table l = l.blocks

let on_var l x y t =
  (t * l.blocks * (l.blocks + 1)) + (x * (l.blocks + 1)) + y

let clear_var l y t = l.clear_base + (t * l.blocks) + y

let move_var l idx t = l.move_base + (t * Array.length l.actions) + idx

let num_vars l = l.move_base + (l.horizon * Array.length l.actions)

let encode ~blocks ~horizon =
  if blocks < 2 then invalid_arg "Blocksworld.encode: blocks < 2";
  if horizon < 0 then invalid_arg "Blocksworld.encode: horizon < 0";
  let l = layout ~blocks ~horizon in
  let cnf = Cnf.create ~num_vars:(num_vars l) () in
  let positions = blocks + 1 in
  let on x y t = Lit.pos (on_var l x y t) in
  let not_on x y t = Lit.neg_of (on_var l x y t) in
  let clear y t = Lit.pos (clear_var l y t) in
  let not_clear y t = Lit.neg_of (clear_var l y t) in
  let mv i t = Lit.pos (move_var l i t) in
  let not_mv i t = Lit.neg_of (move_var l i t) in
  for t = 0 to horizon do
    for x = 0 to blocks - 1 do
      (* A block is never on itself. *)
      Cnf.add_clause cnf [ not_on x x t ];
      (* Each block sits on exactly one position. *)
      Cnf.add_clause cnf
        (List.filter_map
           (fun y -> if y = x then None else Some (on x y t))
           (List.init positions (fun i -> i)));
      for y1 = 0 to positions - 1 do
        for y2 = y1 + 1 to positions - 1 do
          if y1 <> x && y2 <> x then
            Cnf.add_clause cnf [ not_on x y1 t; not_on x y2 t ]
        done
      done
    done;
    (* At most one block directly on any block. *)
    for y = 0 to blocks - 1 do
      for x1 = 0 to blocks - 1 do
        for x2 = x1 + 1 to blocks - 1 do
          Cnf.add_clause cnf [ not_on x1 y t; not_on x2 y t ]
        done
      done
    done;
    (* clear(y) <-> no block on y. *)
    for y = 0 to blocks - 1 do
      Cnf.add_clause cnf
        (clear y t :: List.init blocks (fun x -> on x y t));
      for x = 0 to blocks - 1 do
        Cnf.add_clause cnf [ not_on x y t; not_clear y t ]
      done
    done
  done;
  let n_actions = Array.length l.actions in
  for t = 0 to horizon - 1 do
    (* Exactly one action per step. *)
    Cnf.add_clause cnf (List.init n_actions (fun i -> mv i t));
    for i = 0 to n_actions - 1 do
      for j = i + 1 to n_actions - 1 do
        Cnf.add_clause cnf [ not_mv i t; not_mv j t ]
      done
    done;
    Array.iteri
      (fun i (x, f, dst) ->
        (* Preconditions. *)
        Cnf.add_clause cnf [ not_mv i t; on x f t ];
        Cnf.add_clause cnf [ not_mv i t; clear x t ];
        if dst <> table l then Cnf.add_clause cnf [ not_mv i t; clear dst t ];
        (* Effects. *)
        Cnf.add_clause cnf [ not_mv i t; on x dst (t + 1) ];
        Cnf.add_clause cnf [ not_mv i t; not_on x f (t + 1) ])
      l.actions;
    (* Explanatory frame axioms for every on(x, y) fluent. *)
    for x = 0 to blocks - 1 do
      for y = 0 to positions - 1 do
        if y <> x then begin
          let leaving = ref [] and arriving = ref [] in
          Array.iteri
            (fun i (x', f, dst) ->
              if x' = x && f = y then leaving := mv i t :: !leaving;
              if x' = x && dst = y then arriving := mv i t :: !arriving)
            l.actions;
          Cnf.add_clause cnf ([ not_on x y t; on x y (t + 1) ] @ !leaving);
          Cnf.add_clause cnf ([ on x y t; not_on x y (t + 1) ] @ !arriving)
        end
      done
    done
  done;
  (* Initial state: tower 0 on 1 on ... on (B-1) on table — fully
     specified. *)
  for x = 0 to blocks - 1 do
    let support = if x = blocks - 1 then table l else x + 1 in
    for y = 0 to positions - 1 do
      if y <> x then
        Cnf.add_clause cnf [ (if y = support then on x y 0 else not_on x y 0) ]
    done
  done;
  (* Goal: the reversed tower. *)
  for x = 0 to blocks - 1 do
    let support = if x = 0 then table l else x - 1 in
    Cnf.add_clause cnf [ on x support horizon ]
  done;
  cnf

let optimal_horizon blocks = blocks

let sat_instance blocks =
  Instance.make
    (Printf.sprintf "bw%d" blocks)
    Instance.Expect_sat
    (encode ~blocks ~horizon:(optimal_horizon blocks))

let unsat_instance blocks =
  Instance.make
    (Printf.sprintf "bw%d_short" blocks)
    Instance.Expect_unsat
    (encode ~blocks ~horizon:(optimal_horizon blocks - 1))

let suite ~max_blocks =
  List.concat
    (List.init
       (max 0 (max_blocks - 2))
       (fun i ->
         let n = i + 3 in
         [ sat_instance n; unsat_instance n ]))
