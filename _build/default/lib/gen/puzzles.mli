(** Classic puzzle encodings: N-queens and Sudoku.

    Not part of the paper's benchmark classes — included as friendly,
    verifiable workloads for examples and tests (both have easily
    checked models and known satisfiability). *)

open Berkmin_types

val queens : int -> Cnf.t
(** [queens n]: variable [(r * n) + c] places a queen on row [r],
    column [c]; one queen per row, at most one per column and
    diagonal.  SAT iff [n = 1] or [n >= 4]. *)

val queens_instance : int -> Instance.t

val decode_queens : int -> bool array -> int array
(** Column of the queen in each row. *)

val valid_queens : int -> int array -> bool
(** Checks a decoded placement. *)

val sudoku : ?givens:(int * int * int) list -> unit -> Cnf.t
(** 9x9 Sudoku: variable [(((r * 9) + c) * 9) + (d - 1)] means digit
    [d] in cell [(r, c)].  [givens] are [(row, col, digit)] clues
    (0-based rows/columns, digits 1-9).  With no clues: SAT.
    @raise Invalid_argument on out-of-range clues. *)

val sudoku_instance : ?givens:(int * int * int) list -> name:string -> unit -> Instance.t
(** Expectation [Expect_any] when clues are present (clues may be
    contradictory), [Expect_sat] otherwise. *)

val decode_sudoku : bool array -> int array array
(** 9x9 grid of digits from a model. *)

val valid_sudoku : int array array -> bool
(** Full Sudoku rules check on a decoded grid. *)
