open Berkmin_types

type expected =
  | Expect_sat
  | Expect_unsat
  | Expect_any

type t = {
  name : string;
  cnf : Cnf.t;
  expected : expected;
}

let make name expected cnf = { name; cnf; expected }

let expected_to_string = function
  | Expect_sat -> "SAT"
  | Expect_unsat -> "UNSAT"
  | Expect_any -> "?"

let consistent t ~sat =
  match t.expected with
  | Expect_any -> true
  | Expect_sat -> sat
  | Expect_unsat -> not sat
