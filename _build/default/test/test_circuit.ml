(* Tests for the gate-level circuit substrate: netlist construction and
   evaluation, word-level arithmetic against OCaml integer semantics,
   Tseitin encoding, miters, restructuring, fault injection and the
   pipeline generator. *)

module C = Berkmin_circuit.Circuit
module B = Berkmin_circuit.Bitvec
module T = Berkmin_circuit.Tseitin
module M = Berkmin_circuit.Miter
module R = Berkmin_circuit.Random_circuit
module P = Berkmin_circuit.Pipeline
open Berkmin_types

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Basic gates                                                         *)

let test_gate_truth_tables () =
  let cases =
    [
      ("and", C.and_, [| false; false; false; true |]);
      ("or", C.or_, [| false; true; true; true |]);
      ("xor", C.xor_, [| false; true; true; false |]);
      ("nand", C.nand, [| true; true; true; false |]);
      ("nor", C.nor, [| true; false; false; false |]);
      ("xnor", C.xnor, [| true; false; false; true |]);
      ("implies", C.implies, [| true; true; false; true |]);
    ]
  in
  List.iter
    (fun (name, gate, expect) ->
      let c = C.create () in
      let a = C.input c "a" and b = C.input c "b" in
      C.set_output c "o" (gate c a b);
      List.iteri
        (fun i (va, vb) ->
          let out = List.assoc "o" (C.eval_outputs c [| va; vb |]) in
          check Alcotest.bool (Printf.sprintf "%s %b %b" name va vb) expect.(i) out)
        [ (false, false); (false, true); (true, false); (true, true) ])
    cases

let test_not_const_mux () =
  let c = C.create () in
  let a = C.input c "a" and s = C.input c "s" in
  C.set_output c "not" (C.not_ c a);
  C.set_output c "t" (C.const c true);
  C.set_output c "mux" (C.mux c ~sel:s ~if_true:a ~if_false:(C.not_ c a));
  let outs v = C.eval_outputs c v in
  check Alcotest.bool "not" false (List.assoc "not" (outs [| true; false |]));
  check Alcotest.bool "const" true (List.assoc "t" (outs [| false; false |]));
  check Alcotest.bool "mux sel" true (List.assoc "mux" (outs [| true; true |]));
  check Alcotest.bool "mux !sel" false (List.assoc "mux" (outs [| true; false |]))

let test_many_gates () =
  let c = C.create () in
  let xs = Array.to_list (B.inputs c "x" 5) in
  C.set_output c "and" (C.and_many c xs);
  C.set_output c "or" (C.or_many c xs);
  C.set_output c "xor" (C.xor_many c xs);
  let v = [| true; true; false; true; true |] in
  let outs = C.eval_outputs c v in
  check Alcotest.bool "and_many" false (List.assoc "and" outs);
  check Alcotest.bool "or_many" true (List.assoc "or" outs);
  check Alcotest.bool "xor_many" false (List.assoc "xor" outs);
  (* Empty cases are constants. *)
  let c2 = C.create () in
  C.set_output c2 "t" (C.and_many c2 []);
  C.set_output c2 "f" (C.or_many c2 []);
  let outs2 = C.eval_outputs c2 [||] in
  check Alcotest.bool "and_many []" true (List.assoc "t" outs2);
  check Alcotest.bool "or_many []" false (List.assoc "f" outs2)

let test_bad_ids_rejected () =
  let c = C.create () in
  let a = C.input c "a" in
  Alcotest.check_raises "bad operand"
    (Invalid_argument "Circuit.and_: bad node id 99") (fun () ->
      ignore (C.and_ c a 99))

let test_import () =
  let src = C.create () in
  let a = C.input src "a" and b = C.input src "b" in
  C.set_output src "o" (C.xor_ src a b);
  let dst = C.create () in
  let x = C.input dst "x" and y = C.input dst "y" in
  let table = C.import dst src ~input_map:[| x; y |] in
  C.set_output dst "o" table.(C.output_exn src "o");
  check Alcotest.bool "imported xor" true
    (List.assoc "o" (C.eval_outputs dst [| true; false |]))

(* ------------------------------------------------------------------ *)
(* Word-level arithmetic vs integers                                   *)

let width = 6
let mask = (1 lsl width) - 1

let eval_binop build a_int b_int =
  let c = C.create () in
  let a = B.inputs c "a" width and b = B.inputs c "b" width in
  let result = build c a b in
  B.set_outputs c "r" result;
  let inputs =
    Array.append
      (Array.init width (fun i -> (a_int lsr i) land 1 = 1))
      (Array.init width (fun i -> (b_int lsr i) land 1 = 1))
  in
  let values = C.eval c inputs in
  B.to_int values result

let prop_arith name build semantics =
  QCheck.Test.make ~name ~count:200
    QCheck.(pair (int_range 0 mask) (int_range 0 mask))
    (fun (x, y) -> eval_binop build x y = semantics x y land mask)

let prop_ripple_add =
  prop_arith "bitvec: ripple add = (+)"
    (fun c a b -> fst (B.ripple_carry_add c a b))
    ( + )

let prop_carry_select_add =
  prop_arith "bitvec: carry-select add = (+)"
    (fun c a b -> fst (B.carry_select_add c ~block:3 a b))
    ( + )

let prop_subtract =
  prop_arith "bitvec: subtract = (-)"
    (fun c a b -> fst (B.subtract c a b))
    ( - )

let prop_multiply =
  prop_arith "bitvec: multiplier = ( * )"
    (fun c a b -> B.mul_const_width c a b)
    ( * )

let prop_bitwise_ops =
  QCheck.Test.make ~name:"bitvec: and/or/xor/not" ~count:100
    QCheck.(pair (int_range 0 mask) (int_range 0 mask))
    (fun (x, y) ->
      eval_binop B.and_bv x y = x land y
      && eval_binop B.or_bv x y = x lor y
      && eval_binop B.xor_bv x y = x lxor y
      && eval_binop (fun c a _ -> B.not_bv c a) x y = lnot x land mask)

let prop_comparators =
  QCheck.Test.make ~name:"bitvec: eq and less_than" ~count:200
    QCheck.(pair (int_range 0 mask) (int_range 0 mask))
    (fun (x, y) ->
      let c = C.create () in
      let a = B.inputs c "a" width and b = B.inputs c "b" width in
      C.set_output c "eq" (B.equal_bv c a b);
      C.set_output c "lt" (B.less_than c a b);
      let inputs =
        Array.append
          (Array.init width (fun i -> (x lsr i) land 1 = 1))
          (Array.init width (fun i -> (y lsr i) land 1 = 1))
      in
      let outs = C.eval_outputs c inputs in
      List.assoc "eq" outs = (x = y) && List.assoc "lt" outs = (x < y))

let prop_negate =
  QCheck.Test.make ~name:"bitvec: negate = two's complement" ~count:100
    QCheck.(int_range 0 mask)
    (fun x ->
      eval_binop (fun c a _ -> B.negate_bv c a) x 0 = -x land mask)

let prop_shift =
  QCheck.Test.make ~name:"bitvec: shift_left_const" ~count:100
    QCheck.(pair (int_range 0 mask) (int_range 0 (width - 1)))
    (fun (x, k) ->
      eval_binop (fun c a _ -> B.shift_left_const c a k) x 0
      = (x lsl k) land mask)

let prop_mux_bv =
  QCheck.Test.make ~name:"bitvec: mux_bv selects" ~count:100
    QCheck.(triple bool (int_range 0 mask) (int_range 0 mask))
    (fun (sel, x, y) ->
      let c = C.create () in
      let s = C.input c "s" in
      let a = B.inputs c "a" width and b = B.inputs c "b" width in
      let r = B.mux_bv c ~sel:s ~if_true:a ~if_false:b in
      B.set_outputs c "r" r;
      let inputs =
        Array.concat
          [
            [| sel |];
            Array.init width (fun i -> (x lsr i) land 1 = 1);
            Array.init width (fun i -> (y lsr i) land 1 = 1);
          ]
      in
      let values = C.eval c inputs in
      B.to_int values r = if sel then x else y)

let test_const_int () =
  let c = C.create () in
  let bv = B.const_int c ~width:8 173 in
  B.set_outputs c "k" bv;
  let values = C.eval c [||] in
  Alcotest.(check int) "constant value" 173 (B.to_int values bv)

let test_width_mismatch_rejected () =
  let c = C.create () in
  let a = B.inputs c "a" 4 and b = B.inputs c "b" 5 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bitvec.ripple_carry_add: width mismatch (4 vs 5)")
    (fun () -> ignore (B.ripple_carry_add c a b))

let prop_alu =
  QCheck.Test.make ~name:"bitvec: alu matches op semantics" ~count:200
    QCheck.(
      triple (int_range 0 4) (int_range 0 mask) (int_range 0 mask))
    (fun (op, x, y) ->
      let c = C.create () in
      let sel = B.inputs c "op" 3 in
      let a = B.inputs c "a" width and b = B.inputs c "b" width in
      B.set_outputs c "r" (B.alu c ~op_sel:sel a b);
      let bits n w = Array.init w (fun i -> (n lsr i) land 1 = 1) in
      let inputs = Array.concat [ bits op 3; bits x width; bits y width ] in
      let values = C.eval c inputs in
      let r =
        B.to_int values
          (Array.init width (fun i ->
               C.output_exn c (Printf.sprintf "r.%d" i)))
      in
      let expected =
        match op with
        | 0 -> (x + y) land mask
        | 1 -> (x - y) land mask
        | 2 -> x land y
        | 3 -> x lor y
        | _ -> x lxor y
      in
      r = expected)

(* ------------------------------------------------------------------ *)
(* Tseitin                                                             *)

let solve cnf = Berkmin.Solver.solve_cnf cnf

let prop_tseitin_faithful =
  (* Forcing the inputs to a random vector and the output to the
     simulated value must be SAT; to the opposite value, UNSAT. *)
  QCheck.Test.make ~name:"tseitin: encodes the simulated function" ~count:50
    QCheck.(pair small_int small_int)
    (fun (seed, vec_seed) ->
      let circuit =
        R.generate ~num_inputs:5 ~num_gates:30 ~num_outputs:1 ~seed:(seed + 1)
      in
      let rng = Rng.create (vec_seed + 1) in
      let inputs = Array.init 5 (fun _ -> Rng.bool rng) in
      let out_value = List.assoc "o0" (C.eval_outputs circuit inputs) in
      let build force =
        let m = T.encode circuit in
        T.assert_output circuit m "o0" force;
        let in_vars = T.input_vars circuit m in
        Array.iteri
          (fun i v ->
            Cnf.add_clause m.T.cnf
              [ (if inputs.(i) then Lit.pos v else Lit.neg_of v) ])
          in_vars;
        m.T.cnf
      in
      let sat_result = solve (build out_value) in
      let unsat_result = solve (build (not out_value)) in
      (match sat_result with Berkmin.Solver.Sat _ -> true | _ -> false)
      && (match unsat_result with Berkmin.Solver.Unsat -> true | _ -> false))

let test_tseitin_counts () =
  let c = C.create () in
  let a = C.input c "a" and b = C.input c "b" in
  C.set_output c "o" (C.and_ c a b);
  let m = T.encode c in
  check Alcotest.int "3 clauses for one AND" 3 (Cnf.num_clauses m.T.cnf);
  check Alcotest.int "one var per node" (C.num_nodes c) (Cnf.num_vars m.T.cnf)

(* ------------------------------------------------------------------ *)
(* Miters / restructure / fault injection                              *)

let test_miter_arity_mismatch () =
  let c1 = C.create () in
  ignore (C.input c1 "a");
  C.set_output c1 "o" (C.const c1 true);
  let c2 = C.create () in
  C.set_output c2 "o" (C.const c2 true);
  Alcotest.check_raises "arity" (Invalid_argument "Miter.build: input arity mismatch")
    (fun () -> ignore (M.build c1 c2))

let test_miter_equivalent_unsat () =
  (* x ^ y built two ways. *)
  let direct = C.create () in
  let a = C.input direct "a" and b = C.input direct "b" in
  C.set_output direct "o" (C.xor_ direct a b);
  let via_andor = C.create () in
  let a2 = C.input via_andor "a" and b2 = C.input via_andor "b" in
  C.set_output via_andor "o"
    (C.and_ via_andor
       (C.or_ via_andor a2 b2)
       (C.nand via_andor a2 b2));
  match solve (M.to_cnf direct via_andor) with
  | Berkmin.Solver.Unsat -> ()
  | _ -> Alcotest.fail "equivalent circuits must give UNSAT miter"

let test_miter_inequivalent_sat () =
  let c1 = C.create () in
  let a = C.input c1 "a" and b = C.input c1 "b" in
  C.set_output c1 "o" (C.and_ c1 a b);
  let c2 = C.create () in
  let a2 = C.input c2 "a" and b2 = C.input c2 "b" in
  C.set_output c2 "o" (C.or_ c2 a2 b2);
  match solve (M.to_cnf c1 c2) with
  | Berkmin.Solver.Sat _ -> ()
  | _ -> Alcotest.fail "and vs or must differ"

let prop_restructure_equivalent =
  QCheck.Test.make ~name:"restructure: simulation agrees" ~count:40
    QCheck.small_int
    (fun seed ->
      let c = R.generate ~num_inputs:6 ~num_gates:40 ~num_outputs:3 ~seed in
      let r = R.restructure c in
      let rng = Rng.create (seed + 77) in
      let ok = ref true in
      for _ = 1 to 32 do
        let inputs = Array.init 6 (fun _ -> Rng.bool rng) in
        if C.eval_outputs c inputs <> C.eval_outputs r inputs then ok := false
      done;
      !ok)

let prop_restructure_unsat_miter =
  QCheck.Test.make ~name:"restructure: miter UNSAT by solver" ~count:10
    QCheck.small_int
    (fun seed ->
      let c = R.generate ~num_inputs:5 ~num_gates:25 ~num_outputs:2 ~seed in
      match solve (M.to_cnf c (R.restructure c)) with
      | Berkmin.Solver.Unsat -> true
      | _ -> false)

let test_fault_changes_netlist () =
  let c = R.generate ~num_inputs:5 ~num_gates:30 ~num_outputs:2 ~seed:3 in
  let f = R.inject_fault c ~seed:4 in
  check Alcotest.int "same node count" (C.num_nodes c) (C.num_nodes f);
  let differs = ref false in
  for id = 0 to C.num_nodes c - 1 do
    if C.node c id <> C.node f id then differs := true
  done;
  check Alcotest.bool "one gate flipped" true !differs

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)

let pipeline_inputs (p : P.params) rng =
  let idx_bits =
    let rec log2 k acc = if 1 lsl acc >= k then acc else log2 k (acc + 1) in
    max 1 (log2 p.P.num_regs 0)
  in
  let n = (p.P.num_regs * p.P.width) + (p.P.stages * (3 + (3 * idx_bits))) in
  Array.init n (fun _ -> Rng.bool rng)

let prop_pipeline_spec_equals_impl =
  QCheck.Test.make ~name:"pipeline: spec = impl on random programs" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (stages, width) ->
      let p = { P.stages; num_regs = 4; width } in
      let spec = P.specification p and impl = P.implementation p in
      let rng = Rng.create (Hashtbl.hash (stages, width)) in
      let ok = ref true in
      for _ = 1 to 24 do
        let inputs = pipeline_inputs p rng in
        if C.eval_outputs spec inputs <> C.eval_outputs impl inputs then
          ok := false
      done;
      !ok)

let test_pipeline_buggy_differs () =
  (* The inverted-priority bug needs two writes to the same register
     followed by a read; 3 stages suffice to expose it. *)
  let p = { P.stages = 3; num_regs = 4; width = 2 } in
  let spec = P.specification p and buggy = P.buggy_implementation p in
  match M.check_by_simulation ~samples:4096 ~seed:5 spec buggy with
  | M.Counterexample _ -> ()
  | M.Equivalent -> Alcotest.fail "bug not exposed by simulation"

let test_pipeline_miters_by_solver () =
  let p = { P.stages = 2; num_regs = 4; width = 2 } in
  (match solve (P.unsat_miter p) with
  | Berkmin.Solver.Unsat -> ()
  | _ -> Alcotest.fail "correct pipeline must verify");
  let p3 = { P.stages = 3; num_regs = 4; width = 2 } in
  match solve (P.sat_miter p3) with
  | Berkmin.Solver.Sat _ -> ()
  | _ -> Alcotest.fail "buggy pipeline must be caught"

let test_pipeline_params_validated () =
  Alcotest.check_raises "stages" (Invalid_argument "Pipeline: stages must be >= 1")
    (fun () -> ignore (P.specification { P.stages = 0; num_regs = 4; width = 2 }));
  Alcotest.check_raises "regs"
    (Invalid_argument "Pipeline: num_regs must be a power of two >= 2")
    (fun () -> ignore (P.specification { P.stages = 1; num_regs = 3; width = 2 }))

let () =
  Alcotest.run "circuit"
    [
      ( "gates",
        [
          Alcotest.test_case "truth tables" `Quick test_gate_truth_tables;
          Alcotest.test_case "not/const/mux" `Quick test_not_const_mux;
          Alcotest.test_case "and_many/or_many/xor_many" `Quick test_many_gates;
          Alcotest.test_case "bad ids" `Quick test_bad_ids_rejected;
          Alcotest.test_case "import" `Quick test_import;
        ] );
      ( "bitvec",
        [
          qtest prop_ripple_add;
          qtest prop_carry_select_add;
          qtest prop_subtract;
          qtest prop_multiply;
          qtest prop_bitwise_ops;
          qtest prop_comparators;
          qtest prop_negate;
          qtest prop_shift;
          qtest prop_mux_bv;
          Alcotest.test_case "const_int" `Quick test_const_int;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch_rejected;
          qtest prop_alu;
        ] );
      ( "tseitin",
        [
          Alcotest.test_case "clause counts" `Quick test_tseitin_counts;
          qtest prop_tseitin_faithful;
        ] );
      ( "miter",
        [
          Alcotest.test_case "arity mismatch" `Quick test_miter_arity_mismatch;
          Alcotest.test_case "equivalent -> UNSAT" `Quick test_miter_equivalent_unsat;
          Alcotest.test_case "inequivalent -> SAT" `Quick test_miter_inequivalent_sat;
          qtest prop_restructure_equivalent;
          qtest prop_restructure_unsat_miter;
          Alcotest.test_case "fault changes netlist" `Quick test_fault_changes_netlist;
        ] );
      ( "pipeline",
        [
          qtest prop_pipeline_spec_equals_impl;
          Alcotest.test_case "buggy differs" `Quick test_pipeline_buggy_differs;
          Alcotest.test_case "miters by solver" `Quick test_pipeline_miters_by_solver;
          Alcotest.test_case "params validated" `Quick test_pipeline_params_validated;
        ] );
    ]
