(* Unit and property tests for the base types library: Lit, Value, Vec,
   Rng, Clause, Cnf. *)

open Berkmin_types

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Lit                                                                 *)

let test_lit_encoding () =
  check Alcotest.int "pos 0" 0 (Lit.pos 0);
  check Alcotest.int "neg 0" 1 (Lit.neg_of 0);
  check Alcotest.int "pos 5" 10 (Lit.pos 5);
  check Alcotest.int "neg 5" 11 (Lit.neg_of 5);
  check Alcotest.int "var of pos" 5 (Lit.var (Lit.pos 5));
  check Alcotest.int "var of neg" 5 (Lit.var (Lit.neg_of 5));
  check Alcotest.bool "is_pos pos" true (Lit.is_pos (Lit.pos 3));
  check Alcotest.bool "is_pos neg" false (Lit.is_pos (Lit.neg_of 3))

let test_lit_negate () =
  check Alcotest.int "negate pos" (Lit.neg_of 7) (Lit.negate (Lit.pos 7));
  check Alcotest.int "negate neg" (Lit.pos 7) (Lit.negate (Lit.neg_of 7));
  check Alcotest.int "double negate" (Lit.pos 7)
    (Lit.negate (Lit.negate (Lit.pos 7)))

let test_lit_dimacs () =
  check Alcotest.int "of_dimacs 1" (Lit.pos 0) (Lit.of_dimacs 1);
  check Alcotest.int "of_dimacs -1" (Lit.neg_of 0) (Lit.of_dimacs (-1));
  check Alcotest.int "of_dimacs 42" (Lit.pos 41) (Lit.of_dimacs 42);
  check Alcotest.int "to_dimacs" (-13) (Lit.to_dimacs (Lit.neg_of 12));
  check Alcotest.string "to_string" "-3" (Lit.to_string (Lit.neg_of 2));
  Alcotest.check_raises "of_dimacs 0" (Invalid_argument "Lit.of_dimacs: zero")
    (fun () -> ignore (Lit.of_dimacs 0))

let test_lit_make () =
  check Alcotest.int "make true" (Lit.pos 4) (Lit.make 4 true);
  check Alcotest.int "make false" (Lit.neg_of 4) (Lit.make 4 false);
  Alcotest.check_raises "make negative"
    (Invalid_argument "Lit.make: negative variable") (fun () ->
      ignore (Lit.make (-1) true))

let prop_lit_dimacs_roundtrip =
  QCheck.Test.make ~name:"lit: dimacs roundtrip" ~count:500
    QCheck.(map (fun (v, s) -> (abs v mod 10000, s)) (pair int bool))
    (fun (v, s) ->
      let l = Lit.make v s in
      Lit.of_dimacs (Lit.to_dimacs l) = l)

(* ------------------------------------------------------------------ *)
(* Value                                                               *)

let test_value () =
  check Alcotest.bool "negate involutive" true
    (List.for_all
       (fun v -> Value.equal v (Value.negate (Value.negate v)))
       [ Value.True; Value.False; Value.Unassigned ]);
  check Alcotest.bool "of_bool true" true (Value.equal Value.True (Value.of_bool true));
  check
    (Alcotest.option Alcotest.bool)
    "to_bool unassigned" None
    (Value.to_bool Value.Unassigned);
  check Alcotest.bool "is_assigned" false (Value.is_assigned Value.Unassigned);
  check Alcotest.bool "is_assigned t" true (Value.is_assigned Value.True)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)

let test_vec_push_pop () =
  let v = Vec.create ~dummy:(-1) () in
  check Alcotest.bool "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get 42" 42 (Vec.get v 42);
  check Alcotest.int "last" 99 (Vec.last v);
  check Alcotest.int "pop" 99 (Vec.pop v);
  check Alcotest.int "length after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] ~dummy:0 in
  Alcotest.check_raises "get oob"
    (Invalid_argument "Vec.get: index 3 out of bounds [0,3)") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "set oob"
    (Invalid_argument "Vec.set: index -1 out of bounds [0,3)") (fun () ->
      Vec.set v (-1) 9)

let test_vec_shrink_clear () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] ~dummy:0 in
  Vec.shrink v 2;
  check (Alcotest.list Alcotest.int) "shrink" [ 1; 2 ] (Vec.to_list v);
  Vec.clear v;
  check Alcotest.int "clear" 0 (Vec.length v);
  Vec.push v 7;
  check (Alcotest.list Alcotest.int) "push after clear" [ 7 ] (Vec.to_list v)

let test_vec_swap_remove () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] ~dummy:0 in
  Vec.swap_remove v 1;
  check (Alcotest.list Alcotest.int) "swap_remove middle" [ 10; 40; 30 ]
    (Vec.to_list v);
  Vec.swap_remove v 2;
  check (Alcotest.list Alcotest.int) "swap_remove last" [ 10; 40 ]
    (Vec.to_list v)

let test_vec_filter_in_place () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5; 6 ] ~dummy:0 in
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  check (Alcotest.list Alcotest.int) "filter keeps order" [ 2; 4; 6 ]
    (Vec.to_list v)

let test_vec_iterators () =
  let v = Vec.of_list [ 1; 2; 3 ] ~dummy:0 in
  check Alcotest.int "fold sum" 6 (Vec.fold ( + ) 0 v);
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 2) v);
  check Alcotest.bool "for_all" false (Vec.for_all (fun x -> x > 1) v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check Alcotest.int "iteri count" 3 (List.length !acc)

let prop_vec_model =
  (* Vec push/pop behaves like a list model under a random op script. *)
  QCheck.Test.make ~name:"vec: list model" ~count:300
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let v = Vec.create ~dummy:(-1) () in
      let model = ref [] in
      List.iter
        (fun (is_push, x) ->
          if is_push then begin
            Vec.push v x;
            model := x :: !model
          end
          else if not (Vec.is_empty v) then begin
            let got = Vec.pop v in
            match !model with
            | top :: rest ->
              if got <> top then QCheck.Test.fail_report "pop mismatch";
              model := rest
            | [] -> QCheck.Test.fail_report "model empty"
          end)
        ops;
      Vec.to_list v = List.rev !model)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  check (Alcotest.list Alcotest.int) "same seed, same stream" xs ys

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
  check Alcotest.bool "different seeds diverge" true (xs <> ys)

let test_rng_zero_seed () =
  let r = Rng.create 0 in
  (* Must not get stuck at zero. *)
  let all_zero = List.for_all (fun x -> x = 0) (List.init 10 (fun _ -> Rng.int r 100)) in
  check Alcotest.bool "zero seed works" false all_zero

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    if x < 0 || x >= 10 then Alcotest.fail "Rng.int out of bounds"
  done;
  for _ = 1 to 100 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "Rng.float out of bounds"
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_shuffle_permutes () =
  let r = Rng.create 9 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "shuffle is a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  check Alcotest.int "copy continues identically" (Rng.int a 1000) (Rng.int b 1000)

(* ------------------------------------------------------------------ *)
(* Clause                                                              *)

let cl lits = Clause.of_list (List.map Lit.of_dimacs lits)

let test_clause_normalisation () =
  check Alcotest.int "dedup" 2 (Clause.length (cl [ 1; 1; 2; 2; 2 ]));
  check Alcotest.bool "sorted" true
    (Clause.to_list (cl [ 3; -1; 2 ])
    = List.sort compare (List.map Lit.of_dimacs [ 3; -1; 2 ]));
  check Alcotest.bool "empty" true (Clause.is_empty (cl []))

let test_clause_tautology () =
  check Alcotest.bool "x or -x" true (Clause.is_tautology (cl [ 1; -1 ]));
  check Alcotest.bool "with extras" true (Clause.is_tautology (cl [ 2; 1; -1; 3 ]));
  check Alcotest.bool "no taut" false (Clause.is_tautology (cl [ 1; 2; -3 ]))

let test_clause_resolve () =
  (* (c ∨ d) and (c ∨ ¬d ∨ x) resolve on d to (c ∨ x) — the paper's
     Section 2 example. *)
  let c = Lit.var (Lit.of_dimacs 1) in
  ignore c;
  let r = Clause.resolve (cl [ 1; 2 ]) (cl [ 1; -2; 3 ]) (Lit.var (Lit.of_dimacs 2)) in
  (match r with
  | Some res ->
    check Alcotest.bool "resolvent" true (Clause.equal res (cl [ 1; 3 ]))
  | None -> Alcotest.fail "expected clash");
  check Alcotest.bool "no clash" true
    (Clause.resolve (cl [ 1; 2 ]) (cl [ 1; 3 ]) (Lit.var (Lit.of_dimacs 2)) = None);
  (* Both phases in both clauses: not a proper clash. *)
  check Alcotest.bool "double clash rejected" true
    (Clause.resolve (cl [ 2; -2; 1 ]) (cl [ 2; -2; 3 ]) (Lit.var (Lit.of_dimacs 2)) = None)

let test_clause_subsumes () =
  check Alcotest.bool "subset" true (Clause.subsumes (cl [ 1; 3 ]) (cl [ 1; 2; 3 ]));
  check Alcotest.bool "equal" true (Clause.subsumes (cl [ 1; 2 ]) (cl [ 1; 2 ]));
  check Alcotest.bool "not subset" false (Clause.subsumes (cl [ 1; 4 ]) (cl [ 1; 2; 3 ]));
  check Alcotest.bool "empty subsumes" true (Clause.subsumes (cl []) (cl [ 5 ]))

let test_clause_eval () =
  let valuation = function
    | 0 -> Value.True
    | 1 -> Value.False
    | _ -> Value.Unassigned
  in
  check Alcotest.bool "sat by pos" true
    (Value.equal Value.True (Clause.eval valuation (cl [ 1; 2 ])));
  check Alcotest.bool "sat by neg" true
    (Value.equal Value.True (Clause.eval valuation (cl [ -2; 3 ])));
  check Alcotest.bool "false" true
    (Value.equal Value.False (Clause.eval valuation (cl [ -1; 2 ])));
  check Alcotest.bool "unassigned" true
    (Value.equal Value.Unassigned (Clause.eval valuation (cl [ -1; 3 ])))

let test_clause_max_var () =
  check Alcotest.int "max var" 41 (Clause.max_var (cl [ 1; -42; 7 ]));
  check Alcotest.int "empty max var" (-1) (Clause.max_var (cl []))

let prop_resolvent_implied =
  (* Any model of both parents satisfies the resolvent. *)
  QCheck.Test.make ~name:"clause: resolvent is implied" ~count:300
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 5) (int_range 1 6))
        (list_of_size Gen.(1 -- 5) (int_range 1 6))
        (array_of_size (Gen.return 6) bool))
    (fun (raw1, raw2, model) ->
      let rng = Rng.create (Hashtbl.hash (raw1, raw2)) in
      let sign v = if Rng.bool rng then v else -v in
      let c1 = cl (List.map sign raw1 @ [ 2 ]) in
      let c2 = cl (List.map sign raw2 @ [ -2 ]) in
      match Clause.resolve c1 c2 1 with
      | None -> true
      | Some res ->
        let valuation v = Value.of_bool model.(v) in
        let sat c = Value.equal Value.True (Clause.eval valuation c) in
        (not (sat c1 && sat c2)) || sat res || Clause.is_tautology res)

(* ------------------------------------------------------------------ *)
(* Cnf                                                                 *)

let test_cnf_builder () =
  let cnf = Cnf.create () in
  let a = Cnf.fresh_var cnf in
  let b = Cnf.fresh_var cnf in
  check Alcotest.int "fresh vars" 2 (Cnf.num_vars cnf);
  Cnf.add_clause cnf [ Lit.pos a; Lit.neg_of b ];
  check Alcotest.int "clauses" 1 (Cnf.num_clauses cnf);
  Cnf.add_clause cnf [ Lit.pos 10 ];
  check Alcotest.int "grows vars" 11 (Cnf.num_vars cnf);
  check Alcotest.int "literal count" 3 (Cnf.num_literals cnf)

let test_cnf_eval () =
  let cnf = Cnf.create ~num_vars:2 () in
  Cnf.add_clause cnf [ Lit.pos 0; Lit.pos 1 ];
  Cnf.add_clause cnf [ Lit.neg_of 0 ];
  check Alcotest.bool "sat" true (Cnf.satisfied_by cnf [| false; true |]);
  check Alcotest.bool "unsat assignment" false
    (Cnf.satisfied_by cnf [| true; true |]);
  Alcotest.check_raises "short assignment"
    (Invalid_argument "Cnf.eval: assignment too short") (fun () ->
      ignore (Cnf.eval cnf [| true |]))

let test_cnf_copy_append () =
  let a = Cnf.create ~num_vars:2 () in
  Cnf.add_clause a [ Lit.pos 0 ];
  let b = Cnf.copy a in
  Cnf.add_clause b [ Lit.pos 1 ];
  check Alcotest.int "copy isolated" 1 (Cnf.num_clauses a);
  Cnf.append a b;
  check Alcotest.int "append" 3 (Cnf.num_clauses a)

let test_cnf_empty_clause () =
  let cnf = Cnf.create () in
  check Alcotest.bool "no empty" false (Cnf.has_empty_clause cnf);
  Cnf.add_clause cnf [];
  check Alcotest.bool "has empty" true (Cnf.has_empty_clause cnf)

let () =
  Alcotest.run "types"
    [
      ( "lit",
        [
          Alcotest.test_case "encoding" `Quick test_lit_encoding;
          Alcotest.test_case "negate" `Quick test_lit_negate;
          Alcotest.test_case "dimacs" `Quick test_lit_dimacs;
          Alcotest.test_case "make" `Quick test_lit_make;
          qtest prop_lit_dimacs_roundtrip;
        ] );
      ("value", [ Alcotest.test_case "basics" `Quick test_value ]);
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "shrink/clear" `Quick test_vec_shrink_clear;
          Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
          Alcotest.test_case "filter_in_place" `Quick test_vec_filter_in_place;
          Alcotest.test_case "iterators" `Quick test_vec_iterators;
          qtest prop_vec_model;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "zero seed" `Quick test_rng_zero_seed;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "copy" `Quick test_rng_copy;
        ] );
      ( "clause",
        [
          Alcotest.test_case "normalisation" `Quick test_clause_normalisation;
          Alcotest.test_case "tautology" `Quick test_clause_tautology;
          Alcotest.test_case "resolve" `Quick test_clause_resolve;
          Alcotest.test_case "subsumes" `Quick test_clause_subsumes;
          Alcotest.test_case "eval" `Quick test_clause_eval;
          Alcotest.test_case "max_var" `Quick test_clause_max_var;
          qtest prop_resolvent_implied;
        ] );
      ( "cnf",
        [
          Alcotest.test_case "builder" `Quick test_cnf_builder;
          Alcotest.test_case "eval" `Quick test_cnf_eval;
          Alcotest.test_case "copy/append" `Quick test_cnf_copy_append;
          Alcotest.test_case "empty clause" `Quick test_cnf_empty_clause;
        ] );
    ]
