(* Tests for the DIMACS reader/writer. *)

open Berkmin_types
module Dimacs = Berkmin_dimacs.Dimacs

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_parse_basic () =
  let cnf = Dimacs.parse_string "p cnf 3 2\n1 -2 0\n2 3 0\n" in
  check Alcotest.int "vars" 3 (Cnf.num_vars cnf);
  check Alcotest.int "clauses" 2 (Cnf.num_clauses cnf);
  check Alcotest.bool "first clause" true
    (Clause.equal (Cnf.get cnf 0) (Clause.of_list [ Lit.pos 0; Lit.neg_of 1 ]))

let test_parse_comments_and_blanks () =
  let cnf =
    Dimacs.parse_string
      "c a comment\nc another\n\np cnf 2 1\nc inline comment\n1 2 0\n\n"
  in
  check Alcotest.int "clauses" 1 (Cnf.num_clauses cnf)

let test_parse_multiline_clause () =
  let cnf = Dimacs.parse_string "p cnf 4 1\n1 2\n3 4 0\n" in
  check Alcotest.int "clauses" 1 (Cnf.num_clauses cnf);
  check Alcotest.int "clause length" 4 (Clause.length (Cnf.get cnf 0))

let test_parse_several_clauses_one_line () =
  let cnf = Dimacs.parse_string "p cnf 3 3\n1 0 2 0 -3 0\n" in
  check Alcotest.int "clauses" 3 (Cnf.num_clauses cnf)

let test_parse_missing_final_zero () =
  let cnf = Dimacs.parse_string "p cnf 2 2\n1 0\n-1 2" in
  check Alcotest.int "clauses" 2 (Cnf.num_clauses cnf)

let test_parse_no_header () =
  (* Header-less files occur in the wild; the reader tolerates them. *)
  let cnf = Dimacs.parse_string "1 2 0\n-1 0\n" in
  check Alcotest.int "vars inferred" 2 (Cnf.num_vars cnf);
  check Alcotest.int "clauses" 2 (Cnf.num_clauses cnf)

let test_parse_satlib_percent () =
  (* The stray "%\n0" tail of SATLIB files must not become an empty
     clause. *)
  let cnf = Dimacs.parse_string "p cnf 1 1\n1 0\n%\n0\n" in
  check Alcotest.int "clauses" 1 (Cnf.num_clauses cnf);
  check Alcotest.bool "no empty clause" false (Cnf.has_empty_clause cnf)

let expect_error input =
  match Dimacs.parse_string input with
  | exception Dimacs.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_parse_errors () =
  expect_error "p cnf x y\n";
  expect_error "p cnf 2 1\n1 junk 0\n";
  expect_error "p cnf 2 1\np cnf 2 1\n1 0\n";
  expect_error "p cnf 1 1\n5 0\n" (* literal above declared count *)

let test_print_roundtrip () =
  let cnf = Cnf.create ~num_vars:4 () in
  Cnf.add_clause cnf [ Lit.pos 0; Lit.neg_of 3 ];
  Cnf.add_clause cnf [ Lit.neg_of 1 ];
  let text = Dimacs.to_string cnf in
  let cnf2 = Dimacs.parse_string text in
  check Alcotest.int "vars" (Cnf.num_vars cnf) (Cnf.num_vars cnf2);
  check Alcotest.int "clauses" (Cnf.num_clauses cnf) (Cnf.num_clauses cnf2);
  check Alcotest.bool "clauses equal" true
    (List.for_all2 Clause.equal (Cnf.clauses cnf) (Cnf.clauses cnf2))

let test_file_roundtrip () =
  let cnf = Berkmin_gen.Pigeonhole.php 4 3 in
  let path = Filename.temp_file "berkmin_test" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dimacs.write_file path cnf;
      let cnf2 = Dimacs.parse_file path in
      check Alcotest.int "clauses" (Cnf.num_clauses cnf) (Cnf.num_clauses cnf2))

let test_solution_roundtrip () =
  let model = Some [| true; false; true |] in
  let text = Format.asprintf "%a" Dimacs.print_solution model in
  (match Dimacs.parse_solution text with
  | Some m -> check (Alcotest.array Alcotest.bool) "model" [| true; false; true |] m
  | None -> Alcotest.fail "expected a model");
  let text = Format.asprintf "%a" Dimacs.print_solution None in
  check Alcotest.bool "unsat roundtrip" true (Dimacs.parse_solution text = None)

let prop_roundtrip =
  QCheck.Test.make ~name:"dimacs: random cnf roundtrip" ~count:100
    QCheck.(pair (int_range 1 20) (int_range 0 30))
    (fun (nv, nc) ->
      let cnf =
        Berkmin_gen.Random_ksat.generate ~num_vars:nv
          ~num_clauses:nc ~k:(min 3 nv) ~seed:(Hashtbl.hash (nv, nc))
      in
      let cnf2 = Dimacs.parse_string (Dimacs.to_string cnf) in
      Cnf.num_clauses cnf = Cnf.num_clauses cnf2
      && List.for_all2 Clause.equal (Cnf.clauses cnf) (Cnf.clauses cnf2))

let () =
  Alcotest.run "dimacs"
    [
      ( "parse",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "comments/blanks" `Quick test_parse_comments_and_blanks;
          Alcotest.test_case "multiline clause" `Quick test_parse_multiline_clause;
          Alcotest.test_case "several per line" `Quick
            test_parse_several_clauses_one_line;
          Alcotest.test_case "missing final zero" `Quick
            test_parse_missing_final_zero;
          Alcotest.test_case "no header" `Quick test_parse_no_header;
          Alcotest.test_case "satlib tail" `Quick test_parse_satlib_percent;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "print",
        [
          Alcotest.test_case "roundtrip" `Quick test_print_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "solution roundtrip" `Quick test_solution_roundtrip;
          qtest prop_roundtrip;
        ] );
    ]
