(* Tests for the application substrates: sequential circuits + BMC,
   stuck-at ATPG, and the BLIF front end. *)

module C = Berkmin_circuit.Circuit
module B = Berkmin_circuit.Bitvec
module Seq = Berkmin_circuit.Seq
module Bmc = Berkmin_circuit.Bmc
module Atpg = Berkmin_circuit.Atpg
module Blif = Berkmin_circuit.Blif
module M = Berkmin_circuit.Miter

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* A [bits]-wide counter with an enable input; output "bad" fires when
   the count equals [target]. *)

let counter ~bits ~target ~with_enable =
  let c = C.create () in
  let s = Seq.create c in
  let enable = if with_enable then C.input c "en" else C.const c true in
  let regs =
    List.init bits (fun i ->
        Seq.add_register s ~name:(Printf.sprintf "q%d" i) ~init:false)
  in
  let q = Array.of_list (List.map (fun r -> r.Seq.state_input) regs) in
  (* Increment: q + enable (ripple). *)
  let carry = ref enable in
  List.iteri
    (fun i r ->
      let next = C.xor_ c q.(i) !carry in
      carry := C.and_ c q.(i) !carry;
      Seq.connect s r ~next)
    regs;
  let hit =
    C.and_many c
      (List.init bits (fun i ->
           if (target lsr i) land 1 = 1 then q.(i) else C.not_ c q.(i)))
  in
  C.set_output c "bad" hit;
  s

let test_simulate_counter () =
  let s = counter ~bits:3 ~target:5 ~with_enable:false in
  Seq.validate s;
  check Alcotest.int "no free inputs" 0 (Seq.free_inputs s);
  let frames = List.init 8 (fun _ -> [||]) in
  let outs = List.map (List.assoc "bad") (Seq.simulate s frames) in
  (* bad output is combinational on the CURRENT count: frame t sees
     count = t, so it fires exactly at frame 5. *)
  check (Alcotest.list Alcotest.bool) "bad fires at count 5"
    [ false; false; false; false; false; true; false; false ]
    outs

let test_simulate_enable () =
  let s = counter ~bits:3 ~target:2 ~with_enable:true in
  let run enables =
    Seq.simulate s (List.map (fun e -> [| e |]) enables)
    |> List.map (List.assoc "bad")
  in
  (* Never enabled: never reaches 2. *)
  check Alcotest.bool "never enabled" false
    (List.mem true (run [ false; false; false; false ]));
  (* Enabled twice: third frame sees count=2. *)
  check (Alcotest.list Alcotest.bool) "two increments"
    [ false; false; true ]
    (run [ true; true; false ])

let test_bmc_finds_counterexample () =
  let s = counter ~bits:3 ~target:5 ~with_enable:false in
  match Bmc.check s ~bad:"bad" ~bound:8 with
  | Bmc.Counterexample { depth; frames } ->
    check Alcotest.int "depth" 5 depth;
    check Alcotest.int "one frame vector per step" 6 (List.length frames)
  | Bmc.Safe _ | Bmc.Inconclusive -> Alcotest.fail "count 5 is reachable"

let test_bmc_safe_below_horizon () =
  let s = counter ~bits:3 ~target:5 ~with_enable:false in
  match Bmc.check s ~bad:"bad" ~bound:5 with
  | Bmc.Safe 5 -> ()
  | Bmc.Safe _ | Bmc.Counterexample _ | Bmc.Inconclusive ->
    Alcotest.fail "count 5 needs 6 frames"

let test_bmc_trace_replays () =
  (* The counterexample's input trace, replayed on the simulator, must
     actually drive [bad] to 1 at the reported depth. *)
  let s = counter ~bits:4 ~target:3 ~with_enable:true in
  match Bmc.check s ~bad:"bad" ~bound:10 with
  | Bmc.Counterexample { depth; frames } ->
    let outs = Seq.simulate s frames in
    let bad_at_depth = List.assoc "bad" (List.nth outs depth) in
    check Alcotest.bool "replay hits bad" true bad_at_depth;
    (* Plain check gives SOME counterexample within the bound (not
       necessarily the shortest; see the incremental test for that). *)
    check Alcotest.bool "within bound" true (depth >= 3 && depth < 10)
  | Bmc.Safe _ | Bmc.Inconclusive -> Alcotest.fail "target 3 reachable with enables"

let test_bmc_incremental_agrees () =
  let s = counter ~bits:3 ~target:6 ~with_enable:false in
  (match Bmc.check_incremental s ~bad:"bad" ~max_bound:10 with
  | Bmc.Counterexample { depth; _ } -> check Alcotest.int "depth" 6 depth
  | Bmc.Safe _ | Bmc.Inconclusive -> Alcotest.fail "reachable");
  let s2 = counter ~bits:2 ~target:3 ~with_enable:true in
  (* Count 3 is first visible at frame 3, i.e. the 4th frame. *)
  match Bmc.check_incremental s2 ~bad:"bad" ~max_bound:4 with
  | Bmc.Counterexample { depth; frames } ->
    check Alcotest.int "needs 3 increments" 3 depth;
    (* Every enable along the way must be 1. *)
    List.iteri
      (fun i frame ->
        if i < 3 then check Alcotest.bool "enabled" true frame.(0))
      frames
  | Bmc.Safe _ | Bmc.Inconclusive -> Alcotest.fail "reachable at depth 3"

let test_unconnected_register_rejected () =
  let c = C.create () in
  let s = Seq.create c in
  let _r = Seq.add_register s ~name:"q" ~init:false in
  Alcotest.check_raises "unconnected"
    (Invalid_argument "Seq.validate: unconnected register") (fun () ->
      Seq.validate s)

(* ------------------------------------------------------------------ *)
(* ATPG                                                                *)

let test_atpg_fault_list () =
  let c = C.create () in
  let a = C.input c "a" and b = C.input c "b" in
  C.set_output c "o" (C.and_ c a b);
  (* 3 non-const nodes, two polarities each. *)
  check Alcotest.int "faults" 6 (List.length (Atpg.fault_list c))

let redundant_circuit () =
  (* out = a & (a | b): the or-gate stuck-at-1 is classically
     untestable (a=1 forces or=1 anyway; a=0 masks it). *)
  let c = C.create () in
  let a = C.input c "a" and b = C.input c "b" in
  let or_gate = C.or_ c a b in
  C.set_output c "o" (C.and_ c a or_gate);
  (c, or_gate)

let test_atpg_untestable_fault () =
  let c, or_gate = redundant_circuit () in
  match Atpg.generate_test c { Atpg.node = or_gate; stuck_at = true } with
  | Atpg.Untestable -> ()
  | Atpg.Detected _ -> Alcotest.fail "stuck-at-1 on the OR is redundant"
  | Atpg.Undecided -> Alcotest.fail "unexpected Undecided"

let test_atpg_detectable_fault () =
  let c, or_gate = redundant_circuit () in
  match Atpg.generate_test c { Atpg.node = or_gate; stuck_at = false } with
  | Atpg.Detected pattern ->
    check Alcotest.bool "pattern verified by simulation" true
      (Atpg.detects c { Atpg.node = or_gate; stuck_at = false } pattern)
  | Atpg.Untestable | Atpg.Undecided -> Alcotest.fail "stuck-at-0 is testable"

let test_atpg_full_adder_coverage () =
  let c = C.create () in
  let a = B.inputs c "a" 2 and b = B.inputs c "b" 2 in
  let sum, carry = B.ripple_carry_add c a b in
  B.set_outputs c "s" sum;
  C.set_output c "cout" carry;
  let report = Atpg.run c in
  check Alcotest.int "nothing undecided" 0 report.Atpg.undecided;
  check Alcotest.bool "full coverage of testable faults" true
    (Atpg.coverage report >= 1.0);
  (* Every detected fault's stored pattern really detects it. *)
  List.iter
    (fun (fault, d) ->
      match d with
      | Atpg.Detected p ->
        check Alcotest.bool "pattern detects" true (Atpg.detects c fault p)
      | Atpg.Untestable | Atpg.Undecided -> ())
    report.Atpg.results

let test_atpg_untestable_is_really_untestable () =
  (* Exhaustively simulate every input vector: no pattern may detect a
     fault the solver called untestable. *)
  let c, _ = redundant_circuit () in
  let report = Atpg.run c in
  check Alcotest.bool "found a redundancy" true (report.Atpg.untestable > 0);
  List.iter
    (fun (fault, d) ->
      if d = Atpg.Untestable then
        for v = 0 to 3 do
          let pattern = [| v land 1 = 1; v land 2 = 2 |] in
          if Atpg.detects c fault pattern then
            Alcotest.fail "solver declared a testable fault untestable"
        done)
    report.Atpg.results

let prop_atpg_random_circuits =
  QCheck.Test.make ~name:"atpg: patterns verified, coverage counted" ~count:15
    QCheck.small_int
    (fun seed ->
      let c =
        Berkmin_circuit.Random_circuit.generate ~num_inputs:5 ~num_gates:15
          ~num_outputs:2 ~seed
      in
      let report = Atpg.run c in
      report.Atpg.detected + report.Atpg.untestable + report.Atpg.undecided
      = report.Atpg.total_faults
      && List.for_all
           (fun (fault, d) ->
             match d with
             | Atpg.Detected p -> Atpg.detects c fault p
             | Atpg.Untestable | Atpg.Undecided -> true)
           report.Atpg.results)

(* ------------------------------------------------------------------ *)
(* BLIF                                                                *)

let simple_blif =
  ".model test\n.inputs a b\n.outputs o\n.names a b o\n11 1\n.end\n"

let test_blif_parse_and () =
  let c = Blif.parse_string simple_blif in
  check Alcotest.int "inputs" 2 (C.num_inputs c);
  check Alcotest.bool "and(1,1)" true (List.assoc "o" (C.eval_outputs c [| true; true |]));
  check Alcotest.bool "and(1,0)" false (List.assoc "o" (C.eval_outputs c [| true; false |]))

let test_blif_inverted_cover () =
  (* Output column 0: the cover describes the OFF-set. *)
  let c =
    Blif.parse_string ".inputs a b\n.outputs o\n.names a b o\n11 0\n.end\n"
  in
  check Alcotest.bool "nand(1,1)" false (List.assoc "o" (C.eval_outputs c [| true; true |]));
  check Alcotest.bool "nand(0,1)" true (List.assoc "o" (C.eval_outputs c [| false; true |]))

let test_blif_constants () =
  let c =
    Blif.parse_string ".outputs t f\n.names t\n1\n.names f\n.end\n"
  in
  let outs = C.eval_outputs c [||] in
  check Alcotest.bool "const 1" true (List.assoc "t" outs);
  check Alcotest.bool "const 0" false (List.assoc "f" outs)

let test_blif_dont_cares_and_order () =
  (* Definitions out of order plus '-' columns. *)
  let text =
    ".inputs a b c\n.outputs o\n.names x c o\n11 1\n.names a b x\n1- 1\n-1 1\n.end\n"
  in
  let c = Blif.parse_string text in
  (* o = (a | b) & c *)
  check Alcotest.bool "101" true (List.assoc "o" (C.eval_outputs c [| true; false; true |]));
  check Alcotest.bool "100" false (List.assoc "o" (C.eval_outputs c [| true; false; false |]))

let test_blif_errors () =
  let expect_fail text =
    match Blif.parse_string text with
    | exception Blif.Parse_error _ -> ()
    | _ -> Alcotest.fail ("accepted: " ^ text)
  in
  expect_fail ".inputs a\n.outputs o\n.names a o\n11 1\n.end\n" (* width *)
  ;
  expect_fail ".inputs a\n.outputs o\n.latch a o\n.end\n" (* unsupported *)
  ;
  expect_fail ".inputs a\n.outputs o\n.names a o\n1 2\n.end\n" (* bad output *)
  ;
  expect_fail ".outputs o\n.end\n" (* undefined output *)
  ;
  expect_fail ".inputs a\n.outputs o\n.names x o\n1 1\n.names o x\n1 1\n.end\n"
  (* cycle *)

let test_blif_comments_continuations () =
  let text =
    "# header comment\n.model m\n.inputs a \\\nb\n.outputs o\n.names a b o # gate\n11 1\n.end\n"
  in
  let c = Blif.parse_string text in
  check Alcotest.int "inputs joined across continuation" 2 (C.num_inputs c)

let prop_blif_roundtrip =
  QCheck.Test.make ~name:"blif: print/parse preserves the function" ~count:25
    QCheck.small_int
    (fun seed ->
      let c =
        Berkmin_circuit.Random_circuit.generate ~num_inputs:5 ~num_gates:25
          ~num_outputs:3 ~seed
      in
      let c' = Blif.parse_string (Blif.to_string c) in
      match M.check_by_simulation ~samples:64 ~seed:(seed + 1) c c' with
      | M.Equivalent -> (
        (* Confirm with the solver on a few of them. *)
        if seed mod 5 <> 0 then true
        else
          match Berkmin.Solver.solve_cnf (M.to_cnf c c') with
          | Berkmin.Solver.Unsat -> true
          | Berkmin.Solver.Sat _ | Berkmin.Solver.Unknown -> false)
      | M.Counterexample _ -> false)

let test_blif_file_roundtrip () =
  let c =
    Berkmin_circuit.Random_circuit.generate ~num_inputs:4 ~num_gates:10
      ~num_outputs:2 ~seed:3
  in
  let path = Filename.temp_file "berkmin_test" ".blif" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Blif.write_file path c;
      let c' = Blif.parse_file path in
      check Alcotest.int "inputs" (C.num_inputs c) (C.num_inputs c'))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "apps"
    [
      ( "seq+bmc",
        [
          Alcotest.test_case "simulate counter" `Quick test_simulate_counter;
          Alcotest.test_case "simulate enable" `Quick test_simulate_enable;
          Alcotest.test_case "bmc counterexample" `Quick
            test_bmc_finds_counterexample;
          Alcotest.test_case "bmc safe below horizon" `Quick
            test_bmc_safe_below_horizon;
          Alcotest.test_case "bmc trace replays" `Quick test_bmc_trace_replays;
          Alcotest.test_case "bmc incremental" `Quick test_bmc_incremental_agrees;
          Alcotest.test_case "unconnected register" `Quick
            test_unconnected_register_rejected;
        ] );
      ( "atpg",
        [
          Alcotest.test_case "fault list" `Quick test_atpg_fault_list;
          Alcotest.test_case "untestable fault" `Quick test_atpg_untestable_fault;
          Alcotest.test_case "detectable fault" `Quick test_atpg_detectable_fault;
          Alcotest.test_case "adder coverage" `Slow test_atpg_full_adder_coverage;
          Alcotest.test_case "untestable is untestable" `Quick
            test_atpg_untestable_is_really_untestable;
          qtest prop_atpg_random_circuits;
        ] );
      ( "blif",
        [
          Alcotest.test_case "parse and" `Quick test_blif_parse_and;
          Alcotest.test_case "inverted cover" `Quick test_blif_inverted_cover;
          Alcotest.test_case "constants" `Quick test_blif_constants;
          Alcotest.test_case "don't cares / order" `Quick
            test_blif_dont_cares_and_order;
          Alcotest.test_case "errors" `Quick test_blif_errors;
          Alcotest.test_case "comments/continuations" `Quick
            test_blif_comments_continuations;
          qtest prop_blif_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_blif_file_roundtrip;
        ] );
    ]
