test/test_extensions.ml: Alcotest Array Berkmin Berkmin_circuit Berkmin_gen Berkmin_proof Berkmin_types Clause Cnf List Lit Printf QCheck QCheck_alcotest Rng
