test/test_gen.ml: Alcotest Array Berkmin Berkmin_gen Berkmin_types Clause Cnf List QCheck QCheck_alcotest
