test/test_circuit.ml: Alcotest Array Berkmin Berkmin_circuit Berkmin_types Cnf Hashtbl List Lit Printf QCheck QCheck_alcotest Rng
