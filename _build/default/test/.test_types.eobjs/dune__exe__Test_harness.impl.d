test/test_harness.ml: Alcotest Berkmin Berkmin_gen Berkmin_harness List String
