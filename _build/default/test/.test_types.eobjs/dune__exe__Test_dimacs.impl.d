test/test_dimacs.ml: Alcotest Berkmin_dimacs Berkmin_gen Berkmin_types Clause Cnf Filename Format Fun Hashtbl List Lit QCheck QCheck_alcotest Sys
