test/test_properties.ml: Alcotest Berkmin Berkmin_gen Berkmin_proof Berkmin_types Bool Cnf List Lit Printf QCheck QCheck_alcotest Rng
