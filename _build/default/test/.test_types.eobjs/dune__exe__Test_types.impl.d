test/test_types.ml: Alcotest Array Berkmin_types Clause Cnf Gen Hashtbl List Lit QCheck QCheck_alcotest Rng Value Vec
