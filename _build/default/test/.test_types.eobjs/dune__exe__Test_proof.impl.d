test/test_proof.ml: Alcotest Berkmin Berkmin_gen Berkmin_proof Berkmin_types Clause Cnf List Lit Printf
