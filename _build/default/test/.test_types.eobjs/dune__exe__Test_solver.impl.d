test/test_solver.ml: Alcotest Array Berkmin Berkmin_gen Berkmin_types Cnf List Lit Printf Sys Value
