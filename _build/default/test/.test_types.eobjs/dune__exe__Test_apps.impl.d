test/test_apps.ml: Alcotest Array Berkmin Berkmin_circuit Filename Fun List Printf QCheck QCheck_alcotest Sys
