(* Tests for the benchmark generators: structure checks plus verdict
   checks against the solver (and, where feasible, the DPLL oracle). *)

open Berkmin_types
module Instance = Berkmin_gen.Instance
module Solver = Berkmin.Solver

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let solve cnf = Solver.solve_cnf cnf

let assert_expected (inst : Instance.t) =
  match solve inst.Instance.cnf with
  | Solver.Sat m ->
    if not (Cnf.satisfied_by inst.Instance.cnf m) then
      Alcotest.fail (inst.Instance.name ^ ": invalid model");
    if not (Instance.consistent inst ~sat:true) then
      Alcotest.fail (inst.Instance.name ^ ": SAT but expected UNSAT")
  | Solver.Unsat ->
    if not (Instance.consistent inst ~sat:false) then
      Alcotest.fail (inst.Instance.name ^ ": UNSAT but expected SAT")
  | Solver.Unknown -> Alcotest.fail (inst.Instance.name ^ ": unexpected Unknown")

(* ------------------------------------------------------------------ *)
(* Pigeonhole                                                          *)

let test_php_structure () =
  let cnf = Berkmin_gen.Pigeonhole.php 4 3 in
  check Alcotest.int "vars" 12 (Cnf.num_vars cnf);
  (* 4 at-least-one clauses + 3 * C(4,2) at-most-one clauses. *)
  check Alcotest.int "clauses" (4 + (3 * 6)) (Cnf.num_clauses cnf)

let test_php_verdicts () =
  assert_expected (Berkmin_gen.Pigeonhole.instance 4 4);
  assert_expected (Berkmin_gen.Pigeonhole.instance 5 4);
  assert_expected (Berkmin_gen.Pigeonhole.instance 3 5)

let test_php_suite () =
  let suite = Berkmin_gen.Pigeonhole.suite ~max:6 in
  check Alcotest.int "suite size" 3 (List.length suite);
  List.iter
    (fun (i : Instance.t) ->
      check Alcotest.bool "all unsat" true (i.Instance.expected = Instance.Expect_unsat))
    suite

(* ------------------------------------------------------------------ *)
(* Parity                                                              *)

let test_parity_chain_sat () =
  let inst = Berkmin_gen.Parity.chain_instance ~num_vars:20 ~extra:10 ~seed:3 in
  assert_expected inst

let test_parity_cycle_unsat () =
  assert_expected
    (Instance.make "cyc" Instance.Expect_unsat
       (Berkmin_gen.Parity.inconsistent_cycle ~num_vars:9))

let test_tseitin_unsat () =
  assert_expected (Berkmin_gen.Parity.tseitin_instance ~num_vars:8 ~degree:3 ~seed:1);
  assert_expected (Berkmin_gen.Parity.tseitin_instance ~num_vars:10 ~degree:4 ~seed:2)

let test_tseitin_arg_validation () =
  Alcotest.check_raises "odd stubs"
    (Invalid_argument "Parity.tseitin_expander: num_vars * degree must be even")
    (fun () ->
      ignore (Berkmin_gen.Parity.tseitin_expander ~num_vars:5 ~degree:3 ~seed:1))

let prop_parity_chain_always_sat =
  QCheck.Test.make ~name:"parity chains are SAT" ~count:25
    QCheck.(pair (int_range 5 30) small_int)
    (fun (n, seed) ->
      let inst = Berkmin_gen.Parity.chain_instance ~num_vars:n ~extra:(n / 2) ~seed in
      match solve inst.Instance.cnf with
      | Solver.Sat m -> Cnf.satisfied_by inst.Instance.cnf m
      | Solver.Unsat | Solver.Unknown -> false)

(* ------------------------------------------------------------------ *)
(* Hanoi                                                               *)

let test_hanoi_verdicts () =
  assert_expected (Berkmin_gen.Hanoi.sat_instance 2);
  assert_expected (Berkmin_gen.Hanoi.unsat_instance 2);
  assert_expected (Berkmin_gen.Hanoi.sat_instance 3);
  assert_expected (Berkmin_gen.Hanoi.unsat_instance 3)

let test_hanoi_oracle_agrees () =
  (* Cross-check the 2-disk encodings against the independent DPLL
     oracle. *)
  let sat = Berkmin_gen.Hanoi.encode ~disks:2 ~horizon:3 in
  (match Berkmin.Dpll.solve sat with
  | Berkmin.Dpll.Sat _ -> ()
  | Berkmin.Dpll.Unsat | Berkmin.Dpll.Unknown -> Alcotest.fail "oracle: expected SAT");
  let unsat = Berkmin_gen.Hanoi.encode ~disks:2 ~horizon:2 in
  match Berkmin.Dpll.solve unsat with
  | Berkmin.Dpll.Unsat -> ()
  | Berkmin.Dpll.Sat _ | Berkmin.Dpll.Unknown -> Alcotest.fail "oracle: expected UNSAT"

let test_hanoi_plan_is_legal () =
  let disks = 3 in
  let horizon = Berkmin_gen.Hanoi.optimal_horizon disks in
  match solve (Berkmin_gen.Hanoi.encode ~disks ~horizon) with
  | Solver.Sat model ->
    let plan = Berkmin_gen.Hanoi.decode_plan ~disks ~horizon model in
    check Alcotest.int "plan length" horizon (List.length plan);
    (* Replay the plan on an explicit simulator. *)
    let pegs = [| List.init disks (fun d -> d); []; [] |] in
    List.iter
      (fun (d, p, q) ->
        (match pegs.(p) with
        | top :: rest when top = d ->
          (match pegs.(q) with
          | smaller :: _ when smaller < d -> Alcotest.fail "covers smaller disk"
          | [] | _ :: _ ->
            pegs.(p) <- rest;
            pegs.(q) <- d :: pegs.(q))
        | [] | _ :: _ -> Alcotest.fail "move of non-top disk"))
      plan;
    check (Alcotest.list Alcotest.int) "goal reached"
      (List.init disks (fun d -> d))
      pegs.(2)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected SAT"

let test_hanoi_optimal_horizon () =
  check Alcotest.int "3 disks" 7 (Berkmin_gen.Hanoi.optimal_horizon 3);
  check Alcotest.int "5 disks" 31 (Berkmin_gen.Hanoi.optimal_horizon 5)

(* ------------------------------------------------------------------ *)
(* Blocksworld                                                         *)

let test_blocksworld_verdicts () =
  assert_expected (Berkmin_gen.Blocksworld.sat_instance 3);
  assert_expected (Berkmin_gen.Blocksworld.unsat_instance 3);
  assert_expected (Berkmin_gen.Blocksworld.sat_instance 4);
  assert_expected (Berkmin_gen.Blocksworld.unsat_instance 4)

let test_blocksworld_oracle_agrees () =
  let sat = Berkmin_gen.Blocksworld.encode ~blocks:2 ~horizon:2 in
  (match Berkmin.Dpll.solve sat with
  | Berkmin.Dpll.Sat _ -> ()
  | Berkmin.Dpll.Unsat | Berkmin.Dpll.Unknown -> Alcotest.fail "oracle: expected SAT");
  let unsat = Berkmin_gen.Blocksworld.encode ~blocks:2 ~horizon:1 in
  match Berkmin.Dpll.solve unsat with
  | Berkmin.Dpll.Unsat -> ()
  | Berkmin.Dpll.Sat _ | Berkmin.Dpll.Unknown -> Alcotest.fail "oracle: expected UNSAT"

(* ------------------------------------------------------------------ *)
(* Random k-SAT                                                        *)

let test_ksat_shape () =
  let cnf = Berkmin_gen.Random_ksat.generate ~num_vars:10 ~num_clauses:30 ~k:3 ~seed:1 in
  check Alcotest.int "clauses" 30 (Cnf.num_clauses cnf);
  Cnf.iter (fun c -> check Alcotest.int "k lits" 3 (Clause.length c)) cnf

let test_ksat_validation () =
  Alcotest.check_raises "k too big"
    (Invalid_argument "Random_ksat: k > num_vars") (fun () ->
      ignore
        (Berkmin_gen.Random_ksat.generate ~num_vars:2 ~num_clauses:1 ~k:3 ~seed:1))

let prop_planted_always_sat =
  QCheck.Test.make ~name:"planted k-SAT is SAT" ~count:30
    QCheck.(pair (int_range 5 25) small_int)
    (fun (n, seed) ->
      let cnf =
        Berkmin_gen.Random_ksat.planted ~num_vars:n ~num_clauses:(4 * n) ~k:3 ~seed
      in
      match solve cnf with
      | Solver.Sat m -> Cnf.satisfied_by cnf m
      | Solver.Unsat | Solver.Unknown -> false)

(* ------------------------------------------------------------------ *)
(* Graph coloring                                                      *)

let test_coloring_verdicts () =
  assert_expected (Berkmin_gen.Graph_coloring.clique_instance 4 ~colors:4);
  assert_expected (Berkmin_gen.Graph_coloring.clique_instance 4 ~colors:3);
  assert_expected (Berkmin_gen.Graph_coloring.cycle_instance 6 ~colors:2);
  assert_expected (Berkmin_gen.Graph_coloring.cycle_instance 7 ~colors:2);
  assert_expected (Berkmin_gen.Graph_coloring.cycle_instance 7 ~colors:3)

let test_coloring_edge_bounds () =
  Alcotest.check_raises "bad edge"
    (Invalid_argument "Graph_coloring.encode: edge endpoint out of range")
    (fun () ->
      ignore
        (Berkmin_gen.Graph_coloring.encode
           { Berkmin_gen.Graph_coloring.vertices = 2; edges = [ (0, 5) ] }
           ~colors:2))

(* ------------------------------------------------------------------ *)
(* Circuit-derived instances                                           *)

let test_circuit_instances () =
  assert_expected (Berkmin_gen.Circuit_bench.adder_miter ~width:6);
  assert_expected (Berkmin_gen.Circuit_bench.mul_miter ~width:3);
  assert_expected (Berkmin_gen.Circuit_bench.random_miter ~gates:50 ~seed:2);
  assert_expected (Berkmin_gen.Circuit_bench.pipeline_sat ~stages:3 ~width:2)

let test_cone_demo () =
  let cnf, in_cone = Berkmin_gen.Circuit_bench.cone_demo_cnf ~cone_gates:40 ~seed:7 in
  check Alcotest.bool "has cone vars" true
    (List.exists in_cone (List.init (Cnf.num_vars cnf) (fun i -> i)));
  (* Both halves are equivalent pairs: the miter is UNSAT. *)
  match solve cnf with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "cone demo must be UNSAT"

(* ------------------------------------------------------------------ *)
(* Puzzles                                                             *)

let test_queens_verdicts () =
  assert_expected (Berkmin_gen.Puzzles.queens_instance 1);
  assert_expected (Berkmin_gen.Puzzles.queens_instance 2);
  assert_expected (Berkmin_gen.Puzzles.queens_instance 3);
  assert_expected (Berkmin_gen.Puzzles.queens_instance 4);
  assert_expected (Berkmin_gen.Puzzles.queens_instance 8)

let test_queens_model_decodes () =
  let n = 8 in
  match solve (Berkmin_gen.Puzzles.queens n) with
  | Solver.Sat m ->
    let placement = Berkmin_gen.Puzzles.decode_queens n m in
    check Alcotest.bool "placement valid" true
      (Berkmin_gen.Puzzles.valid_queens n placement)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "8 queens is SAT"

let test_sudoku_solves () =
  (* A few clues, solvable. *)
  let givens = [ (0, 0, 5); (0, 1, 3); (1, 0, 6); (4, 4, 7); (8, 8, 9) ] in
  match solve (Berkmin_gen.Puzzles.sudoku ~givens ()) with
  | Solver.Sat m ->
    let grid = Berkmin_gen.Puzzles.decode_sudoku m in
    check Alcotest.bool "grid valid" true (Berkmin_gen.Puzzles.valid_sudoku grid);
    List.iter
      (fun (r, c, d) -> check Alcotest.int "clue respected" d grid.(r).(c))
      givens
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "solvable sudoku"

let test_sudoku_contradiction () =
  (* Two identical digits in one row: UNSAT. *)
  let givens = [ (0, 0, 5); (0, 8, 5) ] in
  match solve (Berkmin_gen.Puzzles.sudoku ~givens ()) with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "contradictory clues"

let test_sudoku_clue_validation () =
  Alcotest.check_raises "bad clue"
    (Invalid_argument "Puzzles.sudoku: clue out of range") (fun () ->
      ignore (Berkmin_gen.Puzzles.sudoku ~givens:[ (9, 0, 1) ] ()))

(* ------------------------------------------------------------------ *)
(* Suites                                                              *)

let test_suites_well_formed () =
  let classes = Berkmin_gen.Suites.all () in
  check Alcotest.int "twelve classes" 12 (List.length classes);
  List.iter
    (fun (name, instances) ->
      check Alcotest.bool (name ^ " nonempty") true (instances <> []);
      List.iter
        (fun (i : Instance.t) ->
          check Alcotest.bool (i.Instance.name ^ " has clauses") true
            (Cnf.num_clauses i.Instance.cnf > 0))
        instances)
    classes

let test_suites_find_class () =
  check Alcotest.bool "Hole found" true (Berkmin_gen.Suites.find_class "Hole" <> []);
  match Berkmin_gen.Suites.find_class "NoSuchClass" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_suite_names_unique () =
  let names =
    List.concat_map
      (fun (_, instances) ->
        List.map (fun (i : Instance.t) -> i.Instance.name) instances)
      (Berkmin_gen.Suites.all ())
  in
  (* Names repeat across classes (bw4 is in two classes) but must be
     unique within a class. *)
  List.iter
    (fun (cls, instances) ->
      let names = List.map (fun (i : Instance.t) -> i.Instance.name) instances in
      check Alcotest.int (cls ^ " unique names")
        (List.length names)
        (List.length (List.sort_uniq compare names)))
    (Berkmin_gen.Suites.all ());
  ignore names

let () =
  Alcotest.run "gen"
    [
      ( "pigeonhole",
        [
          Alcotest.test_case "structure" `Quick test_php_structure;
          Alcotest.test_case "verdicts" `Quick test_php_verdicts;
          Alcotest.test_case "suite" `Quick test_php_suite;
        ] );
      ( "parity",
        [
          Alcotest.test_case "chain sat" `Quick test_parity_chain_sat;
          Alcotest.test_case "cycle unsat" `Quick test_parity_cycle_unsat;
          Alcotest.test_case "tseitin unsat" `Quick test_tseitin_unsat;
          Alcotest.test_case "validation" `Quick test_tseitin_arg_validation;
          qtest prop_parity_chain_always_sat;
        ] );
      ( "hanoi",
        [
          Alcotest.test_case "verdicts" `Slow test_hanoi_verdicts;
          Alcotest.test_case "oracle agrees" `Quick test_hanoi_oracle_agrees;
          Alcotest.test_case "plan is legal" `Quick test_hanoi_plan_is_legal;
          Alcotest.test_case "optimal horizon" `Quick test_hanoi_optimal_horizon;
        ] );
      ( "blocksworld",
        [
          Alcotest.test_case "verdicts" `Slow test_blocksworld_verdicts;
          Alcotest.test_case "oracle agrees" `Quick test_blocksworld_oracle_agrees;
        ] );
      ( "ksat",
        [
          Alcotest.test_case "shape" `Quick test_ksat_shape;
          Alcotest.test_case "validation" `Quick test_ksat_validation;
          qtest prop_planted_always_sat;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "verdicts" `Quick test_coloring_verdicts;
          Alcotest.test_case "edge bounds" `Quick test_coloring_edge_bounds;
        ] );
      ( "circuit-bench",
        [
          Alcotest.test_case "instances" `Slow test_circuit_instances;
          Alcotest.test_case "cone demo" `Slow test_cone_demo;
        ] );
      ( "puzzles",
        [
          Alcotest.test_case "queens verdicts" `Quick test_queens_verdicts;
          Alcotest.test_case "queens model decodes" `Quick
            test_queens_model_decodes;
          Alcotest.test_case "sudoku solves" `Quick test_sudoku_solves;
          Alcotest.test_case "sudoku contradiction" `Quick
            test_sudoku_contradiction;
          Alcotest.test_case "sudoku clue validation" `Quick
            test_sudoku_clue_validation;
        ] );
      ( "suites",
        [
          Alcotest.test_case "well-formed" `Quick test_suites_well_formed;
          Alcotest.test_case "find_class" `Quick test_suites_find_class;
          Alcotest.test_case "unique names" `Quick test_suite_names_unique;
        ] );
    ]
