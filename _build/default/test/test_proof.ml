(* Tests for DRUP proof logging and checking. *)

open Berkmin_types
module Drup = Berkmin_proof.Drup

let check = Alcotest.check

let cl lits = Clause.of_list (List.map Lit.of_dimacs lits)

let cnf_of lists =
  let cnf = Cnf.create () in
  List.iter (fun c -> Cnf.add_clause cnf (List.map Lit.of_dimacs c)) lists;
  cnf

let is_valid = function Drup.Valid -> true | Drup.Invalid _ -> false

(* ------------------------------------------------------------------ *)
(* is_rup                                                              *)

let test_is_rup_direct_conflict () =
  (* From (x) and (~x | y), the clause (y) is RUP. *)
  let cnf = cnf_of [ [ 1 ]; [ -1; 2 ] ] in
  check Alcotest.bool "unit consequence" true (Drup.is_rup cnf ~extra:[] (cl [ 2 ]));
  check Alcotest.bool "non-consequence" false (Drup.is_rup cnf ~extra:[] (cl [ -2 ]))

let test_is_rup_uses_extra () =
  let cnf = cnf_of [ [ 1; 2 ] ] in
  check Alcotest.bool "without extra" false (Drup.is_rup cnf ~extra:[] (cl [ 2 ]));
  check Alcotest.bool "with extra" true
    (Drup.is_rup cnf ~extra:[ cl [ -1 ] ] (cl [ 2 ]))

let test_is_rup_tautology () =
  let cnf = cnf_of [] in
  check Alcotest.bool "tautology vacuous" true
    (Drup.is_rup cnf ~extra:[] (cl [ 1; -1 ]))

let test_is_rup_empty_clause () =
  let cnf = cnf_of [ [ 1 ]; [ -1 ] ] in
  check Alcotest.bool "contradictory units give empty" true
    (Drup.is_rup cnf ~extra:[] (cl []))

(* ------------------------------------------------------------------ *)
(* check                                                               *)

let test_check_hand_proof () =
  (* php(2,1): (p1) (p2) (~p1|~p2).  Unit propagation alone refutes it,
     so adding just the empty clause is a valid DRUP proof. *)
  let cnf = cnf_of [ [ 1 ]; [ 2 ]; [ -1; -2 ] ] in
  let proof = Drup.create () in
  Drup.record proof (Drup.Add (cl []));
  check Alcotest.bool "valid" true (is_valid (Drup.check cnf proof))

let test_check_rejects_non_rup () =
  let cnf = cnf_of [ [ 1; 2 ] ] in
  let proof = Drup.create () in
  Drup.record proof (Drup.Add (cl [ 1 ]));
  (match Drup.check cnf proof with
  | Drup.Invalid { step = 1; reason = "not RUP"; _ } -> ()
  | Drup.Invalid _ | Drup.Valid -> Alcotest.fail "expected not-RUP at step 1")

let test_check_requires_empty_clause () =
  let cnf = cnf_of [ [ 1 ]; [ -1; 2 ] ] in
  let proof = Drup.create () in
  Drup.record proof (Drup.Add (cl [ 2 ]));
  (match Drup.check cnf proof with
  | Drup.Invalid { reason; _ } ->
    check Alcotest.string "reason" "empty clause never derived" reason
  | Drup.Valid -> Alcotest.fail "proof without empty clause accepted")

let test_check_rejects_unknown_delete () =
  let cnf = cnf_of [ [ 1 ] ] in
  let proof = Drup.create () in
  Drup.record proof (Drup.Delete (cl [ 5; 6 ]));
  (match Drup.check cnf proof with
  | Drup.Invalid { reason = "deleting unknown clause"; _ } -> ()
  | Drup.Invalid _ | Drup.Valid -> Alcotest.fail "expected delete error")

let test_check_delete_weakens () =
  (* Add (y), delete it, then (z) must no longer be derivable from it. *)
  let cnf = cnf_of [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ] in
  let proof = Drup.create () in
  Drup.record proof (Drup.Add (cl [ 2 ]));
  Drup.record proof (Drup.Delete (cl [ 2 ]));
  Drup.record proof (Drup.Add (cl [ 3 ]));
  (* (3) is still RUP from the original clauses, so this stays valid
     except for the missing empty clause. *)
  (match Drup.check cnf proof with
  | Drup.Invalid { reason = "empty clause never derived"; _ } -> ()
  | Drup.Invalid { reason; _ } -> Alcotest.fail ("unexpected: " ^ reason)
  | Drup.Valid -> Alcotest.fail "no refutation was given")

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)

let test_to_string_format () =
  let proof = Drup.create () in
  Drup.record proof (Drup.Add (cl [ 1; -2 ]));
  Drup.record proof (Drup.Delete (cl [ 3 ]));
  Drup.record proof (Drup.Add (cl []));
  (* Clause literals are stored sorted by the internal encoding, which
     orders by variable then phase: 1 before -2. *)
  check Alcotest.string "drup text" "1 -2 0\nd 3 0\n0\n" (Drup.to_string proof)

let test_parse_roundtrip () =
  let text = "1 2 0\nd -3 0\n0\n" in
  let proof = Drup.parse_string text in
  check Alcotest.int "events" 3 (Drup.length proof);
  check Alcotest.string "roundtrip" text (Drup.to_string proof)

let test_parse_rejects_garbage () =
  match Drup.parse_string "1 banana 0\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure"

(* ------------------------------------------------------------------ *)
(* End-to-end: solver proofs check on every UNSAT family.              *)

let solver_proof_cases =
  let unsat_instances =
    [
      Berkmin_gen.Pigeonhole.instance 5 4;
      Berkmin_gen.Pigeonhole.instance 6 5;
      Berkmin_gen.Hanoi.unsat_instance 2;
      Berkmin_gen.Blocksworld.unsat_instance 3;
      Berkmin_gen.Instance.make "cycle10" Berkmin_gen.Instance.Expect_unsat
        (Berkmin_gen.Parity.inconsistent_cycle ~num_vars:10);
      Berkmin_gen.Graph_coloring.clique_instance 5 ~colors:4;
      Berkmin_gen.Parity.tseitin_instance ~num_vars:8 ~degree:3 ~seed:7;
      Berkmin_gen.Circuit_bench.adder_miter ~width:4;
    ]
  in
  let configs =
    [ "berkmin", Berkmin.Config.berkmin; "chaff", Berkmin.Config.chaff ]
  in
  List.concat_map
    (fun (cname, config) ->
      List.map
        (fun inst ->
          let name =
            Printf.sprintf "%s proof on %s" cname
              inst.Berkmin_gen.Instance.name
          in
          Alcotest.test_case name `Slow (fun () ->
              let cnf = inst.Berkmin_gen.Instance.cnf in
              let solver = Berkmin.Solver.create ~config cnf in
              let proof = Drup.create () in
              Berkmin.Solver.set_proof_logger solver (Drup.record proof);
              (match Berkmin.Solver.solve solver with
              | Berkmin.Solver.Unsat -> ()
              | Berkmin.Solver.Sat _ | Berkmin.Solver.Unknown ->
                Alcotest.fail "expected UNSAT");
              check Alcotest.bool "proof valid" true
                (is_valid (Drup.check cnf proof))))
        unsat_instances)
    configs

let () =
  Alcotest.run "proof"
    [
      ( "is_rup",
        [
          Alcotest.test_case "direct conflict" `Quick test_is_rup_direct_conflict;
          Alcotest.test_case "uses extra" `Quick test_is_rup_uses_extra;
          Alcotest.test_case "tautology" `Quick test_is_rup_tautology;
          Alcotest.test_case "empty clause" `Quick test_is_rup_empty_clause;
        ] );
      ( "check",
        [
          Alcotest.test_case "hand proof" `Quick test_check_hand_proof;
          Alcotest.test_case "rejects non-RUP" `Quick test_check_rejects_non_rup;
          Alcotest.test_case "requires empty clause" `Quick
            test_check_requires_empty_clause;
          Alcotest.test_case "rejects unknown delete" `Quick
            test_check_rejects_unknown_delete;
          Alcotest.test_case "delete weakens" `Quick test_check_delete_weakens;
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "to_string format" `Quick test_to_string_format;
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse rejects garbage" `Quick
            test_parse_rejects_garbage;
        ] );
      ("end-to-end", solver_proof_cases);
    ]
